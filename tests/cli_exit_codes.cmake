# Exercises oregami_map's exit-code contract:
#   0 ok, 1 internal, 2 usage, 3 bad input, 4 mapping infeasible.
# Run via:  cmake -DOREGAMI_MAP=... -DSAMPLES=... -P cli_exit_codes.cmake
function(expect_exit expected)
  execute_process(COMMAND ${OREGAMI_MAP} ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT code EQUAL expected)
    message(FATAL_ERROR
            "oregami_map ${ARGN}: expected exit ${expected}, got ${code}")
  endif()
endfunction()

# 0: successful runs, healthy and degraded.
expect_exit(0 --list-programs)
expect_exit(0 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4)
expect_exit(0 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --inject-faults p5 --repair)
expect_exit(0 --larcs ${SAMPLES}/wavefront.larcs --bind n=8
            --topology mesh:8x8)

# 0: extended portfolio candidates + Pareto report.
expect_exit(0 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --portfolio 2 --anneal 2 --heft --pareto)

# 0: multilevel V-cycle, auto depth and explicit level cap.
expect_exit(0 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --multilevel)
expect_exit(0 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --multilevel 2)

# 2: usage errors.
expect_exit(2 --frobnicate)
expect_exit(2)                                    # missing required args
expect_exit(2 --program jacobi)                   # no topology
expect_exit(2 --program jacobi --topology mesh:4x4 --repair)  # no faults
expect_exit(2 --program jacobi --topology mesh:4x4 --jobs -1)
expect_exit(2 --program jacobi --topology mesh:4x4 --portfolio x)

# 2: mutually-incompatible flag combos (each of these flags describes
# or extends the portfolio search, so it is a usage error without
# --portfolio N).
expect_exit(2 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --explain)
expect_exit(2 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --anneal 4)
expect_exit(2 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --heft)
expect_exit(2 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --pareto)
expect_exit(2 --program jacobi --topology mesh:4x4 --portfolio 2
            --anneal -1)
expect_exit(2 --program jacobi --topology mesh:4x4 --portfolio 2
            --anneal x)

# 2: multilevel usage errors (bad level cap; portfolio conflict --
# both flags claim the whole strategy selection).
expect_exit(2 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --multilevel 0)
expect_exit(2 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --multilevel -3)
expect_exit(2 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --multilevel 99)
expect_exit(2 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --multilevel --portfolio 4)

# 3: bad input.
expect_exit(3 --larcs /nonexistent/file.larcs --topology mesh:4x4)
expect_exit(3 --program no-such-program --topology mesh:4x4)
expect_exit(3 --program jacobi --bind n=8 --bind iters=10
            --topology badfamily:9)
expect_exit(3 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --inject-faults p99)
expect_exit(3 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --inject-faults "!!")
expect_exit(3 --program jacobi --topology mesh:4x4)  # missing bindings

# 4: mapping infeasible (machine fully dead).
expect_exit(4 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:2x2 --inject-faults p0,p1,p2,p3)

# 0: --digest prints the server cache key instead of mapping; the same
# inputs that map successfully must digest successfully.
expect_exit(0 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --digest)
expect_exit(3 --program no-such-program --topology mesh:4x4 --digest)

# ---------------------------------------------------------------------
# oregami_serve: process exit codes (0 clean drain even when every job
# fails, 2 usage). Per-job failures are result lines, not exits.
# ---------------------------------------------------------------------
function(expect_serve_exit expected input)
  execute_process(COMMAND ${CMAKE_COMMAND} -E echo "${input}"
                  COMMAND ${OREGAMI_SERVE} ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT code EQUAL expected)
    message(FATAL_ERROR
            "oregami_serve ${ARGN} < '${input}': expected exit "
            "${expected}, got ${code}")
  endif()
endfunction()

# 0: clean drains -- a good job, an empty stream, and every flavour of
# bad job (malformed JSON, unknown program, unknown topology, expired
# deadline) must all leave the daemon alive to exit 0.
expect_serve_exit(0 "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},\"topology\":\"mesh:4x4\"}")
expect_serve_exit(0 "")
expect_serve_exit(0 "this is not json")
expect_serve_exit(0 "{\"id\":2,\"program\":\"nope\",\"topology\":\"mesh:4x4\"}")
expect_serve_exit(0 "{\"id\":3,\"program\":\"jacobi\",\"topology\":\"taurus\"}")
expect_serve_exit(0 "{\"id\":4,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},\"topology\":\"mesh:4x4\",\"deadline_ms\":-1}"
                  --deterministic)

# 2: usage errors kill the daemon before it reads anything.
expect_serve_exit(2 "" --frobnicate)
expect_serve_exit(2 "" --jobs -2)
expect_serve_exit(2 "" --queue-capacity 0)
expect_serve_exit(2 "" --cache-capacity x)

# 2: a bad --failpoints schedule is a usage error (quotable message on
# stderr); a valid schedule that injects a per-job failure is not -- the
# failure becomes a code-1 result line and the drain still exits 0.
expect_serve_exit(2 "" --failpoints "a.b:frobnicate")
expect_serve_exit(2 "" --failpoints "a.b:err@p5")
expect_serve_exit(0 "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},\"topology\":\"mesh:4x4\"}"
                  --failpoints "job.run:throw@1")

# ---------------------------------------------------------------------
# Telemetry flags: malformed values and dangling dependents are usage
# errors; an unwritable metrics path degrades (warning on stderr) but
# the daemon still drains to exit 0.
# ---------------------------------------------------------------------
set(METRICS_FILE ${CMAKE_CURRENT_BINARY_DIR}/exit_codes_metrics.prom)
file(REMOVE ${METRICS_FILE})
expect_serve_exit(2 "" --metrics-interval x --metrics-file ${METRICS_FILE})
expect_serve_exit(2 "" --metrics-interval 0 --metrics-file ${METRICS_FILE})
expect_serve_exit(2 "" --metrics-interval 5)   # no --metrics-file
expect_serve_exit(2 "" --log-level bogus --log ${CMAKE_CURRENT_BINARY_DIR}/exit_codes.log)
expect_serve_exit(2 "" --log-level info)       # no --log
expect_serve_exit(0 "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},\"topology\":\"mesh:4x4\"}"
                  --metrics-file ${METRICS_FILE})
if(NOT EXISTS ${METRICS_FILE})
  message(FATAL_ERROR
          "oregami_serve --metrics-file did not create ${METRICS_FILE}")
endif()
file(REMOVE ${METRICS_FILE})
expect_serve_exit(0 "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},\"topology\":\"mesh:4x4\"}"
                  --metrics-file /nonexistent-dir/metrics.prom)

# oregami_map --metrics-file follows the same contract: a one-shot dump
# on a writable path, degrade-don't-die on an unwritable one.
expect_exit(0 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --metrics-file ${METRICS_FILE})
if(NOT EXISTS ${METRICS_FILE})
  message(FATAL_ERROR
          "oregami_map --metrics-file did not create ${METRICS_FILE}")
endif()
file(REMOVE ${METRICS_FILE})
expect_exit(0 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --metrics-file /nonexistent-dir/metrics.prom)
expect_exit(2 --program jacobi --bind n=8 --bind iters=10
            --topology mesh:4x4 --metrics-file)   # missing path argument

# ---------------------------------------------------------------------
# Crash-safe persistence: --cache-file cold boot, warm boot, and a
# degraded (unwritable) path must all drain to exit 0; the persisted
# file is inspectable via oregami_map --cache-file (0 valid, 3 missing).
# ---------------------------------------------------------------------
set(CACHE_FILE ${CMAKE_CURRENT_BINARY_DIR}/exit_codes_cache.bin)
file(REMOVE ${CACHE_FILE})
expect_serve_exit(0 "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},\"topology\":\"mesh:4x4\"}"
                  --cache-file ${CACHE_FILE})
if(NOT EXISTS ${CACHE_FILE})
  message(FATAL_ERROR "oregami_serve --cache-file did not create ${CACHE_FILE}")
endif()
expect_serve_exit(0 "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},\"topology\":\"mesh:4x4\"}"
                  --cache-file ${CACHE_FILE})
expect_serve_exit(0 "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},\"topology\":\"mesh:4x4\"}"
                  --cache-file /nonexistent-dir/cache.bin)
expect_exit(0 --cache-file ${CACHE_FILE})
expect_exit(3 --cache-file ${CACHE_FILE}.does-not-exist)
file(REMOVE ${CACHE_FILE})

# ---------------------------------------------------------------------
# Signals: SIGTERM is handled like SIGINT -- drain, flush, exit 0.
# ---------------------------------------------------------------------
if(UNIX)
  # `sleep 3` keeps stdin open so the daemon is genuinely blocked in its
  # read loop when SIGTERM arrives ($! is the last pipeline element).
  execute_process(
    COMMAND sh -c "sleep 3 | ${OREGAMI_SERVE} --deterministic > /dev/null 2>&1 & pid=$!; sleep 0.2; kill -TERM $pid 2>/dev/null; wait $pid"
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
            "oregami_serve under SIGTERM: expected clean exit 0, got ${code}")
  endif()
endif()
