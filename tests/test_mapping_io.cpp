#include <gtest/gtest.h>

#include <sstream>

#include "oregami/core/mapping_io.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

struct Fixture {
  larcs::CompiledProgram cp;
  Topology topo;
  MapperReport report;

  Fixture()
      : cp(larcs::compile_source(larcs::programs::nbody(),
                                 {{"n", 15}, {"s", 2}, {"m", 4}})),
        topo(Topology::hypercube(3)),
        report(map_computation(cp.graph, topo)) {}
};

TEST(MappingIo, RoundTripPreservesEverything) {
  const Fixture f;
  const auto text = mapping_to_string(f.report.mapping, 8);
  int procs = 0;
  const Mapping loaded = mapping_from_string(text, &procs);
  EXPECT_EQ(procs, 8);
  EXPECT_EQ(loaded.contraction.cluster_of_task,
            f.report.mapping.contraction.cluster_of_task);
  EXPECT_EQ(loaded.contraction.num_clusters,
            f.report.mapping.contraction.num_clusters);
  EXPECT_EQ(loaded.embedding.proc_of_cluster,
            f.report.mapping.embedding.proc_of_cluster);
  ASSERT_EQ(loaded.routing.size(), f.report.mapping.routing.size());
  for (std::size_t k = 0; k < loaded.routing.size(); ++k) {
    ASSERT_EQ(loaded.routing[k].route_of_edge.size(),
              f.report.mapping.routing[k].route_of_edge.size());
    for (std::size_t i = 0; i < loaded.routing[k].route_of_edge.size();
         ++i) {
      EXPECT_EQ(loaded.routing[k].route_of_edge[i].nodes,
                f.report.mapping.routing[k].route_of_edge[i].nodes);
      EXPECT_EQ(loaded.routing[k].route_of_edge[i].links,
                f.report.mapping.routing[k].route_of_edge[i].links);
    }
  }
  // The reloaded mapping still passes full validation.
  EXPECT_NO_THROW(validate_mapping(loaded, f.cp.graph, f.topo));
}

TEST(MappingIo, RoundTripIsTextualFixpoint) {
  const Fixture f;
  const auto once = mapping_to_string(f.report.mapping, 8);
  const auto twice = mapping_to_string(mapping_from_string(once), 8);
  EXPECT_EQ(once, twice);
}

TEST(MappingIo, RejectsCorruptedHeaders) {
  const Fixture f;
  EXPECT_THROW((void)mapping_from_string("garbage"), MappingError);
  EXPECT_THROW((void)mapping_from_string("oregami-mapping v2\n"),
               MappingError);
  EXPECT_THROW((void)mapping_from_string(
                   "oregami-mapping v1\ntasks -3 clusters 1 procs 1 "
                   "phases 0\n"),
               MappingError);
}

TEST(MappingIo, RejectsOutOfRangeEntries) {
  const Fixture f;
  auto text = mapping_to_string(f.report.mapping, 8);
  // Cluster id beyond the declared count.
  auto corrupted = text;
  const auto pos = corrupted.find("contraction ");
  corrupted.replace(pos + 12, 1, "9");
  EXPECT_THROW((void)mapping_from_string(corrupted), MappingError);
}

TEST(MappingIo, RejectsRouteShapeMismatch) {
  const std::string text =
      "oregami-mapping v1\n"
      "tasks 2 clusters 2 procs 2 phases 1\n"
      "contraction 0 1\n"
      "embedding 0 1\n"
      "phase 1\n"
      "route 2 0 1 0\n";  // 2 nodes but 0 links
  EXPECT_THROW((void)mapping_from_string(text), MappingError);
}

TEST(MappingIo, TruncatedFileDetected) {
  const Fixture f;
  const auto text = mapping_to_string(f.report.mapping, 8);
  EXPECT_THROW(
      (void)mapping_from_string(text.substr(0, text.size() / 2)),
      MappingError);
}

/// Extracts the message of the MappingError that `text` provokes;
/// fails the test if parsing unexpectedly succeeds.
std::string error_of(const std::string& text) {
  try {
    (void)mapping_from_string(text);
  } catch (const MappingError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected MappingError for:\n" << text;
  return {};
}

TEST(MappingIo, ErrorsCarryLineNumbers) {
  // Bad header token: line 1.
  EXPECT_NE(error_of("garbage").find("mapping file line 1:"),
            std::string::npos);
  // Bad version: still line 1.
  EXPECT_NE(error_of("oregami-mapping v2\n").find("mapping file line 1:"),
            std::string::npos);
  // Negative task count on line 2.
  EXPECT_NE(error_of("oregami-mapping v1\n"
                     "tasks -3 clusters 1 procs 1 phases 0\n")
                .find("mapping file line 2:"),
            std::string::npos);
  // Out-of-range contraction entry on line 3.
  EXPECT_NE(error_of("oregami-mapping v1\n"
                     "tasks 2 clusters 2 procs 2 phases 0\n"
                     "contraction 0 9\n"
                     "embedding 0 1\n")
                .find("mapping file line 3:"),
            std::string::npos);
  // Route shape mismatch on line 6.
  EXPECT_NE(error_of("oregami-mapping v1\n"
                     "tasks 2 clusters 2 procs 2 phases 1\n"
                     "contraction 0 1\n"
                     "embedding 0 1\n"
                     "phase 1\n"
                     "route 2 0 1 0\n")
                .find("mapping file line 6:"),
            std::string::npos);
}

TEST(MappingIo, RejectsTrailingGarbageInNumbers) {
  const auto message = error_of(
      "oregami-mapping v1\n"
      "tasks 2x clusters 2 procs 2 phases 0\n");
  EXPECT_NE(message.find("mapping file line 2:"), std::string::npos);
  EXPECT_NE(message.find("2x"), std::string::npos);
}

TEST(MappingIo, TruncationAtEveryTokenIsALocatedError) {
  // Cutting the file after any token prefix must produce a located
  // MappingError -- never a crash, hang, or silent success.
  const Fixture f;
  const auto text = mapping_to_string(f.report.mapping, 8);
  int cuts = 0;
  for (std::size_t pos = 0; pos + 1 < text.size();
       pos = text.find_first_of(" \n", pos + 1)) {
    if (pos == std::string::npos) {
      break;
    }
    const auto truncated = text.substr(0, pos);
    try {
      (void)mapping_from_string(truncated);
      // A prefix that happens to be self-consistent would be fine, but
      // this format's counts make every strict prefix incomplete.
      ADD_FAILURE() << "truncation at " << pos << " parsed";
    } catch (const MappingError& e) {
      EXPECT_NE(std::string(e.what()).find("mapping file line "),
                std::string::npos)
          << "unlocated error at cut " << pos << ": " << e.what();
    }
    ++cuts;
  }
  EXPECT_GT(cuts, 20);
}

TEST(MappingIo, LargeFileRoundTrips) {
  // 120k tasks / 4096 procs / 150k routed edges -- the size class the
  // multilevel mapper emits. Exercises the buffered writer's flush
  // blocks and the reader's capped reserves; must round-trip exactly
  // and stay a textual fixpoint.
  constexpr int kTasks = 120'000;
  constexpr int kProcs = 4096;
  constexpr int kEdges = 150'000;
  Mapping mapping;
  mapping.contraction.num_clusters = kProcs;
  mapping.contraction.cluster_of_task.resize(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    mapping.contraction.cluster_of_task[static_cast<std::size_t>(t)] =
        t % kProcs;
  }
  mapping.embedding.proc_of_cluster.resize(kProcs);
  for (int c = 0; c < kProcs; ++c) {
    mapping.embedding.proc_of_cluster[static_cast<std::size_t>(c)] =
        (c * 31 + 7) % kProcs;  // a permutation (31 coprime to 4096)
  }
  PhaseRouting phase;
  phase.route_of_edge.reserve(kEdges);
  for (int i = 0; i < kEdges; ++i) {
    Route route;
    const int a = i % kProcs;
    const int b = (i * 7 + 1) % kProcs;
    route.nodes = {a, b};
    route.links = {(a * 2 + b) % (kProcs * 2)};
    if (i % 3 == 0) {  // some longer routes
      const int c = (i * 13 + 5) % kProcs;
      route.nodes.push_back(c);
      route.links.push_back((b * 2 + c) % (kProcs * 2));
    }
    phase.route_of_edge.push_back(std::move(route));
  }
  mapping.routing.push_back(std::move(phase));

  const auto text = mapping_to_string(mapping, kProcs);
  EXPECT_GT(text.size(), 1'000'000u);  // genuinely a multi-MB file
  int procs = 0;
  const Mapping loaded = mapping_from_string(text, &procs);
  EXPECT_EQ(procs, kProcs);
  EXPECT_EQ(loaded.contraction.cluster_of_task,
            mapping.contraction.cluster_of_task);
  EXPECT_EQ(loaded.embedding.proc_of_cluster,
            mapping.embedding.proc_of_cluster);
  ASSERT_EQ(loaded.routing.size(), 1u);
  ASSERT_EQ(loaded.routing[0].route_of_edge.size(),
            mapping.routing[0].route_of_edge.size());
  for (std::size_t i = 0; i < loaded.routing[0].route_of_edge.size();
       i += 997) {  // spot-check every ~1000th route
    EXPECT_EQ(loaded.routing[0].route_of_edge[i].nodes,
              mapping.routing[0].route_of_edge[i].nodes);
    EXPECT_EQ(loaded.routing[0].route_of_edge[i].links,
              mapping.routing[0].route_of_edge[i].links);
  }
  EXPECT_EQ(mapping_to_string(loaded, kProcs), text);
}

TEST(MappingIo, RandomByteCorruptionNeverCrashes) {
  // Flip / delete / insert bytes all over the serialised mapping; the
  // reader must either round-trip-equal or throw MappingError.
  const Fixture f;
  const auto text = mapping_to_string(f.report.mapping, 8);
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = text;
    const auto pos = next() % mutated.size();
    switch (next() % 3) {
      case 0:
        mutated[pos] = static_cast<char>('!' + next() % 90);
        break;
      case 1:
        mutated.erase(pos, 1 + next() % 5);
        break;
      default:
        mutated.insert(pos, std::string(1, static_cast<char>(
                                               '0' + next() % 10)));
        break;
    }
    try {
      (void)mapping_from_string(mutated);  // surviving mutations are fine
    } catch (const MappingError& e) {
      EXPECT_NE(std::string(e.what()).find("mapping file"),
                std::string::npos);
    }
    // Anything else (std::bad_alloc, segfault, assert) fails the test.
  }
}

}  // namespace
}  // namespace oregami
