#include <gtest/gtest.h>

#include <sstream>

#include "oregami/core/mapping_io.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

struct Fixture {
  larcs::CompiledProgram cp;
  Topology topo;
  MapperReport report;

  Fixture()
      : cp(larcs::compile_source(larcs::programs::nbody(),
                                 {{"n", 15}, {"s", 2}, {"m", 4}})),
        topo(Topology::hypercube(3)),
        report(map_computation(cp.graph, topo)) {}
};

TEST(MappingIo, RoundTripPreservesEverything) {
  const Fixture f;
  const auto text = mapping_to_string(f.report.mapping, 8);
  int procs = 0;
  const Mapping loaded = mapping_from_string(text, &procs);
  EXPECT_EQ(procs, 8);
  EXPECT_EQ(loaded.contraction.cluster_of_task,
            f.report.mapping.contraction.cluster_of_task);
  EXPECT_EQ(loaded.contraction.num_clusters,
            f.report.mapping.contraction.num_clusters);
  EXPECT_EQ(loaded.embedding.proc_of_cluster,
            f.report.mapping.embedding.proc_of_cluster);
  ASSERT_EQ(loaded.routing.size(), f.report.mapping.routing.size());
  for (std::size_t k = 0; k < loaded.routing.size(); ++k) {
    ASSERT_EQ(loaded.routing[k].route_of_edge.size(),
              f.report.mapping.routing[k].route_of_edge.size());
    for (std::size_t i = 0; i < loaded.routing[k].route_of_edge.size();
         ++i) {
      EXPECT_EQ(loaded.routing[k].route_of_edge[i].nodes,
                f.report.mapping.routing[k].route_of_edge[i].nodes);
      EXPECT_EQ(loaded.routing[k].route_of_edge[i].links,
                f.report.mapping.routing[k].route_of_edge[i].links);
    }
  }
  // The reloaded mapping still passes full validation.
  EXPECT_NO_THROW(validate_mapping(loaded, f.cp.graph, f.topo));
}

TEST(MappingIo, RoundTripIsTextualFixpoint) {
  const Fixture f;
  const auto once = mapping_to_string(f.report.mapping, 8);
  const auto twice = mapping_to_string(mapping_from_string(once), 8);
  EXPECT_EQ(once, twice);
}

TEST(MappingIo, RejectsCorruptedHeaders) {
  const Fixture f;
  EXPECT_THROW((void)mapping_from_string("garbage"), MappingError);
  EXPECT_THROW((void)mapping_from_string("oregami-mapping v2\n"),
               MappingError);
  EXPECT_THROW((void)mapping_from_string(
                   "oregami-mapping v1\ntasks -3 clusters 1 procs 1 "
                   "phases 0\n"),
               MappingError);
}

TEST(MappingIo, RejectsOutOfRangeEntries) {
  const Fixture f;
  auto text = mapping_to_string(f.report.mapping, 8);
  // Cluster id beyond the declared count.
  auto corrupted = text;
  const auto pos = corrupted.find("contraction ");
  corrupted.replace(pos + 12, 1, "9");
  EXPECT_THROW((void)mapping_from_string(corrupted), MappingError);
}

TEST(MappingIo, RejectsRouteShapeMismatch) {
  const std::string text =
      "oregami-mapping v1\n"
      "tasks 2 clusters 2 procs 2 phases 1\n"
      "contraction 0 1\n"
      "embedding 0 1\n"
      "phase 1\n"
      "route 2 0 1 0\n";  // 2 nodes but 0 links
  EXPECT_THROW((void)mapping_from_string(text), MappingError);
}

TEST(MappingIo, TruncatedFileDetected) {
  const Fixture f;
  const auto text = mapping_to_string(f.report.mapping, 8);
  EXPECT_THROW(
      (void)mapping_from_string(text.substr(0, text.size() / 2)),
      MappingError);
}

}  // namespace
}  // namespace oregami
