#include <gtest/gtest.h>

#include "oregami/graph/matching.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

BipartiteGraph random_bipartite(int nl, int nr, double density,
                                std::uint64_t seed) {
  BipartiteGraph g(nl, nr);
  SplitMix64 rng(seed);
  for (int l = 0; l < nl; ++l) {
    for (int r = 0; r < nr; ++r) {
      if (rng.next_double() < density) {
        g.add_edge(l, r);
      }
    }
  }
  return g;
}

TEST(Bipartite, EdgeBookkeeping) {
  BipartiteGraph g(2, 3);
  g.add_edge(0, 2);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.right_neighbors(0).size(), 1u);
  EXPECT_EQ(g.right_neighbors(1).size(), 2u);
}

TEST(GreedyMaximal, PerfectOnDiagonal) {
  BipartiteGraph g(4, 4);
  for (int i = 0; i < 4; ++i) {
    g.add_edge(i, i);
  }
  const auto m = greedy_maximal_matching(g);
  EXPECT_EQ(m.size(), 4);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_TRUE(is_maximal_matching(g, m));
}

TEST(GreedyMaximal, CanBeSuboptimal) {
  // Greedy takes (0,0) first and blocks the perfect matching
  // {(0,1),(1,0)} ... construct: left 0 adj {0,1}, left 1 adj {0}.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto greedy = greedy_maximal_matching(g);
  const auto maximum = hopcroft_karp(g);
  EXPECT_TRUE(is_maximal_matching(g, greedy));
  EXPECT_EQ(maximum.size(), 2);
  EXPECT_GE(greedy.size(), 1);
}

TEST(HopcroftKarp, FindsPerfectMatchingOnCycle) {
  // Even cycle as bipartite graph: left i adj right i and right i+1.
  const int n = 6;
  BipartiteGraph g(n, n);
  for (int i = 0; i < n; ++i) {
    g.add_edge(i, i);
    g.add_edge(i, (i + 1) % n);
  }
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size(), n);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g(3, 3);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size(), 0);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_TRUE(is_maximal_matching(g, m));
}

TEST(HopcroftKarp, AugmentsThroughAlternatingPath) {
  // Classic 3x3 requiring augmentation.
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 1);
  g.add_edge(2, 2);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size(), 3);
}

/// Exhaustive max matching by brute force for certification.
int brute_force_max(const BipartiteGraph& g) {
  std::vector<int> right_used(static_cast<std::size_t>(g.n_right()), 0);
  int best = 0;
  auto rec = [&](auto&& self, int l, int current) -> void {
    if (l == g.n_left()) {
      best = std::max(best, current);
      return;
    }
    // Prune: even matching everyone else cannot beat best.
    if (current + (g.n_left() - l) <= best) {
      return;
    }
    self(self, l + 1, current);
    for (const int r : g.right_neighbors(l)) {
      if (right_used[static_cast<std::size_t>(r)] == 0) {
        right_used[static_cast<std::size_t>(r)] = 1;
        self(self, l + 1, current + 1);
        right_used[static_cast<std::size_t>(r)] = 0;
      }
    }
  };
  rec(rec, 0, 0);
  return best;
}

class MatchingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingProperty, HopcroftKarpMatchesBruteForce) {
  SplitMix64 rng(GetParam());
  const int nl = static_cast<int>(2 + rng.next_below(7));
  const int nr = static_cast<int>(2 + rng.next_below(7));
  const auto g = random_bipartite(nl, nr, 0.4, GetParam() * 7 + 1);
  const auto m = hopcroft_karp(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_TRUE(is_maximal_matching(g, m));
  EXPECT_EQ(m.size(), brute_force_max(g));
}

TEST_P(MatchingProperty, GreedyIsValidMaximalAndHalfOptimal) {
  SplitMix64 rng(GetParam() + 1000);
  const int nl = static_cast<int>(2 + rng.next_below(20));
  const int nr = static_cast<int>(2 + rng.next_below(20));
  const auto g = random_bipartite(nl, nr, 0.3, GetParam() * 13 + 5);
  const auto greedy = greedy_maximal_matching(g);
  const auto maximum = hopcroft_karp(g);
  EXPECT_TRUE(is_valid_matching(g, greedy));
  EXPECT_TRUE(is_maximal_matching(g, greedy));
  EXPECT_GE(2 * greedy.size(), maximum.size());
  EXPECT_LE(greedy.size(), maximum.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace oregami
