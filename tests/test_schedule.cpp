#include <gtest/gtest.h>

#include <set>

#include "oregami/arch/routes.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/schedule/synchrony.hpp"

namespace oregami {
namespace {

struct Fixture {
  larcs::CompiledProgram cp;
  Topology topo;
  MapperReport report;
  std::vector<int> procs;

  Fixture()
      : cp(larcs::compile_source(larcs::programs::nbody(),
                                 {{"n", 16}, {"s", 2}, {"m", 4}})),
        topo(Topology::hypercube(3)),
        report(map_computation(cp.graph, topo)),
        procs(report.mapping.proc_of_task()) {}
};

TEST(Synchrony, SetsPartitionTasksOnePerProcessor) {
  const Fixture f;
  const auto schedule =
      derive_synchrony_sets(f.cp.graph, f.procs, f.topo.num_procs());
  // 16 tasks on 8 processors, 2 per processor: exactly 2 sets of 8.
  ASSERT_EQ(schedule.sets.size(), 2u);
  std::set<int> covered;
  for (const auto& set : schedule.sets) {
    EXPECT_EQ(set.tasks.size(), 8u);
    std::set<int> procs_in_set;
    for (const int t : set.tasks) {
      EXPECT_TRUE(procs_in_set.insert(f.procs[static_cast<std::size_t>(t)])
                      .second)
          << "two tasks of one set share a processor";
      EXPECT_TRUE(covered.insert(t).second);
      EXPECT_EQ(schedule.set_of_task[static_cast<std::size_t>(t)],
                set.index);
    }
  }
  EXPECT_EQ(covered.size(), 16u);
}

TEST(Synchrony, LocalOrderSortedByTaskId) {
  const Fixture f;
  const auto schedule =
      derive_synchrony_sets(f.cp.graph, f.procs, f.topo.num_procs());
  for (const auto& order : schedule.local_order) {
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  }
}

TEST(Synchrony, UnevenLoadsGiveRaggedSets) {
  TaskGraph g;
  for (int i = 0; i < 5; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  g.add_comm_phase("p");
  const std::vector<int> procs{0, 0, 0, 1, 1};
  const auto schedule = derive_synchrony_sets(g, procs, 2);
  ASSERT_EQ(schedule.sets.size(), 3u);
  EXPECT_EQ(schedule.sets[0].tasks.size(), 2u);
  EXPECT_EQ(schedule.sets[1].tasks.size(), 2u);
  EXPECT_EQ(schedule.sets[2].tasks.size(), 1u);  // only proc 0's third
}

TEST(Synchrony, DirectiveExpandsExecPhases) {
  const Fixture f;
  const auto schedule =
      derive_synchrony_sets(f.cp.graph, f.procs, f.topo.num_procs());
  const auto directive = local_directive(f.cp.graph, schedule, 0);
  // Shape mirrors the phase expression with the processor's tasks
  // spliced in for each exec phase.
  EXPECT_NE(directive.find("ring"), std::string::npos);
  EXPECT_NE(directive.find("chordal"), std::string::npos);
  EXPECT_NE(directive.find("body("), std::string::npos);
  EXPECT_NE(directive.find("^2"), std::string::npos);  // outer repeat s=2
}

TEST(Synchrony, DirectiveForIdleProcessorSaysIdle) {
  TaskGraph g;
  g.add_task("only");
  g.add_comm_phase("p");
  g.add_exec_phase("w", {1});
  g.set_phase_expr(PhaseTree::exec(0));
  const auto schedule = derive_synchrony_sets(g, {0}, 3);
  EXPECT_EQ(local_directive(g, schedule, 2), "idle");
}

TEST(SynchronyRoute, RoutesValidAndAlignedWithOriginalEdges) {
  const Fixture f;
  const auto schedule =
      derive_synchrony_sets(f.cp.graph, f.procs, f.topo.num_procs());
  const auto routing =
      synchrony_route(f.cp.graph, f.procs, f.topo, schedule);
  ASSERT_EQ(routing.size(), f.cp.graph.comm_phases().size());
  for (std::size_t k = 0; k < routing.size(); ++k) {
    const auto& phase = f.cp.graph.comm_phases()[k];
    ASSERT_EQ(routing[k].route_of_edge.size(), phase.edges.size());
    for (std::size_t i = 0; i < phase.edges.size(); ++i) {
      const auto& e = phase.edges[i];
      EXPECT_TRUE(is_shortest_route(
          f.topo, routing[k].route_of_edge[i],
          f.procs[static_cast<std::size_t>(e.src)],
          f.procs[static_cast<std::size_t>(e.dst)]))
          << "phase " << phase.name << " edge " << i;
    }
  }
}

TEST(SynchronyRoute, Deterministic) {
  const Fixture f;
  const auto schedule =
      derive_synchrony_sets(f.cp.graph, f.procs, f.topo.num_procs());
  const auto a = synchrony_route(f.cp.graph, f.procs, f.topo, schedule);
  const auto b = synchrony_route(f.cp.graph, f.procs, f.topo, schedule);
  for (std::size_t k = 0; k < a.size(); ++k) {
    for (std::size_t i = 0; i < a[k].route_of_edge.size(); ++i) {
      EXPECT_EQ(a[k].route_of_edge[i].nodes, b[k].route_of_edge[i].nodes);
    }
  }
}

TEST(SynchronyRoute, ContentionComparableToPlainMmRoute) {
  const Fixture f;
  const auto schedule =
      derive_synchrony_sets(f.cp.graph, f.procs, f.topo.num_procs());
  const auto sync = synchrony_route(f.cp.graph, f.procs, f.topo, schedule);
  const auto plain = mm_route(f.cp.graph, f.procs, f.topo);
  auto max_contention = [&](const std::vector<PhaseRouting>& routing) {
    int worst = 0;
    for (const auto& pr : routing) {
      std::vector<int> count(
          static_cast<std::size_t>(f.topo.num_links()), 0);
      for (const auto& r : pr.route_of_edge) {
        for (const int link : r.links) {
          worst = std::max(worst, ++count[static_cast<std::size_t>(link)]);
        }
      }
    }
    return worst;
  };
  // Reordering must not blow up contention (same matching machinery).
  EXPECT_LE(max_contention(sync), max_contention(plain) + 1);
}

}  // namespace
}  // namespace oregami
