// Tests for the structured pipeline tracer (support/trace) and its
// integration with the portfolio mapper.
//
// The two contracts under test:
//   * disabled tracing is free -- no allocations, no recorded events,
//     and a traced portfolio run produces byte-identical results to an
//     untraced one;
//   * enabled tracing is deterministic -- the canonical export is
//     byte-identical across worker counts, because events are keyed by
//     (span path, per-thread sequence) and every concurrent lane owns a
//     distinct path prefix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/portfolio.hpp"
#include "oregami/support/thread_pool.hpp"
#include "oregami/support/trace.hpp"

// ------------------------------------------------- allocation counting
//
// Global counting overrides so the disabled-overhead test can assert
// "zero allocations" instead of eyeballing the code. Relaxed atomics:
// the counter only needs to be exact while the test runs single-
// threaded code.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace oregami {
namespace {

struct Compiled {
  larcs::Program ast;
  larcs::CompiledProgram cp;
};

Compiled compile_program(const std::string& name) {
  for (const auto& entry : larcs::programs::catalog()) {
    if (entry.name != name) {
      continue;
    }
    std::map<std::string, long> bindings(entry.example_bindings.begin(),
                                         entry.example_bindings.end());
    larcs::Program ast = larcs::parse_program(entry.source);
    larcs::CompiledProgram cp = larcs::compile(ast, bindings);
    return {std::move(ast), std::move(cp)};
  }
  throw std::runtime_error("program not in catalog: " + name);
}

/// Every test leaves the tracer disabled and empty for the next one.
struct TraceReset {
  TraceReset() {
    trace::disable();
    trace::clear();
  }
  ~TraceReset() {
    trace::disable();
    trace::clear();
  }
};

// ------------------------------------------------------- disabled mode

TEST(Trace, DisabledTracePointsAllocateNothingAndRecordNothing) {
  const TraceReset reset;
  ASSERT_FALSE(trace::enabled());
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    const trace::Span span("span_name");
    trace::counter("counter_name", i);
    trace::instant("instant_name");
    const trace::LaneScope lane(
        trace::enabled() ? std::string("lane") : std::string(), 1);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(before, after) << "disabled trace points must not allocate";
  EXPECT_TRUE(trace::snapshot().empty());
}

TEST(Trace, TracedPortfolioRunMatchesUntracedGolden) {
  const TraceReset reset;
  const auto c = compile_program("nbody");
  const Topology topo = Topology::mesh(4, 4);
  PortfolioOptions popts;
  popts.num_seeded = 12;
  popts.jobs = 1;

  const auto untraced = portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  trace::enable();
  const auto traced = portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  trace::disable();

  // Tracing must be observation only: identical table, winner, mapping.
  EXPECT_EQ(untraced.table(), traced.table());
  EXPECT_EQ(untraced.best_id, traced.best_id);
  EXPECT_EQ(untraced.best.mapping.proc_of_task(),
            traced.best.mapping.proc_of_task());
  EXPECT_EQ(untraced.win_reason, traced.win_reason);
  EXPECT_EQ(untraced.explain(), traced.explain());
  EXPECT_FALSE(trace::snapshot().empty());
}

// -------------------------------------------------- span correctness

TEST(Trace, NestedSpansBuildSlashPathsWithDepths) {
  const TraceReset reset;
  trace::enable();
  {
    const trace::Span outer("outer");
    trace::counter("hits", 7);
    {
      const trace::Span inner("inner");
      trace::instant("note", "k=v");
    }
  }
  trace::disable();

  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Canonical order is (path, seq), so paths arrive sorted.
  EXPECT_EQ(events[0].path, "outer");
  EXPECT_EQ(events[0].kind, trace::Event::Kind::Span);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].path, "outer/hits");
  EXPECT_EQ(events[1].kind, trace::Event::Kind::Counter);
  EXPECT_EQ(events[1].value, 7);
  EXPECT_EQ(events[2].path, "outer/inner");
  EXPECT_EQ(events[2].kind, trace::Event::Kind::Span);
  EXPECT_EQ(events[2].depth, 1);
  EXPECT_EQ(events[3].path, "outer/inner/note");
  EXPECT_EQ(events[3].kind, trace::Event::Kind::Instant);
  EXPECT_EQ(events[3].args, "k=v");
  // The outer span's duration covers the inner one.
  EXPECT_GE(events[0].dur_us, events[2].dur_us);
}

TEST(Trace, LaneScopeRebasesPathAndLane) {
  const TraceReset reset;
  trace::enable();
  {
    const trace::LaneScope lane("portfolio/cand#3", 4);
    const trace::Span span("contract");
    trace::counter("clusters", 8);
  }
  {
    const trace::Span span("after");
  }
  trace::disable();

  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].path, "after");
  EXPECT_EQ(events[0].lane, 0);
  EXPECT_EQ(events[1].path, "portfolio/cand#3/contract");
  EXPECT_EQ(events[1].lane, 4);
  EXPECT_EQ(events[1].depth, 2);
  EXPECT_EQ(events[2].path, "portfolio/cand#3/contract/clusters");
  EXPECT_EQ(events[2].value, 8);
}

// ------------------------------------------------------- determinism

std::string canonical_trace_of_run(const Compiled& c, const Topology& topo,
                                   int jobs) {
  trace::clear();
  trace::enable();
  PortfolioOptions popts;
  popts.num_seeded = 12;
  popts.jobs = jobs;
  (void)portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  trace::disable();
  std::ostringstream out;
  trace::ExportOptions canonical;
  canonical.canonical = true;
  trace::write_chrome_json(out, trace::snapshot(), canonical);
  trace::clear();
  return out.str();
}

TEST(Trace, CanonicalExportIdenticalAcrossWorkerCounts) {
  const TraceReset reset;
  const auto c = compile_program("nbody");
  const Topology topo = Topology::mesh(4, 4);
  const std::string serial = canonical_trace_of_run(c, topo, 1);
  const std::string wide = canonical_trace_of_run(c, topo, 0);
  const std::string oversubscribed = canonical_trace_of_run(c, topo, 5);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, wide);
  EXPECT_EQ(serial, oversubscribed);
}

// ------------------------------------------------------ Chrome export

TEST(Trace, ChromeJsonIsWellFormed) {
  const TraceReset reset;
  trace::enable();
  {
    const trace::Span span("phase", "detail \"quoted\"\nline");
    trace::counter("value", -3);
    trace::instant("tick");
  }
  trace::disable();

  std::ostringstream out;
  trace::write_chrome_json(out, trace::snapshot());
  const std::string json = out.str();

  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
  // One object per event, correct phase letters, escaped payload.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": -3"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

// --------------------------------------------------------- provenance

TEST(Trace, ExplainNamesTheFig2NbodyWinnerWithPhaseBreakdown) {
  const auto c = compile_program("nbody");
  const Topology topo = Topology::mesh(4, 4);
  PortfolioOptions popts;
  popts.num_seeded = 12;
  popts.jobs = 1;
  const auto pf = portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  const std::string report = pf.explain();

  // Pinned against the golden nbody run (mesh:4x4, 12 seeded, jobs=1).
  EXPECT_NE(report.find("decision provenance: portfolio of 17 candidates"),
            std::string::npos);
  EXPECT_NE(report.find("winner: candidate 14 'general B=1 seed#9'"),
            std::string::npos);
  EXPECT_NE(report.find("tie-break level 1 (completion)"),
            std::string::npos);
  EXPECT_NE(report.find("modelled completion: 1188  external IPC: 4320"),
            std::string::npos);
  // Per-phase decomposition rows (Fig-2 n-body has ring/chordal comm
  // phases and two compute phases).
  EXPECT_NE(report.find("ring"), std::string::npos);
  EXPECT_NE(report.find("chordal"), std::string::npos);
  EXPECT_NE(report.find("comm"), std::string::npos);
  EXPECT_NE(report.find("exec"), std::string::npos);
  // explain() with no timing flag must be deterministic: run it twice.
  const auto again = portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  EXPECT_EQ(report, again.explain());
}

TEST(Trace, ExplainReportsTieBreakLevels) {
  // Two identical candidates except id -> exact tie, level 3.
  PortfolioReport report;
  report.best_id = 0;
  for (int id = 0; id < 2; ++id) {
    PortfolioCandidate c;
    c.id = id;
    c.ok = true;
    c.label = "same";
    c.completion = 100;
    c.external_ipc = 10;
    report.candidates.push_back(std::move(c));
  }
  // record_win_reason is internal; exercise it through explain()'s
  // inputs instead: build the reason the public way via run results is
  // covered above, here we just check the formatting contract on the
  // structured fields.
  report.tie_level = 3;
  report.win_reason = "exact (completion, external IPC) tie";
  const std::string text = report.explain();
  EXPECT_NE(text.find("winner: candidate 0"), std::string::npos);
  EXPECT_NE(text.find("exact (completion, external IPC) tie"),
            std::string::npos);
}

// ----------------------------------------- worker survival (satellite)

TEST(Trace, EventsSurviveAThrowingPoolTask) {
  const TraceReset reset;
  trace::enable();
  {
    ThreadPool pool(1, "trace-test");
    auto bad = pool.submit([] {
      const trace::Span span("doomed");
      trace::counter("progress", 1);
      throw std::runtime_error("task exploded");
    });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The same worker must still be alive and run queued tasks.
    auto ok = pool.submit([] { return ThreadPool::current_worker_index(); });
    EXPECT_EQ(ok.get(), 0);
  }
  trace::disable();

  const auto events = trace::snapshot();
  // RAII closed the span during unwinding, and the buffered events are
  // retained even though the task failed and the pool is gone: buffers
  // are owned by the global registry, not the worker thread.
  bool saw_counter = false;
  bool saw_span = false;
  for (const auto& e : events) {
    if (e.path == "doomed/progress" && e.value == 1) {
      saw_counter = true;
      EXPECT_GE(e.worker, 0);
    }
    if (e.path == "doomed" && e.kind == trace::Event::Kind::Span) {
      saw_span = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_span);
}

TEST(Trace, WorkerIndexIsStableInsidePoolAndAbsentOutside) {
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);
  ThreadPool pool(3, "idx-test");
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(
        pool.submit([] { return ThreadPool::current_worker_index(); }));
  }
  for (auto& f : futures) {
    const int index = f.get();
    EXPECT_GE(index, 0);
    EXPECT_LT(index, 3);
  }
}

// ----------------------------------------------------------- summary

TEST(Trace, SummaryTreeShowsLanePrefixesAndCounters) {
  const TraceReset reset;
  trace::enable();
  {
    const trace::LaneScope lane("portfolio/cand#2", 3);
    const trace::Span span("embed");
    trace::counter("steps", 5);
  }
  trace::disable();

  const std::string tree = trace::summary_tree(trace::snapshot());
  // Implied ancestors print as name-only nodes; counters as "#name".
  EXPECT_NE(tree.find("portfolio\n"), std::string::npos);
  EXPECT_NE(tree.find("cand#2\n"), std::string::npos);
  EXPECT_NE(tree.find("embed"), std::string::npos);
  EXPECT_NE(tree.find("#steps = 5"), std::string::npos);
}

}  // namespace
}  // namespace oregami
