#include <gtest/gtest.h>

#include "oregami/graph/graph.hpp"
#include "oregami/graph/gray_code.hpp"
#include "oregami/graph/shortest_paths.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) {
    g.add_edge(i, i + 1);
  }
  return g;
}

Graph cycle_graph(int n) {
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, AddEdgeNormalisesEndpoints) {
  Graph g(3);
  g.add_edge(2, 0, 5);
  ASSERT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edges()[0].u, 0);
  EXPECT_EQ(g.edges()[0].v, 2);
  EXPECT_EQ(g.edges()[0].weight, 5);
}

TEST(Graph, DuplicateEdgeAccumulatesWeight) {
  Graph g(2);
  const int id1 = g.add_edge(0, 1, 3);
  const int id2 = g.add_edge(1, 0, 4);
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge_weight(0, 1), 7);
  EXPECT_EQ(g.edge_weight(1, 0), 7);
  // Both adjacency mirrors must see the merged weight.
  EXPECT_EQ(g.neighbors(0)[0].weight, 7);
  EXPECT_EQ(g.neighbors(1)[0].weight, 7);
}

TEST(Graph, EdgeWeightAbsent) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.edge_weight(0, 2).has_value());
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Graph, DegreesAndTotalWeight) {
  Graph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 2, 3);
  g.add_edge(0, 3, 4);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.total_weight(), 9);
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[1], 3);
  EXPECT_EQ(hist[3], 1);
}

TEST(Components, SingleComponent) {
  EXPECT_TRUE(is_connected(cycle_graph(5)));
  const auto comp = connected_components(cycle_graph(5));
  for (const int c : comp) {
    EXPECT_EQ(c, 0);
  }
}

TEST(Components, TwoComponents) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Components, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(Bfs, DistancesOnPath) {
  const auto dist = bfs_distances(path_graph(5), 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dist[static_cast<std::size_t>(i)], i);
  }
}

TEST(Bfs, UnreachableIsMinusOne) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], -1);
}

TEST(Apsp, MatchesPairwiseBfs) {
  const Graph g = cycle_graph(7);
  const auto table = all_pairs_distances(g);
  for (int u = 0; u < 7; ++u) {
    const auto row = bfs_distances(g, u);
    EXPECT_EQ(table[static_cast<std::size_t>(u)], row);
  }
}

TEST(Diameter, CycleAndPath) {
  EXPECT_EQ(diameter(cycle_graph(8)), 4);
  EXPECT_EQ(diameter(cycle_graph(9)), 4);
  EXPECT_EQ(diameter(path_graph(6)), 5);
}

TEST(Diameter, ThrowsOnDisconnected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW((void)diameter(g), MappingError);
}

TEST(ShortestPath, EndpointsAndLength) {
  const Graph g = cycle_graph(10);
  const auto path = shortest_path(g, 2, 6);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 2);
  EXPECT_EQ(path.back(), 6);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(ShortestPath, SameVertex) {
  const auto path = shortest_path(path_graph(3), 1, 1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1);
}

TEST(ShortestPath, UnreachableEmpty) {
  Graph g(2);
  EXPECT_TRUE(shortest_path(g, 0, 1).empty());
}

// --- Gray code -----------------------------------------------------------

TEST(GrayCode, ConsecutiveCodesDifferInOneBit) {
  for (std::uint32_t i = 0; i + 1 < 1024; ++i) {
    EXPECT_EQ(popcount32(gray_code(i) ^ gray_code(i + 1)), 1);
  }
}

TEST(GrayCode, RankIsInverse) {
  for (std::uint32_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(gray_rank(gray_code(i)), i);
  }
}

TEST(GrayCode, SequenceIsPermutation) {
  const auto seq = gray_sequence(6);
  ASSERT_EQ(seq.size(), 64u);
  std::vector<bool> seen(64, false);
  for (const auto code : seq) {
    ASSERT_LT(code, 64u);
    EXPECT_FALSE(seen[code]);
    seen[code] = true;
  }
}

TEST(BitHelpers, PowerOfTwoAndLog) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(64), 6);
  EXPECT_EQ(floor_log2(100), 6);
}

}  // namespace
}  // namespace oregami
