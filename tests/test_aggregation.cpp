#include <gtest/gtest.h>

#include "oregami/arch/routes.hpp"
#include "oregami/mapper/aggregation.hpp"

namespace oregami {
namespace {

void expect_valid_tree(const AggregationTree& tree, const Topology& topo) {
  ASSERT_EQ(tree.parent.size(), static_cast<std::size_t>(topo.num_procs()));
  EXPECT_EQ(tree.parent[static_cast<std::size_t>(tree.root)], -1);
  for (int v = 0; v < topo.num_procs(); ++v) {
    if (v == tree.root) {
      continue;
    }
    const int parent = tree.parent[static_cast<std::size_t>(v)];
    ASSERT_NE(parent, -1) << "node " << v << " unreachable";
    const auto link = topo.link_between(v, parent);
    ASSERT_TRUE(link.has_value());
    EXPECT_EQ(*link, tree.uplink[static_cast<std::size_t>(v)]);
    // Walking up terminates at the root (no cycles).
    int at = v;
    int steps = 0;
    while (at != tree.root) {
      at = tree.parent[static_cast<std::size_t>(at)];
      ASSERT_LE(++steps, topo.num_procs());
    }
  }
}

TEST(Aggregation, SpanningTreeOnHypercube) {
  const auto topo = Topology::hypercube(3);
  const auto tree = choose_aggregation_tree(topo, 0);
  expect_valid_tree(tree, topo);
  // With no existing load the tree is hop-minimal: every processor's
  // path length equals its cube distance to the root.
  for (int v = 0; v < 8; ++v) {
    const auto route = tree.route_to_root(topo, v);
    EXPECT_EQ(route.hops(), topo.distance(v, 0));
  }
}

TEST(Aggregation, TreeLoadEqualsSubtreeSizes) {
  const auto topo = Topology::chain(5);
  const auto tree = choose_aggregation_tree(topo, 0);
  expect_valid_tree(tree, topo);
  // Chain: link i--i+1 carries everything right of it.
  std::int64_t total = 0;
  for (const auto load : tree.tree_load) {
    total += load;
  }
  // Sum over links of subtree sizes = sum over procs of depth.
  std::int64_t depth_sum = 0;
  for (int v = 1; v < 5; ++v) {
    depth_sum += topo.distance(v, 0);
  }
  EXPECT_EQ(total, depth_sum);
  EXPECT_EQ(tree.bottleneck, 4);  // the root's link carries all 4
}

TEST(Aggregation, AvoidsLoadedLinks) {
  // Ring of 6, root 0. Pre-load the clockwise root link heavily: the
  // tree should route node 1's neighbourhood... specifically node 3
  // can reach the root both ways; loading one side pushes traffic to
  // the other.
  const auto topo = Topology::ring(6);
  std::vector<std::int64_t> load(
      static_cast<std::size_t>(topo.num_links()), 0);
  const auto hot = topo.link_between(0, 1);
  ASSERT_TRUE(hot.has_value());
  load[static_cast<std::size_t>(*hot)] = 100;
  const auto tree = choose_aggregation_tree(topo, 0, load);
  expect_valid_tree(tree, topo);
  // Node 1 has no choice (its only links are 0-1 and 1-2; going away
  // from the root is worse for everyone behind it), but node 2 and 3
  // must come round the far side.
  EXPECT_EQ(tree.parent[3], 4);
  EXPECT_EQ(tree.parent[2], 3);
  // The hot link carries at most node 1's own message.
  EXPECT_LE(tree.tree_load[static_cast<std::size_t>(*hot)], 1);
}

TEST(Aggregation, BottleneckAccountsExistingLoad) {
  const auto topo = Topology::star(5);
  std::vector<std::int64_t> load(
      static_cast<std::size_t>(topo.num_links()), 2);
  const auto tree = choose_aggregation_tree(topo, 0, load);
  // Star root: each leaf link carries 1 tree message on top of 2.
  EXPECT_EQ(tree.bottleneck, 3);
}

TEST(Aggregation, CommittedLinkLoadCountsRoutes) {
  const auto topo = Topology::ring(4);
  std::vector<PhaseRouting> routing(1);
  routing[0].route_of_edge.push_back(greedy_shortest_route(topo, 0, 2));
  routing[0].route_of_edge.push_back(greedy_shortest_route(topo, 1, 2));
  const auto load = committed_link_load(routing, topo.num_links());
  std::int64_t total = 0;
  for (const auto l : load) {
    total += l;
  }
  EXPECT_EQ(total, 3);  // 2 hops + 1 hop
}

TEST(Aggregation, RootedAnywhere) {
  const auto topo = Topology::mesh(3, 3);
  for (int root = 0; root < 9; ++root) {
    const auto tree = choose_aggregation_tree(topo, root);
    expect_valid_tree(tree, topo);
  }
}

}  // namespace
}  // namespace oregami
