#include <gtest/gtest.h>

#include "oregami/larcs/lexer.hpp"

namespace oregami::larcs {
namespace {

std::vector<TokenKind> kinds(const std::string& src) {
  std::vector<TokenKind> out;
  for (const auto& t : lex(src)) {
    out.push_back(t.kind);
  }
  return out;
}

TEST(Lexer, EmptySourceYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::EndOfFile);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  const auto tokens = lex("algorithm nbody nodesymmetric volume foo_1");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].kind, TokenKind::KwAlgorithm);
  EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[1].text, "nbody");
  EXPECT_EQ(tokens[2].kind, TokenKind::KwNodesymmetric);
  EXPECT_EQ(tokens[3].kind, TokenKind::KwVolume);
  EXPECT_EQ(tokens[4].text, "foo_1");
}

TEST(Lexer, IntegerLiterals) {
  const auto tokens = lex("0 42 123456789");
  EXPECT_EQ(tokens[0].value, 0);
  EXPECT_EQ(tokens[1].value, 42);
  EXPECT_EQ(tokens[2].value, 123456789);
}

TEST(Lexer, IntegerOverflowThrows) {
  EXPECT_THROW(lex("99999999999999999999999999"), LarcsError);
}

TEST(Lexer, MultiCharOperators) {
  EXPECT_EQ(kinds(".. -> == != <= >= ||"),
            (std::vector<TokenKind>{TokenKind::DotDot, TokenKind::Arrow,
                                    TokenKind::Eq, TokenKind::Ne,
                                    TokenKind::Le, TokenKind::Ge,
                                    TokenKind::ParBar,
                                    TokenKind::EndOfFile}));
}

TEST(Lexer, SingleCharOperators) {
  EXPECT_EQ(kinds("( ) [ ] { } ; , : = < > + - * / % ^"),
            (std::vector<TokenKind>{
                TokenKind::LParen, TokenKind::RParen, TokenKind::LBracket,
                TokenKind::RBracket, TokenKind::LBrace, TokenKind::RBrace,
                TokenKind::Semicolon, TokenKind::Comma, TokenKind::Colon,
                TokenKind::Assign, TokenKind::Lt, TokenKind::Gt,
                TokenKind::Plus, TokenKind::Minus, TokenKind::Star,
                TokenKind::Slash, TokenKind::Percent, TokenKind::Caret,
                TokenKind::EndOfFile}));
}

TEST(Lexer, DashDashCommentRunsToEndOfLine) {
  const auto tokens = lex("a -- this is a comment -> ; ..\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, SlashSlashCommentToo) {
  const auto tokens = lex("x // comment\ny");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "y");
}

TEST(Lexer, MinusMinusIsCommentNotTwoMinus) {
  // "a--b" swallows to EOL after 'a'.
  const auto tokens = lex("a--b");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "a");
}

TEST(Lexer, MinusGreaterVsMinus) {
  const auto tokens = lex("a - b -> c");
  EXPECT_EQ(tokens[1].kind, TokenKind::Minus);
  EXPECT_EQ(tokens[3].kind, TokenKind::Arrow);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = lex("a\n  bb\n    c");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[0].loc.column, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[1].loc.column, 3);
  EXPECT_EQ(tokens[2].loc.line, 3);
  EXPECT_EQ(tokens[2].loc.column, 5);
}

TEST(Lexer, RejectsUnknownCharacter) {
  try {
    lex("a @ b");
    FAIL() << "expected LarcsError";
  } catch (const LarcsError& e) {
    EXPECT_EQ(e.loc().line, 1);
    EXPECT_EQ(e.loc().column, 3);
  }
}

TEST(Lexer, WordOperatorsAreKeywords) {
  EXPECT_EQ(kinds("mod and or not eps"),
            (std::vector<TokenKind>{TokenKind::KwMod, TokenKind::KwAnd,
                                    TokenKind::KwOr, TokenKind::KwNot,
                                    TokenKind::KwEps,
                                    TokenKind::EndOfFile}));
}

TEST(TokenKindNames, HumanReadable) {
  EXPECT_EQ(to_string(TokenKind::Arrow), "'->'");
  EXPECT_EQ(to_string(TokenKind::KwComphase), "'comphase'");
  EXPECT_EQ(to_string(TokenKind::EndOfFile), "end of file");
}

TEST(StartsDeclaration, OnlyDeclKeywords) {
  EXPECT_TRUE(starts_declaration(TokenKind::KwComphase));
  EXPECT_TRUE(starts_declaration(TokenKind::KwPhases));
  EXPECT_FALSE(starts_declaration(TokenKind::Identifier));
  EXPECT_FALSE(starts_declaration(TokenKind::KwWhen));
}

}  // namespace
}  // namespace oregami::larcs
