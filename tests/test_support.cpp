#include <gtest/gtest.h>

#include <set>

#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"
#include "oregami/support/text_table.hpp"

namespace oregami {
namespace {

TEST(SourceLoc, FormatsLineColon) {
  EXPECT_EQ((SourceLoc{3, 14}.to_string()), "3:14");
}

TEST(LarcsError, CarriesLocation) {
  const LarcsError err("bad token", {2, 7});
  EXPECT_EQ(err.loc().line, 2);
  EXPECT_EQ(err.loc().column, 7);
  EXPECT_NE(std::string(err.what()).find("2:7"), std::string::npos);
}

TEST(LarcsError, MessageWithoutLocation) {
  const LarcsError err("just text");
  EXPECT_NE(std::string(err.what()).find("just text"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "bbb"});
  t.add_row({"xxxx", "y"});
  const std::string out = t.to_string();
  // Header then underline then row.
  EXPECT_NE(out.find("a     bbb"), std::string::npos);
  EXPECT_NE(out.find("xxxx  y"), std::string::npos);
  EXPECT_NE(out.find("---------"), std::string::npos);
}

TEST(TextTable, PadsMissingCells) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW((void)t.to_string());
}

TEST(FormatFixed, RoundsToDigits) {
  EXPECT_EQ(format_fixed(1.23456, 3), "1.235");
  EXPECT_EQ(format_fixed(2.0, 1), "2.0");
}

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(SplitMix64, KnownFirstOutput) {
  // Reference value of splitmix64 with seed 0 (widely published).
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next_u64(), 0xe220a8397b1dcdafULL);
}

TEST(SplitMix64, NextBelowStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(SplitMix64, NextInCoversRangeInclusive) {
  SplitMix64 rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(SplitMix64, DoubleInUnitInterval) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace oregami
