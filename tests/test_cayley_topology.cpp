#include <gtest/gtest.h>

#include "oregami/arch/cayley_topology.hpp"
#include "oregami/core/recognize.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"

namespace oregami {
namespace {

TEST(CayleyTopology, CyclicGroupGivesRing) {
  std::vector<int> image{1, 2, 3, 4, 5, 0};
  const auto group =
      PermutationGroup::generate({Permutation(image)}, 6);
  ASSERT_TRUE(group.has_value());
  const auto topo = cayley_topology(*group, "z6");
  EXPECT_EQ(topo.num_procs(), 6);
  EXPECT_EQ(topo.num_links(), 6);
  EXPECT_EQ(recognize_family(topo.graph()).family, GraphFamily::Ring);
}

TEST(CayleyTopology, ElementaryAbelianGivesHypercube) {
  // (Z_2)^3 with the three bit-flip translations: Q3.
  std::vector<Permutation> gens;
  for (int b = 0; b < 3; ++b) {
    std::vector<int> image(8);
    for (int x = 0; x < 8; ++x) {
      image[static_cast<std::size_t>(x)] = x ^ (1 << b);
    }
    gens.emplace_back(std::move(image));
  }
  const auto group = PermutationGroup::generate(gens, 8);
  ASSERT_TRUE(group.has_value());
  const auto topo = cayley_topology(*group, "z2^3");
  EXPECT_EQ(topo.num_procs(), 8);
  EXPECT_EQ(recognize_family(topo.graph()).family,
            GraphFamily::Hypercube);
}

TEST(StarGraph, S3IsARingOfSix) {
  const auto topo = star_graph_network(3);
  EXPECT_EQ(topo.num_procs(), 6);
  // The 3-star is the 6-cycle.
  EXPECT_EQ(recognize_family(topo.graph()).family, GraphFamily::Ring);
}

TEST(StarGraph, S4Properties) {
  const auto topo = star_graph_network(4);
  EXPECT_EQ(topo.num_procs(), 24);
  // Degree n-1 = 3 everywhere; diameter floor(3(n-1)/2) = 4.
  for (int v = 0; v < 24; ++v) {
    EXPECT_EQ(topo.graph().degree(v), 3);
  }
  EXPECT_EQ(topo.diameter(), 4);
  EXPECT_EQ(topo.num_links(), 24 * 3 / 2);
}

TEST(Pancake, P3IsARingOfSix) {
  const auto topo = pancake_network(3);
  EXPECT_EQ(topo.num_procs(), 6);
  EXPECT_EQ(recognize_family(topo.graph()).family, GraphFamily::Ring);
}

TEST(Pancake, P4Properties) {
  const auto topo = pancake_network(4);
  EXPECT_EQ(topo.num_procs(), 24);
  for (int v = 0; v < 24; ++v) {
    EXPECT_EQ(topo.graph().degree(v), 3);
  }
  EXPECT_EQ(topo.diameter(), 4);  // known for the 4-pancake
}

TEST(CayleyTopology, UsableAsMappingTarget) {
  // Map a 24-task broadcast ring onto the 4-star network end to end.
  const auto cp = larcs::compile_source(larcs::programs::ring_pipeline(),
                                        {{"n", 24}, {"stages", 2}});
  const auto topo = star_graph_network(4);
  const auto report = map_computation(cp.graph, topo);
  EXPECT_NO_THROW(validate_mapping(report.mapping, cp.graph, topo));
  EXPECT_EQ(report.mapping.contraction.num_clusters, 24);
}

}  // namespace
}  // namespace oregami
