#include <gtest/gtest.h>

#include <set>

#include "oregami/core/recognize.hpp"
#include "oregami/graph/gray_code.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

Graph ring_graph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    g.add_edge(i, (i + 1) % n);
  }
  return g;
}

Graph chain_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) {
    g.add_edge(i, i + 1);
  }
  return g;
}

Graph mesh_graph(int r, int c) {
  Graph g(r * c);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) {
      if (j + 1 < c) {
        g.add_edge(i * c + j, i * c + j + 1);
      }
      if (i + 1 < r) {
        g.add_edge(i * c + j, (i + 1) * c + j);
      }
    }
  }
  return g;
}

Graph hypercube_graph(int d) {
  Graph g(1 << d);
  for (int v = 0; v < (1 << d); ++v) {
    for (int b = 0; b < d; ++b) {
      if (v < (v ^ (1 << b))) {
        g.add_edge(v, v ^ (1 << b));
      }
    }
  }
  return g;
}

Graph cbt_graph(int h) {
  const int n = (1 << h) - 1;
  Graph g(n);
  for (int v = 1; v < n; ++v) {
    g.add_edge(v, (v - 1) / 2);
  }
  return g;
}

Graph binomial_graph(int k) {
  Graph g(1 << k);
  for (int m = 1; m < (1 << k); ++m) {
    int bit = 0;
    int x = m;
    while (x >> 1) {
      x >>= 1;
      ++bit;
    }
    g.add_edge(m, m & ~(1 << bit));
  }
  return g;
}

/// Applies a deterministic vertex relabeling so detectors cannot rely
/// on input order.
Graph shuffled(const Graph& g, std::uint64_t seed) {
  std::vector<int> perm(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t i = 0; i < perm.size(); ++i) {
    perm[i] = static_cast<int>(i);
  }
  SplitMix64 rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  Graph out(g.num_vertices());
  for (const auto& e : g.edges()) {
    out.add_edge(perm[static_cast<std::size_t>(e.u)],
                 perm[static_cast<std::size_t>(e.v)], e.weight);
  }
  return out;
}

void expect_bijective_labels(const RecognizedFamily& fam, int n) {
  ASSERT_EQ(fam.canonical_label.size(), static_cast<std::size_t>(n));
  std::set<int> seen(fam.canonical_label.begin(),
                     fam.canonical_label.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), n - 1);
}

TEST(DetectRing, PositiveWithWalkLabels) {
  const auto g = shuffled(ring_graph(9), 1);
  const auto fam = detect_ring(g);
  ASSERT_TRUE(fam.has_value());
  EXPECT_EQ(fam->params, std::vector<int>{9});
  expect_bijective_labels(*fam, 9);
  // Consecutive positions must be adjacent (including the wrap).
  std::vector<int> vertex_at(9);
  for (int v = 0; v < 9; ++v) {
    vertex_at[static_cast<std::size_t>(
        fam->canonical_label[static_cast<std::size_t>(v)])] = v;
  }
  for (int p = 0; p < 9; ++p) {
    EXPECT_TRUE(g.has_edge(vertex_at[static_cast<std::size_t>(p)],
                           vertex_at[static_cast<std::size_t>((p + 1) % 9)]));
  }
}

TEST(DetectRing, RejectsChainAndTwoTriangles) {
  EXPECT_FALSE(detect_ring(chain_graph(5)).has_value());
  // Two disjoint triangles: 2-regular but disconnected.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  EXPECT_FALSE(detect_ring(g).has_value());
}

TEST(DetectChain, PositiveAndSingleton) {
  const auto fam = detect_chain(shuffled(chain_graph(7), 2));
  ASSERT_TRUE(fam.has_value());
  expect_bijective_labels(*fam, 7);
  const auto single = detect_chain(Graph(1));
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->params, std::vector<int>{1});
}

TEST(DetectChain, RejectsRingAndStar) {
  EXPECT_FALSE(detect_chain(ring_graph(5)).has_value());
  Graph star(4);
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  star.add_edge(0, 3);
  EXPECT_FALSE(detect_chain(star).has_value());
}

class HypercubeDetect : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeDetect, RecoversAddresses) {
  const int d = GetParam();
  const auto g = shuffled(hypercube_graph(d), 100 + static_cast<std::uint64_t>(d));
  const auto fam = detect_hypercube(g);
  ASSERT_TRUE(fam.has_value());
  EXPECT_EQ(fam->params, std::vector<int>{d});
  expect_bijective_labels(*fam, 1 << d);
  for (const auto& e : g.edges()) {
    const auto diff = static_cast<std::uint32_t>(
        fam->canonical_label[static_cast<std::size_t>(e.u)] ^
        fam->canonical_label[static_cast<std::size_t>(e.v)]);
    EXPECT_EQ(popcount32(diff), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeDetect, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DetectHypercube, RejectsNearMisses) {
  // Right size and regularity but wrong structure: K_{3,3} plus a
  // perfect matching is 4-regular on 6 nodes (not power of two anyway);
  // use the 3-cube with one edge rewired instead.
  Graph g(8);
  for (int v = 0; v < 8; ++v) {
    for (int b = 0; b < 3; ++b) {
      if (v < (v ^ (1 << b))) {
        g.add_edge(v, v ^ (1 << b));
      }
    }
  }
  EXPECT_TRUE(detect_hypercube(g).has_value());
  // A ring of 8 is 2-regular: wrong degree.
  EXPECT_FALSE(detect_hypercube(ring_graph(8)).has_value());
  // K4 has 4 vertices and degree 3 != 2.
  Graph k4(4);
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      k4.add_edge(u, v);
    }
  }
  EXPECT_FALSE(detect_hypercube(k4).has_value());
}

class MeshDetect
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MeshDetect, RecoversCoordinates) {
  const auto [r, c] = GetParam();
  const auto g =
      shuffled(mesh_graph(r, c),
               static_cast<std::uint64_t>(r * 31 + c));
  const auto fam = detect_mesh(g);
  ASSERT_TRUE(fam.has_value());
  // Transposed detection is acceptable; normalise.
  const int dr = fam->params[0];
  const int dc = fam->params[1];
  EXPECT_TRUE((dr == r && dc == c) || (dr == c && dc == r));
  expect_bijective_labels(*fam, r * c);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshDetect,
    ::testing::Values(std::pair{2, 2}, std::pair{2, 3}, std::pair{2, 7},
                      std::pair{3, 3}, std::pair{4, 5}, std::pair{6, 6},
                      std::pair{3, 8}));

TEST(DetectMesh, RejectsTorusAndTree) {
  // 4x4 torus: 4-regular, no corners.
  Graph torus(16);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      torus.add_edge(i * 4 + j, i * 4 + (j + 1) % 4);
      torus.add_edge(i * 4 + j, ((i + 1) % 4) * 4 + j);
    }
  }
  EXPECT_FALSE(detect_mesh(torus).has_value());
  EXPECT_FALSE(detect_mesh(cbt_graph(3)).has_value());
}

class CbtDetect : public ::testing::TestWithParam<int> {};

TEST_P(CbtDetect, RecoversHeapIndices) {
  const int h = GetParam();
  const int n = (1 << h) - 1;
  const auto g = shuffled(cbt_graph(h), static_cast<std::uint64_t>(h));
  const auto fam = detect_complete_binary_tree(g);
  ASSERT_TRUE(fam.has_value());
  EXPECT_EQ(fam->params, std::vector<int>{h});
  expect_bijective_labels(*fam, n);
  // Every edge joins heap parent and child.
  for (const auto& e : g.edges()) {
    const int a = fam->canonical_label[static_cast<std::size_t>(e.u)];
    const int b = fam->canonical_label[static_cast<std::size_t>(e.v)];
    const int child = std::max(a, b);
    const int parent = std::min(a, b);
    EXPECT_EQ((child - 1) / 2, parent);
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, CbtDetect, ::testing::Values(2, 3, 4, 6));

TEST(DetectCbt, RejectsUnbalancedTree) {
  // 7-node path is a tree with 2^3-1 nodes but not a CBT.
  EXPECT_FALSE(detect_complete_binary_tree(chain_graph(7)).has_value());
}

class BinomialDetect : public ::testing::TestWithParam<int> {};

TEST_P(BinomialDetect, RecoversBitmaskAddresses) {
  const int k = GetParam();
  const auto g =
      shuffled(binomial_graph(k), static_cast<std::uint64_t>(k + 77));
  const auto fam = detect_binomial_tree(g);
  ASSERT_TRUE(fam.has_value());
  EXPECT_EQ(fam->params, std::vector<int>{k});
  expect_bijective_labels(*fam, 1 << k);
  // Every edge must clear the child's lowest set bit (the canonical
  // binomial addressing: subtree B_j roots carry bit j).
  for (const auto& e : g.edges()) {
    const int a = fam->canonical_label[static_cast<std::size_t>(e.u)];
    const int b = fam->canonical_label[static_cast<std::size_t>(e.v)];
    const int child = std::max(a, b);
    const int parent = std::min(a, b);
    EXPECT_EQ(child & (child - 1), parent);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BinomialDetect,
                         ::testing::Values(3, 4, 5, 6));

TEST(DetectBinomial, RejectsCbtAndStarOfWrongSize) {
  EXPECT_FALSE(detect_binomial_tree(cbt_graph(3)).has_value());
  // Star on 8 vertices: tree with 2^3 nodes, root degree 7 != 3.
  Graph star(8);
  for (int v = 1; v < 8; ++v) {
    star.add_edge(0, v);
  }
  EXPECT_FALSE(detect_binomial_tree(star).has_value());
}

TEST(DetectStarAndComplete, Basics) {
  Graph star(5);
  for (int v = 1; v < 5; ++v) {
    star.add_edge(0, v);
  }
  const auto s = detect_star(star);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->canonical_label[0], 0);

  Graph k5(5);
  for (int u = 0; u < 5; ++u) {
    for (int v = u + 1; v < 5; ++v) {
      k5.add_edge(u, v);
    }
  }
  EXPECT_TRUE(detect_complete(k5).has_value());
  EXPECT_FALSE(detect_complete(star).has_value());
  EXPECT_FALSE(detect_star(k5).has_value());
}

TEST(RecognizeFamily, DispatchPriorities) {
  // C4 == Q2: the hypercube detector wins by order.
  EXPECT_EQ(recognize_family(ring_graph(4)).family,
            GraphFamily::Hypercube);
  EXPECT_EQ(recognize_family(ring_graph(5)).family, GraphFamily::Ring);
  EXPECT_EQ(recognize_family(mesh_graph(3, 4)).family, GraphFamily::Mesh);
  EXPECT_EQ(recognize_family(cbt_graph(4)).family,
            GraphFamily::CompleteBinaryTree);
  EXPECT_EQ(recognize_family(binomial_graph(4)).family,
            GraphFamily::BinomialTree);
  EXPECT_EQ(recognize_family(chain_graph(6)).family, GraphFamily::Chain);
}

TEST(RecognizeFamily, UnknownForIrregularGraph) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(1, 4);
  EXPECT_EQ(recognize_family(g).family, GraphFamily::Unknown);
}

TEST(FamilyNames, ToString) {
  EXPECT_EQ(to_string(GraphFamily::Ring), "ring");
  EXPECT_EQ(to_string(GraphFamily::BinomialTree), "binomial-tree");
  EXPECT_EQ(to_string(GraphFamily::Unknown), "unknown");
}

}  // namespace
}  // namespace oregami
