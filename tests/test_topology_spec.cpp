#include <gtest/gtest.h>

#include "oregami/arch/topology_spec.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

TEST(TopologySpec, AllFamiliesParse) {
  EXPECT_EQ(parse_topology_spec("hypercube:3").num_procs(), 8);
  EXPECT_EQ(parse_topology_spec("cube:4").family(), TopoFamily::Hypercube);
  EXPECT_EQ(parse_topology_spec("mesh:4x5").num_procs(), 20);
  EXPECT_EQ(parse_topology_spec("grid:2x3").family(), TopoFamily::Mesh);
  EXPECT_EQ(parse_topology_spec("torus:3x4").num_procs(), 12);
  EXPECT_EQ(parse_topology_spec("ring:9").family(), TopoFamily::Ring);
  EXPECT_EQ(parse_topology_spec("chain:5").num_procs(), 5);
  EXPECT_EQ(parse_topology_spec("cbt:3").num_procs(), 7);
  EXPECT_EQ(parse_topology_spec("tree:4").family(),
            TopoFamily::CompleteBinaryTree);
  EXPECT_EQ(parse_topology_spec("star:6").num_procs(), 6);
  EXPECT_EQ(parse_topology_spec("complete:5").num_links(), 10);
  EXPECT_EQ(parse_topology_spec("clique:4").family(),
            TopoFamily::Complete);
  EXPECT_EQ(parse_topology_spec("butterfly:2").num_procs(), 12);
  EXPECT_EQ(parse_topology_spec("mesh3d:2x3x4").num_procs(), 24);
}

TEST(TopologySpec, MalformedSpecsThrow) {
  EXPECT_THROW((void)parse_topology_spec(""), MappingError);
  EXPECT_THROW((void)parse_topology_spec("mesh"), MappingError);
  EXPECT_THROW((void)parse_topology_spec(":4"), MappingError);
  EXPECT_THROW((void)parse_topology_spec("mesh:"), MappingError);
  EXPECT_THROW((void)parse_topology_spec("mesh:4"), MappingError);
  EXPECT_THROW((void)parse_topology_spec("mesh:4x4x4"), MappingError);
  EXPECT_THROW((void)parse_topology_spec("mesh:4xx4"), MappingError);
  EXPECT_THROW((void)parse_topology_spec("mesh:axb"), MappingError);
  EXPECT_THROW((void)parse_topology_spec("frobnitz:4"), MappingError);
  EXPECT_THROW((void)parse_topology_spec("hypercube:3x3"), MappingError);
}

TEST(TopologySpec, ErrorsIncludeHelp) {
  try {
    (void)parse_topology_spec("nope:1");
    FAIL();
  } catch (const MappingError& e) {
    EXPECT_NE(std::string(e.what()).find("hypercube:D"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace oregami
