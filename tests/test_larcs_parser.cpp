#include <gtest/gtest.h>

#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"

namespace oregami::larcs {
namespace {

TEST(Parser, MinimalProgram) {
  const auto p = parse_program(
      "algorithm tiny(n);\n"
      "nodetype node[i: 0 .. n-1];\n");
  EXPECT_EQ(p.name, "tiny");
  EXPECT_EQ(p.params, std::vector<std::string>{"n"});
  ASSERT_EQ(p.nodetypes.size(), 1u);
  EXPECT_EQ(p.nodetypes[0].name, "node");
  EXPECT_FALSE(p.nodetypes[0].node_symmetric);
  ASSERT_EQ(p.nodetypes[0].dims.size(), 1u);
  EXPECT_EQ(p.nodetypes[0].dims[0].binder, "i");
}

TEST(Parser, NbodyFixtureHasPaperStructure) {
  const auto p = parse_program(programs::nbody());
  EXPECT_EQ(p.name, "nbody");
  EXPECT_EQ(p.params, (std::vector<std::string>{"n", "s"}));
  EXPECT_EQ(p.imports, std::vector<std::string>{"m"});
  ASSERT_EQ(p.nodetypes.size(), 1u);
  EXPECT_TRUE(p.nodetypes[0].node_symmetric);
  ASSERT_EQ(p.comm_phases.size(), 2u);
  EXPECT_EQ(p.comm_phases[0].name, "ring");
  EXPECT_EQ(p.comm_phases[1].name, "chordal");
  ASSERT_EQ(p.exec_phases.size(), 2u);
  ASSERT_TRUE(p.phase_expr.has_value());
  // ((ring; compute1)^((n+1)/2); chordal; compute2)^s
  EXPECT_EQ(p.phase_expr->kind, PhaseExprNode::Kind::Repeat);
  EXPECT_EQ(p.phase_expr->children[0].kind, PhaseExprNode::Kind::Seq);
  EXPECT_EQ(p.phase_expr->children[0].children.size(), 3u);
}

TEST(Parser, MultiDimNodetypeAndGuards) {
  const auto p = parse_program(programs::jacobi());
  ASSERT_EQ(p.nodetypes[0].dims.size(), 2u);
  ASSERT_EQ(p.comm_phases.size(), 1u);
  EXPECT_EQ(p.comm_phases[0].rules.size(), 4u);
  for (const auto& rule : p.comm_phases[0].rules) {
    EXPECT_NE(rule.guard, nullptr);
    EXPECT_NE(rule.volume, nullptr);
    EXPECT_EQ(rule.pattern.size(), 2u);
    EXPECT_EQ(rule.target.size(), 2u);
  }
  EXPECT_EQ(p.family_hint, std::optional<std::string>("mesh"));
}

TEST(Parser, ForallClause) {
  const auto p = parse_program(programs::binomial_dnc());
  const auto& rule = p.comm_phases[0].rules[0];
  ASSERT_TRUE(rule.forall_binder.has_value());
  EXPECT_EQ(*rule.forall_binder, "j");
  EXPECT_NE(rule.forall_lo, nullptr);
  EXPECT_NE(rule.forall_hi, nullptr);
}

TEST(Parser, WholeCatalogParses) {
  for (const auto& entry : programs::catalog()) {
    EXPECT_NO_THROW((void)parse_program(entry.source))
        << "program " << entry.name;
  }
  EXPECT_NO_THROW((void)parse_program(programs::fft(4)));
  EXPECT_NO_THROW((void)parse_program(programs::broadcast_vote(16)));
}

TEST(Parser, PhaseExprPrecedence) {
  const auto p = parse_program(
      "algorithm t(n);\n"
      "nodetype x[i: 0 .. n-1];\n"
      "comphase a { x(i) -> x((i+1) mod n); }\n"
      "comphase b { x(i) -> x((i+2) mod n); }\n"
      "exphase w cost 1;\n"
      "phases a; b || w; a^2;\n");
  ASSERT_TRUE(p.phase_expr.has_value());
  const auto& seq = *p.phase_expr;
  ASSERT_EQ(seq.kind, PhaseExprNode::Kind::Seq);
  ASSERT_EQ(seq.children.size(), 3u);
  EXPECT_EQ(seq.children[0].kind, PhaseExprNode::Kind::Ref);
  EXPECT_EQ(seq.children[1].kind, PhaseExprNode::Kind::Par);
  EXPECT_EQ(seq.children[2].kind, PhaseExprNode::Kind::Repeat);
  EXPECT_EQ(seq.to_string(), "(a; (b || w); a^2)");
}

TEST(Parser, EpsIsIdle) {
  const auto p = parse_program(
      "algorithm t(n);\n"
      "nodetype x[i: 0 .. n-1];\n"
      "comphase a { x(i) -> x((i+1) mod n); }\n"
      "phases eps; a;\n");
  ASSERT_TRUE(p.phase_expr.has_value());
  EXPECT_EQ(p.phase_expr->children[0].kind, PhaseExprNode::Kind::Idle);
}

TEST(Parser, NestedRepeatBindsTightly) {
  const auto p = parse_program(
      "algorithm t(n);\n"
      "nodetype x[i: 0 .. n-1];\n"
      "comphase a { x(i) -> x((i+1) mod n); }\n"
      "phases (a^2)^n;\n");
  const auto& rep = *p.phase_expr;
  ASSERT_EQ(rep.kind, PhaseExprNode::Kind::Repeat);
  EXPECT_EQ(rep.children[0].kind, PhaseExprNode::Kind::Repeat);
}

TEST(Parser, ExpressionPrecedenceAndRendering) {
  const auto e = parse_expression("1 + 2 * 3 - 4 / 2");
  // ((1 + (2*3)) - (4/2))
  EXPECT_EQ(e->to_string(), "((1 + (2 * 3)) - (4 / 2))");
  const auto cmp = parse_expression("i + 1 < n and not (j == 0)");
  EXPECT_EQ(cmp->kind, Expr::Kind::Binary);
  EXPECT_EQ(cmp->bin_op, BinOp::And);
}

TEST(Parser, CallsParse) {
  const auto e = parse_expression("pow(2, k) + log2(n)");
  EXPECT_EQ(e->kind, Expr::Kind::Binary);
  EXPECT_EQ(e->args[0]->kind, Expr::Kind::Call);
  EXPECT_EQ(e->args[0]->name, "pow");
  EXPECT_EQ(e->args[0]->args.size(), 2u);
}

// --- error cases -----------------------------------------------------------

TEST(ParserErrors, MissingAlgorithmHeader) {
  EXPECT_THROW((void)parse_program("nodetype x[i: 0 .. 3];"), LarcsError);
}

TEST(ParserErrors, DuplicatePhaseName) {
  EXPECT_THROW((void)parse_program(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { x(i) -> x((i+1) mod n); }\n"
                   "exphase a cost 1;\n"),
               LarcsError);
}

TEST(ParserErrors, UnknownNodetypeInRule) {
  EXPECT_THROW((void)parse_program(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { y(i) -> x(i); }\n"),
               LarcsError);
}

TEST(ParserErrors, ArityMismatch) {
  EXPECT_THROW((void)parse_program(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1, j: 0 .. n-1];\n"
                   "comphase a { x(i) -> x(i, i); }\n"),
               LarcsError);
  EXPECT_THROW((void)parse_program(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { x(i) -> x(i, i); }\n"),
               LarcsError);
}

TEST(ParserErrors, UnknownPhaseInExpression) {
  EXPECT_THROW((void)parse_program(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { x(i) -> x((i+1) mod n); }\n"
                   "phases a; zz;\n"),
               LarcsError);
}

TEST(ParserErrors, DuplicateBinderInPattern) {
  EXPECT_THROW((void)parse_program(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1, j: 0 .. n-1];\n"
                   "comphase a { x(i, i) -> x(i, i); }\n"),
               LarcsError);
}

TEST(ParserErrors, ForallShadowsPattern) {
  EXPECT_THROW((void)parse_program(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { x(i) -> x(i + 1) forall i: 0 .. 1; }\n"),
               LarcsError);
}

TEST(ParserErrors, NoNodetype) {
  EXPECT_THROW((void)parse_program("algorithm t(n);\n"), LarcsError);
}

TEST(ParserErrors, DuplicatePhasesDecl) {
  EXPECT_THROW((void)parse_program(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { x(i) -> x((i+1) mod n); }\n"
                   "phases a;\n"
                   "phases a;\n"),
               LarcsError);
}

TEST(ParserErrors, ReportsLocation) {
  try {
    (void)parse_program("algorithm t(n);\nnodetype x[i: 0 .. n-1]\n");
    FAIL() << "expected LarcsError";
  } catch (const LarcsError& e) {
    EXPECT_GE(e.loc().line, 2);
  }
}

}  // namespace
}  // namespace oregami::larcs
