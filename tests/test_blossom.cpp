#include <gtest/gtest.h>

#include "oregami/graph/blossom.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

void expect_valid(const Graph& g, const GeneralMatching& m) {
  ASSERT_EQ(m.mate.size(), static_cast<std::size_t>(g.num_vertices()));
  std::int64_t weight = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const int u = m.mate[static_cast<std::size_t>(v)];
    if (u == -1) {
      continue;
    }
    ASSERT_GE(u, 0);
    ASSERT_LT(u, g.num_vertices());
    EXPECT_EQ(m.mate[static_cast<std::size_t>(u)], v);
    EXPECT_NE(u, v);
    const auto w = g.edge_weight(u, v);
    ASSERT_TRUE(w.has_value()) << "matched pair must be an edge";
    if (u < v) {
      weight += *w;
    }
  }
  EXPECT_EQ(weight, m.total_weight);
}

TEST(Blossom, EmptyGraph) {
  const auto m = max_weight_matching(Graph(0));
  EXPECT_EQ(m.total_weight, 0);
  EXPECT_EQ(m.num_pairs(), 0);
}

TEST(Blossom, SingleEdge) {
  Graph g(2);
  g.add_edge(0, 1, 7);
  const auto m = max_weight_matching(g);
  EXPECT_EQ(m.total_weight, 7);
  EXPECT_EQ(m.mate[0], 1);
  EXPECT_EQ(m.mate[1], 0);
}

TEST(Blossom, PathPicksBestAlternation) {
  // Path 0-1-2-3 with weights 1, 5, 1: best is the middle edge alone.
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 5);
  g.add_edge(2, 3, 1);
  const auto m = max_weight_matching(g);
  EXPECT_EQ(m.total_weight, 5);
  EXPECT_EQ(m.num_pairs(), 1);
}

TEST(Blossom, PathPrefersTwoEdgesWhenHeavier) {
  // Weights 4, 5, 4: the two outer edges (8) beat the middle (5).
  Graph g(4);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 5);
  g.add_edge(2, 3, 4);
  const auto m = max_weight_matching(g);
  EXPECT_EQ(m.total_weight, 8);
  EXPECT_EQ(m.num_pairs(), 2);
}

TEST(Blossom, TriangleTakesHeaviestEdge) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(0, 2, 4);
  const auto m = max_weight_matching(g);
  EXPECT_EQ(m.total_weight, 4);
}

TEST(Blossom, OddCycleForcesBlossom) {
  // C5 with unit-ish weights; optimum = 2 disjoint edges.
  Graph g(5);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 3);
  g.add_edge(2, 3, 3);
  g.add_edge(3, 4, 3);
  g.add_edge(4, 0, 3);
  const auto m = max_weight_matching(g);
  EXPECT_EQ(m.total_weight, 6);
  EXPECT_EQ(m.num_pairs(), 2);
  expect_valid(g, m);
}

TEST(Blossom, PetersenLikeBlossomExpansion) {
  // Two triangles joined by a bridge; forces shrink + expand.
  Graph g(6);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 5);
  g.add_edge(2, 0, 5);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 4, 5);
  g.add_edge(4, 5, 5);
  g.add_edge(5, 3, 5);
  const auto m = max_weight_matching(g);
  expect_valid(g, m);
  // Best: one edge in each triangle avoiding vertices 2/3, plus bridge?
  // Pairs (0,1), (4,5) weight 10, plus bridge (2,3) weight 1 -> 11.
  EXPECT_EQ(m.total_weight, 11);
  EXPECT_EQ(m.num_pairs(), 3);
}

TEST(Blossom, MaximisesWeightNotCardinality) {
  // Star-ish: center 0 with heavy edge to 1; 1 also pairs with 2 and 0
  // pairs with 3 lightly. Max cardinality = 2 (weight 2+2=4 or ...),
  // but a single heavy edge (10) wins only if alternatives are lighter.
  Graph g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 3, 2);
  const auto m = max_weight_matching(g);
  // (0,1) = 10 beats (1,2)+(0,3) = 4.
  EXPECT_EQ(m.total_weight, 10);
  EXPECT_EQ(m.num_pairs(), 1);
}

TEST(Blossom, CompleteGraphEvenPerfect) {
  Graph g(6);
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) {
      g.add_edge(u, v, 1 + ((u + v) % 3));
    }
  }
  const auto m = max_weight_matching(g);
  expect_valid(g, m);
  const auto brute = brute_force_max_weight_matching(g);
  EXPECT_EQ(m.total_weight, brute.total_weight);
}

class BlossomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlossomProperty, MatchesBruteForceOnRandomGraphs) {
  SplitMix64 rng(GetParam());
  const int n = static_cast<int>(3 + rng.next_below(6));  // 3..8
  Graph g(n);
  int edges = 0;
  for (int u = 0; u < n && edges < 24; ++u) {
    for (int v = u + 1; v < n && edges < 24; ++v) {
      if (rng.next_double() < 0.55) {
        g.add_edge(u, v, rng.next_in(1, 20));
        ++edges;
      }
    }
  }
  const auto fast = max_weight_matching(g);
  const auto brute = brute_force_max_weight_matching(g);
  expect_valid(g, fast);
  EXPECT_EQ(fast.total_weight, brute.total_weight)
      << "seed " << GetParam() << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlossomProperty,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(Blossom, LargerRandomGraphStaysConsistent) {
  SplitMix64 rng(12345);
  const int n = 60;
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_double() < 0.15) {
        g.add_edge(u, v, rng.next_in(1, 100));
      }
    }
  }
  const auto m = max_weight_matching(g);
  expect_valid(g, m);
  EXPECT_GT(m.total_weight, 0);
}

}  // namespace
}  // namespace oregami
