// Tests for the parallel portfolio mapper and its thread pool.
//
// The portfolio's core contract is bit-determinism: the same inputs and
// seed produce byte-identical results no matter how many workers run
// the candidates or how the OS schedules them. The regression test
// below runs the full portfolio twice -- once serial, once with every
// core -- over library programs and requires identical mappings,
// scores, and report tables.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/portfolio.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/support/thread_pool.hpp"

namespace oregami {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("candidate exploded"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_workers(), 1);
  EXPECT_EQ(pool.num_workers(), ThreadPool::resolve_workers(0));
}

TEST(ThreadPool, SubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(1);  // single worker: a blocking submit would hang
  auto outer = pool.submit([&pool] { return pool.submit([] { return 5; }); });
  EXPECT_EQ(outer.get().get(), 5);
}

// ----------------------------------------------------- portfolio basics

struct Compiled {
  larcs::Program ast;
  larcs::CompiledProgram cp;
};

Compiled compile_catalog(const larcs::programs::CatalogEntry& entry) {
  std::map<std::string, long> bindings(entry.example_bindings.begin(),
                                       entry.example_bindings.end());
  larcs::Program ast = larcs::parse_program(entry.source);
  larcs::CompiledProgram cp = larcs::compile(ast, bindings);
  return {std::move(ast), std::move(cp)};
}

TEST(Portfolio, ContainsSingleShotCandidateAndScoresIt) {
  const auto entry = larcs::programs::catalog().front();
  const auto c = compile_catalog(entry);
  const Topology topo = Topology::hypercube(3);
  PortfolioOptions popts;
  popts.num_seeded = 4;
  const auto result = portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  ASSERT_FALSE(result.candidates.empty());
  EXPECT_EQ(result.candidates.front().label, "fig3 single-shot");
  EXPECT_TRUE(result.candidates.front().ok);
  EXPECT_GE(result.best_id, 0);
  EXPECT_FALSE(result.table().empty());
  // Candidate ids are dense and ordered regardless of scheduling.
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    EXPECT_EQ(result.candidates[i].id, static_cast<int>(i));
  }
}

TEST(Portfolio, ExpiredDeadlineRunsExactlyCandidateZero) {
  // A negative budget counts as already expired and never consults the
  // clock, so the outcome is fully deterministic: candidate 0 (the
  // exact single-shot pipeline) runs, everything else is skipped.
  const auto entry = larcs::programs::catalog().front();
  const auto c = compile_catalog(entry);
  const Topology topo = Topology::hypercube(3);
  PortfolioOptions popts;
  popts.num_seeded = 6;
  popts.time_budget_ms = -1;
  const auto result = portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  ASSERT_FALSE(result.candidates.empty());
  EXPECT_EQ(result.best_id, 0);
  EXPECT_TRUE(result.candidates.front().ok);
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_FALSE(result.candidates[i].ok);
    EXPECT_EQ(result.candidates[i].note, "skipped (deadline)");
  }
  // Best-so-far equals the single-shot mapping bit for bit.
  const auto single = map_program(c.ast, c.cp, topo, {});
  EXPECT_EQ(result.best.mapping.proc_of_task(),
            single.mapping.proc_of_task());
}

TEST(Portfolio, GenerousDeadlineMatchesNoDeadline) {
  const auto entry = larcs::programs::catalog().front();
  const auto c = compile_catalog(entry);
  const Topology topo = Topology::hypercube(3);
  PortfolioOptions without;
  without.num_seeded = 4;
  PortfolioOptions with = without;
  with.time_budget_ms = 60'000;  // far beyond the runtime of this search
  const auto a = portfolio_map_program(c.ast, c.cp, topo, {}, without);
  const auto b = portfolio_map_program(c.ast, c.cp, topo, {}, with);
  EXPECT_EQ(a.best_id, b.best_id);
  EXPECT_EQ(a.best.mapping.proc_of_task(), b.best.mapping.proc_of_task());
  EXPECT_EQ(a.table(), b.table());
}

TEST(Portfolio, BestNeverWorseThanSingleShotOnWholeCatalog) {
  const Topology topo = Topology::hypercube(3);
  PortfolioOptions popts;
  popts.num_seeded = 8;
  popts.jobs = 4;  // always multi-worker (even on 1-core machines, so
                   // TSan sees real candidate concurrency)
  for (const auto& entry : larcs::programs::catalog()) {
    SCOPED_TRACE(entry.name);
    const auto c = compile_catalog(entry);
    const auto single = map_program(c.ast, c.cp, topo);
    const auto single_completion =
        compute_metrics(c.cp.graph, single.mapping, topo).completion;
    const auto result = portfolio_map_program(c.ast, c.cp, topo, {}, popts);
    const auto& best =
        result.candidates[static_cast<std::size_t>(result.best_id)];
    EXPECT_LE(best.completion, single_completion);
    // The winner really is the argmin over ok candidates.
    for (const auto& candidate : result.candidates) {
      if (candidate.ok) {
        EXPECT_LE(best.completion, candidate.completion);
      }
    }
  }
}

TEST(Portfolio, MapComputationDispatchesWhenEnabled) {
  const auto c = compile_catalog(larcs::programs::catalog().front());
  const Topology topo = Topology::hypercube(3);
  MapperOptions options;
  options.portfolio = 4;
  options.jobs = 2;
  const auto via_dispatch = map_computation(c.cp.graph, topo, options);
  const auto direct = portfolio_map_computation(
      c.cp.graph, topo, options, portfolio_options_from(options));
  EXPECT_EQ(via_dispatch.details, direct.best.details);
  EXPECT_EQ(via_dispatch.mapping.proc_of_task(),
            direct.best.mapping.proc_of_task());
}

TEST(Portfolio, SeededVariantsDifferAcrossSeeds) {
  const auto c = compile_catalog(larcs::programs::catalog().front());
  const Topology topo = Topology::hypercube(3);
  PortfolioOptions a;
  a.num_seeded = 8;
  PortfolioOptions b = a;
  b.seed = a.seed + 1;
  const auto ra = portfolio_map_computation(c.cp.graph, topo, {}, a);
  const auto rb = portfolio_map_computation(c.cp.graph, topo, {}, b);
  // Different base seeds must give different candidate streams (the
  // labels embed nothing seed-dependent, so compare the mappings).
  bool any_difference = false;
  for (std::size_t i = 0; i < ra.candidates.size(); ++i) {
    if (ra.candidates[i].ok && rb.candidates[i].ok &&
        ra.candidates[i].mapping.proc_of_task() !=
            rb.candidates[i].mapping.proc_of_task()) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

// ------------------------------------------- determinism regression

void expect_identical(const PortfolioReport& a, const PortfolioReport& b) {
  EXPECT_EQ(a.best_id, b.best_id);
  EXPECT_EQ(a.best.details, b.best.details);
  EXPECT_EQ(a.best.strategy, b.best.strategy);
  EXPECT_EQ(a.best.mapping.proc_of_task(), b.best.mapping.proc_of_task());
  EXPECT_EQ(a.table(), b.table());
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    const auto& ca = a.candidates[i];
    const auto& cb = b.candidates[i];
    EXPECT_EQ(ca.ok, cb.ok);
    EXPECT_EQ(ca.label, cb.label);
    EXPECT_EQ(ca.note, cb.note);
    EXPECT_EQ(ca.completion, cb.completion);
    EXPECT_EQ(ca.external_ipc, cb.external_ipc);
    EXPECT_EQ(ca.max_load, cb.max_load);
    if (!ca.ok) {
      continue;
    }
    EXPECT_EQ(ca.mapping.contraction.cluster_of_task,
              cb.mapping.contraction.cluster_of_task);
    EXPECT_EQ(ca.mapping.embedding.proc_of_cluster,
              cb.mapping.embedding.proc_of_cluster);
    ASSERT_EQ(ca.mapping.routing.size(), cb.mapping.routing.size());
    for (std::size_t k = 0; k < ca.mapping.routing.size(); ++k) {
      ASSERT_EQ(ca.mapping.routing[k].route_of_edge.size(),
                cb.mapping.routing[k].route_of_edge.size());
      for (std::size_t e = 0; e < ca.mapping.routing[k].route_of_edge.size();
           ++e) {
        EXPECT_EQ(ca.mapping.routing[k].route_of_edge[e].nodes,
                  cb.mapping.routing[k].route_of_edge[e].nodes);
        EXPECT_EQ(ca.mapping.routing[k].route_of_edge[e].links,
                  cb.mapping.routing[k].route_of_edge[e].links);
      }
    }
  }
}

TEST(PortfolioDeterminism, IdenticalAcrossWorkerCounts) {
  const std::vector<std::string> programs = {"nbody", "jacobi", "sor",
                                             "binomial_dnc", "cbt_reduce"};
  const auto catalog = larcs::programs::catalog();
  int tested = 0;
  for (const auto& entry : catalog) {
    bool selected = false;
    for (const auto& name : programs) {
      if (entry.name == name) {
        selected = true;
      }
    }
    if (!selected) {
      continue;
    }
    SCOPED_TRACE(entry.name);
    const auto c = compile_catalog(entry);
    const Topology topo = Topology::mesh(4, 4);
    PortfolioOptions serial;
    serial.num_seeded = 12;
    serial.jobs = 1;
    PortfolioOptions wide = serial;
    wide.jobs = 0;  // hardware_concurrency
    PortfolioOptions oversubscribed = serial;
    oversubscribed.jobs = 5;  // more workers than cores on most boxes
    const auto a = portfolio_map_program(c.ast, c.cp, topo, {}, serial);
    const auto b = portfolio_map_program(c.ast, c.cp, topo, {}, wide);
    const auto c3 = portfolio_map_program(c.ast, c.cp, topo, {},
                                          oversubscribed);
    expect_identical(a, b);
    expect_identical(a, c3);
    // Scores must also agree with a fresh METRICS pass on the mapping.
    const auto& best =
        a.candidates[static_cast<std::size_t>(a.best_id)];
    EXPECT_EQ(best.completion,
              compute_metrics(c.cp.graph, best.mapping, topo).completion);
    ++tested;
  }
  EXPECT_EQ(tested, 5) << "catalog no longer contains the 5 pinned programs";
}

// Extension of the worker-count regression to the new candidate
// families: with SA chains and the HEFT candidate enabled the whole
// report -- including every annealed mapping -- must stay bit-identical
// across --jobs 1 / 0 / 5. The SA chains run inside worker threads, so
// this is the test that would catch any shared-state leak between a
// candidate's private SplitMix64 stream and the scheduler.
TEST(PortfolioDeterminism, ExtendedCandidatesIdenticalAcrossWorkerCounts) {
  const std::vector<std::string> programs = {"nbody", "jacobi"};
  const auto catalog = larcs::programs::catalog();
  int tested = 0;
  for (const auto& entry : catalog) {
    bool selected = false;
    for (const auto& name : programs) {
      if (entry.name == name) {
        selected = true;
      }
    }
    if (!selected) {
      continue;
    }
    SCOPED_TRACE(entry.name);
    const auto c = compile_catalog(entry);
    const Topology topo = Topology::mesh(4, 4);
    PortfolioOptions serial;
    serial.num_seeded = 6;
    serial.num_anneal = 3;
    serial.heft = true;
    serial.jobs = 1;
    PortfolioOptions wide = serial;
    wide.jobs = 0;
    PortfolioOptions oversubscribed = serial;
    oversubscribed.jobs = 5;
    const auto a = portfolio_map_program(c.ast, c.cp, topo, {}, serial);
    const auto b = portfolio_map_program(c.ast, c.cp, topo, {}, wide);
    const auto c3 =
        portfolio_map_program(c.ast, c.cp, topo, {}, oversubscribed);
    expect_identical(a, b);
    expect_identical(a, c3);
    // The Pareto report renders from candidate state only, so it must
    // be byte-identical too.
    EXPECT_EQ(a.pareto(), b.pareto());
    EXPECT_EQ(a.pareto(), c3.pareto());
    ++tested;
  }
  EXPECT_EQ(tested, 2) << "catalog no longer contains the pinned programs";
}

// Enabling the extended families appends candidates; it must never
// renumber or relabel the existing ones (the golden ids depend on it).
TEST(PortfolioDeterminism, ExtendedCandidatesOnlyAppend) {
  const auto c = compile_catalog(larcs::programs::catalog().front());
  const Topology topo = Topology::mesh(4, 4);
  PortfolioOptions plain;
  plain.num_seeded = 6;
  PortfolioOptions extended = plain;
  extended.num_anneal = 2;
  extended.heft = true;
  const auto a = portfolio_map_program(c.ast, c.cp, topo, {}, plain);
  const auto b = portfolio_map_program(c.ast, c.cp, topo, {}, extended);
  ASSERT_EQ(b.candidates.size(), a.candidates.size() + 3);
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(b.candidates[i].label, a.candidates[i].label);
    EXPECT_EQ(b.candidates[i].completion, a.candidates[i].completion);
  }
}

// --------------------------------------------------------- Pareto front

TEST(PortfolioPareto, FrontIsMutuallyNonDominatedAndDeterministic) {
  const auto c = compile_catalog(larcs::programs::catalog().front());
  const Topology topo = Topology::mesh(4, 4);
  PortfolioOptions popts;
  popts.num_seeded = 6;
  popts.num_anneal = 3;
  popts.heft = true;
  const auto result = portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  const std::vector<int> front = result.pareto_front();
  ASSERT_FALSE(front.empty());
  const auto member = [&](int id) -> const PortfolioCandidate& {
    return result.candidates[static_cast<std::size_t>(id)];
  };

  // Front members are ok candidates and mutually non-dominated on
  // (completion, external IPC, max exec load), all minimised.
  for (const int ia : front) {
    const auto& a = member(ia);
    EXPECT_TRUE(a.ok);
    for (const int ib : front) {
      if (ia == ib) {
        continue;
      }
      const auto& b = member(ib);
      const bool no_worse = b.completion <= a.completion &&
                            b.external_ipc <= a.external_ipc &&
                            b.max_load <= a.max_load;
      const bool strictly_better = b.completion < a.completion ||
                                   b.external_ipc < a.external_ipc ||
                                   b.max_load < a.max_load;
      EXPECT_FALSE(no_worse && strictly_better)
          << "candidate " << ib << " dominates front member " << ia;
    }
  }
  // Every ok candidate NOT on the front is dominated by some member
  // (exact-triple ties count as dominated by the lower id).
  for (const auto& cand : result.candidates) {
    if (!cand.ok) {
      continue;
    }
    bool on_front = false;
    for (const int ia : front) {
      if (ia == cand.id) {
        on_front = true;
      }
    }
    if (on_front) {
      continue;
    }
    bool dominated = false;
    for (const int ia : front) {
      const auto& a = member(ia);
      const bool no_worse = a.completion <= cand.completion &&
                            a.external_ipc <= cand.external_ipc &&
                            a.max_load <= cand.max_load;
      const bool strictly_better = a.completion < cand.completion ||
                                   a.external_ipc < cand.external_ipc ||
                                   a.max_load < cand.max_load ||
                                   a.id < cand.id;
      if (no_worse && strictly_better) {
        dominated = true;
      }
    }
    EXPECT_TRUE(dominated) << "candidate " << cand.id
                           << " is neither on the front nor dominated";
  }

  // The rendered report is deterministic and always shows the winner.
  const std::string report = result.pareto();
  EXPECT_NE(report.find("Pareto front over"), std::string::npos);
  EXPECT_NE(report.find("** best **"), std::string::npos);
  const auto again = portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  EXPECT_EQ(again.pareto(), report);
}

// Golden regression: the winning candidate for the paper programs on a
// 4x4 mesh, captured before the closed-form distance oracles and the
// incremental evaluator landed. The perf work must not change a single
// output bit, so the expected values are pinned literally.
struct GoldenPortfolio {
  const char* program;
  int best_id;
  std::int64_t completion;
  std::int64_t external_ipc;
  std::vector<int> proc_of_task;
};

TEST(PortfolioDeterminism, GoldenOutputsUnchangedByPerfWork) {
  const std::vector<GoldenPortfolio> golden = {
      {"nbody", 14, 1188, 4320,
       {11, 10, 13, 8, 4, 1, 2, 7, 15, 14, 12, 9, 5, 6, 3}},
      {"jacobi", 0, 250, 960,
       {0,  0,  1,  1,  2,  2,  3,  3,  0,  0,  1,  1,  2,  2,  3,  3,
        4,  4,  5,  5,  6,  6,  7,  7,  4,  4,  5,  5,  6,  6,  7,  7,
        8,  8,  9,  9,  10, 10, 11, 11, 8,  8,  9,  9,  10, 10, 11, 11,
        12, 12, 13, 13, 14, 14, 15, 15, 12, 12, 13, 13, 14, 14, 15, 15}},
      {"sor", 0, 300, 960,
       {0,  0,  1,  1,  2,  2,  3,  3,  0,  0,  1,  1,  2,  2,  3,  3,
        4,  4,  5,  5,  6,  6,  7,  7,  4,  4,  5,  5,  6,  6,  7,  7,
        8,  8,  9,  9,  10, 10, 11, 11, 8,  8,  9,  9,  10, 10, 11, 11,
        12, 12, 13, 13, 14, 14, 15, 15, 12, 12, 13, 13, 14, 14, 15, 15}},
      {"binomial_dnc", 0, 12, 30,
       {5, 1, 4, 0, 6, 2, 7, 3, 9, 13, 8, 12, 10, 14, 11, 15}},
      {"cbt_reduce", 0, 24, 36,
       {5, 5, 6, 1, 4, 6, 2, 1, 0, 4, 8, 7, 10, 2, 3}},
  };
  const auto catalog = larcs::programs::catalog();
  int tested = 0;
  for (const auto& expected : golden) {
    for (const auto& entry : catalog) {
      if (entry.name != expected.program) {
        continue;
      }
      SCOPED_TRACE(entry.name);
      const auto c = compile_catalog(entry);
      const Topology topo = Topology::mesh(4, 4);
      PortfolioOptions popts;
      popts.num_seeded = 12;
      popts.jobs = 1;
      const auto result =
          portfolio_map_program(c.ast, c.cp, topo, {}, popts);
      EXPECT_EQ(result.best_id, expected.best_id);
      const auto& best =
          result.candidates[static_cast<std::size_t>(result.best_id)];
      EXPECT_EQ(best.completion, expected.completion);
      EXPECT_EQ(best.external_ipc, expected.external_ipc);
      EXPECT_EQ(result.best.mapping.proc_of_task(), expected.proc_of_task);
      ++tested;
    }
  }
  EXPECT_EQ(tested, 5) << "catalog no longer contains the golden programs";
}

}  // namespace
}  // namespace oregami
