// End-to-end pipeline tests: LaRCS source -> compiler -> MAPPER ->
// METRICS, across the program corpus and a spread of architectures.
#include <gtest/gtest.h>

#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/metrics/render.hpp"
#include "oregami/metrics/session.hpp"

namespace oregami {
namespace {

struct Scenario {
  std::string program_name;
  int topo_kind;  // 0 cube, 1 mesh, 2 ring, 3 cbt, 4 torus
};

Topology make_topo(int kind) {
  switch (kind) {
    case 0: return Topology::hypercube(3);
    case 1: return Topology::mesh(4, 4);
    case 2: return Topology::ring(6);
    case 3: return Topology::complete_binary_tree(3);
    default: return Topology::torus(4, 4);
  }
}

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineSweep, CompilesMapsMeasuresRenders) {
  const auto [program_index, topo_kind] = GetParam();
  const auto catalog = larcs::programs::catalog();
  const auto& entry = catalog[static_cast<std::size_t>(program_index)];
  std::map<std::string, long> bindings(entry.example_bindings.begin(),
                                       entry.example_bindings.end());
  const auto ast = larcs::parse_program(entry.source);
  const auto cp = larcs::compile(ast, bindings);
  const Topology topo = make_topo(topo_kind);

  const auto report = map_program(ast, cp, topo);
  ASSERT_NO_THROW(validate_mapping(report.mapping, cp.graph, topo))
      << entry.name << " on " << topo.name();

  const auto metrics = compute_metrics(cp.graph, report.mapping, topo);
  EXPECT_GE(metrics.completion, 0) << entry.name;
  EXPECT_GE(metrics.total_ipc, 0);
  EXPECT_GE(metrics.avg_dilation, 0.0);
  EXPECT_EQ(metrics.load.tasks_per_proc.size(),
            static_cast<std::size_t>(topo.num_procs()));
  int placed = 0;
  for (const int t : metrics.load.tasks_per_proc) {
    placed += t;
  }
  EXPECT_EQ(placed, cp.graph.num_tasks());

  // Renderers never crash and mention the first task.
  const auto table = render_assignment_table(
      cp.graph, report.mapping.proc_of_task(), topo);
  EXPECT_FALSE(table.empty());
  const auto dot = render_task_graph_dot(cp.graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  const auto catalog = oregami::larcs::programs::catalog();
  const auto& name =
      catalog[static_cast<std::size_t>(std::get<0>(info.param))].name;
  static const char* const topo_names[] = {"cube", "mesh", "ring", "cbt",
                                           "torus"};
  return name + "_on_" +
         topo_names[static_cast<std::size_t>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    CorpusTimesTopologies, PipelineSweep,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 5)),
    sweep_name);

TEST(Integration, GeneratedProgramsEndToEnd) {
  for (const int logn : {3, 4, 5}) {
    const auto src = larcs::programs::fft(logn);
    const auto ast = larcs::parse_program(src);
    const auto cp = larcs::compile(ast, {{"n", 1L << logn}});
    const auto topo = Topology::hypercube(3);
    const auto report = map_program(ast, cp, topo);
    EXPECT_NO_THROW(validate_mapping(report.mapping, cp.graph, topo));
  }
  for (const int n : {8, 16, 32}) {
    const auto src = larcs::programs::broadcast_vote(n);
    const auto cp = larcs::compile_source(src, {{"n", n}});
    const auto topo = Topology::hypercube(3);
    const auto report = map_computation(cp.graph, topo);
    EXPECT_NO_THROW(validate_mapping(report.mapping, cp.graph, topo));
    // Node-symmetric circulants take the group path when divisible.
    EXPECT_EQ(report.strategy, MapStrategy::GroupTheoretic);
  }
}

TEST(Integration, MapThenHandTuneInSession) {
  // The full OREGAMI loop: automatic mapping, user inspects METRICS,
  // drags a task, sees the numbers move, and undoes a bad edit.
  const auto cp = larcs::compile_source(larcs::programs::nbody(),
                                        {{"n", 15}, {"s", 2}, {"m", 4}});
  const auto topo = Topology::hypercube(3);
  const auto report = map_computation(cp.graph, topo);
  MetricsSession session(cp.graph, topo, report.mapping);
  const auto base = session.metrics().completion;

  // Pile three extra tasks onto processor 0: completion must not
  // improve (the mapper had balanced them).
  std::int64_t worst = base;
  for (int t = 1; t <= 3; ++t) {
    const auto edit = session.move_task(t, 0);
    worst = std::max(worst, edit.after.completion);
  }
  EXPECT_GE(worst, base);
  // Roll everything back.
  while (session.undo()) {
  }
  EXPECT_EQ(session.metrics().completion, base);
}

TEST(Integration, LarcsDescriptionIsCompactRelativeToGraph) {
  // §2: "LaRCS description is very compact -- an order of magnitude
  // smaller than the size of the graph" for large enough instances.
  const auto src = larcs::programs::nbody();
  const auto cp =
      larcs::compile_source(src, {{"n", 512}, {"s", 4}, {"m", 8}});
  std::size_t edge_list_bytes = 0;
  for (const auto& phase : cp.graph.comm_phases()) {
    for (const auto& e : phase.edges) {
      edge_list_bytes += std::to_string(e.src).size() +
                         std::to_string(e.dst).size() +
                         std::to_string(e.volume).size() + 3;
    }
  }
  EXPECT_GE(edge_list_bytes, 10 * src.size());
}

TEST(Integration, StrategiesProduceComparableQuality) {
  // For the 16-task n-body on Q3, the group-theoretic mapping should
  // not lose to the general path on total IPC (it internalises a full
  // generator per cluster).
  const auto cp = larcs::compile_source(larcs::programs::nbody(),
                                        {{"n", 16}, {"s", 1}, {"m", 1}});
  const auto topo = Topology::hypercube(3);
  const auto group_report = map_computation(cp.graph, topo);
  ASSERT_EQ(group_report.strategy, MapStrategy::GroupTheoretic);
  MapperOptions no_group;
  no_group.allow_group = false;
  const auto general_report = map_computation(cp.graph, topo, no_group);
  const auto gm = compute_metrics(cp.graph, group_report.mapping, topo);
  const auto am = compute_metrics(cp.graph, general_report.mapping, topo);
  EXPECT_LE(gm.total_ipc, am.total_ipc);
}

}  // namespace
}  // namespace oregami
