#include <gtest/gtest.h>

#include "oregami/larcs/expr_eval.hpp"
#include "oregami/larcs/parser.hpp"

namespace oregami::larcs {
namespace {

long eval_str(const std::string& src, const Env& env = {}) {
  return eval(parse_expression(src), env);
}

TEST(Eval, Arithmetic) {
  EXPECT_EQ(eval_str("1 + 2 * 3"), 7);
  EXPECT_EQ(eval_str("(1 + 2) * 3"), 9);
  EXPECT_EQ(eval_str("10 - 4 - 3"), 3);  // left associative
  EXPECT_EQ(eval_str("7 / 2"), 3);
  EXPECT_EQ(eval_str("-7 / 2"), -3);  // truncation toward zero
}

TEST(Eval, MathematicalMod) {
  EXPECT_EQ(eval_str("7 mod 3"), 1);
  EXPECT_EQ(eval_str("-1 mod 8"), 7);  // always non-negative
  EXPECT_EQ(eval_str("-9 % 4"), 3);
  EXPECT_EQ(eval_str("8 mod 8"), 0);
}

TEST(Eval, UnaryMinus) {
  EXPECT_EQ(eval_str("-5 + 2"), -3);
  EXPECT_EQ(eval_str("- -5"), 5);  // note: "--" starts a comment
  EXPECT_EQ(eval_str("3 - -2"), 5);
}

TEST(Eval, Comparisons) {
  EXPECT_EQ(eval_str("3 < 4"), 1);
  EXPECT_EQ(eval_str("4 <= 4"), 1);
  EXPECT_EQ(eval_str("5 == 5"), 1);
  EXPECT_EQ(eval_str("5 != 5"), 0);
  EXPECT_EQ(eval_str("3 > 4"), 0);
  EXPECT_EQ(eval_str("4 >= 5"), 0);
}

TEST(Eval, BooleanOpsShortCircuit) {
  EXPECT_EQ(eval_str("1 and 0"), 0);
  EXPECT_EQ(eval_str("1 or 0"), 1);
  EXPECT_EQ(eval_str("not 0"), 1);
  EXPECT_EQ(eval_str("not 3"), 0);
  // Short-circuit: the division by zero on the right is never reached.
  EXPECT_EQ(eval_str("0 and (1 / 0)"), 0);
  EXPECT_EQ(eval_str("1 or (1 / 0)"), 1);
}

TEST(Eval, Variables) {
  Env env;
  env.bind("n", 15);
  env.bind("i", 3);
  EXPECT_EQ(eval_str("(i + (n + 1) / 2) mod n", env), 11);
  EXPECT_EQ(eval_str("n * n", env), 225);
}

TEST(Eval, UnknownVariableThrows) {
  EXPECT_THROW(eval_str("x + 1"), LarcsError);
  Env env;
  EXPECT_THROW(env.get("missing"), LarcsError);
}

TEST(Eval, EnvBindUnbind) {
  Env env;
  env.bind("a", 1);
  EXPECT_TRUE(env.has("a"));
  env.unbind("a");
  EXPECT_FALSE(env.has("a"));
}

TEST(Eval, DivisionAndModByZeroThrow) {
  EXPECT_THROW(eval_str("1 / 0"), LarcsError);
  EXPECT_THROW(eval_str("1 mod 0"), LarcsError);
}

TEST(Eval, Builtins) {
  EXPECT_EQ(eval_str("pow(2, 10)"), 1024);
  EXPECT_EQ(eval_str("pow(3, 0)"), 1);
  EXPECT_EQ(eval_str("log2(1)"), 0);
  EXPECT_EQ(eval_str("log2(8)"), 3);
  EXPECT_EQ(eval_str("log2(9)"), 3);  // floor
  EXPECT_EQ(eval_str("min(3, 7)"), 3);
  EXPECT_EQ(eval_str("max(3, 7)"), 7);
  EXPECT_EQ(eval_str("abs(-4)"), 4);
}

TEST(Eval, BinaryLabelingBuiltins) {
  EXPECT_EQ(eval_str("xor(5, 3)"), 6);
  EXPECT_EQ(eval_str("xor(0, 0)"), 0);
  EXPECT_EQ(eval_str("xor(12, 12)"), 0);
  EXPECT_EQ(eval_str("bit(5, 0)"), 1);
  EXPECT_EQ(eval_str("bit(5, 1)"), 0);
  EXPECT_EQ(eval_str("bit(5, 2)"), 1);
  EXPECT_EQ(eval_str("bit(5, 60)"), 0);
  EXPECT_THROW(eval_str("xor(0 - 1, 2)"), LarcsError);
  EXPECT_THROW(eval_str("bit(1, 63)"), LarcsError);
  EXPECT_THROW(eval_str("bit(0 - 1, 0)"), LarcsError);
}

TEST(Eval, BuiltinErrors) {
  EXPECT_THROW(eval_str("pow(2, -1)"), LarcsError);
  EXPECT_THROW(eval_str("log2(0)"), LarcsError);
  EXPECT_THROW(eval_str("min(1)"), LarcsError);
  EXPECT_THROW(eval_str("frobnicate(1)"), LarcsError);
}

TEST(Eval, PowOverflowGuard) {
  EXPECT_THROW(eval_str("pow(10, 30)"), LarcsError);
}

TEST(Eval, PaperChordalFormula) {
  // Fig 2: chordal neighbour of task i is (i + (n+1)/2) mod n; for
  // n = 15 task 0 sends to task 8 (Fig 6).
  Env env;
  env.bind("n", 15);
  env.bind("i", 0);
  EXPECT_EQ(eval_str("(i + (n + 1) / 2) mod n", env), 8);
  env.bind("i", 14);
  EXPECT_EQ(eval_str("(i + (n + 1) / 2) mod n", env), 7);
}

}  // namespace
}  // namespace oregami::larcs
