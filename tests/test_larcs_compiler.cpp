#include <gtest/gtest.h>

#include <set>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"

namespace oregami::larcs {
namespace {

TEST(Compiler, NbodyFig2Structure) {
  const auto cp = compile_source(programs::nbody(),
                                 {{"n", 15}, {"s", 4}, {"m", 8}});
  const auto& g = cp.graph;
  EXPECT_EQ(g.num_tasks(), 15);
  EXPECT_TRUE(g.declared_node_symmetric());
  ASSERT_EQ(g.comm_phases().size(), 2u);

  // Ring phase: i -> (i+1) mod 15.
  const auto& ring = g.comm_phases()[0];
  EXPECT_EQ(ring.name, "ring");
  ASSERT_EQ(ring.edges.size(), 15u);
  for (const auto& e : ring.edges) {
    EXPECT_EQ(e.dst, (e.src + 1) % 15);
    EXPECT_EQ(e.volume, 8);  // imported m
  }

  // Chordal phase: i -> (i+8) mod 15; task 0 sends to task 8 (Fig 6).
  const auto& chordal = g.comm_phases()[1];
  ASSERT_EQ(chordal.edges.size(), 15u);
  for (const auto& e : chordal.edges) {
    EXPECT_EQ(e.dst, (e.src + 8) % 15);
  }

  // Phase expression ((ring; compute1)^8; chordal; compute2)^4.
  const auto comm_mult = g.comm_phase_multiplicity();
  EXPECT_EQ(comm_mult, (std::vector<long>{4 * 8, 4}));
  const auto exec_mult = g.exec_phase_multiplicity();
  EXPECT_EQ(exec_mult, (std::vector<long>{32, 4}));
  EXPECT_EQ(g.phase_expr().to_string(g.comm_phases(), g.exec_phases()),
            "((ring; compute1)^8; chordal; compute2)^4");
}

TEST(Compiler, TaskNamesAndLabels) {
  const auto cp = compile_source(programs::nbody(),
                                 {{"n", 5}, {"s", 1}, {"m", 1}});
  EXPECT_EQ(cp.graph.task_name(3), "body(3)");
  EXPECT_EQ(cp.graph.task_label(3), std::vector<long>{3});
}

TEST(Compiler, JacobiMeshEdgesRespectGuards) {
  const auto cp = compile_source(programs::jacobi(), {{"n", 4}, {"iters", 2}});
  const auto& g = cp.graph;
  EXPECT_EQ(g.num_tasks(), 16);
  // 4-point stencil without wrap: each direction has n*(n-1) = 12 edges.
  ASSERT_EQ(g.comm_phases().size(), 1u);
  EXPECT_EQ(g.comm_phases()[0].edges.size(), 4 * 12u);
  // Aggregate is the mesh with both directions collapsed.
  const Graph agg = g.aggregate_graph();
  EXPECT_EQ(agg.num_edges(), 24);
  // exec cost 5 everywhere.
  for (const auto c : g.exec_phases()[0].cost) {
    EXPECT_EQ(c, 5);
  }
}

TEST(Compiler, MultiDimTaskIndexRowMajor) {
  const auto cp = compile_source(programs::jacobi(), {{"n", 3}, {"iters", 1}});
  // task_of uses row-major with last dim fastest: cell(i,j) = 3i + j.
  const auto* layout = cp.find_layout("cell");
  ASSERT_NE(layout, nullptr);
  EXPECT_EQ(layout->task_of({1, 2}), 5);
  EXPECT_EQ(cp.graph.task_name(5), "cell(1,2)");
  EXPECT_TRUE(layout->contains({2, 2}));
  EXPECT_FALSE(layout->contains({3, 0}));
}

TEST(Compiler, ForallExpandsBinomialTree) {
  const auto cp = compile_source(programs::binomial_dnc(), {{"k", 3}});
  const auto& g = cp.graph;
  EXPECT_EQ(g.num_tasks(), 8);
  // Scatter = binomial tree edges = 7; gather mirrors them.
  ASSERT_EQ(g.comm_phases().size(), 2u);
  EXPECT_EQ(g.comm_phases()[0].edges.size(), 7u);
  EXPECT_EQ(g.comm_phases()[1].edges.size(), 7u);
  std::set<std::pair<int, int>> scatter;
  for (const auto& e : g.comm_phases()[0].edges) {
    scatter.insert({e.src, e.dst});
  }
  EXPECT_TRUE(scatter.count({0, 1}));
  EXPECT_TRUE(scatter.count({0, 2}));
  EXPECT_TRUE(scatter.count({0, 4}));
  EXPECT_TRUE(scatter.count({2, 3}));
  EXPECT_TRUE(scatter.count({4, 5}));
  EXPECT_TRUE(scatter.count({4, 6}));
  EXPECT_TRUE(scatter.count({6, 7}));
  // Gather is the reverse.
  for (const auto& e : g.comm_phases()[1].edges) {
    EXPECT_TRUE(scatter.count({e.dst, e.src}));
  }
}

TEST(Compiler, BroadcastVoteMatchesFig4Generators) {
  const auto cp = compile_source(programs::broadcast_vote(8), {{"n", 8}});
  const auto& g = cp.graph;
  ASSERT_EQ(g.comm_phases().size(), 3u);
  for (int j = 0; j < 3; ++j) {
    const auto& phase = g.comm_phases()[static_cast<std::size_t>(j)];
    ASSERT_EQ(phase.edges.size(), 8u);
    for (const auto& e : phase.edges) {
      EXPECT_EQ(e.dst, (e.src + (1 << j)) % 8);
    }
  }
}

TEST(Compiler, WholeCatalogCompiles) {
  for (const auto& entry : programs::catalog()) {
    std::map<std::string, long> bindings(entry.example_bindings.begin(),
                                         entry.example_bindings.end());
    const auto cp = compile(parse_program(entry.source), bindings);
    EXPECT_GT(cp.graph.num_tasks(), 0) << entry.name;
    EXPECT_NO_THROW(cp.graph.validate()) << entry.name;
  }
}

TEST(Compiler, FftStagesFormButterfly) {
  const auto cp = compile_source(programs::fft(3), {{"n", 8}});
  const auto& g = cp.graph;
  ASSERT_EQ(g.comm_phases().size(), 3u);
  for (int stage = 0; stage < 3; ++stage) {
    const auto& phase = g.comm_phases()[static_cast<std::size_t>(stage)];
    ASSERT_EQ(phase.edges.size(), 8u) << "stage " << stage;
    for (const auto& e : phase.edges) {
      EXPECT_EQ(e.dst, e.src ^ (1 << stage));
    }
  }
}

TEST(Compiler, ConstDeclarationsEvaluateInOrder) {
  const auto cp = compile_source(
      "algorithm t(n);\n"
      "const half = n / 2;\n"
      "const quarter = half / 2;\n"
      "nodetype x[i: 0 .. quarter - 1];\n"
      "comphase a { x(i) -> x((i + 1) mod quarter); }\n",
      {{"n", 16}});
  EXPECT_EQ(cp.graph.num_tasks(), 4);
  EXPECT_EQ(cp.env.get("half"), 8);
  EXPECT_EQ(cp.env.get("quarter"), 4);
}

TEST(CompilerErrors, MissingParameterBinding) {
  EXPECT_THROW(
      (void)compile_source(programs::nbody(), {{"n", 15}, {"s", 4}}),
      LarcsError);  // m missing
}

TEST(CompilerErrors, UnknownBindingRejected) {
  EXPECT_THROW((void)compile_source(programs::jacobi(),
                                    {{"n", 4}, {"iters", 1}, {"zz", 9}}),
               LarcsError);
}

TEST(CompilerErrors, EmptyDomain) {
  EXPECT_THROW((void)compile_source(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { x(i) -> x(i + 1) when i < n - 1; }\n",
                   {{"n", 0}}),
               LarcsError);
}

TEST(CompilerErrors, TargetOutsideDomain) {
  EXPECT_THROW((void)compile_source(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { x(i) -> x(i + 1); }\n",  // no guard
                   {{"n", 4}}),
               LarcsError);
}

TEST(CompilerErrors, SelfLoopRejected) {
  EXPECT_THROW((void)compile_source(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { x(i) -> x(i); }\n",
                   {{"n", 4}}),
               LarcsError);
}

TEST(CompilerErrors, TaskLimitEnforced) {
  CompileOptions options;
  options.max_tasks = 100;
  EXPECT_THROW((void)compile_source(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { x(i) -> x((i + 1) mod n); }\n",
                   {{"n", 1000}}, options),
               LarcsError);
}

TEST(CompilerErrors, NegativeVolumeRejected) {
  EXPECT_THROW((void)compile_source(
                   "algorithm t(n);\n"
                   "nodetype x[i: 0 .. n-1];\n"
                   "comphase a { x(i) -> x((i + 1) mod n) volume 0 - 5; }\n",
                   {{"n", 4}}),
               LarcsError);
}

TEST(Compiler, ExecCostMayUseNodeBinders) {
  const auto cp = compile_source(
      "algorithm t(n);\n"
      "nodetype x[i: 0 .. n-1];\n"
      "comphase a { x(i) -> x((i + 1) mod n); }\n"
      "exphase w cost i + 1;\n",
      {{"n", 4}});
  EXPECT_EQ(cp.graph.exec_phases()[0].cost,
            (std::vector<std::int64_t>{1, 2, 3, 4}));
}

TEST(Compiler, FftParametricMatchesGeneratedUnion) {
  // The xor-based single-phase FFT produces exactly the union of the
  // generated program's per-stage edge sets.
  const auto parametric = compile_source(programs::fft_parametric(),
                                         {{"d", 4}});
  const auto staged = compile_source(programs::fft(4), {{"n", 16}});
  std::set<std::pair<int, int>> union_edges;
  for (const auto& phase : staged.graph.comm_phases()) {
    for (const auto& e : phase.edges) {
      union_edges.insert({e.src, e.dst});
    }
  }
  const auto& butterfly = parametric.graph.comm_phases()[0];
  EXPECT_EQ(butterfly.edges.size(), union_edges.size());
  for (const auto& e : butterfly.edges) {
    EXPECT_TRUE(union_edges.count({e.src, e.dst}))
        << e.src << " -> " << e.dst;
  }
  // And the source is size-independent while the staged one grows.
  EXPECT_EQ(programs::fft_parametric(), programs::fft_parametric());
  EXPECT_LT(programs::fft(3).size(), programs::fft(8).size());
}

TEST(Compiler, HypercubeExchangeBothDirections) {
  const auto cp = compile_source(programs::hypercube_exchange(),
                                 {{"d", 3}, {"iters", 1}});
  const auto& phase = cp.graph.comm_phases()[0];
  // 8 nodes x 3 dims = 24 directed edges.
  EXPECT_EQ(phase.edges.size(), 24u);
  const Graph agg = cp.graph.aggregate_graph();
  EXPECT_EQ(agg.num_edges(), 12);  // Q3 undirected
}

}  // namespace
}  // namespace oregami::larcs
