#include <gtest/gtest.h>

#include <set>

#include "oregami/mapper/binomial_mesh.hpp"

namespace oregami {
namespace {

TEST(BinomialMesh, TrivialOrders) {
  const auto e0 = embed_binomial_in_mesh(0);
  EXPECT_EQ(e0.rows * e0.cols, 1);
  EXPECT_EQ(e0.proc_of_node, std::vector<int>{0});

  const auto e1 = embed_binomial_in_mesh(1);
  EXPECT_EQ(e1.rows * e1.cols, 2);
  EXPECT_EQ(e1.average_dilation(), 1.0);
}

class BinomialMeshParam : public ::testing::TestWithParam<int> {};

TEST_P(BinomialMeshParam, PlacementIsABijection) {
  const auto e = embed_binomial_in_mesh(GetParam());
  const int n = 1 << GetParam();
  EXPECT_EQ(e.rows * e.cols, n);
  std::set<int> procs(e.proc_of_node.begin(), e.proc_of_node.end());
  EXPECT_EQ(procs.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(*procs.begin(), 0);
  EXPECT_EQ(*procs.rbegin(), n - 1);
}

TEST_P(BinomialMeshParam, MeshIsNearlySquare) {
  const auto e = embed_binomial_in_mesh(GetParam());
  EXPECT_TRUE(e.rows == e.cols || e.rows == 2 * e.cols);
}

TEST_P(BinomialMeshParam, AverageDilationWithinPaperBound) {
  // The [LRG+89] claim reproduced by this construction: average
  // dilation bounded by 1.2 for arbitrarily large binomial trees.
  const auto e = embed_binomial_in_mesh(GetParam());
  EXPECT_LE(e.average_dilation(), 1.2)
      << "k = " << GetParam() << " avg = " << e.average_dilation();
}

INSTANTIATE_TEST_SUITE_P(Orders, BinomialMeshParam,
                         ::testing::Range(2, 17));

TEST(BinomialMesh, MostEdgesHaveDilationOne) {
  const auto e = embed_binomial_in_mesh(12);
  int ones = 0;
  for (int m = 1; m < (1 << 12); ++m) {
    if (e.edge_dilation(m) == 1) {
      ++ones;
    }
  }
  // The construction keeps the overwhelming majority of edges at
  // dilation 1 (long edges are the log-many top-level root links).
  EXPECT_GT(ones, ((1 << 12) - 1) * 85 / 100);
}

TEST(BinomialMesh, MaxDilationGrowsSlowly) {
  // Max dilation is bounded by the mesh diameter and in practice stays
  // near sqrt(n)/const; sanity-check monotone-ish growth.
  for (int k = 2; k <= 14; ++k) {
    const auto e = embed_binomial_in_mesh(k);
    EXPECT_LE(e.max_dilation(), e.rows + e.cols - 2);
    EXPECT_GE(e.max_dilation(), 1);
  }
}

}  // namespace
}  // namespace oregami
