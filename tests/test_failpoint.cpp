// The deterministic failpoint subsystem: schedule parsing (and its
// quotable rejections), spec matching (exact / from / always /
// seeded-random), keyed vs counter-driven evaluation, the zero-cost
// disarmed fast path, and the report used by chaos assertions.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "oregami/support/failpoint.hpp"

namespace oregami::failpoint {
namespace {

/// Every test arms its own schedule; tear down so no state leaks.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { clear(); }
};

TEST_F(FailpointTest, DisarmedSitesAreSilent) {
  clear();
  EXPECT_FALSE(armed());
  EXPECT_EQ(evaluate("persist.write").action, Action::None);
  EXPECT_EQ(evaluate("persist.write", 7).action, Action::None);
  // The disarmed path never even counts evaluations.
  EXPECT_EQ(evaluations("persist.write"), 0);
  EXPECT_EQ(report(), "");
}

TEST_F(FailpointTest, ExactSpecFiresOnTheNthEvaluationOnly) {
  configure("persist.write:err@3");
  EXPECT_EQ(evaluate("persist.write").action, Action::None);  // #1
  EXPECT_EQ(evaluate("persist.write").action, Action::None);  // #2
  EXPECT_EQ(evaluate("persist.write").action, Action::Err);   // #3
  EXPECT_EQ(evaluate("persist.write").action, Action::None);  // #4
  EXPECT_EQ(fired_total(), 1);
  EXPECT_EQ(evaluations("persist.write"), 4);
}

TEST_F(FailpointTest, FromSpecFiresFromTheNthEvaluationOnwards) {
  configure("persist.write:err@3+");
  EXPECT_EQ(evaluate("persist.write").action, Action::None);
  EXPECT_EQ(evaluate("persist.write").action, Action::None);
  EXPECT_EQ(evaluate("persist.write").action, Action::Err);
  EXPECT_EQ(evaluate("persist.write").action, Action::Err);
  EXPECT_EQ(fired_total(), 2);
}

TEST_F(FailpointTest, StarAndOmittedSpecsFireAlways) {
  configure("a.b:err@*,c.d:short");
  EXPECT_EQ(evaluate("a.b").action, Action::Err);
  EXPECT_EQ(evaluate("a.b").action, Action::Err);
  EXPECT_EQ(evaluate("c.d").action, Action::Short);
}

TEST_F(FailpointTest, ExplicitKeysDecoupleFiringFromEvaluationOrder) {
  configure("job.run:throw@7");
  // Evaluation order is 5, 7, 6 -- only the key-7 evaluation fires,
  // exactly what makes chaos runs worker-count independent.
  EXPECT_EQ(evaluate("job.run", 5).action, Action::None);
  EXPECT_EQ(evaluate("job.run", 7).action, Action::Throw);
  EXPECT_EQ(evaluate("job.run", 6).action, Action::None);
  EXPECT_EQ(fired_total(), 1);
}

TEST_F(FailpointTest, HangCarriesItsArgumentAndDefaults) {
  configure("job.run:hang(250)@1,slow.site:hang@1");
  EXPECT_EQ(evaluate("job.run", 1).action, Action::Hang);
  configure("job.run:hang(250)@1");
  const Hit hit = evaluate("job.run", 1);
  EXPECT_EQ(hit.action, Action::Hang);
  EXPECT_EQ(hit.arg, 250);
  configure("job.run:hang@1");
  EXPECT_EQ(evaluate("job.run", 1).arg, 100);  // default hang ms
}

TEST_F(FailpointTest, RandomSpecIsDeterministicPerSeedAndKey) {
  configure("persist.write:err@p50s42");
  std::vector<bool> first;
  for (int key = 1; key <= 64; ++key) {
    first.push_back(evaluate("persist.write", key).action == Action::Err);
  }
  // Same seed, same keys: bit-identical decisions on replay.
  configure("persist.write:err@p50s42");
  for (int key = 1; key <= 64; ++key) {
    EXPECT_EQ(evaluate("persist.write", key).action == Action::Err,
              first[static_cast<std::size_t>(key - 1)])
        << "key " << key;
  }
  // ~50% should fire; with 64 keys even a loose band proves the
  // distribution is neither all-on nor all-off.
  const int fired = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 16);
  EXPECT_LT(fired, 48);
  // p0 never fires, p100 always fires.
  configure("x.y:err@p0s1");
  EXPECT_EQ(evaluate("x.y", 1).action, Action::None);
  configure("x.y:err@p100s1");
  EXPECT_EQ(evaluate("x.y", 1).action, Action::Err);
}

TEST_F(FailpointTest, FirstMatchingClauseWins) {
  configure("s.x:err@2,s.x:short");
  EXPECT_EQ(evaluate("s.x").action, Action::Short);  // #1: only clause 2
  EXPECT_EQ(evaluate("s.x").action, Action::Err);    // #2: clause 1 first
  EXPECT_EQ(evaluate("s.x").action, Action::Short);  // #3
}

TEST_F(FailpointTest, ReportRendersDeterministicFireCounts) {
  configure("a.b:err@1,c.d:hang(5)@9");
  (void)evaluate("a.b");
  (void)evaluate("a.b");
  EXPECT_EQ(report(), "a.b:err@1 fired 1; c.d:hang(5)@9 fired 0");
}

TEST_F(FailpointTest, ConfigureReplacesThePreviousSchedule) {
  configure("a.b:err");
  EXPECT_EQ(evaluate("a.b").action, Action::Err);
  configure("c.d:short");
  EXPECT_EQ(evaluate("a.b").action, Action::None);
  EXPECT_EQ(evaluate("c.d").action, Action::Short);
  // Counters restart with the new schedule.
  EXPECT_EQ(evaluations("a.b"), 1);
}

void expect_bad_schedule(const std::string& schedule,
                         const std::string& needle) {
  try {
    configure(schedule);
    FAIL() << "expected std::invalid_argument for: " << schedule;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "expected \"" << needle << "\" in: " << e.what();
  }
}

TEST_F(FailpointTest, BadSchedulesAreRejectedWithQuotableMessages) {
  expect_bad_schedule("", "empty clause");
  expect_bad_schedule("siteonly", "needs the form");
  expect_bad_schedule(":err", "needs the form");
  expect_bad_schedule("a.b:frobnicate", "unknown action");
  expect_bad_schedule("a.b:err@x", "bad index");
  expect_bad_schedule("a.b:err@-1", "bad index");
  expect_bad_schedule("a.b:err@p5", "pPCTsSEED");
  expect_bad_schedule("a.b:err@p200s1", "probability must be 0..100");
  expect_bad_schedule("a.b:err(3)", "does not take an argument");
  expect_bad_schedule("a.b:hang(", "unbalanced");
  expect_bad_schedule("a b:err", "invalid characters");
  expect_bad_schedule("a.b:err,,c.d:err", "empty clause");
  // A rejected schedule must not arm anything.
  EXPECT_FALSE(armed());
}

TEST_F(FailpointTest, ClearDisarmsEverything) {
  configure("a.b:err");
  EXPECT_TRUE(armed());
  clear();
  EXPECT_FALSE(armed());
  EXPECT_EQ(evaluate("a.b").action, Action::None);
  EXPECT_EQ(report(), "");
}

}  // namespace
}  // namespace oregami::failpoint
