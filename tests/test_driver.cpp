#include <gtest/gtest.h>

#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/paper_examples.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

larcs::CompiledProgram compile_named(
    const std::string& source,
    const std::map<std::string, long>& bindings) {
  return larcs::compile_source(source, bindings);
}

TEST(Driver, RingPipelinePicksCannedStrategy) {
  const auto cp = compile_named(larcs::programs::ring_pipeline(),
                                {{"n", 16}, {"stages", 4}});
  const auto ast = larcs::parse_program(larcs::programs::ring_pipeline());
  const auto report = map_program(ast, cp, Topology::hypercube(4));
  EXPECT_EQ(report.strategy, MapStrategy::Canned);
  EXPECT_NE(report.details.find("family hint 'ring'"), std::string::npos);
  EXPECT_NE(report.details.find("Gray"), std::string::npos);
}

TEST(Driver, JacobiHintUsesMeshTiling) {
  const auto ast = larcs::parse_program(larcs::programs::jacobi());
  const auto cp = larcs::compile(ast, {{"n", 8}, {"iters", 2}});
  const auto report = map_program(ast, cp, Topology::mesh(4, 4));
  EXPECT_EQ(report.strategy, MapStrategy::Canned);
  EXPECT_NE(report.details.find("tiling"), std::string::npos);
  EXPECT_EQ(report.mapping.contraction.num_clusters, 16);
  EXPECT_EQ(report.mapping.contraction.max_cluster_size(), 4);
}

TEST(Driver, MatmulPicksSystolicOnMesh) {
  const auto ast = larcs::parse_program(larcs::programs::matmul_systolic());
  const auto cp = larcs::compile(ast, {{"n", 4}});
  const auto report = map_program(ast, cp, Topology::mesh(4, 4));
  EXPECT_EQ(report.strategy, MapStrategy::Systolic);
  EXPECT_NE(report.details.find("lambda"), std::string::npos);
  EXPECT_EQ(report.mapping.contraction.num_clusters, 16);
}

TEST(Driver, SystolicDisabledFallsThrough) {
  const auto ast = larcs::parse_program(larcs::programs::matmul_systolic());
  const auto cp = larcs::compile(ast, {{"n", 4}});
  MapperOptions options;
  options.allow_systolic = false;
  const auto report = map_program(ast, cp, Topology::mesh(4, 4), options);
  EXPECT_NE(report.strategy, MapStrategy::Systolic);
}

TEST(Driver, NbodyPicksGroupTheoreticStrategy) {
  const auto cp = compile_named(larcs::programs::nbody(),
                                {{"n", 16}, {"s", 2}, {"m", 1}});
  const auto report = map_computation(cp.graph, Topology::hypercube(3));
  EXPECT_EQ(report.strategy, MapStrategy::GroupTheoretic);
  EXPECT_NE(report.details.find("Cayley"), std::string::npos);
  // 16 tasks over 8 processors: clusters of 2.
  EXPECT_EQ(report.mapping.contraction.num_clusters, 8);
  EXPECT_EQ(report.mapping.contraction.max_cluster_size(), 2);
}

TEST(Driver, GroupDisabledFallsToGeneral) {
  const auto cp = compile_named(larcs::programs::nbody(),
                                {{"n", 16}, {"s", 2}, {"m", 1}});
  MapperOptions options;
  options.allow_group = false;
  const auto report =
      map_computation(cp.graph, Topology::hypercube(3), options);
  EXPECT_EQ(report.strategy, MapStrategy::General);
  EXPECT_NE(report.details.find("matching"), std::string::npos);
}

TEST(Driver, FftStagesFormElementaryAbelianGroup) {
  // The staged FFT's comm functions are the XOR involutions, which
  // generate (Z_2)^4 acting regularly -- with the canned path disabled
  // the driver must pick the group-theoretic contraction.
  const auto cp =
      larcs::compile_source(larcs::programs::fft(4), {{"n", 16}});
  MapperOptions options;
  options.allow_canned = false;
  const auto report =
      map_computation(cp.graph, Topology::hypercube(3), options);
  EXPECT_EQ(report.strategy, MapStrategy::GroupTheoretic);
  EXPECT_EQ(report.mapping.contraction.max_cluster_size(), 2);
}

TEST(Driver, FftAggregateIsAHypercubeForCannedPath) {
  const auto cp =
      larcs::compile_source(larcs::programs::fft(4), {{"n", 16}});
  const auto report = map_computation(cp.graph, Topology::hypercube(3));
  EXPECT_EQ(report.strategy, MapStrategy::Canned);
  EXPECT_NE(report.details.find("hypercube"), std::string::npos);
}

TEST(Driver, IrregularGraphUsesGeneralPath) {
  SplitMix64 rng(5);
  TaskGraph g;
  for (int i = 0; i < 14; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int phase = g.add_comm_phase("p");
  for (int i = 0; i < 14; ++i) {
    for (int j = i + 1; j < 14; ++j) {
      if (rng.next_double() < 0.3) {
        g.add_comm_edge(phase, i, j, rng.next_in(1, 9));
      }
    }
  }
  const auto report = map_computation(g, Topology::mesh(2, 3));
  EXPECT_EQ(report.strategy, MapStrategy::General);
  EXPECT_LE(report.mapping.contraction.num_clusters, 6);
}

TEST(Driver, MappingAlwaysValidates) {
  // validate_mapping runs inside the driver; re-run it here explicitly
  // for a spread of workloads and topologies.
  const auto nbody = compile_named(larcs::programs::nbody(),
                                   {{"n", 15}, {"s", 1}, {"m", 2}});
  for (const auto& topo :
       {Topology::hypercube(3), Topology::mesh(2, 4), Topology::ring(5),
        Topology::complete_binary_tree(3)}) {
    const auto report = map_computation(nbody.graph, topo);
    EXPECT_NO_THROW(validate_mapping(report.mapping, nbody.graph, topo))
        << topo.name();
  }
}

TEST(Driver, ClusterGraphAggregatesVolumes) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int p = g.add_comm_phase("p");
  g.add_comm_edge(p, 0, 2, 5);
  g.add_comm_edge(p, 2, 0, 7);
  g.add_comm_edge(p, 0, 1, 100);  // internal to cluster 0
  Contraction c;
  c.num_clusters = 2;
  c.cluster_of_task = {0, 0, 1, 1};
  const Graph cg = cluster_graph_of(g, c);
  EXPECT_EQ(cg.num_edges(), 1);
  EXPECT_EQ(cg.edge_weight(0, 1), 12);
}

TEST(Driver, EmbedClustersUsesCannedForNameableClusterGraph) {
  // Contract a 16-ring to an 8-ring of clusters: the cluster graph is
  // itself a ring, so the embedding comes from the canned library.
  const auto cp = compile_named(larcs::programs::ring_pipeline(),
                                {{"n", 16}, {"stages", 1}});
  Contraction c;
  c.num_clusters = 8;
  c.cluster_of_task.resize(16);
  for (int t = 0; t < 16; ++t) {
    c.cluster_of_task[static_cast<std::size_t>(t)] = t / 2;
  }
  std::string how;
  const auto topo = Topology::hypercube(3);
  const auto e = embed_clusters(cp.graph, c, topo, &how);
  EXPECT_NE(how.find("canned"), std::string::npos);
  EXPECT_NO_THROW(e.validate(8));
}

TEST(Driver, ValidateMappingCatchesBadRouting) {
  const auto cp = compile_named(larcs::programs::nbody(),
                                {{"n", 8}, {"s", 1}, {"m", 1}});
  const auto topo = Topology::hypercube(3);
  auto report = map_computation(cp.graph, topo);
  // Drop one phase's routing.
  auto broken = report.mapping;
  broken.routing.pop_back();
  EXPECT_THROW(validate_mapping(broken, cp.graph, topo), MappingError);
  // Corrupt a route.
  auto corrupted = report.mapping;
  corrupted.routing[0].route_of_edge[0].nodes.back() ^= 1;
  EXPECT_THROW(validate_mapping(corrupted, cp.graph, topo), MappingError);
}

TEST(Driver, EmptyTaskGraphRejected) {
  TaskGraph g;
  EXPECT_THROW((void)map_computation(g, Topology::ring(3)), MappingError);
}

TEST(Driver, StrategyNames) {
  EXPECT_EQ(to_string(MapStrategy::Canned), "canned");
  EXPECT_EQ(to_string(MapStrategy::Systolic), "systolic");
  EXPECT_NE(to_string(MapStrategy::General).find("MWM"),
            std::string::npos);
}

}  // namespace
}  // namespace oregami
