#include <gtest/gtest.h>

#include "oregami/arch/routes.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/session.hpp"

namespace oregami {
namespace {

struct Fixture {
  larcs::CompiledProgram cp;
  Topology topo;
  MapperReport report;

  Fixture()
      : cp(larcs::compile_source(larcs::programs::nbody(),
                                 {{"n", 8}, {"s", 2}, {"m", 4}})),
        topo(Topology::hypercube(3)),
        report(map_computation(cp.graph, topo)) {}
};

TEST(Session, StartsFromMapping) {
  const Fixture f;
  MetricsSession session(f.cp.graph, f.topo, f.report.mapping);
  EXPECT_EQ(session.proc_of_task(), f.report.mapping.proc_of_task());
  EXPECT_EQ(session.history_size(), 0u);
  EXPECT_GT(session.metrics().completion, 0);
}

TEST(Session, MoveTaskChangesAssignmentAndReroutes) {
  const Fixture f;
  MetricsSession session(f.cp.graph, f.topo, f.report.mapping);
  const int old_proc = session.proc_of_task()[0];
  const int new_proc = (old_proc + 1) % 8;
  const auto report = session.move_task(0, new_proc);
  EXPECT_EQ(session.proc_of_task()[0], new_proc);
  EXPECT_EQ(session.history_size(), 1u);
  // Every route incident to task 0 is valid for the new placement.
  for (std::size_t k = 0; k < f.cp.graph.comm_phases().size(); ++k) {
    const auto& phase = f.cp.graph.comm_phases()[k];
    for (std::size_t i = 0; i < phase.edges.size(); ++i) {
      const auto& e = phase.edges[i];
      const int src = session.proc_of_task()[static_cast<std::size_t>(e.src)];
      const int dst = session.proc_of_task()[static_cast<std::size_t>(e.dst)];
      EXPECT_TRUE(is_valid_route(f.topo, session.routing()[k].route_of_edge[i],
                                 src, dst));
    }
  }
  // Deltas are consistent with before/after.
  EXPECT_EQ(report.completion_delta(),
            report.after.completion - report.before.completion);
}

TEST(Session, UndoRestoresEverything) {
  const Fixture f;
  MetricsSession session(f.cp.graph, f.topo, f.report.mapping);
  const auto before_procs = session.proc_of_task();
  const auto before_completion = session.metrics().completion;
  (void)session.move_task(3, (session.proc_of_task()[3] + 2) % 8);
  EXPECT_NE(session.proc_of_task(), before_procs);
  EXPECT_TRUE(session.undo());
  EXPECT_EQ(session.proc_of_task(), before_procs);
  EXPECT_EQ(session.metrics().completion, before_completion);
  EXPECT_FALSE(session.undo());  // history exhausted
}

TEST(Session, RerouteEdgeValidatesWalk) {
  const Fixture f;
  MetricsSession session(f.cp.graph, f.topo, f.report.mapping);
  const auto& e = f.cp.graph.comm_phases()[0].edges[0];
  const int src = session.proc_of_task()[static_cast<std::size_t>(e.src)];
  const int dst = session.proc_of_task()[static_cast<std::size_t>(e.dst)];
  // A deliberately scenic valid walk: go through a third processor.
  if (src != dst) {
    // Build a 2-hop detour when possible; otherwise use the direct one.
    Route detour;
    bool found = false;
    for (int mid = 0; mid < 8 && !found; ++mid) {
      if (mid != src && mid != dst &&
          f.topo.link_between(src, mid).has_value() &&
          f.topo.link_between(mid, dst).has_value()) {
        detour = route_from_nodes(f.topo, {src, mid, dst});
        found = true;
      }
    }
    if (found) {
      const auto report = session.reroute_edge(0, 0, detour);
      EXPECT_EQ(session.routing()[0].route_of_edge[0].nodes, detour.nodes);
      EXPECT_GE(report.after.max_dilation, report.before.max_dilation);
    }
  }
  // Invalid route (wrong endpoints) must throw.
  const Route bogus{{(src + 1) % 8}, {}};
  EXPECT_THROW((void)session.reroute_edge(0, 0, bogus), MappingError);
}

TEST(Session, RangeChecks) {
  const Fixture f;
  MetricsSession session(f.cp.graph, f.topo, f.report.mapping);
  EXPECT_THROW((void)session.move_task(-1, 0), MappingError);
  EXPECT_THROW((void)session.move_task(0, 99), MappingError);
  EXPECT_THROW((void)session.reroute_edge(9, 0, Route{{0}, {}}),
               MappingError);
  EXPECT_THROW((void)session.reroute_edge(0, 999, Route{{0}, {}}),
               MappingError);
}

TEST(Session, ConsolidatingTasksReducesIpc) {
  // Moving a task next to its heaviest neighbour should never *increase*
  // total IPC when it lands on the neighbour's processor.
  const Fixture f;
  MetricsSession session(f.cp.graph, f.topo, f.report.mapping);
  const auto& e = f.cp.graph.comm_phases()[0].edges[0];
  const int dst_proc =
      session.proc_of_task()[static_cast<std::size_t>(e.dst)];
  const auto report = session.move_task(e.src, dst_proc);
  EXPECT_LE(report.after.total_ipc, report.before.total_ipc);
}

}  // namespace
}  // namespace oregami
