// Degraded-mode repair tests, in three tiers:
//   * targeted ladder behaviour (migrate -> refine -> remap, deadlines,
//     disabled rungs, determinism);
//   * MetricsSession::apply_repair as an undoable edit;
//   * a generated safety suite (>= 200 random program x topology x
//     fault cases): repair either returns a valid mapping that places
//     every task on a healthy processor with routes avoiding every dead
//     link, or throws a clean MappingError -- never a crash, hang, or
//     OREGAMI_ASSERT abort.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "oregami/arch/fault_model.hpp"
#include "oregami/arch/topology_spec.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/repair.hpp"
#include "oregami/metrics/completion_model.hpp"
#include "oregami/metrics/session.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

/// A repaired mapping must avoid every dead processor and link.
void expect_avoids_faults(const Mapping& mapping, const TaskGraph& graph,
                          const FaultedTopology& ft,
                          const std::string& what) {
  validate_mapping(mapping, graph, ft.base());
  const auto procs = mapping.proc_of_task();
  for (std::size_t t = 0; t < procs.size(); ++t) {
    EXPECT_TRUE(ft.healthy(procs[t]))
        << what << ": task " << t << " on unhealthy proc " << procs[t];
  }
  for (const auto& phase : mapping.routing) {
    for (const auto& route : phase.route_of_edge) {
      EXPECT_TRUE(ft.route_alive(route))
          << what << ": route crosses a dead link/processor";
    }
  }
}

TaskGraph grid_graph(int rows, int cols) {
  TaskGraph g;
  for (int i = 0; i < rows * cols; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int phase = g.add_comm_phase("halo");
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int id = r * cols + c;
      if (c + 1 < cols) {
        g.add_comm_edge(phase, id, id + 1, 2);
      }
      if (r + 1 < rows) {
        g.add_comm_edge(phase, id, id + cols, 2);
      }
    }
  }
  std::vector<std::int64_t> cost(
      static_cast<std::size_t>(rows * cols), 3);
  g.add_exec_phase("relax", std::move(cost));
  g.validate();
  return g;
}

TEST(Repair, EmptySpecIsIdentity) {
  const TaskGraph graph = grid_graph(4, 4);
  const Topology topo = Topology::mesh(4, 4);
  const auto report = map_computation(graph, topo);
  const FaultedTopology ft(topo, FaultSpec{});
  const RepairResult result = repair_mapping(graph, ft, report.mapping);
  EXPECT_EQ(result.rung, RepairRung::None);
  EXPECT_TRUE(result.migrations.empty());
  EXPECT_EQ(result.mapping.proc_of_task(), report.mapping.proc_of_task());
  EXPECT_EQ(result.healthy_completion, result.degraded_completion);
}

TEST(Repair, MigratesOnlyDisplacedTasks) {
  const TaskGraph graph = grid_graph(4, 4);
  const Topology topo = Topology::mesh(4, 4);
  const auto report = map_computation(graph, topo);
  const auto before = report.mapping.proc_of_task();
  // Kill one processor that actually hosts tasks.
  const int victim = before[0];
  const FaultedTopology ft(
      topo, FaultSpec::parse("p" + std::to_string(victim), topo));
  RepairOptions opts;
  opts.allow_refine = false;  // isolate the migrate rung
  const RepairResult result = repair_mapping(graph, ft, report.mapping, opts);
  EXPECT_EQ(result.rung, RepairRung::Migrate);
  expect_avoids_faults(result.mapping, graph, ft, "migrate");
  // Tasks that were not on the victim stayed put.
  const auto after = result.mapping.proc_of_task();
  std::set<int> moved;
  for (const RepairMove& m : result.migrations) {
    EXPECT_EQ(m.from_proc, victim);
    moved.insert(m.task);
  }
  for (std::size_t t = 0; t < before.size(); ++t) {
    if (before[t] != victim) {
      EXPECT_EQ(after[t], before[t]) << "undisplaced task " << t << " moved";
      EXPECT_EQ(moved.count(static_cast<int>(t)), 0u);
    } else {
      EXPECT_EQ(moved.count(static_cast<int>(t)), 1u);
    }
  }
}

TEST(Repair, RefineRungCanImproveOnMigration) {
  const TaskGraph graph = grid_graph(4, 4);
  const Topology topo = Topology::mesh(4, 4);
  const auto report = map_computation(graph, topo);
  const FaultedTopology ft(topo, FaultSpec::parse("p5,s0:6", topo));
  RepairOptions with_refine;
  RepairOptions without;
  without.allow_refine = false;
  const auto refined = repair_mapping(graph, ft, report.mapping, with_refine);
  const auto migrated = repair_mapping(graph, ft, report.mapping, without);
  expect_avoids_faults(refined.mapping, graph, ft, "refined");
  EXPECT_LE(refined.degraded_completion, migrated.degraded_completion);
}

TEST(Repair, FullRemapWhenMigrationDisabled) {
  const TaskGraph graph = grid_graph(4, 4);
  const Topology topo = Topology::mesh(4, 4);
  const auto report = map_computation(graph, topo);
  const FaultedTopology ft(topo, FaultSpec::parse("p3,p12", topo));
  RepairOptions opts;
  opts.allow_migrate = false;
  opts.allow_refine = false;
  const RepairResult result = repair_mapping(graph, ft, report.mapping, opts);
  EXPECT_EQ(result.rung, RepairRung::Remap);
  expect_avoids_faults(result.mapping, graph, ft, "remap");
}

TEST(Repair, AllRungsDisabledThrows) {
  const TaskGraph graph = grid_graph(2, 2);
  const Topology topo = Topology::mesh(2, 2);
  const auto report = map_computation(graph, topo);
  const FaultedTopology ft(topo, FaultSpec::parse("p0", topo));
  RepairOptions opts;
  opts.allow_migrate = false;
  opts.allow_refine = false;
  opts.allow_remap = false;
  EXPECT_THROW((void)repair_mapping(graph, ft, report.mapping, opts),
               MappingError);
}

TEST(Repair, NoHealthyProcessorsThrowsCleanly) {
  const TaskGraph graph = grid_graph(2, 2);
  const Topology topo = Topology::mesh(2, 2);
  const auto report = map_computation(graph, topo);
  const FaultedTopology ft(topo, FaultSpec::parse("p0,p1,p2,p3", topo));
  EXPECT_THROW((void)repair_mapping(graph, ft, report.mapping),
               MappingError);
}

TEST(Repair, ExpiredDeadlineStillProducesValidMapping) {
  const TaskGraph graph = grid_graph(4, 4);
  const Topology topo = Topology::mesh(4, 4);
  const auto report = map_computation(graph, topo);
  const FaultedTopology ft(topo, FaultSpec::parse("p5,p6", topo));
  RepairOptions opts;
  opts.time_budget_ms = -1;  // already expired, deterministically
  const RepairResult result = repair_mapping(graph, ft, report.mapping, opts);
  EXPECT_TRUE(result.deadline_hit);
  expect_avoids_faults(result.mapping, graph, ft, "deadline");
}

TEST(Repair, DeterministicAcrossRuns) {
  const TaskGraph graph = grid_graph(4, 4);
  const Topology topo = Topology::mesh(4, 4);
  const auto report = map_computation(graph, topo);
  const FaultedTopology ft(topo, FaultSpec::parse("p5,l2,s7:3", topo));
  const RepairResult a = repair_mapping(graph, ft, report.mapping);
  const RepairResult b = repair_mapping(graph, ft, report.mapping);
  EXPECT_EQ(a.mapping.proc_of_task(), b.mapping.proc_of_task());
  EXPECT_EQ(a.degraded_completion, b.degraded_completion);
  EXPECT_EQ(a.details, b.details);
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    EXPECT_EQ(a.migrations[i].task, b.migrations[i].task);
    EXPECT_EQ(a.migrations[i].to_proc, b.migrations[i].to_proc);
  }
}

TEST(Repair, IndependentOfRemapWorkerCount) {
  // The remap rung runs the portfolio on the healthy sub-machine; its
  // determinism contract says worker count never changes the result.
  const TaskGraph graph = grid_graph(4, 4);
  const Topology topo = Topology::mesh(4, 4);
  const auto report = map_computation(graph, topo);
  const FaultedTopology ft(topo, FaultSpec::parse("p1,p14", topo));
  RepairOptions opts;
  opts.allow_migrate = false;
  opts.allow_refine = false;
  opts.remap_options.portfolio = 4;
  opts.remap_options.jobs = 1;
  const RepairResult serial = repair_mapping(graph, ft, report.mapping, opts);
  opts.remap_options.jobs = 5;
  const RepairResult wide = repair_mapping(graph, ft, report.mapping, opts);
  EXPECT_EQ(serial.mapping.proc_of_task(), wide.mapping.proc_of_task());
  EXPECT_EQ(serial.degraded_completion, wide.degraded_completion);
}

TEST(Repair, SessionApplyRepairIsUndoable) {
  const TaskGraph graph = grid_graph(4, 4);
  const Topology topo = Topology::mesh(4, 4);
  const auto report = map_computation(graph, topo);
  const FaultedTopology ft(topo, FaultSpec::parse("p5", topo));
  const RepairResult repaired = repair_mapping(graph, ft, report.mapping);

  MetricsSession session(graph, topo, report.mapping);
  const auto before = session.metrics();
  const EditReport edit = session.apply_repair(repaired);
  EXPECT_EQ(session.metrics().completion,
            completion_time(graph, repaired.mapping.proc_of_task(),
                            repaired.mapping.routing, topo));
  (void)edit;
  ASSERT_TRUE(session.undo());
  EXPECT_EQ(session.metrics().completion, before.completion);
  EXPECT_EQ(session.metrics().total_ipc, before.total_ipc);
}

TEST(Repair, DegradedMappingThroughMapperOptions) {
  // MapperOptions::faults maps straight onto the healthy sub-machine.
  const TaskGraph graph = grid_graph(4, 4);
  const Topology topo = Topology::mesh(4, 4);
  const FaultedTopology ft(topo, FaultSpec::parse("p0,p15,l5", topo));
  MapperOptions opts;
  opts.faults = &ft;
  const auto report = map_computation(graph, topo, opts);
  expect_avoids_faults(report.mapping, graph, ft, "driver degraded");
  EXPECT_NE(report.details.find("degraded machine"), std::string::npos);
}

// ---------------------------------------------------------------------
// Generated safety suite: >= 200 random cases.
// ---------------------------------------------------------------------

Topology random_topology(SplitMix64& rng) {
  switch (rng.next_below(6)) {
    case 0:
      return parse_topology_spec("ring:" +
                                 std::to_string(rng.next_in(4, 10)));
    case 1:
      return parse_topology_spec("chain:" +
                                 std::to_string(rng.next_in(3, 10)));
    case 2:
      return parse_topology_spec("mesh:" + std::to_string(rng.next_in(2, 4)) +
                                 "x" + std::to_string(rng.next_in(2, 4)));
    case 3:
      return parse_topology_spec("torus:" + std::to_string(rng.next_in(3, 4)) +
                                 "x" + std::to_string(rng.next_in(3, 4)));
    case 4:
      return parse_topology_spec("hypercube:" +
                                 std::to_string(rng.next_in(2, 4)));
    default:
      return parse_topology_spec("cbt:" + std::to_string(rng.next_in(2, 4)));
  }
}

TaskGraph random_task_graph(SplitMix64& rng) {
  TaskGraph g;
  const int n = static_cast<int>(rng.next_in(2, 20));
  for (int i = 0; i < n; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int phases = static_cast<int>(rng.next_in(1, 2));
  for (int k = 0; k < phases; ++k) {
    const int phase = g.add_comm_phase("c" + std::to_string(k));
    const int edges = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(2 * n)));
    for (int e = 0; e < edges; ++e) {
      const int u =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      int v = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      if (u == v) {
        v = (v + 1) % n;
      }
      if (u != v) {
        g.add_comm_edge(phase, u, v, rng.next_in(1, 8));
      }
    }
  }
  if (rng.next_below(2) == 0) {
    std::vector<std::int64_t> cost(static_cast<std::size_t>(n));
    for (auto& c : cost) {
      c = rng.next_in(0, 9);
    }
    g.add_exec_phase("x", std::move(cost));
  }
  g.validate();
  return g;
}

TEST(RepairSafety, TwoHundredRandomCasesNeverCrash) {
  constexpr int kCases = 220;
  SplitMix64 rng(0xC0FFEE5AFE7Eull);
  int repaired = 0;
  int infeasible = 0;
  for (int i = 0; i < kCases; ++i) {
    const Topology topo = random_topology(rng);
    const TaskGraph graph = random_task_graph(rng);
    const FaultSpec spec = FaultSpec::random_spec(
        topo, static_cast<int>(rng.next_in(0, topo.num_procs() / 2)),
        static_cast<int>(rng.next_in(0, 3)),
        static_cast<int>(rng.next_in(0, 3)), rng.next_u64());
    const FaultedTopology ft(topo, spec);
    const std::string what =
        "case " + std::to_string(i) + " topo " + topo.name() + " spec '" +
        spec.to_string() + "'";
    try {
      const auto report = map_computation(graph, topo);
      const RepairResult result =
          repair_mapping(graph, ft, report.mapping);
      expect_avoids_faults(result.mapping, graph, ft, what);
      // The reported degraded completion matches an independent
      // recomputation through the metrics layer.
      EXPECT_EQ(result.degraded_completion,
                degraded_completion_time(graph,
                                         result.mapping.proc_of_task(),
                                         result.mapping.routing, ft))
          << what;
      ++repaired;
    } catch (const MappingError&) {
      ++infeasible;  // clean refusal is an acceptable outcome
    }
  }
  EXPECT_EQ(repaired + infeasible, kCases);
  // The suite must actually exercise the repair path, not refuse
  // everything.
  EXPECT_GT(repaired, kCases / 2);
}

}  // namespace
}  // namespace oregami
