#include <gtest/gtest.h>

#include "oregami/arch/routes.hpp"
#include "oregami/metrics/metrics.hpp"

namespace oregami {
namespace {

/// 4 tasks on a 4-ring: ring comm phase, one exec phase, placed
/// directly (task i on processor i).
struct Fixture {
  TaskGraph graph;
  Topology topo = Topology::ring(4);
  std::vector<int> procs{0, 1, 2, 3};
  std::vector<PhaseRouting> routing;

  Fixture() {
    for (int i = 0; i < 4; ++i) {
      graph.add_task("t" + std::to_string(i));
    }
    const int ring = graph.add_comm_phase("ring");
    for (int i = 0; i < 4; ++i) {
      graph.add_comm_edge(ring, i, (i + 1) % 4, 3);
    }
    graph.add_exec_phase("work", {10, 20, 30, 40});
    graph.set_phase_expr(PhaseTree::repeat(
        PhaseTree::seq({PhaseTree::exec(0), PhaseTree::comm(0)}), 2));
    PhaseRouting pr;
    for (int i = 0; i < 4; ++i) {
      pr.route_of_edge.push_back(
          greedy_shortest_route(topo, i, (i + 1) % 4));
    }
    routing.push_back(std::move(pr));
  }
};

TEST(CompletionModel, ExecPhaseIsMaxOverProcessors) {
  const Fixture f;
  EXPECT_EQ(exec_phase_time(f.graph, 0, f.procs, 4), 40);
  // Two tasks stacked on one processor add up.
  const std::vector<int> stacked{0, 1, 2, 2};
  EXPECT_EQ(exec_phase_time(f.graph, 0, stacked, 4), 30 + 40);
}

TEST(CompletionModel, CommPhaseCombinesVolumeAndLatency) {
  const Fixture f;
  // Each ring link carries exactly one message of volume 3; all routes
  // are 1 hop: time = 3 * per_unit + 1 * hop_latency.
  CostModel model;
  model.hop_latency = 5;
  model.per_unit_cost = 2;
  EXPECT_EQ(comm_phase_time(f.graph, 0, f.routing[0], f.topo, model),
            3 * 2 + 1 * 5);
}

TEST(CompletionModel, PhaseTreeArithmetic) {
  const Fixture f;
  const CostModel model;  // unit costs
  // exec = 40, comm = 3 + 1 = 4, repeated twice: (40 + 4) * 2.
  EXPECT_EQ(completion_time(f.graph, f.procs, f.routing, f.topo, model),
            88);
}

TEST(CompletionModel, ParallelTakesMax) {
  Fixture f;
  f.graph.set_phase_expr(
      PhaseTree::par({PhaseTree::exec(0), PhaseTree::comm(0)}));
  EXPECT_EQ(completion_time(f.graph, f.procs, f.routing, f.topo, {}), 40);
}

TEST(CompletionModel, IdleFallbackSumsEverythingOnce) {
  Fixture f;
  f.graph.set_phase_expr(PhaseTree::idle());
  EXPECT_EQ(completion_time(f.graph, f.procs, f.routing, f.topo, {}),
            40 + 4);
}

TEST(Metrics, LoadSide) {
  const Fixture f;
  const auto m =
      compute_metrics(f.graph, f.procs, f.routing, f.topo, {});
  EXPECT_EQ(m.load.tasks_per_proc, (std::vector<int>{1, 1, 1, 1}));
  EXPECT_EQ(m.load.max_tasks, 1);
  EXPECT_DOUBLE_EQ(m.load.avg_tasks, 1.0);
  // exec multiplicity 2: loads 20, 40, 60, 80.
  EXPECT_EQ(m.load.exec_per_proc,
            (std::vector<std::int64_t>{20, 40, 60, 80}));
  EXPECT_EQ(m.load.max_exec, 80);
  EXPECT_DOUBLE_EQ(m.load.exec_imbalance, 80.0 * 4 / 200.0);
}

TEST(Metrics, LinkSide) {
  const Fixture f;
  const auto m =
      compute_metrics(f.graph, f.procs, f.routing, f.topo, {});
  ASSERT_EQ(m.phases.size(), 1u);
  const auto& pm = m.phases[0];
  EXPECT_EQ(pm.phase_name, "ring");
  EXPECT_EQ(pm.max_contention, 1);
  EXPECT_DOUBLE_EQ(pm.avg_contention, 1.0);
  EXPECT_EQ(pm.max_dilation, 1);
  EXPECT_DOUBLE_EQ(pm.avg_dilation, 1.0);
  for (const auto v : pm.volume_per_link) {
    EXPECT_EQ(v, 3);
  }
}

TEST(Metrics, TotalIpcWeightedByMultiplicity) {
  const Fixture f;
  const auto m =
      compute_metrics(f.graph, f.procs, f.routing, f.topo, {});
  // 4 edges x volume 3 x multiplicity 2.
  EXPECT_EQ(m.total_ipc, 24);
}

TEST(Metrics, CoLocatedEdgesDoNotCountAsIpc) {
  Fixture f;
  // Move task 1 onto processor 0; re-route accordingly.
  f.procs = {0, 0, 2, 3};
  f.routing[0].route_of_edge[0] = Route{{0}, {}};  // 0 -> 1 internal
  f.routing[0].route_of_edge[1] =
      greedy_shortest_route(f.topo, 0, 2);  // 1 -> 2 now 0 -> 2
  const auto m =
      compute_metrics(f.graph, f.procs, f.routing, f.topo, {});
  // Edge 0->1 internalised: IPC = (4 - 1) edges x 3 x 2.
  EXPECT_EQ(m.total_ipc, 18);
  EXPECT_EQ(m.max_dilation, 2);
}

TEST(Metrics, MappingOverloadAgreesWithVectors) {
  const Fixture f;
  Mapping mapping;
  mapping.contraction = Contraction::identity(4);
  mapping.embedding.proc_of_cluster = f.procs;
  mapping.routing = f.routing;
  const auto a = compute_metrics(f.graph, mapping, f.topo, {});
  const auto b =
      compute_metrics(f.graph, f.procs, f.routing, f.topo, {});
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.total_ipc, b.total_ipc);
}

}  // namespace
}  // namespace oregami
