#include <gtest/gtest.h>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/larcs/render.hpp"

namespace oregami::larcs {
namespace {

/// Structural equality through compilation: both programs expand to the
/// same task graph under the same bindings.
void expect_same_expansion(const Program& a, const Program& b,
                           const std::map<std::string, long>& bindings) {
  const auto ca = compile(a, bindings);
  const auto cb = compile(b, bindings);
  ASSERT_EQ(ca.graph.num_tasks(), cb.graph.num_tasks());
  ASSERT_EQ(ca.graph.comm_phases().size(), cb.graph.comm_phases().size());
  for (std::size_t k = 0; k < ca.graph.comm_phases().size(); ++k) {
    const auto& pa = ca.graph.comm_phases()[k];
    const auto& pb = cb.graph.comm_phases()[k];
    EXPECT_EQ(pa.name, pb.name);
    ASSERT_EQ(pa.edges.size(), pb.edges.size());
    for (std::size_t i = 0; i < pa.edges.size(); ++i) {
      EXPECT_EQ(pa.edges[i].src, pb.edges[i].src);
      EXPECT_EQ(pa.edges[i].dst, pb.edges[i].dst);
      EXPECT_EQ(pa.edges[i].volume, pb.edges[i].volume);
    }
  }
  ASSERT_EQ(ca.graph.exec_phases().size(), cb.graph.exec_phases().size());
  for (std::size_t k = 0; k < ca.graph.exec_phases().size(); ++k) {
    EXPECT_EQ(ca.graph.exec_phases()[k].cost,
              cb.graph.exec_phases()[k].cost);
  }
  EXPECT_EQ(ca.graph.comm_phase_multiplicity(),
            cb.graph.comm_phase_multiplicity());
  EXPECT_EQ(ca.graph.declared_node_symmetric(),
            cb.graph.declared_node_symmetric());
}

TEST(Render, WholeCatalogRoundTrips) {
  for (const auto& entry : programs::catalog()) {
    const auto original = parse_program(entry.source);
    const auto rendered = render_program(original);
    Program reparsed;
    ASSERT_NO_THROW(reparsed = parse_program(rendered))
        << entry.name << "\n" << rendered;
    std::map<std::string, long> bindings(entry.example_bindings.begin(),
                                         entry.example_bindings.end());
    expect_same_expansion(original, reparsed, bindings);
  }
}

TEST(Render, IsAFixpoint) {
  for (const auto& entry : programs::catalog()) {
    const auto once = render_program(parse_program(entry.source));
    const auto twice = render_program(parse_program(once));
    EXPECT_EQ(once, twice) << entry.name;
  }
}

TEST(Render, PreservesEveryDeclarationKind) {
  const auto program = parse_program(
      "algorithm full(n, s);\n"
      "import m, w;\n"
      "const half = n / 2;\n"
      "family ring;\n"
      "nodetype a[i: 0 .. n-1] nodesymmetric;\n"
      "nodetype b[i: 0 .. half-1, j: 0 .. 1];\n"
      "comphase p {\n"
      "  a(i) -> a((i + 1) mod n) volume m;\n"
      "  b(i, j) -> b(i, 1 - j) forall k: 0 .. 1 when j == 0 volume w;\n"
      "}\n"
      "exphase e cost i * 2;\n"
      "phases (p; e)^s || eps;\n");
  const auto rendered = render_program(program);
  EXPECT_NE(rendered.find("import m, w;"), std::string::npos);
  EXPECT_NE(rendered.find("const half"), std::string::npos);
  EXPECT_NE(rendered.find("family ring;"), std::string::npos);
  EXPECT_NE(rendered.find("nodesymmetric"), std::string::npos);
  EXPECT_NE(rendered.find("forall k"), std::string::npos);
  EXPECT_NE(rendered.find("when"), std::string::npos);
  EXPECT_NE(rendered.find("volume"), std::string::npos);
  EXPECT_NE(rendered.find("phases"), std::string::npos);
  EXPECT_NE(rendered.find("eps"), std::string::npos);
  // And it reparses.
  EXPECT_NO_THROW((void)parse_program(rendered));
}

TEST(Render, GeneratedProgramsRoundTrip) {
  for (const std::string source :
       {programs::fft(4), programs::broadcast_vote(16)}) {
    const auto original = parse_program(source);
    const auto reparsed = parse_program(render_program(original));
    std::map<std::string, long> bindings{{"n", 16}};
    expect_same_expansion(original, reparsed, bindings);
  }
}

}  // namespace
}  // namespace oregami::larcs
