#include <gtest/gtest.h>

#include "oregami/mapper/mwm_contract.hpp"
#include "oregami/mapper/paper_examples.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

Graph random_task_graph(int n, double density, std::uint64_t seed,
                        std::int64_t max_weight = 20) {
  SplitMix64 rng(seed);
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_double() < density) {
        g.add_edge(u, v, rng.next_in(1, max_weight));
      }
    }
  }
  return g;
}

TEST(MwmContract, Fig5TwelveTasksThreeProcessors) {
  // Paper §4.3 / Fig 5: 12 tasks onto 3 processors with B = 4; greedy
  // merges pairs (skipping the weight-15 edge), matching finishes;
  // total IPC = 6, optimal for this instance.
  const Graph g = paper::fig5_task_graph();
  const auto result = mwm_contract(g, 3, 4);
  EXPECT_EQ(result.load_bound, 4);
  EXPECT_EQ(result.contraction.num_clusters, 3);
  EXPECT_EQ(result.contraction.max_cluster_size(), 4);
  EXPECT_EQ(result.external_weight, paper::kFig5OptimalIpc);
  EXPECT_EQ(result.internalized_weight, g.total_weight() - 6);
  // Matches the exhaustive optimum.
  EXPECT_EQ(brute_force_min_external_weight(g, 3, 4), 6);
  // The contiguous blocks are the unique optimum here.
  const auto& c = result.contraction.cluster_of_task;
  EXPECT_EQ(c[0], c[1]);
  EXPECT_EQ(c[1], c[2]);
  EXPECT_EQ(c[2], c[3]);
  EXPECT_EQ(c[4], c[7]);
  EXPECT_EQ(c[8], c[11]);
  EXPECT_NE(c[0], c[4]);
  EXPECT_NE(c[4], c[8]);
}

TEST(MwmContract, DefaultLoadBoundMatchesFig5) {
  // B defaults to 2 * ceil(n / 2P) = 4 for 12 tasks on 3 processors.
  const auto result = mwm_contract(paper::fig5_task_graph(), 3);
  EXPECT_EQ(result.load_bound, 4);
  EXPECT_EQ(result.external_weight, paper::kFig5OptimalIpc);
}

TEST(MwmContract, MatchingPathIsOptimalForPairing) {
  // n <= 2P: pure maximum-weight-matching contraction; certify against
  // brute force with B = 2 (pair semantics).
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SplitMix64 rng(seed);
    const int procs = static_cast<int>(2 + rng.next_below(3));  // 2..4
    const int n = static_cast<int>(
        procs + 1 + rng.next_below(static_cast<std::uint64_t>(procs)));
    const Graph g = random_task_graph(n, 0.5, seed * 31 + 7);
    const auto result = mwm_contract(g, procs, 2);
    EXPECT_TRUE(result.optimal);
    EXPECT_LE(result.contraction.num_clusters, procs);
    EXPECT_LE(result.contraction.max_cluster_size(), 2);
    EXPECT_EQ(result.external_weight,
              brute_force_min_external_weight(g, procs, 2))
        << "seed " << seed << " n=" << n << " P=" << procs;
  }
}

class MwmContractProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MwmContractProperty, RespectsAllConstraints) {
  SplitMix64 rng(GetParam());
  const int n = static_cast<int>(8 + rng.next_below(40));
  const int procs = static_cast<int>(2 + rng.next_below(6));
  const Graph g = random_task_graph(n, 0.3, GetParam() * 17 + 3);
  const auto result = mwm_contract(g, procs);
  EXPECT_LE(result.contraction.num_clusters, procs);
  EXPECT_LE(result.contraction.max_cluster_size(), result.load_bound);
  EXPECT_NO_THROW(result.contraction.validate(n));
  EXPECT_EQ(result.internalized_weight + result.external_weight,
            g.total_weight());
  EXPECT_GE(result.internalized_weight, 0);
}

TEST_P(MwmContractProperty, NeverWorseThanNaiveBlocks) {
  SplitMix64 rng(GetParam() + 500);
  const int n = static_cast<int>(10 + rng.next_below(30));
  const int procs = static_cast<int>(2 + rng.next_below(4));
  const Graph g = random_task_graph(n, 0.4, GetParam() * 13 + 11);
  const auto result = mwm_contract(g, procs);

  // Round-robin baseline with the same cluster count.
  std::vector<int> rr(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    rr[static_cast<std::size_t>(t)] = t % procs;
  }
  std::int64_t rr_external = 0;
  for (const auto& e : g.edges()) {
    if (rr[static_cast<std::size_t>(e.u)] !=
        rr[static_cast<std::size_t>(e.v)]) {
      rr_external += e.weight;
    }
  }
  EXPECT_LE(result.external_weight, rr_external);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwmContractProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(MwmContract, DisconnectedGraphStillContracts) {
  Graph g(10);  // no edges at all
  const auto result = mwm_contract(g, 3);
  EXPECT_LE(result.contraction.num_clusters, 3);
  EXPECT_EQ(result.external_weight, 0);
}

TEST(MwmContract, SingleProcessorInternalisesEverything) {
  const Graph g = paper::fig5_task_graph();
  const auto result = mwm_contract(g, 1, 12);
  EXPECT_EQ(result.contraction.num_clusters, 1);
  EXPECT_EQ(result.external_weight, 0);
  EXPECT_EQ(result.internalized_weight, g.total_weight());
}

TEST(MwmContract, InfeasibleBoundThrows) {
  const Graph g = random_task_graph(10, 0.5, 1);
  EXPECT_THROW((void)mwm_contract(g, 3, 2), MappingError);  // 3*2 < 10
  EXPECT_THROW((void)mwm_contract(g, 0), MappingError);
  EXPECT_THROW((void)mwm_contract(Graph(0), 2), MappingError);
}

TEST(MwmContract, TasksFewerThanProcessors) {
  const Graph g = random_task_graph(4, 0.8, 9);
  const auto result = mwm_contract(g, 8, 1);  // B = 1: no merging at all
  EXPECT_EQ(result.contraction.num_clusters, 4);
  EXPECT_EQ(result.external_weight, g.total_weight());
}

TEST(MwmContract, GreedyDescriptionMentionsPhases) {
  const Graph g = random_task_graph(30, 0.3, 2);
  const auto result = mwm_contract(g, 3);
  EXPECT_FALSE(result.optimal);
  EXPECT_NE(result.description.find("greedy"), std::string::npos);
  EXPECT_NE(result.description.find("matching"), std::string::npos);
}

}  // namespace
}  // namespace oregami
