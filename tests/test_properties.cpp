// Property-based validity harness: instead of hand-picked examples,
// generate hundreds of random (task graph, topology) instances from a
// seeded SplitMix64 and assert the pipeline invariants the MAPPER
// stages promise (SpiNNTools-style machine-checkable validity at every
// stage):
//   * every task lands on a valid processor, the contraction covers
//     the tasks, the embedding is injective;
//   * MWM-Contract respects its load bound B and the cluster budget P;
//   * every routed path is a connected walk in the host topology whose
//     endpoints match the communicating tasks' processors;
//   * MetricsSession::move_task followed by undo returns to the exact
//     starting metrics (the edit loop's delta accounting has no leaks).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "oregami/arch/routes.hpp"
#include "oregami/arch/topology_spec.hpp"
#include "oregami/core/csr_graph.hpp"
#include "oregami/core/synthetic.hpp"
#include "oregami/mapper/anneal.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/list_schedule.hpp"
#include "oregami/mapper/mm_route.hpp"
#include "oregami/mapper/mwm_contract.hpp"
#include "oregami/mapper/refine.hpp"
#include "oregami/metrics/incremental.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/metrics/session.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

constexpr int kCases = 220;
constexpr std::uint64_t kBaseSeed = 0x0E6A4D1ULL;

/// Random topology drawn via the textual spec layer (so the parser is
/// exercised too). Sizes stay small enough that kCases full pipeline
/// runs finish quickly in ctest.
Topology random_topology(SplitMix64& rng) {
  const auto pick = rng.next_below(9);
  switch (pick) {
    case 0:
      return parse_topology_spec(
          "ring:" + std::to_string(rng.next_in(3, 10)));
    case 1:
      return parse_topology_spec(
          "chain:" + std::to_string(rng.next_in(2, 10)));
    case 2:
      return parse_topology_spec("mesh:" + std::to_string(rng.next_in(2, 4)) +
                                 "x" + std::to_string(rng.next_in(2, 4)));
    case 3:
      return parse_topology_spec("torus:" + std::to_string(rng.next_in(3, 4)) +
                                 "x" + std::to_string(rng.next_in(3, 4)));
    case 4:
      return parse_topology_spec(
          "hypercube:" + std::to_string(rng.next_in(1, 4)));
    case 5:
      return parse_topology_spec(
          "cbt:" + std::to_string(rng.next_in(2, 4)));
    case 6:
      return parse_topology_spec(
          "star:" + std::to_string(rng.next_in(3, 10)));
    case 7:
      return parse_topology_spec(
          "complete:" + std::to_string(rng.next_in(2, 8)));
    default:
      return parse_topology_spec("mesh3d:2x2x" +
                                 std::to_string(rng.next_in(2, 3)));
  }
}

/// Random multi-phase task graph: 1-24 tasks, 1-3 comm phases with
/// random directed edges and volumes, 0-2 exec phases with random
/// costs, and (half the time) a phase expression sequencing every
/// phase with a random repetition count.
TaskGraph random_task_graph(SplitMix64& rng) {
  TaskGraph g;
  const int n = static_cast<int>(rng.next_in(1, 24));
  for (int i = 0; i < n; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int num_comm = static_cast<int>(rng.next_in(1, 3));
  std::vector<PhaseTree> leaves;
  for (int k = 0; k < num_comm; ++k) {
    const int phase = g.add_comm_phase("comm" + std::to_string(k));
    const int edges =
        n < 2 ? 0 : static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(2 * n))) ;
    for (int e = 0; e < edges; ++e) {
      const int u = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      int v = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      if (u == v) {
        v = (v + 1) % n;
      }
      if (u != v) {
        g.add_comm_edge(phase, u, v, rng.next_in(1, 9));
      }
    }
    leaves.push_back(PhaseTree::comm(phase));
  }
  const int num_exec = static_cast<int>(rng.next_in(0, 2));
  for (int k = 0; k < num_exec; ++k) {
    std::vector<std::int64_t> cost(static_cast<std::size_t>(n));
    for (auto& c : cost) {
      c = rng.next_in(0, 20);
    }
    const int phase = g.add_exec_phase("exec" + std::to_string(k),
                                       std::move(cost));
    leaves.push_back(PhaseTree::exec(phase));
  }
  if (rng.next_below(2) == 0) {
    g.set_phase_expr(PhaseTree::repeat(PhaseTree::seq(std::move(leaves)),
                                       rng.next_in(1, 4)));
  }
  g.validate();
  return g;
}

/// Walk-level route check, independent of is_valid_route: consecutive
/// nodes adjacent, each link joins its node pair, endpoints match.
void assert_connected_walk(const Topology& topo, const Route& route,
                           int src, int dst) {
  ASSERT_FALSE(route.nodes.empty());
  ASSERT_EQ(route.links.size() + 1, route.nodes.size());
  EXPECT_EQ(route.nodes.front(), src);
  EXPECT_EQ(route.nodes.back(), dst);
  for (std::size_t h = 0; h < route.links.size(); ++h) {
    const int a = route.nodes[h];
    const int b = route.nodes[h + 1];
    const auto link = topo.link_between(a, b);
    ASSERT_TRUE(link.has_value())
        << "route hops between non-adjacent processors " << a << ", " << b;
    EXPECT_EQ(route.links[h], *link);
  }
  EXPECT_TRUE(is_valid_route(topo, route, src, dst));
}

void assert_metrics_equal(const MappingMetrics& a, const MappingMetrics& b) {
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.total_ipc, b.total_ipc);
  EXPECT_EQ(a.max_dilation, b.max_dilation);
  EXPECT_DOUBLE_EQ(a.avg_dilation, b.avg_dilation);
  EXPECT_EQ(a.load.tasks_per_proc, b.load.tasks_per_proc);
  EXPECT_EQ(a.load.exec_per_proc, b.load.exec_per_proc);
  EXPECT_EQ(a.load.max_tasks, b.load.max_tasks);
  EXPECT_EQ(a.load.max_exec, b.load.max_exec);
  EXPECT_DOUBLE_EQ(a.load.exec_imbalance, b.load.exec_imbalance);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t k = 0; k < a.phases.size(); ++k) {
    EXPECT_EQ(a.phases[k].contention_per_link,
              b.phases[k].contention_per_link);
    EXPECT_EQ(a.phases[k].volume_per_link, b.phases[k].volume_per_link);
    EXPECT_EQ(a.phases[k].max_contention, b.phases[k].max_contention);
    EXPECT_EQ(a.phases[k].max_dilation, b.phases[k].max_dilation);
    EXPECT_EQ(a.phases[k].phase_time, b.phases[k].phase_time);
  }
}

/// One generated case, all invariants. Split into a helper so the
/// kCases loop reports the failing case seed.
void check_case(std::uint64_t case_seed) {
  SCOPED_TRACE("case seed " + std::to_string(case_seed));
  SplitMix64 rng(case_seed);
  const Topology topo = random_topology(rng);
  const TaskGraph graph = random_task_graph(rng);

  MapperOptions options;
  options.refine = rng.next_below(2) == 0;
  const MapperReport report = map_computation(graph, topo, options);

  // Invariant 1: placement validity. validate_mapping throws on any
  // violation; the explicit checks below keep the properties readable
  // and guard validate_mapping itself against regressions.
  ASSERT_NO_THROW(validate_mapping(report.mapping, graph, topo));
  const auto procs = report.mapping.proc_of_task();
  ASSERT_EQ(procs.size(), static_cast<std::size_t>(graph.num_tasks()));
  for (const int p : procs) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, topo.num_procs());
  }
  EXPECT_LE(report.mapping.contraction.num_clusters, topo.num_procs());
  report.mapping.contraction.validate(graph.num_tasks());
  report.mapping.embedding.validate(topo.num_procs());

  // Invariant 2: MWM-Contract honours its load bound.
  {
    const Graph aggregate = graph.aggregate_graph();
    const auto contract = mwm_contract(aggregate, topo.num_procs());
    EXPECT_LE(contract.contraction.num_clusters, topo.num_procs());
    EXPECT_LE(contract.contraction.max_cluster_size(), contract.load_bound);
    EXPECT_GE(contract.load_bound * topo.num_procs(), graph.num_tasks());
  }

  // Invariant 3: every route is a connected walk with matching
  // endpoints.
  ASSERT_EQ(report.mapping.routing.size(), graph.comm_phases().size());
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    const auto& phase = graph.comm_phases()[k];
    const auto& routing = report.mapping.routing[k];
    ASSERT_EQ(routing.route_of_edge.size(), phase.edges.size());
    for (std::size_t i = 0; i < phase.edges.size(); ++i) {
      const auto& e = phase.edges[i];
      assert_connected_walk(
          topo, routing.route_of_edge[i],
          procs[static_cast<std::size_t>(e.src)],
          procs[static_cast<std::size_t>(e.dst)]);
    }
  }

  // Invariant 4: session move + undo is an exact round trip.
  MetricsSession session(graph, topo, report.mapping);
  const auto procs_before = session.proc_of_task();
  const auto metrics_before = session.metrics();
  const int task = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(graph.num_tasks())));
  const int target = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(topo.num_procs())));
  const auto edit = session.move_task(task, target);
  EXPECT_EQ(edit.completion_delta(),
            edit.after.completion - edit.before.completion);
  EXPECT_EQ(session.proc_of_task()[static_cast<std::size_t>(task)], target);
  ASSERT_TRUE(session.undo());
  EXPECT_EQ(session.proc_of_task(), procs_before);
  assert_metrics_equal(session.metrics(), metrics_before);
}

TEST(Properties, GeneratedPipelineInvariants) {
  SplitMix64 seeder(kBaseSeed);
  for (int i = 0; i < kCases; ++i) {
    check_case(seeder.next_u64());
    if (HasFatalFailure()) {
      return;
    }
  }
}

/// IncrementalCompletion invariants on a generated case: the cached
/// completion matches completion_time(), every delta_move probe equals
/// the realised apply_move delta (which in turn matches a from-scratch
/// recompute), and unwinding the whole move history restores the
/// placement, the routing, and the completion exactly.
void check_incremental_case(std::uint64_t case_seed) {
  SCOPED_TRACE("case seed " + std::to_string(case_seed));
  SplitMix64 rng(case_seed);
  const Topology topo = random_topology(rng);
  const TaskGraph graph = random_task_graph(rng);
  const MapperReport report = map_computation(graph, topo, {});

  IncrementalCompletion inc(graph, topo, report.mapping);
  const auto procs_before = inc.proc_of_task();
  const auto routing_before = inc.routing();
  const std::int64_t completion_before = inc.completion();
  ASSERT_EQ(completion_before,
            completion_time(graph, procs_before, routing_before, topo));

  const int kMoves = 6;
  for (int m = 0; m < kMoves; ++m) {
    const int task = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(graph.num_tasks())));
    const int target = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(topo.num_procs())));
    const std::int64_t probed = inc.delta_move(task, target);
    const std::int64_t before = inc.completion();
    const std::int64_t realised = inc.apply_move(task, target);
    ASSERT_EQ(realised, probed) << "task " << task << " -> " << target;
    ASSERT_EQ(inc.completion(), before + realised);
    // Ground truth: full recompute over the evaluator's own state.
    ASSERT_EQ(inc.completion(),
              completion_time(graph, inc.proc_of_task(), inc.routing(),
                              topo))
        << "task " << task << " -> " << target;
  }
  while (inc.undo()) {
  }
  EXPECT_EQ(inc.completion(), completion_before);
  EXPECT_EQ(inc.proc_of_task(), procs_before);
  ASSERT_EQ(inc.routing().size(), routing_before.size());
  for (std::size_t k = 0; k < routing_before.size(); ++k) {
    const auto& a = inc.routing()[k].route_of_edge;
    const auto& b = routing_before[k].route_of_edge;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].nodes, b[i].nodes);
      EXPECT_EQ(a[i].links, b[i].links);
    }
  }
}

TEST(Properties, IncrementalCompletionMatchesFullRecompute) {
  SplitMix64 seeder(kBaseSeed ^ 0xD15C0ULL);
  for (int i = 0; i < kCases; ++i) {
    check_incremental_case(seeder.next_u64());
    if (HasFatalFailure()) {
      return;
    }
  }
}

/// refine_placement never worsens the completion model, keeps every
/// route valid, and is deterministic.
void check_refine_placement_case(std::uint64_t case_seed) {
  SCOPED_TRACE("case seed " + std::to_string(case_seed));
  SplitMix64 rng(case_seed);
  const Topology topo = random_topology(rng);
  const TaskGraph graph = random_task_graph(rng);
  const MapperReport report = map_computation(graph, topo, {});
  const auto procs = report.mapping.proc_of_task();

  const PlacementRefineResult refined = refine_placement(
      graph, topo, procs, report.mapping.routing);
  EXPECT_LE(refined.completion_after, refined.completion_before);
  EXPECT_EQ(refined.completion_before,
            completion_time(graph, procs, report.mapping.routing, topo));
  EXPECT_EQ(refined.completion_after,
            completion_time(graph, refined.proc_of_task, refined.routing,
                            topo));
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    const auto& phase = graph.comm_phases()[k];
    for (std::size_t i = 0; i < phase.edges.size(); ++i) {
      const auto& e = phase.edges[i];
      EXPECT_TRUE(is_valid_route(
          topo, refined.routing[k].route_of_edge[i],
          refined.proc_of_task[static_cast<std::size_t>(e.src)],
          refined.proc_of_task[static_cast<std::size_t>(e.dst)]));
    }
  }

  const PlacementRefineResult again = refine_placement(
      graph, topo, procs, report.mapping.routing);
  EXPECT_EQ(again.proc_of_task, refined.proc_of_task);
  EXPECT_EQ(again.completion_after, refined.completion_after);
  EXPECT_EQ(again.moves, refined.moves);
}

TEST(Properties, RefinePlacementNeverWorsensAndIsDeterministic) {
  SplitMix64 seeder(kBaseSeed ^ 0xEF12EULL);
  for (int i = 0; i < 80; ++i) {
    check_refine_placement_case(seeder.next_u64());
    if (HasFatalFailure()) {
      return;
    }
  }
}

/// Differential harness over the candidate families: for each generated
/// (graph, topology) instance run every placement family -- the MAPPER
/// pipeline, placement refinement, simulated annealing, and the HEFT
/// list scheduler -- and cross-check each one's own score against an
/// independent full completion_time() re-score. Also asserts placement
/// validity per family, the MWM load bound, and the SA apply/undo
/// round-trip invariant (no improvement => bit-identical to the init).
void check_candidate_families_case(std::uint64_t case_seed) {
  SCOPED_TRACE("case seed " + std::to_string(case_seed));
  SplitMix64 rng(case_seed);
  const Topology topo = random_topology(rng);
  const TaskGraph graph = random_task_graph(rng);

  // Family 1: the MAPPER pipeline (contract/embed/route).
  const MapperReport base = map_computation(graph, topo, {});
  ASSERT_NO_THROW(validate_mapping(base.mapping, graph, topo));
  const auto base_procs = base.mapping.proc_of_task();
  const std::int64_t base_completion =
      completion_time(graph, base_procs, base.mapping.routing, topo);

  // MWM load bound holds for the aggregate contraction.
  {
    const Graph aggregate = graph.aggregate_graph();
    const auto contract = mwm_contract(aggregate, topo.num_procs());
    EXPECT_LE(contract.contraction.max_cluster_size(), contract.load_bound);
  }

  // Family 2: placement refinement. Its incremental bookkeeping must
  // agree with the from-scratch model on the final state.
  const PlacementRefineResult refined =
      refine_placement(graph, topo, base_procs, base.mapping.routing);
  EXPECT_LE(refined.completion_after, base_completion);
  EXPECT_EQ(refined.completion_after,
            completion_time(graph, refined.proc_of_task, refined.routing,
                            topo));

  // Family 3: simulated annealing from the base mapping.
  AnnealOptions aopts;
  aopts.iterations = 200;
  aopts.seed = rng.next_u64();
  const AnnealResult annealed = anneal_placement(
      graph, topo, base_procs, base.mapping.routing, {}, aopts);
  EXPECT_EQ(annealed.completion_before, base_completion);
  EXPECT_LE(annealed.completion_after, annealed.completion_before);
  // Differential: the incremental evaluator's final score equals a full
  // completion-model re-score of the returned state.
  ASSERT_EQ(annealed.completion_after,
            completion_time(graph, annealed.proc_of_task, annealed.routing,
                            topo));
  for (const int p : annealed.proc_of_task) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, topo.num_procs());
  }
  // Every re-routed edge is still a connected walk.
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    const auto& phase = graph.comm_phases()[k];
    for (std::size_t i = 0; i < phase.edges.size(); ++i) {
      const auto& e = phase.edges[i];
      assert_connected_walk(
          topo, annealed.routing[k].route_of_edge[i],
          annealed.proc_of_task[static_cast<std::size_t>(e.src)],
          annealed.proc_of_task[static_cast<std::size_t>(e.dst)]);
    }
  }
  // Acceptance-with-undo: when no proposal strictly improved, the whole
  // apply/undo chain must round-trip to the exact starting state.
  if (annealed.completion_after == annealed.completion_before) {
    EXPECT_EQ(annealed.proc_of_task, base_procs);
  }

  // Family 4: HEFT list schedule, routed with MM-Route and re-scored.
  const ListScheduleResult heft = list_schedule(graph, topo);
  ASSERT_EQ(heft.proc_of_task.size(),
            static_cast<std::size_t>(graph.num_tasks()));
  for (const int p : heft.proc_of_task) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, topo.num_procs());
  }
  const auto heft_routing = mm_route(graph, heft.proc_of_task, topo);
  const std::int64_t heft_completion =
      completion_time(graph, heft.proc_of_task, heft_routing, topo);
  EXPECT_GE(heft_completion, 0);
  // extract_objectives agrees with the standalone model on every family.
  const PlacementObjectives obj = extract_objectives(
      graph, heft.proc_of_task, heft_routing, topo);
  EXPECT_EQ(obj.completion, heft_completion);
  EXPECT_GE(obj.external_ipc, 0);
  EXPECT_GE(obj.max_load, 0);
}

TEST(Properties, DifferentialCandidateFamilies) {
  SplitMix64 seeder(kBaseSeed ^ 0xCAFD1FFULL);
  for (int i = 0; i < 200; ++i) {
    check_candidate_families_case(seeder.next_u64());
    if (HasFatalFailure()) {
      return;
    }
  }
}

/// Applies a processor relabeling (an automorphism of the topology) to
/// a placement + routing and returns the relabelled pair. Links are
/// rebuilt from the relabelled node walk; the automorphism guarantees
/// adjacency is preserved.
std::pair<std::vector<int>, std::vector<PhaseRouting>> relabel(
    const Topology& topo, const std::vector<int>& proc_of_task,
    const std::vector<PhaseRouting>& routing,
    const std::vector<int>& sigma) {
  std::vector<int> procs(proc_of_task.size());
  for (std::size_t t = 0; t < proc_of_task.size(); ++t) {
    procs[t] = sigma[static_cast<std::size_t>(proc_of_task[t])];
  }
  std::vector<PhaseRouting> routed(routing.size());
  for (std::size_t k = 0; k < routing.size(); ++k) {
    routed[k].route_of_edge.resize(routing[k].route_of_edge.size());
    for (std::size_t i = 0; i < routing[k].route_of_edge.size(); ++i) {
      const Route& r = routing[k].route_of_edge[i];
      Route& out = routed[k].route_of_edge[i];
      out.nodes.reserve(r.nodes.size());
      for (const int node : r.nodes) {
        out.nodes.push_back(sigma[static_cast<std::size_t>(node)]);
      }
      for (std::size_t h = 0; h + 1 < out.nodes.size(); ++h) {
        const auto link = topo.link_between(out.nodes[h], out.nodes[h + 1]);
        if (!link.has_value()) {
          ADD_FAILURE() << "relabeling broke adjacency between "
                        << out.nodes[h] << " and " << out.nodes[h + 1];
          return {procs, routed};
        }
        out.links.push_back(*link);
      }
    }
  }
  return {procs, routed};
}

/// Metamorphic relation: rotating every processor label of a ring (or
/// one torus dimension) is a topology automorphism, so the completion
/// score of ANY candidate's placement must be unchanged under it.
void check_relabel_case(std::uint64_t case_seed, const Topology& topo,
                        const std::vector<int>& sigma) {
  SCOPED_TRACE("case seed " + std::to_string(case_seed));
  SplitMix64 rng(case_seed);
  const TaskGraph graph = random_task_graph(rng);

  // Candidate placements from three different families.
  const MapperReport base = map_computation(graph, topo, {});
  AnnealOptions aopts;
  aopts.iterations = 100;
  aopts.seed = rng.next_u64();
  const AnnealResult annealed =
      anneal_placement(graph, topo, base.mapping.proc_of_task(),
                       base.mapping.routing, {}, aopts);
  const ListScheduleResult heft = list_schedule(graph, topo);
  const auto heft_routing = mm_route(graph, heft.proc_of_task, topo);

  const std::vector<std::pair<std::vector<int>, std::vector<PhaseRouting>>>
      candidates = {
          {base.mapping.proc_of_task(), base.mapping.routing},
          {annealed.proc_of_task, annealed.routing},
          {heft.proc_of_task, heft_routing},
      };
  for (const auto& [procs, routing] : candidates) {
    const std::int64_t before = completion_time(graph, procs, routing, topo);
    const auto [relabelled_procs, relabelled_routing] =
        relabel(topo, procs, routing, sigma);
    const std::int64_t after = completion_time(
        graph, relabelled_procs, relabelled_routing, topo);
    EXPECT_EQ(after, before);
    // The full objective triple is invariant, not just completion.
    const PlacementObjectives oa =
        extract_objectives(graph, procs, routing, topo);
    const PlacementObjectives ob = extract_objectives(
        graph, relabelled_procs, relabelled_routing, topo);
    EXPECT_EQ(ob.completion, oa.completion);
    EXPECT_EQ(ob.external_ipc, oa.external_ipc);
    EXPECT_EQ(ob.max_load, oa.max_load);
  }
}

TEST(Properties, RingRelabelingLeavesScoresInvariant) {
  const int p = 7;
  const Topology topo = Topology::ring(p);
  std::vector<int> sigma(static_cast<std::size_t>(p));
  for (int q = 0; q < p; ++q) {
    sigma[static_cast<std::size_t>(q)] = (q + 1) % p;
  }
  SplitMix64 seeder(kBaseSeed ^ 0x51BB0ULL);
  for (int i = 0; i < 40; ++i) {
    check_relabel_case(seeder.next_u64(), topo, sigma);
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST(Properties, TorusRelabelingLeavesScoresInvariant) {
  const int rows = 3;
  const int cols = 4;
  const Topology topo = parse_topology_spec("torus:3x4");
  std::vector<int> sigma(static_cast<std::size_t>(rows * cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      sigma[static_cast<std::size_t>(r * cols + c)] =
          r * cols + (c + 1) % cols;
    }
  }
  SplitMix64 seeder(kBaseSeed ^ 0x70A05ULL);
  for (int i = 0; i < 40; ++i) {
    check_relabel_case(seeder.next_u64(), topo, sigma);
    if (HasFatalFailure()) {
      return;
    }
  }
}

/// Checks every coarsening invariant for one fine graph / seed pair,
/// walking a full V-cycle's coarsening side (halve until <= 2 or
/// stall). Reports the number of levels built via `levels_out`.
void check_coarsen_case(const TaskGraph& graph, std::uint64_t seed,
                        int* levels_out = nullptr) {
  CsrTaskGraph fine = CsrTaskGraph::from_task_graph(graph);
  int levels = 0;
  while (fine.num_vertices() > 2) {
    const int target = std::max(2, fine.num_vertices() / 2);
    const CoarsenResult step = coarsen_heavy_edge(fine, seed + levels,
                                                  target);
    const CsrTaskGraph& coarse = step.coarse;
    // Comm volume is conserved: every undirected edge either survives
    // (possibly merged) or is internalized, never dropped.
    ASSERT_EQ(coarse.total_edge_weight + step.internalized_weight,
              fine.total_edge_weight);
    // Exec cost is conserved exactly.
    ASSERT_EQ(coarse.total_vertex_weight, fine.total_vertex_weight);
    // Projection maps onto the super-tasks: surjective, and each
    // super-task is a matching pair or a singleton (1-2 fine vertices).
    ASSERT_EQ(step.coarse_of_fine.size(),
              static_cast<std::size_t>(fine.num_vertices()));
    std::vector<int> members(
        static_cast<std::size_t>(coarse.num_vertices()), 0);
    std::vector<std::int64_t> folded_weight(
        static_cast<std::size_t>(coarse.num_vertices()), 0);
    for (int v = 0; v < fine.num_vertices(); ++v) {
      const int c = step.coarse_of_fine[static_cast<std::size_t>(v)];
      ASSERT_GE(c, 0);
      ASSERT_LT(c, coarse.num_vertices());
      ++members[static_cast<std::size_t>(c)];
      folded_weight[static_cast<std::size_t>(c)] +=
          fine.vertex_weight[static_cast<std::size_t>(v)];
    }
    for (int c = 0; c < coarse.num_vertices(); ++c) {
      ASSERT_GE(members[static_cast<std::size_t>(c)], 1);
      ASSERT_LE(members[static_cast<std::size_t>(c)], 2);
      // Per-super-task cost equals the sum of its members' costs.
      ASSERT_EQ(coarse.vertex_weight[static_cast<std::size_t>(c)],
                folded_weight[static_cast<std::size_t>(c)]);
    }
    if (coarse.num_vertices() == fine.num_vertices()) {
      break;  // matching stalled (e.g. edgeless graph)
    }
    fine = coarse;
    ++levels;
  }
  if (levels_out != nullptr) {
    *levels_out = levels;
  }
}

TEST(Properties, CoarseningConservesVolumeCostAndProjection) {
  // 100 random multi-phase graphs, each coarsened down a full V-cycle.
  SplitMix64 seeder(kBaseSeed ^ 0xC0A25EULL);
  for (int i = 0; i < 100; ++i) {
    SplitMix64 rng(seeder.next_u64());
    const TaskGraph graph = random_task_graph(rng);
    check_coarsen_case(graph, rng.next_u64());
    if (HasFatalFailure()) {
      return;
    }
  }
  // Plus the structured generators the size sweep uses; all should
  // support several genuine halving levels.
  int levels = 0;
  check_coarsen_case(make_stencil2d(12, 12, 7), 7, &levels);
  EXPECT_GE(levels, 4);
  check_coarsen_case(make_stencil3d(4, 4, 4, 7), 7, &levels);
  EXPECT_GE(levels, 3);
  check_coarsen_case(make_random_geometric(128, 0.2, 7), 7, &levels);
  EXPECT_GE(levels, 1);
  check_coarsen_case(make_power_law(128, 3, 7), 7, &levels);
  EXPECT_GE(levels, 1);
}

TEST(Properties, ProjectedPlacementScoresExactlyUnderIncremental) {
  // A coarse placement projected through coarse_of_fine must be a
  // valid placement of the real graph, and the incremental evaluator
  // seeded with it must agree with the full re-score to the unit.
  SplitMix64 seeder(kBaseSeed ^ 0xF1DE11ULL);
  for (int i = 0; i < 60; ++i) {
    SplitMix64 rng(seeder.next_u64());
    const TaskGraph graph = random_task_graph(rng);
    const Topology topo = random_topology(rng);
    const int n = graph.num_tasks();
    const CsrTaskGraph csr = CsrTaskGraph::from_task_graph(graph);
    const CoarsenResult step =
        coarsen_heavy_edge(csr, rng.next_u64(), std::max(1, n / 2));
    // Random coarse placement, projected to the fine tasks.
    std::vector<int> procs(static_cast<std::size_t>(n));
    std::vector<int> coarse_proc(
        static_cast<std::size_t>(step.coarse.num_vertices()));
    for (auto& p : coarse_proc) {
      p = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(topo.num_procs())));
    }
    for (int v = 0; v < n; ++v) {
      procs[static_cast<std::size_t>(v)] = coarse_proc[static_cast<
          std::size_t>(step.coarse_of_fine[static_cast<std::size_t>(v)])];
      ASSERT_GE(procs[static_cast<std::size_t>(v)], 0);
      ASSERT_LT(procs[static_cast<std::size_t>(v)], topo.num_procs());
    }
    std::vector<PhaseRouting> routing(graph.comm_phases().size());
    for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
      for (const CommEdge& e : graph.comm_phases()[k].edges) {
        routing[k].route_of_edge.push_back(greedy_shortest_route(
            topo, procs[static_cast<std::size_t>(e.src)],
            procs[static_cast<std::size_t>(e.dst)]));
      }
    }
    const std::int64_t full = completion_time(graph, procs, routing, topo);
    const IncrementalCompletion inc(graph, topo, procs, routing);
    EXPECT_EQ(inc.completion(), full);
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST(Properties, GeneratorIsDeterministic) {
  SplitMix64 a(kBaseSeed);
  SplitMix64 b(kBaseSeed);
  const TaskGraph ga = random_task_graph(a);
  const TaskGraph gb = random_task_graph(b);
  ASSERT_EQ(ga.num_tasks(), gb.num_tasks());
  ASSERT_EQ(ga.num_comm_edges(), gb.num_comm_edges());
  ASSERT_EQ(ga.total_volume(), gb.total_volume());
}

}  // namespace
}  // namespace oregami
