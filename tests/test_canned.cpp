#include <gtest/gtest.h>

#include <set>

#include "oregami/core/recognize.hpp"
#include "oregami/graph/gray_code.hpp"
#include "oregami/mapper/canned.hpp"

namespace oregami {
namespace {

Graph ring_graph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    g.add_edge(i, (i + 1) % n);
  }
  return g;
}

Graph mesh_graph(int r, int c) {
  Graph g(r * c);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) {
      if (j + 1 < c) {
        g.add_edge(i * c + j, i * c + j + 1);
      }
      if (i + 1 < r) {
        g.add_edge(i * c + j, (i + 1) * c + j);
      }
    }
  }
  return g;
}

Graph binomial_graph(int k) {
  Graph g(1 << k);
  for (int m = 1; m < (1 << k); ++m) {
    g.add_edge(m, m & (m - 1));
  }
  return g;
}

Graph cbt_graph(int h) {
  const int n = (1 << h) - 1;
  Graph g(n);
  for (int v = 1; v < n; ++v) {
    g.add_edge(v, (v - 1) / 2);
  }
  return g;
}

/// Max hop distance between mapped endpoints of any task-graph edge.
int mapped_max_dilation(const Graph& tg, const CannedMapping& m,
                        const Topology& topo) {
  int worst = 0;
  for (const auto& e : tg.edges()) {
    const int cu = m.contraction.cluster_of_task[static_cast<std::size_t>(e.u)];
    const int cv = m.contraction.cluster_of_task[static_cast<std::size_t>(e.v)];
    const int pu = m.embedding.proc_of_cluster[static_cast<std::size_t>(cu)];
    const int pv = m.embedding.proc_of_cluster[static_cast<std::size_t>(cv)];
    worst = std::max(worst, topo.distance(pu, pv));
  }
  return worst;
}

TEST(FamilyHints, ParseKnownNames) {
  EXPECT_EQ(family_from_hint("ring"), GraphFamily::Ring);
  EXPECT_EQ(family_from_hint("grid"), GraphFamily::Mesh);
  EXPECT_EQ(family_from_hint("cube"), GraphFamily::Hypercube);
  EXPECT_EQ(family_from_hint("binomial_tree"), GraphFamily::BinomialTree);
  EXPECT_EQ(family_from_hint("cbt"), GraphFamily::CompleteBinaryTree);
  EXPECT_EQ(family_from_hint("whatever"), GraphFamily::Unknown);
}

TEST(DetectSpecific, RoutesToRightDetector) {
  const auto g = ring_graph(4);  // also Q2
  const auto as_ring = detect_specific_family(g, GraphFamily::Ring);
  ASSERT_TRUE(as_ring.has_value());
  EXPECT_EQ(as_ring->family, GraphFamily::Ring);
  const auto as_cube = detect_specific_family(g, GraphFamily::Hypercube);
  ASSERT_TRUE(as_cube.has_value());
  EXPECT_EQ(as_cube->family, GraphFamily::Hypercube);
  // C4 is also the 2x2 mesh; a 6-ring is not a mesh of any shape.
  EXPECT_TRUE(detect_specific_family(g, GraphFamily::Mesh).has_value());
  EXPECT_FALSE(
      detect_specific_family(ring_graph(6), GraphFamily::Mesh).has_value());
}

TEST(CannedRing, OntoHypercubeViaGrayCodeDilationOne) {
  const auto g = ring_graph(16);
  const auto fam = detect_ring(g);
  ASSERT_TRUE(fam.has_value());
  const auto topo = Topology::hypercube(4);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  // Equal sizes: contraction is a bijection; every ring edge including
  // the wrap maps to a cube edge (Gray cycle).
  EXPECT_EQ(m->contraction.num_clusters, 16);
  EXPECT_EQ(mapped_max_dilation(g, *m, topo), 1);
}

TEST(CannedRing, ContractsOntoSmallerCube) {
  const auto g = ring_graph(32);
  const auto fam = detect_ring(g);
  const auto topo = Topology::hypercube(3);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->contraction.num_clusters, 8);
  EXPECT_EQ(m->contraction.max_cluster_size(), 4);
  EXPECT_EQ(mapped_max_dilation(g, *m, topo), 1);
}

TEST(CannedRing, SnakeOntoMesh) {
  const auto g = ring_graph(12);
  const auto fam = detect_ring(g);
  const auto topo = Topology::mesh(3, 4);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  // Snake: all non-wrap edges dilation 1; the wrap edge may be longer.
  int over = 0;
  for (const auto& e : g.edges()) {
    const int pu = m->embedding.proc_of_cluster[static_cast<std::size_t>(
        m->contraction.cluster_of_task[static_cast<std::size_t>(e.u)])];
    const int pv = m->embedding.proc_of_cluster[static_cast<std::size_t>(
        m->contraction.cluster_of_task[static_cast<std::size_t>(e.v)])];
    if (topo.distance(pu, pv) > 1) {
      ++over;
    }
  }
  EXPECT_LE(over, 1);
}

TEST(CannedRing, SnakeOntoTorusWrapsWithDilationOne) {
  // On a torus with an even number of rows the snake's wrap edge
  // closes through the row wrap-around: every ring edge has dilation 1.
  const auto g = ring_graph(16);
  const auto fam = detect_ring(g);
  const auto topo = Topology::torus(4, 4);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(mapped_max_dilation(g, *m, topo), 1);
}

TEST(CannedRing, OntoRingIdentity) {
  const auto g = ring_graph(8);
  const auto fam = detect_ring(g);
  const auto topo = Topology::ring(8);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(mapped_max_dilation(g, *m, topo), 1);
}

TEST(CannedMesh, TilesOntoSmallerMesh) {
  const auto g = mesh_graph(8, 8);
  const auto fam = detect_mesh(g);
  ASSERT_TRUE(fam.has_value());
  const auto topo = Topology::mesh(4, 4);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->contraction.num_clusters, 16);
  EXPECT_EQ(m->contraction.max_cluster_size(), 4);
  EXPECT_EQ(mapped_max_dilation(g, *m, topo), 1);
}

TEST(CannedMesh, OntoHypercubeDilationOne) {
  const auto g = mesh_graph(4, 8);
  const auto fam = detect_mesh(g);
  ASSERT_TRUE(fam.has_value());
  const auto topo = Topology::hypercube(5);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->contraction.num_clusters, 32);
  EXPECT_EQ(mapped_max_dilation(g, *m, topo), 1);
}

TEST(CannedMesh, TiledOntoSmallerHypercube) {
  const auto g = mesh_graph(8, 8);
  const auto fam = detect_mesh(g);
  const auto topo = Topology::hypercube(4);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->contraction.num_clusters, 16);
  EXPECT_EQ(mapped_max_dilation(g, *m, topo), 1);
}

TEST(CannedHypercube, SubcubeContraction) {
  Graph g(16);
  for (int v = 0; v < 16; ++v) {
    for (int b = 0; b < 4; ++b) {
      if (v < (v ^ (1 << b))) {
        g.add_edge(v, v ^ (1 << b));
      }
    }
  }
  const auto fam = detect_hypercube(g);
  ASSERT_TRUE(fam.has_value());
  const auto topo = Topology::hypercube(2);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->contraction.num_clusters, 4);
  EXPECT_EQ(m->contraction.max_cluster_size(), 4);
  EXPECT_EQ(mapped_max_dilation(g, *m, topo), 1);
}

TEST(CannedBinomial, OntoHypercubeDilationOne) {
  const auto g = binomial_graph(4);
  const auto fam = detect_binomial_tree(g);
  ASSERT_TRUE(fam.has_value());
  const auto topo = Topology::hypercube(4);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(mapped_max_dilation(g, *m, topo), 1);
}

TEST(CannedBinomial, ContractedOntoSmallerHypercube) {
  const auto g = binomial_graph(6);
  const auto fam = detect_binomial_tree(g);
  const auto topo = Topology::hypercube(3);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->contraction.num_clusters, 8);
  EXPECT_EQ(m->contraction.max_cluster_size(), 8);
  EXPECT_EQ(mapped_max_dilation(g, *m, topo), 1);
}

TEST(CannedBinomial, OntoMeshLowAverageDilation) {
  const auto g = binomial_graph(6);
  const auto fam = detect_binomial_tree(g);
  const auto topo = Topology::mesh(8, 8);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->contraction.num_clusters, 64);
  double total = 0;
  for (const auto& e : g.edges()) {
    const int pu = m->embedding.proc_of_cluster[static_cast<std::size_t>(
        m->contraction.cluster_of_task[static_cast<std::size_t>(e.u)])];
    const int pv = m->embedding.proc_of_cluster[static_cast<std::size_t>(
        m->contraction.cluster_of_task[static_cast<std::size_t>(e.v)])];
    total += topo.distance(pu, pv);
  }
  EXPECT_LE(total / static_cast<double>(g.num_edges()), 1.2);
}

TEST(CannedBinomial, TransposedMeshAccepted) {
  // B_5 needs an 8x4 footprint; a 4x16 target mesh fits transposed.
  const auto g = binomial_graph(5);
  const auto fam = detect_binomial_tree(g);
  const auto topo = Topology::mesh(4, 16);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->contraction.num_clusters, 32);
}

TEST(CannedCbt, InorderIntoHypercubeDilationAtMostTwo) {
  const auto g = cbt_graph(4);  // 15 tasks
  const auto fam = detect_complete_binary_tree(g);
  ASSERT_TRUE(fam.has_value());
  const auto topo = Topology::hypercube(4);  // 16 processors
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->contraction.num_clusters, 15);
  EXPECT_LE(mapped_max_dilation(g, *m, topo), 2);
}

TEST(CannedCbt, TooBigForCubeFallsThrough) {
  const auto g = cbt_graph(4);
  const auto fam = detect_complete_binary_tree(g);
  const auto topo = Topology::hypercube(3);  // only 8 processors
  EXPECT_FALSE(canned_mapping(*fam, topo).has_value());
}

TEST(CannedStar, HubOnMaxDegreeProcessor) {
  Graph g(9);
  for (int v = 1; v < 9; ++v) {
    g.add_edge(0, v);
  }
  const auto fam = detect_star(g);
  ASSERT_TRUE(fam.has_value());
  const auto topo = Topology::star(5);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  // Hub task's cluster lands on processor 0 (the star centre).
  const int hub_cluster = m->contraction.cluster_of_task[0];
  EXPECT_EQ(m->embedding.proc_of_cluster[static_cast<std::size_t>(
                hub_cluster)],
            0);
  EXPECT_EQ(m->contraction.num_clusters, 5);
}

TEST(Canned, UnknownFamilyYieldsNothing) {
  RecognizedFamily unknown;
  EXPECT_FALSE(
      canned_mapping(unknown, Topology::ring(4)).has_value());
}

TEST(Canned, ValidatedOutputs) {
  // Every produced mapping passes contraction/embedding validation
  // (validate() is called internally; spot-check the invariants here).
  const auto g = ring_graph(10);
  const auto fam = detect_ring(g);
  const auto topo = Topology::mesh(2, 3);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->contraction.num_clusters, 6);
  std::set<int> procs(m->embedding.proc_of_cluster.begin(),
                      m->embedding.proc_of_cluster.end());
  EXPECT_EQ(procs.size(), 6u);
}

}  // namespace
}  // namespace oregami
