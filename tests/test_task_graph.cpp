#include <gtest/gtest.h>

#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

TaskGraph two_phase_graph() {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task("t" + std::to_string(i), {i});
  }
  const int ring = g.add_comm_phase("ring");
  const int chord = g.add_comm_phase("chord");
  for (int i = 0; i < 4; ++i) {
    g.add_comm_edge(ring, i, (i + 1) % 4, 2);
  }
  g.add_comm_edge(chord, 0, 2, 5);
  g.add_comm_edge(chord, 1, 3, 5);
  g.add_exec_phase("work", {1, 2, 3, 4});
  return g;
}

TEST(TaskGraph, BasicAccessors) {
  const auto g = two_phase_graph();
  EXPECT_EQ(g.num_tasks(), 4);
  EXPECT_EQ(g.task_name(2), "t2");
  EXPECT_EQ(g.task_label(3), std::vector<long>{3});
  EXPECT_EQ(g.comm_phases().size(), 2u);
  EXPECT_EQ(g.num_comm_edges(), 6);
  EXPECT_EQ(g.total_volume(), 4 * 2 + 2 * 5);
  EXPECT_EQ(g.comm_phase_index("chord"), 1);
  EXPECT_FALSE(g.comm_phase_index("nope").has_value());
  EXPECT_EQ(g.exec_phase_index("work"), 0);
}

TEST(TaskGraph, AggregateGraphCollapsesAntiparallelEdges) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int p = g.add_comm_phase("p");
  g.add_comm_edge(p, 0, 1, 3);
  g.add_comm_edge(p, 1, 0, 4);
  const Graph agg = g.aggregate_graph();
  EXPECT_EQ(agg.num_edges(), 1);
  EXPECT_EQ(agg.edge_weight(0, 1), 7);
}

TEST(TaskGraph, ValidateCatchesBadCost) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  EXPECT_THROW(g.add_exec_phase("w", {1}), std::exception);
}

TEST(TaskGraph, EmptyCostVectorMeansZeros) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  g.add_exec_phase("w", {});
  EXPECT_EQ(g.exec_phases()[0].cost, (std::vector<std::int64_t>{0, 0}));
}

TEST(PhaseTree, BuildersAndToString) {
  auto g = two_phase_graph();
  const auto expr = PhaseTree::repeat(
      PhaseTree::seq({PhaseTree::comm(0), PhaseTree::exec(0),
                      PhaseTree::comm(1)}),
      3);
  g.set_phase_expr(expr);
  EXPECT_EQ(expr.to_string(g.comm_phases(), g.exec_phases()),
            "(ring; work; chord)^3");
}

TEST(PhaseTree, ParallelToString) {
  const auto g = two_phase_graph();
  const auto expr =
      PhaseTree::par({PhaseTree::comm(0), PhaseTree::comm(1)});
  EXPECT_EQ(expr.to_string(g.comm_phases(), g.exec_phases()),
            "(ring || chord)");
  EXPECT_EQ(PhaseTree::idle().to_string(g.comm_phases(), g.exec_phases()),
            "eps");
}

TEST(PhaseTree, MultiplicitiesThroughNestedRepeats) {
  auto g = two_phase_graph();
  // ((ring; work)^5; chord)^2: ring and work x10, chord x2.
  g.set_phase_expr(PhaseTree::repeat(
      PhaseTree::seq(
          {PhaseTree::repeat(
               PhaseTree::seq({PhaseTree::comm(0), PhaseTree::exec(0)}), 5),
           PhaseTree::comm(1)}),
      2));
  EXPECT_EQ(g.comm_phase_multiplicity(), (std::vector<long>{10, 2}));
  EXPECT_EQ(g.exec_phase_multiplicity(), (std::vector<long>{10}));
}

TEST(PhaseTree, IdleExpressionDefaultsToOnceEach) {
  const auto g = two_phase_graph();
  EXPECT_EQ(g.comm_phase_multiplicity(), (std::vector<long>{1, 1}));
  EXPECT_EQ(g.exec_phase_multiplicity(), (std::vector<long>{1}));
}

TEST(PhaseTree, ParallelBranchesBothCount) {
  auto g = two_phase_graph();
  g.set_phase_expr(PhaseTree::repeat(
      PhaseTree::par({PhaseTree::comm(0), PhaseTree::comm(1)}), 4));
  EXPECT_EQ(g.comm_phase_multiplicity(), (std::vector<long>{4, 4}));
}

TEST(TaskGraph, ValidateChecksPhaseIndices) {
  auto g = two_phase_graph();
  g.set_phase_expr(PhaseTree::comm(7));
  EXPECT_THROW(g.validate(), MappingError);
  g.set_phase_expr(PhaseTree::exec(1));
  EXPECT_THROW(g.validate(), MappingError);
  g.set_phase_expr(PhaseTree::comm(1));
  EXPECT_NO_THROW(g.validate());
}

// --- mapping data types ---------------------------------------------------

TEST(Contraction, IdentityAndSizes) {
  const auto c = Contraction::identity(5);
  EXPECT_EQ(c.num_clusters, 5);
  EXPECT_EQ(c.cluster_sizes(), (std::vector<int>{1, 1, 1, 1, 1}));
  EXPECT_EQ(c.max_cluster_size(), 1);
  EXPECT_NO_THROW(c.validate(5));
}

TEST(Contraction, ValidateRejectsGapsAndBadIds) {
  Contraction c;
  c.num_clusters = 3;
  c.cluster_of_task = {0, 0, 2, 2};  // cluster 1 empty
  EXPECT_THROW(c.validate(4), MappingError);
  c.cluster_of_task = {0, 1, 2, 3};  // id 3 out of range
  EXPECT_THROW(c.validate(4), MappingError);
  c.cluster_of_task = {0, 1, 2};  // wrong size
  EXPECT_THROW(c.validate(4), MappingError);
}

TEST(Embedding, ValidateRejectsCollisionsAndRange) {
  Embedding e;
  e.proc_of_cluster = {0, 2, 2};
  EXPECT_THROW(e.validate(4), MappingError);
  e.proc_of_cluster = {0, 5};
  EXPECT_THROW(e.validate(4), MappingError);
  e.proc_of_cluster = {3, 1, 0};
  EXPECT_NO_THROW(e.validate(4));
}

TEST(Mapping, ProcOfTaskComposes) {
  Mapping m;
  m.contraction.num_clusters = 2;
  m.contraction.cluster_of_task = {0, 1, 0, 1};
  m.embedding.proc_of_cluster = {7, 3};
  EXPECT_EQ(m.proc_of_task(), (std::vector<int>{7, 3, 7, 3}));
  EXPECT_EQ(m.task_processor(2), 7);
}

TEST(Route, HopCount) {
  Route r;
  r.nodes = {0, 1, 2};
  r.links = {0, 1};
  EXPECT_EQ(r.hops(), 2);
}

}  // namespace
}  // namespace oregami
