// Fuzz-style robustness harness for the LaRCS front end: mutated and
// truncated variants of every shipped sample must either compile or
// fail with a LarcsError carrying a usable SourceLoc. Crashing,
// hanging, or tripping OREGAMI_ASSERT on *input* (as opposed to
// internal state) is a bug -- malformed source is user data, not a
// precondition violation.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "oregami/larcs/compiler.hpp"
#include "oregami/support/error.hpp"

#ifndef OREGAMI_SAMPLES_DIR
#error "OREGAMI_SAMPLES_DIR must point at the repository's samples/"
#endif

namespace oregami {
namespace {

struct Sample {
  const char* file;
  std::map<std::string, long> bindings;
};

const std::vector<Sample>& samples() {
  static const std::vector<Sample> kSamples = {
      {"nbody.larcs", {{"n", 15}, {"s", 4}, {"m", 8}}},
      {"pipeline.larcs", {{"stages", 12}, {"rounds", 100}}},
      {"reduce_tree.larcs", {{"h", 4}}},
      {"wavefront.larcs", {{"n", 8}}},
  };
  return kSamples;
}

std::string read_sample(const char* file) {
  const std::string path = std::string(OREGAMI_SAMPLES_DIR) + "/" + file;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int line_count(const std::string& text) {
  int lines = 1;
  for (const char c : text) {
    if (c == '\n') {
      ++lines;
    }
  }
  return lines;
}

/// Deterministic xorshift so every run exercises the same mutants.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

/// Compiles `source`; the only acceptable failure is a LarcsError whose
/// SourceLoc points into (or just past) the text.
void expect_compiles_or_located_error(const std::string& source,
                                      const Sample& sample,
                                      const std::string& what) {
  try {
    (void)larcs::compile_source(source, sample.bindings);
  } catch (const LarcsError& e) {
    const SourceLoc& loc = e.loc();
    EXPECT_GE(loc.line, 1) << sample.file << " " << what
                           << ": unlocated LarcsError: " << e.what();
    EXPECT_GE(loc.column, 1)
        << sample.file << " " << what
        << ": unlocated LarcsError: " << e.what();
    // "Just past" covers end-of-file errors on a trailing newline.
    EXPECT_LE(loc.line, line_count(source) + 1)
        << sample.file << " " << what << ": loc " << loc.to_string()
        << " beyond the source: " << e.what();
  }
  // Any other exception type propagates and fails the test.
}

TEST(LarcsRobustness, PristineSamplesCompile) {
  for (const Sample& sample : samples()) {
    const std::string source = read_sample(sample.file);
    EXPECT_NO_THROW((void)larcs::compile_source(source, sample.bindings))
        << sample.file;
  }
}

TEST(LarcsRobustness, TruncationsFailWithLocatedErrors) {
  // ~16 truncation points per sample (64 variants in total): cut the
  // file at evenly spaced offsets, snapped forward to token boundaries
  // by nothing in particular -- raw byte cuts are the harsher test.
  for (const Sample& sample : samples()) {
    const std::string source = read_sample(sample.file);
    for (int i = 1; i <= 16; ++i) {
      const std::size_t cut = source.size() * i / 17;
      expect_compiles_or_located_error(
          source.substr(0, cut), sample,
          "truncated at byte " + std::to_string(cut));
    }
  }
}

TEST(LarcsRobustness, ByteMutationsFailWithLocatedErrors) {
  // 64 random single-edit mutants per sample (256 in total): replace,
  // delete, insert, or duplicate a span. Seeded per file name so the
  // corpus is stable run to run.
  for (const Sample& sample : samples()) {
    const std::string source = read_sample(sample.file);
    Rng rng{0x5EEDF00DULL ^ std::hash<std::string>{}(sample.file)};
    for (int trial = 0; trial < 64; ++trial) {
      std::string mutated = source;
      const std::size_t pos = rng.next() % mutated.size();
      switch (rng.next() % 4) {
        case 0:  // replace with a random printable byte
          mutated[pos] = static_cast<char>('!' + rng.next() % 94);
          break;
        case 1:  // delete a short span
          mutated.erase(pos, 1 + rng.next() % 8);
          break;
        case 2:  // insert structural noise
          mutated.insert(pos, ";)}{(" + std::to_string(rng.next() % 100));
          break;
        default:  // duplicate a span (often re-declares something)
          mutated.insert(pos, mutated.substr(pos, 1 + rng.next() % 16));
          break;
      }
      expect_compiles_or_located_error(
          mutated, sample, "mutant #" + std::to_string(trial));
    }
  }
}

TEST(LarcsRobustness, DegenerateInputsFailCleanly) {
  const Sample& any = samples().front();
  const std::vector<std::string> degenerates = {
      "",
      "\n\n\n",
      "algorithm",
      "algorithm ;",
      "algorithm x()",
      "algorithm x(); phases",
      std::string(1 << 16, 'x'),
      std::string("algorithm x();\n") + std::string(100, '('),
      "algorithm x(\xFF\xFE);",
  };
  for (std::size_t i = 0; i < degenerates.size(); ++i) {
    expect_compiles_or_located_error(degenerates[i], any,
                                     "degenerate #" + std::to_string(i));
  }
}

}  // namespace
}  // namespace oregami
