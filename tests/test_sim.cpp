#include <gtest/gtest.h>

#include "oregami/arch/routes.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/sim/network_sim.hpp"

namespace oregami {
namespace {

/// Two tasks on a 2-processor chain with one message.
struct SingleMessage {
  TaskGraph graph;
  Topology topo = Topology::chain(2);
  PhaseRouting routing;

  explicit SingleMessage(std::int64_t volume) {
    graph.add_task("a");
    graph.add_task("b");
    const int p = graph.add_comm_phase("send");
    graph.add_comm_edge(p, 0, 1, volume);
    routing.route_of_edge.push_back(greedy_shortest_route(topo, 0, 1));
  }
};

TEST(Sim, SingleMessageTakesTransferTime) {
  const SingleMessage f(10);
  SimConfig config;
  config.hop_latency = 3;
  config.cycles_per_unit = 2;
  const auto result =
      simulate_comm_phase(f.graph, 0, f.routing, f.topo, config);
  EXPECT_EQ(result.makespan, 10 * 2 + 3);
  EXPECT_EQ(result.link_busy[0], 23);
  EXPECT_EQ(result.delivery[0], 23);
}

TEST(Sim, TwoMessagesOnOneLinkSerialise) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  g.add_task("c");
  g.add_task("d");
  const int p = g.add_comm_phase("send");
  g.add_comm_edge(p, 0, 1, 5);
  g.add_comm_edge(p, 2, 3, 5);
  const auto topo = Topology::chain(2);
  // All four tasks split across the two processors; both messages use
  // the single link.
  PhaseRouting routing;
  routing.route_of_edge.push_back(greedy_shortest_route(topo, 0, 1));
  routing.route_of_edge.push_back(greedy_shortest_route(topo, 0, 1));
  const auto result = simulate_comm_phase(g, 0, routing, topo, {});
  // Each transfer is 5 + 1 = 6; serialised: second finishes at 12.
  EXPECT_EQ(result.makespan, 12);
  EXPECT_EQ(result.delivery[0], 6);
  EXPECT_EQ(result.delivery[1], 12);
  EXPECT_EQ(result.link_busy[0], 12);
}

TEST(Sim, MultiHopStoreAndForward) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int p = g.add_comm_phase("send");
  g.add_comm_edge(p, 0, 1, 4);
  const auto topo = Topology::chain(4);
  PhaseRouting routing;
  routing.route_of_edge.push_back(greedy_shortest_route(topo, 0, 3));
  const auto result = simulate_comm_phase(g, 0, routing, topo, {});
  // 3 hops x (4 + 1) cycles, store-and-forward.
  EXPECT_EQ(result.makespan, 15);
}

TEST(Sim, DisjointLinksRunInParallel) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int p = g.add_comm_phase("send");
  g.add_comm_edge(p, 0, 1, 7);
  g.add_comm_edge(p, 2, 3, 7);
  const auto topo = Topology::chain(4);
  PhaseRouting routing;
  routing.route_of_edge.push_back(greedy_shortest_route(topo, 0, 1));
  routing.route_of_edge.push_back(greedy_shortest_route(topo, 2, 3));
  const auto result = simulate_comm_phase(g, 0, routing, topo, {});
  EXPECT_EQ(result.makespan, 8);  // both at once
}

TEST(Sim, CoLocatedMessagesAreFree) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int p = g.add_comm_phase("send");
  g.add_comm_edge(p, 0, 1, 100);
  const auto topo = Topology::chain(2);
  PhaseRouting routing;
  routing.route_of_edge.push_back(Route{{0}, {}});
  const auto result = simulate_comm_phase(g, 0, routing, topo, {});
  EXPECT_EQ(result.makespan, 0);
}

TEST(Sim, DeterministicTieBreakByMessageId) {
  const SingleMessage unused(1);
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int p = g.add_comm_phase("send");
  g.add_comm_edge(p, 0, 1, 2);
  g.add_comm_edge(p, 0, 1, 3);
  const auto topo = Topology::chain(2);
  PhaseRouting routing;
  routing.route_of_edge.push_back(greedy_shortest_route(topo, 0, 1));
  routing.route_of_edge.push_back(greedy_shortest_route(topo, 0, 1));
  const auto a = simulate_comm_phase(g, 0, routing, topo, {});
  const auto b = simulate_comm_phase(g, 0, routing, topo, {});
  EXPECT_EQ(a.delivery, b.delivery);
  EXPECT_EQ(a.delivery[0], 3);      // message 0 first
  EXPECT_EQ(a.delivery[1], 3 + 4);  // then message 1
}

TEST(Sim, FullSimulationComposesPhaseTree) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int send = g.add_comm_phase("send");
  g.add_comm_edge(send, 0, 1, 5);
  g.add_exec_phase("work", {10, 20});
  g.set_phase_expr(PhaseTree::repeat(
      PhaseTree::seq({PhaseTree::exec(0), PhaseTree::comm(0)}), 3));
  const auto topo = Topology::chain(2);
  std::vector<PhaseRouting> routing(1);
  routing[0].route_of_edge.push_back(greedy_shortest_route(topo, 0, 1));
  const std::vector<int> procs{0, 1};
  const auto result = simulate(g, procs, routing, topo, {});
  // Each iteration: exec max(10, 20) + comm (5 + 1) = 26; x3 = 78.
  EXPECT_EQ(result.total_cycles, 78);
  EXPECT_EQ(result.comm_phase_cycles, std::vector<std::int64_t>{6});
  EXPECT_EQ(result.exec_phase_cycles, std::vector<std::int64_t>{20});
}

TEST(Sim, IdleExpressionFallsBackToOnceEach) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int send = g.add_comm_phase("send");
  g.add_comm_edge(send, 0, 1, 5);
  g.add_exec_phase("work", {4, 9});
  const auto topo = Topology::chain(2);
  std::vector<PhaseRouting> routing(1);
  routing[0].route_of_edge.push_back(greedy_shortest_route(topo, 0, 1));
  const auto result = simulate(g, {0, 1}, routing, topo, {});
  EXPECT_EQ(result.total_cycles, 6 + 9);
}

TEST(Sim, EmptyPhaseHasZeroMakespan) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  g.add_comm_phase("silent");
  const auto topo = Topology::chain(2);
  const auto result = simulate_comm_phase(g, 0, PhaseRouting{}, topo, {});
  EXPECT_EQ(result.makespan, 0);
  EXPECT_EQ(result.avg_link_utilisation, 0.0);
  const auto sim = simulate(g, {0, 1}, {PhaseRouting{}}, topo, {});
  EXPECT_EQ(sim.total_cycles, 0);
}

TEST(Sim, AgreesWithAnalyticModelOnUncontendedPhases) {
  // When every link carries at most one message per phase, the
  // store-and-forward makespan matches the analytic bound for 1-hop
  // routes (volume + latency).
  const auto cp = larcs::compile_source(larcs::programs::ring_pipeline(),
                                        {{"n", 8}, {"stages", 1}});
  const auto topo = Topology::ring(8);
  const auto report = map_computation(cp.graph, topo);
  const auto procs = report.mapping.proc_of_task();
  const auto metrics = compute_metrics(cp.graph, report.mapping, topo);
  const auto sim = simulate(cp.graph, procs, report.mapping.routing, topo);
  EXPECT_EQ(sim.total_cycles, metrics.completion);
}

TEST(Sim, SimAtLeastModelUnderEqualUnitCosts) {
  // The analytic model's comm bound (max link volume + max hops) never
  // exceeds the serialised store-and-forward simulation.
  const auto cp = larcs::compile_source(larcs::programs::nbody(),
                                        {{"n", 15}, {"s", 2}, {"m", 4}});
  const auto topo = Topology::hypercube(3);
  const auto report = map_computation(cp.graph, topo);
  const auto procs = report.mapping.proc_of_task();
  const auto metrics = compute_metrics(cp.graph, report.mapping, topo);
  const auto sim = simulate(cp.graph, procs, report.mapping.routing, topo);
  EXPECT_GE(sim.total_cycles, metrics.completion);
  // ... and stays within a small factor (no pathological blow-up).
  EXPECT_LE(sim.total_cycles, 3 * metrics.completion);
}

}  // namespace
}  // namespace oregami
