#include <gtest/gtest.h>

#include <set>

#include "oregami/graph/gray_code.hpp"
#include "oregami/mapper/dynamic_spawn.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

TEST(BinomialSpawn, StagesFollowHighestBit) {
  const auto plan = plan_binomial_spawn(4, Topology::hypercube(4));
  EXPECT_EQ(plan.spawn_stage_of_node[0], 0);
  EXPECT_EQ(plan.spawn_stage_of_node[1], 1);
  EXPECT_EQ(plan.spawn_stage_of_node[2], 2);
  EXPECT_EQ(plan.spawn_stage_of_node[3], 2);
  EXPECT_EQ(plan.spawn_stage_of_node[4], 3);
  EXPECT_EQ(plan.spawn_stage_of_node[8], 4);
  EXPECT_EQ(plan.spawn_stage_of_node[15], 4);
}

TEST(BinomialSpawn, LiveSetDoublesEachStage) {
  const auto plan = plan_binomial_spawn(5, Topology::hypercube(5));
  for (int s = 0; s <= 5; ++s) {
    EXPECT_EQ(plan.live_nodes(s).size(), 1u << s);
  }
  // Stage s live set is exactly the masks below 2^s (prefix property:
  // the running tree is always B_s by address).
  const auto live = plan.live_nodes(3);
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i], static_cast<int>(i));
  }
}

TEST(BinomialSpawn, BalancedAtEveryStageOnHypercube) {
  const auto topo = Topology::hypercube(3);
  const auto plan = plan_binomial_spawn(6, topo);
  // Once the tree covers the machine (stage >= 3), perfect balance.
  for (int s = 3; s <= 6; ++s) {
    EXPECT_EQ(plan.stage_imbalance(s, topo.num_procs()), 0)
        << "stage " << s;
  }
}

TEST(BinomialSpawn, BalancedAtEveryStageOnMesh) {
  const auto topo = Topology::mesh(4, 4);
  const auto plan = plan_binomial_spawn(6, topo);
  for (int s = 4; s <= 6; ++s) {
    EXPECT_EQ(plan.stage_imbalance(s, topo.num_procs()), 0)
        << "stage " << s;
  }
}

TEST(BinomialSpawn, NoMigrationByConstruction) {
  // The plan fixes placements up front; verify the documented stability
  // by re-planning a smaller tree on the same topology: placements of
  // shared nodes agree.
  const auto topo = Topology::hypercube(4);
  const auto big = plan_binomial_spawn(6, topo);
  const auto small = plan_binomial_spawn(4, topo);
  for (int m = 0; m < (1 << 4); ++m) {
    EXPECT_EQ(big.proc_of_node[static_cast<std::size_t>(m)],
              small.proc_of_node[static_cast<std::size_t>(m)])
        << "node " << m;
  }
}

TEST(BinomialSpawn, SpawnerAlwaysAliveBeforeChild) {
  // At the stage-s growth step every live node m spawns m | 2^s, i.e.
  // the *spawner* of m clears m's highest set bit (distinct from the
  // comm-tree parent, which clears the lowest). The spawner must be
  // strictly older; the tree parent only needs to be no younger.
  const auto plan = plan_binomial_spawn(6, Topology::hypercube(3));
  for (int m = 1; m < (1 << 6); ++m) {
    const int spawner =
        m & ~(1 << floor_log2(static_cast<std::uint64_t>(m)));
    EXPECT_LT(plan.spawn_stage_of_node[static_cast<std::size_t>(spawner)],
              plan.spawn_stage_of_node[static_cast<std::size_t>(m)]);
    const int tree_parent = m & (m - 1);
    EXPECT_LE(
        plan.spawn_stage_of_node[static_cast<std::size_t>(tree_parent)],
        plan.spawn_stage_of_node[static_cast<std::size_t>(m)]);
  }
}

TEST(BinomialSpawn, UnsupportedTopologyThrows) {
  EXPECT_THROW((void)plan_binomial_spawn(4, Topology::star(8)),
               MappingError);
}

TEST(CbtSpawn, StagesAreDepths) {
  const auto plan = plan_cbt_spawn(4, Topology::hypercube(4));
  EXPECT_EQ(plan.spawn_stage_of_node[0], 0);
  EXPECT_EQ(plan.spawn_stage_of_node[1], 1);
  EXPECT_EQ(plan.spawn_stage_of_node[2], 1);
  EXPECT_EQ(plan.spawn_stage_of_node[3], 2);
  EXPECT_EQ(plan.spawn_stage_of_node[7], 3);
  EXPECT_EQ(plan.spawn_stage_of_node[14], 3);
}

TEST(CbtSpawn, LiveSetIsFullLevels) {
  const auto plan = plan_cbt_spawn(5, Topology::hypercube(5));
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(plan.live_nodes(s).size(),
              static_cast<std::size_t>((1 << (s + 1)) - 1));
  }
}

TEST(CbtSpawn, DistinctProcessorsOnBigEnoughMachine) {
  const auto topo = Topology::hypercube(4);
  const auto plan = plan_cbt_spawn(4, topo);  // 15 tasks, 16 procs
  std::set<int> procs(plan.proc_of_node.begin(), plan.proc_of_node.end());
  EXPECT_EQ(procs.size(), plan.proc_of_node.size());
}

TEST(CbtSpawn, HTreeOnMesh) {
  // h = 4 needs a 3x7 H-tree footprint.
  const auto topo = Topology::mesh(3, 7);
  const auto plan = plan_cbt_spawn(4, topo);
  std::set<int> procs(plan.proc_of_node.begin(), plan.proc_of_node.end());
  EXPECT_EQ(procs.size(), 15u);
  EXPECT_NE(plan.description.find("H-tree"), std::string::npos);
}

}  // namespace
}  // namespace oregami
