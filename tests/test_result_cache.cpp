// The mapping server's storage layer: FNV-1a digest combinators, the
// canonical job digest, the sharded LRU result cache, and the
// concurrency primitives behind the serve loop (ThreadSafeQueue,
// ThreadPool::pending). The digest pins here are the cache-format
// contract: if one breaks, bump oregami::kDigestVersion instead of
// editing the constant.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "oregami/arch/topology_spec.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/server/digest.hpp"
#include "oregami/server/result_cache.hpp"
#include "oregami/support/hash.hpp"
#include "oregami/support/thread_pool.hpp"
#include "oregami/support/thread_safe_queue.hpp"

namespace oregami::server {
namespace {

// ---------------------------------------------------------------- hash

TEST(Fnv1a, EmptyInputIsOffsetBasis) {
  Fnv1a h;
  EXPECT_EQ(h.digest(), Fnv1a::kOffset);
}

TEST(Fnv1a, MatchesReferenceVectors) {
  // Classic FNV-1a 64-bit test vectors.
  Fnv1a a;
  a.bytes("a", 1);
  EXPECT_EQ(a.digest(), 0xaf63dc4c8601ec8cULL);
  Fnv1a foobar;
  foobar.bytes("foobar", 6);
  EXPECT_EQ(foobar.digest(), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, LengthPrefixPreventsConcatenationAliasing) {
  Fnv1a ab_c;
  ab_c.str("ab");
  ab_c.str("c");
  Fnv1a a_bc;
  a_bc.str("a");
  a_bc.str("bc");
  EXPECT_NE(ab_c.digest(), a_bc.digest());
}

TEST(Fnv1a, IntegersFoldAsFixedWidthLittleEndian) {
  Fnv1a via_u64;
  via_u64.u64(0x0102030405060708ULL);
  Fnv1a via_bytes;
  const unsigned char le[8] = {8, 7, 6, 5, 4, 3, 2, 1};
  via_bytes.bytes(le, 8);
  EXPECT_EQ(via_u64.digest(), via_bytes.digest());
}

TEST(Fnv1a, DigestHexIsSixteenLowercaseZeroPadded) {
  EXPECT_EQ(digest_hex(0), "0000000000000000");
  EXPECT_EQ(digest_hex(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(digest_hex(0xFFFFFFFFFFFFFFFFULL), "ffffffffffffffff");
}

// --------------------------------------------------------- job digest

struct DigestInputs {
  larcs::CompiledProgram compiled;
  Topology topo;
};

DigestInputs compile_catalog(const std::string& name,
                             const std::string& topo_spec) {
  for (const auto& entry : larcs::programs::catalog()) {
    if (entry.name != name) continue;
    const larcs::Program ast = larcs::parse_program(entry.source);
    std::map<std::string, long> binds(entry.example_bindings.begin(),
                                      entry.example_bindings.end());
    return DigestInputs{larcs::compile(ast, binds),
                        parse_topology_spec(topo_spec)};
  }
  throw std::runtime_error("no catalog program " + name);
}

TEST(JobDigest, PinnedForJacobiMesh4x4Defaults) {
  // The cache-key format contract. oregami_map --digest prints the
  // same value; tests/cli_exit_codes.cmake and the server e2e rely on
  // cross-binary agreement.
  const DigestInputs in = compile_catalog("jacobi", "mesh:4x4");
  const MapperOptions options;
  EXPECT_EQ(digest_hex(job_digest(in.compiled.graph, in.topo, options)),
            "7bb2d7d76f7682a2");
}

TEST(JobDigest, StableAcrossRecompiles) {
  const DigestInputs a = compile_catalog("nbody", "mesh:4x4");
  const DigestInputs b = compile_catalog("nbody", "mesh:4x4");
  const MapperOptions options;
  EXPECT_EQ(job_digest(a.compiled.graph, a.topo, options),
            job_digest(b.compiled.graph, b.topo, options));
}

TEST(JobDigest, SensitiveToProgramTopologyAndOptions) {
  const DigestInputs jacobi = compile_catalog("jacobi", "mesh:4x4");
  const DigestInputs sor = compile_catalog("sor", "mesh:4x4");
  const DigestInputs ring = compile_catalog("jacobi", "ring:16");
  const MapperOptions defaults;
  const std::uint64_t base =
      job_digest(jacobi.compiled.graph, jacobi.topo, defaults);
  EXPECT_NE(base, job_digest(sor.compiled.graph, sor.topo, defaults));
  EXPECT_NE(base, job_digest(ring.compiled.graph, ring.topo, defaults));

  MapperOptions portfolio;
  portfolio.portfolio = 4;
  EXPECT_NE(base,
            job_digest(jacobi.compiled.graph, jacobi.topo, portfolio));
}

TEST(JobDigest, ExecutionWidthDoesNotChangeTheKey) {
  // `jobs` is how fast we compute, not what we compute: two requests
  // differing only in worker count must share a cache entry.
  const DigestInputs in = compile_catalog("jacobi", "mesh:4x4");
  MapperOptions serial;
  serial.jobs = 1;
  MapperOptions wide;
  wide.jobs = 8;
  EXPECT_EQ(job_digest(in.compiled.graph, in.topo, serial),
            job_digest(in.compiled.graph, in.topo, wide));
}

// -------------------------------------------------------- result cache

std::shared_ptr<const CachedOutcome> outcome_with(int completion) {
  auto o = std::make_shared<CachedOutcome>();
  o->ok = true;
  o->completion = completion;
  return o;
}

TEST(ResultCache, MissThenHit) {
  ResultCache cache(8, 2);
  EXPECT_EQ(cache.lookup(42), nullptr);
  cache.insert(42, outcome_with(7));
  const auto hit = cache.lookup(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->completion, 7);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.size, 1);
}

TEST(ResultCache, ReinsertReplacesWithoutEviction) {
  ResultCache cache(8, 1);
  cache.insert(1, outcome_with(10));
  cache.insert(1, outcome_with(20));
  EXPECT_EQ(cache.lookup(1)->completion, 20);
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(cache.stats().size, 1);
}

TEST(ResultCache, EvictsLeastRecentlyUsedFirst) {
  // Single shard so the LRU order is global and observable.
  ResultCache cache(3, 1);
  cache.insert(1, outcome_with(1));
  cache.insert(2, outcome_with(2));
  cache.insert(3, outcome_with(3));
  ASSERT_NE(cache.lookup(1), nullptr);  // refresh 1; LRU tail is now 2
  cache.insert(4, outcome_with(4));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ResultCache, BoundHoldsUnderChurn) {
  // Property: resident size never exceeds shards * ceil(cap/shards),
  // whatever the insert sequence.
  ResultCache cache(16, 4);
  const std::size_t slack_bound =
      static_cast<std::size_t>(cache.num_shards()) *
      ((cache.capacity() + cache.num_shards() - 1) /
       static_cast<std::size_t>(cache.num_shards()));
  for (std::uint64_t i = 0; i < 500; ++i) {
    // Spread across shards: shard index comes from the top bits.
    cache.insert(i * 0x9e3779b97f4a7c15ULL, outcome_with(1));
    EXPECT_LE(static_cast<std::size_t>(cache.stats().size), slack_bound);
  }
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(ResultCache, EvictedEntryStaysAliveForExistingReaders) {
  ResultCache cache(1, 1);
  cache.insert(1, outcome_with(11));
  const auto held = cache.lookup(1);
  cache.insert(2, outcome_with(22));  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->completion, 11);  // refcount kept it alive
}

TEST(ResultCache, ShardCountClampedToCapacity) {
  ResultCache tiny(2, 64);
  EXPECT_LE(tiny.num_shards(), 2);
  ResultCache one(1, 8);
  EXPECT_EQ(one.num_shards(), 1);
}

TEST(ResultCache, ConcurrentHammerIsRaceFreeAndConsistent) {
  // TSan-checked in CI: 8 threads mixing hits, misses, inserts and
  // evictions on a small cache. The assertions are deliberately weak
  // (totals add up, bound holds) -- the real check is no data race.
  ResultCache cache(32, 4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &ready, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto digest =
            static_cast<std::uint64_t>((t * kOpsPerThread + i) % 64) *
            0x9e3779b97f4a7c15ULL;
        if (cache.lookup(digest) == nullptr) {
          cache.insert(digest, outcome_with(i));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_LE(stats.size, 32 + 4);  // capacity + one-per-shard slack
}

// ---------------------------------------------------- ThreadSafeQueue

TEST(ThreadSafeQueue, FifoWithinSingleProducer) {
  ThreadSafeQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::optional<int>(3));
}

TEST(ThreadSafeQueue, TryPushRespectsCapacity) {
  ThreadSafeQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_TRUE(q.try_push(3));
}

TEST(ThreadSafeQueue, CloseDrainsThenReturnsNullopt) {
  ThreadSafeQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));  // rejected after close
  EXPECT_EQ(q.pop(), std::optional<int>(7));
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(ThreadSafeQueue, CloseWakesBlockedConsumer) {
  ThreadSafeQueue<int> q;
  std::thread consumer([&q] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();
}

TEST(ThreadSafeQueue, BoundedHandoffDeliversEverythingInOrder) {
  // Producer outruns a capacity-4 queue; backpressure must not drop or
  // reorder.
  ThreadSafeQueue<int> q(4);
  constexpr int kItems = 1000;
  std::vector<int> got;
  got.reserve(kItems);
  std::thread consumer([&q, &got] {
    while (auto v = q.pop()) {
      got.push_back(*v);
    }
  });
  for (int i = 0; i < kItems; ++i) {
    EXPECT_TRUE(q.push(i));
  }
  q.close();
  consumer.join();
  ASSERT_EQ(got.size(), kItems);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

// ------------------------------------------------- ThreadPool pending

TEST(ThreadPool, PendingTracksSubmittedMinusFinished) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.pending(), 0);
  std::atomic<bool> release{false};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.submit([&release] {
      while (!release.load()) {
        std::this_thread::yield();
      }
    }));
  }
  EXPECT_EQ(pool.pending(), 4);  // 2 running + 2 queued
  release.store(true);
  for (auto& f : futures) f.get();
  // Workers decrement after completing the job body; getting the
  // future guarantees the body ran, then the counter lands at 0.
  while (pool.pending() != 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(pool.pending(), 0);
}

}  // namespace
}  // namespace oregami::server
