#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "oregami/arch/topology_spec.hpp"
#include "oregami/core/mapping_io.hpp"
#include "oregami/core/synthetic.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/multilevel.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

constexpr std::uint64_t kSeed = 0x317EULL;

TEST(Multilevel, ProducesValidMappingOnStencil) {
  const TaskGraph graph = make_stencil2d(20, 20, kSeed);
  const Topology topo = Topology::torus(4, 4);
  const MapperReport report = map_multilevel(graph, topo);
  EXPECT_NO_THROW(validate_mapping(report.mapping, graph, topo));
  EXPECT_EQ(report.strategy, MapStrategy::Multilevel);
  EXPECT_GT(completion_time(graph, report.mapping.proc_of_task(),
                            report.mapping.routing, topo),
            0);
  EXPECT_NE(report.details.find("multilevel V-cycle"), std::string::npos);
}

TEST(Multilevel, ProducesValidMappingOnLarcsProgram) {
  const auto cp = larcs::compile_source(larcs::programs::nbody(),
                                        {{"n", 15}, {"s", 4}, {"m", 8}});
  const Topology topo = parse_topology_spec("mesh:4x4");
  MultilevelOptions ml;
  const MapperReport report = map_multilevel(cp.graph, topo, ml);
  EXPECT_NO_THROW(validate_mapping(report.mapping, cp.graph, topo));
  // The mapping scores finitely under the real model.
  EXPECT_GE(completion_time(cp.graph, report.mapping.proc_of_task(),
                            report.mapping.routing, topo),
            0);
}

TEST(Multilevel, BitIdenticalAcrossJobs) {
  // The determinism contract: jobs only changes wall time, never the
  // mapping. Compare full serialised mappings across 1 / auto / 5.
  const TaskGraph graph = make_random_geometric(600, 0.06, kSeed);
  const Topology topo = Topology::torus(8, 8);
  std::vector<std::string> texts;
  for (const int jobs : {1, 0, 5}) {
    MultilevelOptions ml;
    ml.jobs = jobs;
    const MapperReport report = map_multilevel(graph, topo, ml);
    texts.push_back(mapping_to_string(report.mapping, topo.num_procs()));
  }
  EXPECT_EQ(texts[0], texts[1]);
  EXPECT_EQ(texts[0], texts[2]);
}

TEST(Multilevel, RefinementNeverWorsensProjectedStart) {
  // Each committed move is re-probed with delta_move and applied only
  // when strictly improving, so the final completion can never exceed
  // a run with refinement disabled (rounds = 0 keeps just the
  // projected coarse placement).
  const TaskGraph graph = make_power_law(800, 3, kSeed);
  const Topology topo = Topology::torus(8, 8);
  MultilevelOptions no_refine;
  no_refine.refine_rounds = 0;
  const MapperReport projected = map_multilevel(graph, topo, no_refine);
  const MapperReport refined = map_multilevel(graph, topo);
  EXPECT_LE(completion_time(graph, refined.mapping.proc_of_task(),
                            refined.mapping.routing, topo),
            completion_time(graph, projected.mapping.proc_of_task(),
                            projected.mapping.routing, topo));
  EXPECT_NO_THROW(validate_mapping(refined.mapping, graph, topo));
}

TEST(Multilevel, LevelCapIsHonored) {
  const TaskGraph graph = make_stencil2d(16, 16, kSeed);
  const Topology topo = Topology::mesh(4, 4);
  MultilevelOptions shallow;
  shallow.max_levels = 1;
  const MapperReport report = map_multilevel(graph, topo, shallow);
  EXPECT_NO_THROW(validate_mapping(report.mapping, graph, topo));
  // One coarsening step caps the hierarchy at two graphs (fine+coarse).
  EXPECT_NE(report.details.find("2 level(s)"), std::string::npos);
}

TEST(Multilevel, ExpiredBudgetStillReturnsValidMapping) {
  const TaskGraph graph = make_stencil2d(16, 16, kSeed);
  const Topology topo = Topology::mesh(4, 4);
  MultilevelOptions expired;
  expired.time_budget_ms = -1;
  const MapperReport report = map_multilevel(graph, topo, expired);
  EXPECT_NO_THROW(validate_mapping(report.mapping, graph, topo));
}

TEST(Multilevel, RejectsDegenerateInputs) {
  const Topology topo = Topology::mesh(2, 2);
  EXPECT_THROW((void)map_multilevel(TaskGraph{}, topo), MappingError);
  // Multi-processor topology with no links cannot route.
  const Topology linkless = Topology::custom("linkless", Graph(3));
  const TaskGraph graph = make_stencil2d(4, 4, kSeed);
  EXPECT_THROW((void)map_multilevel(graph, linkless), MappingError);
}

TEST(Multilevel, DriverDispatchesWhenEnabled) {
  const auto cp = larcs::compile_source(larcs::programs::nbody(),
                                        {{"n", 15}, {"s", 4}, {"m", 8}});
  const Topology topo = parse_topology_spec("mesh:4x4");
  MapperOptions options;
  options.multilevel = -1;  // auto depth
  const MapperReport report = map_computation(cp.graph, topo, options);
  EXPECT_EQ(report.strategy, MapStrategy::Multilevel);
  EXPECT_NO_THROW(validate_mapping(report.mapping, cp.graph, topo));
  // Off by default: the driver keeps its seed strategy selection.
  const MapperReport off = map_computation(cp.graph, topo);
  EXPECT_NE(off.strategy, MapStrategy::Multilevel);
}

TEST(Multilevel, SingleProcessorTopology) {
  const TaskGraph graph = make_stencil2d(6, 6, kSeed);
  const Topology topo = Topology::custom("single", Graph(1));
  const MapperReport report = map_multilevel(graph, topo);
  EXPECT_NO_THROW(validate_mapping(report.mapping, graph, topo));
  for (const int p : report.mapping.proc_of_task()) {
    EXPECT_EQ(p, 0);
  }
}

}  // namespace
}  // namespace oregami
