// Exhaustive equivalence of the closed-form distance oracles against
// BFS ground truth (a Custom topology built from the same link graph),
// for every TopoFamily across a sweep of shapes reaching P >= 256 per
// family, plus diameter() cross-checks and a concurrency test on the
// unwarmed Custom lazy table.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <thread>
#include <utility>
#include <vector>

#include "oregami/arch/topology.hpp"
#include "oregami/graph/shortest_paths.hpp"

namespace oregami {
namespace {

/// Checks every pair (u, v) of `topo` against BFS on its own link
/// graph, plus diameter() and DistanceRow consistency.
void expect_oracle_matches_bfs(const Topology& topo) {
  SCOPED_TRACE(topo.name());
  const int p = topo.num_procs();
  int true_diameter = 0;
  for (int u = 0; u < p; ++u) {
    const std::vector<int> truth = bfs_distances(topo.graph(), u);
    const DistanceRow row = topo.distance_row(u);
    EXPECT_EQ(row.source(), u);
    for (int v = 0; v < p; ++v) {
      ASSERT_EQ(topo.distance(u, v), truth[static_cast<std::size_t>(v)])
          << "u=" << u << " v=" << v;
      ASSERT_EQ(row[v], truth[static_cast<std::size_t>(v)])
          << "u=" << u << " v=" << v;
      true_diameter =
          std::max(true_diameter, truth[static_cast<std::size_t>(v)]);
    }
    ASSERT_EQ(topo.distance(u, u), 0);
  }
  EXPECT_EQ(topo.diameter(), true_diameter);
}

TEST(DistanceOracle, Ring) {
  for (const int p : {3, 4, 5, 6, 7, 8, 13, 32, 256, 257}) {
    expect_oracle_matches_bfs(Topology::ring(p));
  }
}

TEST(DistanceOracle, Chain) {
  for (const int p : {1, 2, 3, 4, 7, 8, 19, 64, 256}) {
    expect_oracle_matches_bfs(Topology::chain(p));
  }
}

TEST(DistanceOracle, Mesh) {
  for (const auto [r, c] : std::vector<std::pair<int, int>>{
           {1, 1}, {1, 7}, {2, 2}, {3, 5}, {4, 4}, {5, 3}, {8, 8},
           {16, 16}, {2, 128}}) {
    expect_oracle_matches_bfs(Topology::mesh(r, c));
  }
}

TEST(DistanceOracle, Torus) {
  for (const auto [r, c] : std::vector<std::pair<int, int>>{
           {3, 3}, {3, 4}, {4, 4}, {3, 7}, {5, 5}, {4, 6}, {8, 8},
           {16, 16}, {3, 86}}) {
    expect_oracle_matches_bfs(Topology::torus(r, c));
  }
}

TEST(DistanceOracle, Hypercube) {
  for (int dim = 0; dim <= 8; ++dim) {
    expect_oracle_matches_bfs(Topology::hypercube(dim));
  }
}

TEST(DistanceOracle, CompleteBinaryTree) {
  for (int levels = 1; levels <= 8; ++levels) {  // levels 8 -> 255 nodes
    expect_oracle_matches_bfs(Topology::complete_binary_tree(levels));
  }
}

TEST(DistanceOracle, Star) {
  for (const int p : {2, 3, 4, 5, 17, 64, 256}) {
    expect_oracle_matches_bfs(Topology::star(p));
  }
}

TEST(DistanceOracle, Complete) {
  for (const int p : {2, 3, 4, 9, 33, 256}) {
    expect_oracle_matches_bfs(Topology::complete(p));
  }
}

TEST(DistanceOracle, Butterfly) {
  for (int k = 1; k <= 6; ++k) {  // k = 6 -> 448 switches
    expect_oracle_matches_bfs(Topology::butterfly(k));
  }
}

TEST(DistanceOracle, Mesh3D) {
  for (const auto [x, y, z] : std::vector<std::array<int, 3>>{
           {1, 1, 1}, {2, 2, 2}, {1, 4, 2}, {3, 3, 3}, {4, 4, 4},
           {5, 2, 7}, {8, 8, 4}}) {
    expect_oracle_matches_bfs(Topology::mesh3d(x, y, z));
  }
}

TEST(DistanceOracle, CustomMatchesItsOwnBfs) {
  // A Custom topology is the ground truth path -- still verify the flat
  // table agrees with per-row BFS and diameter.
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(2, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  expect_oracle_matches_bfs(Topology::custom("bowtie", std::move(g)));
}

TEST(DistanceOracle, CustomDisconnectedReportsMinusOne) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const Topology topo = Topology::custom("split", std::move(g));
  EXPECT_EQ(topo.distance(0, 1), 1);
  EXPECT_EQ(topo.distance(0, 2), -1);
  EXPECT_EQ(topo.distance(3, 1), -1);
}

TEST(DistanceOracle, CopiesShareTheCustomTable) {
  Graph g(5);
  for (int i = 0; i + 1 < 5; ++i) {
    g.add_edge(i, i + 1);
  }
  const Topology original = Topology::custom("path5", std::move(g));
  const Topology copy = original;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(original.distance(0, 4), 4);
  EXPECT_EQ(copy.distance(0, 4), 4);
  EXPECT_EQ(copy.diameter(), 4);
}

// Regular families must answer distance queries without ever touching
// lazy state; Custom publishes its table under std::call_once. Hammer
// an unwarmed topology from many threads (run under TSan in CI).
TEST(DistanceOracleThreads, UnwarmedConcurrentQueries) {
  Graph g(64);
  for (int i = 0; i < 64; ++i) {
    g.add_edge(i, (i + 1) % 64);
    g.add_edge(i, (i + 7) % 64);
  }
  const Topology custom = Topology::custom("chordal64", std::move(g));
  const Topology mesh = Topology::mesh(8, 8);

  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::vector<int> checksums(kThreads, 0);
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      int sum = 0;
      for (int u = 0; u < 64; ++u) {
        const DistanceRow row = custom.distance_row(u);
        for (int v = 0; v < 64; ++v) {
          sum += row[v] + mesh.distance(u, v);
        }
      }
      sum += custom.diameter() + mesh.diameter();
      checksums[static_cast<std::size_t>(w)] = sum;
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  for (int w = 1; w < kThreads; ++w) {
    EXPECT_EQ(checksums[static_cast<std::size_t>(w)], checksums[0]);
  }
}

}  // namespace
}  // namespace oregami
