#include <gtest/gtest.h>

#include "oregami/mapper/baselines.hpp"
#include "oregami/mapper/nn_embed.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

Graph weighted_ring(int n, std::int64_t w = 5) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    g.add_edge(i, (i + 1) % n, w);
  }
  return g;
}

TEST(NnEmbed, RejectsTooManyClusters) {
  EXPECT_THROW((void)nn_embed(Graph(5), Topology::ring(4)), MappingError);
}

TEST(NnEmbed, EmptyClusterGraph) {
  const auto e = nn_embed(Graph(0), Topology::ring(4));
  EXPECT_TRUE(e.proc_of_cluster.empty());
}

TEST(NnEmbed, NoCommunicationFillsInOrder) {
  const auto e = nn_embed(Graph(3), Topology::ring(5));
  EXPECT_EQ(e.proc_of_cluster, (std::vector<int>{0, 1, 2}));
}

TEST(NnEmbed, HeaviestPairPlacedAdjacent) {
  Graph g(4);
  g.add_edge(0, 1, 100);
  g.add_edge(2, 3, 1);
  const auto topo = Topology::mesh(2, 2);
  const auto e = nn_embed(g, topo);
  EXPECT_EQ(topo.distance(e.proc_of_cluster[0], e.proc_of_cluster[1]), 1);
}

TEST(NnEmbed, IsValidInjection) {
  SplitMix64 rng(3);
  Graph g(8);
  for (int u = 0; u < 8; ++u) {
    for (int v = u + 1; v < 8; ++v) {
      if (rng.next_double() < 0.4) {
        g.add_edge(u, v, rng.next_in(1, 9));
      }
    }
  }
  const auto topo = Topology::hypercube(3);
  const auto e = nn_embed(g, topo);
  EXPECT_NO_THROW(e.validate(topo.num_procs()));
}

TEST(NnEmbed, DeterministicAcrossCalls) {
  const Graph g = weighted_ring(6);
  const auto topo = Topology::mesh(2, 3);
  const auto a = nn_embed(g, topo);
  const auto b = nn_embed(g, topo);
  EXPECT_EQ(a.proc_of_cluster, b.proc_of_cluster);
}

TEST(NnEmbed, BeatsRandomEmbeddingOnWeightedDilation) {
  // NN-Embed's greedy objective should comfortably beat the median
  // random embedding on a structured cluster graph.
  const Graph g = weighted_ring(12);
  const auto topo = Topology::mesh(3, 4);
  const auto greedy = nn_embed(g, topo);
  const auto greedy_cost = weighted_dilation(g, greedy, topo);
  int wins = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto random = random_embedding(12, topo, seed);
    if (greedy_cost <= weighted_dilation(g, random, topo)) {
      ++wins;
    }
  }
  EXPECT_GE(wins, 8);
}

TEST(NnEmbed, RingClusterGraphOntoRingNearPerfect) {
  const Graph g = weighted_ring(8);
  const auto topo = Topology::ring(8);
  const auto e = nn_embed(g, topo);
  // Perfect embedding costs 8 edges x weight 5 x distance 1 = 40;
  // greedy may lose a little but must stay well under 2x.
  EXPECT_LE(weighted_dilation(g, e, topo), 80);
}

TEST(WeightedDilation, ComputesSum) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  Embedding e;
  e.proc_of_cluster = {0, 2, 4};  // on a 5-ring: distances 2 and 2
  const auto topo = Topology::ring(5);
  EXPECT_EQ(weighted_dilation(g, e, topo), 2 * 2 + 3 * 2);
}

// --- baselines used by the benches ----------------------------------------

TEST(Baselines, RoundRobinAndBlockContraction) {
  const auto rr = round_robin_contraction(10, 3);
  EXPECT_EQ(rr.num_clusters, 3);
  EXPECT_EQ(rr.cluster_of_task[4], 1);
  EXPECT_NO_THROW(rr.validate(10));

  const auto blocks = block_contraction(10, 3);
  EXPECT_EQ(blocks.num_clusters, 3);
  EXPECT_EQ(blocks.cluster_of_task[0], 0);
  EXPECT_EQ(blocks.cluster_of_task[9], 2);
  EXPECT_NO_THROW(blocks.validate(10));
}

TEST(Baselines, RandomEmbeddingIsInjective) {
  const auto topo = Topology::mesh(3, 3);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto e = random_embedding(7, topo, seed);
    EXPECT_NO_THROW(e.validate(9));
  }
}

TEST(Baselines, IdentityEmbedding) {
  const auto e = identity_embedding(4);
  EXPECT_EQ(e.proc_of_cluster, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace oregami
