#include <gtest/gtest.h>

#include <set>

#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/systolic.hpp"

namespace oregami {
namespace {

using larcs::compile;
using larcs::parse_program;

TEST(Systolic, MatmulSynthesis) {
  const auto ast = parse_program(larcs::programs::matmul_systolic());
  const auto cp = compile(ast, {{"n", 4}});
  const auto m = systolic_map(ast, cp);
  ASSERT_TRUE(m.has_value());
  // Dependences (1,0,0), (0,1,0), (0,0,1): the classic schedule is
  // lambda = (1,1,1) with makespan 3(n-1)+1 = 10.
  EXPECT_EQ(m->schedule, (std::vector<long>{1, 1, 1}));
  EXPECT_EQ(m->makespan, 10);
  // Projection along one axis: n^2 = 16 PEs.
  EXPECT_EQ(m->contraction.num_clusters, 16);
  EXPECT_EQ(m->pe_extent, (std::vector<long>{4, 4}));
  EXPECT_EQ(m->contraction.max_cluster_size(), 4);
}

TEST(Systolic, ScheduleRespectsDependences) {
  const auto ast = parse_program(larcs::programs::matmul_systolic());
  const auto cp = compile(ast, {{"n", 3}});
  const auto m = systolic_map(ast, cp);
  ASSERT_TRUE(m.has_value());
  // Every comm edge must advance time by at least one step.
  for (const auto& phase : cp.graph.comm_phases()) {
    for (const auto& e : phase.edges) {
      const long ts = m->time_of(cp.graph.task_label(e.src));
      const long td = m->time_of(cp.graph.task_label(e.dst));
      EXPECT_GE(td - ts, 1);
    }
  }
}

TEST(Systolic, NoTimeCollisionOnAnyPe) {
  const auto ast = parse_program(larcs::programs::matmul_systolic());
  const auto cp = compile(ast, {{"n", 3}});
  const auto m = systolic_map(ast, cp);
  ASSERT_TRUE(m.has_value());
  std::set<std::pair<int, long>> seen;
  for (int t = 0; t < cp.graph.num_tasks(); ++t) {
    const int pe =
        m->contraction.cluster_of_task[static_cast<std::size_t>(t)];
    const long time = m->time_of(cp.graph.task_label(t));
    EXPECT_GE(time, 0);
    EXPECT_LT(time, m->makespan);
    EXPECT_TRUE(seen.insert({pe, time}).second)
        << "two tasks share PE " << pe << " at step " << time;
  }
}

TEST(Systolic, JacobiBidirectionalStencilHasNoSchedule) {
  // Jacobi passes the syntactic affine checks but its dependences run
  // in both directions of each axis ((1,0) and (-1,0)), so no linear
  // schedule exists; the mapper must fall through to another strategy.
  const auto ast = parse_program(larcs::programs::jacobi());
  const auto cp = compile(ast, {{"n", 4}, {"iters", 1}});
  EXPECT_FALSE(systolic_map(ast, cp).has_value());
}

TEST(Systolic, TwoDimensionalWavefront) {
  const auto ast = parse_program(
      "algorithm wave(n);\n"
      "nodetype x[i: 0 .. n-1, j: 0 .. n-1];\n"
      "comphase flow {\n"
      "  x(i, j) -> x(i + 1, j) when i < n - 1;\n"
      "  x(i, j) -> x(i, j + 1) when j < n - 1;\n"
      "}\n");
  const auto cp = compile(ast, {{"n", 5}});
  const auto m = systolic_map(ast, cp);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->schedule, (std::vector<long>{1, 1}));
  EXPECT_EQ(m->makespan, 9);  // 2(n-1) + 1
  // Projection along one axis: a 5-PE linear array.
  EXPECT_EQ(m->contraction.num_clusters, 5);
  EXPECT_EQ(m->pe_extent, std::vector<long>{5});
}

TEST(Systolic, NonAffineProgramRejected) {
  const auto ast = parse_program(larcs::programs::nbody());
  const auto cp = compile(ast, {{"n", 15}, {"s", 1}, {"m", 1}});
  EXPECT_FALSE(systolic_map(ast, cp).has_value());
}

TEST(Systolic, ContradictoryDependencesInfeasible) {
  // i -> i+1 and i -> i-1 in the same direction admit no schedule.
  const auto ast = parse_program(
      "algorithm t(n);\n"
      "nodetype x[i: 0 .. n-1];\n"
      "comphase fwd { x(i) -> x(i + 1) when i < n - 1; }\n"
      "comphase bwd { x(i) -> x(i - 1) when i > 0; }\n");
  const auto cp = compile(ast, {{"n", 6}});
  EXPECT_FALSE(systolic_map(ast, cp).has_value());
}

TEST(Systolic, OneDimensionalPipeline) {
  const auto ast = parse_program(
      "algorithm t(n);\n"
      "nodetype x[i: 0 .. n-1];\n"
      "comphase fwd { x(i) -> x(i + 1) when i < n - 1; }\n");
  const auto cp = compile(ast, {{"n", 8}});
  const auto m = systolic_map(ast, cp);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->schedule, std::vector<long>{1});
  EXPECT_EQ(m->makespan, 8);
  EXPECT_EQ(m->contraction.num_clusters, 1);  // projection along i
}

TEST(Systolic, DescriptionMentionsScheduleAndPes) {
  const auto ast = parse_program(larcs::programs::matmul_systolic());
  const auto cp = compile(ast, {{"n", 4}});
  const auto m = systolic_map(ast, cp);
  ASSERT_TRUE(m.has_value());
  EXPECT_NE(m->description.find("lambda"), std::string::npos);
  EXPECT_NE(m->description.find("PEs"), std::string::npos);
}

}  // namespace
}  // namespace oregami
