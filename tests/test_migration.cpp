#include <gtest/gtest.h>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/migration.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

/// Two phases wanting opposite placements: a ring phase and a
/// "reversal" phase pairing i with n-1-i. A static mapping cannot make
/// both local; per-phase migration can.
TaskGraph conflicting_phases(int n, std::int64_t volume) {
  TaskGraph g;
  for (int i = 0; i < n; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int ring = g.add_comm_phase("ring");
  for (int i = 0; i < n; ++i) {
    g.add_comm_edge(ring, i, (i + 1) % n, volume);
  }
  const int rev = g.add_comm_phase("reverse");
  for (int i = 0; i < n / 2; ++i) {
    g.add_comm_edge(rev, i, n - 1 - i, volume);
    g.add_comm_edge(rev, n - 1 - i, i, volume);
  }
  g.set_phase_expr(PhaseTree::repeat(
      PhaseTree::seq({PhaseTree::comm(0), PhaseTree::comm(1)}), 50));
  return g;
}

TEST(Linearize, ExpandsRepeatsAndSequences) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int p0 = g.add_comm_phase("p0");
  g.add_comm_edge(p0, 0, 1);
  const int p1 = g.add_comm_phase("p1");
  g.add_comm_edge(p1, 1, 0);
  g.add_exec_phase("w", {1, 1});
  g.set_phase_expr(PhaseTree::repeat(
      PhaseTree::seq(
          {PhaseTree::comm(0), PhaseTree::exec(0), PhaseTree::comm(1)}),
      3));
  const auto steps = linearize_phase_expr(g, 1000);
  ASSERT_EQ(steps.size(), 9u);
  EXPECT_EQ(steps[0], 0);
  EXPECT_EQ(steps[1], ~0);
  EXPECT_EQ(steps[2], 1);
  EXPECT_EQ(steps[3], 0);
}

TEST(Linearize, IdleFallsBackToAllPhasesOnce) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int p0 = g.add_comm_phase("p0");
  g.add_comm_edge(p0, 0, 1);
  g.add_exec_phase("w", {1, 1});
  const auto steps = linearize_phase_expr(g, 1000);
  EXPECT_EQ(steps, (std::vector<int>{0, ~0}));
}

TEST(Linearize, CapEnforced) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int p0 = g.add_comm_phase("p0");
  g.add_comm_edge(p0, 0, 1);
  g.set_phase_expr(PhaseTree::repeat(PhaseTree::comm(0), 1'000'000));
  EXPECT_THROW((void)linearize_phase_expr(g, 1000), MappingError);
}

TEST(Migration, CheapMigrationWinsOnConflictingPhases) {
  // Heavy messages make the phase-shift penalty dominate the (cheap)
  // task moves: the reversal phase is free under its own placement but
  // expensive under any ring-friendly static placement.
  const auto g = conflicting_phases(16, 200);
  const auto topo = Topology::ring(8);
  MigrationConfig config;
  config.cost_per_task_move = 1;  // cheap moves
  const auto report = evaluate_phase_migration(g, topo, config);
  EXPECT_GT(report.migrations, 0);
  EXPECT_GT(report.task_moves, 0);
  EXPECT_EQ(report.placement_per_comm_phase.size(), 2u);
  EXPECT_TRUE(report.migration_wins())
      << "migrating " << report.migrating_time << " vs static "
      << report.static_time;
}

TEST(Migration, ExpensiveMigrationLosesEventually) {
  const auto g = conflicting_phases(16, 1);  // tiny volumes
  const auto topo = Topology::ring(8);
  MigrationConfig config;
  config.cost_per_task_move = 100'000;  // prohibitive moves
  const auto report = evaluate_phase_migration(g, topo, config);
  EXPECT_FALSE(report.migration_wins());
}

TEST(Migration, NoMigrationWhenPhasesAgree) {
  // A plain ring workload: every phase wants the same placement, so
  // after the initial placement there is nothing to move.
  const auto cp = larcs::compile_source(larcs::programs::ring_pipeline(),
                                        {{"n", 16}, {"stages", 10}});
  const auto topo = Topology::ring(8);
  const auto report = evaluate_phase_migration(cp.graph, topo);
  EXPECT_EQ(report.task_moves, 0);
  EXPECT_EQ(report.migrations, 0);
}

TEST(Migration, PlacementsCoverEveryTaskWithinProcessorRange) {
  const auto cp = larcs::compile_source(larcs::programs::nbody(),
                                        {{"n", 16}, {"s", 2}, {"m", 4}});
  const auto topo = Topology::hypercube(3);
  const auto report = evaluate_phase_migration(cp.graph, topo);
  ASSERT_EQ(report.placement_per_comm_phase.size(), 2u);
  for (const auto& placement : report.placement_per_comm_phase) {
    ASSERT_EQ(placement.size(), 16u);
    for (const int p : placement) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 8);
    }
  }
  EXPECT_GT(report.static_time, 0);
  EXPECT_GT(report.migrating_time, 0);
}

}  // namespace
}  // namespace oregami
