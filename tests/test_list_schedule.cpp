// Tests for the HEFT-style critical-path list scheduler
// (mapper/list_schedule.hpp): hand-computed upward ranks on a classic
// diamond DAG, SCC condensation on cyclic LaRCS graphs, pinned rank
// orders for the paper's Fig-2 examples, EFT placement validity, the
// 0/-1/positive deadline idiom, and the portfolio candidate wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/list_schedule.hpp"
#include "oregami/mapper/portfolio.hpp"

namespace oregami {
namespace {

struct Compiled {
  larcs::Program ast;
  larcs::CompiledProgram cp;
};

Compiled compile_named(const std::string& name,
                       std::map<std::string, long> bindings) {
  for (const auto& entry : larcs::programs::catalog()) {
    if (entry.name == name) {
      larcs::Program ast = larcs::parse_program(entry.source);
      larcs::CompiledProgram cp = larcs::compile(ast, bindings);
      return {std::move(ast), std::move(cp)};
    }
  }
  throw std::runtime_error("program not in catalog: " + name);
}

// -------------------------------------------------------- upward ranks

// The textbook diamond: 0 -> {1, 2} -> 3 with exec weights [2, 3, 4, 5]
// and volumes 0->1: 4, 0->2: 6, 1->3: 3, 2->3: 1. Under the default
// cost model c(e) = vol + 1 hop, classic HEFT gives
//   rank(3) = 5
//   rank(1) = 3 + (3+1) + 5 = 12
//   rank(2) = 4 + (1+1) + 5 = 11
//   rank(0) = 2 + max(4+1+12, 6+1+11) = 20
TEST(HeftRanks, HandComputedDiamondDag) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int comm = g.add_comm_phase("c");
  g.add_comm_edge(comm, 0, 1, 4);
  g.add_comm_edge(comm, 0, 2, 6);
  g.add_comm_edge(comm, 1, 3, 3);
  g.add_comm_edge(comm, 2, 3, 1);
  g.add_exec_phase("e", {2, 3, 4, 5});
  g.validate();

  const std::vector<std::int64_t> expected = {20, 12, 11, 5};
  EXPECT_EQ(heft_upward_ranks(g), expected);
}

// A 2-cycle condenses to one macro-task: base = 1 + 1 (exec) + (2+1) +
// (2+1) (serialised internal comm) = 8; the cross edge to the sink adds
// (1+1) + rank(sink) = 2 + 1. Both cycle members inherit rank 11.
TEST(HeftRanks, CyclicGraphCondensesToMacroTasks) {
  TaskGraph g;
  for (int i = 0; i < 3; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int comm = g.add_comm_phase("c");
  g.add_comm_edge(comm, 0, 1, 2);
  g.add_comm_edge(comm, 1, 0, 2);
  g.add_comm_edge(comm, 1, 2, 1);
  g.add_exec_phase("e", {1, 1, 1});
  g.validate();

  const std::vector<std::int64_t> expected = {11, 11, 1};
  EXPECT_EQ(heft_upward_ranks(g), expected);
}

// Phase-expression multiplicities scale both exec and comm weights:
// repeating (comm; exec) 3 times triples every rank contribution.
TEST(HeftRanks, FoldsPhaseExpressionMultiplicities) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int comm = g.add_comm_phase("c");
  g.add_comm_edge(comm, 0, 1, 5);
  const int exec = g.add_exec_phase("e", {2, 4});
  g.validate();
  // Without an expression: rank(b) = 4, rank(a) = 2 + (5+1) + 4 = 12.
  const std::vector<std::int64_t> once = {12, 4};
  EXPECT_EQ(heft_upward_ranks(g), once);

  g.set_phase_expr(PhaseTree::repeat(
      PhaseTree::seq({PhaseTree::comm(comm), PhaseTree::exec(exec)}), 3));
  // Tripled volumes/costs: rank(b) = 12, rank(a) = 6 + (15+1) + 12 = 34.
  const std::vector<std::int64_t> thrice = {34, 12};
  EXPECT_EQ(heft_upward_ranks(g), thrice);
}

TEST(HeftRanks, RanksRespectTopologicalDominance) {
  // On a DAG, rank(u) > rank(succ(u)) whenever u has positive weight:
  // the recurrence adds w(u) + c(e) on top of the successor's rank.
  TaskGraph g;
  for (int i = 0; i < 6; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int comm = g.add_comm_phase("c");
  for (int i = 0; i + 1 < 6; ++i) {
    g.add_comm_edge(comm, i, i + 1, 2);
  }
  g.add_exec_phase("e", {1, 1, 1, 1, 1, 1});
  g.validate();
  const auto rank = heft_upward_ranks(g);
  for (int i = 0; i + 1 < 6; ++i) {
    EXPECT_GT(rank[static_cast<std::size_t>(i)],
              rank[static_cast<std::size_t>(i + 1)]);
  }
}

// Pinned rank order for the paper's Fig-2 n-body pipeline (n=15, s=4,
// m=8). The synchronous exchange phases make the whole 15-task graph
// one strongly connected component, so every task inherits the single
// macro-task rank (12450: all exec weight + serialised exchange
// traffic) and the placement order falls back to ascending task id.
TEST(HeftRanks, UpwardRankOrderPinnedOnFig2Nbody) {
  const auto c = compile_named("nbody", {{"n", 15}, {"s", 4}, {"m", 8}});
  const ListScheduleResult r =
      list_schedule(c.cp.graph, Topology::mesh(4, 4));
  ASSERT_EQ(r.rank.size(), 15u);
  for (const std::int64_t v : r.rank) {
    EXPECT_EQ(v, 12450);
  }
  const std::vector<int> expected_order = {0, 1,  2,  3,  4,  5,  6, 7,
                                           8, 9, 10, 11, 12, 13, 14};
  EXPECT_EQ(r.order, expected_order);
}

// Pinned rank order for the Fig-2 Jacobi relaxation (n=8, iters=10):
// the bidirectional neighbour exchanges likewise condense the 64-task
// grid into one SCC with shared rank 5664 and id-ordered placement.
TEST(HeftRanks, UpwardRankOrderPinnedOnJacobi) {
  const auto c = compile_named("jacobi", {{"n", 8}, {"iters", 10}});
  const ListScheduleResult r =
      list_schedule(c.cp.graph, Topology::mesh(4, 4));
  ASSERT_EQ(r.rank.size(), 64u);
  for (const std::int64_t v : r.rank) {
    EXPECT_EQ(v, 5664);
  }
  ASSERT_EQ(r.order.size(), 64u);
  for (int t = 0; t < 64; ++t) {
    EXPECT_EQ(r.order[static_cast<std::size_t>(t)], t);
  }
}

// ---------------------------------------------------------- placement

TEST(ListSchedule, PlacementIsValidAndDeterministic) {
  const auto c = compile_named("nbody", {{"n", 15}, {"s", 4}, {"m", 8}});
  const Topology topo = Topology::mesh(4, 4);
  const ListScheduleResult a = list_schedule(c.cp.graph, topo);
  ASSERT_EQ(a.proc_of_task.size(),
            static_cast<std::size_t>(c.cp.graph.num_tasks()));
  for (const int p : a.proc_of_task) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, topo.num_procs());
  }
  // The placement order is a permutation of the task ids.
  std::vector<int> sorted = a.order;
  std::sort(sorted.begin(), sorted.end());
  for (int t = 0; t < c.cp.graph.num_tasks(); ++t) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(t)], t);
  }
  // Makespan covers every finish time.
  for (const std::int64_t f : a.finish) {
    EXPECT_LE(f, a.makespan);
  }
  const ListScheduleResult b = list_schedule(c.cp.graph, topo);
  EXPECT_EQ(a.proc_of_task, b.proc_of_task);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.finish, b.finish);
}

TEST(ListSchedule, SingleProcessorSerialisesEverything) {
  const auto c = compile_named("jacobi", {{"n", 4}, {"iters", 2}});
  const ListScheduleResult r =
      list_schedule(c.cp.graph, Topology::ring(3));
  for (const int p : r.proc_of_task) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

// The 0 / -1 / positive deadline idiom: 0 never reads the clock; a
// negative budget deterministically places EVERY task by the fallback
// rule; a generous positive budget matches the no-deadline result.
TEST(ListSchedule, DeadlineIdiom) {
  const auto c = compile_named("nbody", {{"n", 15}, {"s", 4}, {"m", 8}});
  const Topology topo = Topology::mesh(4, 4);

  ListScheduleOptions none;
  none.time_budget_ms = 0;
  const ListScheduleResult r_none = list_schedule(c.cp.graph, topo, none);
  EXPECT_EQ(r_none.deadline_degraded, 0);

  ListScheduleOptions expired;
  expired.time_budget_ms = -1;
  const ListScheduleResult r_expired =
      list_schedule(c.cp.graph, topo, expired);
  EXPECT_EQ(r_expired.deadline_degraded, c.cp.graph.num_tasks());
  const ListScheduleResult r_expired2 =
      list_schedule(c.cp.graph, topo, expired);
  EXPECT_EQ(r_expired.proc_of_task, r_expired2.proc_of_task);
  // Fallback least-ready placement still visits tasks in rank order.
  EXPECT_EQ(r_expired.order, r_none.order);

  ListScheduleOptions generous;
  generous.time_budget_ms = 60'000;
  const ListScheduleResult r_generous =
      list_schedule(c.cp.graph, topo, generous);
  EXPECT_EQ(r_generous.deadline_degraded, 0);
  EXPECT_EQ(r_generous.proc_of_task, r_none.proc_of_task);
}

// ------------------------------------------------- portfolio candidate

TEST(ListSchedule, RunsAsPortfolioCandidateBehindHeftFlag) {
  const auto c = compile_named("nbody", {{"n", 15}, {"s", 4}, {"m", 8}});
  const Topology topo = Topology::mesh(4, 4);
  PortfolioOptions popts;
  popts.num_seeded = 2;
  popts.heft = true;
  const auto result =
      portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  const PortfolioCandidate* heft = nullptr;
  for (const auto& cand : result.candidates) {
    if (cand.label == "heft critical-path") {
      heft = &cand;
    }
  }
  ASSERT_NE(heft, nullptr);
  EXPECT_TRUE(heft->ok);
  EXPECT_EQ(heft->strategy, MapStrategy::ListSchedule);
  // The portfolio scored it with the real completion model and the
  // mapping validates like any other candidate's.
  EXPECT_GT(heft->completion, 0);

  // Off by default: without the flag the candidate does not exist.
  PortfolioOptions off;
  off.num_seeded = 2;
  const auto plain = portfolio_map_program(c.ast, c.cp, topo, {}, off);
  for (const auto& cand : plain.candidates) {
    EXPECT_NE(cand.label, "heft critical-path");
  }
}

}  // namespace
}  // namespace oregami
