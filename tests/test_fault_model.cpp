// FaultSpec / FaultedTopology unit tests: parsing grammar, normalise /
// validate behaviour, deterministic random specs, and the structural
// invariants of the degraded view (stable processor ids, exact link-id
// bijection, largest-component healthy set, route translation).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "oregami/arch/fault_model.hpp"
#include "oregami/arch/routes.hpp"
#include "oregami/arch/topology_spec.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

TEST(FaultSpec, ParsesEveryTokenKind) {
  const Topology topo = Topology::mesh(4, 4);
  const FaultSpec spec = FaultSpec::parse("p5,l0,s3:4", topo);
  EXPECT_EQ(spec.dead_procs, std::vector<int>{5});
  EXPECT_EQ(spec.dead_links, std::vector<int>{0});
  ASSERT_EQ(spec.slow_links.size(), 1u);
  EXPECT_EQ(spec.slow_links[0].link, 3);
  EXPECT_EQ(spec.slow_links[0].factor, 4);
}

TEST(FaultSpec, ParsesEndpointPairSyntax) {
  const Topology topo = Topology::ring(6);
  // In a ring, processors 2 and 3 share a link.
  const FaultSpec spec = FaultSpec::parse("l2-3,s4-5:7", topo);
  ASSERT_EQ(spec.dead_links.size(), 1u);
  ASSERT_EQ(spec.slow_links.size(), 1u);
  const auto [u1, v1] = topo.link_endpoints(spec.dead_links[0]);
  EXPECT_EQ(std::make_pair(std::min(u1, v1), std::max(u1, v1)),
            std::make_pair(2, 3));
  const auto [u2, v2] = topo.link_endpoints(spec.slow_links[0].link);
  EXPECT_EQ(std::make_pair(std::min(u2, v2), std::max(u2, v2)),
            std::make_pair(4, 5));
}

TEST(FaultSpec, RejectsMalformedTokens) {
  const Topology topo = Topology::ring(6);
  for (const char* bad :
       {"", "q1", "p", "pX", "p99", "l99", "l0-2", "s0", "s0:0", "s0:x",
        "p1,,p2", "rand:1x1", "rand:axbxc"}) {
    EXPECT_THROW((void)FaultSpec::parse(bad, topo), MappingError)
        << "accepted '" << bad << "'";
  }
}

TEST(FaultSpec, NormaliseSortsAndDeduplicates) {
  FaultSpec spec;
  spec.dead_procs = {3, 1, 3, 2};
  spec.dead_links = {5, 5, 0};
  spec.slow_links = {{2, 3}, {2, 2}};  // duplicate factors multiply
  spec.normalise();
  EXPECT_EQ(spec.dead_procs, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(spec.dead_links, (std::vector<int>{0, 5}));
  ASSERT_EQ(spec.slow_links.size(), 1u);
  EXPECT_EQ(spec.slow_links[0].factor, 6);
}

TEST(FaultSpec, ToStringRoundTrips) {
  const Topology topo = Topology::mesh(4, 4);
  FaultSpec spec = FaultSpec::parse("s3:4,p5,l0,p2", topo);
  const std::string text = spec.to_string();
  const FaultSpec again = FaultSpec::parse(text, topo);
  EXPECT_EQ(again.to_string(), text);
  EXPECT_EQ(again.dead_procs, spec.dead_procs);
  EXPECT_EQ(again.dead_links, spec.dead_links);
}

TEST(FaultSpec, RandomSpecIsDeterministicAndInRange) {
  const Topology topo = Topology::hypercube(4);
  const FaultSpec a = FaultSpec::random_spec(topo, 3, 4, 5, 42);
  const FaultSpec b = FaultSpec::random_spec(topo, 3, 4, 5, 42);
  EXPECT_EQ(a.to_string(), b.to_string());
  const FaultSpec c = FaultSpec::random_spec(topo, 3, 4, 5, 43);
  EXPECT_NE(a.to_string(), c.to_string());  // overwhelmingly likely
  EXPECT_EQ(a.dead_procs.size(), 3u);
  EXPECT_EQ(a.dead_links.size(), 4u);
  EXPECT_EQ(a.slow_links.size(), 5u);
  EXPECT_NO_THROW(a.validate(topo));
  // Dead and slowed links are disjoint.
  for (const SlowLink& s : a.slow_links) {
    EXPECT_EQ(std::find(a.dead_links.begin(), a.dead_links.end(), s.link),
              a.dead_links.end());
  }
}

TEST(FaultSpec, RandomSpecClampsToMachineSize) {
  const Topology topo = Topology::chain(3);  // 3 procs, 2 links
  const FaultSpec spec = FaultSpec::random_spec(topo, 99, 99, 99, 7);
  EXPECT_LE(spec.dead_procs.size(), 3u);
  EXPECT_LE(spec.dead_links.size(), 2u);
  EXPECT_NO_THROW(spec.validate(topo));
}

TEST(FaultedTopology, ProcessorIdsAreStable) {
  const Topology topo = Topology::mesh(4, 4);
  const FaultedTopology ft(topo, FaultSpec::parse("p5,p10", topo));
  EXPECT_EQ(ft.faulted().num_procs(), topo.num_procs());
  EXPECT_FALSE(ft.proc_alive(5));
  EXPECT_FALSE(ft.proc_alive(10));
  EXPECT_EQ(ft.num_alive_procs(), 14);
  // Dead processors are isolated in the degraded graph.
  for (int l = 0; l < ft.faulted().num_links(); ++l) {
    const auto [u, v] = ft.faulted().link_endpoints(l);
    EXPECT_NE(u, 5);
    EXPECT_NE(v, 5);
    EXPECT_NE(u, 10);
    EXPECT_NE(v, 10);
  }
}

TEST(FaultedTopology, LinkBijectionIsExact) {
  const Topology topo = Topology::torus(4, 4);
  const FaultedTopology ft(topo, FaultSpec::parse("l0,l7,p3", topo));
  int surviving = 0;
  for (int l = 0; l < topo.num_links(); ++l) {
    const int f = ft.faulted_link_of(l);
    if (ft.link_alive(l)) {
      ASSERT_GE(f, 0);
      EXPECT_EQ(ft.base_link_of(f), l);
      // Same endpoints in both numberings (processor ids are stable).
      EXPECT_EQ(ft.faulted().link_endpoints(f), topo.link_endpoints(l));
      ++surviving;
    } else {
      EXPECT_EQ(f, -1);
    }
  }
  EXPECT_EQ(surviving, ft.num_alive_links());
}

TEST(FaultedTopology, HealthyIsLargestComponent) {
  // Chain 0-1-2-3-4-5: killing link 2-3 splits {0,1,2} / {3,4,5};
  // the tie breaks toward the component with processor 0.
  const Topology topo = Topology::chain(6);
  const FaultedTopology ft(topo, FaultSpec::parse("l2-3", topo));
  EXPECT_FALSE(ft.fully_connected());
  EXPECT_EQ(ft.healthy_procs(), (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(ft.healthy(1));
  EXPECT_FALSE(ft.healthy(4));
  // Killing 0 and 1 as well leaves {3,4,5} as the largest component.
  const FaultedTopology ft2(topo, FaultSpec::parse("l2-3,p0,p1", topo));
  EXPECT_EQ(ft2.healthy_procs(), (std::vector<int>{3, 4, 5}));
}

TEST(FaultedTopology, EmptySpecIsFullyHealthy) {
  const Topology topo = Topology::hypercube(3);
  const FaultedTopology ft(topo, FaultSpec{});
  EXPECT_TRUE(ft.fully_connected());
  EXPECT_EQ(ft.num_alive_procs(), 8);
  EXPECT_EQ(ft.num_alive_links(), topo.num_links());
  EXPECT_EQ(static_cast<int>(ft.healthy_procs().size()), 8);
  for (int l = 0; l < topo.num_links(); ++l) {
    EXPECT_EQ(ft.link_slowdown(l), 1);
  }
}

TEST(FaultedTopology, RouteTranslationAndLiveness) {
  const Topology topo = Topology::mesh(3, 3);
  const FaultedTopology ft(topo, FaultSpec::parse("p4", topo));  // center
  // A route through the dead centre is not alive; the perimeter is.
  const Route through = greedy_shortest_route(topo, 3, 5);  // 3-4-5
  EXPECT_FALSE(ft.route_alive(through));
  EXPECT_THROW((void)ft.to_faulted(through), MappingError);
  const Route around = greedy_shortest_route(ft.faulted(), 3, 5);
  const Route base_route = ft.to_base(around);
  EXPECT_TRUE(ft.route_alive(base_route));
  EXPECT_EQ(base_route.nodes, around.nodes);  // node ids are stable
  // And translating back is the identity.
  EXPECT_EQ(ft.to_faulted(base_route).links, around.links);
}

TEST(FaultedTopology, SlowdownFactorsExposedPerFaultedLink) {
  const Topology topo = Topology::ring(5);
  const FaultedTopology ft(topo, FaultSpec::parse("s0:3,l1", topo));
  const auto factors = ft.faulted_link_factors();
  ASSERT_EQ(static_cast<int>(factors.size()), ft.num_alive_links());
  for (int f = 0; f < ft.num_alive_links(); ++f) {
    EXPECT_EQ(factors[static_cast<std::size_t>(f)],
              ft.link_slowdown(ft.base_link_of(f)));
  }
  EXPECT_EQ(ft.link_slowdown(0), 3);
}

TEST(FaultedTopology, HealthySubtopologyIsCompactAndConsistent) {
  const Topology topo = Topology::mesh(4, 4);
  const FaultedTopology ft(topo, FaultSpec::parse("p0,p6,l10", topo));
  const auto sub = ft.healthy_subtopology();
  EXPECT_EQ(sub.topo.num_procs(),
            static_cast<int>(ft.healthy_procs().size()));
  EXPECT_EQ(static_cast<int>(sub.to_base_proc.size()),
            sub.topo.num_procs());
  // Every sub link joins the base images of its endpoints via an alive
  // base link.
  for (int l = 0; l < sub.topo.num_links(); ++l) {
    const auto [u, v] = sub.topo.link_endpoints(l);
    const int bu = sub.to_base_proc[static_cast<std::size_t>(u)];
    const int bv = sub.to_base_proc[static_cast<std::size_t>(v)];
    const auto base_link = topo.link_between(bu, bv);
    ASSERT_TRUE(base_link.has_value());
    EXPECT_TRUE(ft.link_alive(*base_link));
    EXPECT_EQ(sub.to_base_link[static_cast<std::size_t>(l)], *base_link);
  }
  // Sub processors are exactly the healthy set.
  std::set<int> sub_procs(sub.to_base_proc.begin(), sub.to_base_proc.end());
  std::set<int> healthy(ft.healthy_procs().begin(),
                        ft.healthy_procs().end());
  EXPECT_EQ(sub_procs, healthy);
}

TEST(FaultedTopology, DeterministicAcrossConstructions) {
  const Topology topo = Topology::mesh3d(3, 3, 3);
  const FaultSpec spec =
      FaultSpec::random_spec(topo, 4, 6, 3, 0xDEADBEEF);
  const FaultedTopology a(topo, spec);
  const FaultedTopology b(topo, spec);
  EXPECT_EQ(a.healthy_procs(), b.healthy_procs());
  EXPECT_EQ(a.faulted_link_factors(), b.faulted_link_factors());
  EXPECT_EQ(a.spec().to_string(), b.spec().to_string());
  EXPECT_EQ(a.faulted().num_links(), b.faulted().num_links());
}

TEST(FaultedTopology, ValidateRejectsOverlapAndBadFactors) {
  const Topology topo = Topology::ring(4);
  FaultSpec overlap;
  overlap.dead_links = {1};
  overlap.slow_links = {{1, 2}};
  EXPECT_THROW(overlap.validate(topo), MappingError);
  FaultSpec bad_factor;
  bad_factor.slow_links = {{0, 0}};
  EXPECT_THROW(bad_factor.validate(topo), MappingError);
  FaultSpec out_of_range;
  out_of_range.dead_procs = {99};
  EXPECT_THROW(out_of_range.validate(topo), MappingError);
}

}  // namespace
}  // namespace oregami
