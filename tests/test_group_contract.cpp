#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/group_contract.hpp"

namespace oregami {
namespace {

/// The paper's Fig 4 workload: 8-task perfect broadcast with
/// comm1 = (+1), comm2 = (+2), comm3 = (+4) mod 8.
TaskGraph broadcast8() {
  return larcs::compile_source(larcs::programs::broadcast_vote(8),
                               {{"n", 8}})
      .graph;
}

TEST(PhasePermutation, ExtractsBijection) {
  const auto g = broadcast8();
  const auto p = phase_permutation(g.comm_phases()[0], 8);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_cycle_string(), "(0 1 2 3 4 5 6 7)");
  const auto p2 = phase_permutation(g.comm_phases()[1], 8);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->to_cycle_string(), "(0 2 4 6)(1 3 5 7)");
  const auto p3 = phase_permutation(g.comm_phases()[2], 8);
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(p3->to_cycle_string(), "(0 4)(1 5)(2 6)(3 7)");
}

TEST(PhasePermutation, RejectsNonBijections) {
  CommPhase phase;
  phase.name = "bad";
  phase.edges = {{0, 1, 1}, {0, 2, 1}};  // two outgoing from 0
  EXPECT_FALSE(phase_permutation(phase, 3).has_value());
  CommPhase partial;
  partial.edges = {{0, 1, 1}};  // tasks 1, 2 have no outgoing edge
  EXPECT_FALSE(phase_permutation(partial, 3).has_value());
  CommPhase collide;
  collide.edges = {{0, 2, 1}, {1, 2, 1}, {2, 0, 1}};  // 2 hit twice
  EXPECT_FALSE(phase_permutation(collide, 3).has_value());
}

TEST(Sylow, PrimePowerQuotients) {
  EXPECT_TRUE(sylow_balanced_contraction_exists(8, 4));    // 2
  EXPECT_TRUE(sylow_balanced_contraction_exists(16, 4));   // 4 = 2^2
  EXPECT_TRUE(sylow_balanced_contraction_exists(27, 1));   // 27 = 3^3
  EXPECT_TRUE(sylow_balanced_contraction_exists(8, 8));    // 1
  EXPECT_FALSE(sylow_balanced_contraction_exists(12, 2));  // 6 = 2*3
  EXPECT_FALSE(sylow_balanced_contraction_exists(8, 3));   // no division
  EXPECT_FALSE(sylow_balanced_contraction_exists(8, 0));
}

TEST(GroupContract, Fig4PerfectBroadcastOnto4Processors) {
  const auto g = broadcast8();
  const auto outcome = group_theoretic_contraction(g, 4);
  ASSERT_EQ(outcome.status, GroupContractStatus::Ok);
  const auto& result = *outcome.result;

  // The paper's element list E0..E7 (all rotations of Z8).
  ASSERT_EQ(result.element_cycles.size(), 8u);
  EXPECT_EQ(result.element_cycles[0], "(0)(1)(2)(3)(4)(5)(6)(7)");
  EXPECT_EQ(result.element_cycles[1], "(0 1 2 3 4 5 6 7)");
  EXPECT_EQ(result.element_cycles[2], "(0 2 4 6)(1 3 5 7)");
  EXPECT_EQ(result.element_cycles[3], "(0 3 6 1 4 7 2 5)");
  EXPECT_EQ(result.element_cycles[4], "(0 4)(1 5)(2 6)(3 7)");
  EXPECT_EQ(result.element_cycles[5], "(0 5 2 7 4 1 6 3)");
  EXPECT_EQ(result.element_cycles[6], "(0 6 4 2)(1 7 5 3)");
  EXPECT_EQ(result.element_cycles[7], "(0 7 6 5 4 3 2 1)");

  // Subgroup {E0, E4} from generator comm3, clusters {x, x+4}.
  EXPECT_EQ(result.subgroup, (std::vector<std::size_t>{0, 4}));
  EXPECT_TRUE(result.subgroup_normal);
  EXPECT_EQ(result.contraction.num_clusters, 4);
  for (int x = 0; x < 4; ++x) {
    EXPECT_EQ(result.contraction.cluster_of_task[static_cast<std::size_t>(x)],
              result.contraction
                  .cluster_of_task[static_cast<std::size_t>(x + 4)]);
  }
  // "2 messages are internalized in each cluster": the two comm3 edges
  // x -> x+4 and x+4 -> x.
  EXPECT_EQ(result.internalized_per_cluster, 2);
  // Quotient Cayley graph has 4 nodes.
  EXPECT_EQ(result.quotient.num_nodes, 4);
}

TEST(GroupContract, BalancedClustersAlways) {
  const auto g = broadcast8();
  for (const int clusters : {1, 2, 4, 8}) {
    const auto outcome = group_theoretic_contraction(g, clusters);
    ASSERT_EQ(outcome.status, GroupContractStatus::Ok) << clusters;
    const auto sizes = outcome.result->contraction.cluster_sizes();
    for (const int s : sizes) {
      EXPECT_EQ(s, 8 / clusters);
    }
  }
}

TEST(GroupContract, IndivisibleClusterCountRejected) {
  const auto g = broadcast8();
  EXPECT_EQ(group_theoretic_contraction(g, 3).status,
            GroupContractStatus::NoSuitableSubgroup);
  EXPECT_EQ(group_theoretic_contraction(g, 0).status,
            GroupContractStatus::NoSuitableSubgroup);
}

TEST(GroupContract, NonBijectivePhaseDetected) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int p = g.add_comm_phase("tree");
  g.add_comm_edge(p, 0, 1);
  g.add_comm_edge(p, 0, 2);
  g.add_comm_edge(p, 0, 3);
  EXPECT_EQ(group_theoretic_contraction(g, 2).status,
            GroupContractStatus::PhaseNotBijective);
}

TEST(GroupContract, GroupTooLargeAborts) {
  // Phases (01) and (0123): generate a group bigger than 4 points.
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int a = g.add_comm_phase("swap");
  g.add_comm_edge(a, 0, 1);
  g.add_comm_edge(a, 1, 0);
  g.add_comm_edge(a, 2, 3);  // keep it a bijection: (01)(23)
  g.add_comm_edge(a, 3, 2);
  const int b = g.add_comm_phase("rot");
  for (int i = 0; i < 4; ++i) {
    g.add_comm_edge(b, i, (i + 1) % 4);
  }
  // (01)(23) and (0123) generate the dihedral group of order 8 > 4.
  EXPECT_EQ(group_theoretic_contraction(g, 2).status,
            GroupContractStatus::GroupTooLarge);
}

TEST(GroupContract, NonTransitiveActionRejected) {
  // Single phase (01)(23) ... wait, that group has order 2 < 4 and is
  // not transitive.
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int a = g.add_comm_phase("swap");
  g.add_comm_edge(a, 0, 1);
  g.add_comm_edge(a, 1, 0);
  g.add_comm_edge(a, 2, 3);
  g.add_comm_edge(a, 3, 2);
  EXPECT_EQ(group_theoretic_contraction(g, 2).status,
            GroupContractStatus::NotRegularAction);
}

TEST(GroupContract, TorusStencilIsCayley) {
  // The 4x4 torus stencil's comm functions generate Z4 x Z4, which
  // acts regularly; contraction to 4 clusters must be balanced.
  const auto cp = larcs::compile_source(
      larcs::programs::torus_stencil(), {{"r", 4}, {"c", 4}, {"iters", 1}});
  const auto outcome = group_theoretic_contraction(cp.graph, 4);
  ASSERT_EQ(outcome.status, GroupContractStatus::Ok);
  const auto sizes = outcome.result->contraction.cluster_sizes();
  for (const int s : sizes) {
    EXPECT_EQ(s, 4);
  }
  EXPECT_GT(outcome.result->internalized_per_cluster, 0);
}

TEST(GroupContract, NbodyChordalRingContracts) {
  const auto cp = larcs::compile_source(larcs::programs::nbody(),
                                        {{"n", 16}, {"s", 1}, {"m", 1}});
  const auto outcome = group_theoretic_contraction(cp.graph, 4);
  ASSERT_EQ(outcome.status, GroupContractStatus::Ok);
  EXPECT_EQ(outcome.result->contraction.num_clusters, 4);
  const auto sizes = outcome.result->contraction.cluster_sizes();
  for (const int s : sizes) {
    EXPECT_EQ(s, 4);
  }
}

TEST(GroupContract, StatusStrings) {
  EXPECT_EQ(to_string(GroupContractStatus::Ok), "ok");
  EXPECT_NE(to_string(GroupContractStatus::GroupTooLarge).find("|X|"),
            std::string::npos);
}

}  // namespace
}  // namespace oregami
