#include <gtest/gtest.h>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/render.hpp"

namespace oregami {
namespace {

struct Mapped {
  TaskGraph graph;
  Topology topo;
  MapperReport report;
  MappingMetrics metrics;

  static Mapped nbody_on_cube() {
    auto cp = larcs::compile_source(larcs::programs::nbody(),
                                    {{"n", 8}, {"s", 2}, {"m", 4}});
    Topology topo = Topology::hypercube(3);
    MapperReport report = map_computation(cp.graph, topo);
    MappingMetrics metrics = compute_metrics(cp.graph, report.mapping, topo);
    return {std::move(cp.graph), std::move(topo), std::move(report),
            std::move(metrics)};
  }
};

TEST(Render, AssignmentTableListsEveryProcessor) {
  const auto m = Mapped::nbody_on_cube();
  const auto out = render_assignment_table(
      m.graph, m.report.mapping.proc_of_task(), m.topo);
  EXPECT_NE(out.find("proc"), std::string::npos);
  EXPECT_NE(out.find("exec load"), std::string::npos);
  EXPECT_NE(out.find("body(0)"), std::string::npos);
  // One row per processor (8) + header + underline.
  EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')),
            10);
}

TEST(Render, LinkTableShowsPhases) {
  const auto m = Mapped::nbody_on_cube();
  const auto out = render_link_table(m.metrics, m.topo);
  EXPECT_NE(out.find("phase 'ring'"), std::string::npos);
  EXPECT_NE(out.find("phase 'chordal'"), std::string::npos);
  EXPECT_NE(out.find("contention"), std::string::npos);
}

TEST(Render, SummaryHasHeadlineMetrics) {
  const auto m = Mapped::nbody_on_cube();
  const auto out = render_summary(m.metrics);
  EXPECT_NE(out.find("completion time"), std::string::npos);
  EXPECT_NE(out.find("total IPC volume"), std::string::npos);
  EXPECT_NE(out.find("avg dilation"), std::string::npos);
}

TEST(Render, AsciiLayoutMesh) {
  auto cp = larcs::compile_source(larcs::programs::jacobi(),
                                  {{"n", 4}, {"iters", 1}});
  const auto topo = Topology::mesh(4, 4);
  const auto report = map_computation(cp.graph, topo);
  const auto out = render_ascii_layout(
      cp.graph, report.mapping.proc_of_task(), topo);
  // 4 mesh rows.
  EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')), 4);
  EXPECT_NE(out.find("cell(0,0)"), std::string::npos);
}

TEST(Render, AsciiLayoutRingWraps) {
  const auto m = Mapped::nbody_on_cube();
  const auto ring_topo = Topology::ring(8);
  const auto report = map_computation(m.graph, ring_topo);
  const auto out = render_ascii_layout(
      m.graph, report.mapping.proc_of_task(), ring_topo);
  EXPECT_NE(out.find("(wraps)"), std::string::npos);
  EXPECT_NE(out.find(" -- "), std::string::npos);
}

TEST(Render, AsciiLayoutFallsBackToTable) {
  const auto m = Mapped::nbody_on_cube();
  const auto out = render_ascii_layout(
      m.graph, m.report.mapping.proc_of_task(), m.topo);
  EXPECT_NE(out.find("proc"), std::string::npos);  // table header
}

TEST(Render, TaskGraphDotIsWellFormed) {
  const auto m = Mapped::nbody_on_cube();
  const auto dot = render_task_graph_dot(m.graph);
  EXPECT_EQ(dot.rfind("digraph task_graph {", 0), 0u);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"ring\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"chordal\""), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(Render, MappingDotListsProcessorsAndLinks) {
  const auto m = Mapped::nbody_on_cube();
  const auto dot = render_mapping_dot(
      m.graph, m.report.mapping.proc_of_task(), m.topo);
  EXPECT_EQ(dot.rfind("graph mapping {", 0), 0u);
  EXPECT_NE(dot.find("p0"), std::string::npos);
  EXPECT_NE(dot.find(" -- "), std::string::npos);
}

}  // namespace
}  // namespace oregami
