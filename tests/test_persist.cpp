// Crash-safe cache persistence: record round trips, the journal /
// compaction lifecycle, and -- the heart of it -- a property suite of
// 200+ seeded corruptions (boundary truncations, payload bit flips,
// duplicate digests, version-skewed headers) asserting the recovery
// loader never throws, never loads an invalid record, and reports
// exact restored/skipped counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "oregami/server/persist.hpp"
#include "oregami/server/result_cache.hpp"
#include "oregami/support/failpoint.hpp"
#include "oregami/support/rng.hpp"

namespace oregami::server {
namespace {

/// A deterministic outcome family: even i = success (with a placement
/// whose size varies by i), odd i = cached deterministic failure.
CachedOutcome make_outcome(int i) {
  CachedOutcome outcome;
  if (i % 2 == 0) {
    outcome.ok = true;
    outcome.strategy = "strategy-" + std::to_string(i);
    outcome.completion = 100 + i;
    outcome.external_ipc = 200 + i;
    outcome.max_load = 300 + i;
    outcome.num_procs = 16;
    for (int t = 0; t < 8 + i; ++t) {
      outcome.proc_of_task.push_back(t % 16);
    }
  } else {
    outcome.ok = false;
    outcome.error_code = 4;
    outcome.error = "job " + std::to_string(i) + ": mapping infeasible";
  }
  return outcome;
}

std::uint64_t digest_of(int i) {
  // Spread digests across shards; any distinct values work.
  return 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// Clears the global failpoint schedule even when a test fails.
struct FailpointGuard {
  ~FailpointGuard() { failpoint::clear(); }
};

// ------------------------------------------------------- round trips

TEST(Persist, RecordRoundTripsBitExactly) {
  for (int i = 0; i < 6; ++i) {
    const CachedOutcome original = make_outcome(i);
    const std::string record = encode_record(digest_of(i), original);
    // Strip the 16-byte record header to get the payload.
    const std::string payload = record.substr(16);
    std::uint64_t digest = 0;
    CachedOutcome decoded;
    ASSERT_TRUE(decode_record_payload(payload, digest, decoded)) << i;
    EXPECT_EQ(digest, digest_of(i));
    EXPECT_EQ(decoded.ok, original.ok);
    EXPECT_EQ(decoded.error_code, original.error_code);
    EXPECT_EQ(decoded.error, original.error);
    EXPECT_EQ(decoded.strategy, original.strategy);
    EXPECT_EQ(decoded.completion, original.completion);
    EXPECT_EQ(decoded.external_ipc, original.external_ipc);
    EXPECT_EQ(decoded.max_load, original.max_load);
    EXPECT_EQ(decoded.num_procs, original.num_procs);
    EXPECT_EQ(decoded.proc_of_task, original.proc_of_task);
  }
}

TEST(Persist, DecodeRejectsTruncatedAndPaddedPayloads) {
  const std::string payload =
      encode_record(digest_of(2), make_outcome(2)).substr(16);
  std::uint64_t digest = 0;
  CachedOutcome decoded;
  // Every strict prefix fails ("valid" means bit-exact, whole payload).
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        decode_record_payload(payload.substr(0, cut), digest, decoded))
        << "prefix of length " << cut << " decoded";
  }
  EXPECT_FALSE(decode_record_payload(payload + '\0', digest, decoded));
  EXPECT_TRUE(decode_record_payload(payload, digest, decoded));
}

// ---------------------------------------------------------- recovery

TEST(Persist, MissingAndEmptyFilesAreCleanColdBoots) {
  const std::string path = temp_path("persist_missing.bin");
  std::remove(path.c_str());
  ResultCache cache(64, 4);
  RecoveryStats stats = recover_cache_file(path, cache);
  EXPECT_TRUE(stats.missing);
  EXPECT_EQ(stats.restored, 0);
  EXPECT_NE(stats.to_string().find("cold boot"), std::string::npos);

  write_bytes(path, "");
  stats = recover_cache_file(path, cache);
  EXPECT_FALSE(stats.missing);
  EXPECT_EQ(stats.restored, 0);
  EXPECT_EQ(stats.skipped, 0);
  std::remove(path.c_str());
}

TEST(Persist, VersionSkewAndForeignHeadersSkipTheWholeFile) {
  const std::string path = temp_path("persist_skew.bin");
  const std::string record = encode_record(digest_of(0), make_outcome(0));

  // Future format version: right magic, wrong version word.
  std::string future = encode_header() + record;
  future[8] = static_cast<char>(future[8] + 1);
  write_bytes(path, future);
  ResultCache cache(64, 4);
  RecoveryStats stats = recover_cache_file(path, cache);
  EXPECT_TRUE(stats.version_skew);
  EXPECT_EQ(stats.restored, 0);
  EXPECT_EQ(cache.stats().size, 0);

  // Foreign file entirely.
  write_bytes(path, "#!/bin/sh\necho not a cache\n");
  stats = recover_cache_file(path, cache);
  EXPECT_TRUE(stats.version_skew);
  EXPECT_EQ(stats.restored, 0);
  std::remove(path.c_str());
}

TEST(Persist, DuplicateDigestsResolveToTheLastRecord) {
  const std::string path = temp_path("persist_dupes.bin");
  CachedOutcome first = make_outcome(0);
  CachedOutcome second = make_outcome(2);
  std::string file = encode_header();
  file += encode_record(42, first);
  file += encode_record(43, make_outcome(4));
  file += encode_record(42, second);  // journal order: last wins
  write_bytes(path, file);

  ResultCache cache(64, 4);
  const RecoveryStats stats = recover_cache_file(path, cache);
  EXPECT_EQ(stats.records, 3);
  EXPECT_EQ(stats.duplicates, 1);
  EXPECT_EQ(stats.restored, 2);
  EXPECT_EQ(stats.skipped, 0);
  const auto entry = cache.lookup(42);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->completion, second.completion);
  std::remove(path.c_str());
}

// ------------------------------------- the corruption property suite

/// The shared fixture file: header + kRecords records of varying size.
constexpr int kRecords = 8;

std::string fixture_file(std::vector<std::size_t>* boundaries = nullptr) {
  std::string file = encode_header();
  if (boundaries != nullptr) {
    boundaries->push_back(file.size());
  }
  for (int i = 0; i < kRecords; ++i) {
    file += encode_record(digest_of(i), make_outcome(i));
    if (boundaries != nullptr) {
      boundaries->push_back(file.size());
    }
  }
  return file;
}

/// Recovery must never load an entry whose bytes were not bit-exact:
/// every restored digest must decode to exactly the outcome written.
void expect_only_valid_entries(ResultCache& cache) {
  for (int i = 0; i < kRecords; ++i) {
    const auto entry = cache.lookup(digest_of(i));
    if (entry == nullptr) {
      continue;  // skipped is fine; serving garbage is not
    }
    const CachedOutcome expected = make_outcome(i);
    EXPECT_EQ(entry->ok, expected.ok) << "entry " << i;
    EXPECT_EQ(entry->error, expected.error) << "entry " << i;
    EXPECT_EQ(entry->strategy, expected.strategy) << "entry " << i;
    EXPECT_EQ(entry->completion, expected.completion) << "entry " << i;
    EXPECT_EQ(entry->proc_of_task, expected.proc_of_task) << "entry " << i;
  }
}

TEST(PersistProperties, TruncationAtEveryRecordBoundaryPlusMinusOne) {
  std::vector<std::size_t> boundaries;
  const std::string file = fixture_file(&boundaries);
  const std::string path = temp_path("persist_truncate.bin");
  int cases = 0;
  for (std::size_t k = 0; k < boundaries.size(); ++k) {
    for (const int delta : {-1, 0, 1}) {
      const std::size_t cut =
          static_cast<std::size_t>(static_cast<long long>(boundaries[k]) +
                                   delta);
      if (cut > file.size()) {
        continue;  // boundary[last] + 1 is past EOF
      }
      ++cases;
      write_bytes(path, file.substr(0, cut));
      ResultCache cache(64, 4);
      const RecoveryStats stats = recover_cache_file(path, cache);

      if (cut == 0) {
        EXPECT_FALSE(stats.version_skew);
        EXPECT_EQ(stats.restored, 0);
      } else if (cut < 16) {
        // Not even a whole header survived.
        EXPECT_TRUE(stats.version_skew);
        EXPECT_EQ(stats.restored, 0);
      } else {
        // Complete records before the cut all load; a partial tail is
        // exactly one skipped record, a clean boundary cut none.
        const std::size_t complete = k - (delta == -1 ? 1 : 0);
        EXPECT_EQ(stats.restored, static_cast<std::int64_t>(complete))
            << "cut at " << cut;
        EXPECT_EQ(stats.skipped, delta == 0 ? 0 : 1) << "cut at " << cut;
        EXPECT_FALSE(stats.version_skew);
      }
      expect_only_valid_entries(cache);
    }
  }
  EXPECT_GE(cases, 26);
  std::remove(path.c_str());
}

TEST(PersistProperties, SeededPayloadBitFlipsSkipExactlyOneRecord) {
  std::vector<std::size_t> boundaries;
  const std::string file = fixture_file(&boundaries);
  const std::string path = temp_path("persist_bitflip.bin");

  // Collect every payload byte position (record offset >= 16), so a
  // flip always hits checksummed bytes, never a record header; the
  // contract is then exact: that one record is skipped, all others
  // load.
  std::vector<std::size_t> payload_positions;
  for (std::size_t k = 0; k + 1 < boundaries.size(); ++k) {
    for (std::size_t at = boundaries[k] + 16; at < boundaries[k + 1];
         ++at) {
      payload_positions.push_back(at);
    }
  }
  ASSERT_FALSE(payload_positions.empty());

  SplitMix64 rng(0xC0FFEEULL);
  const int kCases = 170;
  for (int c = 0; c < kCases; ++c) {
    const std::size_t at = payload_positions[static_cast<std::size_t>(
        rng.next_below(payload_positions.size()))];
    const int bit = static_cast<int>(rng.next_below(8));
    std::string corrupted = file;
    corrupted[at] = static_cast<char>(
        static_cast<unsigned char>(corrupted[at]) ^ (1U << bit));
    write_bytes(path, corrupted);

    ResultCache cache(64, 4);
    const RecoveryStats stats = recover_cache_file(path, cache);
    EXPECT_EQ(stats.restored, kRecords - 1) << "flip at byte " << at;
    EXPECT_EQ(stats.skipped, 1) << "flip at byte " << at;
    EXPECT_FALSE(stats.version_skew);
    expect_only_valid_entries(cache);
  }
  std::remove(path.c_str());
}

TEST(PersistProperties, GarbageTailsAndInterleavedGarbageNeverThrow) {
  const std::string file = fixture_file();
  const std::string path = temp_path("persist_garbage.bin");
  SplitMix64 rng(0xDEADULL);
  // Appended garbage of every small length: valid records load, the
  // garbage is skipped (counted as >= 1), nothing ever throws.
  for (int len = 1; len <= 24; ++len) {
    std::string tail;
    for (int i = 0; i < len; ++i) {
      tail += static_cast<char>(rng.next_below(256));
    }
    write_bytes(path, file + tail);
    ResultCache cache(64, 4);
    const RecoveryStats stats = recover_cache_file(path, cache);
    EXPECT_EQ(stats.restored, kRecords) << "tail length " << len;
    EXPECT_GE(stats.skipped, 1) << "tail length " << len;
    expect_only_valid_entries(cache);
  }
  std::remove(path.c_str());
}

// --------------------------------------------- journal & compaction

TEST(Persist, JournalAppendsSurviveRestart) {
  const std::string path = temp_path("persist_journal.bin");
  std::remove(path.c_str());
  {
    ResultCache cache(64, 4);
    CacheJournal journal(path, cache);
    const RecoveryStats recovery = journal.open_and_recover();
    EXPECT_TRUE(recovery.missing);
    for (int i = 0; i < kRecords; ++i) {
      cache.insert(digest_of(i),
                   std::make_shared<const CachedOutcome>(make_outcome(i)));
      EXPECT_TRUE(journal.append(digest_of(i), make_outcome(i)));
    }
    const PersistStats stats = journal.stats();
    EXPECT_EQ(stats.appended, kRecords);
    EXPECT_EQ(stats.io_errors, 0);
    EXPECT_FALSE(stats.degraded);
  }
  ResultCache cache(64, 4);
  CacheJournal journal(path, cache);
  const RecoveryStats recovery = journal.open_and_recover();
  EXPECT_EQ(recovery.restored, kRecords);
  EXPECT_EQ(recovery.skipped, 0);
  expect_only_valid_entries(cache);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(Persist, PeriodicCompactionShedsSupersededRecords) {
  const std::string path = temp_path("persist_compact.bin");
  std::remove(path.c_str());
  ResultCache cache(64, 4);
  CacheJournal journal(path, cache, /*compact_every=*/4);
  (void)journal.open_and_recover();
  // 12 appends of only 2 unique digests: compaction should leave a
  // file with just the live entries.
  for (int i = 0; i < 12; ++i) {
    const std::uint64_t digest = digest_of(i % 2);
    cache.insert(digest,
                 std::make_shared<const CachedOutcome>(make_outcome(i % 2)));
    EXPECT_TRUE(journal.append(digest, make_outcome(i % 2)));
  }
  EXPECT_GE(journal.stats().compactions, 3);  // boot + every 4 appends

  ResultCache recovered(64, 4);
  const RecoveryStats stats = recover_cache_file(path, recovered);
  EXPECT_EQ(stats.restored, 2);
  // Compacted snapshot + at most the appends since the last compaction.
  EXPECT_LE(stats.records, 2 + 4);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(Persist, KillDuringSnapshotLeavesThePreviousFileIntact) {
  FailpointGuard guard;
  const std::string path = temp_path("persist_kill_snapshot.bin");
  std::remove(path.c_str());
  ResultCache cache(64, 4);
  CacheJournal journal(path, cache);
  (void)journal.open_and_recover();
  for (int i = 0; i < kRecords; ++i) {
    cache.insert(digest_of(i),
                 std::make_shared<const CachedOutcome>(make_outcome(i)));
    EXPECT_TRUE(journal.append(digest_of(i), make_outcome(i)));
  }

  // A "kill -9" mid-snapshot write: the temp file is torn, the rename
  // never happens, and the journal we already wrote stays intact.
  failpoint::configure("persist.write:short");
  EXPECT_FALSE(journal.compact());
  failpoint::clear();

  // And an injected rename failure after a good write: same guarantee.
  failpoint::configure("persist.rename:err");
  EXPECT_FALSE(journal.compact());
  failpoint::clear();

  // An injected fsync failure too.
  failpoint::configure("persist.fsync:err");
  EXPECT_FALSE(journal.compact());
  failpoint::clear();

  EXPECT_GE(journal.stats().io_errors, 3);
  EXPECT_FALSE(journal.stats().degraded);  // appends still work

  ResultCache recovered(64, 4);
  const RecoveryStats stats = recover_cache_file(path, recovered);
  EXPECT_EQ(stats.restored, kRecords);
  EXPECT_EQ(stats.skipped, 0);
  expect_only_valid_entries(recovered);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(Persist, WriteFailureDegradesPersistenceNotTheDaemon) {
  FailpointGuard guard;
  const std::string path = temp_path("persist_degraded.bin");
  std::remove(path.c_str());
  ResultCache cache(64, 4);
  CacheJournal journal(path, cache);
  (void)journal.open_and_recover();
  // Write #1 was the boot snapshot; the next append hits the error.
  failpoint::configure("persist.write:err");
  EXPECT_FALSE(journal.append(digest_of(0), make_outcome(0)));
  EXPECT_TRUE(journal.stats().degraded);
  EXPECT_EQ(journal.stats().io_errors, 1);
  // Further appends are silently refused -- no crash, no throw.
  EXPECT_FALSE(journal.append(digest_of(1), make_outcome(1)));
  EXPECT_EQ(journal.stats().io_errors, 1);  // refused, not re-failed
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(Persist, LoadFailpointStopsRecoveryAtTheFailure) {
  FailpointGuard guard;
  const std::string path = temp_path("persist_load_fp.bin");
  write_bytes(path, fixture_file());
  failpoint::configure("persist.load:err@4");
  ResultCache cache(64, 4);
  const RecoveryStats stats = recover_cache_file(path, cache);
  // Records 1-3 loaded; the injected read error at record 4 stops the
  // scan (a short, valid prefix -- exactly what a truncated disk read
  // looks like).
  EXPECT_EQ(stats.restored, 3);
  expect_only_valid_entries(cache);
  std::remove(path.c_str());
}

TEST(Persist, UnwritablePathDegradesWithoutThrowing) {
  ResultCache cache(64, 4);
  CacheJournal journal("/nonexistent-dir/oregami-cache.bin", cache);
  const RecoveryStats recovery = journal.open_and_recover();
  EXPECT_TRUE(recovery.missing);
  EXPECT_TRUE(journal.stats().degraded);
  EXPECT_FALSE(journal.append(digest_of(0), make_outcome(0)));
}

TEST(Persist, BootCompactionReplacesVersionSkewedFiles) {
  const std::string path = temp_path("persist_skew_replace.bin");
  std::string future = encode_header() +
                       encode_record(digest_of(0), make_outcome(0));
  future[8] = static_cast<char>(future[8] + 1);
  write_bytes(path, future);

  ResultCache cache(64, 4);
  CacheJournal journal(path, cache);
  const RecoveryStats recovery = journal.open_and_recover();
  EXPECT_TRUE(recovery.version_skew);
  EXPECT_EQ(recovery.restored, 0);
  EXPECT_TRUE(journal.append(digest_of(1), make_outcome(1)));

  // The skewed file is gone: a fresh boot reads the current format.
  ResultCache recovered(64, 4);
  const RecoveryStats stats = recover_cache_file(path, recovered);
  EXPECT_FALSE(stats.version_skew);
  EXPECT_EQ(stats.restored, 1);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace oregami::server
