// Tests for the process-wide metrics registry (support/metrics) and the
// server telemetry layer built on top of it (server/telemetry).
//
// The contracts under test:
//   * registration is idempotent and kind-checked; snapshots are
//     name-sorted and stable;
//   * log2 histogram buckets have exact boundaries and the quantile
//     interpolation matches hand-computed reference values;
//   * the disabled hot path performs zero heap allocations, and so does
//     the enabled hot path after registration (the same operator-new
//     counting assertion style as test_trace.cpp);
//   * concurrent recording from 8 threads loses no updates (the TSan CI
//     job hammers this suite);
//   * deterministic mode zeroes everything a scheduler could perturb,
//     so expositions are byte-identical across worker counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "oregami/server/server.hpp"
#include "oregami/server/telemetry.hpp"
#include "oregami/support/metrics.hpp"

// ------------------------------------------------- allocation counting
//
// Global counting overrides so the hot-path tests can assert "zero
// allocations" instead of eyeballing the code. Relaxed atomics: the
// counter only needs to be exact while the test runs single-threaded
// code.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace oregami {
namespace {

namespace m = metrics;

// The registry is process-global; every test scopes itself with unique
// series names and restores the disabled/non-deterministic default.
class MetricsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    m::reset_values();
    m::set_deterministic(false);
    m::enable();
  }
  void TearDown() override {
    m::disable();
    m::set_deterministic(false);
    m::reset_values();
  }
};

using MetricsRegistry = MetricsFixture;
using MetricsHistogram = MetricsFixture;
using MetricsPrometheus = MetricsFixture;
using MetricsHammer = MetricsFixture;
using MetricsDeterminism = MetricsFixture;
using MetricsServer = MetricsFixture;

// --------------------------------------------------------- registry

TEST_F(MetricsRegistry, RegistrationIsIdempotent) {
  m::Counter& a = m::counter("test_registry_idempotent_total");
  m::Counter& b = m::counter("test_registry_idempotent_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7);

  m::Histogram& h1 = m::histogram("test_registry_idempotent_us");
  m::Histogram& h2 = m::histogram("test_registry_idempotent_us");
  EXPECT_EQ(&h1, &h2);
}

TEST_F(MetricsRegistry, KindMismatchThrows) {
  m::counter("test_registry_kind_clash");
  EXPECT_THROW(m::gauge("test_registry_kind_clash"), std::logic_error);
  EXPECT_THROW(m::histogram("test_registry_kind_clash"), std::logic_error);
}

TEST_F(MetricsRegistry, SnapshotIsNameSortedAndFindable) {
  m::counter("test_registry_snap_b_total").add(2);
  m::counter("test_registry_snap_a_total").add(1);
  m::gauge("test_registry_snap_depth").set(5);

  const m::Snapshot snap = m::snapshot();
  for (std::size_t i = 1; i < snap.series.size(); ++i) {
    EXPECT_LT(snap.series[i - 1].name, snap.series[i].name);
  }
  const m::SeriesValue* a = snap.find("test_registry_snap_a_total");
  const m::SeriesValue* b = snap.find("test_registry_snap_b_total");
  const m::SeriesValue* g = snap.find("test_registry_snap_depth");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(a->scalar, 1);
  EXPECT_EQ(b->scalar, 2);
  EXPECT_EQ(g->scalar, 5);
  EXPECT_EQ(snap.find("test_registry_snap_missing"), nullptr);
}

TEST_F(MetricsRegistry, DisabledSitesRecordNothing) {
  m::Counter& c = m::counter("test_registry_disabled_total");
  m::Gauge& g = m::gauge("test_registry_disabled_depth");
  m::Histogram& h = m::histogram("test_registry_disabled_us");
  m::disable();
  c.add(10);
  g.set(10);
  h.record(10);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(MetricsRegistry, ResetValuesKeepsRegistrations) {
  m::Counter& c = m::counter("test_registry_reset_total");
  c.add(9);
  m::reset_values();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(&m::counter("test_registry_reset_total"), &c);
}

// -------------------------------------------------------- histograms

TEST_F(MetricsHistogram, BucketBoundariesAreExact) {
  // Bucket 0: v <= 0. Bucket b in [1, 62]: [2^(b-1), 2^b - 1].
  EXPECT_EQ(m::histogram_bucket(-5), 0);
  EXPECT_EQ(m::histogram_bucket(0), 0);
  EXPECT_EQ(m::histogram_bucket(1), 1);
  EXPECT_EQ(m::histogram_bucket(2), 2);
  EXPECT_EQ(m::histogram_bucket(3), 2);
  EXPECT_EQ(m::histogram_bucket(4), 3);
  EXPECT_EQ(m::histogram_bucket(7), 3);
  EXPECT_EQ(m::histogram_bucket(8), 4);
  EXPECT_EQ(m::histogram_bucket(15), 4);
  EXPECT_EQ(m::histogram_bucket(16), 5);
  EXPECT_EQ(m::histogram_bucket((std::int64_t{1} << 62) - 1), 62);
  EXPECT_EQ(m::histogram_bucket(std::int64_t{1} << 62), 63);
  EXPECT_EQ(m::histogram_bucket(INT64_MAX), 63);

  EXPECT_EQ(m::histogram_bucket_upper(0), 0);
  EXPECT_EQ(m::histogram_bucket_upper(1), 1);
  EXPECT_EQ(m::histogram_bucket_upper(2), 3);
  EXPECT_EQ(m::histogram_bucket_upper(3), 7);
  EXPECT_EQ(m::histogram_bucket_upper(4), 15);
  EXPECT_EQ(m::histogram_bucket_upper(63), INT64_MAX);
  EXPECT_EQ(m::histogram_bucket_lower(1), 1);
  EXPECT_EQ(m::histogram_bucket_lower(3), 4);
  EXPECT_EQ(m::histogram_bucket_lower(63), std::int64_t{1} << 62);
}

TEST_F(MetricsHistogram, QuantilesMatchReferenceValues) {
  m::Histogram& h = m::histogram("test_histogram_quantiles_us");
  for (std::int64_t v = 1; v <= 8; ++v) h.record(v);
  // Bucket counts: b1 {1} = 1, b2 {2,3} = 2, b3 {4..7} = 4, b4 {8} = 1.
  m::HistogramSnapshot snap;
  h.merge_into(snap);
  EXPECT_EQ(snap.count(), 8u);
  EXPECT_EQ(snap.sum, 36);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 4u);
  EXPECT_EQ(snap.buckets[4], 1u);

  // p50: rank 4 lands in b3 [4,7] after cumulative 3 -> 4 + 3*(1/4).
  EXPECT_NEAR(snap.quantile(0.50), 4.75, 1e-9);
  // p90: rank 7.2 lands in b4 [8,15] after cumulative 7 -> 8 + 7*0.2.
  EXPECT_NEAR(snap.quantile(0.90), 9.4, 1e-9);
  // p99: rank 7.92 -> 8 + 7*0.92.
  EXPECT_NEAR(snap.quantile(0.99), 14.44, 1e-9);
  // Extremes clamp to the data range.
  EXPECT_NEAR(snap.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(snap.quantile(1.0), 15.0, 1e-9);
}

TEST_F(MetricsHistogram, QuantileEdgeCases) {
  m::HistogramSnapshot empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  // All mass in bucket 0 (deterministic-mode shape).
  m::HistogramSnapshot zeros;
  zeros.buckets[0] = 10;
  EXPECT_EQ(zeros.quantile(0.99), 0.0);

  // Mass in the unbounded tail reports the tail's lower bound.
  m::HistogramSnapshot tail;
  tail.buckets[63] = 4;
  EXPECT_EQ(tail.quantile(0.5),
            static_cast<double>(std::int64_t{1} << 62));
}

// ------------------------------------------------------ zero-alloc

TEST_F(MetricsRegistry, DisabledHotPathAllocatesNothing) {
  m::Counter& c = m::counter("test_alloc_disabled_total");
  m::Gauge& g = m::gauge("test_alloc_disabled_depth");
  m::Histogram& h = m::histogram("test_alloc_disabled_us");
  m::disable();

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    c.increment();
    g.set(i);
    h.record(i);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "disabled metric sites must be a single relaxed load";
  EXPECT_EQ(c.value(), 0);
}

TEST_F(MetricsRegistry, EnabledHotPathAllocatesNothingAfterRegistration) {
  m::Counter& c = m::counter("test_alloc_enabled_total");
  m::Histogram& h = m::histogram("test_alloc_enabled_us");
  // Warm this thread's stripe assignment (a thread_local int, but keep
  // first-touch out of the measured window).
  c.add(0);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    c.increment();
    h.record(i);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "enabled metric sites must not touch the heap";
  EXPECT_EQ(c.value(), 1000);
  EXPECT_EQ(h.count(), 1000u);
}

// ---------------------------------------------------------- hammer

TEST_F(MetricsHammer, EightThreadsLoseNoUpdates) {
  m::Counter& c = m::counter("test_hammer_total");
  m::Gauge& g = m::gauge("test_hammer_inflight");
  m::Histogram& h = m::histogram("test_hammer_us");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.increment();
        g.add(1);
        g.add(-1);
        h.record((t * kPerThread + i) % 1000);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Snapshot under concurrent recording must also be safe; hammer it
  // once more with a reader in flight.
  std::thread reader([&] {
    for (int i = 0; i < 50; ++i) (void)m::snapshot();
  });
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      c.increment();
      h.record(i);
    }
  });
  reader.join();
  writer.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread + 20000);
}

// ------------------------------------------------------- exposition

TEST_F(MetricsPrometheus, LabelledFamiliesShareOneTypeLine) {
  m::counter("test_prom_jobs_total{outcome=\"hit\"}").add(3);
  m::counter("test_prom_jobs_total{outcome=\"miss\"}").add(4);
  const std::string text = m::to_prometheus(m::snapshot());

  const std::string type_line = "# TYPE test_prom_jobs_total counter";
  const auto first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos)
      << "one # TYPE line per family, not per labelled series";
  EXPECT_NE(text.find("test_prom_jobs_total{outcome=\"hit\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_jobs_total{outcome=\"miss\"} 4\n"),
            std::string::npos);
}

TEST_F(MetricsPrometheus, HistogramBucketsAreCumulative) {
  m::Histogram& h = m::histogram("test_prom_latency_us");
  for (std::int64_t v = 1; v <= 8; ++v) h.record(v);
  const std::string text = m::to_prometheus(m::snapshot());

  EXPECT_NE(text.find("# TYPE test_prom_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_us_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_us_bucket{le=\"7\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_us_bucket{le=\"15\"} 8\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_us_bucket{le=\"+Inf\"} 8\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_us_sum 36\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_us_count 8\n"),
            std::string::npos);
}

// ---------------------------------------------------- deterministic

TEST_F(MetricsDeterminism, RecordsClampToZeroButKeepCounts) {
  m::Histogram& h = m::histogram("test_det_clamped_us");
  m::set_deterministic(true);
  h.record(12345);
  h.record(678);
  m::HistogramSnapshot snap;
  h.merge_into(snap);
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.buckets[0], 2u);
}

TEST_F(MetricsDeterminism, VolatileSeriesAreZeroedInSnapshots) {
  m::Counter& joins =
      m::counter("test_det_joins_total", m::Determinism::kVolatile);
  m::Counter& stable = m::counter("test_det_stable_total");
  joins.add(7);
  stable.add(7);

  m::set_deterministic(true);
  const m::Snapshot det = m::snapshot();
  EXPECT_EQ(det.find("test_det_joins_total")->scalar, 0);
  EXPECT_EQ(det.find("test_det_stable_total")->scalar, 7);

  m::set_deterministic(false);
  const m::Snapshot live = m::snapshot();
  EXPECT_EQ(live.find("test_det_joins_total")->scalar, 7);
}

// ------------------------------------------------- server telemetry

TEST_F(MetricsServer, ElapsedUsIsZeroWhenDisabled) {
  m::disable();
  EXPECT_EQ(server::elapsed_us(std::chrono::steady_clock::now()), 0);
}

TEST_F(MetricsServer, DigestPrefixIsFirstEightHexDigits) {
  EXPECT_EQ(server::digest_prefix(0x0123456789abcdefULL), "01234567");
  EXPECT_EQ(server::digest_prefix(0), "00000000");
}

TEST_F(MetricsServer, ServerSeriesAreRegisteredEagerly) {
  server::ServerMetrics& sm = server::server_metrics();
  sm.jobs_submitted.increment();
  sm.jobs_hit.increment();
  const m::Snapshot snap = m::snapshot();
  EXPECT_NE(snap.find("oregami_server_jobs_submitted_total"), nullptr);
  EXPECT_NE(snap.find("oregami_server_jobs_total{outcome=\"hit\"}"),
            nullptr);
  EXPECT_NE(snap.find("oregami_server_jobs_total{outcome=\"abandoned\"}"),
            nullptr);
  EXPECT_NE(snap.find("oregami_failpoint_fired_total"), nullptr);
  EXPECT_NE(snap.find("oregami_persist_append_us"), nullptr);
}

TEST_F(MetricsServer, EventLogParsesLevelsStrictly) {
  using server::EventLog;
  EXPECT_EQ(EventLog::parse_level("debug"), EventLog::Level::kDebug);
  EXPECT_EQ(EventLog::parse_level("info"), EventLog::Level::kInfo);
  EXPECT_EQ(EventLog::parse_level("warn"), EventLog::Level::kWarn);
  EXPECT_FALSE(EventLog::parse_level("INFO").has_value());
  EXPECT_FALSE(EventLog::parse_level("trace").has_value());
}

TEST_F(MetricsServer, RenderStatsLineCarriesEveryField) {
  server::ServerStats stats;
  stats.lines = 50;
  stats.ok = 30;
  stats.errors = 20;
  stats.rejected = 0;
  stats.abandoned = 0;
  stats.cache_hits = 10;
  stats.cache_misses = 20;
  stats.cache_evictions = 2;
  stats.deduped = 3;
  const std::string line = server::render_stats_line(stats, 1234);
  EXPECT_EQ(line.rfind("stats{", 0), 0u);
  EXPECT_NE(line.find("\"lines\":50"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":30"), std::string::npos);
  EXPECT_NE(line.find("\"errors\":20"), std::string::npos);
  EXPECT_NE(line.find("\"cache_evictions\":2"), std::string::npos);
  EXPECT_NE(line.find("\"deduped\":3"), std::string::npos);
  EXPECT_NE(line.find("\"uptime_ms\":1234"), std::string::npos);
}

}  // namespace
}  // namespace oregami
