# Byte-identity guard for the default CLI output: with --multilevel
# (and every other opt-in flag) off, oregami_map must print exactly
# what the seed printed — new strategies may not perturb the default
# path even by a byte. Run via:
#   cmake -DOREGAMI_MAP=... -DGOLDEN=... -DOUTPUT=... -P golden_output.cmake
execute_process(
  COMMAND ${OREGAMI_MAP} --program nbody --bind n=15 --bind s=4 --bind m=8
          --topology mesh:4x4
  OUTPUT_FILE ${OUTPUT}
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "oregami_map exited ${code} on the golden arguments")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUTPUT} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "default oregami_map output drifted from ${GOLDEN}; if the "
          "change is intentional, regenerate the golden file and call "
          "it out in the PR")
endif()
