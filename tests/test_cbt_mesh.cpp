#include <gtest/gtest.h>

#include <set>

#include "oregami/core/recognize.hpp"
#include "oregami/mapper/canned.hpp"
#include "oregami/mapper/cbt_mesh.hpp"

namespace oregami {
namespace {

TEST(CbtMesh, DimensionsFollowFormulas) {
  for (int h = 1; h <= 10; ++h) {
    const auto e = embed_cbt_in_mesh(h);
    EXPECT_EQ(e.cols, (1 << (h / 2 + 1)) - 1) << h;
    EXPECT_EQ(e.rows, (1 << ((h + 1) / 2)) - 1) << h;
    EXPECT_GE(static_cast<long>(e.rows) * e.cols,
              (1L << h) - 1);  // everything fits
  }
}

class CbtMeshParam : public ::testing::TestWithParam<int> {};

TEST_P(CbtMeshParam, CellsAreDistinctAndInRange) {
  const auto e = embed_cbt_in_mesh(GetParam());
  std::set<int> cells;
  for (const int cell : e.cell_of_node) {
    EXPECT_GE(cell, 0);
    EXPECT_LT(cell, e.rows * e.cols);
    EXPECT_TRUE(cells.insert(cell).second) << "cell reused";
  }
}

TEST_P(CbtMeshParam, LeafEdgesHaveDilationOne) {
  const int h = GetParam();
  const auto e = embed_cbt_in_mesh(h);
  const int n = (1 << h) - 1;
  // Leaves occupy heap indices [2^(h-1) - 1, 2^h - 1).
  for (int v = (1 << (h - 1)) - 1; v < n; ++v) {
    EXPECT_EQ(e.edge_dilation(v), 1) << "leaf " << v;
  }
}

TEST_P(CbtMeshParam, AverageDilationStaysSmall) {
  const auto e = embed_cbt_in_mesh(GetParam());
  // The H-tree's level-l edges have dilation ~2^(l/2-1); the average
  // converges to about 1.4 (measured ~1.45 at h=14).
  EXPECT_LE(e.average_dilation(), 1.6);
  EXPECT_GE(e.average_dilation(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Heights, CbtMeshParam,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12));

TEST(CbtMesh, TopEdgeDilationIsHalfFootprint) {
  const auto e = embed_cbt_in_mesh(6);  // 7x15 grid, top split horizontal
  // Root's children sit half a child-footprint away.
  EXPECT_EQ(e.edge_dilation(1), 4);  // (width_of(5)+1)/2
  EXPECT_EQ(e.edge_dilation(2), 4);
}

TEST(CbtMeshCanned, CbtOntoMeshUsesHTree) {
  Graph g(15);
  for (int v = 1; v < 15; ++v) {
    g.add_edge(v, (v - 1) / 2);
  }
  const auto fam = detect_complete_binary_tree(g);
  ASSERT_TRUE(fam.has_value());
  const auto topo = Topology::mesh(3, 7);
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_NE(m->description.find("H-tree"), std::string::npos);
  EXPECT_EQ(m->contraction.num_clusters, 15);
}

TEST(CbtMeshCanned, TransposedTargetAccepted) {
  Graph g(15);
  for (int v = 1; v < 15; ++v) {
    g.add_edge(v, (v - 1) / 2);
  }
  const auto fam = detect_complete_binary_tree(g);
  const auto topo = Topology::mesh(7, 3);  // transposed footprint
  const auto m = canned_mapping(*fam, topo);
  ASSERT_TRUE(m.has_value());
}

TEST(CbtMeshCanned, TooSmallMeshFallsThrough) {
  Graph g(15);
  for (int v = 1; v < 15; ++v) {
    g.add_edge(v, (v - 1) / 2);
  }
  const auto fam = detect_complete_binary_tree(g);
  const auto topo = Topology::mesh(3, 5);  // needs 3x7
  EXPECT_FALSE(canned_mapping(*fam, topo).has_value());
}

}  // namespace
}  // namespace oregami
