// Release-only scale smoke: 10k tasks onto torus:64x64 must map in a
// handful of seconds (the ctest TIMEOUT in tests/CMakeLists.txt is the
// wall-clock ceiling) and produce a valid mapping. This is the tier-1
// guard for the "map 100k+ tasks in seconds" ROADMAP target — the
// 100k point itself lives in bench_multilevel (OREGAMI_BENCH_FULL=1)
// because it needs minutes of flat-baseline time to compare against.
#include <gtest/gtest.h>

#include "oregami/core/synthetic.hpp"
#include "oregami/mapper/multilevel.hpp"
#include "oregami/metrics/metrics.hpp"

namespace oregami {
namespace {

TEST(MultilevelScale, TenThousandTasksOnTorus64) {
  const TaskGraph graph = make_stencil2d(100, 100, 0x5CA1EULL);
  const Topology topo = Topology::torus(64, 64);
  MultilevelOptions ml;
  ml.jobs = 1;
  const MapperReport report = map_multilevel(graph, topo, ml);
  EXPECT_NO_THROW(validate_mapping(report.mapping, graph, topo));
  EXPECT_GT(completion_time(graph, report.mapping.proc_of_task(),
                            report.mapping.routing, topo),
            0);
}

}  // namespace
}  // namespace oregami
