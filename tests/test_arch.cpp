#include <gtest/gtest.h>

#include "oregami/arch/topology.hpp"
#include "oregami/graph/gray_code.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

TEST(Topology, RingShape) {
  const auto t = Topology::ring(8);
  EXPECT_EQ(t.num_procs(), 8);
  EXPECT_EQ(t.num_links(), 8);
  EXPECT_EQ(t.family(), TopoFamily::Ring);
  EXPECT_EQ(t.diameter(), 4);
  EXPECT_EQ(t.distance(0, 5), 3);
}

TEST(Topology, ChainShape) {
  const auto t = Topology::chain(6);
  EXPECT_EQ(t.num_links(), 5);
  EXPECT_EQ(t.diameter(), 5);
  EXPECT_EQ(t.distance(1, 4), 3);
}

TEST(Topology, MeshShapeAndCoords) {
  const auto t = Topology::mesh(3, 4);
  EXPECT_EQ(t.num_procs(), 12);
  EXPECT_EQ(t.num_links(), 3 * 3 + 4 * 2);  // 3 rows x 3 + 4 cols x 2
  EXPECT_EQ(t.diameter(), 2 + 3);
  EXPECT_EQ(t.coords2d(7), (std::pair{1, 3}));
  EXPECT_EQ(t.at2d(2, 1), 9);
  EXPECT_EQ(t.distance(t.at2d(0, 0), t.at2d(2, 3)), 5);
  EXPECT_EQ(t.proc_label(7), "(1,3)");
}

TEST(Topology, TorusWrapsDistances) {
  const auto t = Topology::torus(4, 4);
  EXPECT_EQ(t.num_procs(), 16);
  EXPECT_EQ(t.num_links(), 32);
  EXPECT_EQ(t.diameter(), 4);
  EXPECT_EQ(t.distance(t.at2d(0, 0), t.at2d(0, 3)), 1);
  EXPECT_EQ(t.distance(t.at2d(0, 0), t.at2d(3, 3)), 2);
}

class HypercubeTopo : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeTopo, DistanceIsHammingDistance) {
  const int d = GetParam();
  const auto t = Topology::hypercube(d);
  EXPECT_EQ(t.num_procs(), 1 << d);
  EXPECT_EQ(t.num_links(), d * (1 << d) / 2);
  EXPECT_EQ(t.diameter(), d);
  for (int u = 0; u < t.num_procs(); u += 3) {
    for (int v = 0; v < t.num_procs(); v += 5) {
      EXPECT_EQ(t.distance(u, v),
                popcount32(static_cast<std::uint32_t>(u ^ v)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeTopo, ::testing::Values(1, 2, 3, 4, 5));

TEST(Topology, HypercubeLabels) {
  const auto t = Topology::hypercube(3);
  EXPECT_EQ(t.proc_label(5), "101");
  EXPECT_EQ(t.proc_label(0), "000");
}

TEST(Topology, CompleteBinaryTree) {
  const auto t = Topology::complete_binary_tree(4);
  EXPECT_EQ(t.num_procs(), 15);
  EXPECT_EQ(t.num_links(), 14);
  EXPECT_EQ(t.diameter(), 6);
  EXPECT_EQ(t.distance(7, 8), 2);  // siblings via parent 3
}

TEST(Topology, StarAndComplete) {
  const auto star = Topology::star(6);
  EXPECT_EQ(star.num_links(), 5);
  EXPECT_EQ(star.diameter(), 2);
  const auto k = Topology::complete(5);
  EXPECT_EQ(k.num_links(), 10);
  EXPECT_EQ(k.diameter(), 1);
}

TEST(Topology, ButterflyShape) {
  const int kk = 3;
  const auto t = Topology::butterfly(kk);
  EXPECT_EQ(t.num_procs(), (kk + 1) * (1 << kk));
  EXPECT_EQ(t.num_links(), kk * (1 << kk) * 2);
  // Ranks are connected: first-rank node reaches last rank in k hops.
  EXPECT_EQ(t.distance(0, kk * (1 << kk)), kk);
}

TEST(Topology, Mesh3dShape) {
  const auto t = Topology::mesh3d(2, 3, 4);
  EXPECT_EQ(t.num_procs(), 24);
  EXPECT_EQ(t.diameter(), 1 + 2 + 3);
}

TEST(Topology, CustomGraph) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto t = Topology::custom("tri-chain", std::move(g));
  EXPECT_EQ(t.family(), TopoFamily::Custom);
  EXPECT_EQ(t.name(), "tri-chain");
  EXPECT_EQ(t.distance(0, 2), 2);
  EXPECT_EQ(t.proc_label(2), "2");
}

TEST(Topology, LinkBetweenAndEndpoints) {
  const auto t = Topology::ring(5);
  const auto link = t.link_between(2, 3);
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(t.link_endpoints(*link), (std::pair{2, 3}));
  EXPECT_FALSE(t.link_between(0, 2).has_value());
  // Symmetric lookup.
  EXPECT_EQ(t.link_between(3, 2), link);
}

TEST(Topology, CoordsRequire2dFamily) {
  const auto t = Topology::ring(5);
  EXPECT_DEATH((void)t.coords2d(0), "coords2d");
}

TEST(TopoFamilyNames, ToString) {
  EXPECT_EQ(to_string(TopoFamily::Hypercube), "hypercube");
  EXPECT_EQ(to_string(TopoFamily::Mesh3D), "mesh3d");
}

}  // namespace
}  // namespace oregami
