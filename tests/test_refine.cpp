#include <gtest/gtest.h>

#include <algorithm>

#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/mm_route.hpp"
#include "oregami/mapper/mwm_contract.hpp"
#include "oregami/mapper/refine.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

Graph random_graph(int n, double density, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_double() < density) {
        g.add_edge(u, v, rng.next_in(1, 20));
      }
    }
  }
  return g;
}

std::int64_t external(const Graph& g, const Contraction& c) {
  std::int64_t total = 0;
  for (const auto& e : g.edges()) {
    if (c.cluster_of_task[static_cast<std::size_t>(e.u)] !=
        c.cluster_of_task[static_cast<std::size_t>(e.v)]) {
      total += e.weight;
    }
  }
  return total;
}

TEST(Refine, FixesDeliberatelyBadAssignment) {
  // Two weight-heavy cliques split the wrong way: refinement must
  // recover the natural bipartition.
  Graph g(8);
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      g.add_edge(u, v, 10);
      g.add_edge(u + 4, v + 4, 10);
    }
  }
  g.add_edge(0, 4, 1);  // weak bridge
  Contraction bad;
  bad.num_clusters = 2;
  bad.cluster_of_task = {0, 1, 0, 1, 0, 1, 0, 1};  // interleaved: awful
  const auto before = external(g, bad);
  const auto result = refine_contraction(g, bad, 4);
  EXPECT_EQ(result.external_before, before);
  EXPECT_EQ(result.external_after, 1);  // only the bridge remains
  EXPECT_GT(result.moves + result.swaps, 0);
}

TEST(Refine, RespectsLoadBoundAndClusterCount) {
  const Graph g = random_graph(20, 0.3, 3);
  const auto base = mwm_contract(g, 4);
  const auto result =
      refine_contraction(g, base.contraction, base.load_bound);
  EXPECT_EQ(result.contraction.num_clusters,
            base.contraction.num_clusters);
  EXPECT_LE(result.contraction.max_cluster_size(), base.load_bound);
  EXPECT_NO_THROW(result.contraction.validate(20));
}

class RefineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefineProperty, NeverWorsensAndIsIdempotentAtFixpoint) {
  SplitMix64 rng(GetParam());
  const int n = static_cast<int>(10 + rng.next_below(30));
  const int procs = static_cast<int>(2 + rng.next_below(5));
  const Graph g = random_graph(n, 0.35, GetParam() * 31 + 5);
  const auto base = mwm_contract(g, procs);
  const auto once =
      refine_contraction(g, base.contraction, base.load_bound);
  EXPECT_LE(once.external_after, once.external_before);
  EXPECT_EQ(once.external_after, external(g, once.contraction));
  // Running again from the fixpoint changes nothing.
  const auto twice =
      refine_contraction(g, once.contraction, base.load_bound);
  EXPECT_EQ(twice.external_after, once.external_after);
  EXPECT_EQ(twice.moves + twice.swaps, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(Refine, DriverOptionAppliesIt) {
  TaskGraph tg;
  SplitMix64 rng(9);
  for (int i = 0; i < 20; ++i) {
    tg.add_task("t" + std::to_string(i));
  }
  const int p = tg.add_comm_phase("p");
  for (int u = 0; u < 20; ++u) {
    for (int v = u + 1; v < 20; ++v) {
      if (rng.next_double() < 0.3) {
        tg.add_comm_edge(p, u, v, rng.next_in(1, 9));
      }
    }
  }
  MapperOptions options;
  options.refine = true;
  const auto report =
      map_computation(tg, Topology::mesh(2, 3), options);
  EXPECT_EQ(report.strategy, MapStrategy::General);
  EXPECT_NE(report.details.find("KL refinement"), std::string::npos);

  // Refined mapping never has higher IPC than the unrefined one.
  MapperOptions plain;
  const auto base = map_computation(tg, Topology::mesh(2, 3), plain);
  const Graph agg = tg.aggregate_graph();
  EXPECT_LE(external(agg, report.mapping.contraction),
            external(agg, base.mapping.contraction));
}

// ------------------------------------------------- placement refinement

TEST(RefinePlacement, PullsChattyNeighboursTogether) {
  // Two tasks that talk a lot, deliberately placed at opposite ends of
  // a chain: refinement must close the gap (or at least the completion
  // model's view of it).
  TaskGraph tg;
  for (int i = 0; i < 4; ++i) {
    tg.add_task("t" + std::to_string(i));
  }
  const int p = tg.add_comm_phase("p");
  tg.add_comm_edge(p, 0, 1, 100);
  tg.add_comm_edge(p, 2, 3, 1);
  const Topology topo = Topology::chain(8);
  std::vector<int> procs = {0, 7, 3, 4};  // heavy pair maximally apart
  std::vector<PhaseRouting> routing = mm_route(tg, procs, topo);

  const auto before = completion_time(tg, procs, routing, topo);
  const auto refined = refine_placement(tg, topo, procs, routing);
  EXPECT_EQ(refined.completion_before, before);
  EXPECT_LT(refined.completion_after, before);
  EXPECT_GT(refined.moves, 0);
  // The heavy pair ends up adjacent or co-located.
  EXPECT_LE(topo.distance(refined.proc_of_task[0], refined.proc_of_task[1]),
            1);
}

TEST(RefinePlacement, RespectsLoadBound) {
  TaskGraph tg;
  for (int i = 0; i < 6; ++i) {
    tg.add_task("t" + std::to_string(i));
  }
  const int p = tg.add_comm_phase("p");
  for (int i = 1; i < 6; ++i) {
    tg.add_comm_edge(p, 0, i, 50);  // star pulls everything onto one proc
  }
  const Topology topo = Topology::ring(6);
  std::vector<int> procs = {0, 1, 2, 3, 4, 5};
  std::vector<PhaseRouting> routing = mm_route(tg, procs, topo);

  const auto refined =
      refine_placement(tg, topo, procs, routing, {}, /*load_bound_B=*/1);
  // Bound 1 forbids every move: each processor already hosts one task.
  EXPECT_EQ(refined.moves, 0);
  EXPECT_EQ(refined.proc_of_task, procs);

  const auto loose =
      refine_placement(tg, topo, procs, routing, {}, /*load_bound_B=*/2);
  std::vector<int> count(6, 0);
  for (const int proc : loose.proc_of_task) {
    ++count[static_cast<std::size_t>(proc)];
  }
  EXPECT_LE(*std::max_element(count.begin(), count.end()), 2);
  EXPECT_LE(loose.completion_after, loose.completion_before);
}

TEST(RefinePlacement, DriverFlagNeverWorsensAndStaysValid) {
  TaskGraph tg;
  SplitMix64 rng(21);
  for (int i = 0; i < 18; ++i) {
    tg.add_task("t" + std::to_string(i));
  }
  const int p = tg.add_comm_phase("p");
  for (int u = 0; u < 18; ++u) {
    for (int v = u + 1; v < 18; ++v) {
      if (rng.next_double() < 0.25) {
        tg.add_comm_edge(p, u, v, rng.next_in(1, 9));
      }
    }
  }
  const Topology topo = Topology::mesh(3, 3);
  MapperOptions plain;
  const auto base = map_computation(tg, topo, plain);
  MapperOptions polished = plain;
  polished.refine_placement = true;
  const auto report = map_computation(tg, topo, polished);

  ASSERT_NO_THROW(validate_mapping(report.mapping, tg, topo));
  EXPECT_LE(completion_time(tg, report.mapping.proc_of_task(),
                            report.mapping.routing, topo),
            completion_time(tg, base.mapping.proc_of_task(),
                            base.mapping.routing, topo));
  // Deterministic: a second run reproduces the same mapping.
  const auto again = map_computation(tg, topo, polished);
  EXPECT_EQ(again.mapping.proc_of_task(), report.mapping.proc_of_task());
}

}  // namespace
}  // namespace oregami
