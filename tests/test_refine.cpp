#include <gtest/gtest.h>

#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/mwm_contract.hpp"
#include "oregami/mapper/refine.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {
namespace {

Graph random_graph(int n, double density, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_double() < density) {
        g.add_edge(u, v, rng.next_in(1, 20));
      }
    }
  }
  return g;
}

std::int64_t external(const Graph& g, const Contraction& c) {
  std::int64_t total = 0;
  for (const auto& e : g.edges()) {
    if (c.cluster_of_task[static_cast<std::size_t>(e.u)] !=
        c.cluster_of_task[static_cast<std::size_t>(e.v)]) {
      total += e.weight;
    }
  }
  return total;
}

TEST(Refine, FixesDeliberatelyBadAssignment) {
  // Two weight-heavy cliques split the wrong way: refinement must
  // recover the natural bipartition.
  Graph g(8);
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      g.add_edge(u, v, 10);
      g.add_edge(u + 4, v + 4, 10);
    }
  }
  g.add_edge(0, 4, 1);  // weak bridge
  Contraction bad;
  bad.num_clusters = 2;
  bad.cluster_of_task = {0, 1, 0, 1, 0, 1, 0, 1};  // interleaved: awful
  const auto before = external(g, bad);
  const auto result = refine_contraction(g, bad, 4);
  EXPECT_EQ(result.external_before, before);
  EXPECT_EQ(result.external_after, 1);  // only the bridge remains
  EXPECT_GT(result.moves + result.swaps, 0);
}

TEST(Refine, RespectsLoadBoundAndClusterCount) {
  const Graph g = random_graph(20, 0.3, 3);
  const auto base = mwm_contract(g, 4);
  const auto result =
      refine_contraction(g, base.contraction, base.load_bound);
  EXPECT_EQ(result.contraction.num_clusters,
            base.contraction.num_clusters);
  EXPECT_LE(result.contraction.max_cluster_size(), base.load_bound);
  EXPECT_NO_THROW(result.contraction.validate(20));
}

class RefineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefineProperty, NeverWorsensAndIsIdempotentAtFixpoint) {
  SplitMix64 rng(GetParam());
  const int n = static_cast<int>(10 + rng.next_below(30));
  const int procs = static_cast<int>(2 + rng.next_below(5));
  const Graph g = random_graph(n, 0.35, GetParam() * 31 + 5);
  const auto base = mwm_contract(g, procs);
  const auto once =
      refine_contraction(g, base.contraction, base.load_bound);
  EXPECT_LE(once.external_after, once.external_before);
  EXPECT_EQ(once.external_after, external(g, once.contraction));
  // Running again from the fixpoint changes nothing.
  const auto twice =
      refine_contraction(g, once.contraction, base.load_bound);
  EXPECT_EQ(twice.external_after, once.external_after);
  EXPECT_EQ(twice.moves + twice.swaps, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(Refine, DriverOptionAppliesIt) {
  TaskGraph tg;
  SplitMix64 rng(9);
  for (int i = 0; i < 20; ++i) {
    tg.add_task("t" + std::to_string(i));
  }
  const int p = tg.add_comm_phase("p");
  for (int u = 0; u < 20; ++u) {
    for (int v = u + 1; v < 20; ++v) {
      if (rng.next_double() < 0.3) {
        tg.add_comm_edge(p, u, v, rng.next_in(1, 9));
      }
    }
  }
  MapperOptions options;
  options.refine = true;
  const auto report =
      map_computation(tg, Topology::mesh(2, 3), options);
  EXPECT_EQ(report.strategy, MapStrategy::General);
  EXPECT_NE(report.details.find("KL refinement"), std::string::npos);

  // Refined mapping never has higher IPC than the unrefined one.
  MapperOptions plain;
  const auto base = map_computation(tg, Topology::mesh(2, 3), plain);
  const Graph agg = tg.aggregate_graph();
  EXPECT_LE(external(agg, report.mapping.contraction),
            external(agg, base.mapping.contraction));
}

}  // namespace
}  // namespace oregami
