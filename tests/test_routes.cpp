#include <gtest/gtest.h>

#include "oregami/arch/routes.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

TEST(NextHop, ChoicesOnHypercube) {
  const auto t = Topology::hypercube(3);
  // 0 -> 7: any of the three bit flips starts a shortest path.
  EXPECT_EQ(next_hop_choices(t, 0, 7), (std::vector<int>{1, 2, 4}));
  // 0 -> 1: only the single bit flip.
  EXPECT_EQ(next_hop_choices(t, 0, 1), (std::vector<int>{1}));
  EXPECT_TRUE(next_hop_choices(t, 5, 5).empty());
}

TEST(NextHop, ChoicesOnMeshInterior) {
  const auto t = Topology::mesh(3, 3);
  // (0,0) -> (2,2): east and south both shorten.
  const auto choices = next_hop_choices(t, t.at2d(0, 0), t.at2d(2, 2));
  EXPECT_EQ(choices.size(), 2u);
}

TEST(AllShortestRoutes, CountOnHypercube) {
  const auto t = Topology::hypercube(3);
  // Distance-3 pair: 3! = 6 shortest routes.
  const auto routes = all_shortest_routes(t, 0, 7);
  EXPECT_EQ(routes.size(), 6u);
  for (const auto& r : routes) {
    EXPECT_TRUE(is_shortest_route(t, r, 0, 7));
  }
  EXPECT_EQ(count_shortest_routes(t, 0, 7), 6u);
}

TEST(AllShortestRoutes, LimitIsRespected) {
  const auto t = Topology::hypercube(4);
  const auto routes = all_shortest_routes(t, 0, 15, 5);
  EXPECT_EQ(routes.size(), 5u);
  EXPECT_EQ(count_shortest_routes(t, 0, 15), 24u);  // 4!
}

TEST(AllShortestRoutes, MeshBinomialCount) {
  const auto t = Topology::mesh(3, 3);
  // (0,0)->(2,2): C(4,2) = 6 monotone lattice paths.
  EXPECT_EQ(count_shortest_routes(t, t.at2d(0, 0), t.at2d(2, 2)), 6u);
}

TEST(AllShortestRoutes, TrivialRouteForSameNode) {
  const auto t = Topology::ring(5);
  const auto routes = all_shortest_routes(t, 2, 2);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].hops(), 0);
  EXPECT_EQ(routes[0].nodes, std::vector<int>{2});
}

TEST(GreedyRoute, IsShortest) {
  const auto t = Topology::torus(4, 4);
  for (int u = 0; u < 16; ++u) {
    for (int v = 0; v < 16; ++v) {
      const auto r = greedy_shortest_route(t, u, v);
      EXPECT_TRUE(is_shortest_route(t, r, u, v));
    }
  }
}

TEST(DimensionOrder, HypercubeAscendingBits) {
  const auto t = Topology::hypercube(3);
  const auto r = dimension_order_route(t, 1, 6);  // 001 -> 110
  // Corrections ascending: flip bit0 (->000), bit1 (->010), bit2 (->110).
  EXPECT_EQ(r.nodes, (std::vector<int>{1, 0, 2, 6}));
  EXPECT_TRUE(is_shortest_route(t, r, 1, 6));
}

TEST(DimensionOrder, MeshColumnFirst) {
  const auto t = Topology::mesh(3, 3);
  const auto r = dimension_order_route(t, t.at2d(0, 0), t.at2d(2, 2));
  // Column to 2 first, then rows.
  EXPECT_EQ(r.nodes,
            (std::vector<int>{t.at2d(0, 0), t.at2d(0, 1), t.at2d(0, 2),
                              t.at2d(1, 2), t.at2d(2, 2)}));
}

TEST(DimensionOrder, TorusTakesShortWrap) {
  const auto t = Topology::torus(5, 5);
  const auto r = dimension_order_route(t, t.at2d(0, 0), t.at2d(0, 4));
  EXPECT_EQ(r.hops(), 1);  // wraps backwards
}

TEST(DimensionOrder, RingAndChain) {
  const auto ring = Topology::ring(6);
  EXPECT_EQ(dimension_order_route(ring, 5, 1).hops(), 2);
  const auto chain = Topology::chain(6);
  EXPECT_EQ(dimension_order_route(chain, 4, 1).hops(), 3);
}

TEST(DimensionOrder, UnsupportedFamilyThrows) {
  const auto t = Topology::star(5);
  EXPECT_THROW((void)dimension_order_route(t, 1, 2), MappingError);
}

TEST(RouteFromNodes, RejectsNonAdjacentSteps) {
  const auto t = Topology::ring(6);
  EXPECT_THROW((void)route_from_nodes(t, {0, 2}), MappingError);
  const auto r = route_from_nodes(t, {0, 1, 2});
  EXPECT_EQ(r.links.size(), 2u);
}

TEST(RouteValidity, ChecksEndpointsAndLinks) {
  const auto t = Topology::ring(6);
  auto r = route_from_nodes(t, {0, 1, 2});
  EXPECT_TRUE(is_valid_route(t, r, 0, 2));
  EXPECT_FALSE(is_valid_route(t, r, 0, 3));
  EXPECT_FALSE(is_valid_route(t, r, 1, 2));
  // Tamper with a link id.
  r.links[0] = r.links[0] == 0 ? 1 : 0;
  EXPECT_FALSE(is_valid_route(t, r, 0, 2));
}

TEST(RouteValidity, NonShortestDetected) {
  const auto t = Topology::ring(6);
  const auto r = route_from_nodes(t, {0, 5, 4, 3});  // 3 hops backwards
  EXPECT_TRUE(is_valid_route(t, r, 0, 3));
  EXPECT_TRUE(is_shortest_route(t, r, 0, 3));  // both directions are 3
  const auto longer = route_from_nodes(t, {0, 1, 2, 3, 4});
  EXPECT_FALSE(is_shortest_route(t, longer, 0, 4));
}

}  // namespace
}  // namespace oregami
