// Tests for the simulated-annealing placement chain
// (mapper/anneal.hpp): the acceptance-with-undo invariant (never worse
// than the init; bit-identical round-trip when nothing improves), the
// 0/-1/positive deadline idiom, seed determinism, and the portfolio
// candidate wiring.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/anneal.hpp"
#include "oregami/mapper/mm_route.hpp"
#include "oregami/mapper/portfolio.hpp"
#include "oregami/metrics/completion_model.hpp"

namespace oregami {
namespace {

struct Compiled {
  larcs::Program ast;
  larcs::CompiledProgram cp;
};

Compiled compile_named(const std::string& name,
                       std::map<std::string, long> bindings) {
  for (const auto& entry : larcs::programs::catalog()) {
    if (entry.name == name) {
      larcs::Program ast = larcs::parse_program(entry.source);
      larcs::CompiledProgram cp = larcs::compile(ast, bindings);
      return {std::move(ast), std::move(cp)};
    }
  }
  throw std::runtime_error("program not in catalog: " + name);
}

// Round-robin initial placement + MM-Route, the usual SA starting
// point in these tests.
struct Init {
  std::vector<int> proc_of_task;
  std::vector<PhaseRouting> routing;
};

Init round_robin_init(const TaskGraph& graph, const Topology& topo) {
  Init init;
  init.proc_of_task.resize(static_cast<std::size_t>(graph.num_tasks()));
  for (int t = 0; t < graph.num_tasks(); ++t) {
    init.proc_of_task[static_cast<std::size_t>(t)] = t % topo.num_procs();
  }
  init.routing = mm_route(graph, init.proc_of_task, topo);
  return init;
}

// --------------------------------------------- acceptance-with-undo

TEST(Anneal, NeverWorseThanInit) {
  const auto c = compile_named("nbody", {{"n", 15}, {"s", 4}, {"m", 8}});
  const Topology topo = Topology::mesh(4, 4);
  const Init init = round_robin_init(c.cp.graph, topo);
  const std::int64_t before =
      completion_time(c.cp.graph, init.proc_of_task, init.routing, topo);

  AnnealOptions opts;
  opts.iterations = 2000;
  const AnnealResult r = anneal_placement(c.cp.graph, topo,
                                          init.proc_of_task, init.routing,
                                          {}, opts);
  EXPECT_EQ(r.completion_before, before);
  EXPECT_LE(r.completion_after, r.completion_before);
  // The reported score is the genuine completion-model score of the
  // returned state, not a stale incremental value.
  EXPECT_EQ(r.completion_after,
            completion_time(c.cp.graph, r.proc_of_task, r.routing, topo));
}

// A single task on a symmetric machine: every move is a sideways move
// (completion is unchanged), so no proposal ever strictly improves and
// the undo unwind must round-trip to the exact initial state.
TEST(Anneal, RoundTripsToInitWhenNothingImproves) {
  TaskGraph g;
  g.add_task("only");
  g.add_exec_phase("e", {7});
  g.validate();
  const Topology topo = Topology::ring(4);

  const std::vector<int> init_placement = {2};
  const std::vector<PhaseRouting> init_routing =
      mm_route(g, init_placement, topo);

  AnnealOptions opts;
  opts.iterations = 500;
  const AnnealResult r =
      anneal_placement(g, topo, init_placement, init_routing, {}, opts);
  EXPECT_GT(r.proposed, 0);
  EXPECT_EQ(r.completion_after, r.completion_before);
  EXPECT_EQ(r.proc_of_task, init_placement);  // bitwise round-trip
  EXPECT_EQ(r.improvement(), 0);
}

// A hand-built bad init the chain must escape: two tasks exchanging
// volume 100 pinned to opposite ends of a chain. Moving either next to
// the other is a huge downhill step, always accepted.
TEST(Anneal, ImprovesObviouslyPoorInit) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int comm = g.add_comm_phase("c");
  g.add_comm_edge(comm, 0, 1, 100);
  g.add_comm_edge(comm, 1, 0, 100);
  g.add_exec_phase("e", {1, 1});
  g.validate();
  const Topology topo = Topology::chain(8);

  const std::vector<int> init_placement = {0, 7};
  const std::vector<PhaseRouting> init_routing =
      mm_route(g, init_placement, topo);

  AnnealOptions opts;
  opts.iterations = 1000;
  const AnnealResult r =
      anneal_placement(g, topo, init_placement, init_routing, {}, opts);
  EXPECT_GT(r.improvement(), 0);
  EXPECT_LT(r.completion_after, r.completion_before);
  // The improved placement really pulled the pair together.
  EXPECT_LT(topo.distance(r.proc_of_task[0], r.proc_of_task[1]),
            topo.distance(0, 7));
}

TEST(Anneal, DeterministicForFixedSeedAndSensitiveToIt) {
  const auto c = compile_named("jacobi", {{"n", 8}, {"iters", 10}});
  const Topology topo = Topology::mesh(4, 4);
  const Init init = round_robin_init(c.cp.graph, topo);

  AnnealOptions opts;
  opts.iterations = 1500;
  opts.seed = 0xABCDEFull;
  const AnnealResult a = anneal_placement(
      c.cp.graph, topo, init.proc_of_task, init.routing, {}, opts);
  const AnnealResult b = anneal_placement(
      c.cp.graph, topo, init.proc_of_task, init.routing, {}, opts);
  EXPECT_EQ(a.proc_of_task, b.proc_of_task);
  EXPECT_EQ(a.completion_after, b.completion_after);
  EXPECT_EQ(a.proposed, b.proposed);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.uphill, b.uphill);
}

TEST(Anneal, ZeroIterationsReturnsInitUntouched) {
  const auto c = compile_named("jacobi", {{"n", 8}, {"iters", 10}});
  const Topology topo = Topology::mesh(4, 4);
  const Init init = round_robin_init(c.cp.graph, topo);

  AnnealOptions opts;
  opts.iterations = 0;
  const AnnealResult r = anneal_placement(
      c.cp.graph, topo, init.proc_of_task, init.routing, {}, opts);
  EXPECT_EQ(r.proposed, 0);
  EXPECT_EQ(r.accepted, 0);
  EXPECT_EQ(r.proc_of_task, init.proc_of_task);
  EXPECT_EQ(r.completion_after, r.completion_before);
}

// ----------------------------------------------------- deadline idiom

TEST(Anneal, DeadlineIdiom) {
  const auto c = compile_named("nbody", {{"n", 15}, {"s", 4}, {"m", 8}});
  const Topology topo = Topology::mesh(4, 4);
  const Init init = round_robin_init(c.cp.graph, topo);

  // Budget < 0: deterministically expired -- no proposals run, the
  // init comes back bit-identical, and deadline_hit stays false (only
  // a *positive* budget that fires mid-chain reports a hit).
  AnnealOptions expired;
  expired.iterations = 2000;
  expired.time_budget_ms = -1;
  const AnnealResult r_expired = anneal_placement(
      c.cp.graph, topo, init.proc_of_task, init.routing, {}, expired);
  EXPECT_EQ(r_expired.proposed, 0);
  EXPECT_EQ(r_expired.accepted, 0);
  EXPECT_FALSE(r_expired.deadline_hit);
  EXPECT_EQ(r_expired.proc_of_task, init.proc_of_task);
  EXPECT_EQ(r_expired.completion_after, r_expired.completion_before);

  // Budget 0 (never read the clock) and a generous positive budget
  // (never expires) must agree proposal for proposal.
  AnnealOptions none;
  none.iterations = 1000;
  const AnnealResult r_none = anneal_placement(
      c.cp.graph, topo, init.proc_of_task, init.routing, {}, none);
  EXPECT_FALSE(r_none.deadline_hit);
  EXPECT_EQ(r_none.proposed, 1000);

  AnnealOptions generous = none;
  generous.time_budget_ms = 60'000;
  const AnnealResult r_generous = anneal_placement(
      c.cp.graph, topo, init.proc_of_task, init.routing, {}, generous);
  EXPECT_EQ(r_generous.proc_of_task, r_none.proc_of_task);
  EXPECT_EQ(r_generous.completion_after, r_none.completion_after);
  EXPECT_EQ(r_generous.proposed, r_none.proposed);
}

// ------------------------------------------------- portfolio candidate

TEST(Anneal, RunsAsPortfolioCandidatesBehindAnnealFlag) {
  const auto c = compile_named("nbody", {{"n", 15}, {"s", 4}, {"m", 8}});
  const Topology topo = Topology::mesh(4, 4);
  PortfolioOptions popts;
  popts.num_seeded = 2;
  popts.num_anneal = 3;
  const auto result = portfolio_map_program(c.ast, c.cp, topo, {}, popts);
  int anneal_candidates = 0;
  for (const auto& cand : result.candidates) {
    if (cand.label.rfind("anneal seed#", 0) == 0) {
      ++anneal_candidates;
      EXPECT_TRUE(cand.ok);
      EXPECT_EQ(cand.strategy, MapStrategy::Anneal);
      EXPECT_GT(cand.completion, 0);
    }
  }
  EXPECT_EQ(anneal_candidates, 3);

  // Off by default.
  PortfolioOptions off;
  off.num_seeded = 2;
  const auto plain = portfolio_map_program(c.ast, c.cp, topo, {}, off);
  for (const auto& cand : plain.candidates) {
    EXPECT_NE(cand.label.rfind("anneal seed#", 0), 0u);
  }
}

}  // namespace
}  // namespace oregami
