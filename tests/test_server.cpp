// The mapping server end to end: wire parsing/formatting, the serve()
// loop's determinism contract (order-normalized result streams are
// byte-identical across worker counts), per-job error handling, and
// warm-cache reuse across serve() calls.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "oregami/larcs/programs.hpp"
#include "oregami/server/persist.hpp"
#include "oregami/server/server.hpp"
#include "oregami/server/telemetry.hpp"
#include "oregami/server/wire.hpp"
#include "oregami/support/failpoint.hpp"
#include "oregami/support/metrics.hpp"

namespace oregami::server {
namespace {

void expect_contains(const std::string& haystack,
                     const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "expected to find: " << needle << "\nin: " << haystack;
}

// ----------------------------------------------------------- parsing

TEST(WireParse, AcceptsFullJob) {
  const WireJob job = parse_job(
      R"({"id":7,"program":"nbody","bind":{"n":15,"s":4,"m":8},)"
      R"("topology":"mesh:4x4","options":{"portfolio":8,"anneal":2,)"
      R"("heft":true,"seed":123},"deadline_ms":50})",
      3);
  EXPECT_EQ(job.id, "7");
  EXPECT_EQ(job.line, 3u);
  EXPECT_EQ(job.program, "nbody");
  EXPECT_EQ(job.topology, "mesh:4x4");
  EXPECT_EQ(job.bindings.at("n"), 15);
  EXPECT_EQ(job.bindings.at("s"), 4);
  EXPECT_EQ(job.options.portfolio, 8);
  EXPECT_EQ(job.options.anneal, 2);
  EXPECT_TRUE(job.options.heft);
  EXPECT_EQ(job.options.portfolio_seed, 123u);
  EXPECT_EQ(job.deadline_ms, 50);
  EXPECT_EQ(job.options.jobs, 1);  // server default: no per-job fan-out
}

TEST(WireParse, StringAndNumericIdsBothEchoCanonically) {
  EXPECT_EQ(parse_job(R"({"id":"abc","larcs":"x","topology":"ring:2"})", 1)
                .id,
            "abc");
  EXPECT_EQ(parse_job(R"({"id":42,"larcs":"x","topology":"ring:2"})", 1).id,
            "42");
}

void expect_parse_error(const std::string& line, int code,
                        const std::string& needle) {
  try {
    (void)parse_job(line, 9);
    FAIL() << "expected WireError for: " << line;
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), code) << e.what();
    expect_contains(e.what(), needle);
  }
}

TEST(WireParse, RejectsBadJobsWithQuotableMessages) {
  expect_parse_error("not json", kJobMalformed, "JSON error");
  expect_parse_error("[1,2]", kJobMalformed, "must be a JSON object");
  expect_parse_error(R"({"program":"x","topology":"ring:2"})",
                     kJobMalformed, "missing required field \"id\"");
  expect_parse_error(R"({"id":"","program":"x","topology":"ring:2"})",
                     kJobMalformed, "\"id\" must not be empty");
  expect_parse_error(R"({"id":1,"program":"x"})", kJobMalformed,
                     "missing required field \"topology\"");
  expect_parse_error(R"({"id":1,"topology":"ring:2"})", kJobMalformed,
                     "exactly one of");
  expect_parse_error(
      R"({"id":1,"program":"x","larcs":"y","topology":"ring:2"})",
      kJobMalformed, "mutually exclusive");
  expect_parse_error(
      R"({"id":1,"program":"x","topology":"ring:2","frob":1})",
      kJobMalformed, "unknown field \"frob\"");
  expect_parse_error(
      R"({"id":1,"program":"x","topology":"ring:2","bind":{"n":1.5}})",
      kJobMalformed, "bind.n");
  expect_parse_error(
      R"({"id":1,"program":"x","topology":"ring:2",)"
      R"("options":{"warp":9}})",
      kJobMalformed, "unknown option \"warp\"");
  // The CLI's flag-combination contract, enforced per job.
  expect_parse_error(
      R"({"id":1,"program":"x","topology":"ring:2",)"
      R"("options":{"anneal":2}})",
      kJobMalformed, "requires options.portfolio");
  expect_parse_error(
      R"({"id":1,"program":"x","topology":"ring:2",)"
      R"("options":{"multilevel":-1,"portfolio":4}})",
      kJobMalformed, "incompatible");
  // Every parse error names the job once an id is known.
  expect_parse_error(
      R"({"id":7,"program":"x","topology":"ring:2","frob":1})",
      kJobMalformed, "job 7:");
}

// -------------------------------------------------------- formatting

TEST(WireFormat, JsonEscapeCoversControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(WireFormat, OkResultFieldOrderIsStable) {
  CachedOutcome outcome;
  outcome.ok = true;
  outcome.strategy = "canned";
  outcome.completion = 10;
  outcome.external_ipc = 20;
  outcome.max_load = 5;
  outcome.proc_of_task = {0, 1};
  EXPECT_EQ(format_ok_result("7", 0xabcULL, true, outcome, 1.5),
            "{\"id\":\"7\",\"status\":\"ok\","
            "\"digest\":\"0000000000000abc\",\"cache\":\"hit\","
            "\"strategy\":\"canned\",\"completion\":10,"
            "\"external_ipc\":20,\"max_load\":5,\"procs\":[0,1],"
            "\"wall_ms\":1.500}");
}

TEST(WireFormat, ErrorResultRendersNullIdWhenUnknown) {
  EXPECT_EQ(format_error_result("", 4, kJobMalformed, "bad \"x\""),
            "{\"id\":null,\"line\":4,\"status\":\"error\",\"code\":2,"
            "\"error\":\"bad \\\"x\\\"\"}");
}

TEST(WireFormat, ErrorResultCarriesRetryAfterHintWhenGiven) {
  EXPECT_EQ(format_error_result("9", 2, kJobRejected, "queue full", 35),
            "{\"id\":\"9\",\"line\":2,\"status\":\"error\",\"code\":5,"
            "\"retry_after_ms\":35,\"error\":\"queue full\"}");
  // The default omits the field entirely (non-rejection errors).
  EXPECT_EQ(format_error_result("9", 2, kJobRejected, "queue full"),
            "{\"id\":\"9\",\"line\":2,\"status\":\"error\",\"code\":5,"
            "\"error\":\"queue full\"}");
}

// ------------------------------------------------------------- serve

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

/// Normalizes a result stream for cross-run comparison: sorts by line
/// text (result ids are unique, so this is a stable order) and blanks
/// the one schedule-dependent bit -- which of several *identical
/// concurrent* jobs computed vs joined (per-line "cache" label).
std::vector<std::string> normalized(const std::string& text) {
  std::vector<std::string> lines = split_lines(text);
  for (auto& line : lines) {
    for (const char* label : {"\"cache\":\"hit\"", "\"cache\":\"miss\""}) {
      const auto at = line.find(label);
      if (at != std::string::npos) {
        line.replace(at, std::string(label).size(), "\"cache\":\"?\"");
      }
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// A 50-line mixed stream: every catalog program (with its example
/// bindings), duplicates that must hit the cache, and a tail of
/// malformed / unknown-input / infeasible / expired jobs.
std::string mixed_stream() {
  std::string stream;
  int id = 0;
  const auto catalog = larcs::programs::catalog();
  auto job_line = [&](const larcs::programs::CatalogEntry& entry,
                      const std::string& topo) {
    std::string line =
        "{\"id\":" + std::to_string(++id) + ",\"program\":\"" + entry.name +
        "\",\"bind\":{";
    bool first = true;
    for (const auto& [name, value] : entry.example_bindings) {
      if (!first) {
        line += ',';
      }
      first = false;
      line += "\"" + name + "\":" + std::to_string(value);
    }
    line += "},\"topology\":\"" + topo + "\"}\n";
    stream += line;
  };
  for (int round = 0; round < 3; ++round) {  // 30 jobs, 20 duplicates
    for (const auto& entry : catalog) {
      job_line(entry, round == 1 ? "ring:16" : "mesh:4x4");
    }
  }
  // 20 deterministic failures of every flavour.
  for (int i = 0; i < 5; ++i) {
    stream += "{\"id\":" + std::to_string(++id) + "}\n";  // malformed
    stream += "{\"id\":" + std::to_string(++id) +
              ",\"program\":\"nope\",\"topology\":\"mesh:4x4\"}\n";
    stream += "{\"id\":" + std::to_string(++id) +
              ",\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
              "\"topology\":\"taurus\"}\n";
    stream += "{\"id\":" + std::to_string(++id) +
              ",\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
              "\"topology\":\"mesh:4x4\",\"deadline_ms\":-1}\n";
  }
  return stream;
}

ServerOptions deterministic_options(int jobs) {
  ServerOptions options;
  options.jobs = jobs;
  options.deterministic = true;
  options.queue_capacity = 1 << 10;  // never reject in this test
  return options;
}

TEST(Serve, MixedStreamIsDeterministicAcrossWorkerCounts) {
  const std::string stream = mixed_stream();
  ASSERT_GE(split_lines(stream).size(), 50u);

  std::istringstream in1(stream);
  std::ostringstream out1;
  const ServerStats s1 = serve(in1, out1, deterministic_options(1));

  std::istringstream in3(stream);
  std::ostringstream out3;
  const ServerStats s3 = serve(in3, out3, deterministic_options(3));

  EXPECT_EQ(normalized(out1.str()), normalized(out3.str()));

  // Accounting is deterministic too: 20 unique mapping jobs (10
  // programs x 2 topologies), 10 duplicates, 20 failures of which the
  // 5 bad-topology and 5 unknown-program jobs fail before the cache.
  EXPECT_EQ(s1.lines, 50);
  EXPECT_EQ(s1.ok, 30);
  EXPECT_EQ(s1.errors, 20);
  EXPECT_EQ(s1.rejected, 0);
  EXPECT_EQ(s1.cache_misses, 20);
  EXPECT_EQ(s1.cache_hits, 10);
  EXPECT_EQ(s3.lines, s1.lines);
  EXPECT_EQ(s3.ok, s1.ok);
  EXPECT_EQ(s3.errors, s1.errors);
  EXPECT_EQ(s3.cache_misses, s1.cache_misses);
  EXPECT_EQ(s3.cache_hits, s1.cache_hits);
}

TEST(Serve, RepeatRunsKeepPerLineCacheLabelsWithOneWorker) {
  // With one worker, jobs execute in admission order, so even the
  // per-line hit/miss labels are reproducible. Only the interleaving
  // of reader-emitted parse-error lines with worker-emitted results is
  // schedule-dependent, so compare sorted (labels NOT blanked).
  const std::string stream = mixed_stream();
  std::vector<std::string> first;
  for (int run = 0; run < 2; ++run) {
    std::istringstream in(stream);
    std::ostringstream out;
    (void)serve(in, out, deterministic_options(1));
    std::vector<std::string> lines = split_lines(out.str());
    std::sort(lines.begin(), lines.end());
    if (run == 0) {
      first = std::move(lines);
    } else {
      EXPECT_EQ(lines, first);
    }
  }
}

TEST(Serve, ErrorLinesCarryTheContractCodes) {
  const std::string stream =
      "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"taurus\"}\n"
      "garbage\n"
      "{\"id\":3,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\",\"deadline_ms\":-1}\n";
  std::istringstream in(stream);
  std::ostringstream out;
  const ServerStats stats = serve(in, out, deterministic_options(1));
  EXPECT_EQ(stats.errors, 3);
  const std::string text = out.str();
  expect_contains(text, "\"code\":3");  // bad topology
  expect_contains(text, "unknown or invalid topology \\\"taurus\\\"");
  expect_contains(text, "\"code\":2");  // malformed line
  expect_contains(text, "\"code\":6");  // expired deadline
  expect_contains(text, "deadline expired");
}

TEST(Serve, BlankLinesAreKeepAlivesNotJobs) {
  std::istringstream in("\n  \t\n\n");
  std::ostringstream out;
  const ServerStats stats = serve(in, out, deterministic_options(1));
  EXPECT_EQ(stats.lines, 0);
  EXPECT_EQ(out.str(), "");
}

TEST(Serve, ExternalCacheStaysWarmAcrossCalls) {
  const std::string stream =
      "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\"}\n"
      "{\"id\":2,\"program\":\"sor\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\"}\n";
  ResultCache cache(64, 4);
  ServerOptions options = deterministic_options(2);
  options.cache = &cache;

  std::istringstream cold_in(stream);
  std::ostringstream cold_out;
  const ServerStats cold = serve(cold_in, cold_out, options);
  EXPECT_EQ(cold.cache_misses, 2);
  EXPECT_EQ(cold.cache_hits, 0);

  std::istringstream warm_in(stream);
  std::ostringstream warm_out;
  const ServerStats warm = serve(warm_in, warm_out, options);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(warm.cache_hits, 2);

  // Identical payloads modulo the hit/miss label.
  EXPECT_EQ(normalized(cold_out.str()), normalized(warm_out.str()));
}

TEST(Serve, StopFlagStopsAdmissionButStillDrains) {
  std::atomic<bool> stop{true};  // raised before the first line
  std::istringstream in(
      "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\"}\n");
  std::ostringstream out;
  const ServerStats stats = serve(in, out, deterministic_options(1), &stop);
  EXPECT_EQ(stats.lines, 0);  // nothing admitted
  EXPECT_EQ(out.str(), "");
}

TEST(Serve, StatsToJsonIsOneStableLine) {
  ServerStats stats;
  stats.lines = 5;
  stats.ok = 3;
  stats.errors = 2;
  stats.rejected = 1;
  stats.abandoned = 1;
  stats.cache_hits = 4;
  stats.cache_misses = 6;
  stats.cache_evictions = 7;
  EXPECT_EQ(stats.to_json(),
            "{\"lines\":5,\"ok\":3,\"errors\":2,\"rejected\":1,"
            "\"abandoned\":1,"
            "\"cache_hits\":4,\"cache_misses\":6,\"cache_evictions\":7}");
}

// ------------------------------------------------- chaos & robustness

/// Clears the global failpoint schedule even when a test fails.
struct FailpointGuard {
  ~FailpointGuard() { failpoint::clear(); }
};

TEST(Serve, WatchdogAbandonsHungJobsAndKeepsDraining) {
  FailpointGuard guard;
  // Job on input line 1 hangs far past its deadline; the watchdog must
  // emit its code-6 line and the daemon must still finish job 2.
  failpoint::configure("job.run:hang(400)@1");
  const std::string stream =
      "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\",\"deadline_ms\":60}\n"
      "{\"id\":2,\"program\":\"sor\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\"}\n";
  std::istringstream in(stream);
  std::ostringstream out;
  const ServerStats stats = serve(in, out, deterministic_options(2));
  EXPECT_EQ(stats.lines, 2);
  EXPECT_EQ(stats.ok, 1);
  EXPECT_EQ(stats.errors, 1);
  EXPECT_EQ(stats.abandoned, 1);
  const std::string text = out.str();
  expect_contains(text, "\"code\":6");
  expect_contains(text, "deadline expired; result abandoned");
  expect_contains(text, "\"id\":\"2\",\"status\":\"ok\"");
  // Exactly one line per job even though worker and watchdog raced.
  EXPECT_EQ(split_lines(text).size(), 2u);
}

TEST(Serve, ForcedRejectionCarriesDeterministicRetryAfterHint) {
  FailpointGuard guard;
  failpoint::configure("server.admit:err@2");
  const std::string stream =
      "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\"}\n"
      "{\"id\":2,\"program\":\"sor\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\"}\n";
  std::istringstream in(stream);
  std::ostringstream out;
  const ServerStats stats = serve(in, out, deterministic_options(1));
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.ok, 1);
  const std::string text = out.str();
  expect_contains(text, "\"code\":5");
  expect_contains(text, "\"retry_after_ms\":");
  expect_contains(text, "rejected: queue full");
}

TEST(Serve, FailpointChaosReplaysIdenticallyAcrossWorkerCounts) {
  // Chaos sites on the job path key by the job's input line, so the
  // same schedule perturbs the same jobs at any worker count.
  const std::string stream = mixed_stream();
  std::string runs[2];
  const int workers[2] = {1, 3};
  for (int i = 0; i < 2; ++i) {
    FailpointGuard guard;
    failpoint::configure("job.run:throw@3,job.run:throw@7");
    std::istringstream in(stream);
    std::ostringstream out;
    (void)serve(in, out, deterministic_options(workers[i]));
    runs[i] = out.str();
  }
  EXPECT_EQ(normalized(runs[0]), normalized(runs[1]));
  // And the injected failures really landed: jobs 3 and 7 are code 1.
  expect_contains(runs[0], "\"id\":\"3\",\"line\":3,\"status\":\"error\","
                           "\"code\":1");
  expect_contains(runs[0], "injected failure (failpoint job.run)");
}

TEST(Serve, JournaledCacheRestoresWarmStateAcrossServeCalls) {
  const std::string path =
      testing::TempDir() + "serve_journal_roundtrip.bin";
  std::remove(path.c_str());
  const std::string stream =
      "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\"}\n"
      "{\"id\":2,\"program\":\"sor\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\"}\n";

  std::string cold_text;
  {
    ResultCache cache(64, 4);
    CacheJournal journal(path, cache);
    const RecoveryStats recovery = journal.open_and_recover();
    EXPECT_TRUE(recovery.missing);
    ServerOptions options = deterministic_options(2);
    options.cache = &cache;
    options.journal = &journal;
    std::istringstream in(stream);
    std::ostringstream out;
    const ServerStats cold = serve(in, out, options);
    EXPECT_EQ(cold.cache_misses, 2);
    EXPECT_EQ(journal.stats().appended, 2);
    cold_text = out.str();
  }

  // A brand-new cache + journal (a restarted daemon) boots warm.
  ResultCache cache(64, 4);
  CacheJournal journal(path, cache);
  const RecoveryStats recovery = journal.open_and_recover();
  EXPECT_EQ(recovery.restored, 2);
  EXPECT_EQ(recovery.skipped, 0);
  ServerOptions options = deterministic_options(2);
  options.cache = &cache;
  options.journal = &journal;
  std::istringstream in(stream);
  std::ostringstream out;
  const ServerStats warm = serve(in, out, options);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(warm.cache_hits, 2);
  EXPECT_EQ(normalized(cold_text), normalized(out.str()));
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ----------------------------------------------------- telemetry

/// Runs the mixed stream with telemetry enabled and returns the
/// deterministic Prometheus exposition. Counters are reset first so
/// each run's metrics stand alone.
std::string serve_with_metrics(int jobs, ServerStats* stats_out) {
  metrics::reset_values();
  metrics::set_deterministic(true);
  metrics::enable();
  std::istringstream in(mixed_stream());
  std::ostringstream out;
  const ServerStats stats = serve(in, out, deterministic_options(jobs));
  const std::string text = metrics::to_prometheus(metrics::snapshot());
  metrics::disable();
  metrics::set_deterministic(false);
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
  return text;
}

std::int64_t series_value(const metrics::Snapshot& snap,
                          const std::string& name) {
  const metrics::SeriesValue* s = snap.find(name);
  return s == nullptr ? -1 : s->scalar;
}

TEST(ServeMetricsIdentity, OutcomesPartitionSubmittedJobs) {
  for (const int jobs : {1, 0, 5}) {
    metrics::reset_values();
    metrics::set_deterministic(true);
    metrics::enable();
    std::istringstream in(mixed_stream());
    std::ostringstream out;
    const ServerStats stats = serve(in, out, deterministic_options(jobs));
    const metrics::Snapshot snap = metrics::snapshot();
    metrics::disable();
    metrics::set_deterministic(false);

    const std::int64_t submitted =
        series_value(snap, "oregami_server_jobs_submitted_total");
    const std::int64_t hit =
        series_value(snap, "oregami_server_jobs_total{outcome=\"hit\"}");
    const std::int64_t miss =
        series_value(snap, "oregami_server_jobs_total{outcome=\"miss\"}");
    const std::int64_t error =
        series_value(snap, "oregami_server_jobs_total{outcome=\"error\"}");
    const std::int64_t rejected = series_value(
        snap, "oregami_server_jobs_total{outcome=\"rejected\"}");
    const std::int64_t abandoned = series_value(
        snap, "oregami_server_jobs_total{outcome=\"abandoned\"}");

    // Every submitted line lands in exactly one outcome.
    EXPECT_EQ(hit + miss + error + rejected + abandoned, submitted)
        << "jobs=" << jobs;
    EXPECT_EQ(submitted, stats.lines) << "jobs=" << jobs;
    EXPECT_EQ(hit, 10) << "jobs=" << jobs;
    EXPECT_EQ(miss, 20) << "jobs=" << jobs;
    EXPECT_EQ(error, 20) << "jobs=" << jobs;
    EXPECT_EQ(rejected, 0) << "jobs=" << jobs;
    EXPECT_EQ(abandoned, 0) << "jobs=" << jobs;

    // Cache traffic mirrors ServerStats.
    EXPECT_EQ(series_value(snap, "oregami_server_cache_hits_total"),
              stats.cache_hits);
    EXPECT_EQ(series_value(snap, "oregami_server_cache_misses_total"),
              stats.cache_misses);

    // Deterministic mode zeroes the schedule-dependent series.
    EXPECT_EQ(series_value(snap, "oregami_server_dedup_joins_total"), 0);
    EXPECT_EQ(series_value(snap, "oregami_server_queue_depth"), 0);
    EXPECT_EQ(series_value(snap, "oregami_server_inflight_jobs"), 0);
  }
}

TEST(ServeMetricsIdentity, DeterministicExpositionIsIdenticalAcrossJobs) {
  ServerStats s1, s0, s5;
  const std::string m1 = serve_with_metrics(1, &s1);
  const std::string m0 = serve_with_metrics(0, &s0);
  const std::string m5 = serve_with_metrics(5, &s5);
  EXPECT_EQ(m1, m0);
  EXPECT_EQ(m1, m5);
  EXPECT_EQ(s1.lines, s5.lines);
  EXPECT_EQ(s1.ok, s5.ok);
  // The exposition is real, not empty: spot-check a family.
  expect_contains(m1, "# TYPE oregami_server_jobs_total counter");
  expect_contains(m1, "oregami_server_jobs_total{outcome=\"hit\"} 10\n");
  // 45 admitted jobs: everything but the 5 parse errors reaches a
  // worker and records a queue wait.
  expect_contains(m1, "oregami_server_job_queue_wait_us_count 45\n");
}

TEST(ServeMetricsIdentity, WatchdogAbandonmentCountsAsAbandonedOnly) {
  FailpointGuard guard;
  metrics::reset_values();
  metrics::set_deterministic(true);
  metrics::enable();
  failpoint::configure("job.run:hang(400)@1");
  std::istringstream in(
      "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\",\"deadline_ms\":60}\n");
  std::ostringstream out;
  ServerOptions options = deterministic_options(2);
  const ServerStats stats = serve(in, out, options);
  const metrics::Snapshot snap = metrics::snapshot();
  metrics::disable();
  metrics::set_deterministic(false);

  ASSERT_EQ(stats.abandoned, 1);
  EXPECT_EQ(series_value(
                snap, "oregami_server_jobs_total{outcome=\"abandoned\"}"),
            1);
  EXPECT_EQ(series_value(snap, "oregami_server_watchdog_fired_total"), 1);
  // The hung job still went through the cache-miss path, but the
  // outcome partition books it exactly once, as abandoned.
  const std::int64_t submitted =
      series_value(snap, "oregami_server_jobs_submitted_total");
  const std::int64_t booked =
      series_value(snap, "oregami_server_jobs_total{outcome=\"hit\"}") +
      series_value(snap, "oregami_server_jobs_total{outcome=\"miss\"}") +
      series_value(snap, "oregami_server_jobs_total{outcome=\"error\"}") +
      series_value(snap,
                   "oregami_server_jobs_total{outcome=\"rejected\"}") +
      series_value(snap,
                   "oregami_server_jobs_total{outcome=\"abandoned\"}");
  EXPECT_EQ(booked, submitted);
}

}  // namespace
}  // namespace oregami::server
