#include <gtest/gtest.h>

#include "oregami/larcs/affine.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"

namespace oregami::larcs {
namespace {

std::optional<AffineForm> extract(const std::string& expr,
                                  std::vector<std::string> binders,
                                  const Env& env = {}) {
  return extract_affine(parse_expression(expr), binders, env);
}

TEST(AffineExtract, ConstantsAndBinders) {
  const auto c = extract("42", {"i", "j"});
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->is_constant());
  EXPECT_EQ(c->constant, 42);

  const auto i = extract("i", {"i", "j"});
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->coeffs, (std::vector<long>{1, 0}));
  EXPECT_EQ(i->constant, 0);
}

TEST(AffineExtract, LinearCombination) {
  Env env;
  env.bind("n", 10);
  const auto f = extract("2 * i - 3 * j + n + 1", {"i", "j"}, env);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->coeffs, (std::vector<long>{2, -3}));
  EXPECT_EQ(f->constant, 11);
}

TEST(AffineExtract, ScalingFromEitherSide) {
  const auto f = extract("i * 4", {"i"});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->coeffs, std::vector<long>{4});
  const auto g = extract("4 * i", {"i"});
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->coeffs, std::vector<long>{4});
}

TEST(AffineExtract, NegationDistributes) {
  const auto f = extract("-(i - j)", {"i", "j"});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->coeffs, (std::vector<long>{-1, 1}));
}

TEST(AffineExtract, RejectsNonAffine) {
  EXPECT_FALSE(extract("i * j", {"i", "j"}).has_value());
  EXPECT_FALSE(extract("i mod 4", {"i"}).has_value());
  EXPECT_FALSE(extract("i / 2", {"i"}).has_value());
  EXPECT_FALSE(extract("pow(2, i)", {"i"}).has_value());
}

TEST(AffineExtract, FoldsBinderFreeSubtrees) {
  Env env;
  env.bind("n", 8);
  const auto f = extract("i + n / 2 + pow(2, 3)", {"i"}, env);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->coeffs, std::vector<long>{1});
  EXPECT_EQ(f->constant, 12);
}

TEST(AffineExtract, UnknownFreeVariableRejected) {
  EXPECT_FALSE(extract("i + q", {"i"}).has_value());
}

TEST(AffineAnalysis, MatmulIsUniform) {
  const auto ast = parse_program(programs::matmul_systolic());
  const auto cp = compile(ast, {{"n", 4}});
  const auto a = analyze_affine(ast, cp.env);
  EXPECT_TRUE(a.single_nodetype);
  EXPECT_TRUE(a.domain_is_polytope);
  EXPECT_TRUE(a.all_affine);
  EXPECT_TRUE(a.all_uniform);
  EXPECT_TRUE(a.systolic_applicable());
  const auto deps = a.dependence_vectors();
  ASSERT_EQ(deps.size(), 3u);
  EXPECT_EQ(deps[0], (std::vector<long>{0, 0, 1}));
  EXPECT_EQ(deps[1], (std::vector<long>{0, 1, 0}));
  EXPECT_EQ(deps[2], (std::vector<long>{1, 0, 0}));
}

TEST(AffineAnalysis, JacobiIsUniform) {
  const auto ast = parse_program(programs::jacobi());
  const auto cp = compile(ast, {{"n", 4}, {"iters", 1}});
  const auto a = analyze_affine(ast, cp.env);
  EXPECT_TRUE(a.systolic_applicable());
  // Dependences: (+-1, 0), (0, +-1).
  EXPECT_EQ(a.dependence_vectors().size(), 4u);
}

TEST(AffineAnalysis, NbodyModMakesItNonAffine) {
  const auto ast = parse_program(programs::nbody());
  const auto cp = compile(ast, {{"n", 15}, {"s", 1}, {"m", 1}});
  const auto a = analyze_affine(ast, cp.env);
  EXPECT_FALSE(a.all_affine);
  EXPECT_FALSE(a.systolic_applicable());
  for (const auto& rule : a.rules) {
    EXPECT_EQ(rule.rule_class, RuleClass::NonAffine);
  }
}

TEST(AffineAnalysis, ForallRuleIsAffineNotUniform) {
  const auto ast = parse_program(
      "algorithm t(n);\n"
      "nodetype x[i: 0 .. n-1];\n"
      "comphase a { x(i) -> x(i + j) forall j: 1 .. 2 when i + j < n; }\n");
  const auto cp = compile(ast, {{"n", 8}});
  const auto a = analyze_affine(ast, cp.env);
  EXPECT_TRUE(a.all_affine);
  EXPECT_FALSE(a.all_uniform);
  ASSERT_EQ(a.rules.size(), 1u);
  EXPECT_EQ(a.rules[0].rule_class, RuleClass::Affine);
}

TEST(AffineAnalysis, TransposedTargetIsAffineNotUniform) {
  const auto ast = parse_program(
      "algorithm t(n);\n"
      "nodetype x[i: 0 .. n-1, j: 0 .. n-1];\n"
      "comphase a { x(i, j) -> x(j, i) when i != j; }\n");
  const auto cp = compile(ast, {{"n", 3}});
  const auto a = analyze_affine(ast, cp.env);
  EXPECT_TRUE(a.all_affine);
  EXPECT_FALSE(a.all_uniform);
}

TEST(AffineAnalysis, MultipleNodetypesNotApplicable) {
  const auto ast = parse_program(
      "algorithm t(n);\n"
      "nodetype a[i: 0 .. n-1];\n"
      "nodetype b[i: 0 .. n-1];\n"
      "comphase p { a(i) -> b(i) when 1 == 1; }\n");
  const auto cp = compile(ast, {{"n", 4}});
  const auto a = analyze_affine(ast, cp.env);
  EXPECT_FALSE(a.single_nodetype);
  EXPECT_FALSE(a.systolic_applicable());
}

}  // namespace
}  // namespace oregami::larcs
