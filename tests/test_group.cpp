#include <gtest/gtest.h>

#include <algorithm>

#include "oregami/group/cayley.hpp"
#include "oregami/group/perm_group.hpp"
#include "oregami/support/error.hpp"

namespace oregami {
namespace {

Permutation rotation(int n, int step) {
  std::vector<int> image(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    image[static_cast<std::size_t>(i)] = (i + step) % n;
  }
  return Permutation(std::move(image));
}

TEST(Permutation, IdentityFixesEverything) {
  const auto e = Permutation::identity(5);
  EXPECT_TRUE(e.is_identity());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(e(i), i);
  }
  EXPECT_EQ(e.order(), 1);
}

TEST(Permutation, RejectsNonBijection) {
  EXPECT_THROW(Permutation({0, 0, 1}), MappingError);
  EXPECT_THROW(Permutation({0, 3, 1}), MappingError);
}

TEST(Permutation, PaperCompositionConvention) {
  // Footnote 4: (123) composed with (13)(2) gives (12)(3) under
  // left-to-right composition.
  const auto a = Permutation::from_cycles(4, "(1 2 3)");
  const auto b = Permutation::from_cycles(4, "(1 3)(2)");
  const auto c = a.then(b);
  EXPECT_EQ(c, Permutation::from_cycles(4, "(1 2)(3)"));
}

TEST(Permutation, FromCyclesRoundTrip) {
  const auto p = Permutation::from_cycles(8, "(0 2 4 6)(1 3 5 7)");
  EXPECT_EQ(p(0), 2);
  EXPECT_EQ(p(6), 0);
  EXPECT_EQ(p(7), 1);
  EXPECT_EQ(p.to_cycle_string(), "(0 2 4 6)(1 3 5 7)");
}

TEST(Permutation, FromCyclesRejectsBadInput) {
  EXPECT_THROW(Permutation::from_cycles(4, "(0 9)"), MappingError);
  EXPECT_THROW(Permutation::from_cycles(4, "0 1"), MappingError);
  EXPECT_THROW(Permutation::from_cycles(4, "(0 1"), MappingError);
}

TEST(Permutation, InverseComposesToIdentity) {
  const auto p = Permutation::from_cycles(6, "(0 3)(1 4 5)");
  EXPECT_TRUE(p.then(p.inverse()).is_identity());
  EXPECT_TRUE(p.inverse().then(p).is_identity());
}

TEST(Permutation, CyclesIncludeFixedPoints) {
  const auto p = Permutation::from_cycles(4, "(0 1)");
  const auto cycles = p.cycles();
  ASSERT_EQ(cycles.size(), 3u);  // (0 1)(2)(3)
  EXPECT_EQ(p.to_cycle_string(), "(0 1)(2)(3)");
}

TEST(Permutation, CycleTypeAndUniformity) {
  const auto p = Permutation::from_cycles(8, "(0 2 4 6)(1 3 5 7)");
  EXPECT_EQ(p.cycle_type(), (std::vector<int>{4, 4}));
  EXPECT_TRUE(p.has_uniform_cycle_length());
  const auto q = Permutation::from_cycles(8, "(0 1 2)(3 4)");
  EXPECT_FALSE(q.has_uniform_cycle_length());
}

TEST(Permutation, OrderIsLcmOfCycleLengths) {
  EXPECT_EQ(Permutation::from_cycles(6, "(0 1 2)(3 4)").order(), 6);
  EXPECT_EQ(Permutation::from_cycles(8, "(0 1 2 3 4 5 6 7)").order(), 8);
}

// --- group generation ----------------------------------------------------

TEST(PermGroup, CyclicGroupZ8) {
  const auto group =
      PermutationGroup::generate({rotation(8, 1)}, 8);
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->order(), 8u);
  EXPECT_TRUE(group->is_transitive());
  EXPECT_TRUE(group->acts_regularly());
  EXPECT_TRUE(group->element(0).is_identity());
}

TEST(PermGroup, EarlyAbortWhenGroupExceedsCutoff) {
  // (01) and the 4-rotation generate a group larger than 4 (dihedral
  // on 4 points has order 8); with cutoff 4 the generation aborts.
  const auto swap01 = Permutation::from_cycles(4, "(0 1)");
  const auto group = PermutationGroup::generate({swap01, rotation(4, 1)}, 4);
  EXPECT_FALSE(group.has_value());
}

TEST(PermGroup, SymmetricGroupS3) {
  const auto group = PermutationGroup::generate(
      {Permutation::from_cycles(3, "(0 1)"),
       Permutation::from_cycles(3, "(0 1 2)")},
      6);
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->order(), 6u);
  // S3 is transitive on 3 points but does not act regularly (|G| != 3).
  EXPECT_TRUE(group->is_transitive());
  EXPECT_FALSE(group->acts_regularly());
}

TEST(PermGroup, ComposeAndInverseTables) {
  const auto group = PermutationGroup::generate({rotation(6, 1)}, 6);
  ASSERT_TRUE(group.has_value());
  for (std::size_t a = 0; a < group->order(); ++a) {
    EXPECT_EQ(group->compose(a, group->inverse(a)), 0u);
    EXPECT_EQ(group->compose(0, a), a);
    EXPECT_EQ(group->compose(a, 0), a);
  }
}

TEST(PermGroup, NonTransitiveNotRegular) {
  const auto group = PermutationGroup::generate(
      {Permutation::from_cycles(4, "(0 1)")}, 4);
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->order(), 2u);
  EXPECT_FALSE(group->is_transitive());
  EXPECT_FALSE(group->acts_regularly());
}

TEST(PermGroup, ElementMappingBaseToEveryPoint) {
  const auto group = PermutationGroup::generate({rotation(5, 1)}, 5);
  ASSERT_TRUE(group.has_value());
  for (int x = 0; x < 5; ++x) {
    const auto g = group->element_mapping_base_to(x);
    EXPECT_EQ(group->element(g)(0), x);
  }
}

TEST(PermGroup, CyclicSubgroupsOfZ8) {
  const auto group = PermutationGroup::generate({rotation(8, 1)}, 8);
  ASSERT_TRUE(group.has_value());
  const auto subs = group->cyclic_subgroups();
  // Z8 has exactly one cyclic subgroup per divisor: sizes 1, 2, 4, 8.
  ASSERT_EQ(subs.size(), 4u);
  EXPECT_EQ(subs[0].size(), 1u);
  EXPECT_EQ(subs[1].size(), 2u);
  EXPECT_EQ(subs[2].size(), 4u);
  EXPECT_EQ(subs[3].size(), 8u);
  for (const auto& sub : subs) {
    EXPECT_TRUE(group->is_normal(sub));  // abelian: all normal
  }
}

TEST(PermGroup, RightCosetsPartitionEvenly) {
  const auto group = PermutationGroup::generate({rotation(8, 1)}, 8);
  ASSERT_TRUE(group.has_value());
  const auto subs = group->cyclic_subgroups();
  const auto& h = subs[1];  // order 2
  const auto cosets = group->right_cosets(h);
  std::vector<int> sizes(4, 0);
  for (const int c : cosets) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 4);
    ++sizes[static_cast<std::size_t>(c)];
  }
  for (const int s : sizes) {
    EXPECT_EQ(s, 2);
  }
  EXPECT_EQ(cosets[0], 0);  // identity's coset is 0
}

TEST(PermGroup, NonNormalSubgroupDetected) {
  const auto group = PermutationGroup::generate(
      {Permutation::from_cycles(3, "(0 1)"),
       Permutation::from_cycles(3, "(0 1 2)")},
      6);
  ASSERT_TRUE(group.has_value());
  // <(01)> has order 2 and is not normal in S3.
  const auto idx = group->index_of(Permutation::from_cycles(3, "(0 1)"));
  ASSERT_TRUE(idx.has_value());
  const auto sub = group->cyclic_subgroup(*idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_FALSE(group->is_normal(sub));
  // The alternating subgroup <(012)> of index 2 is normal.
  const auto rot = group->index_of(Permutation::from_cycles(3, "(0 1 2)"));
  ASSERT_TRUE(rot.has_value());
  EXPECT_TRUE(group->is_normal(group->cyclic_subgroup(*rot)));
}

TEST(PermGroup, SubgroupClosureGeneratesKlein) {
  const auto a = Permutation::from_cycles(4, "(0 1)(2 3)");
  const auto b = Permutation::from_cycles(4, "(0 2)(1 3)");
  const auto group = PermutationGroup::generate({a, b}, 4);
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->order(), 4u);
  EXPECT_TRUE(group->acts_regularly());  // Klein group acts regularly
  const auto all = group->all_subgroups();
  // Klein four-group: {e}, three order-2 subgroups, itself.
  EXPECT_EQ(all.size(), 5u);
}

// --- Cayley graphs --------------------------------------------------------

TEST(Cayley, CayleyGraphOfZ6IsARing) {
  const auto group = PermutationGroup::generate({rotation(6, 1)}, 6);
  ASSERT_TRUE(group.has_value());
  const auto cg = cayley_graph(*group);
  EXPECT_EQ(cg.num_nodes, 6);
  EXPECT_EQ(cg.edges.size(), 6u);  // one generator, one edge per element
  // Every node has out-degree 1 and in-degree 1.
  std::vector<int> out(6, 0);
  std::vector<int> in(6, 0);
  for (const auto& e : cg.edges) {
    ++out[static_cast<std::size_t>(e.from)];
    ++in[static_cast<std::size_t>(e.to)];
    EXPECT_EQ(e.generator, 0);
  }
  for (int v = 0; v < 6; ++v) {
    EXPECT_EQ(out[static_cast<std::size_t>(v)], 1);
    EXPECT_EQ(in[static_cast<std::size_t>(v)], 1);
  }
}

TEST(Cayley, QuotientCollapsesToCosets) {
  const auto group = PermutationGroup::generate({rotation(8, 1)}, 8);
  ASSERT_TRUE(group.has_value());
  const auto subs = group->cyclic_subgroups();
  const auto cosets = group->right_cosets(subs[1]);  // order-2 subgroup
  const auto q = quotient_cayley_graph(*group, cosets);
  EXPECT_EQ(q.num_nodes, 4);
  // Quotient of Z8 by {0,4} is Z4: the +1 generator induces a 4-cycle.
  EXPECT_EQ(q.edges.size(), 4u);
}

}  // namespace
}  // namespace oregami
