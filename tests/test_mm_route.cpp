#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "oregami/arch/routes.hpp"
#include "oregami/mapper/baselines.hpp"
#include "oregami/mapper/mm_route.hpp"
#include "oregami/mapper/paper_examples.hpp"

namespace oregami {
namespace {

/// Max number of routes of one phase crossing any single link.
int phase_max_contention(const PhaseRouting& routing, int num_links) {
  std::vector<int> count(static_cast<std::size_t>(num_links), 0);
  for (const auto& r : routing.route_of_edge) {
    for (const int link : r.links) {
      ++count[static_cast<std::size_t>(link)];
    }
  }
  return count.empty() ? 0
                       : *std::max_element(count.begin(), count.end());
}

void expect_all_shortest(const TaskGraph& g,
                         const std::vector<int>& proc_of_task,
                         const std::vector<PhaseRouting>& routing,
                         const Topology& topo) {
  for (std::size_t k = 0; k < g.comm_phases().size(); ++k) {
    const auto& phase = g.comm_phases()[k];
    ASSERT_EQ(routing[k].route_of_edge.size(), phase.edges.size());
    for (std::size_t i = 0; i < phase.edges.size(); ++i) {
      const auto& e = phase.edges[i];
      const int src = proc_of_task[static_cast<std::size_t>(e.src)];
      const int dst = proc_of_task[static_cast<std::size_t>(e.dst)];
      EXPECT_TRUE(
          is_shortest_route(topo, routing[k].route_of_edge[i], src, dst))
          << "phase " << phase.name << " edge " << i;
    }
  }
}

/// Identity-ish placement for n tasks on p >= n processors.
std::vector<int> direct_placement(int n) {
  std::vector<int> proc(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    proc[static_cast<std::size_t>(t)] = t;
  }
  return proc;
}

TEST(MmRoute, CoLocatedTasksGetTrivialRoutes) {
  TaskGraph g;
  g.add_task("a");
  g.add_task("b");
  const int p = g.add_comm_phase("p");
  g.add_comm_edge(p, 0, 1);
  const auto topo = Topology::ring(4);
  const std::vector<int> procs{2, 2};
  const auto routing = mm_route(g, procs, topo);
  ASSERT_EQ(routing[0].route_of_edge.size(), 1u);
  EXPECT_EQ(routing[0].route_of_edge[0].hops(), 0);
  EXPECT_EQ(routing[0].route_of_edge[0].nodes, std::vector<int>{2});
}

TEST(MmRoute, RoutesAreShortestOnHypercube) {
  const auto g = paper::fig6_nbody15();
  const auto topo = Topology::hypercube(4);  // 16 procs, 15 tasks
  const auto procs = direct_placement(15);
  const auto routing = mm_route(g, procs, topo);
  expect_all_shortest(g, procs, routing, topo);
}

TEST(MmRoute, Fig6ChordalPhaseLowContention) {
  // 15 bodies on an 8-node hypercube (two tasks share processors);
  // chordal messages i -> i+8 mod 15. MM-Route spreads first hops via
  // maximal matchings, so per-link contention stays near the lower
  // bound ceil(15 / 12 links)... in practice <= 3 and well under the
  // naive worst case.
  const auto g = paper::fig6_nbody15();
  const auto topo = Topology::hypercube(3);
  std::vector<int> procs(15);
  for (int t = 0; t < 15; ++t) {
    procs[static_cast<std::size_t>(t)] = t % 8;
  }
  std::vector<PhaseRouteTrace> trace;
  const auto routing = mm_route(g, procs, topo, {}, &trace);
  expect_all_shortest(g, procs, routing, topo);

  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].phase_name, "chordal");
  // Within any single matching round every link appears at most once.
  for (const auto& phase_trace : trace) {
    for (const auto& round : phase_trace.rounds) {
      std::map<int, int> link_uses;
      for (const auto& [edge, link] : round.assignments) {
        EXPECT_EQ(++link_uses[link], 1)
            << "link reused within one matching round";
      }
    }
  }
  const int contention =
      phase_max_contention(routing[1], topo.num_links());
  EXPECT_LE(contention, 3);
}

TEST(MmRoute, MatchingRoundsRecordHops) {
  const auto g = paper::fig6_nbody15();
  const auto topo = Topology::hypercube(3);
  std::vector<int> procs(15);
  for (int t = 0; t < 15; ++t) {
    procs[static_cast<std::size_t>(t)] = t % 8;
  }
  std::vector<PhaseRouteTrace> trace;
  (void)mm_route(g, procs, topo, {}, &trace);
  // Hops are non-decreasing within a phase trace.
  for (const auto& pt : trace) {
    int last = 0;
    for (const auto& round : pt.rounds) {
      EXPECT_GE(round.hop, last);
      last = round.hop;
    }
  }
}

TEST(MmRoute, HopcroftKarpVariantAlsoValid) {
  const auto g = paper::fig6_nbody15();
  const auto topo = Topology::hypercube(4);
  const auto procs = direct_placement(15);
  RouteOptions options;
  options.matcher = RouteOptions::Matcher::HopcroftKarp;
  const auto routing = mm_route(g, procs, topo, options);
  expect_all_shortest(g, procs, routing, topo);
}

TEST(MmRoute, LowerContentionThanGreedyObliviousRouting) {
  // Compare against the contention-oblivious deterministic baseline on
  // the chordal phase of the 15-body problem (Fig 6 scenario).
  const auto g = paper::fig6_nbody15();
  const auto topo = Topology::hypercube(3);
  std::vector<int> procs(15);
  for (int t = 0; t < 15; ++t) {
    procs[static_cast<std::size_t>(t)] = t % 8;
  }
  const auto mm = mm_route(g, procs, topo);
  const auto greedy = route_greedy_shortest(g, procs, topo);
  const int mm_contention = phase_max_contention(mm[1], topo.num_links());
  const int greedy_contention =
      phase_max_contention(greedy[1], topo.num_links());
  EXPECT_LE(mm_contention, greedy_contention);
}

TEST(MmRoute, AllPhasesRouted) {
  const auto g = paper::fig6_nbody15();
  const auto topo = Topology::mesh(4, 4);
  const auto procs = direct_placement(15);
  const auto routing = mm_route(g, procs, topo);
  ASSERT_EQ(routing.size(), 2u);
  expect_all_shortest(g, procs, routing, topo);
}

TEST(Baselines, DimensionOrderRoutesValid) {
  const auto g = paper::fig6_nbody15();
  const auto topo = Topology::hypercube(4);
  const auto procs = direct_placement(15);
  const auto routing = route_dimension_order(g, procs, topo);
  expect_all_shortest(g, procs, routing, topo);
}

TEST(Baselines, RandomShortestRoutesValidAndSeeded) {
  const auto g = paper::fig6_nbody15();
  const auto topo = Topology::hypercube(4);
  const auto procs = direct_placement(15);
  const auto a = route_random_shortest(g, procs, topo, 42);
  const auto b = route_random_shortest(g, procs, topo, 42);
  expect_all_shortest(g, procs, a, topo);
  // Same seed, same routes.
  for (std::size_t k = 0; k < a.size(); ++k) {
    for (std::size_t i = 0; i < a[k].route_of_edge.size(); ++i) {
      EXPECT_EQ(a[k].route_of_edge[i].nodes,
                b[k].route_of_edge[i].nodes);
    }
  }
}

}  // namespace
}  // namespace oregami
