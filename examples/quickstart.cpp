// Quickstart: the complete OREGAMI pipeline in ~40 lines.
//
//   1. Write (or pick) a LaRCS description of your computation.
//   2. Compile it with concrete parameter bindings -> task graph.
//   3. Ask MAPPER for a mapping onto your architecture.
//   4. Inspect the METRICS report.
//
// Run:  ./quickstart
#include <cstdio>
#include <iostream>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/metrics/render.hpp"

int main() {
  using namespace oregami;

  // 1. The paper's running example: Seitz's n-body algorithm (Fig 2b).
  const std::string source = larcs::programs::nbody();
  std::cout << "LaRCS source:\n" << source << "\n";

  // 2. Compile for 15 bodies, 4 outer iterations, message volume 8.
  const auto compiled =
      larcs::compile_source(source, {{"n", 15}, {"s", 4}, {"m", 8}});
  std::printf("compiled: %d tasks, %d comm edges, %zu phases\n\n",
              compiled.graph.num_tasks(), compiled.graph.num_comm_edges(),
              compiled.graph.comm_phases().size());

  // 3. Map onto an 8-processor hypercube (an iPSC/2-class machine).
  const Topology topo = Topology::hypercube(3);
  const MapperReport report = map_computation(compiled.graph, topo);
  std::cout << "strategy: " << to_string(report.strategy) << "\n";
  std::cout << "details:  " << report.details << "\n\n";

  // 4. METRICS.
  const MappingMetrics metrics =
      compute_metrics(compiled.graph, report.mapping, topo);
  std::cout << render_summary(metrics) << "\n";
  std::cout << render_assignment_table(
      compiled.graph, report.mapping.proc_of_task(), topo);
  return 0;
}
