// Systolic synthesis (§4.2.1): matrix multiplication as a 3-D uniform
// recurrence, scheduled with an affine timing function and projected
// onto a 2-D processor array, then embedded in a mesh.
//
// Run:  ./systolic_matmul [n]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/systolic.hpp"
#include "oregami/metrics/render.hpp"

int main(int argc, char** argv) {
  using namespace oregami;
  const int n = argc > 1 ? std::atoi(argv[1]) : 4;
  if (n < 2 || n > 16) {
    std::fprintf(stderr, "usage: %s [n in 2..16]\n", argv[0]);
    return 1;
  }

  const auto ast = larcs::parse_program(larcs::programs::matmul_systolic());
  const auto compiled = larcs::compile(ast, {{"n", n}});
  std::printf("matmul recurrence over an n^3 = %d-point lattice\n",
              compiled.graph.num_tasks());

  const auto analysis = larcs::analyze_affine(ast, compiled.env);
  std::printf("affine checks: polytope=%s, all uniform=%s\n",
              analysis.domain_is_polytope ? "yes" : "no",
              analysis.all_uniform ? "yes" : "no");
  std::cout << "dependence vectors:";
  for (const auto& d : analysis.dependence_vectors()) {
    std::cout << " (";
    for (std::size_t i = 0; i < d.size(); ++i) {
      std::cout << (i ? "," : "") << d[i];
    }
    std::cout << ")";
  }
  std::cout << "\n\n";

  const auto systolic = systolic_map(ast, compiled);
  if (!systolic) {
    std::cout << "no feasible schedule\n";
    return 1;
  }
  std::cout << systolic->description << "\n";
  std::printf("PE array: %zu dims, %d PEs, %ld time steps\n\n",
              systolic->pe_extent.size(),
              systolic->contraction.num_clusters, systolic->makespan);

  const Topology topo = Topology::mesh(n, n);
  const auto report = map_program(ast, compiled, topo);
  std::cout << "driver strategy: " << to_string(report.strategy) << "\n"
            << report.details << "\n\n";
  const auto metrics = compute_metrics(compiled.graph, report.mapping, topo);
  std::cout << render_summary(metrics);
  return 0;
}
