// A tour of the §6 "ongoing and future work" features this
// reproduction implements: task synchrony sets and local scheduling
// directives, dynamic-spawn planning, phase-shift migration analysis,
// aggregation-tree selection, and the discrete-event simulator that
// cross-checks METRICS' analytic model.
//
// Run:  ./extensions_tour
#include <cstdio>
#include <iostream>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/aggregation.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/dynamic_spawn.hpp"
#include "oregami/mapper/migration.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/schedule/synchrony.hpp"
#include "oregami/sim/network_sim.hpp"

int main() {
  using namespace oregami;

  const auto cp = larcs::compile_source(larcs::programs::nbody(),
                                        {{"n", 16}, {"s", 2}, {"m", 4}});
  const Topology topo = Topology::hypercube(3);
  const auto report = map_computation(cp.graph, topo);
  const auto procs = report.mapping.proc_of_task();

  std::cout << "== 1. scheduling: synchrony sets (paper §6) ==\n";
  const auto schedule = derive_synchrony_sets(cp.graph, procs, 8);
  for (const auto& set : schedule.sets) {
    std::printf("  synchrony set %d: %zu tasks, one per processor\n",
                set.index, set.tasks.size());
  }
  std::cout << "  proc 0 directive: "
            << local_directive(cp.graph, schedule, 0) << "\n\n";

  std::cout << "== 2. simulator cross-check of METRICS ==\n";
  const auto metrics = compute_metrics(cp.graph, report.mapping, topo);
  const auto sim = simulate(cp.graph, procs, report.mapping.routing, topo);
  std::printf("  analytic completion: %lld; simulated: %lld cycles\n\n",
              static_cast<long long>(metrics.completion),
              static_cast<long long>(sim.total_cycles));

  std::cout << "== 3. dynamic spawning (divide & conquer growth) ==\n";
  const auto plan = plan_binomial_spawn(6, topo);
  for (int s = 0; s <= 6; s += 2) {
    std::printf("  stage %d: %zu live tasks, imbalance %d\n", s,
                plan.live_nodes(s).size(), plan.stage_imbalance(s, 8));
  }
  std::cout << "  (placements fixed a priori: zero migration on spawn)\n\n";

  std::cout << "== 4. phase-shift migration analysis ==\n";
  const auto migration = evaluate_phase_migration(cp.graph, topo);
  std::printf(
      "  static mapping: %lld; per-phase migration: %lld (%ld moves) -> "
      "%s\n\n",
      static_cast<long long>(migration.static_time),
      static_cast<long long>(migration.migrating_time),
      migration.task_moves,
      migration.migration_wins() ? "migrate" : "stay static");

  std::cout << "== 5. aggregation-tree selection ==\n";
  const auto load =
      committed_link_load(report.mapping.routing, topo.num_links());
  const auto tree = choose_aggregation_tree(topo, 0, load);
  std::printf(
      "  spanning tree rooted at proc 0, bottleneck link load %lld "
      "(existing + aggregation)\n",
      static_cast<long long>(tree.bottleneck));
  return 0;
}
