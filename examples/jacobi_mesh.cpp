// Jacobi iteration on an n x n grid mapped to a smaller processor mesh
// by block tiling (the canned mesh -> mesh entry), with a look at the
// per-phase link metrics.
//
// Run:  ./jacobi_mesh [n] [procs_per_side]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/render.hpp"

int main(int argc, char** argv) {
  using namespace oregami;
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  const int side = argc > 2 ? std::atoi(argv[2]) : 4;
  if (n < 2 || side < 1 || side > n) {
    std::fprintf(stderr, "usage: %s [n >= 2] [procs_per_side <= n]\n",
                 argv[0]);
    return 1;
  }

  const auto ast = larcs::parse_program(larcs::programs::jacobi());
  const auto compiled = larcs::compile(ast, {{"n", n}, {"iters", 50}});
  std::printf("jacobi %dx%d grid (%d tasks) onto a %dx%d mesh\n\n", n, n,
              compiled.graph.num_tasks(), side, side);

  const Topology topo = Topology::mesh(side, side);
  const auto report = map_program(ast, compiled, topo);
  std::cout << "strategy: " << to_string(report.strategy) << "\n"
            << report.details << "\n\n";

  const auto metrics = compute_metrics(compiled.graph, report.mapping, topo);
  std::cout << render_summary(metrics) << "\n";
  std::cout << "tasks per processor:\n"
            << render_ascii_layout(compiled.graph,
                                   report.mapping.proc_of_task(), topo)
            << "\n";
  std::cout << render_link_table(metrics, topo);
  return 0;
}
