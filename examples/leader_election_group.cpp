// The paper's Fig 4 walkthrough: group-theoretic contraction of the
// 8-task perfect-broadcast ("elect a leader") algorithm onto a
// 4-processor hypercube. Prints the group elements E0..E7 in cycle
// notation, the chosen subgroup, and the resulting clustering --
// matching the paper's worked example line by line.
//
// Run:  ./leader_election_group [n] [procs]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/group_contract.hpp"
#include "oregami/metrics/render.hpp"

int main(int argc, char** argv) {
  using namespace oregami;
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int procs = argc > 2 ? std::atoi(argv[2]) : 4;
  if (n < 2 || (n & (n - 1)) != 0 || procs < 1 || n % procs != 0) {
    std::fprintf(stderr,
                 "usage: %s [n = power of two] [procs dividing n]\n",
                 argv[0]);
    return 1;
  }

  const auto compiled =
      larcs::compile_source(larcs::programs::broadcast_vote(n), {{"n", n}});
  const auto& graph = compiled.graph;

  std::cout << "communication functions (as permutations):\n";
  for (const auto& phase : graph.comm_phases()) {
    const auto perm = phase_permutation(phase, n);
    std::printf("  %-6s = %s\n", phase.name.c_str(),
                perm->to_cycle_string().c_str());
  }

  std::printf("\nSylow check: |T|/|A| = %d/%d -> balanced contraction %s\n",
              n, procs,
              sylow_balanced_contraction_exists(n, procs) ? "exists"
                                                          : "not promised");

  const auto outcome = group_theoretic_contraction(graph, procs);
  if (outcome.status != GroupContractStatus::Ok) {
    std::cout << "group contraction unavailable: "
              << to_string(outcome.status) << "\n";
    return 1;
  }
  const auto& result = *outcome.result;

  std::cout << "\ngroup elements:\n";
  for (std::size_t i = 0; i < result.element_cycles.size(); ++i) {
    std::printf("  E%zu = %s\n", i, result.element_cycles[i].c_str());
  }
  std::cout << "\nchosen subgroup H = {";
  for (std::size_t i = 0; i < result.subgroup.size(); ++i) {
    std::printf("%sE%zu", i ? ", " : "", result.subgroup[i]);
  }
  std::printf("} (%s)\n", result.subgroup_normal ? "normal" : "non-normal");
  std::printf("messages internalized per cluster: %d\n\n",
              result.internalized_per_cluster);

  std::cout << "clusters:\n";
  for (int c = 0; c < result.contraction.num_clusters; ++c) {
    std::printf("  cluster %d: {", c);
    bool first = true;
    for (int t = 0; t < n; ++t) {
      if (result.contraction.cluster_of_task[static_cast<std::size_t>(t)] ==
          c) {
        std::printf("%s%d", first ? "" : ", ", t);
        first = false;
      }
    }
    std::printf("}\n");
  }

  // Finish the pipeline on a hypercube of `procs` nodes when possible.
  int dim = 0;
  while ((1 << dim) < procs) {
    ++dim;
  }
  if ((1 << dim) == procs) {
    const Topology topo = Topology::hypercube(dim);
    const auto report = map_computation(graph, topo);
    const auto metrics = compute_metrics(graph, report.mapping, topo);
    std::cout << "\nfull mapping onto " << topo.name() << ":\n"
              << render_summary(metrics);
  }
  return 0;
}
