// Divide and conquer on a binomial tree, mapped to a square mesh --
// exercising OREGAMI's contribution to the canned library ([LRG+89],
// §4.1): the binomial-tree-to-mesh embedding with average dilation
// bounded by 1.2.
//
// Run:  ./divide_conquer_mesh [k]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/binomial_mesh.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/render.hpp"

int main(int argc, char** argv) {
  using namespace oregami;
  const int k = argc > 1 ? std::atoi(argv[1]) : 6;
  if (k < 2 || k > 16) {
    std::fprintf(stderr, "usage: %s [k in 2..16]\n", argv[0]);
    return 1;
  }

  const auto compiled =
      larcs::compile_source(larcs::programs::binomial_dnc(), {{"k", k}});
  std::printf("binomial divide & conquer: B_%d with %d tasks\n", k,
              compiled.graph.num_tasks());

  // The raw embedding and its dilation profile.
  const auto embedding = embed_binomial_in_mesh(k);
  std::printf("mesh %dx%d, average dilation %.4f, max dilation %d\n\n",
              embedding.rows, embedding.cols,
              embedding.average_dilation(), embedding.max_dilation());

  // Full pipeline onto a matching mesh.
  const Topology topo = Topology::mesh(embedding.rows, embedding.cols);
  const auto report = map_computation(compiled.graph, topo);
  std::cout << "strategy: " << to_string(report.strategy) << "\n"
            << report.details << "\n\n";
  const auto metrics = compute_metrics(compiled.graph, report.mapping, topo);
  std::cout << render_summary(metrics);
  if (k <= 6) {
    std::cout << "\nplacement (task at each mesh cell):\n"
              << render_ascii_layout(
                     compiled.graph, report.mapping.proc_of_task(), topo);
  }
  return 0;
}
