// The paper's running example end-to-end: the 15-body problem (Fig 2)
// mapped onto an 8-node hypercube and routed phase by phase (Fig 6),
// followed by a METRICS session where we hand-tune the mapping.
//
// Run:  ./nbody_hypercube
#include <cstdio>
#include <iostream>

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/mm_route.hpp"
#include "oregami/metrics/render.hpp"
#include "oregami/metrics/session.hpp"

int main() {
  using namespace oregami;

  const auto compiled = larcs::compile_source(
      larcs::programs::nbody(), {{"n", 15}, {"s", 4}, {"m", 8}});
  const auto& graph = compiled.graph;

  std::cout << "== task graph (Fig 2) ==\n";
  std::printf("%d tasks; phase expression: %s\n\n", graph.num_tasks(),
              graph.phase_expr()
                  .to_string(graph.comm_phases(), graph.exec_phases())
                  .c_str());

  const Topology topo = Topology::hypercube(3);
  const MapperReport report = map_computation(graph, topo);
  std::cout << "== MAPPER ==\nstrategy: " << to_string(report.strategy)
            << "\n" << report.details << "\n\n";

  // Re-run MM-Route with tracing to show the matching rounds of the
  // chordal phase (the paper's Fig 6 walkthrough).
  std::vector<PhaseRouteTrace> trace;
  (void)mm_route(graph, report.mapping.proc_of_task(), topo, {}, &trace);
  std::cout << "== MM-Route matching rounds (chordal phase) ==\n";
  for (const auto& round : trace[1].rounds) {
    std::printf("hop %d: %zu messages matched to distinct links\n",
                round.hop, round.assignments.size());
  }
  std::cout << "\n";

  const auto metrics = compute_metrics(graph, report.mapping, topo);
  std::cout << "== METRICS ==\n" << render_summary(metrics) << "\n";
  std::cout << render_link_table(metrics, topo) << "\n";

  // Interactive refinement, as the METRICS GUI would drive it.
  MetricsSession session(graph, topo, report.mapping);
  std::cout << "== manual refinement ==\n";
  const auto edit = session.move_task(0, 7);
  std::printf(
      "moved body(0) to processor 7: completion %lld -> %lld (%+lld)\n",
      static_cast<long long>(edit.before.completion),
      static_cast<long long>(edit.after.completion),
      static_cast<long long>(edit.completion_delta()));
  session.undo();
  std::printf("undo: completion back to %lld\n",
              static_cast<long long>(session.metrics().completion));
  return 0;
}
