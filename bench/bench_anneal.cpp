// Quality/time evidence for the extended candidate families: simulated
// annealing vs placement refinement vs the HEFT list scheduler vs the
// full portfolio, all on the shared 512-task mesh:16x16 workload of
// bench_distance_oracle, so the series line up point for point.
//
// Prints the comparison table, merges the "anneal_512_*" series into
// the shared BENCH_mapper.json, then runs the google-benchmark timings.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "oregami/mapper/anneal.hpp"
#include "oregami/mapper/list_schedule.hpp"
#include "oregami/mapper/mm_route.hpp"
#include "oregami/mapper/portfolio.hpp"
#include "oregami/mapper/refine.hpp"
#include "oregami/metrics/completion_model.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

constexpr int kAnnealIterations = 20000;

void print_figures_and_json() {
  bench::print_header(
      "placement quality at 512 tasks on mesh:16x16: SA vs refine vs "
      "HEFT vs portfolio");
  const bench::MapperWorkload w = bench::make_mapper_workload();
  const std::int64_t init =
      completion_time(w.graph, w.procs, w.routing, w.topo);

  bench::JsonReport json("BENCH_mapper.json");
  json.load();  // shared with bench_distance_oracle
  TextTable table({"family", "completion", "vs init", "time (ms)"});
  const auto emit = [&](const std::string& family, std::int64_t completion,
                        double time_s) {
    char vs[32];
    char ms[32];
    std::snprintf(vs, sizeof(vs), "%+.1f%%",
                  100.0 * static_cast<double>(completion - init) /
                      static_cast<double>(init));
    std::snprintf(ms, sizeof(ms), "%.2f", time_s * 1e3);
    table.add_row({family, std::to_string(completion), vs, ms});
    json.add("anneal_512_completion_" + family,
             static_cast<double>(completion), "model");
    json.add("anneal_512_time_" + family, time_s * 1e3, "ms");
  };
  emit("init", init, 0.0);

  {
    const auto t0 = std::chrono::steady_clock::now();
    const PlacementRefineResult refined =
        refine_placement(w.graph, w.topo, w.procs, w.routing);
    emit("refine", refined.completion_after, seconds_since(t0));
  }
  {
    AnnealOptions opts;
    opts.iterations = kAnnealIterations;
    const auto t0 = std::chrono::steady_clock::now();
    const AnnealResult annealed =
        anneal_placement(w.graph, w.topo, w.procs, w.routing, {}, opts);
    emit("anneal", annealed.completion_after, seconds_since(t0));
    json.add_counter("anneal_512/proposed", annealed.proposed);
    json.add_counter("anneal_512/accepted", annealed.accepted);
    json.add_counter("anneal_512/uphill", annealed.uphill);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    const ListScheduleResult heft = list_schedule(w.graph, w.topo);
    const auto routing = mm_route(w.graph, heft.proc_of_task, w.topo);
    emit("heft",
         completion_time(w.graph, heft.proc_of_task, routing, w.topo),
         seconds_since(t0));
  }
  {
    PortfolioOptions popts;
    popts.num_seeded = 2;
    popts.num_anneal = 2;
    popts.anneal_iterations = kAnnealIterations;
    popts.heft = true;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result =
        portfolio_map_computation(w.graph, w.topo, {}, popts);
    emit("portfolio",
         result.candidates[static_cast<std::size_t>(result.best_id)]
             .completion,
         seconds_since(t0));
  }

  std::printf("%s", table.to_string().c_str());
  json.write();
}

void BM_Anneal512Mesh16x16(benchmark::State& state) {
  const bench::MapperWorkload w = bench::make_mapper_workload();
  AnnealOptions opts;
  opts.iterations = 2000;  // short chain: the timing unit, not quality
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        anneal_placement(w.graph, w.topo, w.procs, w.routing, {}, opts));
  }
}
BENCHMARK(BM_Anneal512Mesh16x16);

void BM_ListSchedule512Mesh16x16(benchmark::State& state) {
  const bench::MapperWorkload w = bench::make_mapper_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule(w.graph, w.topo));
  }
}
BENCHMARK(BM_ListSchedule512Mesh16x16);

}  // namespace

int main(int argc, char** argv) {
  print_figures_and_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
