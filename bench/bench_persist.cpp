// Persistence evidence for the mapping server: the cost of crash
// safety and the payoff of a warm boot. Replays the catalog stream
// through serve() with a cache journal attached (cold boot, journal
// growing), then simulates a daemon restart -- fresh cache, recover
// the journal from disk, replay again -- and reports cold-boot vs
// warm-boot throughput, journal replay rate, and per-append journal
// latency. Extends BENCH_server.json with the "persist_*" series,
// then runs the google-benchmark micro timings (record encode,
// journal append, file recovery).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/server/persist.hpp"
#include "oregami/server/result_cache.hpp"
#include "oregami/server/server.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

/// Replay stream: every catalog program on two topologies, repeated
/// until `total` lines (same shape as bench_server's stream, plain
/// mapping options so the bench stays fast on one core).
std::string replay_stream(int total) {
  const auto catalog = larcs::programs::catalog();
  std::vector<std::string> unique;
  for (const auto& entry : catalog) {
    for (const char* topo : {"mesh:4x4", "ring:16"}) {
      std::string line = "\"program\":\"" + entry.name + "\",\"bind\":{";
      bool first = true;
      for (const auto& [name, value] : entry.example_bindings) {
        if (!first) {
          line += ',';
        }
        first = false;
        line += "\"" + name + "\":" + std::to_string(value);
      }
      line += "},\"topology\":\"" + std::string(topo) + "\"";
      unique.push_back(line);
    }
  }
  std::string stream;
  for (int i = 0; i < total; ++i) {
    stream += "{\"id\":" + std::to_string(i + 1) + "," +
              unique[static_cast<std::size_t>(i) % unique.size()] + "}\n";
  }
  return stream;
}

struct ReplayResult {
  double wall_s = 0.0;
  double jobs_per_sec = 0.0;
  server::ServerStats stats;
};

ReplayResult replay(const std::string& stream, server::ResultCache& cache,
                    server::CacheJournal* journal) {
  server::ServerOptions options;
  options.jobs = 1;
  options.queue_capacity = 1 << 12;
  options.cache = &cache;
  options.journal = journal;
  std::istringstream in(stream);
  std::ostringstream out;
  const auto start = std::chrono::steady_clock::now();
  ReplayResult r;
  r.stats = server::serve(in, out, options);
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  r.jobs_per_sec =
      r.wall_s > 0 ? static_cast<double>(r.stats.ok) / r.wall_s : 0.0;
  return r;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

server::CachedOutcome sample_outcome(int tasks) {
  server::CachedOutcome outcome;
  outcome.ok = true;
  outcome.strategy = "contraction";
  outcome.completion = 1234;
  outcome.external_ipc = 567;
  outcome.max_load = 89;
  outcome.num_procs = 16;
  for (int t = 0; t < tasks; ++t) {
    outcome.proc_of_task.push_back(t % 16);
  }
  return outcome;
}

constexpr int kTotalJobs = 100;
constexpr int kAppendSamples = 512;

void print_figures_and_json() {
  bench::print_header(
      "crash-safe persistence: cold boot vs journal-warm boot, journal "
      "append latency");

  const std::string path = "bench_persist_cache.bin";
  std::remove(path.c_str());
  const std::string stream = replay_stream(kTotalJobs);

  // Cold boot: empty cache, empty journal; every unique job computes
  // and every computed result is journaled as it happens.
  double cold_jobs_per_sec = 0.0;
  std::int64_t appended = 0;
  {
    server::ResultCache cache(1024, 8);
    server::CacheJournal journal(path, cache);
    (void)journal.open_and_recover();
    const ReplayResult cold = replay(stream, cache, &journal);
    journal.flush();
    cold_jobs_per_sec = cold.jobs_per_sec;
    appended = journal.stats().appended;
  }

  // Restart: fresh cache, recover the journal from disk (timed), then
  // replay the same stream -- every job is now a cache hit.
  const auto recover_start = std::chrono::steady_clock::now();
  server::ResultCache cache(1024, 8);
  server::CacheJournal journal(path, cache);
  const server::RecoveryStats recovery = journal.open_and_recover();
  const double recover_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    recover_start)
          .count();
  const double restored_per_sec =
      recover_s > 0 ? static_cast<double>(recovery.restored) / recover_s
                    : 0.0;
  const ReplayResult warm = replay(stream, cache, &journal);

  // Journal append latency, measured directly against a side journal.
  const std::string append_path = "bench_persist_append.bin";
  std::remove(append_path.c_str());
  std::vector<double> append_us;
  {
    server::ResultCache side(4096, 8);
    server::CacheJournal side_journal(append_path, side,
                                      /*compact_every=*/1 << 20);
    (void)side_journal.open_and_recover();
    const server::CachedOutcome outcome = sample_outcome(64);
    for (int i = 0; i < kAppendSamples; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)side_journal.append(static_cast<std::uint64_t>(i) + 1, outcome);
      append_us.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
  }
  std::remove(append_path.c_str());

  const double speedup =
      cold_jobs_per_sec > 0 ? warm.jobs_per_sec / cold_jobs_per_sec : 0.0;
  const double append_p50 = percentile(append_us, 0.50);
  const double append_p99 = percentile(append_us, 0.99);

  TextTable table({"phase", "mappings/sec", "hits", "misses"});
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f", cold_jobs_per_sec);
  table.add_row({"cold boot (journaling)", rate, "-", "-"});
  std::snprintf(rate, sizeof(rate), "%.1f", warm.jobs_per_sec);
  table.add_row({"warm boot (journal replay)", rate,
                 std::to_string(warm.stats.cache_hits),
                 std::to_string(warm.stats.cache_misses)});
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "journal: %lld appended; replay restored %lld entries in %.3f ms "
      "(%.0f/s)\n",
      static_cast<long long>(appended),
      static_cast<long long>(recovery.restored), recover_s * 1e3,
      restored_per_sec);
  std::printf("append latency: p50 %.1f us, p99 %.1f us (%d samples)\n",
              append_p50, append_p99, kAppendSamples);
  std::printf("warm-boot/cold-boot throughput: %.1fx\n", speedup);

  bench::JsonReport json("BENCH_server.json");
  json.load();
  json.add("persist_cold_boot_mappings_per_sec", cold_jobs_per_sec, "1/s");
  json.add("persist_warm_boot_mappings_per_sec", warm.jobs_per_sec, "1/s");
  json.add("persist_warm_boot_speedup", speedup, "x");
  json.add("persist_recovery_entries_per_sec", restored_per_sec, "1/s");
  json.add("persist_append_p50_us", append_p50, "us");
  json.add("persist_append_p99_us", append_p99, "us");
  json.add_counter("persist_journal_appended", appended);
  json.add_counter("persist_recovery_restored", recovery.restored);
  json.write();

  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ------------------------------------------------- micro benchmarks

void BM_EncodeRecord(benchmark::State& state) {
  const server::CachedOutcome outcome = sample_outcome(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server::encode_record(0xabcdef12ULL, outcome));
  }
}
BENCHMARK(BM_EncodeRecord);

void BM_JournalAppend(benchmark::State& state) {
  const std::string path = "bench_persist_bm_append.bin";
  std::remove(path.c_str());
  server::ResultCache cache(64, 4);
  server::CacheJournal journal(path, cache, /*compact_every=*/1 << 20);
  (void)journal.open_and_recover();
  const server::CachedOutcome outcome = sample_outcome(64);
  std::uint64_t digest = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal.append(digest++, outcome));
  }
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}
BENCHMARK(BM_JournalAppend);

void BM_RecoverFile(benchmark::State& state) {
  // Recovery cost of a 256-entry snapshot (the default compaction
  // cadence): read, checksum, decode, insert.
  const std::string path = "bench_persist_bm_recover.bin";
  std::string file = server::encode_header();
  for (int i = 0; i < 256; ++i) {
    file += server::encode_record(static_cast<std::uint64_t>(i) + 1,
                                  sample_outcome(64));
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
  }
  for (auto _ : state) {
    server::ResultCache cache(1024, 8);
    benchmark::DoNotOptimize(server::recover_cache_file(path, cache));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_RecoverFile);

}  // namespace

int main(int argc, char** argv) {
  print_figures_and_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
