// Experiment V2 (paper §6 proposal, evaluated): per-phase remapping
// with task migration vs one static mapping, on a workload whose two
// phases want opposite placements (ring + reversal). Sweeping the
// message volume exposes the crossover: cheap messages favour the
// static mapping, heavy messages amortise the migrations.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/mapper/migration.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

TaskGraph conflicting(int n, std::int64_t volume, long iters) {
  TaskGraph g;
  for (int i = 0; i < n; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int ring = g.add_comm_phase("ring");
  for (int i = 0; i < n; ++i) {
    g.add_comm_edge(ring, i, (i + 1) % n, volume);
  }
  const int rev = g.add_comm_phase("reverse");
  for (int i = 0; i < n / 2; ++i) {
    g.add_comm_edge(rev, i, n - 1 - i, volume);
    g.add_comm_edge(rev, n - 1 - i, i, volume);
  }
  g.set_phase_expr(PhaseTree::repeat(
      PhaseTree::seq({PhaseTree::comm(0), PhaseTree::comm(1)}), iters));
  return g;
}

void print_figure() {
  bench::print_header(
      "V2: static mapping vs per-phase migration (ring + reversal "
      "phases, 16 tasks on ring:8, 50 iterations, move cost 10)");
  TextTable table({"message volume", "static", "migrating", "task moves",
                   "winner"});
  for (const std::int64_t volume : {1, 5, 20, 50, 200, 1000}) {
    const auto g = conflicting(16, volume, 50);
    const auto topo = Topology::ring(8);
    MigrationConfig config;
    config.cost_per_task_move = 10;
    const auto report = evaluate_phase_migration(g, topo, config);
    table.add_row({std::to_string(volume),
                   std::to_string(report.static_time),
                   std::to_string(report.migrating_time),
                   std::to_string(report.task_moves),
                   report.migration_wins() ? "migrate" : "static"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("(the paper proposed investigating exactly this trade-off "
              "as future work; the crossover shows both regimes exist)\n");
}

void BM_EvaluateMigration(benchmark::State& state) {
  const auto g = conflicting(16, 50, state.range(0));
  const auto topo = Topology::ring(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_phase_migration(g, topo));
  }
  state.counters["iters"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EvaluateMigration)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
