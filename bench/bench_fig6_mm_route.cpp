// Experiment Fig 6: Algorithm MM-Route for the 15-body problem on an
// 8-node hypercube -- reproduces the chordal-phase routing walkthrough:
// the table of shortest-route choices per message, the first-hop
// maximal-matching rounds, and the resulting (low) link contention;
// then times MM-Route across machine sizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/arch/routes.hpp"
#include "oregami/graph/gray_code.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/baselines.hpp"
#include "oregami/mapper/mm_route.hpp"
#include "oregami/mapper/paper_examples.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

std::vector<int> fig6_placement() {
  // The Fig 6a embedding: ring-contiguous pairs {2k, 2k+1} (task 14
  // alone) on processor gray(k), so ring neighbours sit on adjacent
  // processors and each chordal message i -> i+8 crosses the cube.
  std::vector<int> procs(15);
  for (int t = 0; t < 15; ++t) {
    procs[static_cast<std::size_t>(t)] =
        static_cast<int>(gray_code(static_cast<std::uint32_t>(t / 2)));
  }
  return procs;
}

void print_figure() {
  bench::print_header(
      "Fig 6: MM-Route, 15-body chordal phase on an 8-node hypercube");
  const auto g = paper::fig6_nbody15();
  const auto topo = Topology::hypercube(3);
  const auto procs = fig6_placement();

  // Fig 6b: table of possible shortest routes per chordal message.
  TextTable table({"message", "from", "to", "#shortest routes",
                   "first-hop choices"});
  const auto& chordal = g.comm_phases()[1];
  for (const auto& e : chordal.edges) {
    const int src = procs[static_cast<std::size_t>(e.src)];
    const int dst = procs[static_cast<std::size_t>(e.dst)];
    std::string hops;
    for (const int next : next_hop_choices(topo, src, dst)) {
      hops += (hops.empty() ? "" : " ") + topo.proc_label(src) + "->" +
              topo.proc_label(next);
    }
    table.add_row({std::to_string(e.src) + "-" + std::to_string(e.dst),
                   topo.proc_label(src), topo.proc_label(dst),
                   std::to_string(count_shortest_routes(topo, src, dst)),
                   hops.empty() ? "(local)" : hops});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Fig 6c: the matching rounds.
  std::vector<PhaseRouteTrace> trace;
  const auto routing = mm_route(g, procs, topo, {}, &trace);
  std::printf("\nchordal-phase matching rounds:\n");
  for (const auto& round : trace[1].rounds) {
    std::printf("  hop %d: %zu messages assigned distinct links\n",
                round.hop, round.assignments.size());
  }
  const auto mm = bench::phase_contention(routing[1], topo.num_links());
  std::printf("\nchordal contention: max %d, avg %.2f per used link\n",
              mm.max, mm.avg);
  const auto oblivious = route_greedy_shortest(g, procs, topo);
  const auto ob = bench::phase_contention(oblivious[1], topo.num_links());
  std::printf("phase-oblivious greedy baseline: max %d, avg %.2f\n",
              ob.max, ob.avg);
}

void BM_MmRouteNbody(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int n = (1 << dim) * 2 - 1;  // ~2 tasks per processor
  const auto cp = larcs::compile_source(
      larcs::programs::nbody(), {{"n", n}, {"s", 1}, {"m", 1}});
  const auto topo = Topology::hypercube(dim);
  std::vector<int> procs(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    procs[static_cast<std::size_t>(t)] = t % (1 << dim);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mm_route(cp.graph, procs, topo));
  }
  state.counters["procs"] = 1 << dim;
}
BENCHMARK(BM_MmRouteNbody)->Arg(3)->Arg(5)->Arg(7)->Arg(9);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
