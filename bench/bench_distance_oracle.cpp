// Perf evidence for the mapper hot-path work:
//
//   1. closed-form distance oracles vs the BFS-table path (a Custom
//      topology over the same link graph -- exactly what every family
//      paid before the oracles), cold all-pairs sweep at P >= 256;
//   2. incremental completion-model scoring vs full recompute on a
//      placement-refinement sweep;
//   3. NN-Embed end-to-end (the dominant distance-oracle consumer).
//
// Prints the comparison tables, emits BENCH_mapper.json with the named
// timings, then runs the google-benchmark timings.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "oregami/arch/routes.hpp"
#include "oregami/arch/topology.hpp"
#include "oregami/graph/shortest_paths.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/mm_route.hpp"
#include "oregami/mapper/nn_embed.hpp"
#include "oregami/mapper/refine.hpp"
#include "oregami/metrics/incremental.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// All-pairs distance sweep; returns a checksum so nothing is elided.
std::int64_t sweep_all_pairs(const Topology& topo) {
  std::int64_t sum = 0;
  const int p = topo.num_procs();
  for (int u = 0; u < p; ++u) {
    const DistanceRow row = topo.distance_row(u);
    for (int v = 0; v < p; ++v) {
      sum += row[v];
    }
  }
  return sum;
}

struct OracleFigureRow {
  std::string family;
  int procs = 0;
  double oracle_s = 0.0;
  double bfs_s = 0.0;
  double speedup = 0.0;
};

/// Cold sweep cost of the pre-oracle path: a fresh Custom topology must
/// run one BFS per processor to build its table before answering.
OracleFigureRow compare_family(const Topology& topo) {
  OracleFigureRow row;
  row.family = topo.name();
  row.procs = topo.num_procs();

  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t oracle_sum = sweep_all_pairs(topo);
  row.oracle_s = seconds_since(t0);

  const Topology custom = Topology::custom("bfs-" + topo.name(),
                                           topo.graph());
  const auto t1 = std::chrono::steady_clock::now();
  const std::int64_t bfs_sum = sweep_all_pairs(custom);
  row.bfs_s = seconds_since(t1);

  if (oracle_sum != bfs_sum) {
    std::fprintf(stderr, "checksum mismatch on %s!\n", row.family.c_str());
  }
  row.speedup = row.oracle_s > 0 ? row.bfs_s / row.oracle_s : 0.0;
  return row;
}

/// The refinement workload (shared with bench_anneal): every (task,
/// candidate-processor) move of a full sweep, scored either
/// incrementally or from scratch.
using RefineWorkload = bench::MapperWorkload;

RefineWorkload make_refine_workload() { return bench::make_mapper_workload(); }

std::vector<std::pair<int, int>> sweep_moves(const RefineWorkload& w) {
  std::vector<std::pair<int, int>> moves;
  for (int t = 0; t < w.graph.num_tasks(); ++t) {
    const int here = w.procs[static_cast<std::size_t>(t)];
    for (const auto& a : w.topo.graph().neighbors(here)) {
      moves.emplace_back(t, a.neighbor);
    }
  }
  return moves;
}

std::int64_t score_sweep_incremental(
    const RefineWorkload& w, const std::vector<std::pair<int, int>>& moves) {
  IncrementalCompletion inc(w.graph, w.topo, w.procs, w.routing);
  std::int64_t sum = 0;
  for (const auto& [t, q] : moves) {
    sum += inc.delta_move(t, q);
  }
  return sum;
}

std::int64_t score_sweep_full(const RefineWorkload& w,
                              const std::vector<std::pair<int, int>>& moves) {
  // The pre-incremental cost of one probe: copy the placement, re-route
  // the task's incident edges, recompute the whole model.
  const std::int64_t base =
      completion_time(w.graph, w.procs, w.routing, w.topo);
  std::int64_t sum = 0;
  std::vector<int> procs = w.procs;
  std::vector<PhaseRouting> routing = w.routing;
  for (const auto& [t, q] : moves) {
    const int old = procs[static_cast<std::size_t>(t)];
    procs[static_cast<std::size_t>(t)] = q;
    std::vector<std::pair<std::size_t, std::size_t>> touched;
    for (std::size_t k = 0; k < w.graph.comm_phases().size(); ++k) {
      const auto& phase = w.graph.comm_phases()[k];
      for (std::size_t i = 0; i < phase.edges.size(); ++i) {
        const auto& e = phase.edges[i];
        if (e.src != t && e.dst != t) {
          continue;
        }
        touched.emplace_back(k, i);
        const int src = procs[static_cast<std::size_t>(e.src)];
        const int dst = procs[static_cast<std::size_t>(e.dst)];
        routing[k].route_of_edge[i] =
            src == dst ? Route{{src}, {}}
                       : greedy_shortest_route(w.topo, src, dst);
      }
    }
    sum += completion_time(w.graph, procs, routing, w.topo) - base;
    procs[static_cast<std::size_t>(t)] = old;
    for (const auto& [k, i] : touched) {
      routing[k].route_of_edge[i] = w.routing[k].route_of_edge[i];
    }
  }
  return sum;
}

/// Scattered cold-source queries: one query per distinct source, the
/// access pattern of NN-Embed candidate scans and refinement probes.
/// The legacy path paid one BFS per first-touched source row (the old
/// lazy per-row table); the oracle answers each in O(1).
struct ScatterFigureRow {
  double oracle_us = 0.0;
  double bfs_us = 0.0;
  double speedup = 0.0;
};

ScatterFigureRow compare_scattered(const Topology& topo) {
  const int p = topo.num_procs();
  SplitMix64 rng(0xACE5ULL);
  std::vector<std::pair<int, int>> queries;
  queries.reserve(static_cast<std::size_t>(p));
  for (int u = 0; u < p; ++u) {
    queries.emplace_back(
        u, static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p))));
  }

  ScatterFigureRow row;
  const auto t0 = std::chrono::steady_clock::now();
  std::int64_t oracle_sum = 0;
  for (const auto& [u, v] : queries) {
    oracle_sum += topo.distance(u, v);
  }
  row.oracle_us = seconds_since(t0) * 1e6;

  const auto t1 = std::chrono::steady_clock::now();
  std::int64_t bfs_sum = 0;
  for (const auto& [u, v] : queries) {
    // Row cache miss every time: sources are distinct, exactly the
    // legacy lazy-row fill cost.
    const std::vector<int> dist = bfs_distances(topo.graph(), u);
    bfs_sum += dist[static_cast<std::size_t>(v)];
  }
  row.bfs_us = seconds_since(t1) * 1e6;
  if (oracle_sum != bfs_sum) {
    std::fprintf(stderr, "scattered checksum mismatch on %s!\n",
                 topo.name().c_str());
  }
  row.speedup = row.oracle_us > 0 ? row.bfs_us / row.oracle_us : 0.0;
  return row;
}

void print_figures_and_json() {
  bench::print_header(
      "distance queries, cold scattered sources: oracle vs per-row BFS");
  bench::JsonReport json("BENCH_mapper.json");
  json.load();  // BENCH_mapper.json is shared with bench_anneal
  {
    TextTable scatter(
        {"network", "queries", "oracle (us)", "row BFS (us)", "speedup"});
    std::vector<Topology> scatter_targets;
    scatter_targets.push_back(Topology::mesh(16, 16));
    scatter_targets.push_back(Topology::torus(16, 16));
    scatter_targets.push_back(Topology::hypercube(8));
    scatter_targets.push_back(Topology::ring(256));
    for (const auto& topo : scatter_targets) {
      (void)compare_scattered(topo);  // warm-up
      const ScatterFigureRow row = compare_scattered(topo);
      char oracle_us[32];
      char bfs_us[32];
      char speedup[32];
      std::snprintf(oracle_us, sizeof(oracle_us), "%.1f", row.oracle_us);
      std::snprintf(bfs_us, sizeof(bfs_us), "%.1f", row.bfs_us);
      std::snprintf(speedup, sizeof(speedup), "%.0fx", row.speedup);
      scatter.add_row({topo.name(), std::to_string(topo.num_procs()),
                       oracle_us, bfs_us, speedup});
      json.add("cold_query_speedup_" + topo.name(), row.speedup, "x");
    }
    std::printf("%s", scatter.to_string().c_str());
  }

  bench::print_header(
      "all-pairs sweep incl. table build: closed form vs BFS table");

  std::vector<Topology> targets;
  targets.push_back(Topology::mesh(16, 16));
  targets.push_back(Topology::torus(16, 16));
  targets.push_back(Topology::hypercube(8));
  targets.push_back(Topology::ring(256));
  targets.push_back(Topology::complete_binary_tree(8));
  targets.push_back(Topology::butterfly(5));

  TextTable table(
      {"network", "procs", "oracle (ms)", "bfs table (ms)", "speedup"});
  for (const auto& topo : targets) {
    // Warm-up pass so first-touch noise does not pollute the timing.
    (void)compare_family(topo);
    const OracleFigureRow row = compare_family(topo);
    char oracle_ms[32];
    char bfs_ms[32];
    char speedup[32];
    std::snprintf(oracle_ms, sizeof(oracle_ms), "%.3f",
                  row.oracle_s * 1e3);
    std::snprintf(bfs_ms, sizeof(bfs_ms), "%.3f", row.bfs_s * 1e3);
    std::snprintf(speedup, sizeof(speedup), "%.1fx", row.speedup);
    table.add_row({row.family, std::to_string(row.procs), oracle_ms,
                   bfs_ms, speedup});
    json.add("distance_sweep_oracle_" + row.family, row.oracle_s * 1e3,
             "ms");
    json.add("distance_sweep_bfs_" + row.family, row.bfs_s * 1e3, "ms");
    json.add("distance_sweep_speedup_" + row.family, row.speedup, "x");
  }
  std::printf("%s", table.to_string().c_str());

  bench::print_header("refinement sweep: incremental vs full recompute");
  const RefineWorkload w = make_refine_workload();
  const auto moves = sweep_moves(w);
  (void)score_sweep_incremental(w, moves);  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t inc_sum = score_sweep_incremental(w, moves);
  const double inc_s = seconds_since(t0);
  const auto t1 = std::chrono::steady_clock::now();
  const std::int64_t full_sum = score_sweep_full(w, moves);
  const double full_s = seconds_since(t1);
  if (inc_sum != full_sum) {
    std::fprintf(stderr, "refinement checksum mismatch (%lld vs %lld)!\n",
                 static_cast<long long>(inc_sum),
                 static_cast<long long>(full_sum));
  }
  const double refine_speedup = inc_s > 0 ? full_s / inc_s : 0.0;
  std::printf(
      "%zu probes over %d tasks on %s:\n"
      "  incremental  %8.3f ms\n"
      "  full model   %8.3f ms\n"
      "  speedup      %8.1fx  (probe checksums agree: %s)\n",
      moves.size(), w.graph.num_tasks(), w.topo.name().c_str(),
      inc_s * 1e3, full_s * 1e3, refine_speedup,
      inc_sum == full_sum ? "yes" : "NO");
  json.add("refine_sweep_incremental", inc_s * 1e3, "ms");
  json.add("refine_sweep_full", full_s * 1e3, "ms");
  json.add("refine_sweep_speedup", refine_speedup, "x");
  // Workload shape snapshot: per-phase tracker state of the mapping the
  // sweep probes, so perf diffs can tell a slower code path from a
  // changed workload.
  json.add_phase_counters(
      "refine_sweep", w.graph,
      IncrementalCompletion(w.graph, w.topo, w.procs, w.routing));

  bench::print_header("NN-Embed end to end (oracle consumer)");
  const Graph cluster = bench::random_task_graph(256, 0.05, 0xC0FFEEULL)
                            .aggregate_graph();
  const Topology mesh = Topology::mesh(16, 16);
  (void)nn_embed(cluster, mesh);  // warm-up
  const auto t2 = std::chrono::steady_clock::now();
  const Embedding embedding = nn_embed(cluster, mesh);
  const double nn_s = seconds_since(t2);
  std::printf("nn_embed(256 clusters -> mesh 16x16): %.3f ms (dilation %lld)\n",
              nn_s * 1e3,
              static_cast<long long>(
                  weighted_dilation(cluster, embedding, mesh)));
  json.add("nn_embed_256_mesh16x16", nn_s * 1e3, "ms");

  json.write();
}

void BM_OracleAllPairsMesh16(benchmark::State& state) {
  const Topology topo = Topology::mesh(16, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_all_pairs(topo));
  }
}
BENCHMARK(BM_OracleAllPairsMesh16);

void BM_BfsTableAllPairsMesh16(benchmark::State& state) {
  const Topology topo = Topology::mesh(16, 16);
  for (auto _ : state) {
    const Topology custom = Topology::custom("bfs", topo.graph());
    benchmark::DoNotOptimize(sweep_all_pairs(custom));
  }
}
BENCHMARK(BM_BfsTableAllPairsMesh16);

void BM_IncrementalRefineSweep(benchmark::State& state) {
  const RefineWorkload w = make_refine_workload();
  const auto moves = sweep_moves(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(score_sweep_incremental(w, moves));
  }
}
BENCHMARK(BM_IncrementalRefineSweep);

void BM_RefinePlacementMesh8x8(benchmark::State& state) {
  const RefineWorkload w = make_refine_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        refine_placement(w.graph, w.topo, w.procs, w.routing));
  }
}
BENCHMARK(BM_RefinePlacementMesh8x8);

}  // namespace

int main(int argc, char** argv) {
  print_figures_and_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
