// Degraded-mode repair at scale: 512 tasks on a 16x16 mesh with
// processor/link failures. Compares the in-place migrate(+refine)
// repair against a forced full remap of the healthy sub-machine --
// the ladder's whole point is that localised repair is much faster
// while staying within a small completion factor of the remap.
// Emits BENCH_repair.json with the timing and quality ratios.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "oregami/arch/fault_model.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/repair.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

constexpr int kRows = 16;
constexpr int kCols = 16;
constexpr int kTasks = 512;  // 2 tasks per processor

/// 512-task halo-exchange grid (32x16 task lattice) with an exec phase:
/// the shape MWM-Contract + NN-Embed handle well on a mesh, so both
/// repair and remap have real structure to preserve.
TaskGraph big_grid() {
  constexpr int rows = 32;
  constexpr int cols = 16;
  static_assert(rows * cols == kTasks);
  TaskGraph g;
  for (int i = 0; i < kTasks; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int phase = g.add_comm_phase("halo");
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int id = r * cols + c;
      if (c + 1 < cols) {
        g.add_comm_edge(phase, id, id + 1, 3);
      }
      if (r + 1 < rows) {
        g.add_comm_edge(phase, id, id + cols, 3);
      }
    }
  }
  std::vector<std::int64_t> cost(kTasks, 4);
  g.add_exec_phase("relax", std::move(cost));
  g.validate();
  return g;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void print_figure() {
  bench::print_header(
      "repair ladder: in-place migrate+refine vs full remap "
      "(512 tasks, mesh:16x16)");
  const TaskGraph graph = big_grid();
  const Topology topo = Topology::mesh(kRows, kCols);
  const auto healthy = map_computation(graph, topo);

  bench::JsonReport json("BENCH_repair.json");
  TextTable table({"fault spec", "mode", "time ms", "degraded completion",
                   "migrations"});

  int scenario = 0;
  for (const char* spec_text :
       {"rand:2x2x2", "rand:8x4x4", "rand:20x10x6"}) {
    const FaultSpec spec = FaultSpec::parse(spec_text, topo, 1234);
    const FaultedTopology ft(topo, spec);

    RepairOptions in_place;  // migrate + refine, no remap needed
    auto start = std::chrono::steady_clock::now();
    const RepairResult fast = repair_mapping(graph, ft, healthy.mapping,
                                             in_place);
    const double fast_ms = ms_since(start);

    RepairOptions full;
    full.allow_migrate = false;  // force the last rung
    full.allow_refine = false;
    start = std::chrono::steady_clock::now();
    const RepairResult remap = repair_mapping(graph, ft, healthy.mapping,
                                              full);
    const double remap_ms = ms_since(start);

    table.add_row({spec_text, "in-place", std::to_string(fast_ms),
                   std::to_string(fast.degraded_completion),
                   std::to_string(fast.migrations.size())});
    table.add_row({spec_text, "full remap", std::to_string(remap_ms),
                   std::to_string(remap.degraded_completion), "-"});

    const std::string tag = "repair/s" + std::to_string(scenario);
    json.add(tag + "/in_place_ms", fast_ms, "ms");
    json.add(tag + "/full_remap_ms", remap_ms, "ms");
    json.add(tag + "/speedup",
             fast_ms > 0 ? remap_ms / fast_ms : 0.0, "x");
    json.add(tag + "/in_place_completion",
             static_cast<double>(fast.degraded_completion), "cycles");
    json.add(tag + "/full_remap_completion",
             static_cast<double>(remap.degraded_completion), "cycles");
    json.add(tag + "/completion_factor",
             static_cast<double>(fast.degraded_completion) /
                 static_cast<double>(remap.degraded_completion),
             "x");
    json.add_counter(tag + "/migrations",
                     static_cast<std::int64_t>(fast.migrations.size()));
    json.add_counter(tag + "/attempts", fast.attempts);
    ++scenario;
  }
  // Per-phase tracker snapshot of the healthy mapping every scenario
  // starts from (the repair workload's shape, not a timing).
  json.add_phase_counters(
      "healthy", graph,
      IncrementalCompletion(graph, topo, healthy.mapping));
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "(in-place repair touches only displaced tasks; full remap reruns "
      "the whole MAPPER pipeline on the healthy sub-machine)\n");
  json.write();
}

void BM_RepairInPlace(benchmark::State& state) {
  const TaskGraph graph = big_grid();
  const Topology topo = Topology::mesh(kRows, kCols);
  const auto healthy = map_computation(graph, topo);
  const FaultedTopology ft(
      topo, FaultSpec::parse("rand:8x4x4", topo, 1234));
  for (auto _ : state) {
    benchmark::DoNotOptimize(repair_mapping(graph, ft, healthy.mapping));
  }
}
BENCHMARK(BM_RepairInPlace)->Unit(benchmark::kMillisecond);

void BM_RepairFullRemap(benchmark::State& state) {
  const TaskGraph graph = big_grid();
  const Topology topo = Topology::mesh(kRows, kCols);
  const auto healthy = map_computation(graph, topo);
  const FaultedTopology ft(
      topo, FaultSpec::parse("rand:8x4x4", topo, 1234));
  RepairOptions full;
  full.allow_migrate = false;
  full.allow_refine = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        repair_mapping(graph, ft, healthy.mapping, full));
  }
}
BENCHMARK(BM_RepairFullRemap)->Unit(benchmark::kMillisecond);

void BM_FaultedTopologyConstruction(benchmark::State& state) {
  const Topology topo = Topology::mesh(kRows, kCols);
  const FaultSpec spec = FaultSpec::parse("rand:20x10x6", topo, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FaultedTopology(topo, spec));
  }
}
BENCHMARK(BM_FaultedTopologyConstruction)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
