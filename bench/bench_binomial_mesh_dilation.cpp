// Experiment C1: the binomial-tree -> mesh embedding's average dilation
// stays bounded by 1.2 for arbitrarily large trees (§4.1, [LRG+89]).
// Prints the dilation series and times the embedding construction.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/mapper/binomial_mesh.hpp"
#include "oregami/mapper/cbt_mesh.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

void print_figure() {
  bench::print_header(
      "C1: binomial tree -> square mesh, average dilation vs 1.2 bound");
  TextTable table({"k", "nodes", "mesh", "avg dilation", "max dilation",
                   "within 1.2"});
  for (int k = 2; k <= 16; ++k) {
    const auto e = embed_binomial_in_mesh(k);
    table.add_row({std::to_string(k), std::to_string(1 << k),
                   std::to_string(e.rows) + "x" + std::to_string(e.cols),
                   format_fixed(e.average_dilation(), 4),
                   std::to_string(e.max_dilation()),
                   e.average_dilation() <= 1.2 ? "yes" : "NO"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "(paper: \"average dilation bounded by 1.2 for arbitrarily large "
      "binomial tree and mesh\")\n");

  bench::print_header(
      "C1b: complete binary tree -> mesh (H-tree layout), for "
      "comparison");
  TextTable cbt({"h", "nodes", "grid", "avg dilation", "max dilation"});
  for (int h = 2; h <= 14; h += 2) {
    const auto e = embed_cbt_in_mesh(h);
    cbt.add_row({std::to_string(h), std::to_string((1 << h) - 1),
                 std::to_string(e.rows) + "x" + std::to_string(e.cols),
                 format_fixed(e.average_dilation(), 4),
                 std::to_string(e.max_dilation())});
  }
  std::fputs(cbt.to_string().c_str(), stdout);
}

void BM_EmbedBinomialInMesh(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(embed_binomial_in_mesh(k));
  }
  state.counters["nodes"] = 1 << k;
}
BENCHMARK(BM_EmbedBinomialInMesh)->Arg(8)->Arg(10)->Arg(12)->Arg(14)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
