// Shared helpers for the benchmark harnesses.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/incremental.hpp"
#include "oregami/support/rng.hpp"

namespace oregami::bench {

/// Max/avg per-link contention of one routed phase.
struct Contention {
  int max = 0;
  double avg = 0.0;
};

inline Contention phase_contention(const PhaseRouting& routing,
                                   int num_links) {
  std::vector<int> count(static_cast<std::size_t>(num_links), 0);
  for (const auto& r : routing.route_of_edge) {
    for (const int link : r.links) {
      ++count[static_cast<std::size_t>(link)];
    }
  }
  Contention c;
  int used = 0;
  long total = 0;
  for (const int x : count) {
    c.max = std::max(c.max, x);
    if (x > 0) {
      ++used;
      total += x;
    }
  }
  c.avg = used == 0 ? 0.0
                    : static_cast<double>(total) / static_cast<double>(used);
  return c;
}

/// Worst contention over all phases.
inline Contention worst_contention(const std::vector<PhaseRouting>& routing,
                                   int num_links) {
  Contention worst;
  for (const auto& pr : routing) {
    const Contention c = phase_contention(pr, num_links);
    if (c.max > worst.max) {
      worst.max = c.max;
    }
    worst.avg = std::max(worst.avg, c.avg);
  }
  return worst;
}

/// Random weighted task graph (single phase) for contraction benches.
inline TaskGraph random_task_graph(int n, double density,
                                   std::uint64_t seed) {
  SplitMix64 rng(seed);
  TaskGraph g;
  for (int i = 0; i < n; ++i) {
    g.add_task("t" + std::to_string(i));
  }
  const int phase = g.add_comm_phase("p");
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_double() < density) {
        g.add_comm_edge(phase, u, v, rng.next_in(1, 20));
      }
    }
  }
  return g;
}

inline void print_header(const char* title) {
  std::printf("\n================ %s ================\n", title);
}

/// The shared mapper stress workload: a 512-task multi-phase graph
/// shaped like the paper programs (4 sparse comm phases + 2 exec phases
/// under a repeated sequence) mapped onto mesh:16x16, with the MAPPER
/// pipeline's placement and routing as the starting point. Used by the
/// refinement-sweep and annealing-quality benches so their series are
/// comparable point for point.
struct MapperWorkload {
  TaskGraph graph;
  Topology topo = Topology::mesh(16, 16);
  std::vector<int> procs;
  std::vector<PhaseRouting> routing;
};

inline MapperWorkload make_mapper_workload() {
  MapperWorkload w;
  SplitMix64 rng(0x5EEDULL);
  const int n = 512;
  for (int i = 0; i < n; ++i) {
    w.graph.add_task("t" + std::to_string(i));
  }
  std::vector<PhaseTree> leaves;
  for (int k = 0; k < 4; ++k) {
    const int phase = w.graph.add_comm_phase("comm" + std::to_string(k));
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.next_double() < 0.01) {
          w.graph.add_comm_edge(phase, u, v, rng.next_in(1, 20));
        }
      }
    }
    leaves.push_back(PhaseTree::comm(phase));
  }
  for (int k = 0; k < 2; ++k) {
    std::vector<std::int64_t> cost(static_cast<std::size_t>(n));
    for (auto& c : cost) {
      c = rng.next_in(1, 30);
    }
    const int phase =
        w.graph.add_exec_phase("exec" + std::to_string(k), std::move(cost));
    leaves.push_back(PhaseTree::exec(phase));
  }
  w.graph.set_phase_expr(
      PhaseTree::repeat(PhaseTree::seq(std::move(leaves)), 8));
  w.graph.validate();
  const MapperReport report = map_computation(w.graph, w.topo, {});
  w.procs = report.mapping.proc_of_task();
  w.routing = report.mapping.routing;
  return w;
}

/// Machine-readable perf trajectory: named scalar results collected
/// during a bench run and written as one JSON document (e.g.
/// BENCH_mapper.json), so CI and future sessions can diff numbers
/// without parsing the human tables.
class JsonReport {
 public:
  explicit JsonReport(std::string path) : path_(std::move(path)) {}

  /// Seeds the report with the entries already in the file (if any),
  /// so several bench binaries can share one document: each binary
  /// loads, overwrites its own series by name, and writes everything
  /// back. Only the strict format produced by write() is understood;
  /// a missing or unreadable file is simply an empty starting set.
  void load() {
    std::FILE* in = std::fopen(path_.c_str(), "r");
    if (in == nullptr) {
      return;
    }
    char line[512];
    bool in_counters = false;
    while (std::fgets(line, sizeof(line), in) != nullptr) {
      const std::string s(line);
      if (s.find("\"counters\"") != std::string::npos) {
        in_counters = true;
        continue;
      }
      const auto name_at = s.find("{\"name\": \"");
      if (name_at == std::string::npos) {
        continue;
      }
      const auto name_from = name_at + 10;
      const auto name_to = s.find('"', name_from);
      const auto value_at = s.find("\"value\": ", name_to);
      if (name_to == std::string::npos || value_at == std::string::npos) {
        continue;
      }
      const std::string name = s.substr(name_from, name_to - name_from);
      const double value = std::strtod(s.c_str() + value_at + 9, nullptr);
      if (in_counters) {
        add_counter(name, static_cast<std::int64_t>(value));
      } else {
        std::string unit;
        const auto unit_at = s.find("\"unit\": \"");
        if (unit_at != std::string::npos) {
          const auto unit_from = unit_at + 9;
          const auto unit_to = s.find('"', unit_from);
          if (unit_to != std::string::npos) {
            unit = s.substr(unit_from, unit_to - unit_from);
          }
        }
        add(name, value, unit);
      }
    }
    std::fclose(in);
  }

  /// Find-or-replace by name: re-running a bench updates its own
  /// series in place instead of appending duplicates.
  void add(const std::string& name, double value, const std::string& unit) {
    for (auto& e : entries_) {
      if (e.name == name) {
        e.value = value;
        e.unit = unit;
        return;
      }
    }
    entries_.push_back({name, value, unit});
  }

  /// Structural (non-timing) counter: exact integer, no unit. These
  /// land in a separate "counters" array so perf diffs can separate
  /// "the code got slower" from "the workload changed shape".
  void add_counter(const std::string& name, std::int64_t value) {
    for (auto& c : counters_) {
      if (c.name == name) {
        c.value = value;
        return;
      }
    }
    counters_.push_back({name, value});
  }

  /// Embeds the per-phase tracker snapshot of a scored mapping: each
  /// comm phase contributes max_link_volume / total_volume /
  /// used_links / max_hops, each exec phase max_load, all prefixed
  /// with "<scope>/<phase>/". Deterministic for a fixed mapping.
  void add_phase_counters(const std::string& scope, const TaskGraph& graph,
                          const IncrementalCompletion& inc) {
    for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
      const CommPhaseSnapshot snap = inc.comm_snapshot(static_cast<int>(k));
      const std::string p = scope + "/" + graph.comm_phases()[k].name;
      add_counter(p + "/max_link_volume", snap.max_volume);
      add_counter(p + "/total_volume", snap.total_volume);
      add_counter(p + "/used_links", snap.used_links);
      add_counter(p + "/max_hops", snap.max_hops);
    }
    for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
      add_counter(scope + "/" + graph.exec_phases()[k].name + "/max_load",
                  inc.exec_max_load(static_cast<int>(k)));
    }
  }

  /// Writes {"benchmarks": [{"name":..., "value":..., "unit":...}],
  ///         "counters": [{"name":..., "value":...}]}.
  /// Returns false (and prints to stderr) when the file cannot be
  /// opened; benches still exit 0 so smoke runs never fail on fs state.
  bool write() const {
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot open %s\n", path_.c_str());
      return false;
    }
    std::fprintf(out, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto& e = entries_[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"value\": %.6g, "
                   "\"unit\": \"%s\"}%s\n",
                   e.name.c_str(), e.value, e.unit.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"counters\": [\n");
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      const auto& c = counters_[i];
      std::fprintf(out, "    {\"name\": \"%s\", \"value\": %lld}%s\n",
                   c.name.c_str(), static_cast<long long>(c.value),
                   i + 1 < counters_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s (%zu entries, %zu counters)\n", path_.c_str(),
                entries_.size(), counters_.size());
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double value = 0.0;
    std::string unit;
  };
  struct Counter {
    std::string name;
    std::int64_t value = 0;
  };
  std::string path_;
  std::vector<Entry> entries_;
  std::vector<Counter> counters_;
};

}  // namespace oregami::bench
