// Experiment V1 (reproduction extension): validate METRICS' analytic
// completion-time model against the discrete-event store-and-forward
// simulator across the whole program corpus. The model is a lower
// bound (it ignores head-of-line blocking); the two must agree on
// ranking and stay within a small factor.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/sim/network_sim.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

void print_figure() {
  bench::print_header(
      "V1: analytic completion model vs discrete-event simulation");
  TextTable table({"workload", "network", "model", "simulated",
                   "sim/model"});
  int rank_inversions = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
  for (const auto& entry : larcs::programs::catalog()) {
    std::map<std::string, long> bindings(entry.example_bindings.begin(),
                                         entry.example_bindings.end());
    const auto ast = larcs::parse_program(entry.source);
    const auto cp = larcs::compile(ast, bindings);
    for (const auto& topo :
         {Topology::hypercube(3), Topology::mesh(4, 4)}) {
      const auto report = map_program(ast, cp, topo);
      const auto procs = report.mapping.proc_of_task();
      const auto model =
          compute_metrics(cp.graph, report.mapping, topo).completion;
      const auto sim =
          simulate(cp.graph, procs, report.mapping.routing, topo)
              .total_cycles;
      pairs.emplace_back(model, sim);
      table.add_row({entry.name, topo.name(), std::to_string(model),
                     std::to_string(sim),
                     model > 0 ? format_fixed(static_cast<double>(sim) /
                                                  static_cast<double>(model),
                                              2)
                               : "-"});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  // Rank agreement: count pair inversions between model and sim.
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (std::size_t j = i + 1; j < pairs.size(); ++j) {
      const bool model_less = pairs[i].first < pairs[j].first;
      const bool sim_less = pairs[i].second < pairs[j].second;
      if (model_less != sim_less && pairs[i].first != pairs[j].first &&
          pairs[i].second != pairs[j].second) {
        ++rank_inversions;
      }
    }
  }
  std::printf("rank inversions between model and simulation: %d of %zu "
              "pairs\n",
              rank_inversions, pairs.size() * (pairs.size() - 1) / 2);
}

void BM_SimulateNbody(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto cp = larcs::compile_source(
      larcs::programs::nbody(), {{"n", n}, {"s", 2}, {"m", 4}});
  const auto topo = Topology::hypercube(4);
  const auto report = map_computation(cp.graph, topo);
  const auto procs = report.mapping.proc_of_task();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate(cp.graph, procs, report.mapping.routing, topo));
  }
}
BENCHMARK(BM_SimulateNbody)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
