// Experiment Fig 2: the n-body task graph generated from its LaRCS
// description -- reproduces the structure of the paper's Fig 2 (ring +
// chordal phases, the phase expression) and times the LaRCS pipeline.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

void print_figure() {
  bench::print_header("Fig 2: n-body task graph from LaRCS (n = 15)");
  const std::string source = larcs::programs::nbody();
  const auto cp =
      larcs::compile_source(source, {{"n", 15}, {"s", 4}, {"m", 8}});
  const auto& g = cp.graph;
  std::printf("LaRCS source: %zu bytes\n", source.size());
  std::printf("tasks: %d (node symmetric: %s)\n", g.num_tasks(),
              g.declared_node_symmetric() ? "yes" : "no");
  TextTable table({"phase", "edges", "rule", "volume"});
  table.add_row({"ring", std::to_string(g.comm_phases()[0].edges.size()),
                 "i -> (i+1) mod n", "m = 8"});
  table.add_row({"chordal",
                 std::to_string(g.comm_phases()[1].edges.size()),
                 "i -> (i + (n+1)/2) mod n", "m = 8"});
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("phase expression: %s\n",
              g.phase_expr()
                  .to_string(g.comm_phases(), g.exec_phases())
                  .c_str());
  std::printf("chordal neighbour of task 0: task %d (paper: 8)\n",
              g.comm_phases()[1].edges[0].dst);
}

void BM_ParseNbody(benchmark::State& state) {
  const std::string source = larcs::programs::nbody();
  for (auto _ : state) {
    benchmark::DoNotOptimize(larcs::parse_program(source));
  }
}
BENCHMARK(BM_ParseNbody);

void BM_CompileNbody(benchmark::State& state) {
  const auto ast = larcs::parse_program(larcs::programs::nbody());
  const long n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        larcs::compile(ast, {{"n", n}, {"s", 4}, {"m", 8}}));
  }
  state.counters["tasks"] = static_cast<double>(n);
}
BENCHMARK(BM_CompileNbody)->Arg(63)->Arg(255)->Arg(1023)->Arg(4095);

void BM_CompileJacobi(benchmark::State& state) {
  const auto ast = larcs::parse_program(larcs::programs::jacobi());
  const long n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        larcs::compile(ast, {{"n", n}, {"iters", 10}}));
  }
  state.counters["tasks"] = static_cast<double>(n * n);
}
BENCHMARK(BM_CompileJacobi)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
