// Experiment V3 (paper §6 proposal, evaluated): spawn plans for
// dynamically growing divide-and-conquer trees. Placements are fixed
// up front, so growth needs zero migrations; the table shows the live
// load imbalance at every growth stage and the dilation of the final
// tree.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/mapper/dynamic_spawn.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

void print_figure() {
  bench::print_header(
      "V3: binomial spawn plan, B_0 -> B_10 on hypercube(5) and "
      "mesh(8x4)");
  for (const auto& topo : {Topology::hypercube(5), Topology::mesh(8, 4)}) {
    const auto plan = plan_binomial_spawn(10, topo);
    std::printf("%s  (%s)\n", topo.name().c_str(),
                plan.description.c_str());
    TextTable table({"stage", "live tasks", "max-min load imbalance"});
    for (int s = 0; s <= 10; ++s) {
      table.add_row({std::to_string(s),
                     std::to_string(plan.live_nodes(s).size()),
                     std::to_string(
                         plan.stage_imbalance(s, topo.num_procs()))});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("migrations during growth: 0 (placements fixed a "
                "priori)\n\n");
  }

  bench::print_header("V3b: CBT spawn plan, levels 1..6 on mesh(7x15)");
  const auto topo = Topology::mesh(7, 15);
  const auto plan = plan_cbt_spawn(6, topo);
  TextTable table({"stage (depth)", "live tasks", "imbalance"});
  for (int s = 0; s <= 5; ++s) {
    table.add_row(
        {std::to_string(s), std::to_string(plan.live_nodes(s).size()),
         std::to_string(plan.stage_imbalance(s, topo.num_procs()))});
  }
  std::fputs(table.to_string().c_str(), stdout);
}

void BM_PlanBinomialSpawn(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto topo = Topology::hypercube(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_binomial_spawn(k, topo));
  }
}
BENCHMARK(BM_PlanBinomialSpawn)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
