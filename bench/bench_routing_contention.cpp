// Experiment C4: MM-Route's phase-aware matching keeps link contention
// low relative to phase-oblivious routing (dimension-order, greedy
// lowest-neighbour, random shortest path) -- measured on the n-body and
// FFT workloads over hypercubes and meshes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/baselines.hpp"
#include "oregami/mapper/mm_route.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

struct Workload {
  std::string name;
  TaskGraph graph;
  std::vector<int> procs;
};

Workload nbody_on(int num_procs) {
  const int n = num_procs * 2 - 1;
  Workload w;
  w.name = "nbody(" + std::to_string(n) + ")";
  w.graph = larcs::compile_source(larcs::programs::nbody(),
                                  {{"n", n}, {"s", 1}, {"m", 1}})
                .graph;
  w.procs.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    w.procs[static_cast<std::size_t>(t)] = t % num_procs;
  }
  return w;
}

Workload fft_on(int num_procs, int log_n) {
  Workload w;
  w.name = "fft(2^" + std::to_string(log_n) + ")";
  w.graph = larcs::compile_source(larcs::programs::fft(log_n),
                                  {{"n", 1L << log_n}})
                .graph;
  const int n = 1 << log_n;
  w.procs.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    w.procs[static_cast<std::size_t>(t)] = t % num_procs;
  }
  return w;
}

void report(const Workload& w, const Topology& topo, TextTable& table) {
  const auto mm = mm_route(w.graph, w.procs, topo);
  const auto greedy = route_greedy_shortest(w.graph, w.procs, topo);
  const auto random = route_random_shortest(w.graph, w.procs, topo, 99);
  const auto mm_c = bench::worst_contention(mm, topo.num_links());
  const auto gr_c = bench::worst_contention(greedy, topo.num_links());
  const auto rd_c = bench::worst_contention(random, topo.num_links());

  std::string ecube = "-";
  if (topo.family() == TopoFamily::Hypercube ||
      topo.family() == TopoFamily::Mesh) {
    const auto dor = route_dimension_order(w.graph, w.procs, topo);
    ecube = std::to_string(
        bench::worst_contention(dor, topo.num_links()).max);
  }
  table.add_row({w.name, topo.name(), std::to_string(mm_c.max), ecube,
                 std::to_string(gr_c.max), std::to_string(rd_c.max),
                 format_fixed(mm_c.avg, 2)});
}

void print_figure() {
  bench::print_header(
      "C4: worst per-phase link contention (max messages on one link)");
  TextTable table({"workload", "network", "MM-Route", "e-cube", "greedy",
                   "random", "MM avg"});
  for (const int dim : {3, 4, 5}) {
    report(nbody_on(1 << dim), Topology::hypercube(dim), table);
  }
  report(nbody_on(16), Topology::mesh(4, 4), table);
  for (const int log_n : {4, 5}) {
    report(fft_on(1 << (log_n - 1), log_n),
           Topology::hypercube(log_n - 1), table);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "(the paper claims a \"low level of link contention\": MM-Route "
      "should track the best baseline and clearly beat the greedy and "
      "random phase-oblivious routers; e-cube is a strong baseline on "
      "these highly regular permutations)\n");
}

void BM_MmRouteFft(benchmark::State& state) {
  const int log_n = static_cast<int>(state.range(0));
  const auto w = fft_on(1 << (log_n - 1), log_n);
  const auto topo = Topology::hypercube(log_n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mm_route(w.graph, w.procs, topo));
  }
}
BENCHMARK(BM_MmRouteFft)->Arg(4)->Arg(6)->Arg(8);

void BM_DimensionOrderFft(benchmark::State& state) {
  const int log_n = static_cast<int>(state.range(0));
  const auto w = fft_on(1 << (log_n - 1), log_n);
  const auto topo = Topology::hypercube(log_n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_dimension_order(w.graph, w.procs, topo));
  }
}
BENCHMARK(BM_DimensionOrderFft)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
