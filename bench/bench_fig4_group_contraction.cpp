// Experiment Fig 4: group-theoretic contraction of the 8-task perfect
// broadcast onto 4 processors -- reproduces the paper's element list
// E0..E7, the subgroup {E0, E4} derived from comm3, and the
// 2-messages-internalized-per-cluster property; then times the
// contraction across circulant sizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/group_contract.hpp"

namespace {

using namespace oregami;

TaskGraph broadcast(int n) {
  return larcs::compile_source(larcs::programs::broadcast_vote(n),
                               {{"n", n}})
      .graph;
}

void print_figure() {
  bench::print_header(
      "Fig 4: group-theoretic contraction, 8-task broadcast -> 4 procs");
  const auto g = broadcast(8);
  for (const auto& phase : g.comm_phases()) {
    const auto perm = phase_permutation(phase, 8);
    std::printf("%-6s = %s\n", phase.name.c_str(),
                perm->to_cycle_string().c_str());
  }
  const auto outcome = group_theoretic_contraction(g, 4);
  if (outcome.status != GroupContractStatus::Ok) {
    std::printf("unexpected: %s\n", to_string(outcome.status).c_str());
    return;
  }
  const auto& r = *outcome.result;
  for (std::size_t i = 0; i < r.element_cycles.size(); ++i) {
    std::printf("E%zu = %s\n", i, r.element_cycles[i].c_str());
  }
  std::printf("subgroup: {");
  for (std::size_t i = 0; i < r.subgroup.size(); ++i) {
    std::printf("%sE%zu", i ? ", " : "", r.subgroup[i]);
  }
  std::printf("}  normal: %s\n", r.subgroup_normal ? "yes" : "no");
  std::printf("clusters:");
  for (int c = 0; c < 4; ++c) {
    std::printf(" {");
    bool first = true;
    for (int t = 0; t < 8; ++t) {
      if (r.contraction.cluster_of_task[static_cast<std::size_t>(t)] == c) {
        std::printf("%s%d", first ? "" : ",", t);
        first = false;
      }
    }
    std::printf("}");
  }
  std::printf("\ninternalized messages per cluster: %d (paper: 2)\n",
              r.internalized_per_cluster);
  std::printf("Sylow: |T|/|A| = 2 is prime -> balanced contraction "
              "guaranteed: %s\n",
              sylow_balanced_contraction_exists(8, 4) ? "yes" : "no");
}

void BM_GroupContraction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = broadcast(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group_theoretic_contraction(g, n / 4));
  }
  state.counters["tasks"] = n;
}
BENCHMARK(BM_GroupContraction)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_PhasePermutationExtraction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = broadcast(n);
  for (auto _ : state) {
    for (const auto& phase : g.comm_phases()) {
      benchmark::DoNotOptimize(phase_permutation(phase, n));
    }
  }
}
BENCHMARK(BM_PhasePermutationExtraction)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
