// Experiment V4 (paper §6 proposal, evaluated): aggregation-topology
// selection. After mapping a stencil workload, an aggregation phase
// must collect one value per processor at a root. Compare the
// load-aware minimax spanning tree against the oblivious BFS tree on
// the bottleneck link load (existing traffic + tree traffic).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/aggregation.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

/// Oblivious baseline: BFS spanning tree (parents via lowest-id
/// shortest paths), same accounting.
AggregationTree bfs_tree(const Topology& topo, int root,
                         const std::vector<std::int64_t>& load) {
  // choose_aggregation_tree with zero existing load *is* a BFS tree
  // (minimax over zeros ties to hop count); re-account under the real
  // load afterwards.
  AggregationTree tree = choose_aggregation_tree(topo, root, {});
  tree.bottleneck = 0;
  for (int l = 0; l < topo.num_links(); ++l) {
    tree.bottleneck = std::max(
        tree.bottleneck, load[static_cast<std::size_t>(l)] +
                             tree.tree_load[static_cast<std::size_t>(l)]);
  }
  return tree;
}

void print_figure() {
  bench::print_header(
      "V4: aggregation-tree selection under committed phase traffic");
  TextTable table({"workload", "network", "root", "oblivious BFS tree",
                   "load-aware tree"});
  struct Case {
    std::string program;
    std::map<std::string, long> bindings;
  };
  const std::vector<Case> cases = {
      {"torus_stencil", {{"r", 4}, {"c", 4}, {"iters", 4}}},
      {"jacobi", {{"n", 8}, {"iters", 4}}},
      {"nbody", {{"n", 31}, {"s", 2}, {"m", 4}}},
  };
  for (const auto& c : cases) {
    std::string source;
    for (const auto& entry : larcs::programs::catalog()) {
      if (entry.name == c.program) {
        source = entry.source;
      }
    }
    const auto cp = larcs::compile_source(source, c.bindings);
    for (const auto& topo :
         {Topology::mesh(4, 4), Topology::hypercube(4)}) {
      const auto report = map_computation(cp.graph, topo);
      const auto load =
          committed_link_load(report.mapping.routing, topo.num_links());
      const int root = 0;
      const auto oblivious = bfs_tree(topo, root, load);
      const auto aware = choose_aggregation_tree(topo, root, load);
      table.add_row({c.program, topo.name(), std::to_string(root),
                     std::to_string(oblivious.bottleneck),
                     std::to_string(aware.bottleneck)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("(bottleneck = max per-link load including the new "
              "aggregation traffic; lower is better)\n");
}

void BM_ChooseAggregationTree(benchmark::State& state) {
  const auto topo = Topology::hypercube(static_cast<int>(state.range(0)));
  std::vector<std::int64_t> load(
      static_cast<std::size_t>(topo.num_links()), 0);
  SplitMix64 rng(7);
  for (auto& l : load) {
    l = rng.next_in(0, 10);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(choose_aggregation_tree(topo, 0, load));
  }
}
BENCHMARK(BM_ChooseAggregationTree)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
