// Experiment C6: end-to-end value of the OREGAMI pipeline. For each
// corpus workload, compare the METRICS completion-time model under
// (a) the full MAPPER pipeline, (b) a structure-oblivious baseline
// (round-robin contraction + random embedding + greedy routing), and
// (c) block contraction + identity embedding + dimension-order routing
// where defined.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/baselines.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

std::int64_t baseline_completion(const TaskGraph& g, const Topology& topo,
                                 std::uint64_t seed) {
  const auto contraction =
      round_robin_contraction(g.num_tasks(), topo.num_procs());
  const auto embedding =
      random_embedding(contraction.num_clusters, topo, seed);
  std::vector<int> procs(static_cast<std::size_t>(g.num_tasks()));
  for (int t = 0; t < g.num_tasks(); ++t) {
    procs[static_cast<std::size_t>(t)] =
        embedding.proc_of_cluster[static_cast<std::size_t>(
            contraction.cluster_of_task[static_cast<std::size_t>(t)])];
  }
  const auto routing = route_greedy_shortest(g, procs, topo);
  return compute_metrics(g, procs, routing, topo).completion;
}

void print_figure() {
  bench::print_header(
      "C6: completion-time model, OREGAMI vs oblivious baseline");
  TextTable table({"workload", "network", "strategy", "OREGAMI",
                   "baseline (median of 5)", "speedup"});
  const auto catalog = larcs::programs::catalog();
  for (const auto& entry : catalog) {
    std::map<std::string, long> bindings(entry.example_bindings.begin(),
                                         entry.example_bindings.end());
    const auto ast = larcs::parse_program(entry.source);
    const auto cp = larcs::compile(ast, bindings);
    for (const auto& topo :
         {Topology::hypercube(3), Topology::mesh(4, 4)}) {
      const auto report = map_program(ast, cp, topo);
      const auto oregami_completion =
          compute_metrics(cp.graph, report.mapping, topo).completion;
      std::vector<std::int64_t> base;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        base.push_back(baseline_completion(cp.graph, topo, seed));
      }
      std::sort(base.begin(), base.end());
      const auto median = base[2];
      table.add_row(
          {entry.name, topo.name(), to_string(report.strategy),
           std::to_string(oregami_completion), std::to_string(median),
           format_fixed(static_cast<double>(median) /
                            static_cast<double>(
                                std::max<std::int64_t>(1,
                                                       oregami_completion)),
                        2)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("(speedup > 1 means the OREGAMI mapping's modelled "
              "completion time is lower)\n");
}

void BM_FullPipelineNbody(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto ast = larcs::parse_program(larcs::programs::nbody());
  const auto topo = Topology::hypercube(4);
  for (auto _ : state) {
    const auto cp = larcs::compile(ast, {{"n", n}, {"s", 2}, {"m", 4}});
    const auto report = map_program(ast, cp, topo);
    benchmark::DoNotOptimize(
        compute_metrics(cp.graph, report.mapping, topo));
  }
}
BENCHMARK(BM_FullPipelineNbody)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
