// Throughput/latency evidence for the mapping server: a mixed replay
// of the built-in program library (every catalog program on two
// topologies, heavy portfolio options, configurable repeat ratio)
// first against a cold result cache, then replayed against the warm
// one. Reports sustained mappings/sec and p50/p99 per-job latency for
// both phases, prints the comparison table, writes the "server_*"
// series into BENCH_server.json, then runs the google-benchmark
// micro timings (digest, cache lookup, one-job serve).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "oregami/arch/topology_spec.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/server/digest.hpp"
#include "oregami/server/result_cache.hpp"
#include "oregami/server/server.hpp"
#include "oregami/server/telemetry.hpp"
#include "oregami/support/metrics.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

/// One replay stream: every catalog program on both topologies (the
/// unique set), then repeats cycling through the unique set until
/// `total` lines. repeat ratio = 1 - unique/total.
std::string replay_stream(int total) {
  const auto catalog = larcs::programs::catalog();
  std::vector<std::string> unique;
  for (const auto& entry : catalog) {
    for (const char* topo : {"mesh:4x4", "ring:16"}) {
      std::string line = "\"program\":\"" + entry.name + "\",\"bind\":{";
      bool first = true;
      for (const auto& [name, value] : entry.example_bindings) {
        if (!first) {
          line += ',';
        }
        first = false;
        line += "\"" + name + "\":" + std::to_string(value);
      }
      // Portfolio + SA + HEFT: the compute-heavy service configuration,
      // so a replay measures mapping work, not JSON parsing.
      line += "},\"topology\":\"" + std::string(topo) +
              "\",\"options\":{\"portfolio\":4,\"anneal\":1,\"heft\":true}";
      unique.push_back(line);
    }
  }
  std::string stream;
  for (int i = 0; i < total; ++i) {
    stream += "{\"id\":" + std::to_string(i + 1) + "," +
              unique[static_cast<std::size_t>(i) % unique.size()] + "}\n";
  }
  return stream;
}

struct ReplayResult {
  double wall_s = 0.0;
  double mappings_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  server::ServerStats stats;
};

double percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

/// Runs the stream through serve() against `cache`, collecting wall
/// time and per-job latency (the wall_ms field of every result line).
ReplayResult replay(const std::string& stream, server::ResultCache& cache,
                    int jobs) {
  server::ServerOptions options;
  options.jobs = jobs;
  options.queue_capacity = 1 << 12;  // measure service time, not rejects
  options.cache = &cache;
  std::istringstream in(stream);
  std::ostringstream out;
  const auto start = std::chrono::steady_clock::now();
  ReplayResult r;
  r.stats = server::serve(in, out, options);
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  std::vector<double> latencies_ms;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    const auto at = line.find("\"wall_ms\":");
    if (at != std::string::npos) {
      latencies_ms.push_back(std::strtod(line.c_str() + at + 10, nullptr));
    }
  }
  r.mappings_per_sec =
      r.wall_s > 0 ? static_cast<double>(r.stats.ok) / r.wall_s : 0.0;
  r.p50_ms = percentile(latencies_ms, 0.50);
  r.p99_ms = percentile(latencies_ms, 0.99);
  return r;
}

constexpr int kTotalJobs = 100;

void print_figures_and_json() {
  bench::print_header(
      "mapping server replay: library x {mesh:4x4, ring:16}, portfolio "
      "options, cold vs warm cache");

  const std::string stream = replay_stream(kTotalJobs);
  const auto unique =
      static_cast<int>(larcs::programs::catalog().size()) * 2;
  std::printf("%d jobs, %d unique (repeat ratio %.0f%%), 1 worker\n",
              kTotalJobs, unique,
              100.0 * (1.0 - static_cast<double>(unique) / kTotalJobs));

  server::ResultCache cache(1024, 8);
  const ReplayResult cold = replay(stream, cache, 1);
  const ReplayResult warm = replay(stream, cache, 1);

  TextTable table({"phase", "mappings/sec", "p50 (ms)", "p99 (ms)", "hits",
                   "misses"});
  const auto row = [&table](const char* phase, const ReplayResult& r) {
    char rate[32];
    char p50[32];
    char p99[32];
    std::snprintf(rate, sizeof(rate), "%.1f", r.mappings_per_sec);
    std::snprintf(p50, sizeof(p50), "%.3f", r.p50_ms);
    std::snprintf(p99, sizeof(p99), "%.3f", r.p99_ms);
    table.add_row({phase, rate, p50, p99, std::to_string(r.stats.cache_hits),
                   std::to_string(r.stats.cache_misses)});
  };
  row("cold", cold);
  row("warm", warm);
  std::printf("%s", table.to_string().c_str());
  const double speedup = cold.mappings_per_sec > 0
                             ? warm.mappings_per_sec / cold.mappings_per_sec
                             : 0.0;
  std::printf("warm/cold throughput: %.1fx\n", speedup);

  bench::JsonReport json("BENCH_server.json");
  json.load();
  json.add("server_cold_mappings_per_sec", cold.mappings_per_sec, "1/s");
  json.add("server_warm_mappings_per_sec", warm.mappings_per_sec, "1/s");
  json.add("server_cold_p50_ms", cold.p50_ms, "ms");
  json.add("server_cold_p99_ms", cold.p99_ms, "ms");
  json.add("server_warm_p50_ms", warm.p50_ms, "ms");
  json.add("server_warm_p99_ms", warm.p99_ms, "ms");
  json.add("server_warm_speedup", speedup, "x");
  json.add_counter("server_replay_jobs", kTotalJobs);
  json.add_counter("server_replay_unique", unique);
  json.add_counter("server_cold_cache_misses", cold.stats.cache_misses);
  json.add_counter("server_cold_cache_hits", cold.stats.cache_hits);
  json.add_counter("server_warm_cache_hits", warm.stats.cache_hits);
  json.add_counter("server_warm_cache_misses", warm.stats.cache_misses);
  json.write();
}

/// Telemetry overhead evidence: the warm replay (every job a cache
/// hit, so per-request overhead dominates) with the metrics registry
/// disabled vs enabled, plus single-site record costs. The enabled
/// warm replay carries every server metric site live -- counters,
/// gauges, and five histograms per job.
void print_telemetry_figures() {
  bench::print_header(
      "telemetry overhead: warm replay, metrics disabled vs enabled");

  const std::string stream = replay_stream(kTotalJobs);
  server::ResultCache cache(1024, 8);
  (void)replay(stream, cache, 1);  // prime the cache once, untimed

  // Best-of-3 each way: CI-runner noise on a 100-job replay is larger
  // than the effect under measurement.
  const auto best_rate = [&](int rounds) {
    double best = 0.0;
    for (int i = 0; i < rounds; ++i) {
      best = std::max(best, replay(stream, cache, 1).mappings_per_sec);
    }
    return best;
  };
  metrics::disable();
  const double base = best_rate(3);
  server::server_metrics();  // register every series before timing
  metrics::reset_values();
  metrics::enable();
  const double telemetry = best_rate(3);
  metrics::disable();

  const double overhead_pct =
      base > 0.0 ? 100.0 * (base - telemetry) / base : 0.0;
  std::printf("warm replay: %.1f/s disabled, %.1f/s enabled "
              "(overhead %.2f%%)\n",
              base, telemetry, overhead_pct);

  // Single-site costs, amortised over a tight loop.
  metrics::enable();
  metrics::Counter& counter = metrics::counter("bench_metrics_total");
  metrics::Histogram& hist = metrics::histogram("bench_metrics_us");
  counter.add(0);  // warm this thread's stripe assignment
  constexpr int kOps = 1 << 21;
  const auto time_ns_per_op = [](auto&& op) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) {
      op(i);
    }
    const auto wall =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count();
    return wall / kOps;
  };
  const double counter_ns =
      time_ns_per_op([&](int) { counter.increment(); });
  const double histogram_ns =
      time_ns_per_op([&](int i) { hist.record(i & 1023); });
  metrics::disable();
  const double disabled_ns =
      time_ns_per_op([&](int i) { hist.record(i & 1023); });
  std::printf("record cost: counter %.1f ns, histogram %.1f ns, "
              "disabled site %.2f ns\n",
              counter_ns, histogram_ns, disabled_ns);

  bench::JsonReport json("BENCH_server.json");
  json.load();
  json.add("metrics_warm_base_mappings_per_sec", base, "1/s");
  json.add("metrics_warm_telemetry_mappings_per_sec", telemetry, "1/s");
  json.add("metrics_warm_overhead_pct", overhead_pct, "%");
  json.add("metrics_counter_add_ns", counter_ns, "ns");
  json.add("metrics_histogram_record_ns", histogram_ns, "ns");
  json.add("metrics_disabled_site_ns", disabled_ns, "ns");
  json.add_counter(
      "metrics_series_registered",
      static_cast<std::int64_t>(metrics::snapshot().series.size()));
  json.write();
}

// ------------------------------------------------- micro benchmarks

const larcs::programs::CatalogEntry& jacobi_entry() {
  static const auto entry = [] {
    for (const auto& e : larcs::programs::catalog()) {
      if (e.name == "jacobi") {
        return e;
      }
    }
    std::abort();
  }();
  return entry;
}

void BM_JobDigest(benchmark::State& state) {
  const auto& entry = jacobi_entry();
  const larcs::Program ast = larcs::parse_program(entry.source);
  const std::map<std::string, long> binds(entry.example_bindings.begin(),
                                          entry.example_bindings.end());
  const larcs::CompiledProgram compiled = larcs::compile(ast, binds);
  const Topology topo = parse_topology_spec("mesh:4x4");
  const MapperOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server::job_digest(compiled.graph, topo, options));
  }
}
BENCHMARK(BM_JobDigest);

void BM_CacheLookupHit(benchmark::State& state) {
  server::ResultCache cache(1024, 8);
  auto outcome = std::make_shared<server::CachedOutcome>();
  outcome->ok = true;
  cache.insert(0x12345678abcdefULL, outcome);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(0x12345678abcdefULL));
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_ServeOneJobWarm(benchmark::State& state) {
  // End-to-end cost of one fully-cached job: parse + compile + digest
  // + hit + format. The gap to BM_CacheLookupHit is the non-cacheable
  // per-request overhead.
  const std::string line =
      "{\"id\":1,\"program\":\"jacobi\",\"bind\":{\"n\":8,\"iters\":10},"
      "\"topology\":\"mesh:4x4\"}\n";
  server::ResultCache cache(64, 4);
  server::ServerOptions options;
  options.cache = &cache;
  {
    std::istringstream in(line);
    std::ostringstream out;
    (void)server::serve(in, out, options);  // prime
  }
  for (auto _ : state) {
    std::istringstream in(line);
    std::ostringstream out;
    const auto stats = server::serve(in, out, options);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_ServeOneJobWarm);

}  // namespace

int main(int argc, char** argv) {
  print_figures_and_json();
  print_telemetry_figures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
