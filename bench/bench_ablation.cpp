// Experiment A1: ablations of DESIGN.md's called-out choices.
//   (a) MM-Route's matcher: the paper's greedy maximal matching vs
//       Hopcroft-Karp maximum matching (contention + runtime).
//   (b) NN-Embed vs random embedding on the weighted-dilation
//       objective.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/baselines.hpp"
#include "oregami/mapper/mm_route.hpp"
#include "oregami/mapper/nn_embed.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

void print_matcher_ablation() {
  bench::print_header(
      "A1a: MM-Route matcher ablation (worst phase contention)");
  TextTable table({"workload", "network", "greedy maximal",
                   "Hopcroft-Karp"});
  for (const int dim : {3, 4, 5}) {
    const int procs = 1 << dim;
    const int n = procs * 2 - 1;
    const auto cp = larcs::compile_source(
        larcs::programs::nbody(), {{"n", n}, {"s", 1}, {"m", 1}});
    const auto topo = Topology::hypercube(dim);
    std::vector<int> placement(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
      placement[static_cast<std::size_t>(t)] = t % procs;
    }
    RouteOptions greedy;
    RouteOptions hk;
    hk.matcher = RouteOptions::Matcher::HopcroftKarp;
    const auto g = mm_route(cp.graph, placement, topo, greedy);
    const auto h = mm_route(cp.graph, placement, topo, hk);
    table.add_row(
        {"nbody(" + std::to_string(n) + ")", topo.name(),
         std::to_string(bench::worst_contention(g, topo.num_links()).max),
         std::to_string(
             bench::worst_contention(h, topo.num_links()).max)});
  }
  std::fputs(table.to_string().c_str(), stdout);
}

void print_embed_ablation() {
  bench::print_header(
      "A1b: NN-Embed vs random embedding (weighted dilation)");
  TextTable table({"cluster graph", "network", "NN-Embed",
                   "random (median of 9)"});
  for (const int n : {8, 16}) {
    Graph ring(n);
    for (int i = 0; i < n; ++i) {
      ring.add_edge(i, (i + 1) % n, 10);
    }
    for (const auto& topo : {Topology::hypercube(4), Topology::mesh(4, 4)}) {
      if (n > topo.num_procs()) {
        continue;
      }
      const auto nn = nn_embed(ring, topo);
      std::vector<std::int64_t> random_costs;
      for (std::uint64_t seed = 0; seed < 9; ++seed) {
        random_costs.push_back(weighted_dilation(
            ring, random_embedding(n, topo, seed), topo));
      }
      std::sort(random_costs.begin(), random_costs.end());
      table.add_row({"ring(" + std::to_string(n) + ")", topo.name(),
                     std::to_string(weighted_dilation(ring, nn, topo)),
                     std::to_string(random_costs[4])});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
}

void BM_MmRouteGreedyMatcher(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int procs = 1 << dim;
  const int n = procs * 2 - 1;
  const auto cp = larcs::compile_source(
      larcs::programs::nbody(), {{"n", n}, {"s", 1}, {"m", 1}});
  const auto topo = Topology::hypercube(dim);
  std::vector<int> placement(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    placement[static_cast<std::size_t>(t)] = t % procs;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mm_route(cp.graph, placement, topo));
  }
}
BENCHMARK(BM_MmRouteGreedyMatcher)->Arg(4)->Arg(6);

void BM_MmRouteHopcroftKarp(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int procs = 1 << dim;
  const int n = procs * 2 - 1;
  const auto cp = larcs::compile_source(
      larcs::programs::nbody(), {{"n", n}, {"s", 1}, {"m", 1}});
  const auto topo = Topology::hypercube(dim);
  std::vector<int> placement(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    placement[static_cast<std::size_t>(t)] = t % procs;
  }
  RouteOptions options;
  options.matcher = RouteOptions::Matcher::HopcroftKarp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mm_route(cp.graph, placement, topo, options));
  }
}
BENCHMARK(BM_MmRouteHopcroftKarp)->Arg(4)->Arg(6);

void BM_NnEmbed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph ring(n);
  for (int i = 0; i < n; ++i) {
    ring.add_edge(i, (i + 1) % n, 10);
  }
  const auto topo = Topology::hypercube(
      static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn_embed(ring, topo));
  }
}
BENCHMARK(BM_NnEmbed)->Args({16, 4})->Args({64, 6})->Args({256, 8});

}  // namespace

int main(int argc, char** argv) {
  print_matcher_ablation();
  print_embed_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
