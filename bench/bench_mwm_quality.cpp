// Experiment C3: MWM-Contract solution quality. (a) In the matching
// regime (tasks <= 2P) the contraction is provably optimal -- certified
// here against exhaustive search. (b) Beyond it, the greedy+matching
// heuristic is compared against round-robin and contiguous-block
// baselines on random weighted task graphs ([Lo88]'s simulation-style
// comparison).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/mapper/baselines.hpp"
#include "oregami/mapper/mwm_contract.hpp"
#include "oregami/mapper/refine.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

std::int64_t external_weight(const Graph& g,
                             const std::vector<int>& cluster_of_task) {
  std::int64_t total = 0;
  for (const auto& e : g.edges()) {
    if (cluster_of_task[static_cast<std::size_t>(e.u)] !=
        cluster_of_task[static_cast<std::size_t>(e.v)]) {
      total += e.weight;
    }
  }
  return total;
}

void print_optimality_table() {
  bench::print_header("C3a: optimality in the matching regime (n <= 2P)");
  TextTable table({"seed", "tasks", "procs", "MWM IPC", "optimal IPC",
                   "gap"});
  int exact = 0;
  const int trials = 12;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    SplitMix64 rng(seed);
    const int procs = static_cast<int>(3 + rng.next_below(3));
    const int n = static_cast<int>(
        procs + 2 + rng.next_below(static_cast<std::uint64_t>(procs) - 1));
    const auto tg = bench::random_task_graph(n, 0.5, seed * 101 + 7);
    const Graph g = tg.aggregate_graph();
    const auto result = mwm_contract(g, procs, 2);
    const auto optimal = brute_force_min_external_weight(g, procs, 2);
    if (result.external_weight == optimal) {
      ++exact;
    }
    table.add_row({std::to_string(seed), std::to_string(n),
                   std::to_string(procs),
                   std::to_string(result.external_weight),
                   std::to_string(optimal),
                   std::to_string(result.external_weight - optimal)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("exact optima: %d / %d (paper: optimal whenever tasks <= "
              "2 x processors)\n",
              exact, trials);
}

void print_heuristic_table() {
  bench::print_header(
      "C3b: heuristic regime vs baselines (IPC, lower is better)");
  TextTable table({"tasks", "procs", "MWM-Contract", "MWM + KL refine",
                   "blocks", "round-robin", "best?"});
  for (const int n : {32, 64, 128}) {
    for (const int procs : {4, 8}) {
      std::int64_t mwm_total = 0;
      std::int64_t refined_total = 0;
      std::int64_t block_total = 0;
      std::int64_t rr_total = 0;
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto tg = bench::random_task_graph(
            n, 0.2, seed * 977 + static_cast<std::uint64_t>(n));
        const Graph g = tg.aggregate_graph();
        const auto mwm = mwm_contract(g, procs);
        mwm_total += mwm.external_weight;
        refined_total +=
            refine_contraction(g, mwm.contraction, mwm.load_bound)
                .external_after;
        block_total += external_weight(
            g, block_contraction(n, procs).cluster_of_task);
        rr_total += external_weight(
            g, round_robin_contraction(n, procs).cluster_of_task);
      }
      table.add_row(
          {std::to_string(n), std::to_string(procs),
           std::to_string(mwm_total / 5),
           std::to_string(refined_total / 5),
           std::to_string(block_total / 5), std::to_string(rr_total / 5),
           (refined_total <= block_total && refined_total <= rr_total)
               ? "yes"
               : "NO"});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
}

void BM_MwmMatchingRegime(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int n = 2 * procs;
  const auto tg = bench::random_task_graph(n, 0.5, 11);
  const Graph g = tg.aggregate_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mwm_contract(g, procs, 2));
  }
}
BENCHMARK(BM_MwmMatchingRegime)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_optimality_table();
  print_heuristic_table();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
