// Experiment C7: the parallel portfolio mapper.
//
// Figure 1 -- quality: best-of-portfolio completion vs the single-shot
// Fig-3 pipeline over the whole LaRCS corpus (the portfolio always
// contains the single-shot candidate, so its completion can only match
// or improve).
//
// Figure 2 -- speedup: wall-clock of a 16-candidate portfolio at 1, 2,
// 4, and hardware_concurrency workers on the heaviest corpus entries.
// The candidates are byte-identical across worker counts, so any
// scaling is pure parallel win.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <thread>

#include "bench_util.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/portfolio.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

struct Workload {
  std::string name;
  larcs::Program ast;
  larcs::CompiledProgram cp;
};

std::vector<Workload> corpus() {
  std::vector<Workload> result;
  for (const auto& entry : larcs::programs::catalog()) {
    std::map<std::string, long> bindings(entry.example_bindings.begin(),
                                         entry.example_bindings.end());
    larcs::Program ast = larcs::parse_program(entry.source);
    larcs::CompiledProgram cp = larcs::compile(ast, bindings);
    result.push_back({entry.name, std::move(ast), std::move(cp)});
  }
  return result;
}

void print_quality_figure() {
  bench::print_header(
      "C7a: portfolio (best of N) vs single-shot completion");
  TextTable table({"workload", "network", "single-shot", "portfolio",
                   "winner", "gain"});
  PortfolioOptions popts;
  popts.num_seeded = 12;
  popts.jobs = 0;
  for (const auto& w : corpus()) {
    for (const auto& topo :
         {Topology::hypercube(3), Topology::mesh(4, 4)}) {
      const auto single = map_program(w.ast, w.cp, topo);
      const auto single_completion =
          compute_metrics(w.cp.graph, single.mapping, topo).completion;
      const auto pf = portfolio_map_program(w.ast, w.cp, topo, {}, popts);
      const auto& best =
          pf.candidates[static_cast<std::size_t>(pf.best_id)];
      table.add_row(
          {w.name, topo.name(), std::to_string(single_completion),
           std::to_string(best.completion), best.label,
           format_fixed(single_completion == 0
                            ? 1.0
                            : static_cast<double>(single_completion) /
                                  static_cast<double>(std::max<std::int64_t>(
                                      1, best.completion)),
                        2)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("(gain > 1.00 means the portfolio found a strictly better "
              "mapping; it can never be < 1.00 because candidate 0 is the "
              "single-shot pipeline)\n");
}

/// Heavy workloads for the speedup figure: candidate cost must dwarf
/// the pool's thread-spawn overhead for parallel scaling to be
/// visible, so these use production-scale bindings, not the corpus
/// defaults.
struct HeavyWorkload {
  const char* name;
  const char* program;
  std::map<std::string, long> bindings;
  Topology topo;
};

std::vector<HeavyWorkload> heavy_workloads() {
  std::vector<HeavyWorkload> result;
  result.push_back({"jacobi-1024", "jacobi",
                    {{"n", 32}, {"iters", 10}},
                    Topology::mesh(8, 8)});
  result.push_back({"nbody-255", "nbody",
                    {{"n", 255}, {"s", 2}, {"m", 8}},
                    Topology::hypercube(6)});
  result.push_back({"sor-576", "sor",
                    {{"n", 24}, {"iters", 10}},
                    Topology::mesh(8, 8)});
  return result;
}

larcs::Program parse_corpus(const char* program_name) {
  for (const auto& e : larcs::programs::catalog()) {
    if (e.name == program_name) {
      return larcs::parse_program(e.source);
    }
  }
  throw std::runtime_error("unknown corpus program");
}

/// 16-candidate portfolio: 4 strategy/toggle candidates + 12 seeded
/// variants. Canned/systolic are disabled so every candidate pays the
/// full general-path cost -- the honest setting for a scaling figure.
PortfolioOptions speedup_options(int jobs) {
  PortfolioOptions popts;
  popts.num_seeded = 12;
  popts.jobs = jobs;
  return popts;
}

MapperOptions general_only() {
  MapperOptions base;
  base.allow_canned = false;
  base.allow_group = false;
  base.allow_systolic = false;
  return base;
}

void print_speedup_figure() {
  bench::print_header(
      "C7b: 16-candidate portfolio wall-clock vs worker count");
  std::printf("hardware_concurrency: %u (speedup saturates at the core "
              "count; expect ~1.0x throughout on a 1-core machine)\n",
              std::thread::hardware_concurrency());
  TextTable table({"workload", "tasks", "jobs=1", "jobs=2", "jobs=4",
                   "speedup@4"});
  for (const auto& w : heavy_workloads()) {
    const auto ast = parse_corpus(w.program);
    const auto cp = larcs::compile(ast, w.bindings);
    double wall_ms[3] = {0, 0, 0};
    const int jobs_of[3] = {1, 2, 4};
    for (int j = 0; j < 3; ++j) {
      const auto popts = speedup_options(jobs_of[j]);
      // One warmup (fills the topology distance cache), then the
      // median of 3 timed runs.
      (void)portfolio_map_program(ast, cp, w.topo, general_only(), popts);
      std::vector<double> runs;
      for (int r = 0; r < 3; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(
            portfolio_map_program(ast, cp, w.topo, general_only(), popts));
        const auto t1 = std::chrono::steady_clock::now();
        runs.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      std::sort(runs.begin(), runs.end());
      wall_ms[j] = runs[1];
    }
    table.add_row({w.name, std::to_string(cp.graph.num_tasks()),
                   format_fixed(wall_ms[0], 1) + " ms",
                   format_fixed(wall_ms[1], 1) + " ms",
                   format_fixed(wall_ms[2], 1) + " ms",
                   format_fixed(wall_ms[0] / std::max(0.001, wall_ms[2]),
                                2) + "x"});
  }
  std::fputs(table.to_string().c_str(), stdout);
}

void BM_Portfolio(benchmark::State& state, const HeavyWorkload& w,
                  int jobs) {
  const auto ast = parse_corpus(w.program);
  const auto cp = larcs::compile(ast, w.bindings);
  const auto popts = speedup_options(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        portfolio_map_program(ast, cp, w.topo, general_only(), popts));
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_quality_figure();
  print_speedup_figure();
  static const auto workloads = heavy_workloads();
  for (const auto& w : workloads) {
    for (const int jobs :
         {1, 2, 4,
          std::max(1, static_cast<int>(
                          std::thread::hardware_concurrency()))}) {
      ::benchmark::RegisterBenchmark(
          (std::string("BM_Portfolio/") + w.name + "/jobs:" +
           std::to_string(jobs))
              .c_str(),
          [&w, jobs](benchmark::State& state) {
            BM_Portfolio(state, w, jobs);
          })
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
