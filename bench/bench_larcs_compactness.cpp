// Experiment C5: "LaRCS code is much more space-efficient than an
// adjacency matrix since it allows parametric descriptions" (§3); the
// description is constant-size while the graph grows with n.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

std::size_t edge_list_bytes(const TaskGraph& g) {
  std::size_t bytes = 0;
  for (const auto& phase : g.comm_phases()) {
    for (const auto& e : phase.edges) {
      bytes += std::to_string(e.src).size() +
               std::to_string(e.dst).size() +
               std::to_string(e.volume).size() + 3;  // separators
    }
  }
  return bytes;
}

void print_figure() {
  bench::print_header(
      "C5: LaRCS description size vs expanded graph size (n-body)");
  const std::string source = larcs::programs::nbody();
  TextTable table({"n", "LaRCS bytes", "edge-list bytes",
                   "adjacency-matrix bits", "graph/LaRCS ratio"});
  for (const long n : {15L, 63L, 255L, 1023L, 4095L}) {
    const auto cp =
        larcs::compile_source(source, {{"n", n}, {"s", 4}, {"m", 8}});
    const auto bytes = edge_list_bytes(cp.graph);
    table.add_row({std::to_string(n), std::to_string(source.size()),
                   std::to_string(bytes), std::to_string(n * n),
                   format_fixed(static_cast<double>(bytes) /
                                    static_cast<double>(source.size()),
                                1)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("(the LaRCS description is independent of n; the expanded "
              "graph grows linearly, the adjacency matrix "
              "quadratically)\n");
}

void BM_CompileVsSize(benchmark::State& state) {
  const auto ast = larcs::parse_program(larcs::programs::nbody());
  const long n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        larcs::compile(ast, {{"n", n}, {"s", 4}, {"m", 8}}));
  }
}
BENCHMARK(BM_CompileVsSize)->Arg(15)->Arg(255)->Arg(4095);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
