// Experiment Fig 5: Algorithm MWM-Contract on the reconstructed
// 12-task / 3-processor example (B = 4): greedy pre-merge skips the
// weight-15 edge, the maximum-weight matching finishes, total IPC = 6
// (certified optimal by exhaustive search); then times MWM-Contract.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "oregami/mapper/mwm_contract.hpp"
#include "oregami/mapper/paper_examples.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

void print_figure() {
  bench::print_header(
      "Fig 5: MWM-Contract, 12 tasks -> 3 processors (B = 4)");
  const Graph g = paper::fig5_task_graph();
  std::printf("task graph: %d tasks, %d edges, total weight %lld\n",
              g.num_vertices(), g.num_edges(),
              static_cast<long long>(g.total_weight()));
  const auto result = mwm_contract(g, 3, 4);
  TextTable table({"cluster", "tasks"});
  for (int c = 0; c < result.contraction.num_clusters; ++c) {
    std::string tasks;
    for (int t = 0; t < g.num_vertices(); ++t) {
      if (result.contraction.cluster_of_task[static_cast<std::size_t>(t)] ==
          c) {
        tasks += (tasks.empty() ? "" : " ") + std::to_string(t);
      }
    }
    table.add_row({std::to_string(c), tasks});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("total IPC = %lld (paper: 6)\n",
              static_cast<long long>(result.external_weight));
  std::printf("exhaustive optimum  = %lld\n",
              static_cast<long long>(
                  brute_force_min_external_weight(g, 3, 4)));
  std::printf("%s\n", result.description.c_str());
}

void BM_MwmContractRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tg = bench::random_task_graph(n, 0.25, 42);
  const Graph g = tg.aggregate_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mwm_contract(g, 8));
  }
  state.counters["tasks"] = n;
}
BENCHMARK(BM_MwmContractRandom)->Arg(24)->Arg(48)->Arg(96)->Arg(192);

void BM_MwmContractFig5(benchmark::State& state) {
  const Graph g = paper::fig5_task_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mwm_contract(g, 3, 4));
  }
}
BENCHMARK(BM_MwmContractFig5);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
