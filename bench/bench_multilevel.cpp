// Size-sweep evidence for the multilevel V-cycle mapper: 2D stencil
// task graphs of 1k / 10k / 100k tasks mapped onto torus:64x64,
// multilevel vs the flat baseline (seeded random placement + greedy
// routes + refine_placement). Prints the sweep table and merges the
// "multilevel_*" series into the shared BENCH_mapper.json.
//
// The 100k row takes minutes on the flat side (that is the point), so
// it only runs with OREGAMI_BENCH_FULL=1 in the environment; the
// committed BENCH_mapper.json carries the full-sweep numbers, and
// JsonReport::load() keeps them when the smoke run refreshes the small
// rows.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "oregami/arch/routes.hpp"
#include "oregami/core/csr_graph.hpp"
#include "oregami/core/synthetic.hpp"
#include "oregami/mapper/multilevel.hpp"
#include "oregami/mapper/refine.hpp"
#include "oregami/metrics/completion_model.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

constexpr std::uint64_t kSeed = 0x5CA1EULL;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<PhaseRouting> greedy_routing(const TaskGraph& graph,
                                         const Topology& topo,
                                         const std::vector<int>& procs) {
  std::vector<PhaseRouting> routing(graph.comm_phases().size());
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    const auto& edges = graph.comm_phases()[k].edges;
    routing[k].route_of_edge.reserve(edges.size());
    for (const CommEdge& e : edges) {
      routing[k].route_of_edge.push_back(greedy_shortest_route(
          topo, procs[static_cast<std::size_t>(e.src)],
          procs[static_cast<std::size_t>(e.dst)]));
    }
  }
  return routing;
}

void run_size(const std::string& label, int rows, int cols,
              const Topology& topo, TextTable& table,
              bench::JsonReport& json) {
  const TaskGraph graph = make_stencil2d(rows, cols, kSeed);
  const int n = graph.num_tasks();

  // Multilevel V-cycle.
  const auto t_ml = std::chrono::steady_clock::now();
  MultilevelOptions ml;
  ml.jobs = 1;
  const MapperReport report = map_multilevel(graph, topo, ml);
  const double ml_s = seconds_since(t_ml);
  const std::vector<int> ml_procs = report.mapping.proc_of_task();
  const std::int64_t ml_completion =
      completion_time(graph, ml_procs, report.mapping.routing, topo);

  // Flat baseline: seeded random placement + greedy routes +
  // refine_placement (the PR-2 sweep, no coarsening).
  SplitMix64 rng(kSeed);
  std::vector<int> flat_procs(static_cast<std::size_t>(n));
  for (int& p : flat_procs) {
    p = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(topo.num_procs())));
  }
  const auto t_flat = std::chrono::steady_clock::now();
  const PlacementRefineResult flat = refine_placement(
      graph, topo, flat_procs, greedy_routing(graph, topo, flat_procs));
  const double flat_s = seconds_since(t_flat);

  const double speedup = ml_s > 0.0 ? flat_s / ml_s : 0.0;
  char ml_ms[32];
  char flat_ms[32];
  char sp[32];
  std::snprintf(ml_ms, sizeof(ml_ms), "%.0f", ml_s * 1e3);
  std::snprintf(flat_ms, sizeof(flat_ms), "%.0f", flat_s * 1e3);
  std::snprintf(sp, sizeof(sp), "%.1fx", speedup);
  table.add_row({label, std::to_string(n), std::to_string(ml_completion),
                 ml_ms, std::to_string(flat.completion_after), flat_ms, sp});

  json.add("multilevel_" + label + "_completion_multilevel",
           static_cast<double>(ml_completion), "model");
  json.add("multilevel_" + label + "_time_multilevel", ml_s * 1e3, "ms");
  json.add("multilevel_" + label + "_completion_flat",
           static_cast<double>(flat.completion_after), "model");
  json.add("multilevel_" + label + "_time_flat", flat_s * 1e3, "ms");
  json.add("multilevel_" + label + "_speedup", speedup, "x");
}

void print_figures_and_json() {
  bench::print_header(
      "size sweep on torus:64x64: multilevel V-cycle vs flat "
      "refine_placement from random start");
  const Topology topo = Topology::torus(64, 64);
  bench::JsonReport json("BENCH_mapper.json");
  json.load();  // shared with the other mapper benches

  TextTable table({"size", "tasks", "ml completion", "ml ms",
                   "flat completion", "flat ms", "speedup"});
  run_size("1k", 32, 32, topo, table, json);
  run_size("10k", 100, 100, topo, table, json);
  if (const char* full = std::getenv("OREGAMI_BENCH_FULL");
      full != nullptr && full[0] == '1') {
    run_size("100k", 316, 316, topo, table, json);
  } else {
    std::printf(
        "(100k row skipped; set OREGAMI_BENCH_FULL=1 to run the full "
        "sweep — the committed numbers stay in BENCH_mapper.json)\n");
  }
  std::printf("%s", table.to_string().c_str());
  json.write();
}

void BM_Coarsen10k(benchmark::State& state) {
  const TaskGraph graph = make_stencil2d(100, 100, kSeed);
  const CsrTaskGraph csr = CsrTaskGraph::from_task_graph(graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coarsen_heavy_edge(csr, kSeed, 4096));
  }
}
BENCHMARK(BM_Coarsen10k);

void BM_Multilevel10kTorus64(benchmark::State& state) {
  const TaskGraph graph = make_stencil2d(100, 100, kSeed);
  const Topology topo = Topology::torus(64, 64);
  MultilevelOptions ml;
  ml.jobs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_multilevel(graph, topo, ml));
  }
}
BENCHMARK(BM_Multilevel10kTorus64);

}  // namespace

int main(int argc, char** argv) {
  print_figures_and_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
