// Experiment C2: the paper states the dominant cost of the group
// method is "computing the cycle notation of all the elements", hence
// O(|X|^2). This harness measures closure generation + cycle-structure
// computation across circulant sizes and reports the time ratio per
// size doubling (O(n^2) predicts ~4x, plus comparison overheads).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "oregami/group/perm_group.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/group_contract.hpp"
#include "oregami/support/text_table.hpp"

namespace {

using namespace oregami;

std::vector<Permutation> circulant_generators(int n) {
  const auto g = larcs::compile_source(larcs::programs::broadcast_vote(n),
                                       {{"n", n}})
                     .graph;
  std::vector<Permutation> gens;
  for (const auto& phase : g.comm_phases()) {
    gens.push_back(*phase_permutation(phase, n));
  }
  return gens;
}

double measure_seconds(int n) {
  const auto gens = circulant_generators(n);
  const auto start = std::chrono::steady_clock::now();
  const auto group =
      PermutationGroup::generate(gens, static_cast<std::size_t>(n));
  long checksum = 0;
  if (group) {
    for (const auto& e : group->elements()) {
      checksum += static_cast<long>(e.cycle_type().size());
    }
  }
  benchmark::DoNotOptimize(checksum);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

void print_figure() {
  bench::print_header(
      "C2: group generation + cycle notation, O(|X|^2) scaling");
  TextTable table({"|X|", "time (ms)", "ratio vs half size"});
  double previous = 0.0;
  for (int n = 64; n <= 2048; n *= 2) {
    // Median of three runs to de-noise.
    double best = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::min(best, measure_seconds(n));
    }
    table.add_row({std::to_string(n), format_fixed(best * 1e3, 3),
                   previous > 0.0 ? format_fixed(best / previous, 2)
                                  : std::string("-")});
    previous = best;
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("(pure O(|X|^2) predicts ratio 4; element comparisons add "
              "a further O(|X|) factor at these sizes)\n");
}

void BM_GroupGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto gens = circulant_generators(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PermutationGroup::generate(gens, static_cast<std::size_t>(n)));
  }
  state.counters["X"] = n;
}
BENCHMARK(BM_GroupGeneration)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_CycleNotationAllElements(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto group = PermutationGroup::generate(
      circulant_generators(n), static_cast<std::size_t>(n));
  for (auto _ : state) {
    long total = 0;
    for (const auto& e : group->elements()) {
      total += static_cast<long>(e.cycles().size());
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CycleNotationAllElements)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
