// The three-layer mapping produced by MAPPER (paper §2 terminology):
//
//   Contraction -- partition the tasks into clusters, at most one
//                  cluster per processor;
//   Embedding   -- assign clusters to processors, injectively;
//   Routing     -- assign each communication edge a path of network
//                  links (per phase).
//
// These are plain data; the algorithms that build them live in
// oregami/mapper, and validation against a concrete topology lives in
// oregami/metrics (which owns the Topology + TaskGraph view).
#pragma once

#include <vector>

#include "oregami/core/task_graph.hpp"

namespace oregami {

/// A partition of tasks into clusters 0..num_clusters-1.
struct Contraction {
  int num_clusters = 0;
  std::vector<int> cluster_of_task;

  /// The identity contraction (one task per cluster).
  static Contraction identity(int num_tasks);

  /// Tasks per cluster.
  [[nodiscard]] std::vector<int> cluster_sizes() const;

  /// Largest cluster size (0 when empty).
  [[nodiscard]] int max_cluster_size() const;

  /// Throws MappingError unless every task has a cluster id in range
  /// and every cluster id is used by at least one task.
  void validate(int num_tasks) const;
};

/// Injective assignment of clusters to processors.
struct Embedding {
  std::vector<int> proc_of_cluster;

  /// Throws MappingError unless injective and within [0, num_procs).
  void validate(int num_procs) const;
};

/// A route through the network: `nodes` is the processor sequence
/// (route source first), `links` the link ids traversed, so
/// links.size() + 1 == nodes.size(). A route between co-located tasks
/// has one node and no links.
struct Route {
  std::vector<int> nodes;
  std::vector<int> links;

  [[nodiscard]] int hops() const { return static_cast<int>(links.size()); }
};

/// Routes for one communication phase, parallel to
/// TaskGraph::comm_phases()[k].edges.
struct PhaseRouting {
  std::vector<Route> route_of_edge;
};

/// The complete mapping.
struct Mapping {
  Contraction contraction;
  Embedding embedding;
  std::vector<PhaseRouting> routing;  ///< one entry per comm phase

  /// Processor hosting each task (composition of contraction and
  /// embedding).
  [[nodiscard]] std::vector<int> proc_of_task() const;

  /// Processor hosting task t.
  [[nodiscard]] int task_processor(int t) const;
};

}  // namespace oregami
