#include "oregami/core/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {

namespace {

// Shared finishing step: tasks named t<i>, seeded exec costs in
// [1, 32], Idle phase expression (comm + exec each run once).
TaskGraph finish_graph(int n, const char* phase_name,
                       const std::vector<CommEdge>& edges,
                       SplitMix64& rng) {
  TaskGraph g;
  for (int i = 0; i < n; ++i) g.add_task("t" + std::to_string(i));
  const int comm = g.add_comm_phase(phase_name);
  for (const CommEdge& e : edges) g.add_comm_edge(comm, e.src, e.dst, e.volume);
  std::vector<std::int64_t> cost(n);
  for (int i = 0; i < n; ++i) cost[i] = rng.next_in(1, 32);
  g.add_exec_phase("work", std::move(cost));
  return g;
}

}  // namespace

TaskGraph make_stencil2d(int rows, int cols, std::uint64_t seed) {
  OREGAMI_ASSERT(rows > 0 && cols > 0, "stencil2d shape must be positive");
  SplitMix64 rng(seed);
  std::vector<CommEdge> edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 2);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int v = r * cols + c;
      if (c + 1 < cols) edges.push_back({v, v + 1, rng.next_in(1, 16)});
      if (r + 1 < rows) edges.push_back({v, v + cols, rng.next_in(1, 16)});
    }
  }
  return finish_graph(rows * cols, "stencil2d", edges, rng);
}

TaskGraph make_stencil3d(int nx, int ny, int nz, std::uint64_t seed) {
  OREGAMI_ASSERT(nx > 0 && ny > 0 && nz > 0,
                 "stencil3d shape must be positive");
  SplitMix64 rng(seed);
  std::vector<CommEdge> edges;
  edges.reserve(static_cast<std::size_t>(nx) * ny * nz * 3);
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const int v = (z * ny + y) * nx + x;
        if (x + 1 < nx) edges.push_back({v, v + 1, rng.next_in(1, 16)});
        if (y + 1 < ny) edges.push_back({v, v + nx, rng.next_in(1, 16)});
        if (z + 1 < nz) edges.push_back({v, v + nx * ny, rng.next_in(1, 16)});
      }
    }
  }
  return finish_graph(nx * ny * nz, "stencil3d", edges, rng);
}

TaskGraph make_random_geometric(int n, double radius, std::uint64_t seed) {
  OREGAMI_ASSERT(n > 0 && radius > 0.0, "geometric graph needs n>0, r>0");
  SplitMix64 rng(seed);
  std::vector<double> px(n), py(n);
  for (int i = 0; i < n; ++i) {
    px[i] = rng.next_double();
    py[i] = rng.next_double();
  }

  // Bucket points into a grid of cell side `radius`: any pair within
  // distance r lies in the same or an adjacent cell, so each point
  // only scans a 3x3 cell block — O(n + edges) overall.
  const int cells = std::max(1, static_cast<int>(1.0 / radius));
  const double cell_size = 1.0 / cells;
  std::vector<std::vector<int>> bucket(
      static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](double x) {
    return std::min(cells - 1, static_cast<int>(x / cell_size));
  };
  for (int i = 0; i < n; ++i) {
    bucket[static_cast<std::size_t>(cell_of(py[i])) * cells + cell_of(px[i])]
        .push_back(i);
  }

  const double r2 = radius * radius;
  std::vector<CommEdge> edges;
  for (int i = 0; i < n; ++i) {
    const int cx = cell_of(px[i]);
    const int cy = cell_of(py[i]);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int bx = cx + dx;
        const int by = cy + dy;
        if (bx < 0 || bx >= cells || by < 0 || by >= cells) continue;
        for (int j : bucket[static_cast<std::size_t>(by) * cells + bx]) {
          if (j <= i) continue;  // each pair once
          const double ddx = px[i] - px[j];
          const double ddy = py[i] - py[j];
          if (ddx * ddx + ddy * ddy <= r2) {
            edges.push_back({i, j, 0});
          }
        }
      }
    }
  }
  // Volumes drawn after the edge set is fixed, in (i, j) sorted order,
  // so they do not depend on bucket iteration details.
  std::sort(edges.begin(), edges.end(), [](const CommEdge& a, const CommEdge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  for (CommEdge& e : edges) e.volume = rng.next_in(1, 16);
  return finish_graph(n, "geometric", edges, rng);
}

TaskGraph make_power_law(int n, int edges_per_vertex, std::uint64_t seed) {
  OREGAMI_ASSERT(n > 0 && edges_per_vertex > 0,
                 "power-law graph needs n>0, k>0");
  SplitMix64 rng(seed);
  // Preferential attachment via the repeated-endpoint list: vertex v
  // appears once per incident edge, so sampling the list uniformly is
  // degree-proportional sampling.
  std::vector<int> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * edges_per_vertex * 2);
  std::vector<CommEdge> edges;
  std::vector<int> targets;
  for (int v = 1; v < n; ++v) {
    targets.clear();
    const int k = std::min(v, edges_per_vertex);
    for (int e = 0; e < k; ++e) {
      int u;
      if (endpoints.empty()) {
        u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(v)));
      } else {
        u = endpoints[rng.next_below(endpoints.size())];
      }
      if (std::find(targets.begin(), targets.end(), u) == targets.end()) {
        targets.push_back(u);
      }
    }
    for (int u : targets) {
      edges.push_back({u, v, rng.next_in(1, 16)});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return finish_graph(n, "powerlaw", edges, rng);
}

}  // namespace oregami
