// Flat CSR (compressed sparse row) view of the aggregated task graph,
// plus the seeded heavy-edge-matching coarsener that powers the
// multilevel mapper (ROADMAP "scale wall"; Glantz/Meyerhenke/Noe-style
// V-cycles need a cache-friendly representation because the refinement
// hot loops walk every vertex's neighborhood dozens of times).
//
// Layout: three contiguous arrays — `offsets` (n+1 entries), and
// `neighbors`/`edge_weight` (2m entries, one per directed half-edge).
// Vertex v's neighborhood is the half-open range
// [offsets[v], offsets[v+1]); `edge_weight[i]` is the aggregate
// (multiplicity-weighted) comm volume between v and `neighbors[i]`.
// `vertex_weight[v]` is v's multiplicity-weighted exec cost. Unlike
// `Graph` (vector-of-vectors adjacency), a CSR sweep touches memory
// strictly sequentially, which is what makes 100k-task refinement
// sweeps affordable.
#pragma once

#include <cstdint>
#include <vector>

#include "oregami/core/task_graph.hpp"

namespace oregami {

/// Immutable flat adjacency view of a (coarsened) task graph.
///
/// Edges are undirected and deduplicated: parallel and antiparallel
/// `CommEdge`s collapse, their volumes (times phase multiplicity)
/// summing. Self-edges vanish (intra-vertex traffic costs nothing under
/// the completion model). Both half-edges of {u, v} are stored, so the
/// total of `edge_weight` is 2 * total_edge_weight.
struct CsrTaskGraph {
  std::vector<std::int32_t> offsets;    ///< size n+1; offsets[0] == 0
  std::vector<std::int32_t> neighbors;  ///< size 2m
  std::vector<std::int64_t> edge_weight;  ///< size 2m, aligned to neighbors
  std::vector<std::int64_t> vertex_weight;  ///< size n; folded exec cost

  std::int64_t total_edge_weight = 0;    ///< sum over undirected edges
  std::int64_t total_vertex_weight = 0;  ///< sum over vertices

  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(vertex_weight.size());
  }
  [[nodiscard]] int num_edges() const {
    return static_cast<int>(neighbors.size()) / 2;
  }
  [[nodiscard]] int degree(int v) const {
    return static_cast<int>(offsets[v + 1] - offsets[v]);
  }

  /// Builds the CSR aggregate of `graph`: volumes are weighted by each
  /// comm phase's multiplicity, exec costs by each exec phase's
  /// multiplicity (so a phase repeated ^8 counts 8x — the same folding
  /// the completion model applies). O(m log m).
  static CsrTaskGraph from_task_graph(const TaskGraph& graph);

  /// Converts to the adjacency-list `Graph` the seed matchers/embedders
  /// consume (used to hand the coarsest level to NN-Embed).
  [[nodiscard]] Graph to_graph() const;

  /// Expands back into a single-comm-phase, single-exec-phase
  /// `TaskGraph` (phase expression Idle => both phases run once).
  /// Used to build per-level `IncrementalCompletion` evaluators for
  /// intermediate coarse levels.
  [[nodiscard]] TaskGraph to_task_graph() const;
};

/// One coarsening step's output: the coarse graph plus the projection
/// map from fine vertices onto super-vertices.
struct CoarsenResult {
  CsrTaskGraph coarse;
  /// coarse_of_fine[v] = super-vertex of fine vertex v; every coarse id
  /// in [0, coarse.num_vertices()) appears at least once (surjective),
  /// and at most twice (matching pairs).
  std::vector<std::int32_t> coarse_of_fine;
  /// Total weight of edges internalized by this step (both endpoints
  /// merged into one super-vertex). Invariant:
  ///   coarse.total_edge_weight + internalized_weight
  ///     == fine.total_edge_weight
  std::int64_t internalized_weight = 0;
};

/// Seeded heavy-edge matching coarsener. Visits vertices in a
/// seed-shuffled order; each unmatched vertex pairs with its heaviest
/// unmatched neighbor (ties -> lowest neighbor id). Pairing stops once
/// the contracted size would drop below `target_vertices` (pass 0 for
/// "match as much as possible"). Coarse ids are assigned by ascending
/// minimum fine id, so the numbering is independent of the visit order.
/// Deterministic for a fixed (graph, seed, target). O(m log m).
[[nodiscard]] CoarsenResult coarsen_heavy_edge(const CsrTaskGraph& g,
                                               std::uint64_t seed,
                                               int target_vertices);

}  // namespace oregami
