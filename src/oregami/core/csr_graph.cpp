#include "oregami/core/csr_graph.hpp"

#include <algorithm>
#include <utility>

#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {

namespace {

// Builds CSR arrays from a list of undirected (u, v, w) records with
// u != v, possibly containing duplicates (which merge by summing).
// Mutates `edges` (sorts it). O(m log m).
void build_csr_from_pairs(int n,
                          std::vector<std::pair<std::int64_t, std::int64_t>>& edges,
                          CsrTaskGraph& out) {
  // Each record is packed as (min<<32|max, weight); sorting groups
  // duplicates so a single linear merge pass dedups them.
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t merged = 0;
  for (std::size_t i = 0; i < edges.size();) {
    std::int64_t key = edges[i].first;
    std::int64_t w = 0;
    while (i < edges.size() && edges[i].first == key) {
      w += edges[i].second;
      ++i;
    }
    edges[merged++] = {key, w};
  }
  edges.resize(merged);

  out.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [key, w] : edges) {
    const int u = static_cast<int>(key >> 32);
    const int v = static_cast<int>(key & 0xffffffff);
    ++out.offsets[u + 1];
    ++out.offsets[v + 1];
  }
  for (int v = 0; v < n; ++v) out.offsets[v + 1] += out.offsets[v];

  out.neighbors.resize(edges.size() * 2);
  out.edge_weight.resize(edges.size() * 2);
  std::vector<std::int32_t> cursor(out.offsets.begin(),
                                   out.offsets.end() - 1);
  out.total_edge_weight = 0;
  for (const auto& [key, w] : edges) {
    const int u = static_cast<int>(key >> 32);
    const int v = static_cast<int>(key & 0xffffffff);
    out.neighbors[cursor[u]] = v;
    out.edge_weight[cursor[u]] = w;
    ++cursor[u];
    out.neighbors[cursor[v]] = u;
    out.edge_weight[cursor[v]] = w;
    ++cursor[v];
    out.total_edge_weight += w;
  }
  // Sorted input keys mean each vertex's neighbor range comes out
  // ascending, which coarsening's tie-break relies on.
}

}  // namespace

CsrTaskGraph CsrTaskGraph::from_task_graph(const TaskGraph& graph) {
  const int n = graph.num_tasks();
  CsrTaskGraph out;
  out.vertex_weight.assign(n, 0);

  const std::vector<long> comm_mult = graph.comm_phase_multiplicity();
  const std::vector<long> exec_mult = graph.exec_phase_multiplicity();

  for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
    const ExecPhase& phase = graph.exec_phases()[k];
    if (exec_mult[k] == 0 || phase.cost.empty()) continue;
    for (int t = 0; t < n; ++t) {
      out.vertex_weight[t] += phase.cost[t] * exec_mult[k];
    }
  }
  out.total_vertex_weight = 0;
  for (std::int64_t w : out.vertex_weight) out.total_vertex_weight += w;

  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
  pairs.reserve(static_cast<std::size_t>(graph.num_comm_edges()));
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    if (comm_mult[k] == 0) continue;
    for (const CommEdge& e : graph.comm_phases()[k].edges) {
      if (e.src == e.dst) continue;  // intra-task traffic is free
      const int u = std::min(e.src, e.dst);
      const int v = std::max(e.src, e.dst);
      pairs.emplace_back((static_cast<std::int64_t>(u) << 32) | v,
                         e.volume * comm_mult[k]);
    }
  }
  build_csr_from_pairs(n, pairs, out);
  return out;
}

Graph CsrTaskGraph::to_graph() const {
  Graph g(num_vertices());
  for (int v = 0; v < num_vertices(); ++v) {
    for (std::int32_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const int u = neighbors[i];
      if (u > v) g.add_edge(v, u, edge_weight[i]);
    }
  }
  return g;
}

TaskGraph CsrTaskGraph::to_task_graph() const {
  TaskGraph g;
  for (int v = 0; v < num_vertices(); ++v) {
    g.add_task("s" + std::to_string(v));
  }
  const int comm = g.add_comm_phase("agg");
  for (int v = 0; v < num_vertices(); ++v) {
    for (std::int32_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const int u = neighbors[i];
      if (u > v) g.add_comm_edge(comm, v, u, edge_weight[i]);
    }
  }
  g.add_exec_phase("work", vertex_weight);
  return g;
}

CoarsenResult coarsen_heavy_edge(const CsrTaskGraph& g, std::uint64_t seed,
                                 int target_vertices) {
  const int n = g.num_vertices();
  CoarsenResult result;
  result.coarse_of_fine.assign(n, -1);

  // Seed-shuffled visit order: randomization spreads matches evenly
  // (pure id order produces long chains on grids), determinism keeps
  // the whole V-cycle reproducible.
  std::vector<std::int32_t> order(n);
  for (int v = 0; v < n; ++v) order[v] = v;
  SplitMix64 rng(seed);
  for (int v = n - 1; v > 0; --v) {
    const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(v) + 1));
    std::swap(order[v], order[j]);
  }

  std::vector<std::int32_t> mate(n, -1);
  int remaining = n;
  for (int idx = 0; idx < n && remaining > target_vertices; ++idx) {
    const int v = order[idx];
    if (mate[v] != -1) continue;
    // Heaviest unmatched neighbor; neighbor ranges are ascending, so
    // strict `>` keeps the lowest id on ties.
    int best = -1;
    std::int64_t best_w = -1;
    for (std::int32_t i = g.offsets[v]; i < g.offsets[v + 1]; ++i) {
      const int u = g.neighbors[i];
      if (mate[u] != -1) continue;
      if (g.edge_weight[i] > best_w) {
        best_w = g.edge_weight[i];
        best = u;
      }
    }
    if (best != -1) {
      mate[v] = best;
      mate[best] = v;
      --remaining;
    }
  }

  // Coarse ids by ascending minimum fine id: independent of both the
  // shuffle order and which endpoint found the match.
  int next_id = 0;
  for (int v = 0; v < n; ++v) {
    if (result.coarse_of_fine[v] != -1) continue;
    result.coarse_of_fine[v] = next_id;
    if (mate[v] != -1 && mate[v] > v) {
      result.coarse_of_fine[mate[v]] = next_id;
    }
    ++next_id;
  }
  OREGAMI_ASSERT(next_id == remaining, "coarse id count mismatch");

  CsrTaskGraph& coarse = result.coarse;
  coarse.vertex_weight.assign(next_id, 0);
  for (int v = 0; v < n; ++v) {
    coarse.vertex_weight[result.coarse_of_fine[v]] += g.vertex_weight[v];
  }
  coarse.total_vertex_weight = g.total_vertex_weight;

  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
  pairs.reserve(static_cast<std::size_t>(g.num_edges()));
  result.internalized_weight = 0;
  for (int v = 0; v < n; ++v) {
    const int cv = result.coarse_of_fine[v];
    for (std::int32_t i = g.offsets[v]; i < g.offsets[v + 1]; ++i) {
      const int u = g.neighbors[i];
      if (u <= v) continue;  // visit each undirected edge once
      const int cu = result.coarse_of_fine[u];
      if (cu == cv) {
        result.internalized_weight += g.edge_weight[i];
        continue;
      }
      const int a = std::min(cu, cv);
      const int b = std::max(cu, cv);
      pairs.emplace_back((static_cast<std::int64_t>(a) << 32) | b,
                         g.edge_weight[i]);
    }
  }
  build_csr_from_pairs(next_id, pairs, coarse);
  OREGAMI_ASSERT(
      coarse.total_edge_weight + result.internalized_weight ==
          g.total_edge_weight,
      "coarsening lost comm volume");
  return result;
}

}  // namespace oregami
