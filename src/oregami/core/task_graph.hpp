// OREGAMI's model of a parallel computation (paper §2): a weighted,
// colored directed graph G = (V, E_1, ..., E_c). Each E_k is one
// *communication phase* (a set of edges engaged in synchronous message
// passing); node weights are per-*execution-phase* task costs; and a
// *phase expression* describes the dynamic behaviour -- the order and
// repetition of phases over time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "oregami/graph/graph.hpp"

namespace oregami {

/// One directed message edge within a communication phase.
struct CommEdge {
  int src = 0;
  int dst = 0;
  std::int64_t volume = 1;  ///< message volume (bytes or abstract units)
};

/// One communication phase ("color"): a named synchronous edge set.
struct CommPhase {
  std::string name;
  std::vector<CommEdge> edges;

  [[nodiscard]] std::int64_t total_volume() const;
};

/// One execution phase: per-task compute cost between two communication
/// phases.
struct ExecPhase {
  std::string name;
  std::vector<std::int64_t> cost;  ///< indexed by task id
};

/// A concrete (fully evaluated) phase-expression tree. Leaves reference
/// comm/exec phases by index; `Repeat` carries an evaluated count.
/// Mirrors the paper's grammar: epsilon | phase | r;s | r^expr | r||s.
struct PhaseTree {
  enum class Kind { Idle, Comm, Exec, Seq, Par, Repeat };

  Kind kind = Kind::Idle;
  int phase_index = -1;  ///< for Comm/Exec leaves
  long count = 1;        ///< for Repeat
  std::vector<PhaseTree> children;

  static PhaseTree idle();
  static PhaseTree comm(int phase_index);
  static PhaseTree exec(int phase_index);
  static PhaseTree seq(std::vector<PhaseTree> parts);
  static PhaseTree par(std::vector<PhaseTree> parts);
  static PhaseTree repeat(PhaseTree body, long count);

  /// Renders with the paper's notation, e.g.
  /// "((ring; compute1)^8; chordal; compute2)^s" (counts printed).
  [[nodiscard]] std::string to_string(
      const std::vector<CommPhase>& comm_phases,
      const std::vector<ExecPhase>& exec_phases) const;
};

/// The task graph: tasks + colored comm phases + exec phases + phase
/// expression. Task ids are dense [0, num_tasks).
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Adds a task; returns its id. `label` is the LaRCS label tuple
  /// (may be empty for hand-built graphs).
  int add_task(std::string name, std::vector<long> label = {});

  /// Declares a new communication phase; returns its index.
  int add_comm_phase(std::string name);

  /// Adds a directed message edge to phase `phase`.
  void add_comm_edge(int phase, int src, int dst, std::int64_t volume = 1);

  /// Declares an execution phase with per-task costs (must have
  /// num_tasks entries, or be empty meaning all-zero).
  int add_exec_phase(std::string name, std::vector<std::int64_t> cost);

  void set_phase_expr(PhaseTree expr) { phase_expr_ = std::move(expr); }
  void set_node_symmetric(bool value) { declared_node_symmetric_ = value; }

  [[nodiscard]] int num_tasks() const {
    return static_cast<int>(task_names_.size());
  }
  [[nodiscard]] const std::string& task_name(int t) const;
  [[nodiscard]] const std::vector<long>& task_label(int t) const;
  [[nodiscard]] const std::vector<CommPhase>& comm_phases() const {
    return comm_phases_;
  }
  [[nodiscard]] const std::vector<ExecPhase>& exec_phases() const {
    return exec_phases_;
  }
  [[nodiscard]] const PhaseTree& phase_expr() const { return phase_expr_; }
  [[nodiscard]] bool declared_node_symmetric() const {
    return declared_node_symmetric_;
  }

  [[nodiscard]] std::optional<int> comm_phase_index(
      const std::string& name) const;
  [[nodiscard]] std::optional<int> exec_phase_index(
      const std::string& name) const;

  /// Total number of directed comm edges over all phases.
  [[nodiscard]] int num_comm_edges() const;

  /// Sum of edge volumes over all phases.
  [[nodiscard]] std::int64_t total_volume() const;

  /// The static undirected aggregate of all phases: parallel/antiparallel
  /// edges collapse, volumes sum. This is the graph MWM-Contract and
  /// NN-Embed operate on.
  [[nodiscard]] Graph aggregate_graph() const;

  /// How many times each comm phase (index-aligned with comm_phases())
  /// executes according to the phase expression; exec likewise.
  /// A phase not mentioned in the expression has multiplicity 0; when
  /// the expression is Idle/default, every phase gets multiplicity 1
  /// (static fallback).
  [[nodiscard]] std::vector<long> comm_phase_multiplicity() const;
  [[nodiscard]] std::vector<long> exec_phase_multiplicity() const;

  /// Structural checks (edge endpoints in range, cost vector sizes,
  /// phase indices in the expression valid); throws MappingError.
  void validate() const;

 private:
  std::vector<std::string> task_names_;
  std::vector<std::vector<long>> task_labels_;
  std::vector<CommPhase> comm_phases_;
  std::vector<ExecPhase> exec_phases_;
  PhaseTree phase_expr_;
  bool declared_node_symmetric_ = false;
};

}  // namespace oregami
