// Plain-text serialisation of mappings, so a mapping computed once
// (possibly hand-tuned through a METRICS session) can be stored next to
// the program and reloaded at job-launch time.
//
// Format (line oriented, whitespace separated):
//   oregami-mapping v1
//   tasks <N> clusters <C> procs <P> phases <K>
//   contraction <N ints>
//   embedding <C ints>
//   phase <edge-count>
//   route <node-count> <nodes...> <link-count> <links...>   (per edge)
#pragma once

#include <iosfwd>
#include <string>

#include "oregami/core/mapping.hpp"

namespace oregami {

/// Writes `mapping` to `out`. `num_procs` is recorded for validation on
/// load.
void write_mapping(std::ostream& out, const Mapping& mapping,
                   int num_procs);

/// Convenience: serialise to a string.
[[nodiscard]] std::string mapping_to_string(const Mapping& mapping,
                                            int num_procs);

/// Reads a mapping; throws MappingError on malformed input or
/// structural inconsistencies (counts, ranges, route shapes). Every
/// parse error is located: the message starts with "mapping file line
/// N: ..." where N is the 1-based line of the offending token. The
/// caller should still run validate_mapping() against the task graph
/// and topology it intends to use.
[[nodiscard]] Mapping read_mapping(std::istream& in, int* num_procs_out = nullptr);

/// Convenience: parse from a string.
[[nodiscard]] Mapping mapping_from_string(const std::string& text,
                                          int* num_procs_out = nullptr);

}  // namespace oregami
