#include "oregami/core/recognize.hpp"

#include <algorithm>
#include <queue>

#include "oregami/graph/gray_code.hpp"
#include "oregami/graph/shortest_paths.hpp"
#include "oregami/support/error.hpp"

namespace oregami {

std::string to_string(GraphFamily family) {
  switch (family) {
    case GraphFamily::Unknown:
      return "unknown";
    case GraphFamily::Ring:
      return "ring";
    case GraphFamily::Chain:
      return "chain";
    case GraphFamily::Mesh:
      return "mesh";
    case GraphFamily::Hypercube:
      return "hypercube";
    case GraphFamily::CompleteBinaryTree:
      return "complete-binary-tree";
    case GraphFamily::BinomialTree:
      return "binomial-tree";
    case GraphFamily::Star:
      return "star";
    case GraphFamily::Complete:
      return "complete";
  }
  return "unknown";
}

namespace {

bool all_degrees_are(const Graph& g, int d) {
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) != d) {
      return false;
    }
  }
  return true;
}

bool is_tree(const Graph& g) {
  return g.num_vertices() >= 1 &&
         g.num_edges() == g.num_vertices() - 1 && is_connected(g);
}

}  // namespace

std::optional<RecognizedFamily> detect_ring(const Graph& g) {
  const int n = g.num_vertices();
  if (n < 3 || g.num_edges() != n || !all_degrees_are(g, 2) ||
      !is_connected(g)) {
    return std::nullopt;
  }
  RecognizedFamily result;
  result.family = GraphFamily::Ring;
  result.params = {n};
  result.canonical_label.assign(static_cast<std::size_t>(n), -1);
  int prev = -1;
  int current = 0;
  for (int pos = 0; pos < n; ++pos) {
    result.canonical_label[static_cast<std::size_t>(current)] = pos;
    for (const auto& a : g.neighbors(current)) {
      if (a.neighbor != prev &&
          result.canonical_label[static_cast<std::size_t>(a.neighbor)] ==
              -1) {
        prev = current;
        current = a.neighbor;
        break;
      }
    }
  }
  return result;
}

std::optional<RecognizedFamily> detect_chain(const Graph& g) {
  const int n = g.num_vertices();
  if (n == 1) {
    return RecognizedFamily{GraphFamily::Chain, {1}, {0}};
  }
  if (n < 2 || g.num_edges() != n - 1 || !is_connected(g)) {
    return std::nullopt;
  }
  std::vector<int> endpoints;
  for (int v = 0; v < n; ++v) {
    const int d = g.degree(v);
    if (d == 1) {
      endpoints.push_back(v);
    } else if (d != 2) {
      return std::nullopt;
    }
  }
  if (endpoints.size() != 2) {
    return std::nullopt;
  }
  RecognizedFamily result;
  result.family = GraphFamily::Chain;
  result.params = {n};
  result.canonical_label.assign(static_cast<std::size_t>(n), -1);
  int prev = -1;
  int current = std::min(endpoints[0], endpoints[1]);
  for (int pos = 0; pos < n; ++pos) {
    result.canonical_label[static_cast<std::size_t>(current)] = pos;
    for (const auto& a : g.neighbors(current)) {
      if (a.neighbor != prev) {
        prev = current;
        current = a.neighbor;
        break;
      }
    }
  }
  return result;
}

std::optional<RecognizedFamily> detect_hypercube(const Graph& g) {
  const int n = g.num_vertices();
  if (n == 0 || !is_power_of_two(static_cast<std::uint64_t>(n))) {
    return std::nullopt;
  }
  const int d = floor_log2(static_cast<std::uint64_t>(n));
  if (n == 1) {
    return RecognizedFamily{GraphFamily::Hypercube, {0}, {0}};
  }
  if (!all_degrees_are(g, d) ||
      g.num_edges() != n * d / 2 || !is_connected(g)) {
    return std::nullopt;
  }

  // Label by BFS: root gets 0, its neighbors get single bits, and every
  // deeper vertex's address is the OR of any two already-labeled
  // neighbors (in Q_d those neighbors are subsets of size k-1 of the
  // vertex's k-bit address). Verify the resulting labeling exactly.
  std::vector<int> label(static_cast<std::size_t>(n), -1);
  std::vector<int> level(static_cast<std::size_t>(n), -1);
  std::queue<int> q;
  label[0] = 0;
  level[0] = 0;
  int bit = 0;
  for (const auto& a : g.neighbors(0)) {
    label[static_cast<std::size_t>(a.neighbor)] = 1 << bit;
    level[static_cast<std::size_t>(a.neighbor)] = 1;
    q.push(a.neighbor);
    ++bit;
  }
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (const auto& a : g.neighbors(v)) {
      const int w = a.neighbor;
      if (level[static_cast<std::size_t>(w)] != -1) {
        continue;
      }
      // Find two labeled neighbors of w at the previous level.
      int lu = -1;
      int lv = -1;
      for (const auto& b : g.neighbors(w)) {
        if (level[static_cast<std::size_t>(b.neighbor)] ==
            level[static_cast<std::size_t>(v)]) {
          if (lu == -1) {
            lu = label[static_cast<std::size_t>(b.neighbor)];
          } else if (label[static_cast<std::size_t>(b.neighbor)] != lu) {
            lv = label[static_cast<std::size_t>(b.neighbor)];
            break;
          }
        }
      }
      if (lu == -1 || lv == -1) {
        return std::nullopt;
      }
      label[static_cast<std::size_t>(w)] = lu | lv;
      level[static_cast<std::size_t>(w)] =
          level[static_cast<std::size_t>(v)] + 1;
      q.push(w);
    }
  }

  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (const int l : label) {
    if (l < 0 || l >= n || used[static_cast<std::size_t>(l)]) {
      return std::nullopt;
    }
    used[static_cast<std::size_t>(l)] = true;
  }
  for (const auto& e : g.edges()) {
    const auto diff = static_cast<std::uint32_t>(
        label[static_cast<std::size_t>(e.u)] ^
        label[static_cast<std::size_t>(e.v)]);
    if (popcount32(diff) != 1) {
      return std::nullopt;
    }
  }
  return RecognizedFamily{GraphFamily::Hypercube, {d}, std::move(label)};
}

std::optional<RecognizedFamily> detect_mesh(const Graph& g) {
  const int n = g.num_vertices();
  if (n < 4 || !is_connected(g)) {
    return std::nullopt;
  }
  std::vector<int> corners;
  for (int v = 0; v < n; ++v) {
    const int d = g.degree(v);
    if (d == 2) {
      corners.push_back(v);
    } else if (d != 3 && d != 4) {
      return std::nullopt;
    }
  }
  if (corners.size() != 4) {
    return std::nullopt;
  }

  // Coordinates from corner distances: with v0 = (0,0) and w = (0,c-1),
  // dist_v0(x) = i+j and dist_w(x) = i + (c-1-j), so j and i recover
  // linearly. The nearest other corner to v0 sits at distance c-1.
  const int v0 = corners[0];
  const auto d0 = bfs_distances(g, v0);
  int w = -1;
  for (std::size_t k = 1; k < corners.size(); ++k) {
    const int corner = corners[k];
    if (w == -1 || d0[static_cast<std::size_t>(corner)] <
                       d0[static_cast<std::size_t>(w)]) {
      w = corner;
    }
  }
  const int c = d0[static_cast<std::size_t>(w)] + 1;
  if (c < 2 || n % c != 0) {
    return std::nullopt;
  }
  const int r = n / c;
  if (r < 2) {
    return std::nullopt;
  }
  const auto dw = bfs_distances(g, w);

  std::vector<int> label(static_cast<std::size_t>(n), -1);
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (int x = 0; x < n; ++x) {
    const int sum = d0[static_cast<std::size_t>(x)];
    const int diff = sum - dw[static_cast<std::size_t>(x)] + (c - 1);
    if (diff < 0 || diff % 2 != 0) {
      return std::nullopt;
    }
    const int j = diff / 2;
    const int i = sum - j;
    if (i < 0 || i >= r || j < 0 || j >= c) {
      return std::nullopt;
    }
    const int idx = i * c + j;
    if (used[static_cast<std::size_t>(idx)]) {
      return std::nullopt;
    }
    used[static_cast<std::size_t>(idx)] = true;
    label[static_cast<std::size_t>(x)] = idx;
  }
  if (g.num_edges() != r * (c - 1) + c * (r - 1)) {
    return std::nullopt;
  }
  for (const auto& e : g.edges()) {
    const int a = label[static_cast<std::size_t>(e.u)];
    const int b = label[static_cast<std::size_t>(e.v)];
    const int ai = a / c;
    const int aj = a % c;
    const int bi = b / c;
    const int bj = b % c;
    if (std::abs(ai - bi) + std::abs(aj - bj) != 1) {
      return std::nullopt;
    }
  }
  return RecognizedFamily{GraphFamily::Mesh, {r, c}, std::move(label)};
}

std::optional<RecognizedFamily> detect_complete_binary_tree(
    const Graph& g) {
  const int n = g.num_vertices();
  if (!is_tree(g) ||
      !is_power_of_two(static_cast<std::uint64_t>(n) + 1)) {
    return std::nullopt;
  }
  const int h = floor_log2(static_cast<std::uint64_t>(n) + 1);
  if (n == 1) {
    return RecognizedFamily{GraphFamily::CompleteBinaryTree, {1}, {0}};
  }

  // Root: degree 2 whose removal splits the tree into equal halves.
  // For h >= 3 the root is the only degree-2 vertex; for h == 2 (P_3)
  // the middle vertex qualifies.
  int root = -1;
  for (int v = 0; v < n; ++v) {
    if (g.degree(v) == 2) {
      if (root != -1 && h >= 3) {
        return std::nullopt;
      }
      if (root == -1) {
        root = v;
      }
    }
  }
  if (root == -1) {
    return std::nullopt;
  }

  std::vector<int> label(static_cast<std::size_t>(n), -1);
  std::queue<int> q;
  label[static_cast<std::size_t>(root)] = 0;
  q.push(root);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    const int heap = label[static_cast<std::size_t>(v)];
    int child_slot = 0;
    for (const auto& a : g.neighbors(v)) {
      if (label[static_cast<std::size_t>(a.neighbor)] != -1) {
        continue;
      }
      if (child_slot >= 2) {
        return std::nullopt;
      }
      const int child_heap = 2 * heap + 1 + child_slot;
      if (child_heap >= n) {
        return std::nullopt;
      }
      label[static_cast<std::size_t>(a.neighbor)] = child_heap;
      q.push(a.neighbor);
      ++child_slot;
    }
    const bool is_internal = 2 * heap + 1 < n;
    if (is_internal ? child_slot != 2 : child_slot != 0) {
      return std::nullopt;
    }
  }
  return RecognizedFamily{GraphFamily::CompleteBinaryTree, {h},
                          std::move(label)};
}

namespace {

/// Recursive binomial-tree check rooted at `v` (parent excluded).
/// Fills `label` with bitmask addresses relative to `base`; returns the
/// subtree size, or -1 when the subtree is not binomial.
int binomial_check(const Graph& g, int v, int parent, int base,
                   std::vector<int>& label) {
  label[static_cast<std::size_t>(v)] = base;
  // Gather children with their subtree sizes.
  std::vector<std::pair<int, int>> children;  // (size, child)
  int total = 1;
  for (const auto& a : g.neighbors(v)) {
    if (a.neighbor == parent) {
      continue;
    }
    // Temporarily compute size via a plain DFS; labels assigned later.
    int size = 0;
    std::vector<std::pair<int, int>> stack{{a.neighbor, v}};
    while (!stack.empty()) {
      const auto [x, p] = stack.back();
      stack.pop_back();
      ++size;
      for (const auto& b : g.neighbors(x)) {
        if (b.neighbor != p) {
          stack.emplace_back(b.neighbor, x);
        }
      }
    }
    children.emplace_back(size, a.neighbor);
    total += size;
  }
  std::sort(children.begin(), children.end());
  for (std::size_t j = 0; j < children.size(); ++j) {
    if (children[j].first != (1 << j)) {
      return -1;
    }
    if (binomial_check(g, children[j].second, v,
                       base | (1 << j), label) == -1) {
      return -1;
    }
  }
  return total;
}

}  // namespace

std::optional<RecognizedFamily> detect_binomial_tree(const Graph& g) {
  const int n = g.num_vertices();
  if (!is_tree(g) || !is_power_of_two(static_cast<std::uint64_t>(n))) {
    return std::nullopt;
  }
  const int k = floor_log2(static_cast<std::uint64_t>(n));
  if (n == 1) {
    return RecognizedFamily{GraphFamily::BinomialTree, {0}, {0}};
  }
  // The root of B_k has degree k; try each max-degree vertex.
  for (int root = 0; root < n; ++root) {
    if (g.degree(root) != k) {
      continue;
    }
    std::vector<int> label(static_cast<std::size_t>(n), -1);
    if (binomial_check(g, root, -1, 0, label) == n) {
      return RecognizedFamily{GraphFamily::BinomialTree, {k},
                              std::move(label)};
    }
  }
  return std::nullopt;
}

std::optional<RecognizedFamily> detect_star(const Graph& g) {
  const int n = g.num_vertices();
  if (n < 4 || g.num_edges() != n - 1) {
    return std::nullopt;
  }
  int hub = -1;
  for (int v = 0; v < n; ++v) {
    if (g.degree(v) == n - 1) {
      hub = v;
    } else if (g.degree(v) != 1) {
      return std::nullopt;
    }
  }
  if (hub == -1) {
    return std::nullopt;
  }
  RecognizedFamily result;
  result.family = GraphFamily::Star;
  result.params = {n};
  result.canonical_label.assign(static_cast<std::size_t>(n), -1);
  result.canonical_label[static_cast<std::size_t>(hub)] = 0;
  int next = 1;
  for (int v = 0; v < n; ++v) {
    if (v != hub) {
      result.canonical_label[static_cast<std::size_t>(v)] = next++;
    }
  }
  return result;
}

std::optional<RecognizedFamily> detect_complete(const Graph& g) {
  const int n = g.num_vertices();
  if (n < 3 || g.num_edges() != n * (n - 1) / 2 ||
      !all_degrees_are(g, n - 1)) {
    return std::nullopt;
  }
  RecognizedFamily result;
  result.family = GraphFamily::Complete;
  result.params = {n};
  result.canonical_label.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    result.canonical_label[static_cast<std::size_t>(v)] = v;
  }
  return result;
}

RecognizedFamily recognize_family(const Graph& g) {
  // Specific families first; overlapping small cases (Q_2 == C_4,
  // B_2 == P_4, ...) resolve to the earlier detector deterministically.
  if (auto r = detect_hypercube(g)) {
    return *r;
  }
  if (auto r = detect_ring(g)) {
    return *r;
  }
  if (auto r = detect_mesh(g)) {
    return *r;
  }
  if (auto r = detect_complete_binary_tree(g)) {
    return *r;
  }
  if (auto r = detect_binomial_tree(g)) {
    return *r;
  }
  if (auto r = detect_star(g)) {
    return *r;
  }
  if (auto r = detect_complete(g)) {
    return *r;
  }
  if (auto r = detect_chain(g)) {
    return *r;
  }
  return {};
}

}  // namespace oregami
