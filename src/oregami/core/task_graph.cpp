#include "oregami/core/task_graph.hpp"

#include <algorithm>

#include "oregami/support/error.hpp"

namespace oregami {

std::int64_t CommPhase::total_volume() const {
  std::int64_t sum = 0;
  for (const auto& e : edges) {
    sum += e.volume;
  }
  return sum;
}

PhaseTree PhaseTree::idle() { return {}; }

PhaseTree PhaseTree::comm(int phase_index) {
  PhaseTree t;
  t.kind = Kind::Comm;
  t.phase_index = phase_index;
  return t;
}

PhaseTree PhaseTree::exec(int phase_index) {
  PhaseTree t;
  t.kind = Kind::Exec;
  t.phase_index = phase_index;
  return t;
}

PhaseTree PhaseTree::seq(std::vector<PhaseTree> parts) {
  PhaseTree t;
  t.kind = Kind::Seq;
  t.children = std::move(parts);
  return t;
}

PhaseTree PhaseTree::par(std::vector<PhaseTree> parts) {
  PhaseTree t;
  t.kind = Kind::Par;
  t.children = std::move(parts);
  return t;
}

PhaseTree PhaseTree::repeat(PhaseTree body, long count) {
  OREGAMI_ASSERT(count >= 0, "repeat count must be non-negative");
  PhaseTree t;
  t.kind = Kind::Repeat;
  t.count = count;
  t.children.push_back(std::move(body));
  return t;
}

std::string PhaseTree::to_string(
    const std::vector<CommPhase>& comm_phases,
    const std::vector<ExecPhase>& exec_phases) const {
  switch (kind) {
    case Kind::Idle:
      return "eps";
    case Kind::Comm:
      return comm_phases[static_cast<std::size_t>(phase_index)].name;
    case Kind::Exec:
      return exec_phases[static_cast<std::size_t>(phase_index)].name;
    case Kind::Seq: {
      std::string out = "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i != 0) {
          out += "; ";
        }
        out += children[i].to_string(comm_phases, exec_phases);
      }
      return out + ")";
    }
    case Kind::Par: {
      std::string out = "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i != 0) {
          out += " || ";
        }
        out += children[i].to_string(comm_phases, exec_phases);
      }
      return out + ")";
    }
    case Kind::Repeat:
      return children.front().to_string(comm_phases, exec_phases) + "^" +
             std::to_string(count);
  }
  return "?";
}

int TaskGraph::add_task(std::string name, std::vector<long> label) {
  task_names_.push_back(std::move(name));
  task_labels_.push_back(std::move(label));
  return num_tasks() - 1;
}

int TaskGraph::add_comm_phase(std::string name) {
  comm_phases_.push_back({std::move(name), {}});
  return static_cast<int>(comm_phases_.size()) - 1;
}

void TaskGraph::add_comm_edge(int phase, int src, int dst,
                              std::int64_t volume) {
  OREGAMI_ASSERT(phase >= 0 &&
                     phase < static_cast<int>(comm_phases_.size()),
                 "comm phase index out of range");
  OREGAMI_ASSERT(src >= 0 && src < num_tasks(), "edge src out of range");
  OREGAMI_ASSERT(dst >= 0 && dst < num_tasks(), "edge dst out of range");
  comm_phases_[static_cast<std::size_t>(phase)].edges.push_back(
      {src, dst, volume});
}

int TaskGraph::add_exec_phase(std::string name,
                              std::vector<std::int64_t> cost) {
  if (cost.empty()) {
    cost.assign(static_cast<std::size_t>(num_tasks()), 0);
  }
  if (cost.size() != static_cast<std::size_t>(num_tasks())) {
    throw MappingError("exec phase '" + name +
                       "' cost vector must cover every task");
  }
  exec_phases_.push_back({std::move(name), std::move(cost)});
  return static_cast<int>(exec_phases_.size()) - 1;
}

const std::string& TaskGraph::task_name(int t) const {
  OREGAMI_ASSERT(t >= 0 && t < num_tasks(), "task id out of range");
  return task_names_[static_cast<std::size_t>(t)];
}

const std::vector<long>& TaskGraph::task_label(int t) const {
  OREGAMI_ASSERT(t >= 0 && t < num_tasks(), "task id out of range");
  return task_labels_[static_cast<std::size_t>(t)];
}

std::optional<int> TaskGraph::comm_phase_index(
    const std::string& name) const {
  for (std::size_t i = 0; i < comm_phases_.size(); ++i) {
    if (comm_phases_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

std::optional<int> TaskGraph::exec_phase_index(
    const std::string& name) const {
  for (std::size_t i = 0; i < exec_phases_.size(); ++i) {
    if (exec_phases_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

int TaskGraph::num_comm_edges() const {
  int count = 0;
  for (const auto& phase : comm_phases_) {
    count += static_cast<int>(phase.edges.size());
  }
  return count;
}

std::int64_t TaskGraph::total_volume() const {
  std::int64_t sum = 0;
  for (const auto& phase : comm_phases_) {
    sum += phase.total_volume();
  }
  return sum;
}

Graph TaskGraph::aggregate_graph() const {
  Graph g(num_tasks());
  for (const auto& phase : comm_phases_) {
    for (const auto& e : phase.edges) {
      if (e.src != e.dst) {
        g.add_edge(e.src, e.dst, e.volume);
      }
    }
  }
  return g;
}

namespace {

void accumulate_multiplicity(const PhaseTree& node, long factor,
                             std::vector<long>& comm,
                             std::vector<long>& exec) {
  switch (node.kind) {
    case PhaseTree::Kind::Idle:
      return;
    case PhaseTree::Kind::Comm:
      comm[static_cast<std::size_t>(node.phase_index)] += factor;
      return;
    case PhaseTree::Kind::Exec:
      exec[static_cast<std::size_t>(node.phase_index)] += factor;
      return;
    case PhaseTree::Kind::Seq:
    case PhaseTree::Kind::Par:
      for (const auto& child : node.children) {
        accumulate_multiplicity(child, factor, comm, exec);
      }
      return;
    case PhaseTree::Kind::Repeat:
      accumulate_multiplicity(node.children.front(), factor * node.count,
                              comm, exec);
      return;
  }
}

}  // namespace

std::vector<long> TaskGraph::comm_phase_multiplicity() const {
  std::vector<long> comm(comm_phases_.size(), 0);
  std::vector<long> exec(exec_phases_.size(), 0);
  if (phase_expr_.kind == PhaseTree::Kind::Idle) {
    std::fill(comm.begin(), comm.end(), 1);
    return comm;
  }
  accumulate_multiplicity(phase_expr_, 1, comm, exec);
  return comm;
}

std::vector<long> TaskGraph::exec_phase_multiplicity() const {
  std::vector<long> comm(comm_phases_.size(), 0);
  std::vector<long> exec(exec_phases_.size(), 0);
  if (phase_expr_.kind == PhaseTree::Kind::Idle) {
    std::fill(exec.begin(), exec.end(), 1);
    return exec;
  }
  accumulate_multiplicity(phase_expr_, 1, comm, exec);
  return exec;
}

namespace {

void validate_phase_tree(const PhaseTree& node, int num_comm,
                         int num_exec) {
  switch (node.kind) {
    case PhaseTree::Kind::Idle:
      return;
    case PhaseTree::Kind::Comm:
      if (node.phase_index < 0 || node.phase_index >= num_comm) {
        throw MappingError("phase expression references unknown comm phase");
      }
      return;
    case PhaseTree::Kind::Exec:
      if (node.phase_index < 0 || node.phase_index >= num_exec) {
        throw MappingError("phase expression references unknown exec phase");
      }
      return;
    case PhaseTree::Kind::Seq:
    case PhaseTree::Kind::Par:
      for (const auto& child : node.children) {
        validate_phase_tree(child, num_comm, num_exec);
      }
      return;
    case PhaseTree::Kind::Repeat:
      if (node.count < 0) {
        throw MappingError("phase repetition count must be non-negative");
      }
      validate_phase_tree(node.children.front(), num_comm, num_exec);
      return;
  }
}

}  // namespace

void TaskGraph::validate() const {
  for (const auto& phase : comm_phases_) {
    for (const auto& e : phase.edges) {
      if (e.src < 0 || e.src >= num_tasks() || e.dst < 0 ||
          e.dst >= num_tasks()) {
        throw MappingError("comm edge endpoint out of range in phase '" +
                           phase.name + "'");
      }
      if (e.volume < 0) {
        throw MappingError("negative message volume in phase '" +
                           phase.name + "'");
      }
    }
  }
  for (const auto& phase : exec_phases_) {
    if (phase.cost.size() != static_cast<std::size_t>(num_tasks())) {
      throw MappingError("exec phase '" + phase.name +
                         "' cost vector size mismatch");
    }
  }
  validate_phase_tree(phase_expr_, static_cast<int>(comm_phases_.size()),
                      static_cast<int>(exec_phases_.size()));
}

}  // namespace oregami
