#include "oregami/core/mapping.hpp"

#include <algorithm>

#include "oregami/support/error.hpp"

namespace oregami {

Contraction Contraction::identity(int num_tasks) {
  Contraction c;
  c.num_clusters = num_tasks;
  c.cluster_of_task.resize(static_cast<std::size_t>(num_tasks));
  for (int t = 0; t < num_tasks; ++t) {
    c.cluster_of_task[static_cast<std::size_t>(t)] = t;
  }
  return c;
}

std::vector<int> Contraction::cluster_sizes() const {
  std::vector<int> sizes(static_cast<std::size_t>(num_clusters), 0);
  for (const int c : cluster_of_task) {
    OREGAMI_ASSERT(c >= 0 && c < num_clusters, "cluster id out of range");
    ++sizes[static_cast<std::size_t>(c)];
  }
  return sizes;
}

int Contraction::max_cluster_size() const {
  const auto sizes = cluster_sizes();
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

void Contraction::validate(int num_tasks) const {
  if (cluster_of_task.size() != static_cast<std::size_t>(num_tasks)) {
    throw MappingError("contraction does not cover every task");
  }
  std::vector<bool> used(static_cast<std::size_t>(num_clusters), false);
  for (const int c : cluster_of_task) {
    if (c < 0 || c >= num_clusters) {
      throw MappingError("contraction cluster id out of range");
    }
    used[static_cast<std::size_t>(c)] = true;
  }
  if (!std::all_of(used.begin(), used.end(), [](bool b) { return b; })) {
    throw MappingError("contraction has an empty cluster");
  }
}

void Embedding::validate(int num_procs) const {
  std::vector<bool> used(static_cast<std::size_t>(num_procs), false);
  for (const int p : proc_of_cluster) {
    if (p < 0 || p >= num_procs) {
      throw MappingError("embedding processor id out of range");
    }
    if (used[static_cast<std::size_t>(p)]) {
      throw MappingError("embedding assigns two clusters to one processor");
    }
    used[static_cast<std::size_t>(p)] = true;
  }
}

std::vector<int> Mapping::proc_of_task() const {
  std::vector<int> result;
  result.reserve(contraction.cluster_of_task.size());
  for (const int c : contraction.cluster_of_task) {
    OREGAMI_ASSERT(
        c >= 0 &&
            static_cast<std::size_t>(c) < embedding.proc_of_cluster.size(),
        "cluster id has no embedded processor");
    result.push_back(embedding.proc_of_cluster[static_cast<std::size_t>(c)]);
  }
  return result;
}

int Mapping::task_processor(int t) const {
  OREGAMI_ASSERT(
      t >= 0 &&
          static_cast<std::size_t>(t) < contraction.cluster_of_task.size(),
      "task id out of range");
  const int c = contraction.cluster_of_task[static_cast<std::size_t>(t)];
  return embedding.proc_of_cluster[static_cast<std::size_t>(c)];
}

}  // namespace oregami
