// Structural recognition of "nameable" task graphs (paper §4.1).
//
// MAPPER's first strategy is a library lookup keyed on (task-graph
// family, network family). The programmer can state the family in
// LaRCS; when they do not, OREGAMI detects the common families
// structurally from the aggregate task graph and recovers a canonical
// numbering so the canned embeddings can be applied.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "oregami/graph/graph.hpp"

namespace oregami {

enum class GraphFamily {
  Unknown,
  Ring,                ///< cycle C_n, params {n}
  Chain,               ///< path P_n, params {n}
  Mesh,                ///< grid r x c, params {r, c}
  Hypercube,           ///< Q_d, params {d}
  CompleteBinaryTree,  ///< 2^h - 1 nodes, params {h} (h = #levels)
  BinomialTree,        ///< B_k with 2^k nodes, params {k}
  Star,                ///< K_{1,n-1}, params {n}
  Complete,            ///< K_n, params {n}
};

[[nodiscard]] std::string to_string(GraphFamily family);

/// Detection result: the family, its shape parameters, and a canonical
/// label per vertex in the family's natural coordinate system:
///   Ring/Chain: position along the walk;
///   Mesh: i * c + j (row-major);
///   Hypercube: the vertex's binary address;
///   CompleteBinaryTree: heap index (root 0, children 2i+1 / 2i+2);
///   BinomialTree: the bitmask address (root 0; node m's parent clears
///     m's lowest set bit -- the child of subtree size 2^j carries
///     bit j);
///   Star: 0 = hub; Complete: identity.
struct RecognizedFamily {
  GraphFamily family = GraphFamily::Unknown;
  std::vector<int> params;
  std::vector<int> canonical_label;
};

/// Attempts each family detector in a fixed order (specific before
/// general) and returns the first match; Unknown with empty labels when
/// none match. The graph is treated as unweighted/undirected structure.
[[nodiscard]] RecognizedFamily recognize_family(const Graph& g);

/// Individual detectors (exposed for tests). Each returns nullopt on a
/// non-member and the canonical labeling on a member.
[[nodiscard]] std::optional<RecognizedFamily> detect_ring(const Graph& g);
[[nodiscard]] std::optional<RecognizedFamily> detect_chain(const Graph& g);
[[nodiscard]] std::optional<RecognizedFamily> detect_mesh(const Graph& g);
[[nodiscard]] std::optional<RecognizedFamily> detect_hypercube(
    const Graph& g);
[[nodiscard]] std::optional<RecognizedFamily> detect_complete_binary_tree(
    const Graph& g);
[[nodiscard]] std::optional<RecognizedFamily> detect_binomial_tree(
    const Graph& g);
[[nodiscard]] std::optional<RecognizedFamily> detect_star(const Graph& g);
[[nodiscard]] std::optional<RecognizedFamily> detect_complete(
    const Graph& g);

}  // namespace oregami
