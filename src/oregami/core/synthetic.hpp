// Seeded synthetic large-graph generators for the multilevel mapper's
// scale work: 2D/3D stencils (the regular-communication workload the
// torus targets were built for), random geometric graphs (irregular
// meshes), and power-law graphs (the skewed-degree worst case). These
// produce 10k-500k-task inputs that the LaRCS program library cannot
// (its programs are paper-scale); benches, scale tests, and property
// suites all share them.
//
// Every generator emits one comm phase + one exec phase with an Idle
// phase expression (each runs once), seeded volumes in [1, 16] and
// costs in [1, 32]. Fixed (shape, seed) => bit-identical graph.
#pragma once

#include <cstdint>

#include "oregami/core/task_graph.hpp"

namespace oregami {

/// 5-point 2D stencil on a rows x cols grid (no wraparound):
/// rows*cols tasks, edges to the +1 neighbor along each axis.
[[nodiscard]] TaskGraph make_stencil2d(int rows, int cols,
                                       std::uint64_t seed);

/// 7-point 3D stencil on an nx x ny x nz grid (no wraparound).
[[nodiscard]] TaskGraph make_stencil3d(int nx, int ny, int nz,
                                       std::uint64_t seed);

/// Random geometric graph: n points uniform in the unit square, edges
/// between pairs closer than `radius`. Built with a cell grid of side
/// `radius`, so construction is O(n + edges), not O(n^2). Radius around
/// 1.5/sqrt(n) gives average degree ~7.
[[nodiscard]] TaskGraph make_random_geometric(int n, double radius,
                                              std::uint64_t seed);

/// Power-law graph by preferential attachment: each new vertex draws
/// `edges_per_vertex` targets from the repeated-endpoint list (degree-
/// proportional sampling), duplicates collapse.
[[nodiscard]] TaskGraph make_power_law(int n, int edges_per_vertex,
                                       std::uint64_t seed);

}  // namespace oregami
