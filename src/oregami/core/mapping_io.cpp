#include "oregami/core/mapping_io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "oregami/support/error.hpp"

namespace oregami {

namespace {

// Buffered text emitter: integers are formatted with std::to_chars
// into one reusable buffer flushed in 64 KiB blocks, so writing a
// 100k-task mapping performs a few hundred stream writes instead of
// millions of operator<< calls (each of which pays locale machinery).
class BufferedWriter {
 public:
  explicit BufferedWriter(std::ostream& out) : out_(out) {
    buffer_.reserve(kFlushAt + 32);
  }
  ~BufferedWriter() { flush(); }

  void text(const char* s) {
    buffer_.append(s);
    maybe_flush();
  }
  void value(long long v) {
    char tmp[24];
    const auto result = std::to_chars(tmp, tmp + sizeof(tmp), v);
    buffer_.append(tmp, result.ptr);
    maybe_flush();
  }
  void flush() {
    out_.write(buffer_.data(),
               static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }

 private:
  static constexpr std::size_t kFlushAt = 64 * 1024;
  void maybe_flush() {
    if (buffer_.size() >= kFlushAt) {
      flush();
    }
  }

  std::ostream& out_;
  std::string buffer_;
};

}  // namespace

void write_mapping(std::ostream& out, const Mapping& mapping,
                   int num_procs) {
  BufferedWriter w(out);
  w.text("oregami-mapping v1\n");
  w.text("tasks ");
  w.value(static_cast<long long>(mapping.contraction.cluster_of_task.size()));
  w.text(" clusters ");
  w.value(mapping.contraction.num_clusters);
  w.text(" procs ");
  w.value(num_procs);
  w.text(" phases ");
  w.value(static_cast<long long>(mapping.routing.size()));
  w.text("\ncontraction");
  for (const int c : mapping.contraction.cluster_of_task) {
    w.text(" ");
    w.value(c);
  }
  w.text("\nembedding");
  for (const int p : mapping.embedding.proc_of_cluster) {
    w.text(" ");
    w.value(p);
  }
  w.text("\n");
  for (const auto& phase : mapping.routing) {
    w.text("phase ");
    w.value(static_cast<long long>(phase.route_of_edge.size()));
    w.text("\n");
    for (const auto& route : phase.route_of_edge) {
      w.text("route ");
      w.value(static_cast<long long>(route.nodes.size()));
      for (const int node : route.nodes) {
        w.text(" ");
        w.value(node);
      }
      w.text(" ");
      w.value(static_cast<long long>(route.links.size()));
      for (const int link : route.links) {
        w.text(" ");
        w.value(link);
      }
      w.text("\n");
    }
  }
}

std::string mapping_to_string(const Mapping& mapping, int num_procs) {
  std::ostringstream out;
  write_mapping(out, mapping, num_procs);
  return out.str();
}

namespace {

/// Whitespace tokenizer that remembers the line each token started on,
/// so every parse error can say exactly where the file went wrong.
/// Reads through the stream buffer directly (no per-character sentry)
/// and hands out a pointer to one reused token string, so scanning a
/// multi-megabyte mapping file allocates O(1) memory.
class Tokenizer {
 public:
  explicit Tokenizer(std::istream& in) : buf_(in.rdbuf()) {
    token_.reserve(32);
  }

  /// Line of the most recently returned token (1-based); for errors
  /// raised before any token is read (empty file) this is line 1.
  [[nodiscard]] int line() const { return token_line_; }

  /// Next whitespace-separated token, or nullptr at end of input. The
  /// pointee is owned by the tokenizer and overwritten by the next
  /// call.
  const std::string* next() {
    const auto eof = std::streambuf::traits_type::eof();
    int ch = buf_->sbumpc();
    while (ch != eof &&
           std::isspace(static_cast<unsigned char>(ch)) != 0) {
      if (ch == '\n') {
        ++line_;
      }
      ch = buf_->sbumpc();
    }
    if (ch == eof) {
      token_line_ = line_;
      return nullptr;
    }
    token_line_ = line_;
    token_.clear();
    while (ch != eof &&
           std::isspace(static_cast<unsigned char>(ch)) == 0) {
      token_.push_back(static_cast<char>(ch));
      ch = buf_->sbumpc();
    }
    if (ch == '\n') {
      ++line_;
    }
    return &token_;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw MappingError("mapping file line " + std::to_string(token_line_) +
                       ": " + message);
  }

  void expect(const std::string& expected) {
    const auto token = next();
    if (!token) {
      fail("expected '" + expected + "', found end of file");
    }
    if (*token != expected) {
      fail("expected '" + expected + "', found '" + *token + "'");
    }
  }

  /// Reads one integer in [min_value, max_value]; rejects trailing
  /// garbage ("12x"), missing tokens, and out-of-range values with a
  /// located message naming `what`.
  long read_int(const char* what, long min_value, long max_value) {
    const auto token = next();
    if (!token) {
      fail(std::string("expected ") + what + ", found end of file");
    }
    long value = 0;
    std::size_t used = 0;
    try {
      value = std::stol(*token, &used);
    } catch (const std::exception&) {
      fail(std::string("bad ") + what + " '" + *token + "'");
    }
    if (used != token->size()) {
      fail(std::string("bad ") + what + " '" + *token + "'");
    }
    if (value < min_value || value > max_value) {
      fail(std::string(what) + " " + *token + " out of range [" +
           std::to_string(min_value) + ", " + std::to_string(max_value) +
           "]");
    }
    return value;
  }

 private:
  std::streambuf* buf_;
  std::string token_;   ///< reused token storage (next() overwrites)
  int line_ = 1;        ///< line the read cursor is on
  int token_line_ = 1;  ///< line the last token started on
};

/// Cap on any single up-front reserve while reading. Header counts are
/// range-validated, but a corrupt file can still declare counts far
/// beyond its actual payload, and reserving from a lie would allocate
/// gigabytes before the first missing entry fails the parse. One
/// million entries (4 MiB of ints) is enough to give every well-formed
/// file up to ~1M tasks a single exact reservation; larger files still
/// parse, they just fall back to push_back growth past the cap.
constexpr long kReserveCap = 1'000'000;

}  // namespace

Mapping read_mapping(std::istream& in, int* num_procs_out) {
  Tokenizer tok(in);
  tok.expect("oregami-mapping");
  tok.expect("v1");
  tok.expect("tasks");
  const long tasks = tok.read_int("task count", 0, 100'000'000);
  tok.expect("clusters");
  const long clusters = tok.read_int("cluster count", 0, tasks);
  tok.expect("procs");
  const long procs = tok.read_int("processor count", 0, 100'000'000);
  tok.expect("phases");
  const long phases = tok.read_int("phase count", 0, 1'000'000);
  if (num_procs_out != nullptr) {
    *num_procs_out = static_cast<int>(procs);
  }

  // Grow every container entry by entry rather than trusting the
  // declared counts with an up-front resize: a corrupted header must
  // fail on its first missing entry, not allocate gigabytes first.
  // Reserves use the validated counts clamped to kReserveCap, so a
  // 100k-task file takes one exact allocation per container instead of
  // log(n) doubling reallocations.
  Mapping mapping;
  mapping.contraction.num_clusters = static_cast<int>(clusters);
  tok.expect("contraction");
  mapping.contraction.cluster_of_task.reserve(
      static_cast<std::size_t>(std::min(tasks, kReserveCap)));
  for (long i = 0; i < tasks; ++i) {
    mapping.contraction.cluster_of_task.push_back(
        static_cast<int>(tok.read_int("contraction entry", 0, clusters - 1)));
  }
  tok.expect("embedding");
  mapping.embedding.proc_of_cluster.reserve(
      static_cast<std::size_t>(std::min(clusters, kReserveCap)));
  for (long i = 0; i < clusters; ++i) {
    mapping.embedding.proc_of_cluster.push_back(
        static_cast<int>(tok.read_int("embedding entry", 0, procs - 1)));
  }
  for (long k = 0; k < phases; ++k) {
    tok.expect("phase");
    const long edges = tok.read_int("edge count", 0, 100'000'000);
    PhaseRouting routing;
    routing.route_of_edge.reserve(
        static_cast<std::size_t>(std::min(edges, kReserveCap)));
    for (long i = 0; i < edges; ++i) {
      Route route;
      tok.expect("route");
      const long nodes = tok.read_int("route node count", 1, 1'000'000);
      route.nodes.reserve(
          static_cast<std::size_t>(std::min(nodes, kReserveCap)));
      for (long j = 0; j < nodes; ++j) {
        route.nodes.push_back(
            static_cast<int>(tok.read_int("route node", 0, procs - 1)));
      }
      const long links = tok.read_int("route link count", 0, 1'000'000);
      if (links != nodes - 1) {
        tok.fail("route link count must be node count - 1 (" +
                 std::to_string(nodes) + " nodes, " +
                 std::to_string(links) + " links)");
      }
      route.links.reserve(
          static_cast<std::size_t>(std::min(links, kReserveCap)));
      for (long j = 0; j < links; ++j) {
        route.links.push_back(
            static_cast<int>(tok.read_int("route link", 0, 100'000'000)));
      }
      routing.route_of_edge.push_back(std::move(route));
    }
    mapping.routing.push_back(std::move(routing));
  }
  mapping.contraction.validate(static_cast<int>(tasks));
  mapping.embedding.validate(static_cast<int>(procs));
  return mapping;
}

Mapping mapping_from_string(const std::string& text, int* num_procs_out) {
  std::istringstream in(text);
  return read_mapping(in, num_procs_out);
}

}  // namespace oregami
