#include "oregami/core/mapping_io.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>

#include "oregami/support/error.hpp"

namespace oregami {

void write_mapping(std::ostream& out, const Mapping& mapping,
                   int num_procs) {
  out << "oregami-mapping v1\n";
  out << "tasks " << mapping.contraction.cluster_of_task.size()
      << " clusters " << mapping.contraction.num_clusters << " procs "
      << num_procs << " phases " << mapping.routing.size() << "\n";
  out << "contraction";
  for (const int c : mapping.contraction.cluster_of_task) {
    out << ' ' << c;
  }
  out << "\nembedding";
  for (const int p : mapping.embedding.proc_of_cluster) {
    out << ' ' << p;
  }
  out << "\n";
  for (const auto& phase : mapping.routing) {
    out << "phase " << phase.route_of_edge.size() << "\n";
    for (const auto& route : phase.route_of_edge) {
      out << "route " << route.nodes.size();
      for (const int node : route.nodes) {
        out << ' ' << node;
      }
      out << ' ' << route.links.size();
      for (const int link : route.links) {
        out << ' ' << link;
      }
      out << "\n";
    }
  }
}

std::string mapping_to_string(const Mapping& mapping, int num_procs) {
  std::ostringstream out;
  write_mapping(out, mapping, num_procs);
  return out.str();
}

namespace {

/// Whitespace tokenizer that remembers the line each token started on,
/// so every parse error can say exactly where the file went wrong.
class Tokenizer {
 public:
  explicit Tokenizer(std::istream& in) : in_(in) {}

  /// Line of the most recently returned token (1-based); for errors
  /// raised before any token is read (empty file) this is line 1.
  [[nodiscard]] int line() const { return token_line_; }

  /// Next whitespace-separated token, or nullopt at end of input.
  std::optional<std::string> next() {
    int ch = in_.get();
    while (ch != std::istream::traits_type::eof() &&
           std::isspace(static_cast<unsigned char>(ch)) != 0) {
      if (ch == '\n') {
        ++line_;
      }
      ch = in_.get();
    }
    if (ch == std::istream::traits_type::eof()) {
      token_line_ = line_;
      return std::nullopt;
    }
    token_line_ = line_;
    std::string token;
    while (ch != std::istream::traits_type::eof() &&
           std::isspace(static_cast<unsigned char>(ch)) == 0) {
      token.push_back(static_cast<char>(ch));
      ch = in_.get();
    }
    if (ch == '\n') {
      ++line_;
    }
    return token;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw MappingError("mapping file line " + std::to_string(token_line_) +
                       ": " + message);
  }

  void expect(const std::string& expected) {
    const auto token = next();
    if (!token) {
      fail("expected '" + expected + "', found end of file");
    }
    if (*token != expected) {
      fail("expected '" + expected + "', found '" + *token + "'");
    }
  }

  /// Reads one integer in [min_value, max_value]; rejects trailing
  /// garbage ("12x"), missing tokens, and out-of-range values with a
  /// located message naming `what`.
  long read_int(const char* what, long min_value, long max_value) {
    const auto token = next();
    if (!token) {
      fail(std::string("expected ") + what + ", found end of file");
    }
    long value = 0;
    std::size_t used = 0;
    try {
      value = std::stol(*token, &used);
    } catch (const std::exception&) {
      fail(std::string("bad ") + what + " '" + *token + "'");
    }
    if (used != token->size()) {
      fail(std::string("bad ") + what + " '" + *token + "'");
    }
    if (value < min_value || value > max_value) {
      fail(std::string(what) + " " + *token + " out of range [" +
           std::to_string(min_value) + ", " + std::to_string(max_value) +
           "]");
    }
    return value;
  }

 private:
  std::istream& in_;
  int line_ = 1;        ///< line the read cursor is on
  int token_line_ = 1;  ///< line the last token started on
};

}  // namespace

Mapping read_mapping(std::istream& in, int* num_procs_out) {
  Tokenizer tok(in);
  tok.expect("oregami-mapping");
  tok.expect("v1");
  tok.expect("tasks");
  const long tasks = tok.read_int("task count", 0, 100'000'000);
  tok.expect("clusters");
  const long clusters = tok.read_int("cluster count", 0, tasks);
  tok.expect("procs");
  const long procs = tok.read_int("processor count", 0, 100'000'000);
  tok.expect("phases");
  const long phases = tok.read_int("phase count", 0, 1'000'000);
  if (num_procs_out != nullptr) {
    *num_procs_out = static_cast<int>(procs);
  }

  // Grow every container entry by entry rather than trusting the
  // declared counts with an up-front resize: a corrupted header must
  // fail on its first missing entry, not allocate gigabytes first.
  Mapping mapping;
  mapping.contraction.num_clusters = static_cast<int>(clusters);
  tok.expect("contraction");
  mapping.contraction.cluster_of_task.reserve(
      static_cast<std::size_t>(std::min(tasks, 4096L)));
  for (long i = 0; i < tasks; ++i) {
    mapping.contraction.cluster_of_task.push_back(
        static_cast<int>(tok.read_int("contraction entry", 0, clusters - 1)));
  }
  tok.expect("embedding");
  mapping.embedding.proc_of_cluster.reserve(
      static_cast<std::size_t>(std::min(clusters, 4096L)));
  for (long i = 0; i < clusters; ++i) {
    mapping.embedding.proc_of_cluster.push_back(
        static_cast<int>(tok.read_int("embedding entry", 0, procs - 1)));
  }
  for (long k = 0; k < phases; ++k) {
    tok.expect("phase");
    const long edges = tok.read_int("edge count", 0, 100'000'000);
    PhaseRouting routing;
    routing.route_of_edge.reserve(
        static_cast<std::size_t>(std::min(edges, 4096L)));
    for (long i = 0; i < edges; ++i) {
      Route route;
      tok.expect("route");
      const long nodes = tok.read_int("route node count", 1, 1'000'000);
      route.nodes.reserve(static_cast<std::size_t>(std::min(nodes, 4096L)));
      for (long j = 0; j < nodes; ++j) {
        route.nodes.push_back(
            static_cast<int>(tok.read_int("route node", 0, procs - 1)));
      }
      const long links = tok.read_int("route link count", 0, 1'000'000);
      if (links != nodes - 1) {
        tok.fail("route link count must be node count - 1 (" +
                 std::to_string(nodes) + " nodes, " +
                 std::to_string(links) + " links)");
      }
      route.links.reserve(static_cast<std::size_t>(std::min(links, 4096L)));
      for (long j = 0; j < links; ++j) {
        route.links.push_back(
            static_cast<int>(tok.read_int("route link", 0, 100'000'000)));
      }
      routing.route_of_edge.push_back(std::move(route));
    }
    mapping.routing.push_back(std::move(routing));
  }
  mapping.contraction.validate(static_cast<int>(tasks));
  mapping.embedding.validate(static_cast<int>(procs));
  return mapping;
}

Mapping mapping_from_string(const std::string& text, int* num_procs_out) {
  std::istringstream in(text);
  return read_mapping(in, num_procs_out);
}

}  // namespace oregami
