#include "oregami/core/mapping_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "oregami/support/error.hpp"

namespace oregami {

void write_mapping(std::ostream& out, const Mapping& mapping,
                   int num_procs) {
  out << "oregami-mapping v1\n";
  out << "tasks " << mapping.contraction.cluster_of_task.size()
      << " clusters " << mapping.contraction.num_clusters << " procs "
      << num_procs << " phases " << mapping.routing.size() << "\n";
  out << "contraction";
  for (const int c : mapping.contraction.cluster_of_task) {
    out << ' ' << c;
  }
  out << "\nembedding";
  for (const int p : mapping.embedding.proc_of_cluster) {
    out << ' ' << p;
  }
  out << "\n";
  for (const auto& phase : mapping.routing) {
    out << "phase " << phase.route_of_edge.size() << "\n";
    for (const auto& route : phase.route_of_edge) {
      out << "route " << route.nodes.size();
      for (const int node : route.nodes) {
        out << ' ' << node;
      }
      out << ' ' << route.links.size();
      for (const int link : route.links) {
        out << ' ' << link;
      }
      out << "\n";
    }
  }
}

std::string mapping_to_string(const Mapping& mapping, int num_procs) {
  std::ostringstream out;
  write_mapping(out, mapping, num_procs);
  return out.str();
}

namespace {

void expect_token(std::istream& in, const std::string& expected) {
  std::string token;
  if (!(in >> token) || token != expected) {
    throw MappingError("mapping file: expected '" + expected + "'" +
                       (token.empty() ? "" : ", found '" + token + "'"));
  }
}

long read_count(std::istream& in, const char* what, long max_value) {
  long value = 0;
  if (!(in >> value) || value < 0 || value > max_value) {
    throw MappingError(std::string("mapping file: bad ") + what);
  }
  return value;
}

}  // namespace

Mapping read_mapping(std::istream& in, int* num_procs_out) {
  expect_token(in, "oregami-mapping");
  expect_token(in, "v1");
  expect_token(in, "tasks");
  const long tasks = read_count(in, "task count", 100'000'000);
  expect_token(in, "clusters");
  const long clusters = read_count(in, "cluster count", tasks);
  expect_token(in, "procs");
  const long procs = read_count(in, "processor count", 100'000'000);
  expect_token(in, "phases");
  const long phases = read_count(in, "phase count", 1'000'000);
  if (num_procs_out != nullptr) {
    *num_procs_out = static_cast<int>(procs);
  }

  Mapping mapping;
  mapping.contraction.num_clusters = static_cast<int>(clusters);
  mapping.contraction.cluster_of_task.resize(
      static_cast<std::size_t>(tasks));
  expect_token(in, "contraction");
  for (auto& c : mapping.contraction.cluster_of_task) {
    if (!(in >> c) || c < 0 || c >= clusters) {
      throw MappingError("mapping file: bad contraction entry");
    }
  }
  expect_token(in, "embedding");
  mapping.embedding.proc_of_cluster.resize(
      static_cast<std::size_t>(clusters));
  for (auto& p : mapping.embedding.proc_of_cluster) {
    if (!(in >> p) || p < 0 || p >= procs) {
      throw MappingError("mapping file: bad embedding entry");
    }
  }
  for (long k = 0; k < phases; ++k) {
    expect_token(in, "phase");
    const long edges = read_count(in, "edge count", 100'000'000);
    PhaseRouting routing;
    routing.route_of_edge.resize(static_cast<std::size_t>(edges));
    for (auto& route : routing.route_of_edge) {
      expect_token(in, "route");
      const long nodes = read_count(in, "route node count", 1'000'000);
      if (nodes == 0) {
        throw MappingError("mapping file: a route needs >= 1 node");
      }
      route.nodes.resize(static_cast<std::size_t>(nodes));
      for (auto& node : route.nodes) {
        if (!(in >> node) || node < 0 || node >= procs) {
          throw MappingError("mapping file: bad route node");
        }
      }
      const long links = read_count(in, "route link count", 1'000'000);
      if (links != nodes - 1) {
        throw MappingError(
            "mapping file: link count must be node count - 1");
      }
      route.links.resize(static_cast<std::size_t>(links));
      for (auto& link : route.links) {
        if (!(in >> link) || link < 0) {
          throw MappingError("mapping file: bad route link");
        }
      }
    }
    mapping.routing.push_back(std::move(routing));
  }
  mapping.contraction.validate(static_cast<int>(tasks));
  mapping.embedding.validate(static_cast<int>(procs));
  return mapping;
}

Mapping mapping_from_string(const std::string& text, int* num_procs_out) {
  std::istringstream in(text);
  return read_mapping(in, num_procs_out);
}

}  // namespace oregami
