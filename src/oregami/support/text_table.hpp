// A tiny fixed-width text table writer used by METRICS reports, the
// bench harnesses and the examples. Produces aligned, monospace tables
// mirroring the tabular displays of the original METRICS tool.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace oregami {

/// Accumulates rows of cells and renders them with per-column alignment.
///
/// Usage:
///   TextTable t({"proc", "tasks", "load"});
///   t.add_row({"0", "4", "120"});
///   std::cout << t.to_string();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; it may have fewer cells than the header (missing
  /// cells render empty) but not more.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a header underline, columns padded to the
  /// widest cell, two spaces between columns.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places after the point (no locale).
[[nodiscard]] std::string format_fixed(double value, int digits);

}  // namespace oregami
