#include "oregami/support/text_table.hpp"

#include <algorithm>
#include <cstdio>

#include "oregami/support/error.hpp"

namespace oregami {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  OREGAMI_ASSERT(cells.size() <= header_.size(),
                 "row has more cells than the table header");
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace oregami
