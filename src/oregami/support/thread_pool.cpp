#include "oregami/support/thread_pool.hpp"

#include <algorithm>

namespace oregami {

int ThreadPool::resolve_workers(int jobs) {
  if (jobs > 0) {
    return jobs;
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_workers) {
  const int count = resolve_workers(num_workers);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ set and nothing left to drain
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions land in the task's future
  }
}

}  // namespace oregami
