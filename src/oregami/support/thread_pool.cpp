#include "oregami/support/thread_pool.hpp"

#include <algorithm>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace oregami {

namespace {
/// Set by worker_loop; -1 everywhere else (main thread, detached
/// threads, workers of a pool that has been destroyed -- the value is
/// reset before join so a reused OS thread never leaks an index).
thread_local int tl_worker_index = -1;
}  // namespace

int ThreadPool::resolve_workers(int jobs) {
  if (jobs > 0) {
    return jobs;
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

int ThreadPool::current_worker_index() { return tl_worker_index; }

ThreadPool::ThreadPool(int num_workers, const char* name) {
  const int count = resolve_workers(num_workers);
  const std::string base(name == nullptr ? "oregami-w" : name);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back(
        [this, i, worker_name = base + "#" + std::to_string(i)] {
          worker_loop(i, worker_name);
        });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> job) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop(int worker_index, const std::string& name) {
  tl_worker_index = worker_index;
#if defined(__linux__)
  // Linux caps thread names at 15 chars + NUL; truncate rather than
  // fail (pthread_setname_np errors on longer strings).
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
  (void)name;
#endif
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        tl_worker_index = -1;
        return;  // stopping_ set and nothing left to drain
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // submit() wraps every task in a packaged_task, which stores the
    // task's exception in its future -- but a raw enqueue'd job (or a
    // packaged_task whose *move/dtor* throws) would otherwise unwind
    // the worker and terminate the process, dropping every queued task
    // AND any trace events those tasks would have flushed. Contain it:
    // a throwing job kills only itself, never the worker.
    try {
      job();
    } catch (...) {
      // Swallowed by design: result-carrying tasks report through
      // their future; anything else has no channel to report on.
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace oregami
