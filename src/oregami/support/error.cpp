#include "oregami/support/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace oregami {

std::string SourceLoc::to_string() const {
  return std::to_string(line) + ":" + std::to_string(column);
}

LarcsError::LarcsError(std::string message, SourceLoc loc)
    : std::runtime_error("LaRCS error at " + loc.to_string() + ": " +
                         message),
      loc_(loc) {}

LarcsError::LarcsError(std::string message)
    : std::runtime_error("LaRCS error: " + std::move(message)) {}

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::fprintf(stderr, "OREGAMI internal invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, message.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace oregami
