#pragma once
// Process-wide metrics registry: counters, gauges, and fixed-bucket
// log2 latency histograms with quantile interpolation.
//
// Design contract (mirrors trace.hpp):
//   * Disabled hot path: one relaxed atomic load per metric site, no
//     allocation, no locks.
//   * Enabled hot path: one (counter/gauge) or two (histogram: bucket +
//     sum) relaxed atomic RMWs on a thread-striped cell. Zero heap
//     allocation after registration.
//   * Snapshots merge stripes under the registry mutex and are sorted
//     by series name, so exposition is deterministic for a given set of
//     recorded values.
//   * Deterministic mode (set_deterministic(true)) zeroes every value a
//     scheduler could perturb: histograms record 0 instead of measured
//     durations, and series registered as Determinism::Volatile (queue
//     depths, dedup joins, ...) are zeroed at snapshot time. Counts of
//     deterministic events are kept, so snapshots of the same input
//     stream are byte-identical across thread counts.
//
// Series names carry optional Prometheus labels inline:
//   metrics::counter("oregami_server_jobs_total{outcome=\"hit\"}")
// The exposition writer splits the name at '{' to group series under
// one `# TYPE` line per metric family.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace oregami::metrics {

namespace detail {
// Single global switch; inline fast-path guard reads it relaxed.
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_deterministic;
inline constexpr int kStripes = 8;
// Returns this thread's stripe index (round-robin assigned, stable for
// the thread's lifetime).
int stripe_index();
}  // namespace detail

[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool deterministic() {
  return detail::g_deterministic.load(std::memory_order_relaxed);
}

void enable();
void disable();
// When true, histogram records are clamped to 0 and Volatile series are
// zeroed in snapshots; see the header comment.
void set_deterministic(bool on);

// Whether a series participates in the deterministic byte-diff
// contract. Volatile series (thread-schedule artefacts: queue depth,
// single-flight joins) are zeroed in deterministic snapshots.
enum class Determinism { kStable, kVolatile };

inline constexpr int kHistogramBuckets = 64;

class Counter {
 public:
  Counter() = default;
  void add(std::int64_t n) {
    if (!enabled()) return;
    cells_[detail::stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  // Merged value across stripes (test/snapshot path, not hot).
  [[nodiscard]] std::int64_t value() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  Cell cells_[detail::kStripes];
};

// Gauges are set/adjusted from cold paths (admission control), so a
// single atomic cell suffices: `set` has last-writer-wins semantics
// that striping cannot provide.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed log2 buckets: bucket 0 holds v <= 0 (and exact zeros recorded
// in deterministic mode); bucket b in [1, 62] holds [2^(b-1), 2^b - 1];
// bucket 63 holds everything >= 2^62.
[[nodiscard]] int histogram_bucket(std::int64_t v);
// Inclusive upper bound of a bucket; bucket 63 has no finite bound and
// returns INT64_MAX.
[[nodiscard]] std::int64_t histogram_bucket_upper(int bucket);
[[nodiscard]] std::int64_t histogram_bucket_lower(int bucket);

struct HistogramSnapshot {
  std::uint64_t buckets[kHistogramBuckets]{};
  std::int64_t sum = 0;
  [[nodiscard]] std::uint64_t count() const;
  // Quantile by linear interpolation inside the owning log2 bucket
  // (Prometheus histogram_quantile semantics: rank = q * count).
  [[nodiscard]] double quantile(double q) const;
};

class Histogram {
 public:
  Histogram() = default;
  void record(std::int64_t v) {
    if (!enabled()) return;
    if (deterministic()) v = 0;
    auto& s = stripes_[detail::stripe_index()];
    s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::int64_t sum() const;
  // Accumulates merged stripe counts into `snap` (snapshot path).
  void merge_into(HistogramSnapshot& snap) const;
  void reset();

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> buckets[kHistogramBuckets]{};
    std::atomic<std::int64_t> sum{0};
  };
  Stripe stripes_[detail::kStripes];
};

// --- Registration -----------------------------------------------------
// Registration is idempotent: the same name always returns the same
// object. Registering a name under two different metric kinds throws
// std::logic_error. References stay valid for the process lifetime.
Counter& counter(std::string_view name,
                 Determinism det = Determinism::kStable);
Gauge& gauge(std::string_view name, Determinism det = Determinism::kStable);
Histogram& histogram(std::string_view name,
                     Determinism det = Determinism::kStable);

// --- Snapshots & exposition ------------------------------------------
struct SeriesValue {
  std::string name;  // full series name including any {labels}
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  std::int64_t scalar = 0;      // counter/gauge value
  HistogramSnapshot histogram;  // kind == kHistogram only
};

struct Snapshot {
  std::vector<SeriesValue> series;  // sorted by name
  // Convenience lookups; return nullptr when the series is absent.
  [[nodiscard]] const SeriesValue* find(std::string_view name) const;
};

// Merges stripes under the registry mutex. When the process is in
// deterministic mode, Volatile series are zeroed.
[[nodiscard]] Snapshot snapshot();

// Prometheus text exposition format, `# TYPE` line per family,
// cumulative `le` buckets + `_sum`/`_count` per histogram.
void write_prometheus(std::ostream& out, const Snapshot& snap);
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

// Atomically publish the current snapshot to `path` (temp file in the
// same directory + rename). Returns false (and leaves any previous file
// intact) when the path is unwritable.
bool write_prometheus_file(const std::string& path);

// Zeroes every registered value but keeps registrations and the
// enabled/deterministic flags. Test + bench support.
void reset_values();

}  // namespace oregami::metrics
