#include "oregami/support/rng.hpp"

#include "oregami/support/error.hpp"

namespace oregami {

std::uint64_t SplitMix64::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t SplitMix64::next_below(std::uint64_t bound) {
  OREGAMI_ASSERT(bound > 0, "next_below requires a positive bound");
  // Multiply-shift reduction (Lemire); bias is < 2^-64 * bound which is
  // negligible for workload synthesis.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
}

std::int64_t SplitMix64::next_in(std::int64_t lo, std::int64_t hi) {
  OREGAMI_ASSERT(lo <= hi, "next_in requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double SplitMix64::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace oregami
