// Stable 64-bit FNV-1a hashing combinators for content-addressed
// digests (the mapping server's result cache keys every job by a
// canonical digest of its inputs).
//
// Stability contract: the digest of a byte sequence is a pure function
// of the bytes -- no pointers, no iteration-order dependence, no
// platform word size leaks. Every multi-byte integer is folded in
// little-endian fixed width, and every variable-length field is
// length-prefixed, so "ab" + "c" never collides with "a" + "bc" and a
// digest pinned in a test stays pinned across runs, --jobs values, and
// machines. Changing any of the fold rules below is a cache-format
// break and must bump kDigestVersion.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace oregami {

/// Bump when the canonical fold rules change: the version is folded
/// into every digest, so stale cache keys can never alias new ones.
inline constexpr std::uint64_t kDigestVersion = 1;

/// Incremental FNV-1a (64-bit) with length-prefixed combinators.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ULL;

  /// Folds raw bytes (no length prefix; use the typed combinators for
  /// anything variable-length).
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= p[i];
      state_ *= kPrime;
    }
  }

  /// Folds a u64 as 8 little-endian bytes (fixed width on every
  /// platform).
  void u64(std::uint64_t v) {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    bytes(buf, sizeof(buf));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(int v) { u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void boolean(bool v) { u64(v ? 1 : 0); }

  /// Length-prefixed string fold.
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffset;
};

/// 16 lowercase hex characters, zero-padded (the wire format of a
/// digest).
[[nodiscard]] inline std::string digest_hex(std::uint64_t digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

}  // namespace oregami
