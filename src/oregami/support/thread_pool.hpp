// A small fixed-size thread pool for MAPPER's parallel passes (the
// portfolio mapper today; sharded/batched mapping services later).
//
// Design constraints, in order:
//   * determinism support -- the pool never reorders results for the
//     caller: submit() hands back a std::future, so a submitter that
//     collects futures in submission order observes a schedule-
//     independent result sequence;
//   * exception propagation -- a task that throws stores its exception
//     in the future (std::packaged_task semantics); nothing escapes
//     into the worker threads;
//   * no work stealing, no task priorities, no dynamic resizing: a
//     single FIFO queue drained by a fixed set of workers is enough for
//     coarse-grained mapping candidates and keeps the implementation
//     auditable under TSan.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace oregami {

class ThreadPool {
 public:
  /// Starts `num_workers` worker threads; `num_workers` <= 0 selects
  /// std::thread::hardware_concurrency() (at least 1). `name` labels
  /// the workers ("<name>#<index>" as the OS thread name, truncated to
  /// the platform limit) so traces and debuggers attribute work to the
  /// right lane.
  explicit ThreadPool(int num_workers, const char* name = "oregami-w");

  /// Drains the queue (pending tasks still run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_workers() const {
    return static_cast<int>(workers_.size());
  }

  /// Resolves the worker count the constructor would use for `jobs`.
  [[nodiscard]] static int resolve_workers(int jobs);

  /// Number of submitted tasks that have not finished yet (queued +
  /// currently running). Lock-free: a single relaxed atomic read, so
  /// admission-control checks on a hot ingest path never contend with
  /// the workers. The value is monotone only per observer -- it is a
  /// snapshot, not a fence -- which is exactly what a bounded-queue
  /// admission test needs.
  [[nodiscard]] int pending() const {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Stable index of the calling pool worker within its pool
  /// (0 .. num_workers-1), or -1 when the caller is not a pool worker.
  /// Trace events record this so a span can be attributed to the
  /// physical lane that ran it (it is *volatile* metadata: which
  /// worker runs which task is scheduling-dependent, so exporters
  /// strip it alongside wall times in canonical output).
  [[nodiscard]] static int current_worker_index();

  /// Enqueues `task` and returns the future of its result. Safe to call
  /// from multiple threads and from within pool tasks (the pool never
  /// blocks a worker on submit). If the task throws, the exception is
  /// captured and rethrown from future::get().
  template <typename F>
  [[nodiscard]] auto submit(F task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // shared_ptr because std::function requires a copyable callable and
    // packaged_task is move-only.
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::move(task));
    std::future<R> result = packaged->get_future();
    enqueue([packaged]() { (*packaged)(); });
    return result;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop(int worker_index, const std::string& name);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  /// Submitted-but-unfinished task count (see pending()).
  std::atomic<int> pending_{0};
};

}  // namespace oregami
