// Error handling primitives shared across the OREGAMI library.
//
// OREGAMI distinguishes three failure kinds:
//   * `LarcsError`   -- malformed LaRCS source (lexer/parser/compiler),
//                       carries a source location.
//   * `MappingError` -- a mapping algorithm was invoked on inputs that
//                       violate its documented preconditions (e.g. more
//                       clusters than processors).
//   * logic bugs     -- internal invariant violations, checked with
//                       OREGAMI_ASSERT and fatal in all build types.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace oregami {

/// A position in a LaRCS source text (1-based line/column).
struct SourceLoc {
  int line = 0;
  int column = 0;

  /// Renders as "line:column" for diagnostics.
  [[nodiscard]] std::string to_string() const;
};

/// Raised for malformed LaRCS programs; `loc()` points at the offending
/// token when known.
class LarcsError : public std::runtime_error {
 public:
  LarcsError(std::string message, SourceLoc loc);
  explicit LarcsError(std::string message);

  [[nodiscard]] const SourceLoc& loc() const noexcept { return loc_; }

 private:
  SourceLoc loc_;
};

/// Raised when a MAPPER/METRICS operation is given inputs that violate
/// its preconditions (not a bug in OREGAMI, a misuse by the caller).
class MappingError : public std::runtime_error {
 public:
  explicit MappingError(const std::string& message)
      : std::runtime_error(message) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

/// Internal invariant check; active in every build type because mapping
/// results feed downstream decisions and silent corruption is worse than
/// an abort.
#define OREGAMI_ASSERT(expr, message)                                    \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::oregami::detail::assert_fail(#expr, __FILE__, __LINE__,          \
                                     (message));                         \
    }                                                                    \
  } while (false)

}  // namespace oregami
