// The wall-clock deadline idiom shared by the portfolio search, the
// repair ladder, the annealing chain, and the list scheduler:
//   budget == 0  -> no deadline; the clock is never read;
//   budget  < 0  -> already expired; the clock is never read, so the
//                   degraded behaviour is bit-deterministic (used by
//                   the deadline tests);
//   budget  > 0  -> passed() compares against steady_clock.
// Non-positive budgets therefore never introduce timing dependence.
#pragma once

#include <chrono>
#include <cstdint>

namespace oregami {

class Deadline {
 public:
  explicit Deadline(std::int64_t budget_ms) {
    if (budget_ms == 0) {
      mode_ = Mode::None;
    } else if (budget_ms < 0) {
      mode_ = Mode::Expired;
    } else {
      mode_ = Mode::Timed;
      at_ = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(budget_ms);
    }
  }

  [[nodiscard]] bool passed() const {
    switch (mode_) {
      case Mode::None:
        return false;
      case Mode::Expired:
        return true;
      case Mode::Timed:
        return std::chrono::steady_clock::now() >= at_;
    }
    return false;
  }

  /// True when passed() might consult the clock (budget > 0); lets
  /// hot loops skip the syscall entirely for deterministic modes.
  [[nodiscard]] bool timed() const { return mode_ == Mode::Timed; }

 private:
  enum class Mode { None, Expired, Timed };
  Mode mode_ = Mode::None;
  std::chrono::steady_clock::time_point at_;
};

}  // namespace oregami
