// Structured pipeline tracing: nested spans + counters + instant
// events for the LaRCS -> MAPPER -> METRICS pipeline, with two
// exporters (Chrome trace-event JSON and an ASCII summary tree) and a
// determinism contract strong enough to sit inside the portfolio
// mapper's bit-deterministic fan-out.
//
// Design constraints, in order:
//   * near-zero overhead when disabled -- every entry point starts with
//     a single relaxed atomic load and returns before touching memory:
//     no allocation, no clock read, no thread-local registration;
//   * thread safety without contention -- each thread records into its
//     own buffer (registered once under a mutex, then lock-free for the
//     thread); buffers are owned by the global registry via shared_ptr,
//     so events survive worker exceptions and thread exit, and flush
//     never blocks recording;
//   * deterministic output -- events are keyed by a stable *span path*
//     ("portfolio/cand#3/contract") plus a per-thread sequence number,
//     and the exporters order events by (path, seq), never by wall
//     time or completion order. Wall times, durations, and the
//     physical worker index are *volatile* fields: the canonical
//     export mode zeroes them (and CI strips them with
//     tools/check_trace.py), so a traced run is byte-identical across
//     --jobs values and across repeated runs.
//
// The path key makes determinism a local property of the
// instrumentation: as long as concurrent lanes use distinct path
// prefixes (the portfolio gives every candidate its own LaneScope),
// no two threads ever emit the same path, so the (path, seq) order is
// schedule-independent.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace oregami::trace {

/// One recorded event. Spans are recorded as a single event at close
/// (Chrome "complete" semantics); counters and instants are points.
struct Event {
  enum class Kind { Span, Counter, Instant };

  Kind kind = Kind::Instant;
  /// Full slash-separated span path; the stable primary sort key.
  std::string path;
  /// Deterministic argument payload ("k=v; k=v"), exported under args.
  std::string args;
  /// Counter value (Kind::Counter only).
  std::int64_t value = 0;
  /// Logical lane (Chrome tid): 0 = main flow; the portfolio assigns
  /// candidate id + 1. Deterministic.
  int lane = 0;
  /// Nesting depth of the span's parent chain (for the summary tree).
  int depth = 0;
  /// -- volatile fields (zeroed by canonical export) --
  std::int64_t start_us = 0;  ///< microseconds since tracer enable
  std::int64_t dur_us = 0;    ///< span duration (Kind::Span only)
  int worker = -1;            ///< physical ThreadPool worker, -1 = none
  /// Per-thread monotone sequence, assigned at span *open* (so it
  /// matches program order); secondary sort key. Not exported.
  std::uint64_t seq = 0;
};

/// The single global enable flag; reading it is the entire cost of a
/// disabled trace point.
[[nodiscard]] bool enabled();

/// Turns tracing on (resets the epoch clock the first time).
void enable();

/// Turns tracing off; already-buffered events are kept until clear().
void disable();

/// Drops every buffered event and detaches all thread buffers (they
/// lazily re-register on next use). Safe while threads are idle.
void clear();

/// RAII nested span. Constructing while disabled is a no-op (one
/// relaxed load); the span stays inert even if tracing is enabled
/// mid-lifetime, so open/close always pair.
class Span {
 public:
  explicit Span(std::string_view name);
  Span(std::string_view name, std::string args);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
};

/// Records a counter sample at the current span path.
void counter(std::string_view name, std::int64_t value);

/// Records an instant event at the current span path.
void instant(std::string_view name, std::string args = {});

/// Re-bases the calling thread's span context: subsequent spans nest
/// under `path` and carry logical lane `lane`. The portfolio opens one
/// per candidate task, so a candidate's events land under the same
/// deterministic path no matter which worker ran it. Restores the
/// previous context on destruction.
class LaneScope {
 public:
  LaneScope(std::string path, int lane);
  ~LaneScope();

  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  bool active_ = false;
  std::string saved_path_;
  int saved_lane_ = 0;
  int saved_depth_ = 0;
};

/// Merges every thread buffer and returns the events in canonical
/// (path, seq) order. Non-destructive; callable any time.
[[nodiscard]] std::vector<Event> snapshot();

struct ExportOptions {
  /// Zero the volatile fields (start_us, dur_us, worker) so the output
  /// is byte-identical across runs and --jobs values. The CLI writes
  /// real timings; tests compare canonical exports.
  bool canonical = false;
};

/// Chrome trace-event JSON ({"traceEvents": [...]}): loads in
/// chrome://tracing and Perfetto. Spans become "X" (complete) events,
/// counters "C", instants "i". Deterministic field order; volatile
/// fields are emitted adjacently so tools/check_trace.py can strip
/// them with one pass.
void write_chrome_json(std::ostream& out, const std::vector<Event>& events,
                       const ExportOptions& options = {});

/// ASCII summary tree: spans aggregated by path with call counts and
/// inclusive/exclusive wall times, counters listed beneath their path.
[[nodiscard]] std::string summary_tree(const std::vector<Event>& events);

namespace detail {
// The enable flag lives here so Span's constructor inlines to exactly
// one relaxed load + branch when disabled.
extern std::atomic<bool> g_enabled;
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

}  // namespace oregami::trace
