// A bounded multi-producer multi-consumer queue with close semantics,
// in the mould of the task-pool/queue composition interfaces of the
// CompositionalPerformanceAnalyzer exemplar (SNIPPETS.md): producers
// block (or fail fast with try_push) when the queue is full, consumers
// block until an item arrives or the queue is closed and drained.
//
// The mapping server uses one as the result channel: worker threads
// push finished result lines, a single writer thread pops and emits
// them in completion order, and the bound keeps a slow output pipe
// from buffering the whole backlog in memory.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace oregami {

template <typename T>
class ThreadSafeQueue {
 public:
  /// `capacity` == 0 means unbounded.
  explicit ThreadSafeQueue(std::size_t capacity = 0)
      : capacity_(capacity) {}

  ThreadSafeQueue(const ThreadSafeQueue&) = delete;
  ThreadSafeQueue& operator=(const ThreadSafeQueue&) = delete;

  /// Blocks while the queue is full. Returns false (item dropped) when
  /// the queue has been closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || !full_locked(); });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || full_locked()) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND
  /// drained (then nullopt -- the consumer's termination signal).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop: nullopt when currently empty (closed or not).
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// After close() every push fails and every pop drains the remaining
  /// items, then reports nullopt. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  [[nodiscard]] bool full_locked() const {
    return capacity_ != 0 && items_.size() >= capacity_;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_ = 0;
  bool closed_ = false;
};

}  // namespace oregami
