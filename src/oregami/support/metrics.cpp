#include "oregami/support/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace oregami::metrics {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_deterministic{false};

namespace {
std::atomic<int> g_next_stripe{0};
}  // namespace

int stripe_index() {
  // Round-robin stripe assignment, computed once per thread. The
  // thread_local is a plain int so first-touch initialisation performs
  // no allocation.
  thread_local const int idx =
      g_next_stripe.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}
}  // namespace detail

void enable() { detail::g_enabled.store(true, std::memory_order_relaxed); }
void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }
void set_deterministic(bool on) {
  detail::g_deterministic.store(on, std::memory_order_relaxed);
}

std::int64_t Counter::value() const {
  std::int64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

int histogram_bucket(std::int64_t v) {
  if (v <= 0) return 0;
  const int width =
      static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v)));
  return std::min(width, kHistogramBuckets - 1);
}

std::int64_t histogram_bucket_upper(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kHistogramBuckets - 1) return INT64_MAX;
  return (std::int64_t{1} << bucket) - 1;
}

std::int64_t histogram_bucket_lower(int bucket) {
  if (bucket <= 0) return 0;
  return std::int64_t{1} << (bucket - 1);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& s : stripes_)
    for (const auto& b : s.buckets) total += b.load(std::memory_order_relaxed);
  return total;
}

std::int64_t Histogram::sum() const {
  std::int64_t total = 0;
  for (const auto& s : stripes_)
    total += s.sum.load(std::memory_order_relaxed);
  return total;
}

void Histogram::merge_into(HistogramSnapshot& snap) const {
  for (const auto& s : stripes_)
    for (int b = 0; b < kHistogramBuckets; ++b)
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
  snap.sum += sum();
}

void Histogram::reset() {
  for (auto& s : stripes_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t HistogramSnapshot::count() const {
  std::uint64_t total = 0;
  for (const auto b : buckets) total += b;
  return total;
}

double HistogramSnapshot::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[b]);
    if (cumulative + in_bucket >= rank) {
      const auto lo = static_cast<double>(histogram_bucket_lower(b));
      if (b == 0) return 0.0;
      if (b == kHistogramBuckets - 1) return lo;  // unbounded tail
      const auto hi = static_cast<double>(histogram_bucket_upper(b));
      const double frac = std::max(0.0, rank - cumulative) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    cumulative += in_bucket;
  }
  // Unreachable for total > 0; keep the compiler happy.
  return 0.0;
}

// --- Registry ---------------------------------------------------------

namespace {

struct Entry {
  SeriesValue::Kind kind;
  Determinism det;
  // Exactly one of these is non-null, matching `kind`. unique_ptr keeps
  // addresses stable while the map grows.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Entry, std::less<>> entries;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: handles outlive exit
  return *r;
}

Entry& register_entry(std::string_view name, SeriesValue::Kind kind,
                      Determinism det) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.entries.find(name);
  if (it == r.entries.end()) {
    Entry entry;
    entry.kind = kind;
    entry.det = det;
    switch (kind) {
      case SeriesValue::Kind::kCounter:
        entry.counter.reset(new Counter());
        break;
      case SeriesValue::Kind::kGauge:
        entry.gauge.reset(new Gauge());
        break;
      case SeriesValue::Kind::kHistogram:
        entry.histogram.reset(new Histogram());
        break;
    }
    it = r.entries.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metrics: series '" + std::string(name) +
                           "' re-registered with a different kind");
  }
  return it->second;
}

}  // namespace

Counter& counter(std::string_view name, Determinism det) {
  return *register_entry(name, SeriesValue::Kind::kCounter, det).counter;
}

Gauge& gauge(std::string_view name, Determinism det) {
  return *register_entry(name, SeriesValue::Kind::kGauge, det).gauge;
}

Histogram& histogram(std::string_view name, Determinism det) {
  return *register_entry(name, SeriesValue::Kind::kHistogram, det).histogram;
}

const SeriesValue* Snapshot::find(std::string_view name) const {
  for (const auto& s : series)
    if (s.name == name) return &s;
  return nullptr;
}

Snapshot snapshot() {
  Snapshot snap;
  const bool det = deterministic();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  snap.series.reserve(r.entries.size());
  for (const auto& [name, entry] : r.entries) {
    SeriesValue v;
    v.name = name;
    v.kind = entry.kind;
    const bool zero = det && entry.det == Determinism::kVolatile;
    switch (entry.kind) {
      case SeriesValue::Kind::kCounter:
        v.scalar = zero ? 0 : entry.counter->value();
        break;
      case SeriesValue::Kind::kGauge:
        v.scalar = zero ? 0 : entry.gauge->value();
        break;
      case SeriesValue::Kind::kHistogram:
        if (!zero) entry.histogram->merge_into(v.histogram);
        break;
    }
    snap.series.push_back(std::move(v));
  }
  // std::map iteration is already name-sorted; keep it explicit anyway.
  std::sort(snap.series.begin(), snap.series.end(),
            [](const SeriesValue& a, const SeriesValue& b) {
              return a.name < b.name;
            });
  return snap;
}

void reset_values() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, entry] : r.entries) {
    switch (entry.kind) {
      case SeriesValue::Kind::kCounter:
        entry.counter->reset();
        break;
      case SeriesValue::Kind::kGauge:
        entry.gauge->reset();
        break;
      case SeriesValue::Kind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

// --- Prometheus exposition -------------------------------------------

namespace {

// Splits "base{a=\"b\"}" into ("base", "a=\"b\""); labels empty when
// the name carries none.
void split_name(const std::string& name, std::string& base,
                std::string& labels) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  const auto close = name.rfind('}');
  labels = name.substr(brace + 1,
                       close == std::string::npos ? std::string::npos
                                                  : close - brace - 1);
}

const char* kind_name(SeriesValue::Kind kind) {
  switch (kind) {
    case SeriesValue::Kind::kCounter: return "counter";
    case SeriesValue::Kind::kGauge: return "gauge";
    case SeriesValue::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string with_labels(const std::string& base, const std::string& labels) {
  if (labels.empty()) return base;
  return base + "{" + labels + "}";
}

std::string join_labels(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return extra;
  return labels + "," + extra;
}

}  // namespace

void write_prometheus(std::ostream& out, const Snapshot& snap) {
  std::string last_base;
  std::string base, labels;
  for (const auto& s : snap.series) {
    split_name(s.name, base, labels);
    if (base != last_base) {
      out << "# TYPE " << base << " " << kind_name(s.kind) << "\n";
      last_base = base;
    }
    switch (s.kind) {
      case SeriesValue::Kind::kCounter:
      case SeriesValue::Kind::kGauge:
        out << with_labels(base, labels) << " " << s.scalar << "\n";
        break;
      case SeriesValue::Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (int b = 0; b < kHistogramBuckets; ++b) {
          if (s.histogram.buckets[b] == 0) continue;
          cumulative += s.histogram.buckets[b];
          if (b == kHistogramBuckets - 1) continue;  // folded into +Inf
          out << base << "_bucket{"
              << join_labels(labels, "le=\"" +
                                         std::to_string(
                                             histogram_bucket_upper(b)) +
                                         "\"")
              << "} " << cumulative << "\n";
        }
        out << base << "_bucket{" << join_labels(labels, "le=\"+Inf\"")
            << "} " << s.histogram.count() << "\n";
        out << with_labels(base + "_sum", labels) << " " << s.histogram.sum
            << "\n";
        out << with_labels(base + "_count", labels) << " "
            << s.histogram.count() << "\n";
        break;
      }
    }
  }
}

std::string to_prometheus(const Snapshot& snap) {
  std::ostringstream out;
  write_prometheus(out, snap);
  return out.str();
}

bool write_prometheus_file(const std::string& path) {
  const std::string body = to_prometheus(snapshot());
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace oregami::metrics
