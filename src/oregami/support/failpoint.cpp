#include "oregami/support/failpoint.hpp"

#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "oregami/support/metrics.hpp"
#include "oregami/support/rng.hpp"

namespace oregami::failpoint {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// How a clause decides whether the current evaluation fires.
enum class SpecKind {
  Always,  ///< every evaluation
  Exact,   ///< key == n
  From,    ///< key >= n
  Random,  ///< SplitMix64(seed, key) < pct%
};

struct Clause {
  std::string site;
  Action action = Action::None;
  std::int64_t arg = 0;
  SpecKind spec = SpecKind::Always;
  std::int64_t n = 0;
  int pct = 0;
  std::uint64_t seed = 0;
  std::int64_t fired = 0;
  std::string text;  ///< the clause as written, for report()
};

struct Registry {
  std::mutex mutex;
  std::vector<Clause> clauses;
  /// Per-site evaluation counters (1-based); the default key.
  std::unordered_map<std::string, std::int64_t> counters;
};

Registry& registry() {
  static Registry r;
  return r;
}

[[noreturn]] void bad_schedule(const std::string& schedule,
                               const std::string& what) {
  throw std::invalid_argument("bad failpoint schedule \"" + schedule +
                              "\": " + what);
}

std::int64_t parse_int(const std::string& schedule, const std::string& tok,
                       const char* what) {
  if (tok.empty()) {
    bad_schedule(schedule, std::string("missing ") + what);
  }
  std::int64_t value = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') {
      bad_schedule(schedule, std::string("bad ") + what + " '" + tok + "'");
    }
    if (value > (INT64_MAX - (c - '0')) / 10) {
      bad_schedule(schedule, std::string(what) + " '" + tok +
                                 "' is out of range");
    }
    value = value * 10 + (c - '0');
  }
  return value;
}

Clause parse_clause(const std::string& schedule, const std::string& text) {
  Clause clause;
  clause.text = text;

  const std::size_t colon = text.find(':');
  if (colon == std::string::npos || colon == 0) {
    bad_schedule(schedule, "clause \"" + text +
                               "\" needs the form site:action[@spec]");
  }
  clause.site = text.substr(0, colon);
  for (const char c : clause.site) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_';
    if (!ok) {
      bad_schedule(schedule,
                   "site \"" + clause.site + "\" has invalid characters");
    }
  }

  std::string rest = text.substr(colon + 1);
  std::string spec;
  const std::size_t at = rest.find('@');
  if (at != std::string::npos) {
    spec = rest.substr(at + 1);
    rest.resize(at);
  }

  // action [ '(' ARG ')' ]
  std::string action = rest;
  const std::size_t paren = rest.find('(');
  bool has_arg = false;
  std::int64_t arg = 0;
  if (paren != std::string::npos) {
    if (rest.back() != ')') {
      bad_schedule(schedule, "unbalanced '(' in \"" + text + "\"");
    }
    action = rest.substr(0, paren);
    arg = parse_int(schedule,
                    rest.substr(paren + 1, rest.size() - paren - 2),
                    "action argument");
    has_arg = true;
  }
  if (action == "err") {
    clause.action = Action::Err;
  } else if (action == "short") {
    clause.action = Action::Short;
  } else if (action == "throw") {
    clause.action = Action::Throw;
  } else if (action == "hang") {
    clause.action = Action::Hang;
    clause.arg = has_arg ? arg : 100;  // default hang: 100 ms
    has_arg = false;
  } else {
    bad_schedule(schedule, "unknown action \"" + action +
                               "\" (known: err, short, throw, hang)");
  }
  if (has_arg) {
    bad_schedule(schedule,
                 "action \"" + action + "\" does not take an argument");
  }

  // spec
  if (spec.empty() || spec == "*") {
    clause.spec = SpecKind::Always;
  } else if (spec.front() == 'p') {
    const std::size_t s = spec.find('s');
    if (s == std::string::npos) {
      bad_schedule(schedule, "random spec \"" + spec +
                                 "\" needs the form pPCTsSEED");
    }
    const std::int64_t pct =
        parse_int(schedule, spec.substr(1, s - 1), "probability");
    if (pct < 0 || pct > 100) {
      bad_schedule(schedule, "probability must be 0..100, got " +
                                 std::to_string(pct));
    }
    clause.spec = SpecKind::Random;
    clause.pct = static_cast<int>(pct);
    clause.seed = static_cast<std::uint64_t>(
        parse_int(schedule, spec.substr(s + 1), "seed"));
  } else if (spec.back() == '+') {
    clause.spec = SpecKind::From;
    clause.n =
        parse_int(schedule, spec.substr(0, spec.size() - 1), "index");
  } else {
    clause.spec = SpecKind::Exact;
    clause.n = parse_int(schedule, spec, "index");
  }
  return clause;
}

bool spec_matches(const Clause& clause, std::int64_t key) {
  switch (clause.spec) {
    case SpecKind::Always:
      return true;
    case SpecKind::Exact:
      return key == clause.n;
    case SpecKind::From:
      return key >= clause.n;
    case SpecKind::Random: {
      // One deterministic draw per (seed, key): the golden-ratio
      // increment decorrelates adjacent keys before SplitMix64 mixes.
      SplitMix64 rng(clause.seed + 0x9e3779b97f4a7c15ULL *
                                       static_cast<std::uint64_t>(key));
      return rng.next_below(100) <
             static_cast<std::uint64_t>(clause.pct);
    }
  }
  return false;
}

}  // namespace

namespace detail {

Hit evaluate_slow(std::string_view site, std::int64_t key) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const std::int64_t counter = ++reg.counters[std::string(site)];
  const std::int64_t effective = key >= 0 ? key : counter;
  for (Clause& clause : reg.clauses) {
    if (clause.site == site && spec_matches(clause, effective)) {
      ++clause.fired;
      if (metrics::enabled()) {
        // Same series server/telemetry.cpp registers eagerly, so the
        // counter is present (at 0) in every exposition.
        metrics::counter("oregami_failpoint_fired_total").increment();
      }
      return Hit{clause.action, clause.arg};
    }
  }
  return {};
}

}  // namespace detail

void configure(const std::string& schedule) {
  std::vector<Clause> clauses;
  std::size_t start = 0;
  while (start <= schedule.size()) {
    std::size_t end = schedule.find(',', start);
    if (end == std::string::npos) {
      end = schedule.size();
    }
    const std::string text = schedule.substr(start, end - start);
    if (text.empty()) {
      bad_schedule(schedule, "empty clause");
    }
    clauses.push_back(parse_clause(schedule, text));
    start = end + 1;
  }

  Registry& reg = registry();
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.clauses = std::move(clauses);
    reg.counters.clear();
  }
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void clear() {
  detail::g_armed.store(false, std::memory_order_relaxed);
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.clauses.clear();
  reg.counters.clear();
}

std::string report() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::string out;
  for (const Clause& clause : reg.clauses) {
    if (!out.empty()) {
      out += "; ";
    }
    out += clause.text + " fired " + std::to_string(clause.fired);
  }
  return out;
}

std::int64_t fired_total() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::int64_t total = 0;
  for (const Clause& clause : reg.clauses) {
    total += clause.fired;
  }
  return total;
}

std::int64_t evaluations(std::string_view site) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.counters.find(std::string(site));
  return it == reg.counters.end() ? 0 : it->second;
}

}  // namespace oregami::failpoint
