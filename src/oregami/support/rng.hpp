// Deterministic pseudo-random number generation for tests and benches.
//
// OREGAMI's mapping algorithms are fully deterministic; randomness is
// only used to synthesise workloads (random task graphs, random
// baselines). SplitMix64 is used because it is tiny, fast, and has a
// stable, documented output stream -- results quoted in EXPERIMENTS.md
// are reproducible across platforms.
#pragma once

#include <cstdint>

namespace oregami {

/// SplitMix64 generator (public-domain constants, Steele et al. 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 raw bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) via Lemire rejection-free reduction;
  /// `bound` must be positive.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

 private:
  std::uint64_t state_;
};

}  // namespace oregami
