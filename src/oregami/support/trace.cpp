#include "oregami/support/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "oregami/support/thread_pool.hpp"

namespace oregami::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// One open span on a thread's stack.
struct OpenSpan {
  std::size_t path_len = 0;  ///< path length to restore on close
  std::string args;
  std::int64_t start_us = 0;
  std::uint64_t seq = 0;
};

/// Per-thread recording state. Owned by the global registry (shared_ptr)
/// so buffered events survive the thread -- a worker that throws, exits,
/// or is joined mid-trace drops nothing.
struct ThreadBuffer {
  std::vector<Event> events;
  std::string path;  ///< current span path ("" = root)
  int lane = 0;
  int base_depth = 0;
  std::vector<OpenSpan> stack;
  std::uint64_t next_seq = 0;
  std::uint64_t epoch = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  Clock::time_point origin = Clock::now();
};

Registry& registry() {
  static Registry* r = new Registry();  // intentionally leaked
  return *r;
}

/// Bumped by clear(); threads holding a stale buffer re-register.
std::atomic<std::uint64_t> g_epoch{0};

thread_local std::shared_ptr<ThreadBuffer> tl_buffer;

ThreadBuffer& buffer() {
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (!tl_buffer || tl_buffer->epoch != epoch) {
    auto fresh = std::make_shared<ThreadBuffer>();
    fresh->epoch = epoch;
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.buffers.push_back(fresh);
    tl_buffer = std::move(fresh);
  }
  return *tl_buffer;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - registry().origin)
      .count();
}

void append_path(std::string* path, std::string_view name) {
  if (!path->empty()) {
    path->push_back('/');
  }
  path->append(name);
}

/// Canonical event order: (path, seq). Concurrent lanes use distinct
/// path prefixes, so equal paths always come from one thread and seq
/// restores program order -- the result is schedule-independent.
bool canonical_less(const Event& a, const Event& b) {
  if (a.path != b.path) {
    return a.path < b.path;
  }
  return a.seq < b.seq;
}

void json_escape(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void enable() {
  Registry& reg = registry();
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    if (reg.buffers.empty()) {
      reg.origin = Clock::now();
    }
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void clear() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.buffers.clear();
  reg.origin = Clock::now();
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

Span::Span(std::string_view name) : Span(name, std::string()) {}

Span::Span(std::string_view name, std::string args) {
  if (!enabled()) {
    return;
  }
  ThreadBuffer& buf = buffer();
  OpenSpan open;
  open.path_len = buf.path.size();
  open.args = std::move(args);
  open.start_us = now_us();
  open.seq = buf.next_seq++;
  append_path(&buf.path, name);
  buf.stack.push_back(std::move(open));
  active_ = true;
}

Span::~Span() {
  if (!active_) {
    return;
  }
  ThreadBuffer& buf = buffer();
  if (buf.stack.empty()) {
    return;  // clear() ran mid-span; nothing to close
  }
  OpenSpan open = std::move(buf.stack.back());
  buf.stack.pop_back();
  Event event;
  event.kind = Event::Kind::Span;
  event.path = buf.path;
  event.args = std::move(open.args);
  event.lane = buf.lane;
  event.depth = buf.base_depth + static_cast<int>(buf.stack.size());
  event.start_us = open.start_us;
  event.dur_us = now_us() - open.start_us;
  event.worker = ThreadPool::current_worker_index();
  event.seq = open.seq;
  buf.events.push_back(std::move(event));
  buf.path.resize(open.path_len);
}

void counter(std::string_view name, std::int64_t value) {
  if (!enabled()) {
    return;
  }
  ThreadBuffer& buf = buffer();
  Event event;
  event.kind = Event::Kind::Counter;
  event.path = buf.path;
  append_path(&event.path, name);
  event.value = value;
  event.lane = buf.lane;
  event.depth = buf.base_depth + static_cast<int>(buf.stack.size());
  event.start_us = now_us();
  event.worker = ThreadPool::current_worker_index();
  event.seq = buf.next_seq++;
  buf.events.push_back(std::move(event));
}

void instant(std::string_view name, std::string args) {
  if (!enabled()) {
    return;
  }
  ThreadBuffer& buf = buffer();
  Event event;
  event.kind = Event::Kind::Instant;
  event.path = buf.path;
  append_path(&event.path, name);
  event.args = std::move(args);
  event.lane = buf.lane;
  event.depth = buf.base_depth + static_cast<int>(buf.stack.size());
  event.start_us = now_us();
  event.worker = ThreadPool::current_worker_index();
  event.seq = buf.next_seq++;
  buf.events.push_back(std::move(event));
}

LaneScope::LaneScope(std::string path, int lane) {
  if (!enabled()) {
    return;
  }
  ThreadBuffer& buf = buffer();
  saved_path_ = std::move(buf.path);
  saved_lane_ = buf.lane;
  saved_depth_ = buf.base_depth;
  buf.path = std::move(path);
  buf.lane = lane;
  // Path components of the lane prefix count toward depth so the
  // summary tree indents lane children under their logical parent.
  buf.base_depth = static_cast<int>(
      std::count(buf.path.begin(), buf.path.end(), '/') +
      (buf.path.empty() ? 0 : 1));
  active_ = true;
}

LaneScope::~LaneScope() {
  if (!active_) {
    return;
  }
  ThreadBuffer& buf = buffer();
  buf.path = std::move(saved_path_);
  buf.lane = saved_lane_;
  buf.base_depth = saved_depth_;
}

std::vector<Event> snapshot() {
  Registry& reg = registry();
  std::vector<Event> merged;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& buf : reg.buffers) {
      merged.insert(merged.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(merged.begin(), merged.end(), canonical_less);
  return merged;
}

void write_chrome_json(std::ostream& out, const std::vector<Event>& events,
                       const ExportOptions& options) {
  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const Event& e : events) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    const char* ph = e.kind == Event::Kind::Span
                         ? "X"
                         : e.kind == Event::Kind::Counter ? "C" : "i";
    const std::string_view name =
        e.path.find('/') == std::string::npos
            ? std::string_view(e.path)
            : std::string_view(e.path).substr(e.path.rfind('/') + 1);
    out << "  {\"name\": \"";
    json_escape(out, std::string(name));
    out << "\", \"cat\": \"oregami\", \"ph\": \"" << ph
        << "\", \"pid\": 1, \"tid\": " << e.lane;
    // Volatile fields, grouped so one normalisation pass strips them.
    const std::int64_t ts = options.canonical ? 0 : e.start_us;
    const std::int64_t dur = options.canonical ? 0 : e.dur_us;
    const int worker = options.canonical ? 0 : e.worker;
    out << ", \"ts\": " << ts;
    if (e.kind == Event::Kind::Span) {
      out << ", \"dur\": " << dur;
    }
    if (e.kind == Event::Kind::Instant) {
      out << ", \"s\": \"t\"";
    }
    out << ", \"args\": {\"path\": \"";
    json_escape(out, e.path);
    out << "\"";
    if (e.kind == Event::Kind::Counter) {
      out << ", \"value\": " << e.value;
    }
    if (!e.args.empty()) {
      out << ", \"detail\": \"";
      json_escape(out, e.args);
      out << "\"";
    }
    out << ", \"worker\": " << worker << "}}";
  }
  out << "\n]}\n";
}

namespace {

struct PathStats {
  int span_count = 0;
  std::int64_t inclusive_us = 0;
  std::int64_t child_us = 0;  ///< summed inclusive time of child spans
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::string> instants;
};

std::string parent_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

std::string summary_tree(const std::vector<Event>& events) {
  // Aggregate by path (std::map keeps paths in the same lexicographic
  // order the canonical export uses, which also places parents before
  // their children).
  std::map<std::string, PathStats> stats;
  for (const Event& e : events) {
    switch (e.kind) {
      case Event::Kind::Span:
        stats[e.path].span_count += 1;
        stats[e.path].inclusive_us += e.dur_us;
        break;
      case Event::Kind::Counter:
        stats[parent_of(e.path)].counters.emplace_back(e.path, e.value);
        break;
      case Event::Kind::Instant:
        stats[parent_of(e.path)].instants.push_back(e.path);
        break;
    }
  }
  // Materialise implied ancestors: a lane prefix like
  // "portfolio/cand#3" never closes a span of its own, but its
  // children should still hang off a visible tree node.
  std::vector<std::string> implied;
  for (const auto& [path, s] : stats) {
    (void)s;
    for (std::string parent = parent_of(path); !parent.empty();
         parent = parent_of(parent)) {
      if (stats.find(parent) == stats.end()) {
        implied.push_back(parent);
      }
    }
  }
  for (auto& path : implied) {
    stats.emplace(std::move(path), PathStats{});
  }

  for (auto& [path, s] : stats) {
    if (s.span_count == 0) {
      continue;
    }
    const std::string parent = parent_of(path);
    const auto it = stats.find(parent);
    if (it != stats.end()) {
      it->second.child_us += s.inclusive_us;
    }
  }

  std::ostringstream out;
  out << "trace summary (inclusive / exclusive ms, x calls)\n";
  for (const auto& [path, s] : stats) {
    const int depth = static_cast<int>(
        std::count(path.begin(), path.end(), '/'));
    const std::string leaf =
        path.find('/') == std::string::npos ? path
                                            : path.substr(path.rfind('/') + 1);
    if (s.span_count > 0) {
      const double inc = static_cast<double>(s.inclusive_us) / 1000.0;
      const double exc =
          static_cast<double>(s.inclusive_us - s.child_us) / 1000.0;
      out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << leaf
          << "  " << inc << " / " << exc << " ms  x" << s.span_count
          << "\n";
    } else if (!leaf.empty()) {
      // Implied node (lane prefix): name only, no timing of its own.
      out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << leaf
          << "\n";
    }
    for (const auto& [cpath, value] : s.counters) {
      const std::string cleaf = cpath.substr(cpath.rfind('/') + 1);
      out << std::string(static_cast<std::size_t>(depth) * 2 + 2, ' ')
          << "#" << cleaf << " = " << value << "\n";
    }
    for (const std::string& ipath : s.instants) {
      const std::string ileaf = ipath.substr(ipath.rfind('/') + 1);
      out << std::string(static_cast<std::size_t>(depth) * 2 + 2, ' ')
          << "!" << ileaf << "\n";
    }
  }
  return out.str();
}

}  // namespace oregami::trace
