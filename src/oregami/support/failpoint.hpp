// Deterministic failure injection for chaos-testing long-lived
// components (the mapping server's persistence and job paths today).
// Named sites are compiled into production code and cost one relaxed
// atomic load when no schedule is armed -- the same zero-cost contract
// as trace.hpp -- so they stay in release builds and chaos runs
// exercise exactly the shipped code.
//
// A *schedule string* arms sites deterministically:
//
//   "persist.write:err@3,job.run:hang(200)@7"
//
//   clause  := site ':' action [ '(' ARG ')' ] [ '@' spec ]
//   site    := dotted name ("persist.write", "job.run", ...)
//   action  := err    -- the site reports an injected I/O failure
//            | short  -- a write persists only half its bytes, then
//                        fails (a torn record, as after kill -9)
//            | throw  -- the site throws std::runtime_error
//            | hang   -- the site sleeps ARG ms (default 100)
//   spec    := N      -- fire when the site's key equals N
//            | N '+'  -- fire when the key is >= N
//            | '*'    -- fire on every evaluation (default)
//            | 'p' PCT 's' SEED
//                     -- fire pseudo-randomly with probability PCT%,
//                        from a SplitMix64 stream seeded by
//                        (SEED, key): deterministic per key, so a
//                        seeded random schedule replays bit-for-bit
//
// The *key* of an evaluation is what makes chaos runs reproducible
// across worker counts: sites with a natural schedule-independent
// identity pass it explicitly (the server's job path keys by the job's
// input line number), and all other sites default to a per-site
// monotone evaluation counter (1-based). Every firing is counted;
// report() renders the counts deterministically for test assertions
// and shutdown summaries.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace oregami::failpoint {

enum class Action {
  None,   ///< site proceeds normally
  Err,    ///< report an injected failure (e.g. ENOSPC, fsync error)
  Short,  ///< write half the bytes, then report failure
  Throw,  ///< throw std::runtime_error from the site
  Hang,   ///< sleep for `arg` milliseconds
};

struct Hit {
  Action action = Action::None;
  std::int64_t arg = 0;  ///< Hang: sleep duration in ms
};

namespace detail {
// The armed flag lives here so evaluate() inlines to one relaxed load
// + branch when no schedule is configured.
extern std::atomic<bool> g_armed;
[[nodiscard]] Hit evaluate_slow(std::string_view site, std::int64_t key);
}  // namespace detail

/// True when a schedule is armed; the whole cost of a disarmed site.
[[nodiscard]] inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Evaluates the named site against the armed schedule. `key` selects
/// the clause match: pass a stable identifier (e.g. a job's input line
/// number) where firing must be schedule-independent across worker
/// counts; the default -1 uses the site's own 1-based evaluation
/// counter. Thread-safe.
[[nodiscard]] inline Hit evaluate(std::string_view site,
                                  std::int64_t key = -1) {
  if (!armed()) {
    return {};
  }
  return detail::evaluate_slow(site, key);
}

/// Parses and arms `schedule` (grammar above), replacing any previous
/// one. Throws std::invalid_argument with a quotable message on bad
/// syntax; an empty string is a usage error too (use clear()).
void configure(const std::string& schedule);

/// Disarms every site and drops the schedule and all counters.
void clear();

/// Deterministic one-line summary of the armed clauses and their fire
/// counts, e.g. "persist.write:err@3 fired 1; job.run:hang@7 fired 0".
/// Empty string when nothing is armed.
[[nodiscard]] std::string report();

/// Total firings across all clauses since configure().
[[nodiscard]] std::int64_t fired_total();

/// Evaluations seen by `site` since configure() (fired or not); lets
/// tests assert a site is actually threaded through a code path.
[[nodiscard]] std::int64_t evaluations(std::string_view site);

}  // namespace oregami::failpoint
