#include "oregami/server/persist.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_set>
#include <utility>
#include <vector>

#include "oregami/server/telemetry.hpp"
#include "oregami/support/failpoint.hpp"
#include "oregami/support/hash.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace oregami::server {

namespace {

constexpr char kFileMagic[8] = {'O', 'R', 'E', 'G', 'C', 'A', 'C', 'H'};
constexpr std::uint32_t kRecordMagic = 0x4345524FU;  // "OREC" in LE bytes
/// An absurdly-large payload length can only be corruption; rejecting
/// it keeps recovery from trusting a bit-flipped length field.
constexpr std::uint32_t kMaxPayload = 64U << 20;
constexpr std::uint32_t kMaxTasks = 1U << 24;
constexpr std::size_t kRecordHeaderSize = 16;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

/// Bounds-checked little-endian reader over a payload; every accessor
/// fails sticky so decode ends with one ok check + exact-length check.
struct Reader {
  const std::string& data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (!ok || data.size() - pos < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    if (!ok || data.size() - pos < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || n > kMaxPayload || data.size() - pos < n) {
      ok = false;
      return {};
    }
    std::string s = data.substr(pos, n);
    pos += n;
    return s;
  }
};

std::uint64_t payload_checksum(const std::string& payload) {
  Fnv1a h;
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

/// Reads the 16-byte record header at `at`; false when the bytes there
/// cannot be the start of a record.
bool read_record_header(const std::string& data, std::size_t at,
                        std::uint32_t& len, std::uint64_t& checksum) {
  if (data.size() - at < kRecordHeaderSize) {
    return false;
  }
  Reader r{data, at};
  const std::uint32_t magic = r.u32();
  len = r.u32();
  checksum = r.u64();
  return r.ok && magic == kRecordMagic && len <= kMaxPayload;
}

/// The byte pattern of the record magic, for the resync scan.
std::string record_magic_bytes() {
  std::string m;
  put_u32(m, kRecordMagic);
  return m;
}

}  // namespace

std::string RecoveryStats::to_string() const {
  if (missing) {
    return "no cache file yet (cold boot)";
  }
  if (version_skew) {
    return "ignoring cache file (unrecognized or version-skewed header); "
           "starting cold";
  }
  std::string out = "restored " + std::to_string(restored) + " entr" +
                    (restored == 1 ? "y" : "ies") + ", skipped " +
                    std::to_string(skipped) + " invalid record" +
                    (skipped == 1 ? "" : "s");
  if (duplicates > 0) {
    out += ", " + std::to_string(duplicates) + " superseded duplicate" +
           (duplicates == 1 ? "" : "s");
  }
  return out;
}

std::string encode_record(std::uint64_t digest,
                          const CachedOutcome& outcome) {
  std::string payload;
  payload.reserve(64 + outcome.proc_of_task.size() * 4 +
                  outcome.error.size() + outcome.strategy.size());
  put_u64(payload, digest);
  payload += static_cast<char>(outcome.ok ? 1 : 0);
  put_u32(payload, static_cast<std::uint32_t>(outcome.error_code));
  put_str(payload, outcome.error);
  put_str(payload, outcome.strategy);
  put_u64(payload, static_cast<std::uint64_t>(outcome.completion));
  put_u64(payload, static_cast<std::uint64_t>(outcome.external_ipc));
  put_u64(payload, static_cast<std::uint64_t>(outcome.max_load));
  put_u32(payload, static_cast<std::uint32_t>(outcome.num_procs));
  put_u32(payload, static_cast<std::uint32_t>(outcome.proc_of_task.size()));
  for (const int p : outcome.proc_of_task) {
    put_u32(payload, static_cast<std::uint32_t>(p));
  }

  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  put_u32(record, kRecordMagic);
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_u64(record, payload_checksum(payload));
  record += payload;
  return record;
}

std::string encode_header() {
  std::string header(kFileMagic, sizeof(kFileMagic));
  put_u32(header, kPersistFormatVersion);
  put_u32(header, static_cast<std::uint32_t>(kDigestVersion));
  return header;
}

bool decode_record_payload(const std::string& payload,
                           std::uint64_t& digest, CachedOutcome& outcome) {
  Reader r{payload, 0};
  digest = r.u64();
  if (!r.ok || r.data.size() - r.pos < 1) {
    return false;
  }
  const unsigned char ok_byte =
      static_cast<unsigned char>(payload[r.pos++]);
  if (ok_byte > 1) {
    return false;
  }
  outcome.ok = ok_byte == 1;
  outcome.error_code = static_cast<int>(r.u32());
  outcome.error = r.str();
  outcome.strategy = r.str();
  outcome.completion = static_cast<std::int64_t>(r.u64());
  outcome.external_ipc = static_cast<std::int64_t>(r.u64());
  outcome.max_load = static_cast<std::int64_t>(r.u64());
  outcome.num_procs = static_cast<int>(r.u32());
  const std::uint32_t tasks = r.u32();
  if (!r.ok || tasks > kMaxTasks) {
    return false;
  }
  outcome.proc_of_task.clear();
  outcome.proc_of_task.reserve(tasks);
  for (std::uint32_t i = 0; i < tasks; ++i) {
    outcome.proc_of_task.push_back(static_cast<int>(r.u32()));
  }
  // Bit-exact means the payload ends exactly where the decode does.
  return r.ok && r.pos == payload.size();
}

RecoveryStats recover_cache_file(const std::string& path,
                                 ResultCache& cache) {
  RecoveryStats stats;
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      stats.missing = true;
      return stats;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    data = buffer.str();
  }
  if (data.empty()) {
    return stats;  // created-but-unwritten file: cold, nothing skipped
  }
  const std::string header = encode_header();
  if (data.size() < header.size() ||
      data.compare(0, sizeof(kFileMagic), kFileMagic,
                   sizeof(kFileMagic)) != 0) {
    stats.version_skew = true;
    return stats;
  }
  if (data.compare(0, header.size(), header) != 0) {
    // Right magic, wrong format or digest version: the records may be
    // from the future (or keyed by incompatible digest rules); skip
    // the whole file rather than guess.
    stats.version_skew = true;
    return stats;
  }

  const std::string magic = record_magic_bytes();
  std::unordered_set<std::uint64_t> seen;
  std::size_t pos = header.size();
  std::int64_t record_index = 0;
  while (pos < data.size()) {
    ++record_index;
    // The persistence *load* failpoint models a read error mid-file:
    // recovery stops at the failure and serves what it validated.
    if (failpoint::evaluate("persist.load", record_index).action !=
        failpoint::Action::None) {
      break;
    }
    std::uint32_t len = 0;
    std::uint64_t checksum = 0;
    const bool header_ok = read_record_header(data, pos, len, checksum);
    if (header_ok && data.size() - pos - kRecordHeaderSize >= len) {
      const std::string payload = data.substr(pos + kRecordHeaderSize, len);
      std::uint64_t digest = 0;
      CachedOutcome outcome;
      if (payload_checksum(payload) == checksum &&
          decode_record_payload(payload, digest, outcome)) {
        ++stats.records;
        if (!seen.insert(digest).second) {
          ++stats.duplicates;
        }
        cache.insert(digest,
                     std::make_shared<const CachedOutcome>(
                         std::move(outcome)));
        pos += kRecordHeaderSize + len;
        continue;
      }
      // Checksum or decode failure with a sane header: the length
      // field is plausibly intact, so skip exactly this record.
      ++stats.skipped;
      pos += kRecordHeaderSize + len;
      continue;
    }
    // Torn tail or garbage where a record should start: skip it and
    // resync by scanning for the next record magic.
    ++stats.skipped;
    const std::size_t next = data.find(magic, pos + 1);
    if (next == std::string::npos) {
      break;
    }
    pos = next;
  }
  stats.restored = static_cast<std::int64_t>(seen.size());
  return stats;
}

// ------------------------------------------------------- CacheJournal

CacheJournal::CacheJournal(std::string path, ResultCache& cache,
                           int compact_every)
    : path_(std::move(path)), cache_(cache), compact_every_(compact_every) {}

CacheJournal::~CacheJournal() {
  flush();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

RecoveryStats CacheJournal::open_and_recover() {
  RecoveryStats recovery = recover_cache_file(path_, cache_);
  if (metrics::enabled()) {
    ServerMetrics& sm = server_metrics();
    sm.recovery_restored.add(recovery.restored);
    sm.recovery_skipped.add(recovery.skipped);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t io_before = stats_.io_errors;
  // Boot always rewrites a compacted snapshot: it creates the file on
  // first boot, sheds skipped garbage and duplicates after a crash,
  // and replaces a version-skewed file with the current format.
  if (!compact_locked()) {
    stats_.degraded = true;
  }
  if (metrics::enabled()) {
    server_metrics().persist_io_errors.add(stats_.io_errors - io_before);
  }
  return recovery;
}

bool CacheJournal::write_record_locked(const std::string& record) {
  if (file_ == nullptr || stats_.degraded) {
    return false;
  }
  const auto fp = failpoint::evaluate("persist.write");
  if (fp.action == failpoint::Action::Err) {
    ++stats_.io_errors;
    stats_.degraded = true;
    return false;
  }
  std::size_t to_write = record.size();
  if (fp.action == failpoint::Action::Short) {
    to_write /= 2;  // a torn record, as a crash mid-write leaves behind
  }
  const std::size_t written =
      std::fwrite(record.data(), 1, to_write, file_);
  std::fflush(file_);
  if (written != record.size()) {
    ++stats_.io_errors;
    stats_.degraded = true;
    return false;
  }
  return true;
}

bool CacheJournal::append(std::uint64_t digest,
                          const CachedOutcome& outcome) {
  const bool telemetry = metrics::enabled();
  const auto start = std::chrono::steady_clock::now();
  const std::string record = encode_record(digest, outcome);
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t io_before = stats_.io_errors;
  const bool wrote = write_record_locked(record);
  if (wrote) {
    ++stats_.appended;
    if (compact_every_ > 0 && ++appends_since_compact_ >= compact_every_) {
      // Best-effort: a failed compaction keeps the (valid) journal.
      (void)compact_locked();
    }
  }
  if (telemetry) {
    ServerMetrics& sm = server_metrics();
    sm.persist_append_us.record(elapsed_us(start));
    if (wrote) sm.persist_appends.increment();
    sm.persist_io_errors.add(stats_.io_errors - io_before);
  }
  return wrote;
}

bool CacheJournal::compact_locked() {
  const bool telemetry = metrics::enabled();
  const auto start = std::chrono::steady_clock::now();
  const bool ok = compact_locked_impl();
  if (telemetry) {
    ServerMetrics& sm = server_metrics();
    sm.persist_compact_us.record(elapsed_us(start));
    if (ok) sm.persist_compactions.increment();
  }
  return ok;
}

bool CacheJournal::compact_locked_impl() {
  // Assemble the whole snapshot in memory and write it with one call,
  // so one persist.write failpoint evaluation covers one snapshot.
  std::string snapshot = encode_header();
  for (const auto& [digest, outcome] : cache_.snapshot_entries()) {
    snapshot += encode_record(digest, *outcome);
  }

  const std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    ++stats_.io_errors;
    return false;
  }
  const auto fp = failpoint::evaluate("persist.write");
  std::size_t to_write = snapshot.size();
  if (fp.action == failpoint::Action::Short) {
    to_write /= 2;
  }
  bool ok = fp.action != failpoint::Action::Err &&
            std::fwrite(snapshot.data(), 1, to_write, out) ==
                snapshot.size() &&
            std::fflush(out) == 0;
#if !defined(_WIN32)
  if (ok) {
    const bool fsync_ok =
        failpoint::evaluate("persist.fsync").action ==
            failpoint::Action::None &&
        ::fsync(fileno(out)) == 0;
    ok = fsync_ok;
  }
#endif
  std::fclose(out);
  if (!ok) {
    std::remove(tmp.c_str());
    ++stats_.io_errors;
    return false;
  }

  if (failpoint::evaluate("persist.rename").action !=
          failpoint::Action::None ||
      std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    ++stats_.io_errors;
    return false;
  }

  // Re-point the append handle at the new file.
  if (file_ != nullptr) {
    std::fclose(file_);
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    ++stats_.io_errors;
    stats_.degraded = true;
    return false;
  }
  ++stats_.compactions;
  appends_since_compact_ = 0;
  return true;
}

bool CacheJournal::compact() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return compact_locked();
}

void CacheJournal::flush() {
  const bool telemetry = metrics::enabled();
  const auto start = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    return;
  }
  std::fflush(file_);
#if !defined(_WIN32)
  if (failpoint::evaluate("persist.fsync").action ==
      failpoint::Action::None) {
    (void)::fsync(fileno(file_));
  } else {
    ++stats_.io_errors;
    if (telemetry) server_metrics().persist_io_errors.increment();
  }
#endif
  if (telemetry) server_metrics().persist_fsync_us.record(elapsed_us(start));
}

PersistStats CacheJournal::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace oregami::server
