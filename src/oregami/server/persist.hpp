// Crash-safe persistence for the mapping server's result cache
// (ROADMAP "cache persistence across daemon restarts"): an append-only
// journal of cache entries plus periodic compacted snapshots, designed
// so a kill -9 at any byte, a truncated copy, or a bit-flipped disk
// can degrade the cache back to cold -- never crash the daemon, and
// never serve a corrupt entry.
//
// File format (PATH, one file; all integers little-endian fixed
// width):
//
//   header (16 bytes)
//     0   8  magic "OREGCACH"
//     8   4  u32 format version (kPersistFormatVersion)
//     12  4  u32 digest version (hash.hpp kDigestVersion)
//   record (repeated; appended one write() each)
//     0   4  u32 record magic "OREC"
//     4   4  u32 payload length
//     8   8  u64 FNV-1a checksum of the payload bytes
//     16  n  payload: digest + the full CachedOutcome (encode_record)
//
// Durability model:
//   * appends are single buffered writes flushed per record: a crash
//     mid-append leaves a torn tail that recovery skips (the checksum
//     and exact-length decode make "valid" mean "bit-exact");
//   * every `compact_every` appends, the live cache is rewritten as a
//     compacted snapshot: temp file + fsync + atomic rename, so the
//     journal never grows without bound and a crash during compaction
//     leaves the previous file intact;
//   * any I/O failure (real or injected via support/failpoint.hpp
//     sites persist.write / persist.fsync / persist.rename /
//     persist.load) is counted and degrades persistence -- the daemon
//     keeps serving from memory.
//
// Recovery invariants (enforced by test_persist.cpp's corruption
// property suite):
//   * recover_cache_file() never throws on any byte sequence;
//   * every restored entry decoded bit-exactly from a checksummed
//     record (an invalid record is skipped and counted, never loaded);
//   * duplicate digests resolve to the *last* valid record (journal
//     order = write order);
//   * a header from a different format or digest version skips the
//     whole file (version_skew) rather than misreading it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "oregami/server/result_cache.hpp"

namespace oregami::server {

/// Bump when the record payload layout changes; folded into the header
/// next to kDigestVersion so old files are skipped, never misread.
inline constexpr std::uint32_t kPersistFormatVersion = 1;

/// What recovery found in a cache file. to_string() is the daemon's
/// boot report ("restored 12 entries, skipped 1 invalid record").
struct RecoveryStats {
  std::int64_t restored = 0;    ///< unique digests loaded into the cache
  std::int64_t records = 0;     ///< valid records seen (incl. duplicates)
  std::int64_t duplicates = 0;  ///< valid records superseded by a later one
  std::int64_t skipped = 0;     ///< invalid records skipped (corrupt/torn)
  bool version_skew = false;    ///< header from another version: all skipped
  bool missing = false;         ///< no file yet (a cold first boot)

  [[nodiscard]] std::string to_string() const;
};

/// Journal/snapshot health counters (the daemon's shutdown report).
struct PersistStats {
  std::int64_t appended = 0;     ///< records journaled
  std::int64_t compactions = 0;  ///< successful snapshot rewrites
  std::int64_t io_errors = 0;    ///< failed writes/fsyncs/renames
  bool degraded = false;  ///< journaling stopped after a write failure
};

/// Serializes one cache entry as a full record (magic + length +
/// checksum + payload). Exposed so tests and benches can craft files
/// and corruptions byte-exactly.
[[nodiscard]] std::string encode_record(std::uint64_t digest,
                                        const CachedOutcome& outcome);

/// The 16-byte file header for the current versions.
[[nodiscard]] std::string encode_header();

/// Decodes a record payload (the bytes after the checksum). Returns
/// false unless the payload decodes cleanly and completely.
[[nodiscard]] bool decode_record_payload(const std::string& payload,
                                         std::uint64_t& digest,
                                         CachedOutcome& outcome);

/// Loads every valid record of `path` into `cache` (file order, so the
/// LRU order matches write order and the last duplicate wins). Never
/// throws: corruption of any kind is skipped and counted.
RecoveryStats recover_cache_file(const std::string& path,
                                 ResultCache& cache);

/// The append-side of persistence: owns the journal file handle,
/// appends computed entries, and periodically rewrites the file as a
/// compacted snapshot of the live cache. Thread-safe (one internal
/// mutex; append order across workers is whatever completion order
/// was, which recovery treats as equivalent).
class CacheJournal {
 public:
  /// `cache` must outlive the journal; `compact_every` appends trigger
  /// a snapshot rewrite (<= 0 disables periodic compaction).
  CacheJournal(std::string path, ResultCache& cache,
               int compact_every = 256);
  ~CacheJournal();

  CacheJournal(const CacheJournal&) = delete;
  CacheJournal& operator=(const CacheJournal&) = delete;

  /// Loads the existing file into the cache (see recover_cache_file)
  /// and opens the journal for appending. On version skew or a corrupt
  /// header the old file is replaced by a fresh snapshot of the
  /// (empty or recovered) cache. Never throws; an unopenable path
  /// degrades persistence and counts an io_error.
  RecoveryStats open_and_recover();

  /// Journals one computed entry; triggers compaction on schedule.
  /// False when persistence is degraded or the write failed (the entry
  /// lives on in memory either way).
  bool append(std::uint64_t digest, const CachedOutcome& outcome);

  /// Rewrites the file as a compacted snapshot of the live cache
  /// (temp file + fsync + atomic rename). False on failure, in which
  /// case the previous file is left intact and appending continues.
  bool compact();

  /// Flushes and fsyncs the journal (the shutdown barrier).
  void flush();

  [[nodiscard]] PersistStats stats() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  bool write_record_locked(const std::string& record);
  bool compact_locked();
  bool compact_locked_impl();

  mutable std::mutex mutex_;
  std::string path_;
  ResultCache& cache_;
  int compact_every_;
  int appends_since_compact_ = 0;
  std::FILE* file_ = nullptr;
  PersistStats stats_;
};

}  // namespace oregami::server
