#pragma once
// Server-side telemetry: the named metric handles every server layer
// records into (support/metrics.hpp registry), the structured NDJSON
// event log, and the machine-readable `stats{...}` shutdown line.
//
// All server series are registered once, eagerly, by server_metrics().
// Handles are plain references into the process-wide registry, so a
// metric site is one relaxed atomic when telemetry is enabled and one
// relaxed load when it is not.
//
// Counter identity (checked by tools/check_metrics.py and
// test_server.cpp): every line counted by
// `oregami_server_jobs_submitted_total` lands in exactly one outcome of
// `oregami_server_jobs_total{outcome=...}`:
//     hit + miss + error + rejected + abandoned == submitted
// Outcomes are tallied where the job's single result line is decided
// (worker emission, watchdog claim, admission rejection, parse error),
// NOT at cache-lookup time -- a watchdog-abandoned job still touches
// the cache counters but contributes only `abandoned` to the identity.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "oregami/support/metrics.hpp"

namespace oregami::server {

struct ServerStats;

struct ServerMetrics {
  // Outcome partition (see header comment).
  metrics::Counter& jobs_submitted;
  metrics::Counter& jobs_hit;
  metrics::Counter& jobs_miss;
  metrics::Counter& jobs_error;
  metrics::Counter& jobs_rejected;
  metrics::Counter& jobs_abandoned;
  // Cache traffic, counted at lookup time (matches ServerStats).
  metrics::Counter& cache_hits;
  metrics::Counter& cache_misses;
  metrics::Counter& cache_evictions;
  // Single-flight joins: schedule-dependent, hence Volatile.
  metrics::Counter& dedup_joins;
  metrics::Counter& watchdog_fired;
  metrics::Counter& failpoint_fired;
  // Persistence (persist.cpp).
  metrics::Counter& persist_appends;
  metrics::Counter& persist_compactions;
  metrics::Counter& persist_io_errors;
  metrics::Counter& recovery_restored;
  metrics::Counter& recovery_skipped;
  metrics::Histogram& persist_append_us;
  metrics::Histogram& persist_fsync_us;
  metrics::Histogram& persist_compact_us;
  // Load gauges: instantaneous, schedule-dependent, hence Volatile.
  metrics::Gauge& queue_depth;
  metrics::Gauge& inflight_jobs;
  // Per-job lifecycle timings; wall time split by outcome.
  metrics::Histogram& queue_wait_us;
  metrics::Histogram& compute_us;
  metrics::Histogram& write_us;
  metrics::Histogram& wall_us_hit;
  metrics::Histogram& wall_us_miss;
  metrics::Histogram& wall_us_error;
};

/// Registers (first call) and returns the server metric handles.
/// Thread-safe; references are process-lifetime stable.
ServerMetrics& server_metrics();

/// Microseconds since `start`, for Histogram::record. Returns 0 when
/// telemetry is disabled so callers can skip the clock read entirely.
[[nodiscard]] std::int64_t elapsed_us(
    std::chrono::steady_clock::time_point start);

/// First 8 hex digits of a job digest, for log lines.
[[nodiscard]] std::string digest_prefix(std::uint64_t digest);

// --- Structured event log --------------------------------------------
// One JSON object per line:
//   {"ts_ms":12.345,"level":"info","event":"job_completed","id":"7",...}
// Levels: debug < info < warn; events below the configured level are
// dropped. Timestamps are monotonic milliseconds since log open.
//
// Deterministic mode: ts_ms is 0.000 and lines are buffered, then
// sorted by (key, event, fields) at close, so the file is
// byte-identical across worker counts for a fixed input stream. `key`
// is the job's input line number (server-level events use the
// kServerStart / kServerStop sentinels to pin stream order).
class EventLog {
 public:
  enum class Level { kDebug = 0, kInfo = 1, kWarn = 2 };

  static constexpr std::int64_t kServerStart = -1;
  static constexpr std::int64_t kServerStop = INT64_MAX;

  /// Returns nullopt for anything but "debug" / "info" / "warn".
  static std::optional<Level> parse_level(std::string_view text);

  EventLog(const std::string& path, Level level, bool deterministic);
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// False when the path could not be opened (telemetry degrades; the
  /// daemon must keep serving).
  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  /// `fields` is a pre-rendered JSON fragment without braces
  /// (`"id":"7","line":3`), or empty.
  void event(Level level, std::int64_t key, std::string_view name,
             const std::string& fields);

  /// Flushes (and in deterministic mode sorts) buffered events and
  /// closes the file. Idempotent; the destructor calls it.
  void close();

 private:
  struct Buffered {
    std::int64_t key;
    std::string name;
    std::string line;
  };
  void write_line(const std::string& line);

  std::FILE* file_ = nullptr;
  Level level_;
  bool deterministic_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::vector<Buffered> buffer_;
};

/// The machine-readable shutdown line: `stats{...}` with every
/// ServerStats field plus `deduped` and `uptime_ms` (0 when
/// deterministic). Kept behind `oregami_serve --stats-json`; the
/// default remains ServerStats::to_json().
[[nodiscard]] std::string render_stats_line(const ServerStats& stats,
                                            std::int64_t uptime_ms);

}  // namespace oregami::server
