#include "oregami/server/digest.hpp"

namespace oregami::server {

namespace {

void fold_phase_tree(Fnv1a& h, const PhaseTree& t) {
  h.i32(static_cast<int>(t.kind));
  h.i32(t.phase_index);
  h.i64(t.count);
  h.u64(t.children.size());
  for (const PhaseTree& child : t.children) {
    fold_phase_tree(h, child);
  }
}

}  // namespace

void fold_task_graph(Fnv1a& h, const TaskGraph& graph) {
  h.i32(graph.num_tasks());
  for (int t = 0; t < graph.num_tasks(); ++t) {
    h.str(graph.task_name(t));
    const auto& label = graph.task_label(t);
    h.u64(label.size());
    for (const long x : label) {
      h.i64(x);
    }
  }
  h.u64(graph.comm_phases().size());
  for (const CommPhase& phase : graph.comm_phases()) {
    h.str(phase.name);
    h.u64(phase.edges.size());
    for (const CommEdge& e : phase.edges) {
      h.i32(e.src);
      h.i32(e.dst);
      h.i64(e.volume);
    }
  }
  h.u64(graph.exec_phases().size());
  for (const ExecPhase& phase : graph.exec_phases()) {
    h.str(phase.name);
    h.u64(phase.cost.size());
    for (const std::int64_t c : phase.cost) {
      h.i64(c);
    }
  }
  fold_phase_tree(h, graph.phase_expr());
  h.boolean(graph.declared_node_symmetric());
}

void fold_topology(Fnv1a& h, const Topology& topo) {
  h.i32(static_cast<int>(topo.family()));
  h.u64(topo.shape().size());
  for (const int d : topo.shape()) {
    h.i32(d);
  }
  h.i32(topo.num_procs());
  h.i32(topo.num_links());
  // Regular families are fully determined by (family, shape); only a
  // Custom topology needs its link list folded (normalized u < v in
  // link-id order, which construction fixes deterministically).
  if (topo.family() == TopoFamily::Custom) {
    h.str(topo.name());
    for (int l = 0; l < topo.num_links(); ++l) {
      const auto [u, v] = topo.link_endpoints(l);
      h.i32(u);
      h.i32(v);
    }
  }
}

void fold_options(Fnv1a& h, const MapperOptions& options) {
  h.boolean(options.allow_canned);
  h.boolean(options.allow_group);
  h.boolean(options.allow_systolic);
  h.i32(options.load_bound_B);
  h.boolean(options.refine);
  h.boolean(options.refine_placement);
  h.i32(options.portfolio);
  h.i32(options.anneal);
  h.boolean(options.heft);
  h.i32(options.multilevel);
  h.i64(options.multilevel_budget_ms);
  h.u64(options.portfolio_seed);
  // `jobs` is deliberately NOT folded: the worker count never changes
  // any result (the portfolio/multilevel determinism contract), so two
  // requests differing only in parallelism share a cache entry.
  const bool degraded =
      options.faults != nullptr && !options.faults->spec().empty();
  h.boolean(degraded);
  if (degraded) {
    h.str(options.faults->spec().to_string());
  }
}

std::uint64_t job_digest(const TaskGraph& graph, const Topology& topo,
                         const MapperOptions& options) {
  Fnv1a h;
  h.u64(kDigestVersion);
  fold_task_graph(h, graph);
  fold_topology(h, topo);
  fold_options(h, options);
  return h.digest();
}

}  // namespace oregami::server
