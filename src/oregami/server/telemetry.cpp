#include "oregami/server/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "oregami/server/server.hpp"

namespace oregami::server {

ServerMetrics& server_metrics() {
  using metrics::Determinism;
  static ServerMetrics* m = new ServerMetrics{
      metrics::counter("oregami_server_jobs_submitted_total"),
      metrics::counter("oregami_server_jobs_total{outcome=\"hit\"}"),
      metrics::counter("oregami_server_jobs_total{outcome=\"miss\"}"),
      metrics::counter("oregami_server_jobs_total{outcome=\"error\"}"),
      metrics::counter("oregami_server_jobs_total{outcome=\"rejected\"}"),
      metrics::counter("oregami_server_jobs_total{outcome=\"abandoned\"}"),
      metrics::counter("oregami_server_cache_hits_total"),
      metrics::counter("oregami_server_cache_misses_total"),
      metrics::counter("oregami_server_cache_evictions_total"),
      metrics::counter("oregami_server_dedup_joins_total",
                       Determinism::kVolatile),
      metrics::counter("oregami_server_watchdog_fired_total"),
      metrics::counter("oregami_failpoint_fired_total"),
      metrics::counter("oregami_persist_appends_total"),
      metrics::counter("oregami_persist_compactions_total"),
      metrics::counter("oregami_persist_io_errors_total"),
      metrics::counter("oregami_persist_recovery_restored_total"),
      metrics::counter("oregami_persist_recovery_skipped_total"),
      metrics::histogram("oregami_persist_append_us"),
      metrics::histogram("oregami_persist_fsync_us"),
      metrics::histogram("oregami_persist_compact_us"),
      metrics::gauge("oregami_server_queue_depth", Determinism::kVolatile),
      metrics::gauge("oregami_server_inflight_jobs", Determinism::kVolatile),
      metrics::histogram("oregami_server_job_queue_wait_us"),
      metrics::histogram("oregami_server_job_compute_us"),
      metrics::histogram("oregami_server_job_write_us"),
      metrics::histogram("oregami_server_job_wall_us{outcome=\"hit\"}"),
      metrics::histogram("oregami_server_job_wall_us{outcome=\"miss\"}"),
      metrics::histogram("oregami_server_job_wall_us{outcome=\"error\"}"),
  };
  return *m;
}

std::int64_t elapsed_us(std::chrono::steady_clock::time_point start) {
  if (!metrics::enabled()) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string digest_prefix(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf, 8);
}

// --- EventLog ---------------------------------------------------------

std::optional<EventLog::Level> EventLog::parse_level(std::string_view text) {
  if (text == "debug") return Level::kDebug;
  if (text == "info") return Level::kInfo;
  if (text == "warn") return Level::kWarn;
  return std::nullopt;
}

namespace {
const char* level_name(EventLog::Level level) {
  switch (level) {
    case EventLog::Level::kDebug: return "debug";
    case EventLog::Level::kInfo: return "info";
    case EventLog::Level::kWarn: return "warn";
  }
  return "info";
}
}  // namespace

EventLog::EventLog(const std::string& path, Level level, bool deterministic)
    : level_(level),
      deterministic_(deterministic),
      start_(std::chrono::steady_clock::now()) {
  file_ = std::fopen(path.c_str(), "wb");
}

EventLog::~EventLog() { close(); }

void EventLog::event(Level level, std::int64_t key, std::string_view name,
                     const std::string& fields) {
  if (file_ == nullptr || level < level_) return;
  double ts_ms = 0.0;
  if (!deterministic_) {
    ts_ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start_)
                .count();
  }
  char ts_buf[32];
  std::snprintf(ts_buf, sizeof(ts_buf), "%.3f", ts_ms);
  std::string line = "{\"ts_ms\":";
  line += ts_buf;
  line += ",\"level\":\"";
  line += level_name(level);
  line += "\",\"event\":\"";
  line += name;
  line += "\"";
  if (!fields.empty()) {
    line += ",";
    line += fields;
  }
  line += "}";

  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;  // closed while formatting
  if (deterministic_) {
    buffer_.push_back(Buffered{key, std::string(name), std::move(line)});
  } else {
    write_line(line);
    std::fflush(file_);
  }
}

void EventLog::write_line(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

void EventLog::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  if (deterministic_) {
    // Canonical order: the input-stream position of the job, then the
    // event name, then the rendered payload -- all schedule-independent
    // for a fixed stream.
    std::sort(buffer_.begin(), buffer_.end(),
              [](const Buffered& a, const Buffered& b) {
                if (a.key != b.key) return a.key < b.key;
                if (a.name != b.name) return a.name < b.name;
                return a.line < b.line;
              });
    for (const auto& entry : buffer_) write_line(entry.line);
    buffer_.clear();
  }
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

std::string render_stats_line(const ServerStats& stats,
                              std::int64_t uptime_ms) {
  std::string out = "stats{\"lines\":" + std::to_string(stats.lines);
  out += ",\"ok\":" + std::to_string(stats.ok);
  out += ",\"errors\":" + std::to_string(stats.errors);
  out += ",\"rejected\":" + std::to_string(stats.rejected);
  out += ",\"abandoned\":" + std::to_string(stats.abandoned);
  out += ",\"cache_hits\":" + std::to_string(stats.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(stats.cache_misses);
  out += ",\"cache_evictions\":" + std::to_string(stats.cache_evictions);
  out += ",\"deduped\":" + std::to_string(stats.deduped);
  out += ",\"uptime_ms\":" + std::to_string(uptime_ms);
  out += "}";
  return out;
}

}  // namespace oregami::server
