// Canonical content digests for mapping jobs: a job is addressed by
// the FNV-1a digest (support/hash.hpp) of its *compiled* inputs --
// (TaskGraph, Topology, normalized MapperOptions) -- so two requests
// that mean the same mapping problem share one cache entry no matter
// how they were spelled (built-in program vs. identical inline source,
// different --jobs values, reordered option fields).
//
// Canonicalization rules (DESIGN.md §"Service architecture"):
//   * the task graph is folded structurally: task names + label
//     tuples, comm phases as (name, edge list) in declaration order,
//     exec phases as (name, cost vector), the phase-expression tree,
//     and the node-symmetry declaration. Declaration order is part of
//     the identity: the compiler emits it deterministically.
//   * the topology is folded structurally (family, shape, P, L, and
//     for Custom the full normalized link list), NOT by its display
//     name.
//   * MapperOptions folds only fields that can change the produced
//     mapping: strategy gates, load bound, refinement toggles,
//     portfolio/anneal/heft/multilevel knobs, seeds, and budgets.
//     `jobs` is excluded (worker count never changes results -- the
//     portfolio determinism contract), and an attached FaultedTopology
//     folds its FaultSpec string.
//   * kDigestVersion is folded first, so changing any rule above can
//     never alias an old cache entry.
#pragma once

#include <cstdint>

#include "oregami/arch/topology.hpp"
#include "oregami/core/task_graph.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/support/hash.hpp"

namespace oregami::server {

/// Folds the task graph structurally into `h`.
void fold_task_graph(Fnv1a& h, const TaskGraph& graph);

/// Folds the topology structurally into `h`.
void fold_topology(Fnv1a& h, const Topology& topo);

/// Folds the result-affecting subset of MapperOptions into `h`.
void fold_options(Fnv1a& h, const MapperOptions& options);

/// The canonical job digest: version + graph + topology + options.
[[nodiscard]] std::uint64_t job_digest(const TaskGraph& graph,
                                       const Topology& topo,
                                       const MapperOptions& options);

}  // namespace oregami::server
