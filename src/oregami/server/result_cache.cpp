#include "oregami/server/result_cache.hpp"

#include <algorithm>

#include "oregami/server/telemetry.hpp"

namespace oregami::server {

ResultCache::ResultCache(std::size_t capacity, int shards) {
  capacity_ = std::max<std::size_t>(1, capacity);
  std::size_t n = shards <= 0 ? 1 : static_cast<std::size_t>(shards);
  n = std::min<std::size_t>(n, 256);
  n = std::min(n, capacity_);  // every shard must hold >= 1 entry
  per_shard_capacity_ = (capacity_ + n - 1) / n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::shard_of(std::uint64_t digest) {
  // Top bits: FNV-1a mixes high bits well, and the map's own bucketing
  // uses the low bits, so shard and bucket choice stay independent.
  const std::size_t index =
      static_cast<std::size_t>(digest >> 48) % shards_.size();
  return *shards_[index];
}

const ResultCache::Shard& ResultCache::shard_of(std::uint64_t digest) const {
  const std::size_t index =
      static_cast<std::size_t>(digest >> 48) % shards_.size();
  return *shards_[index];
}

std::shared_ptr<const CachedOutcome> ResultCache::lookup(
    std::uint64_t digest) {
  Shard& shard = shard_of(digest);
  std::shared_ptr<const CachedOutcome> found;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(digest);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      found = it->second.outcome;
    }
  }
  if (found != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return found;
}

void ResultCache::insert(std::uint64_t digest,
                         std::shared_ptr<const CachedOutcome> outcome) {
  Shard& shard = shard_of(digest);
  std::int64_t evicted = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(digest);
    if (it != shard.map.end()) {
      it->second.outcome = std::move(outcome);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    } else {
      shard.lru.push_front(digest);
      shard.map.emplace(digest,
                        Shard::Slot{std::move(outcome), shard.lru.begin()});
      while (shard.map.size() > per_shard_capacity_) {
        const std::uint64_t victim = shard.lru.back();
        shard.lru.pop_back();
        shard.map.erase(victim);
        ++evicted;
      }
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (metrics::enabled()) {
      server_metrics().cache_evictions.add(evicted);
    }
  }
}

bool ResultCache::contains(std::uint64_t digest) const {
  const Shard& shard = shard_of(digest);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.map.find(digest) != shard.map.end();
}

std::vector<std::pair<std::uint64_t, std::shared_ptr<const CachedOutcome>>>
ResultCache::snapshot_entries() const {
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const CachedOutcome>>>
      entries;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [digest, slot] : shard->map) {
      entries.emplace_back(digest, slot.outcome);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    s.size += static_cast<std::int64_t>(shard->map.size());
  }
  return s;
}

}  // namespace oregami::server
