// The long-lived mapping daemon (ROADMAP "mapping-as-a-service"): one
// serve() call reads newline-delimited JSON jobs (server/wire.hpp)
// from a stream, runs them concurrently on a ThreadPool, answers
// repeated requests from a content-addressed ResultCache, and emits
// one JSON result line per job in completion order.
//
// Contracts:
//   * the daemon never dies on a job: malformed lines, unknown inputs,
//     infeasible mappings, expired deadlines and a full queue all
//     produce structured per-job error lines (wire.hpp codes);
//   * admission control: when `queue_capacity` jobs are already
//     submitted-but-unfinished (ThreadPool::pending()), new jobs are
//     rejected immediately with code 5 -- bounded memory, bounded tail;
//   * results are emitted in completion order, but every line's
//     *content* is deterministic: stripped of the volatile wall_ms
//     field and sorted by id, a result stream is byte-identical across
//     runs, worker counts, and arrival interleavings (cache hit/miss
//     *totals* are deterministic too, via single-flight deduplication
//     of concurrent identical jobs; the per-line hit/miss label of
//     *identical concurrent* jobs is the one schedule-dependent bit);
//   * a watchdog abandons jobs that outrun their Deadline: the code-6
//     line is emitted at expiry and the daemon keeps draining while
//     the stuck worker finishes (its result line is discarded, its
//     computed outcome is still cached);
//   * shutdown: EOF (or the stop flag, wired to SIGINT/SIGTERM by
//     oregami_serve) stops admission, drains every submitted job,
//     flushes the writer, and returns the final stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "oregami/server/result_cache.hpp"

namespace oregami::server {

class CacheJournal;
class EventLog;

struct ServerOptions {
  int jobs = 1;  ///< worker threads; 0 = hardware_concurrency
  /// Admission bound: max submitted-but-unfinished jobs before new
  /// arrivals are rejected with code 5.
  int queue_capacity = 64;
  std::size_t cache_capacity = 1024;  ///< resident result entries
  int cache_shards = 8;
  /// Applied to jobs that do not carry their own "deadline_ms".
  /// 0 = none; negative = already expired (deterministic, for tests).
  std::int64_t default_deadline_ms = 0;
  /// Print wall_ms as 0.000 so the full result stream is byte-stable
  /// (used by the determinism tests and CI diffs).
  bool deterministic = false;
  /// External cache to use instead of a private one (not owned; must
  /// outlive the call). Lets a caller keep the cache warm across
  /// serve() calls -- the bench replays the same stream cold then warm.
  ResultCache* cache = nullptr;
  /// Crash-safe persistence (persist.hpp; not owned; must outlive the
  /// call and wrap the same cache as `cache`): every computed outcome
  /// is journaled after its cache insert, so a restarted daemon boots
  /// warm. nullptr = in-memory only.
  CacheJournal* journal = nullptr;
  /// Structured NDJSON event log (telemetry.hpp; not owned; must
  /// outlive the call). nullptr = no event logging.
  EventLog* log = nullptr;
};

struct ServerStats {
  std::int64_t lines = 0;     ///< non-blank input lines consumed
  std::int64_t ok = 0;        ///< successful result lines
  std::int64_t errors = 0;    ///< error result lines (all codes)
  std::int64_t rejected = 0;  ///< subset of errors: admission rejections
  /// Subset of errors: jobs whose worker outran its Deadline and whose
  /// code-6 line was emitted by the watchdog instead (the worker's
  /// eventual result is discarded; its computed outcome is still
  /// cached).
  std::int64_t abandoned = 0;
  /// Jobs served without computing a mapping: a cache hit or a join
  /// onto an identical in-flight job. Deterministic for a fixed stream
  /// (when the cache capacity covers the unique jobs).
  std::int64_t cache_hits = 0;
  /// Jobs that computed (and cached) their outcome. Deterministic:
  /// exactly one per unique digest reaching the mapping stage.
  std::int64_t cache_misses = 0;
  std::int64_t cache_evictions = 0;
  /// Subset of cache_hits: jobs that joined an identical in-flight
  /// computation instead of hitting the resident cache. The total is
  /// schedule-dependent (more workers, more overlap), so the metrics
  /// registry marks its series Volatile.
  std::int64_t deduped = 0;

  /// One-line JSON rendering (the daemon's exit summary on stderr).
  /// Field set is frozen (scripts grep it); the extended `stats{...}`
  /// line lives in telemetry.hpp.
  [[nodiscard]] std::string to_json() const;
};

/// Runs the serve loop until `in` hits EOF or `*stop` becomes true.
/// Result lines go to `out` (flushed per line); nothing else is ever
/// written there. Exceptions never escape per-job processing.
[[nodiscard]] ServerStats serve(std::istream& in, std::ostream& out,
                                const ServerOptions& options = {},
                                const std::atomic<bool>* stop = nullptr);

}  // namespace oregami::server
