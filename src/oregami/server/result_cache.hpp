// The content-addressed result cache behind the mapping server:
// digest -> finished job outcome, sharded and mutex-striped so
// concurrent workers rarely contend, LRU-bounded per shard so the
// resident set stays capped no matter how long the daemon lives.
//
// Design:
//   * a digest picks its shard by its top bits (the FNV-1a avalanche
//     makes them uniform); each shard owns an independent mutex, an
//     open-addressed map digest -> entry, and an intrusive LRU order;
//   * capacity is split evenly across shards (per-shard bound =
//     ceil(capacity / shards)), so the global bound holds within one
//     shard's worth of slack and eviction never takes a global lock;
//   * values are shared_ptr<const Outcome>: a hit hands back a
//     refcount, never a copy, and an entry evicted mid-use stays alive
//     until its last reader drops it;
//   * hit/miss/eviction counters are relaxed atomics, exported through
//     the PR 4 trace/counter machinery by the server loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace oregami::server {

/// The cached portion of a finished job: everything deterministic that
/// a result line needs, and nothing else (routes are re-derivable and
/// heavy, so only the task placement is kept).
struct CachedOutcome {
  /// False when the mapping stage failed deterministically (e.g.
  /// infeasible); error outcomes are cached too, so repeated bad jobs
  /// are also O(1) and hit/miss accounting stays schedule-independent.
  bool ok = false;
  int error_code = 0;        ///< per-job error code (wire.hpp) when !ok
  std::string error;         ///< error message when !ok
  std::string strategy;      ///< winning MapStrategy name when ok
  std::int64_t completion = 0;
  std::int64_t external_ipc = 0;
  std::int64_t max_load = 0;
  int num_procs = 0;
  std::vector<int> proc_of_task;
};

class ResultCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t size = 0;  ///< current resident entries
  };

  /// `capacity` = max resident entries (>= 1), split across `shards`
  /// stripes (clamped to [1, 256] and to <= capacity so every shard
  /// can hold at least one entry).
  explicit ResultCache(std::size_t capacity = 1024, int shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Looks up `digest`, refreshing its LRU position. Counts a hit or a
  /// miss. nullptr on miss.
  [[nodiscard]] std::shared_ptr<const CachedOutcome> lookup(
      std::uint64_t digest);

  /// Inserts (or refreshes) `digest`; evicts the shard's LRU tail when
  /// the shard is over its bound. Re-inserting an existing digest
  /// replaces the value without counting an eviction.
  void insert(std::uint64_t digest,
              std::shared_ptr<const CachedOutcome> outcome);

  /// True when `digest` is resident (no LRU refresh, no counter).
  [[nodiscard]] bool contains(std::uint64_t digest) const;

  /// Every resident entry, sorted by digest: a deterministic snapshot
  /// for the persistence layer's compaction (the shared_ptr values
  /// keep entries alive across concurrent eviction). Takes each
  /// shard's lock in turn, never all at once.
  [[nodiscard]] std::vector<
      std::pair<std::uint64_t, std::shared_ptr<const CachedOutcome>>>
  snapshot_entries() const;

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shards_.size());
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Most-recent first; nodes own the digest for O(1) erase-by-map.
    std::list<std::uint64_t> lru;
    struct Slot {
      std::shared_ptr<const CachedOutcome> outcome;
      std::list<std::uint64_t>::iterator lru_it;
    };
    std::unordered_map<std::uint64_t, Slot> map;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t digest);
  [[nodiscard]] const Shard& shard_of(std::uint64_t digest) const;

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};
};

}  // namespace oregami::server
