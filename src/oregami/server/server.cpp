#include "oregami/server/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <future>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "oregami/arch/topology_spec.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/metrics/completion_model.hpp"
#include "oregami/server/digest.hpp"
#include "oregami/server/persist.hpp"
#include "oregami/server/telemetry.hpp"
#include "oregami/server/wire.hpp"
#include "oregami/support/deadline.hpp"
#include "oregami/support/failpoint.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/thread_pool.hpp"
#include "oregami/support/thread_safe_queue.hpp"
#include "oregami/support/trace.hpp"

namespace oregami::server {

namespace {

using OutcomePtr = std::shared_ptr<const CachedOutcome>;

/// The compiled half of a job (everything the digest and the mapper
/// need).
struct CompiledJob {
  larcs::Program ast;
  larcs::CompiledProgram compiled;
  Topology topo;
};

/// Resolves and compiles a job's textual inputs. Throws WireError with
/// a "job <id>: "-prefixed message on every failure.
CompiledJob compile_job(const WireJob& job) {
  const std::string prefix = "job " + job.id + ": ";
  std::string source;
  if (!job.program.empty()) {
    bool found = false;
    for (const auto& entry : larcs::programs::catalog()) {
      if (entry.name == job.program) {
        source = entry.source;
        found = true;
        break;
      }
    }
    if (!found) {
      throw WireError(kJobBadInput, prefix + "unknown program \"" +
                                        job.program +
                                        "\" (see --list-programs)");
    }
  } else if (!job.program_file.empty()) {
    std::ifstream in(job.program_file);
    if (!in) {
      throw WireError(kJobBadInput, prefix + "cannot open program_file \"" +
                                        job.program_file + "\"");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else {
    source = job.larcs;
  }

  // Topology first: a typo'd machine spec should be reported as such
  // even when the program text has its own problems.
  Topology topo = [&] {
    try {
      return parse_topology_spec(job.topology);
    } catch (const MappingError& e) {
      throw WireError(kJobBadInput,
                      prefix + "unknown or invalid topology \"" +
                          job.topology + "\": " + e.what());
    }
  }();
  try {
    larcs::Program ast = larcs::parse_program(source);
    larcs::CompiledProgram compiled = larcs::compile(ast, job.bindings);
    return CompiledJob{std::move(ast), std::move(compiled),
                       std::move(topo)};
  } catch (const LarcsError& e) {
    throw WireError(kJobBadInput, prefix + e.what());
  }
}

/// Runs the mapping pipeline and distils the result into the cacheable
/// outcome. Deterministic failures (infeasible mappings) become error
/// outcomes -- cached like successes, so repeated bad jobs are O(1)
/// and hit/miss totals stay schedule-independent.
OutcomePtr compute_outcome(const WireJob& job, const CompiledJob& cj) {
  auto outcome = std::make_shared<CachedOutcome>();
  try {
    const MapperReport report =
        map_program(cj.ast, cj.compiled, cj.topo, job.options);
    const std::vector<int> procs = report.mapping.proc_of_task();
    const PlacementObjectives obj = extract_objectives(
        cj.compiled.graph, procs, report.mapping.routing, cj.topo);
    outcome->ok = true;
    outcome->strategy = to_string(report.strategy);
    outcome->completion = obj.completion;
    outcome->external_ipc = obj.external_ipc;
    outcome->max_load = obj.max_load;
    outcome->num_procs = cj.topo.num_procs();
    outcome->proc_of_task = procs;
  } catch (const MappingError& e) {
    outcome->ok = false;
    outcome->error_code = kJobInfeasible;
    outcome->error = "job " + job.id + ": mapping infeasible: " + e.what();
  } catch (const std::exception& e) {
    outcome->ok = false;
    outcome->error_code = kJobInternal;
    outcome->error = "job " + job.id + ": internal error: " + e.what();
  }
  return outcome;
}

/// Shared mutable state of one serve() call. Workers only touch the
/// thread-safe members; the scalar tallies are owned by the writer
/// side (updated under `done_mutex`).
struct ServeState {
  explicit ServeState(const ServerOptions& opts)
      : results(256),
        owned_cache(opts.cache == nullptr
                        ? std::make_unique<ResultCache>(opts.cache_capacity,
                                                        opts.cache_shards)
                        : nullptr),
        cache(opts.cache != nullptr ? opts.cache : owned_cache.get()) {}

  ThreadSafeQueue<std::string> results;
  std::unique_ptr<ResultCache> owned_cache;
  ResultCache* cache;
  /// Telemetry handles (registered once per process; recording is a
  /// no-op while metrics are disabled).
  ServerMetrics& sm = server_metrics();

  /// Single-flight: digest -> the future of the first (and only)
  /// computation in flight for it. Concurrent identical jobs join the
  /// future instead of recomputing, which keeps hit/miss totals
  /// schedule-independent.
  std::mutex inflight_mutex;
  std::unordered_map<std::uint64_t, std::shared_future<OutcomePtr>> inflight;

  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> errors{0};
  std::atomic<std::int64_t> abandoned{0};
  std::atomic<std::int64_t> cache_hits{0};
  std::atomic<std::int64_t> cache_misses{0};
  std::atomic<std::int64_t> deduped{0};

  /// Drain accounting: submitted jobs not yet fully emitted.
  std::mutex done_mutex;
  std::condition_variable all_done;
  int outstanding = 0;

  /// Watchdog registry: one ticket per admitted job with a positive
  /// deadline. Whoever flips `claimed` first -- the worker finishing
  /// or the watchdog at expiry -- emits the job's single result line
  /// and settles the drain count; the loser stays silent.
  struct Ticket {
    std::string id;
    std::size_t line = 0;
    std::chrono::steady_clock::time_point expiry;
    std::shared_ptr<std::atomic<bool>> claimed;
  };
  std::mutex watch_mutex;
  std::condition_variable watch_cv;
  std::vector<Ticket> watch;
  bool watch_closed = false;

  void job_finished() {
    sm.inflight_jobs.add(-1);
    {
      const std::lock_guard<std::mutex> lock(done_mutex);
      --outstanding;
    }
    all_done.notify_all();
  }
};

/// The watchdog body: sleeps until the earliest unexpired ticket, and
/// abandons (code 6) every job whose worker has not claimed it by its
/// expiry. The daemon keeps draining -- the stuck worker's eventual
/// line is discarded by the claimed flag.
void run_watchdog(ServeState& state, const ServerOptions& opts) {
  std::unique_lock<std::mutex> lock(state.watch_mutex);
  for (;;) {
    if (state.watch_closed) {
      return;  // drain finished: every remaining ticket is claimed
    }
    // Tickets claimed by their worker are dead weight; drop them so
    // the scan below never waits on one.
    state.watch.erase(
        std::remove_if(state.watch.begin(), state.watch.end(),
                       [](const ServeState::Ticket& t) {
                         return t.claimed->load(std::memory_order_relaxed);
                       }),
        state.watch.end());
    if (state.watch.empty()) {
      state.watch_cv.wait(lock);
      continue;
    }
    const auto it = std::min_element(
        state.watch.begin(), state.watch.end(),
        [](const ServeState::Ticket& a, const ServeState::Ticket& b) {
          return a.expiry < b.expiry;
        });
    if (it->expiry > std::chrono::steady_clock::now()) {
      state.watch_cv.wait_until(lock, it->expiry);
      continue;
    }
    ServeState::Ticket ticket = std::move(*it);
    state.watch.erase(it);
    lock.unlock();
    if (!ticket.claimed->exchange(true)) {
      state.results.push(format_error_result(
          ticket.id, ticket.line, kJobDeadline,
          "job " + ticket.id + ": deadline expired; result abandoned"));
      state.errors.fetch_add(1, std::memory_order_relaxed);
      state.abandoned.fetch_add(1, std::memory_order_relaxed);
      state.sm.watchdog_fired.increment();
      state.sm.jobs_abandoned.increment();
      if (opts.log != nullptr) {
        opts.log->event(
            EventLog::Level::kWarn,
            static_cast<std::int64_t>(ticket.line), "job_abandoned",
            "\"id\":\"" + json_escape(ticket.id) +
                "\",\"line\":" + std::to_string(ticket.line));
      }
      state.job_finished();
    }
    lock.lock();
  }
}

/// The per-job worker body: compile, digest, cache/single-flight,
/// format, emit. Never throws. `claimed` (when the job has a watchdog
/// ticket) gates emission: if the watchdog claimed the job first, the
/// line is discarded -- but the computed outcome was already cached
/// and journaled, so the work is not wasted.
void run_job(ServeState& state, const WireJob& job,
             std::chrono::steady_clock::time_point admitted,
             const ServerOptions& opts,
             const std::shared_ptr<std::atomic<bool>>& claimed) {
  // One enabled-check up front keeps the disabled hot path at a single
  // relaxed load for the whole function (elapsed_us and record() would
  // each pay their own otherwise).
  const bool telemetry = metrics::enabled();
  if (telemetry) state.sm.queue_wait_us.record(elapsed_us(admitted));
  std::string line;
  bool is_ok = false;
  bool hit = false;
  int result_code = kJobOk;
  std::uint64_t digest = 0;
  bool have_digest = false;
  try {
    Deadline deadline(job.deadline_ms != 0 ? job.deadline_ms
                                           : opts.default_deadline_ms);
    if (deadline.passed()) {
      throw WireError(kJobDeadline,
                      "job " + job.id + ": deadline expired before start");
    }
    // Chaos site for the worker itself, keyed by the job's input line
    // so a schedule fires on the same job at any worker count: `throw`
    // models a crashing mapper (code 1), `hang` a stuck one (the
    // watchdog's prey).
    const auto fp = failpoint::evaluate(
        "job.run", static_cast<std::int64_t>(job.line));
    if (fp.action == failpoint::Action::Throw) {
      throw std::runtime_error("injected failure (failpoint job.run)");
    }
    if (fp.action == failpoint::Action::Hang) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fp.arg));
    }
    const CompiledJob cj = compile_job(job);
    digest = job_digest(cj.compiled.graph, cj.topo, job.options);
    have_digest = true;

    OutcomePtr outcome;
    std::shared_future<OutcomePtr> wait_on;
    std::promise<OutcomePtr> promise;
    bool computing = false;
    {
      // Lookup and in-flight registration are one atomic step, so an
      // identical job can never slip between "not cached yet" and
      // "someone is computing it".
      const std::lock_guard<std::mutex> lock(state.inflight_mutex);
      outcome = state.cache->lookup(digest);
      if (outcome != nullptr) {
        hit = true;
      } else {
        const auto it = state.inflight.find(digest);
        if (it != state.inflight.end()) {
          wait_on = it->second;
        } else {
          state.inflight.emplace(digest,
                                 std::shared_future<OutcomePtr>(
                                     promise.get_future().share()));
          computing = true;
        }
      }
    }
    if (computing) {
      const auto compute_start = telemetry ? std::chrono::steady_clock::now()
                                           : admitted;
      outcome = compute_outcome(job, cj);
      state.cache->insert(digest, outcome);
      if (opts.journal != nullptr) {
        // Best-effort: a failed append degrades persistence, never
        // the job (the outcome lives on in memory).
        (void)opts.journal->append(digest, *outcome);
      }
      promise.set_value(outcome);
      {
        const std::lock_guard<std::mutex> lock(state.inflight_mutex);
        state.inflight.erase(digest);
      }
      if (telemetry) state.sm.compute_us.record(elapsed_us(compute_start));
    } else if (!hit) {
      outcome = wait_on.get();  // join the identical in-flight job
      hit = true;
      state.deduped.fetch_add(1, std::memory_order_relaxed);
      state.sm.dedup_joins.increment();
    }
    if (hit) {
      state.cache_hits.fetch_add(1, std::memory_order_relaxed);
      state.sm.cache_hits.increment();
    } else {
      state.cache_misses.fetch_add(1, std::memory_order_relaxed);
      state.sm.cache_misses.increment();
    }

    const double wall_ms =
        opts.deterministic
            ? 0.0
            : std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - admitted)
                  .count();
    if (outcome->ok) {
      line = format_ok_result(job.id, digest, hit, *outcome, wall_ms);
      is_ok = true;
    } else {
      line = format_error_result(job.id, job.line, outcome->error_code,
                                 outcome->error);
      result_code = outcome->error_code;
    }
  } catch (const WireError& e) {
    line = format_error_result(job.id, job.line, e.code(), e.what());
    result_code = e.code();
  } catch (const std::exception& e) {
    line = format_error_result(job.id, job.line, kJobInternal,
                               "job " + job.id + ": internal error: " +
                                   e.what());
    result_code = kJobInternal;
  }
  if (claimed != nullptr && claimed->exchange(true)) {
    return;  // the watchdog already emitted this job's code-6 line
  }
  if (is_ok) {
    state.ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    state.errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (telemetry) {
    // Outcome partition (telemetry.hpp): tallied exactly where the
    // job's single result line is emitted, so abandoned jobs (claimed
    // above) never double-book.
    const auto write_start = std::chrono::steady_clock::now();
    if (!is_ok) {
      state.sm.jobs_error.increment();
      state.sm.wall_us_error.record(elapsed_us(admitted));
    } else if (hit) {
      state.sm.jobs_hit.increment();
      state.sm.wall_us_hit.record(elapsed_us(admitted));
    } else {
      state.sm.jobs_miss.increment();
      state.sm.wall_us_miss.record(elapsed_us(admitted));
    }
    state.results.push(std::move(line));
    state.sm.write_us.record(elapsed_us(write_start));
  } else {
    state.results.push(std::move(line));
  }
  if (opts.log != nullptr) {
    std::string fields = "\"id\":\"" + json_escape(job.id) +
                         "\",\"line\":" + std::to_string(job.line);
    if (is_ok) {
      fields += ",\"status\":\"ok\",\"digest\":\"";
      fields += digest_prefix(digest);
      // The per-line hit/miss label of identical concurrent jobs is
      // schedule-dependent; blank it in deterministic mode, exactly
      // like the wire format's determinism contract.
      fields += "\",\"cache\":\"";
      fields += opts.deterministic ? "?" : (hit ? "hit" : "miss");
      fields += "\"";
    } else {
      fields += ",\"status\":\"error\",\"code\":" +
                std::to_string(result_code);
      if (have_digest) {
        fields += ",\"digest\":\"" + digest_prefix(digest) + "\"";
      }
    }
    opts.log->event(EventLog::Level::kInfo,
                    static_cast<std::int64_t>(job.line), "job_completed",
                    fields);
  }
  state.job_finished();
}

}  // namespace

std::string ServerStats::to_json() const {
  std::string out = "{\"lines\":" + std::to_string(lines);
  out += ",\"ok\":" + std::to_string(ok);
  out += ",\"errors\":" + std::to_string(errors);
  out += ",\"rejected\":" + std::to_string(rejected);
  out += ",\"abandoned\":" + std::to_string(abandoned);
  out += ",\"cache_hits\":" + std::to_string(cache_hits);
  out += ",\"cache_misses\":" + std::to_string(cache_misses);
  out += ",\"cache_evictions\":" + std::to_string(cache_evictions);
  out += "}";
  return out;
}

ServerStats serve(std::istream& in, std::ostream& out,
                  const ServerOptions& options,
                  const std::atomic<bool>* stop) {
  const trace::Span span("server/serve");
  ServerStats stats;
  ServeState state(options);
  const ResultCache::Stats cache_before = state.cache->stats();

  // The writer is the only thread that touches `out`: workers push
  // finished lines into the bounded queue and the writer emits them in
  // completion order, flushing per line so a downstream consumer sees
  // results as they land.
  std::thread writer([&state, &out] {
    while (auto line = state.results.pop()) {
      out << *line << '\n' << std::flush;
    }
  });
  std::thread watchdog([&state, &options] { run_watchdog(state, options); });

  {
    // Pool scope: destroying the pool joins the workers, but drain is
    // explicit below so the writer outlives every producer.
    ThreadPool pool(options.jobs, "oregami-srv");
    const int capacity = options.queue_capacity > 0 ? options.queue_capacity
                                                    : 1;
    std::string raw;
    std::size_t line_number = 0;
    while ((stop == nullptr || !stop->load(std::memory_order_relaxed)) &&
           std::getline(in, raw)) {
      ++line_number;
      // Blank lines are keep-alives / formatting, not jobs.
      if (raw.find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      ++stats.lines;
      state.sm.jobs_submitted.increment();

      WireJob job;
      try {
        job = parse_job(raw, line_number);
      } catch (const WireError& e) {
        state.results.push(
            format_error_result("", line_number, e.code(), e.what()));
        ++stats.errors;
        state.sm.jobs_error.increment();
        if (options.log != nullptr) {
          options.log->event(EventLog::Level::kInfo,
                             static_cast<std::int64_t>(line_number),
                             "parse_error",
                             "\"line\":" + std::to_string(line_number) +
                                 ",\"code\":" + std::to_string(e.code()));
        }
        continue;
      }

      // Admission control: reject instead of buffering without bound.
      // The server.admit chaos site (keyed by input line) forces
      // rejection bursts without actually saturating the pool.
      const int depth = pool.pending();
      trace::counter("server/queue_depth", depth);
      state.sm.queue_depth.set(depth);
      const bool forced_reject =
          failpoint::evaluate("server.admit",
                              static_cast<std::int64_t>(job.line))
              .action != failpoint::Action::None;
      if (forced_reject || depth >= capacity) {
        // The backoff hint is a pure function of the observed depth
        // (~5 ms of drain headroom per pending job), so a replayed
        // stream rejects with identical hints.
        const std::int64_t retry_after_ms = 5 * (depth > 0 ? depth : 1);
        state.results.push(format_error_result(
            job.id, job.line, kJobRejected,
            "job " + job.id + ": rejected: queue full (" +
                std::to_string(depth) + " jobs pending, capacity " +
                std::to_string(capacity) + ")",
            retry_after_ms));
        ++stats.rejected;
        ++stats.errors;
        state.sm.jobs_rejected.increment();
        if (options.log != nullptr) {
          options.log->event(EventLog::Level::kInfo,
                             static_cast<std::int64_t>(job.line),
                             "job_rejected",
                             "\"id\":\"" + json_escape(job.id) +
                                 "\",\"line\":" + std::to_string(job.line));
        }
        continue;
      }

      {
        const std::lock_guard<std::mutex> lock(state.done_mutex);
        ++state.outstanding;
      }
      state.sm.inflight_jobs.add(1);
      if (options.log != nullptr) {
        options.log->event(EventLog::Level::kDebug,
                           static_cast<std::int64_t>(job.line),
                           "job_admitted",
                           "\"id\":\"" + json_escape(job.id) +
                               "\",\"line\":" + std::to_string(job.line));
      }
      const auto admitted = std::chrono::steady_clock::now();
      // Jobs with a real (positive) deadline get a watchdog ticket so
      // a stuck worker cannot stall the stream past its deadline.
      const std::int64_t deadline_ms =
          job.deadline_ms != 0 ? job.deadline_ms
                               : options.default_deadline_ms;
      std::shared_ptr<std::atomic<bool>> claimed;
      if (deadline_ms > 0) {
        claimed = std::make_shared<std::atomic<bool>>(false);
        {
          const std::lock_guard<std::mutex> lock(state.watch_mutex);
          state.watch.push_back(ServeState::Ticket{
              job.id, job.line,
              admitted + std::chrono::milliseconds(deadline_ms), claimed});
        }
        state.watch_cv.notify_all();
      }
      auto future = pool.submit([&state, job = std::move(job), admitted,
                                 &options, claimed]() mutable {
        run_job(state, job, admitted, options, claimed);
      });
      (void)future;  // completion is tracked via ServeState::outstanding
    }

    // Drain: every admitted job emits its line before the pool dies.
    std::unique_lock<std::mutex> lock(state.done_mutex);
    state.all_done.wait(lock, [&state] { return state.outstanding == 0; });
  }

  {
    const std::lock_guard<std::mutex> lock(state.watch_mutex);
    state.watch_closed = true;
  }
  state.watch_cv.notify_all();
  watchdog.join();
  state.results.close();
  writer.join();

  stats.ok = state.ok.load();
  stats.errors += state.errors.load();
  stats.abandoned = state.abandoned.load();
  stats.cache_hits = state.cache_hits.load();
  stats.cache_misses = state.cache_misses.load();
  stats.deduped = state.deduped.load();
  const ResultCache::Stats cache_after = state.cache->stats();
  stats.cache_evictions = cache_after.evictions - cache_before.evictions;
  trace::counter("server/cache_hits", stats.cache_hits);
  trace::counter("server/cache_misses", stats.cache_misses);
  trace::counter("server/cache_evictions", stats.cache_evictions);
  if (options.log != nullptr && stats.cache_evictions > 0) {
    options.log->event(EventLog::Level::kWarn, EventLog::kServerStop,
                       "cache_evictions",
                       "\"count\":" +
                           std::to_string(stats.cache_evictions));
  }
  return stats;
}

}  // namespace oregami::server
