// The mapping server's wire format: newline-delimited JSON jobs in,
// newline-delimited JSON results out.
//
// Job line (one JSON object per line):
//   {"id": 7,                       // required; number or string
//    "program": "nbody",            // exactly one of program /
//    "larcs": "algorithm ...",      //   larcs (inline source) /
//    "program_file": "x.larcs",     //   program_file (path)
//    "bind": {"n": 15, "s": 4},     // optional integer bindings
//    "topology": "mesh:4x4",        // required
//    "options": {"portfolio": 8,    // optional mapper options
//                "anneal": 2, "heft": true, "multilevel": 0,
//                "seed": 123, "refine": false,
//                "refine_placement": false, "load_bound": -1,
//                "no_canned": false, "no_group": false,
//                "no_systolic": false, "jobs": 1, "budget_ms": 0},
//    "deadline_ms": 50}             // optional per-job deadline
//
// Result line, success:
//   {"id":"7","status":"ok","digest":"<16 hex>","cache":"hit|miss",
//    "strategy":"General","completion":N,"external_ipc":N,
//    "max_load":N,"procs":[...],"wall_ms":1.234}
// Result line, error (the job failed; the daemon never exits):
//   {"id":"7","line":3,"status":"error","code":C,"error":"..."}
//
// Per-job error codes reuse the CLI exit-code contract, extended with
// two server-only conditions:
//   1 internal, 2 malformed job (usage), 3 bad input (unknown
//   program/topology, malformed LaRCS), 4 mapping infeasible,
//   5 rejected (admission control: queue full), 6 deadline expired.
//
// Every field order and number rendering below is deterministic, so a
// result stream normalized by (id, line) and stripped of the volatile
// wall_ms field is byte-identical across runs and --jobs values.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "oregami/mapper/driver.hpp"
#include "oregami/server/result_cache.hpp"

namespace oregami::server {

/// Per-job error codes (see the contract above).
inline constexpr int kJobOk = 0;
inline constexpr int kJobInternal = 1;
inline constexpr int kJobMalformed = 2;
inline constexpr int kJobBadInput = 3;
inline constexpr int kJobInfeasible = 4;
inline constexpr int kJobRejected = 5;
inline constexpr int kJobDeadline = 6;

/// A structured per-job failure; the server converts it to an error
/// result line instead of ever letting it escape.
class WireError : public std::runtime_error {
 public:
  WireError(int code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] int code() const noexcept { return code_; }

 private:
  int code_;
};

/// One parsed job request (inputs still textual; the server compiles
/// them in the worker).
struct WireJob {
  std::string id;  ///< echoed verbatim (numbers rendered canonically)
  std::size_t line = 0;  ///< 1-based input line, for diagnostics
  std::string program;       ///< built-in program name, or
  std::string larcs;         ///< inline LaRCS source, or
  std::string program_file;  ///< path to a LaRCS file
  std::map<std::string, long> bindings;
  std::string topology;
  MapperOptions options;  ///< normalized (server defaults: jobs = 1)
  std::int64_t deadline_ms = 0;  ///< 0 = server default / none
};

/// Parses one job line. Throws WireError with an exhaustive message
/// ('job 7: unknown topology "taurus"') -- kJobMalformed for JSON /
/// schema violations, kJobBadInput for well-formed jobs naming unknown
/// inputs that can be detected without compiling.
[[nodiscard]] WireJob parse_job(const std::string& json_line,
                                std::size_t line_number);

/// Renders a success result line (no trailing newline). `wall_ms` < 0
/// omits nothing but prints 0.000 (the deterministic server mode).
[[nodiscard]] std::string format_ok_result(const std::string& id,
                                           std::uint64_t digest,
                                           bool cache_hit,
                                           const CachedOutcome& outcome,
                                           double wall_ms);

/// Renders an error result line (no trailing newline). `id` may be
/// empty when the line never parsed far enough to yield one.
/// `retry_after_ms` >= 0 adds a "retry_after_ms" backoff hint (emitted
/// by code-5 rejections, derived deterministically from queue depth);
/// the default -1 omits the field.
[[nodiscard]] std::string format_error_result(
    const std::string& id, std::size_t line_number, int code,
    const std::string& message, std::int64_t retry_after_ms = -1);

/// JSON string escaping (shared with the formatters; exposed for
/// tests and tools).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace oregami::server
