#include "oregami/server/wire.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "oregami/support/hash.hpp"

namespace oregami::server {

namespace {

// ---------------------------------------------------------------------
// A minimal strict JSON reader (objects, arrays, strings, numbers,
// booleans, null) sufficient for one job line. Strictness is the
// point: every deviation produces a located, quotable message, because
// the daemon's only way to "crash" on bad input is a good error line.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;  ///< String payload, or the raw number token
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::Null: return "null";
    case JsonValue::Kind::Bool: return "a boolean";
    case JsonValue::Kind::Number: return "a number";
    case JsonValue::Kind::String: return "a string";
    case JsonValue::Kind::Array: return "an array";
    case JsonValue::Kind::Object: return "an object";
  }
  return "a value";
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON object");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw WireError(kJobMalformed, "JSON error at column " +
                                       std::to_string(pos_ + 1) + ": " +
                                       what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_keyword(const char* kw) {
    std::size_t n = 0;
    while (kw[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, kw) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"':
        v.kind = JsonValue::Kind::String;
        v.str = string();
        return v;
      case 't':
        if (consume_keyword("true")) {
          v.kind = JsonValue::Kind::Bool;
          v.b = true;
          return v;
        }
        fail("invalid literal (did you mean true?)");
      case 'f':
        if (consume_keyword("false")) {
          v.kind = JsonValue::Kind::Bool;
          v.b = false;
          return v;
        }
        fail("invalid literal (did you mean false?)");
      case 'n':
        if (consume_keyword("null")) {
          v.kind = JsonValue::Kind::Null;
          return v;
        }
        fail("invalid literal (did you mean null?)");
      default:
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') {
        fail("object keys must be strings");
      }
      std::string key = string();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad hex digit in \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // supported; LaRCS sources are ASCII).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail(std::string("unknown escape \\") + esc);
        }
        continue;
      }
      out += c;
    }
    fail("unterminated string");
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid value");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.str = text_.substr(start, pos_ - start);
    try {
      v.num = std::stod(v.str);
    } catch (const std::exception&) {
      fail("malformed number '" + v.str + "'");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Schema: job fields and the options sub-object.
// ---------------------------------------------------------------------

/// Context threaded through validation so every message names the job.
struct JobContext {
  std::string prefix;  ///< "job 7: " (or "line 3: " before id is known)

  [[noreturn]] void fail(int code, const std::string& what) const {
    throw WireError(code, prefix + what);
  }
};

long expect_integer(const JobContext& ctx, const JsonValue& v,
                    const std::string& field) {
  if (v.kind != JsonValue::Kind::Number) {
    ctx.fail(kJobMalformed,
             "field \"" + field + "\" must be an integer, got " +
                 kind_name(v.kind));
  }
  if (std::floor(v.num) != v.num || std::abs(v.num) > 9.0e15) {
    ctx.fail(kJobMalformed,
             "field \"" + field + "\" must be an integer, got '" + v.str +
                 "'");
  }
  return static_cast<long>(v.num);
}

bool expect_bool(const JobContext& ctx, const JsonValue& v,
                 const std::string& field) {
  if (v.kind != JsonValue::Kind::Bool) {
    ctx.fail(kJobMalformed,
             "field \"" + field + "\" must be a boolean, got " +
                 kind_name(v.kind));
  }
  return v.b;
}

std::string expect_string(const JobContext& ctx, const JsonValue& v,
                          const std::string& field) {
  if (v.kind != JsonValue::Kind::String) {
    ctx.fail(kJobMalformed,
             "field \"" + field + "\" must be a string, got " +
                 kind_name(v.kind));
  }
  return v.str;
}

void apply_options(const JobContext& ctx, const JsonValue& obj,
                   WireJob& job) {
  if (obj.kind != JsonValue::Kind::Object) {
    ctx.fail(kJobMalformed, "field \"options\" must be an object, got " +
                                std::string(kind_name(obj.kind)));
  }
  MapperOptions& mo = job.options;
  for (const auto& [key, v] : obj.object) {
    if (key == "portfolio") {
      const long n = expect_integer(ctx, v, "options.portfolio");
      if (n < 0) {
        ctx.fail(kJobMalformed, "options.portfolio must be >= 0");
      }
      mo.portfolio = static_cast<int>(n);
    } else if (key == "anneal") {
      const long n = expect_integer(ctx, v, "options.anneal");
      if (n < 0) {
        ctx.fail(kJobMalformed, "options.anneal must be >= 0");
      }
      mo.anneal = static_cast<int>(n);
    } else if (key == "heft") {
      mo.heft = expect_bool(ctx, v, "options.heft");
    } else if (key == "multilevel") {
      const long n = expect_integer(ctx, v, "options.multilevel");
      if (n > 64 || (n < 0 && n != -1)) {
        ctx.fail(kJobMalformed,
                 "options.multilevel must be 0 (off), -1 (auto depth) or "
                 "1..64 (level cap)");
      }
      mo.multilevel = static_cast<int>(n);
    } else if (key == "seed") {
      const long n = expect_integer(ctx, v, "options.seed");
      if (n < 0) {
        ctx.fail(kJobMalformed, "options.seed must be >= 0");
      }
      mo.portfolio_seed = static_cast<std::uint64_t>(n);
    } else if (key == "refine") {
      mo.refine = expect_bool(ctx, v, "options.refine");
    } else if (key == "refine_placement") {
      mo.refine_placement = expect_bool(ctx, v, "options.refine_placement");
    } else if (key == "load_bound") {
      mo.load_bound_B =
          static_cast<int>(expect_integer(ctx, v, "options.load_bound"));
    } else if (key == "no_canned") {
      mo.allow_canned = !expect_bool(ctx, v, "options.no_canned");
    } else if (key == "no_group") {
      mo.allow_group = !expect_bool(ctx, v, "options.no_group");
    } else if (key == "no_systolic") {
      mo.allow_systolic = !expect_bool(ctx, v, "options.no_systolic");
    } else if (key == "jobs") {
      const long n = expect_integer(ctx, v, "options.jobs");
      if (n < 0) {
        ctx.fail(kJobMalformed,
                 "options.jobs must be >= 0 (0 = all cores)");
      }
      mo.jobs = static_cast<int>(n);
    } else if (key == "budget_ms") {
      mo.multilevel_budget_ms = expect_integer(ctx, v, "options.budget_ms");
    } else {
      ctx.fail(kJobMalformed,
               "unknown option \"" + key +
                   "\" (known: portfolio, anneal, heft, multilevel, seed, "
                   "refine, refine_placement, load_bound, no_canned, "
                   "no_group, no_systolic, jobs, budget_ms)");
    }
  }
  // The same flag-combination contract the CLI enforces with exit 2.
  if (mo.anneal > 0 && mo.portfolio <= 0) {
    ctx.fail(kJobMalformed,
             "options.anneal requires options.portfolio > 0");
  }
  if (mo.heft && mo.portfolio <= 0) {
    ctx.fail(kJobMalformed, "options.heft requires options.portfolio > 0");
  }
  if (mo.multilevel != 0 && mo.portfolio > 0) {
    ctx.fail(kJobMalformed,
             "options.multilevel is incompatible with options.portfolio");
  }
}

/// Canonical rendering of the id value (integers keep their token, so
/// a numeric 7 echoes as "7").
std::string render_id(const JobContext& ctx, const JsonValue& v) {
  if (v.kind == JsonValue::Kind::String) {
    if (v.str.empty()) {
      ctx.fail(kJobMalformed, "field \"id\" must not be empty");
    }
    return v.str;
  }
  if (v.kind == JsonValue::Kind::Number) {
    if (std::floor(v.num) != v.num) {
      ctx.fail(kJobMalformed, "field \"id\" must be an integer or string");
    }
    return v.str;  // the raw integer token
  }
  ctx.fail(kJobMalformed, "field \"id\" must be an integer or string, got " +
                              std::string(kind_name(v.kind)));
}

}  // namespace

WireJob parse_job(const std::string& json_line, std::size_t line_number) {
  JobContext ctx;
  ctx.prefix = "line " + std::to_string(line_number) + ": ";

  JsonValue root;
  try {
    root = JsonParser(json_line).parse();
  } catch (const WireError& e) {
    throw WireError(e.code(), ctx.prefix + e.what());
  }
  if (root.kind != JsonValue::Kind::Object) {
    ctx.fail(kJobMalformed, "a job must be a JSON object, got " +
                                std::string(kind_name(root.kind)));
  }

  WireJob job;
  job.line = line_number;
  // Server jobs never fan out per-candidate by default: parallelism
  // lives across jobs, so one job does not monopolise the pool.
  job.options.jobs = 1;

  const JsonValue* id = root.find("id");
  if (id == nullptr) {
    ctx.fail(kJobMalformed, "missing required field \"id\"");
  }
  job.id = render_id(ctx, *id);
  ctx.prefix = "job " + job.id + ": ";

  for (const auto& [key, v] : root.object) {
    if (key == "id") {
      continue;
    } else if (key == "program") {
      job.program = expect_string(ctx, v, "program");
    } else if (key == "larcs") {
      job.larcs = expect_string(ctx, v, "larcs");
    } else if (key == "program_file") {
      job.program_file = expect_string(ctx, v, "program_file");
    } else if (key == "topology") {
      job.topology = expect_string(ctx, v, "topology");
    } else if (key == "bind") {
      if (v.kind != JsonValue::Kind::Object) {
        ctx.fail(kJobMalformed, "field \"bind\" must be an object, got " +
                                    std::string(kind_name(v.kind)));
      }
      for (const auto& [name, bound] : v.object) {
        job.bindings[name] = expect_integer(ctx, bound, "bind." + name);
      }
    } else if (key == "options") {
      apply_options(ctx, v, job);
    } else if (key == "deadline_ms") {
      job.deadline_ms = expect_integer(ctx, v, "deadline_ms");
    } else {
      ctx.fail(kJobMalformed,
               "unknown field \"" + key +
                   "\" (known: id, program, larcs, program_file, bind, "
                   "topology, options, deadline_ms)");
    }
  }

  const int sources = (job.program.empty() ? 0 : 1) +
                      (job.larcs.empty() ? 0 : 1) +
                      (job.program_file.empty() ? 0 : 1);
  if (sources == 0) {
    ctx.fail(kJobMalformed,
             "a job needs exactly one of \"program\", \"larcs\" or "
             "\"program_file\"");
  }
  if (sources > 1) {
    ctx.fail(kJobMalformed,
             "\"program\", \"larcs\" and \"program_file\" are mutually "
             "exclusive");
  }
  if (job.topology.empty()) {
    ctx.fail(kJobMalformed, "missing required field \"topology\"");
  }
  return job;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_ok_result(const std::string& id, std::uint64_t digest,
                             bool cache_hit, const CachedOutcome& outcome,
                             double wall_ms) {
  std::string out;
  out.reserve(64 + outcome.proc_of_task.size() * 4);
  out += "{\"id\":\"" + json_escape(id) + "\",\"status\":\"ok\"";
  out += ",\"digest\":\"" + digest_hex(digest) + "\"";
  out += ",\"cache\":\"";
  out += cache_hit ? "hit" : "miss";
  out += "\",\"strategy\":\"" + json_escape(outcome.strategy) + "\"";
  out += ",\"completion\":" + std::to_string(outcome.completion);
  out += ",\"external_ipc\":" + std::to_string(outcome.external_ipc);
  out += ",\"max_load\":" + std::to_string(outcome.max_load);
  out += ",\"procs\":[";
  for (std::size_t i = 0; i < outcome.proc_of_task.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(outcome.proc_of_task[i]);
  }
  out += ']';
  char wall[32];
  std::snprintf(wall, sizeof(wall), "%.3f", wall_ms < 0 ? 0.0 : wall_ms);
  out += ",\"wall_ms\":";
  out += wall;
  out += '}';
  return out;
}

std::string format_error_result(const std::string& id,
                                std::size_t line_number, int code,
                                const std::string& message,
                                std::int64_t retry_after_ms) {
  std::string out = "{\"id\":";
  if (id.empty()) {
    out += "null";
  } else {
    out += '"' + json_escape(id) + '"';
  }
  out += ",\"line\":" + std::to_string(line_number);
  out += ",\"status\":\"error\",\"code\":" + std::to_string(code);
  if (retry_after_ms >= 0) {
    out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms);
  }
  out += ",\"error\":\"" + json_escape(message) + "\"}";
  return out;
}

}  // namespace oregami::server
