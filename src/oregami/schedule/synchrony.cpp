#include "oregami/schedule/synchrony.hpp"

#include <algorithm>

#include "oregami/support/error.hpp"

namespace oregami {

ScheduleResult derive_synchrony_sets(const TaskGraph& graph,
                                     const std::vector<int>& proc_of_task,
                                     int num_procs) {
  OREGAMI_ASSERT(proc_of_task.size() ==
                     static_cast<std::size_t>(graph.num_tasks()),
                 "placement must cover every task");
  ScheduleResult result;
  result.local_order.resize(static_cast<std::size_t>(num_procs));
  for (int t = 0; t < graph.num_tasks(); ++t) {
    result.local_order[static_cast<std::size_t>(
                           proc_of_task[static_cast<std::size_t>(t)])]
        .push_back(t);
  }
  std::size_t depth = 0;
  for (auto& order : result.local_order) {
    std::sort(order.begin(), order.end());
    depth = std::max(depth, order.size());
  }
  result.set_of_task.assign(static_cast<std::size_t>(graph.num_tasks()),
                            -1);
  for (std::size_t k = 0; k < depth; ++k) {
    SynchronySet set;
    set.index = static_cast<int>(k);
    for (const auto& order : result.local_order) {
      if (k < order.size()) {
        set.tasks.push_back(order[k]);
        result.set_of_task[static_cast<std::size_t>(order[k])] =
            static_cast<int>(k);
      }
    }
    std::sort(set.tasks.begin(), set.tasks.end());
    result.sets.push_back(std::move(set));
  }
  return result;
}

namespace {

std::string local_tasks_string(const TaskGraph& graph,
                               const std::vector<int>& order) {
  if (order.empty()) {
    return "idle";
  }
  std::string out = "(";
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i != 0) {
      out += "; ";
    }
    out += graph.task_name(order[i]);
  }
  return out + ")";
}

std::string render(const PhaseTree& node, const TaskGraph& graph,
                   const std::string& local_exec) {
  switch (node.kind) {
    case PhaseTree::Kind::Idle:
      return "eps";
    case PhaseTree::Kind::Comm:
      return graph.comm_phases()[static_cast<std::size_t>(node.phase_index)]
          .name;
    case PhaseTree::Kind::Exec:
      return local_exec;
    case PhaseTree::Kind::Seq: {
      std::string out = "(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i != 0) {
          out += "; ";
        }
        out += render(node.children[i], graph, local_exec);
      }
      return out + ")";
    }
    case PhaseTree::Kind::Par: {
      std::string out = "(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i != 0) {
          out += " || ";
        }
        out += render(node.children[i], graph, local_exec);
      }
      return out + ")";
    }
    case PhaseTree::Kind::Repeat:
      return render(node.children.front(), graph, local_exec) + "^" +
             std::to_string(node.count);
  }
  return "?";
}

}  // namespace

std::string local_directive(const TaskGraph& graph,
                            const ScheduleResult& schedule, int processor) {
  OREGAMI_ASSERT(
      processor >= 0 &&
          static_cast<std::size_t>(processor) < schedule.local_order.size(),
      "processor out of range");
  const std::string local_exec = local_tasks_string(
      graph, schedule.local_order[static_cast<std::size_t>(processor)]);
  if (graph.phase_expr().kind == PhaseTree::Kind::Idle) {
    return local_exec;
  }
  return render(graph.phase_expr(), graph, local_exec);
}

std::vector<PhaseRouting> synchrony_route(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo, const ScheduleResult& schedule,
    const RouteOptions& options) {
  // Present each phase's edges in synchrony order by building a
  // reordered shadow graph, routing it, and mapping routes back.
  TaskGraph shadow;
  for (int t = 0; t < graph.num_tasks(); ++t) {
    shadow.add_task(graph.task_name(t));
  }
  std::vector<std::vector<std::size_t>> original_index_of;
  for (const auto& phase : graph.comm_phases()) {
    const int p = shadow.add_comm_phase(phase.name);
    std::vector<std::size_t> order(phase.edges.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const int sa = schedule.set_of_task[
                           static_cast<std::size_t>(phase.edges[a].src)];
                       const int sb = schedule.set_of_task[
                           static_cast<std::size_t>(phase.edges[b].src)];
                       return sa < sb;
                     });
    for (const std::size_t i : order) {
      const auto& e = phase.edges[i];
      shadow.add_comm_edge(p, e.src, e.dst, e.volume);
    }
    original_index_of.push_back(std::move(order));
  }

  const auto shadow_routing = mm_route(shadow, proc_of_task, topo, options);

  std::vector<PhaseRouting> result(graph.comm_phases().size());
  for (std::size_t k = 0; k < result.size(); ++k) {
    result[k].route_of_edge.resize(
        graph.comm_phases()[k].edges.size());
    for (std::size_t pos = 0; pos < original_index_of[k].size(); ++pos) {
      result[k].route_of_edge[original_index_of[k][pos]] =
          shadow_routing[k].route_of_edge[pos];
    }
  }
  return result;
}

}  // namespace oregami
