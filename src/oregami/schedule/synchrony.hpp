// Task synchrony sets and local scheduling directives (paper §6,
// "Scheduling"): many OREGAMI workloads run lockstep through their
// phases, so once MAPPER has assigned several tasks to one processor it
// pays to coordinate *which* of them executes when across the machine.
//
// A synchrony set is "a set of tasks, one on each processor, that
// should be executing at the same time". This module derives the sets,
// emits per-processor scheduling directives in a path-expression-like
// notation (after [CH74], as the paper proposes), and uses the sets to
// refine MM-Route: messages whose sources share a synchrony set are
// matched to links together, wave by wave.
#pragma once

#include <string>
#include <vector>

#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"
#include "oregami/mapper/mm_route.hpp"

namespace oregami {

/// One synchrony set: at most one task per processor.
struct SynchronySet {
  int index = 0;
  std::vector<int> tasks;  ///< sorted task ids
};

struct ScheduleResult {
  /// Sets in execution order; their union covers every task.
  std::vector<SynchronySet> sets;
  /// sets-index of each task.
  std::vector<int> set_of_task;
  /// Tasks of each processor in local execution order.
  std::vector<std::vector<int>> local_order;
};

/// Derives synchrony sets from a placement. Each processor's tasks are
/// ordered by task id (LaRCS numbers tasks along the label space, so
/// equal ranks across processors correspond across the computation);
/// set k holds every processor's k-th task.
[[nodiscard]] ScheduleResult derive_synchrony_sets(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    int num_procs);

/// The processor's local scheduling directive: the phase expression
/// with each execution phase expanded to the processor's task sequence,
/// e.g. "((ring; (body(0); body(8)))^8; chordal; (body(0); body(8)))^4".
[[nodiscard]] std::string local_directive(const TaskGraph& graph,
                                          const ScheduleResult& schedule,
                                          int processor);

/// Schedule-aware MM-Route: within every phase, messages are presented
/// to the matcher in synchrony-set order of their source tasks, so each
/// matching wave serves one synchrony set before the next (the §6
/// "identification of these synchrony sets can be used to refine the
/// routing algorithm"). Routes come back in the phase's original edge
/// order.
[[nodiscard]] std::vector<PhaseRouting> synchrony_route(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo, const ScheduleResult& schedule,
    const RouteOptions& options = {});

}  // namespace oregami
