// Maximum-weight matching in general graphs (Edmonds' blossom
// algorithm, O(V^3) primal-dual implementation).
//
// This is the optimality engine behind Algorithm MWM-Contract
// (paper §4.3): pairing task clusters so that the total communication
// weight internalised inside pairs is maximum, which minimises the
// remaining inter-processor communication. The paper cites an
// O(E V log V) algorithm from [Lo88]; we use the classic O(V^3)
// formulation, which has the same optimality guarantee and is more than
// fast enough at OREGAMI scales (hundreds of clusters).
#pragma once

#include <cstdint>
#include <vector>

#include "oregami/graph/graph.hpp"

namespace oregami {

/// Result of a general-graph matching. `mate[v]` is v's partner or -1.
struct GeneralMatching {
  std::vector<int> mate;
  std::int64_t total_weight = 0;

  [[nodiscard]] int num_pairs() const;
};

/// Computes a maximum-weight matching of `g`. Edge weights must be
/// positive (OREGAMI communication volumes always are); edges with
/// weight <= 0 would never appear in a maximum-weight matching and are
/// rejected. The matching maximises total weight, not cardinality.
[[nodiscard]] GeneralMatching max_weight_matching(const Graph& g);

/// Exhaustive-search reference implementation, O(V!!) -- usable only for
/// tiny graphs; exists so tests can certify the blossom code.
[[nodiscard]] GeneralMatching brute_force_max_weight_matching(
    const Graph& g);

}  // namespace oregami
