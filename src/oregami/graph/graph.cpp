#include "oregami/graph/graph.hpp"

#include <algorithm>

#include "oregami/support/error.hpp"

namespace oregami {

Graph::Graph(int num_vertices) {
  OREGAMI_ASSERT(num_vertices >= 0, "vertex count must be non-negative");
  adj_.resize(static_cast<std::size_t>(num_vertices));
}

int Graph::add_edge(int u, int v, std::int64_t weight) {
  OREGAMI_ASSERT(u >= 0 && u < num_vertices(), "edge endpoint out of range");
  OREGAMI_ASSERT(v >= 0 && v < num_vertices(), "edge endpoint out of range");
  OREGAMI_ASSERT(u != v, "self-loops are not supported");

  for (auto& a : adj_[static_cast<std::size_t>(u)]) {
    if (a.neighbor == v) {
      a.weight += weight;
      edges_[static_cast<std::size_t>(a.edge_id)].weight += weight;
      for (auto& b : adj_[static_cast<std::size_t>(v)]) {
        if (b.edge_id == a.edge_id) {
          b.weight += weight;
          break;
        }
      }
      return a.edge_id;
    }
  }

  const int id = num_edges();
  edges_.push_back({std::min(u, v), std::max(u, v), weight});
  adj_[static_cast<std::size_t>(u)].push_back({v, weight, id});
  adj_[static_cast<std::size_t>(v)].push_back({u, weight, id});
  return id;
}

const std::vector<Adjacency>& Graph::neighbors(int v) const {
  OREGAMI_ASSERT(v >= 0 && v < num_vertices(), "vertex out of range");
  return adj_[static_cast<std::size_t>(v)];
}

std::optional<std::int64_t> Graph::edge_weight(int u, int v) const {
  for (const auto& a : neighbors(u)) {
    if (a.neighbor == v) {
      return a.weight;
    }
  }
  return std::nullopt;
}

std::int64_t Graph::total_weight() const {
  std::int64_t sum = 0;
  for (const auto& e : edges_) {
    sum += e.weight;
  }
  return sum;
}

std::vector<int> connected_components(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<int> stack;
  int next_id = 0;
  for (int s = 0; s < n; ++s) {
    if (comp[static_cast<std::size_t>(s)] != -1) {
      continue;
    }
    comp[static_cast<std::size_t>(s)] = next_id;
    stack.push_back(s);
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const auto& a : g.neighbors(v)) {
        if (comp[static_cast<std::size_t>(a.neighbor)] == -1) {
          comp[static_cast<std::size_t>(a.neighbor)] = next_id;
          stack.push_back(a.neighbor);
        }
      }
    }
    ++next_id;
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) {
    return true;
  }
  const auto comp = connected_components(g);
  return std::all_of(comp.begin(), comp.end(),
                     [](int c) { return c == 0; });
}

std::vector<int> degree_histogram(const Graph& g) {
  int max_deg = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  std::vector<int> hist(static_cast<std::size_t>(max_deg) + 1, 0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    ++hist[static_cast<std::size_t>(g.degree(v))];
  }
  return hist;
}

}  // namespace oregami
