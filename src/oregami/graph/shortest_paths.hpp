// Unweighted shortest-path machinery (hop counts). Network topologies
// in OREGAMI are unweighted -- a hop is a hop -- so BFS suffices and the
// all-pairs table for a P-processor network is P x P ints.
#pragma once

#include <vector>

#include "oregami/graph/graph.hpp"

namespace oregami {

/// Hop distance from `source` to every vertex; unreachable = -1.
[[nodiscard]] std::vector<int> bfs_distances(const Graph& g, int source);

/// All-pairs hop distances; result[u][v] = -1 when unreachable.
[[nodiscard]] std::vector<std::vector<int>> all_pairs_distances(
    const Graph& g);

/// Eccentricity-derived measures (for topology reporting/tests).
/// Diameter of a connected graph (max over pairs of hop distance);
/// throws MappingError when disconnected.
[[nodiscard]] int diameter(const Graph& g);

/// One shortest path from `src` to `dst` as a vertex sequence
/// (src first, dst last); empty when unreachable.
[[nodiscard]] std::vector<int> shortest_path(const Graph& g, int src,
                                             int dst);

}  // namespace oregami
