#include "oregami/graph/shortest_paths.hpp"

#include <algorithm>
#include <queue>

#include "oregami/support/error.hpp"

namespace oregami {

std::vector<int> bfs_distances(const Graph& g, int source) {
  OREGAMI_ASSERT(source >= 0 && source < g.num_vertices(),
                 "BFS source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<int> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (const auto& a : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(a.neighbor)] == -1) {
        dist[static_cast<std::size_t>(a.neighbor)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push(a.neighbor);
      }
    }
  }
  return dist;
}

std::vector<std::vector<int>> all_pairs_distances(const Graph& g) {
  std::vector<std::vector<int>> table;
  table.reserve(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    table.push_back(bfs_distances(g, v));
  }
  return table;
}

int diameter(const Graph& g) {
  if (g.num_vertices() == 0) {
    return 0;
  }
  int best = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (const int d : dist) {
      if (d == -1) {
        throw MappingError("diameter: graph is disconnected");
      }
      best = std::max(best, d);
    }
  }
  return best;
}

std::vector<int> shortest_path(const Graph& g, int src, int dst) {
  OREGAMI_ASSERT(src >= 0 && src < g.num_vertices(), "src out of range");
  OREGAMI_ASSERT(dst >= 0 && dst < g.num_vertices(), "dst out of range");
  std::vector<int> parent(static_cast<std::size_t>(g.num_vertices()), -2);
  std::queue<int> q;
  parent[static_cast<std::size_t>(src)] = -1;
  q.push(src);
  while (!q.empty() && parent[static_cast<std::size_t>(dst)] == -2) {
    const int v = q.front();
    q.pop();
    for (const auto& a : g.neighbors(v)) {
      if (parent[static_cast<std::size_t>(a.neighbor)] == -2) {
        parent[static_cast<std::size_t>(a.neighbor)] = v;
        q.push(a.neighbor);
      }
    }
  }
  if (parent[static_cast<std::size_t>(dst)] == -2) {
    return {};
  }
  std::vector<int> path;
  for (int v = dst; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace oregami
