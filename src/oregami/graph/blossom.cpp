#include "oregami/graph/blossom.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "oregami/support/error.hpp"

namespace oregami {

int GeneralMatching::num_pairs() const {
  int count = 0;
  for (const int m : mate) {
    if (m != -1) {
      ++count;
    }
  }
  return count / 2;
}

namespace {

/// Primal-dual blossom solver. Internally 1-indexed with vertex ids
/// 1..n and blossom ids n+1..2n; the layout follows the widely verified
/// "weighted blossom" template (dual labels on original vertices absorb
/// per-iteration adjustments; blossom duals are tracked only for the
/// expansion rule). Statuses: 0 = outer (S), 1 = inner (T),
/// -1 = unlabeled.
class BlossomSolver {
 public:
  explicit BlossomSolver(int n)
      : n_(n),
        cap_(2 * n + 1),
        g_(static_cast<std::size_t>(cap_),
           std::vector<InternalEdge>(static_cast<std::size_t>(cap_))),
        flower_from_(static_cast<std::size_t>(cap_),
                     std::vector<int>(static_cast<std::size_t>(n_ + 1), 0)),
        lab_(static_cast<std::size_t>(cap_), 0),
        match_(static_cast<std::size_t>(cap_), 0),
        slack_(static_cast<std::size_t>(cap_), 0),
        st_(static_cast<std::size_t>(cap_), 0),
        pa_(static_cast<std::size_t>(cap_), 0),
        s_(static_cast<std::size_t>(cap_), -1),
        vis_(static_cast<std::size_t>(cap_), 0),
        flower_(static_cast<std::size_t>(cap_)) {
    for (int u = 0; u < cap_; ++u) {
      for (int v = 0; v < cap_; ++v) {
        g_[idx(u)][idx(v)] = {u, v, 0};
      }
    }
  }

  void add_edge(int u, int v, std::int64_t w) {
    // 1-indexed endpoints; keep the heavier edge on duplicates.
    g_[idx(u)][idx(v)].w = std::max(g_[idx(u)][idx(v)].w, w);
    g_[idx(v)][idx(u)].w = g_[idx(u)][idx(v)].w;
  }

  GeneralMatching solve() {
    std::fill(match_.begin(), match_.end(), 0);
    n_x_ = n_;
    for (int u = 0; u <= n_; ++u) {
      st_[idx(u)] = u;
      flower_[idx(u)].clear();
    }
    std::int64_t w_max = 0;
    for (int u = 1; u <= n_; ++u) {
      for (int v = 1; v <= n_; ++v) {
        flower_from_[idx(u)][idx(v)] = (u == v ? u : 0);
        w_max = std::max(w_max, g_[idx(u)][idx(v)].w);
      }
    }
    for (int u = 1; u <= n_; ++u) {
      lab_[idx(u)] = w_max;
    }
    while (phase()) {
    }

    GeneralMatching result;
    result.mate.assign(static_cast<std::size_t>(n_), -1);
    for (int u = 1; u <= n_; ++u) {
      if (match_[idx(u)] != 0) {
        result.mate[static_cast<std::size_t>(u - 1)] = match_[idx(u)] - 1;
        if (match_[idx(u)] < u) {
          result.total_weight += g_[idx(u)][idx(match_[idx(u)])].w;
        }
      }
    }
    return result;
  }

 private:
  struct InternalEdge {
    int u = 0;
    int v = 0;
    std::int64_t w = 0;
  };

  static std::size_t idx(int i) { return static_cast<std::size_t>(i); }

  [[nodiscard]] std::int64_t e_delta(const InternalEdge& e) const {
    return lab_[idx(e.u)] + lab_[idx(e.v)] - g_[idx(e.u)][idx(e.v)].w * 2;
  }

  void update_slack(int u, int x) {
    if (slack_[idx(x)] == 0 ||
        e_delta(g_[idx(u)][idx(x)]) <
            e_delta(g_[idx(slack_[idx(x)])][idx(x)])) {
      slack_[idx(x)] = u;
    }
  }

  void set_slack(int x) {
    slack_[idx(x)] = 0;
    for (int u = 1; u <= n_; ++u) {
      if (g_[idx(u)][idx(x)].w > 0 && st_[idx(u)] != x &&
          s_[idx(st_[idx(u)])] == 0) {
        update_slack(u, x);
      }
    }
  }

  void q_push(int x) {
    if (x <= n_) {
      q_.push_back(x);
    } else {
      for (const int sub : flower_[idx(x)]) {
        q_push(sub);
      }
    }
  }

  void set_st(int x, int b) {
    st_[idx(x)] = b;
    if (x > n_) {
      for (const int sub : flower_[idx(x)]) {
        set_st(sub, b);
      }
    }
  }

  int get_pr(int b, int xr) {
    auto& f = flower_[idx(b)];
    const auto it = std::find(f.begin(), f.end(), xr);
    OREGAMI_ASSERT(it != f.end(), "blossom base not found");
    int pr = static_cast<int>(it - f.begin());
    if (pr % 2 == 1) {
      std::reverse(f.begin() + 1, f.end());
      return static_cast<int>(f.size()) - pr;
    }
    return pr;
  }

  void set_match(int u, int v) {
    match_[idx(u)] = g_[idx(u)][idx(v)].v;
    if (u > n_) {
      const InternalEdge e = g_[idx(u)][idx(v)];
      const int xr = flower_from_[idx(u)][idx(e.u)];
      const int pr = get_pr(u, xr);
      auto& f = flower_[idx(u)];
      for (int i = 0; i < pr; ++i) {
        set_match(f[idx(i)], f[idx(i ^ 1)]);
      }
      set_match(xr, v);
      std::rotate(f.begin(), f.begin() + pr, f.end());
    }
  }

  void augment(int u, int v) {
    for (;;) {
      const int xnv = st_[idx(match_[idx(u)])];
      set_match(u, v);
      if (xnv == 0) {
        return;
      }
      set_match(xnv, st_[idx(pa_[idx(xnv)])]);
      u = st_[idx(pa_[idx(xnv)])];
      v = xnv;
    }
  }

  int get_lca(int u, int v) {
    ++timestamp_;
    while (u != 0 || v != 0) {
      if (u != 0) {
        if (vis_[idx(u)] == timestamp_) {
          return u;
        }
        vis_[idx(u)] = timestamp_;
        u = st_[idx(match_[idx(u)])];
        if (u != 0) {
          u = st_[idx(pa_[idx(u)])];
        }
      }
      std::swap(u, v);
    }
    return 0;
  }

  void add_blossom(int u, int lca, int v) {
    int b = n_ + 1;
    while (b <= n_x_ && st_[idx(b)] != 0) {
      ++b;
    }
    if (b > n_x_) {
      ++n_x_;
    }
    OREGAMI_ASSERT(b < cap_, "blossom id capacity exceeded");
    lab_[idx(b)] = 0;
    s_[idx(b)] = 0;
    match_[idx(b)] = match_[idx(lca)];
    auto& f = flower_[idx(b)];
    f.clear();
    f.push_back(lca);
    for (int x = u, y; x != lca; x = st_[idx(pa_[idx(y)])]) {
      f.push_back(x);
      f.push_back(y = st_[idx(match_[idx(x)])]);
      q_push(y);
    }
    std::reverse(f.begin() + 1, f.end());
    for (int x = v, y; x != lca; x = st_[idx(pa_[idx(y)])]) {
      f.push_back(x);
      f.push_back(y = st_[idx(match_[idx(x)])]);
      q_push(y);
    }
    set_st(b, b);
    for (int x = 1; x <= n_x_; ++x) {
      g_[idx(b)][idx(x)].w = 0;
      g_[idx(x)][idx(b)].w = 0;
    }
    for (int x = 1; x <= n_; ++x) {
      flower_from_[idx(b)][idx(x)] = 0;
    }
    for (const int xs : f) {
      for (int x = 1; x <= n_x_; ++x) {
        if (g_[idx(b)][idx(x)].w == 0 ||
            e_delta(g_[idx(xs)][idx(x)]) < e_delta(g_[idx(b)][idx(x)])) {
          g_[idx(b)][idx(x)] = g_[idx(xs)][idx(x)];
          g_[idx(x)][idx(b)] = g_[idx(x)][idx(xs)];
        }
      }
      for (int x = 1; x <= n_; ++x) {
        if (flower_from_[idx(xs)][idx(x)] != 0) {
          flower_from_[idx(b)][idx(x)] = xs;
        }
      }
    }
    set_slack(b);
  }

  void expand_blossom(int b) {
    auto& f = flower_[idx(b)];
    for (const int sub : f) {
      set_st(sub, sub);
    }
    const int xr = flower_from_[idx(b)][idx(g_[idx(b)][idx(pa_[idx(b)])].u)];
    const int pr = get_pr(b, xr);
    for (int i = 0; i < pr; i += 2) {
      const int xs = f[idx(i)];
      const int xns = f[idx(i + 1)];
      pa_[idx(xs)] = g_[idx(xns)][idx(xs)].u;
      s_[idx(xs)] = 1;
      s_[idx(xns)] = 0;
      slack_[idx(xs)] = 0;
      set_slack(xns);
      q_push(xns);
    }
    s_[idx(xr)] = 1;
    pa_[idx(xr)] = pa_[idx(b)];
    for (std::size_t i = static_cast<std::size_t>(pr) + 1; i < f.size();
         ++i) {
      const int xs = f[i];
      s_[idx(xs)] = -1;
      set_slack(xs);
    }
    st_[idx(b)] = 0;
  }

  bool on_found_edge(const InternalEdge& e) {
    const int u = st_[idx(e.u)];
    const int v = st_[idx(e.v)];
    if (s_[idx(v)] == -1) {
      pa_[idx(v)] = e.u;
      s_[idx(v)] = 1;
      const int nu = st_[idx(match_[idx(v)])];
      slack_[idx(v)] = 0;
      slack_[idx(nu)] = 0;
      s_[idx(nu)] = 0;
      q_push(nu);
    } else if (s_[idx(v)] == 0) {
      const int lca = get_lca(u, v);
      if (lca == 0) {
        augment(u, v);
        augment(v, u);
        return true;
      }
      add_blossom(u, lca, v);
    }
    return false;
  }

  bool phase() {
    std::fill(s_.begin() + 1, s_.begin() + n_x_ + 1, -1);
    std::fill(slack_.begin() + 1, slack_.begin() + n_x_ + 1, 0);
    q_.clear();
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[idx(x)] == x && match_[idx(x)] == 0) {
        pa_[idx(x)] = 0;
        s_[idx(x)] = 0;
        q_push(x);
      }
    }
    if (q_.empty()) {
      return false;
    }
    for (;;) {
      while (!q_.empty()) {
        const int u = q_.front();
        q_.pop_front();
        if (s_[idx(st_[idx(u)])] == 1) {
          continue;
        }
        for (int v = 1; v <= n_; ++v) {
          if (g_[idx(u)][idx(v)].w > 0 && st_[idx(u)] != st_[idx(v)]) {
            if (e_delta(g_[idx(u)][idx(v)]) == 0) {
              if (on_found_edge(g_[idx(u)][idx(v)])) {
                return true;
              }
            } else {
              update_slack(u, st_[idx(v)]);
            }
          }
        }
      }

      std::int64_t d = std::numeric_limits<std::int64_t>::max();
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[idx(b)] == b && s_[idx(b)] == 1) {
          d = std::min(d, lab_[idx(b)] / 2);
        }
      }
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[idx(x)] == x && slack_[idx(x)] != 0) {
          if (s_[idx(x)] == -1) {
            d = std::min(d, e_delta(g_[idx(slack_[idx(x)])][idx(x)]));
          } else if (s_[idx(x)] == 0) {
            d = std::min(d, e_delta(g_[idx(slack_[idx(x)])][idx(x)]) / 2);
          }
        }
      }
      for (int u = 1; u <= n_; ++u) {
        if (s_[idx(st_[idx(u)])] == 0) {
          if (lab_[idx(u)] <= d) {
            return false;  // dual would hit zero: no augmenting path left
          }
          lab_[idx(u)] -= d;
        } else if (s_[idx(st_[idx(u)])] == 1) {
          lab_[idx(u)] += d;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[idx(b)] == b) {
          if (s_[idx(b)] == 0) {
            lab_[idx(b)] += d * 2;
          } else if (s_[idx(b)] == 1) {
            lab_[idx(b)] -= d * 2;
          }
        }
      }
      q_.clear();
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[idx(x)] == x && slack_[idx(x)] != 0 &&
            st_[idx(slack_[idx(x)])] != x &&
            e_delta(g_[idx(slack_[idx(x)])][idx(x)]) == 0) {
          if (on_found_edge(g_[idx(slack_[idx(x)])][idx(x)])) {
            return true;
          }
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[idx(b)] == b && s_[idx(b)] == 1 && lab_[idx(b)] == 0) {
          expand_blossom(b);
        }
      }
    }
  }

  int n_;
  int cap_;
  int n_x_ = 0;
  long timestamp_ = 0;
  std::vector<std::vector<InternalEdge>> g_;
  std::vector<std::vector<int>> flower_from_;
  std::vector<std::int64_t> lab_;
  std::vector<int> match_;
  std::vector<int> slack_;
  std::vector<int> st_;
  std::vector<int> pa_;
  std::vector<int> s_;
  std::vector<long> vis_;
  std::vector<std::vector<int>> flower_;
  std::deque<int> q_;
};

}  // namespace

GeneralMatching max_weight_matching(const Graph& g) {
  const int n = g.num_vertices();
  if (n == 0) {
    return {};
  }
  BlossomSolver solver(n);
  for (const auto& e : g.edges()) {
    OREGAMI_ASSERT(e.weight > 0,
                   "max_weight_matching requires positive edge weights");
    solver.add_edge(e.u + 1, e.v + 1, e.weight);
  }
  return solver.solve();
}

namespace {

void brute_force_rec(const std::vector<WeightedEdge>& edges,
                     std::size_t index, std::vector<int>& mate,
                     std::int64_t weight, GeneralMatching& best) {
  if (weight > best.total_weight) {
    best.total_weight = weight;
    best.mate = mate;
  }
  if (index >= edges.size()) {
    return;
  }
  // Skip this edge.
  brute_force_rec(edges, index + 1, mate, weight, best);
  const auto& e = edges[index];
  if (mate[static_cast<std::size_t>(e.u)] == -1 &&
      mate[static_cast<std::size_t>(e.v)] == -1) {
    mate[static_cast<std::size_t>(e.u)] = e.v;
    mate[static_cast<std::size_t>(e.v)] = e.u;
    brute_force_rec(edges, index + 1, mate, weight + e.weight, best);
    mate[static_cast<std::size_t>(e.u)] = -1;
    mate[static_cast<std::size_t>(e.v)] = -1;
  }
}

}  // namespace

GeneralMatching brute_force_max_weight_matching(const Graph& g) {
  OREGAMI_ASSERT(g.num_edges() <= 24,
                 "brute-force matching is for tiny certification graphs");
  GeneralMatching best;
  best.mate.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<int> mate(static_cast<std::size_t>(g.num_vertices()), -1);
  brute_force_rec(g.edges(), 0, mate, 0, best);
  return best;
}

}  // namespace oregami
