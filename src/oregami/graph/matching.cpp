#include "oregami/graph/matching.hpp"

#include <limits>
#include <queue>

#include "oregami/support/error.hpp"

namespace oregami {

BipartiteGraph::BipartiteGraph(int n_left, int n_right)
    : n_left_(n_left), n_right_(n_right) {
  OREGAMI_ASSERT(n_left >= 0 && n_right >= 0,
                 "bipartite side sizes must be non-negative");
  adj_.resize(static_cast<std::size_t>(n_left));
}

void BipartiteGraph::add_edge(int left, int right) {
  OREGAMI_ASSERT(left >= 0 && left < n_left_, "left vertex out of range");
  OREGAMI_ASSERT(right >= 0 && right < n_right_, "right vertex out of range");
  adj_[static_cast<std::size_t>(left)].push_back(right);
}

const std::vector<int>& BipartiteGraph::right_neighbors(int left) const {
  OREGAMI_ASSERT(left >= 0 && left < n_left_, "left vertex out of range");
  return adj_[static_cast<std::size_t>(left)];
}

std::size_t BipartiteGraph::num_edges() const {
  std::size_t count = 0;
  for (const auto& list : adj_) {
    count += list.size();
  }
  return count;
}

int BipartiteMatching::size() const {
  int count = 0;
  for (const int r : match_left) {
    if (r != -1) {
      ++count;
    }
  }
  return count;
}

BipartiteMatching greedy_maximal_matching(const BipartiteGraph& g) {
  BipartiteMatching m;
  m.match_left.assign(static_cast<std::size_t>(g.n_left()), -1);
  m.match_right.assign(static_cast<std::size_t>(g.n_right()), -1);
  for (int l = 0; l < g.n_left(); ++l) {
    for (const int r : g.right_neighbors(l)) {
      if (m.match_right[static_cast<std::size_t>(r)] == -1) {
        m.match_left[static_cast<std::size_t>(l)] = r;
        m.match_right[static_cast<std::size_t>(r)] = l;
        break;
      }
    }
  }
  return m;
}

namespace {

/// Hopcroft–Karp state; distances over left vertices with a virtual NIL.
class HopcroftKarpSolver {
 public:
  explicit HopcroftKarpSolver(const BipartiteGraph& g)
      : g_(g),
        match_left_(static_cast<std::size_t>(g.n_left()), -1),
        match_right_(static_cast<std::size_t>(g.n_right()), -1),
        dist_(static_cast<std::size_t>(g.n_left()), 0) {}

  BipartiteMatching solve() {
    while (bfs_layers()) {
      for (int l = 0; l < g_.n_left(); ++l) {
        if (match_left_[static_cast<std::size_t>(l)] == -1) {
          dfs_augment(l);
        }
      }
    }
    return {std::move(match_left_), std::move(match_right_)};
  }

 private:
  static constexpr int kInf = std::numeric_limits<int>::max();

  bool bfs_layers() {
    std::queue<int> q;
    bool found_free_right = false;
    for (int l = 0; l < g_.n_left(); ++l) {
      if (match_left_[static_cast<std::size_t>(l)] == -1) {
        dist_[static_cast<std::size_t>(l)] = 0;
        q.push(l);
      } else {
        dist_[static_cast<std::size_t>(l)] = kInf;
      }
    }
    int frontier_limit = kInf;
    while (!q.empty()) {
      const int l = q.front();
      q.pop();
      if (dist_[static_cast<std::size_t>(l)] >= frontier_limit) {
        continue;
      }
      for (const int r : g_.right_neighbors(l)) {
        const int next = match_right_[static_cast<std::size_t>(r)];
        if (next == -1) {
          // Augmenting path frontier reached; stop expanding deeper.
          frontier_limit = dist_[static_cast<std::size_t>(l)] + 1;
          found_free_right = true;
        } else if (dist_[static_cast<std::size_t>(next)] == kInf) {
          dist_[static_cast<std::size_t>(next)] =
              dist_[static_cast<std::size_t>(l)] + 1;
          q.push(next);
        }
      }
    }
    return found_free_right;
  }

  bool dfs_augment(int l) {
    for (const int r : g_.right_neighbors(l)) {
      const int next = match_right_[static_cast<std::size_t>(r)];
      if (next == -1 ||
          (dist_[static_cast<std::size_t>(next)] ==
               dist_[static_cast<std::size_t>(l)] + 1 &&
           dfs_augment(next))) {
        match_left_[static_cast<std::size_t>(l)] = r;
        match_right_[static_cast<std::size_t>(r)] = l;
        return true;
      }
    }
    dist_[static_cast<std::size_t>(l)] = kInf;
    return false;
  }

  const BipartiteGraph& g_;
  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> dist_;
};

}  // namespace

BipartiteMatching hopcroft_karp(const BipartiteGraph& g) {
  return HopcroftKarpSolver(g).solve();
}

bool is_valid_matching(const BipartiteGraph& g, const BipartiteMatching& m) {
  if (m.match_left.size() != static_cast<std::size_t>(g.n_left()) ||
      m.match_right.size() != static_cast<std::size_t>(g.n_right())) {
    return false;
  }
  for (int l = 0; l < g.n_left(); ++l) {
    const int r = m.match_left[static_cast<std::size_t>(l)];
    if (r == -1) {
      continue;
    }
    if (r < 0 || r >= g.n_right() ||
        m.match_right[static_cast<std::size_t>(r)] != l) {
      return false;
    }
    bool edge_exists = false;
    for (const int cand : g.right_neighbors(l)) {
      if (cand == r) {
        edge_exists = true;
        break;
      }
    }
    if (!edge_exists) {
      return false;
    }
  }
  for (int r = 0; r < g.n_right(); ++r) {
    const int l = m.match_right[static_cast<std::size_t>(r)];
    if (l != -1 && m.match_left[static_cast<std::size_t>(l)] != r) {
      return false;
    }
  }
  return true;
}

bool is_maximal_matching(const BipartiteGraph& g,
                         const BipartiteMatching& m) {
  for (int l = 0; l < g.n_left(); ++l) {
    if (m.match_left[static_cast<std::size_t>(l)] != -1) {
      continue;
    }
    for (const int r : g.right_neighbors(l)) {
      if (m.match_right[static_cast<std::size_t>(r)] == -1) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace oregami
