#include "oregami/graph/gray_code.hpp"

#include <bit>

#include "oregami/support/error.hpp"

namespace oregami {

std::uint32_t gray_code(std::uint32_t i) { return i ^ (i >> 1); }

std::uint32_t gray_rank(std::uint32_t code) {
  std::uint32_t rank = 0;
  for (; code != 0; code >>= 1) {
    rank ^= code;
  }
  return rank;
}

std::vector<std::uint32_t> gray_sequence(int bits) {
  OREGAMI_ASSERT(bits >= 0 && bits <= 30, "gray_sequence: bits out of range");
  std::vector<std::uint32_t> seq;
  seq.reserve(1u << bits);
  for (std::uint32_t i = 0; i < (1u << bits); ++i) {
    seq.push_back(gray_code(i));
  }
  return seq;
}

int popcount32(std::uint32_t x) { return std::popcount(x); }

bool is_power_of_two(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

int floor_log2(std::uint64_t x) {
  OREGAMI_ASSERT(x > 0, "floor_log2 requires a positive argument");
  return 63 - std::countl_zero(x);
}

}  // namespace oregami
