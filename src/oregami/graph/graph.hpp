// Generic undirected weighted graph used as the substrate for MAPPER's
// combinatorial algorithms (contraction, embedding) and for network
// topologies. Vertices are dense integers [0, n); parallel edges are
// collapsed by summing weights (the semantics MWM-Contract needs when
// merging clusters).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace oregami {

/// One endpoint record in an adjacency list.
struct Adjacency {
  int neighbor = 0;
  std::int64_t weight = 0;
  int edge_id = 0;  ///< index into Graph::edges()
};

/// An undirected weighted edge; `u < v` is not required on input but is
/// normalised internally.
struct WeightedEdge {
  int u = 0;
  int v = 0;
  std::int64_t weight = 0;
};

/// Dense undirected weighted graph with O(1) vertex/edge access.
///
/// Self-loops are rejected (no mapping algorithm in OREGAMI wants them);
/// adding an edge that already exists adds its weight to the existing
/// edge instead of creating a parallel edge.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_vertices);

  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(adj_.size());
  }
  [[nodiscard]] int num_edges() const {
    return static_cast<int>(edges_.size());
  }

  /// Adds (or reinforces) the undirected edge {u, v} with `weight`.
  /// Returns the edge id. Requires u != v and both in range.
  int add_edge(int u, int v, std::int64_t weight = 1);

  /// All edges, normalised to u < v.
  [[nodiscard]] const std::vector<WeightedEdge>& edges() const {
    return edges_;
  }

  /// Adjacency list of `v`.
  [[nodiscard]] const std::vector<Adjacency>& neighbors(int v) const;

  /// Weight of edge {u, v}, or nullopt when absent. O(deg).
  [[nodiscard]] std::optional<std::int64_t> edge_weight(int u, int v) const;

  /// True when {u, v} is an edge.
  [[nodiscard]] bool has_edge(int u, int v) const {
    return edge_weight(u, v).has_value();
  }

  /// Degree of `v`.
  [[nodiscard]] int degree(int v) const {
    return static_cast<int>(neighbors(v).size());
  }

  /// Sum of all edge weights.
  [[nodiscard]] std::int64_t total_weight() const;

 private:
  std::vector<std::vector<Adjacency>> adj_;
  std::vector<WeightedEdge> edges_;
};

/// True when the graph is connected (the empty graph counts as
/// connected).
[[nodiscard]] bool is_connected(const Graph& g);

/// Component id per vertex, ids dense from 0 in first-seen order.
[[nodiscard]] std::vector<int> connected_components(const Graph& g);

/// Degree histogram: result[d] = number of vertices with degree d.
[[nodiscard]] std::vector<int> degree_histogram(const Graph& g);

}  // namespace oregami
