// Reflected binary Gray codes. The workhorse of OREGAMI's canned
// embeddings (§4.1): consecutive Gray codewords differ in one bit, so a
// ring or mesh walked in Gray order embeds in a hypercube with
// dilation 1.
#pragma once

#include <cstdint>
#include <vector>

namespace oregami {

/// i-th codeword of the reflected binary Gray code.
[[nodiscard]] std::uint32_t gray_code(std::uint32_t i);

/// Inverse: the rank of codeword `code` in the reflected Gray sequence.
[[nodiscard]] std::uint32_t gray_rank(std::uint32_t code);

/// The full n-bit Gray sequence (2^n codewords). Requires n <= 30.
[[nodiscard]] std::vector<std::uint32_t> gray_sequence(int bits);

/// Number of 1-bits (Hamming weight).
[[nodiscard]] int popcount32(std::uint32_t x);

/// True when x is a power of two (x > 0).
[[nodiscard]] bool is_power_of_two(std::uint64_t x);

/// floor(log2(x)); requires x > 0.
[[nodiscard]] int floor_log2(std::uint64_t x);

}  // namespace oregami
