// Bipartite matching algorithms backing Algorithm MM-Route (paper §4.4).
//
// MM-Route repeatedly matches task-graph communication edges (left side,
// X) to network links (right side, Y). The paper uses a maximal matching
// with O(|X|^2 |Y|) total cost; we provide both that greedy maximal
// matching and Hopcroft–Karp maximum matching so the ablation bench can
// compare them.
#pragma once

#include <cstddef>
#include <vector>

namespace oregami {

/// A bipartite graph with left vertices [0, n_left) and right vertices
/// [0, n_right); edges stored as left-side adjacency lists.
class BipartiteGraph {
 public:
  BipartiteGraph(int n_left, int n_right);

  void add_edge(int left, int right);

  [[nodiscard]] int n_left() const { return n_left_; }
  [[nodiscard]] int n_right() const { return n_right_; }
  [[nodiscard]] const std::vector<int>& right_neighbors(int left) const;
  [[nodiscard]] std::size_t num_edges() const;

 private:
  int n_left_;
  int n_right_;
  std::vector<std::vector<int>> adj_;
};

/// A matching: match_left[l] = matched right vertex or -1, and
/// symmetrically match_right.
struct BipartiteMatching {
  std::vector<int> match_left;
  std::vector<int> match_right;

  [[nodiscard]] int size() const;
};

/// Greedy maximal matching: scans left vertices in index order, matches
/// each to its first free right neighbor. Maximal (no augmenting edge
/// remains) but not necessarily maximum; at least half the maximum size.
/// This is the matching the paper's MM-Route heuristic uses.
[[nodiscard]] BipartiteMatching greedy_maximal_matching(
    const BipartiteGraph& g);

/// Hopcroft–Karp maximum bipartite matching, O(E sqrt(V)).
[[nodiscard]] BipartiteMatching hopcroft_karp(const BipartiteGraph& g);

/// True when `m` is a valid matching of `g` (edges exist, degrees <= 1,
/// the two sides are consistent).
[[nodiscard]] bool is_valid_matching(const BipartiteGraph& g,
                                     const BipartiteMatching& m);

/// True when no edge of `g` has both endpoints free under `m`.
[[nodiscard]] bool is_maximal_matching(const BipartiteGraph& g,
                                       const BipartiteMatching& m);

}  // namespace oregami
