// A discrete-event store-and-forward network simulator.
//
// OREGAMI's METRICS scores mappings with an analytic model (max link
// volume + hop latency per phase). The original tool had no execution
// substrate either -- but a reproduction can do better: this simulator
// executes the mapped computation phase by phase, serialising messages
// through link FIFOs, and reports an independent makespan that the
// bench suite compares against the analytic model (they should agree on
// ranking and be within a small factor on magnitude).
//
// Model:
//   * store-and-forward: a message occupies one link at a time for
//     (volume * cycles_per_unit + hop_latency) cycles;
//   * each link is half-duplex and serves one message at a time, FIFO
//     by readiness (ties broken by message id -- deterministic);
//   * a communication phase is synchronous: all its messages inject at
//     the phase start, the phase ends when the last message lands;
//   * an execution phase occupies each processor for the sum of its
//     assigned task costs; processors run in parallel;
//   * the phase expression composes: sequence barriers between steps,
//     parallel branches overlap (max), repetition multiplies (each
//     iteration is identical under barrier semantics).
#pragma once

#include <cstdint>
#include <vector>

#include "oregami/arch/fault_model.hpp"
#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"

namespace oregami {

struct SimConfig {
  std::int64_t hop_latency = 1;      ///< per-hop fixed cost (cycles)
  std::int64_t cycles_per_unit = 1;  ///< serialisation per volume unit
  /// Optional degraded machine (not owned; must outlive the call).
  /// When set, every route is re-validated against the faulted
  /// topology before injection -- a route over a dead link or dead
  /// processor, or a task placed on a dead processor, raises a clean
  /// MappingError (never a hang or assert) -- and serialisation
  /// through a slowed link is multiplied by its degradation factor.
  const FaultedTopology* faults = nullptr;
};

/// Result of simulating one communication phase.
struct PhaseSimResult {
  std::int64_t makespan = 0;  ///< cycles from injection to last delivery
  std::vector<std::int64_t> link_busy;   ///< busy cycles per link
  std::vector<std::int64_t> delivery;    ///< completion time per message
  double avg_link_utilisation = 0.0;     ///< busy / makespan over used links
  std::int64_t max_link_busy = 0;
};

/// Simulates comm phase `phase_index` of `graph` under `routing` (that
/// phase's routes). Messages between co-located tasks deliver at 0.
[[nodiscard]] PhaseSimResult simulate_comm_phase(
    const TaskGraph& graph, int phase_index, const PhaseRouting& routing,
    const Topology& topo, const SimConfig& config = {});

/// Full simulation following the phase expression; returns total cycles
/// (Idle expression falls back to every phase once, sequentially).
struct SimResult {
  std::int64_t total_cycles = 0;
  std::vector<std::int64_t> comm_phase_cycles;  ///< per comm phase (one pass)
  std::vector<std::int64_t> exec_phase_cycles;  ///< per exec phase (one pass)
};

[[nodiscard]] SimResult simulate(const TaskGraph& graph,
                                 const std::vector<int>& proc_of_task,
                                 const std::vector<PhaseRouting>& routing,
                                 const Topology& topo,
                                 const SimConfig& config = {});

}  // namespace oregami
