#include "oregami/sim/network_sim.hpp"

#include <algorithm>
#include <queue>
#include <string>

#include "oregami/metrics/incremental.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/trace.hpp"

namespace oregami {

namespace {

/// Degraded-mode route validation: a phase whose routing crosses a dead
/// link or processor is unroutable on the faulted machine; report which
/// message broke instead of simulating garbage.
void check_routes_against_faults(const FaultedTopology& faults,
                                 int phase_index,
                                 const PhaseRouting& routing) {
  for (std::size_t m = 0; m < routing.route_of_edge.size(); ++m) {
    if (!faults.route_alive(routing.route_of_edge[m])) {
      throw MappingError(
          "comm phase " + std::to_string(phase_index) + " message " +
          std::to_string(m) +
          " is routed across a dead link or processor; the phase is "
          "unroutable on the faulted topology (spec: " +
          faults.spec().to_string() + ")");
    }
  }
}

}  // namespace

PhaseSimResult simulate_comm_phase(const TaskGraph& graph, int phase_index,
                                   const PhaseRouting& routing,
                                   const Topology& topo,
                                   const SimConfig& config) {
  const auto& phase =
      graph.comm_phases()[static_cast<std::size_t>(phase_index)];
  OREGAMI_ASSERT(routing.route_of_edge.size() == phase.edges.size(),
                 "routing must cover the phase");
  if (config.faults != nullptr) {
    check_routes_against_faults(*config.faults, phase_index, routing);
  }
  PhaseSimResult result;
  result.link_busy.assign(static_cast<std::size_t>(topo.num_links()), 0);
  result.delivery.assign(phase.edges.size(), 0);

  // Event queue of messages ready to start their next hop:
  // (ready time, message id). Smallest time first, id breaks ties so
  // the simulation is deterministic.
  using Event = std::pair<std::int64_t, int>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> ready;
  // Per-thread scratch: phase sweeps call this in a loop and the
  // per-call allocations showed up in the profile.
  thread_local std::vector<std::size_t> next_hop;
  thread_local std::vector<std::int64_t> link_free;
  next_hop.assign(phase.edges.size(), 0);
  link_free.assign(static_cast<std::size_t>(topo.num_links()), 0);

  for (int m = 0; m < static_cast<int>(phase.edges.size()); ++m) {
    if (routing.route_of_edge[static_cast<std::size_t>(m)].links.empty()) {
      result.delivery[static_cast<std::size_t>(m)] = 0;  // co-located
    } else {
      ready.emplace(0, m);
    }
  }

  while (!ready.empty()) {
    const auto [time, m] = ready.top();
    ready.pop();
    const auto& route = routing.route_of_edge[static_cast<std::size_t>(m)];
    const int link = route.links[next_hop[static_cast<std::size_t>(m)]];
    const std::int64_t volume =
        phase.edges[static_cast<std::size_t>(m)].volume;
    const std::int64_t slowdown =
        config.faults != nullptr ? config.faults->link_slowdown(link) : 1;
    const std::int64_t transfer =
        volume * config.cycles_per_unit * slowdown + config.hop_latency;
    const std::int64_t start =
        std::max(time, link_free[static_cast<std::size_t>(link)]);
    const std::int64_t finish = start + transfer;
    link_free[static_cast<std::size_t>(link)] = finish;
    result.link_busy[static_cast<std::size_t>(link)] += transfer;
    ++next_hop[static_cast<std::size_t>(m)];
    if (next_hop[static_cast<std::size_t>(m)] == route.links.size()) {
      result.delivery[static_cast<std::size_t>(m)] = finish;
      result.makespan = std::max(result.makespan, finish);
    } else {
      ready.emplace(finish, m);
    }
  }

  int used = 0;
  std::int64_t busy_total = 0;
  for (const auto busy : result.link_busy) {
    if (busy > 0) {
      ++used;
      busy_total += busy;
      result.max_link_busy = std::max(result.max_link_busy, busy);
    }
  }
  result.avg_link_utilisation =
      (used == 0 || result.makespan == 0)
          ? 0.0
          : static_cast<double>(busy_total) /
                (static_cast<double>(used) *
                 static_cast<double>(result.makespan));
  return result;
}

namespace {

std::int64_t exec_cycles(const TaskGraph& graph, int phase_index,
                         const std::vector<int>& proc_of_task,
                         int num_procs) {
  const auto& phase =
      graph.exec_phases()[static_cast<std::size_t>(phase_index)];
  std::vector<std::int64_t> load(static_cast<std::size_t>(num_procs), 0);
  for (int t = 0; t < graph.num_tasks(); ++t) {
    load[static_cast<std::size_t>(
        proc_of_task[static_cast<std::size_t>(t)])] +=
        phase.cost[static_cast<std::size_t>(t)];
  }
  return load.empty() ? 0 : *std::max_element(load.begin(), load.end());
}

struct Walker {
  const TaskGraph& graph;
  const std::vector<int>& proc_of_task;
  const std::vector<PhaseRouting>& routing;
  const Topology& topo;
  const SimConfig& config;
  // Memoised single-pass phase costs.
  std::vector<std::int64_t> comm_cost;
  std::vector<std::int64_t> exec_cost;

  std::int64_t comm(int k) {
    auto& cached = comm_cost[static_cast<std::size_t>(k)];
    if (cached < 0) {
      cached = simulate_comm_phase(graph, k,
                                   routing[static_cast<std::size_t>(k)],
                                   topo, config)
                   .makespan;
    }
    return cached;
  }

  std::int64_t exec(int k) {
    auto& cached = exec_cost[static_cast<std::size_t>(k)];
    if (cached < 0) {
      cached = exec_cycles(graph, k, proc_of_task, topo.num_procs());
    }
    return cached;
  }

  std::int64_t walk(const PhaseTree& node) {
    switch (node.kind) {
      case PhaseTree::Kind::Idle:
        return 0;
      case PhaseTree::Kind::Comm:
        return comm(node.phase_index);
      case PhaseTree::Kind::Exec:
        return exec(node.phase_index);
      case PhaseTree::Kind::Seq: {
        std::int64_t total = 0;
        for (const auto& child : node.children) {
          total += walk(child);
        }
        return total;
      }
      case PhaseTree::Kind::Par: {
        std::int64_t best = 0;
        for (const auto& child : node.children) {
          best = std::max(best, walk(child));
        }
        return best;
      }
      case PhaseTree::Kind::Repeat:
        return node.count * walk(node.children.front());
    }
    return 0;
  }
};

}  // namespace

SimResult simulate(const TaskGraph& graph,
                   const std::vector<int>& proc_of_task,
                   const std::vector<PhaseRouting>& routing,
                   const Topology& topo, const SimConfig& config) {
  const trace::Span span("sim");
  OREGAMI_ASSERT(routing.size() == graph.comm_phases().size(),
                 "routing must cover every phase");
  if (config.faults != nullptr) {
    for (int t = 0; t < graph.num_tasks(); ++t) {
      const int p = proc_of_task[static_cast<std::size_t>(t)];
      if (!config.faults->proc_alive(p)) {
        throw MappingError("task " + std::to_string(t) +
                           " is placed on dead processor " +
                           std::to_string(p) + " (spec: " +
                           config.faults->spec().to_string() + ")");
      }
    }
  }
  Walker walker{graph,
                proc_of_task,
                routing,
                topo,
                config,
                std::vector<std::int64_t>(graph.comm_phases().size(), -1),
                std::vector<std::int64_t>(graph.exec_phases().size(), -1)};
  SimResult result;
  if (graph.phase_expr().kind == PhaseTree::Kind::Idle) {
    for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
      result.total_cycles += walker.comm(static_cast<int>(k));
    }
    for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
      result.total_cycles += walker.exec(static_cast<int>(k));
    }
  } else {
    result.total_cycles = walker.walk(graph.phase_expr());
  }
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    result.comm_phase_cycles.push_back(walker.comm(static_cast<int>(k)));
  }
  for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
    result.exec_phase_cycles.push_back(walker.exec(static_cast<int>(k)));
  }
  if (trace::enabled()) {
    trace::counter("total_cycles", result.total_cycles);
    for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
      trace::counter(graph.comm_phases()[k].name + "/sim_makespan",
                     result.comm_phase_cycles[k]);
    }
    for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
      trace::counter(graph.exec_phases()[k].name + "/sim_cycles",
                     result.exec_phase_cycles[k]);
    }
    if (config.faults == nullptr) {
      // Structural per-phase link-volume and hop-histogram counters via
      // the metrics layer's incremental trackers. Base-topology link
      // ids only: under faults the routing carries faulted ids, which
      // the trackers must not index into the base machine.
      const IncrementalCompletion inc(graph, topo, proc_of_task, routing);
      inc.trace_phase_counters();
    }
  }
  return result;
}

}  // namespace oregami
