// Boundary refinement of a contraction (Kernighan-Lin / Fiduccia-
// Mattheyses style greedy moves and swaps). The paper's §6 commits to
// "continue to augment the MAPPER library with new and improved
// algorithms for contraction"; this pass polishes any contraction
// (MWM-Contract output, canned tilings, ...) by hill-climbing on the
// total external communication weight while respecting the load bound.
#pragma once

#include <cstdint>
#include <string>

#include "oregami/core/mapping.hpp"
#include "oregami/graph/graph.hpp"

namespace oregami {

struct RefineResult {
  Contraction contraction;
  std::int64_t external_before = 0;
  std::int64_t external_after = 0;
  int moves = 0;
  int swaps = 0;
  int passes = 0;

  [[nodiscard]] std::int64_t improvement() const {
    return external_before - external_after;
  }
};

/// Greedy refinement: repeatedly applies the single task move (to a
/// cluster with room) or pairwise task swap with the largest positive
/// reduction in external weight, until a pass finds nothing. Clusters
/// never exceed `load_bound_B` and never empty (the contraction keeps
/// its cluster count). `max_passes` bounds the outer loop.
[[nodiscard]] RefineResult refine_contraction(const Graph& task_graph,
                                              Contraction contraction,
                                              int load_bound_B,
                                              int max_passes = 8);

}  // namespace oregami
