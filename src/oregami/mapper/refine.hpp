// Boundary refinement of a contraction (Kernighan-Lin / Fiduccia-
// Mattheyses style greedy moves and swaps). The paper's §6 commits to
// "continue to augment the MAPPER library with new and improved
// algorithms for contraction"; this pass polishes any contraction
// (MWM-Contract output, canned tilings, ...) by hill-climbing on the
// total external communication weight while respecting the load bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oregami/core/mapping.hpp"
#include "oregami/graph/graph.hpp"
#include "oregami/metrics/completion_model.hpp"

namespace oregami {

struct RefineResult {
  Contraction contraction;
  std::int64_t external_before = 0;
  std::int64_t external_after = 0;
  int moves = 0;
  int swaps = 0;
  int passes = 0;

  [[nodiscard]] std::int64_t improvement() const {
    return external_before - external_after;
  }
};

/// Greedy refinement: repeatedly applies the single task move (to a
/// cluster with room) or pairwise task swap with the largest positive
/// reduction in external weight, until a pass finds nothing. Clusters
/// never exceed `load_bound_B` and never empty (the contraction keeps
/// its cluster count). `max_passes` bounds the outer loop.
[[nodiscard]] RefineResult refine_contraction(const Graph& task_graph,
                                              Contraction contraction,
                                              int load_bound_B,
                                              int max_passes = 8);

struct PlacementRefineResult {
  std::vector<int> proc_of_task;
  std::vector<PhaseRouting> routing;  ///< greedy re-routes of moved edges
  std::int64_t completion_before = 0;
  std::int64_t completion_after = 0;
  int moves = 0;
  int passes = 0;

  [[nodiscard]] std::int64_t improvement() const {
    return completion_before - completion_after;
  }
};

/// Processor-level hill climbing on the completion model itself, after
/// contraction and embedding are fixed. Sweeps tasks in id order; for
/// each, probes moving it to every candidate processor (the network
/// neighbours of its current processor, plus the processors hosting its
/// communication partners) with IncrementalCompletion::delta_move and
/// commits the strictly-improving move with the largest gain (ties:
/// lowest processor id). A move is admitted only while the destination
/// hosts fewer than `load_bound_B` tasks (0 = unbounded). Deterministic;
/// never worsens the completion time; `max_passes` bounds the sweeps.
///
/// `link_factor` (optional, empty = all 1) is a per-link serialisation
/// multiplier forwarded to IncrementalCompletion, so refinement on a
/// degraded machine steers traffic away from slowed links.
[[nodiscard]] PlacementRefineResult refine_placement(
    const TaskGraph& graph, const Topology& topo,
    std::vector<int> proc_of_task, std::vector<PhaseRouting> routing,
    const CostModel& model = {}, int load_bound_B = 0, int max_passes = 4,
    std::vector<std::int64_t> link_factor = {});

}  // namespace oregami
