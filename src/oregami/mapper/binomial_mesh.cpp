#include "oregami/mapper/binomial_mesh.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "oregami/support/error.hpp"

namespace oregami {

int BinomialMeshEmbedding::edge_dilation(int m) const {
  OREGAMI_ASSERT(m > 0 && m < (1 << k), "tree node out of range");
  // Canonical binomial addressing: the parent clears the child's
  // lowest set bit (bit j marks the root of a size-2^j subtree).
  const int parent = m & (m - 1);
  const int pm = proc_of_node[static_cast<std::size_t>(m)];
  const int pp = proc_of_node[static_cast<std::size_t>(parent)];
  const int rm = pm / cols;
  const int cm = pm % cols;
  const int rp = pp / cols;
  const int cp = pp % cols;
  return std::abs(rm - rp) + std::abs(cm - cp);
}

double BinomialMeshEmbedding::average_dilation() const {
  if (k == 0) {
    return 0.0;
  }
  long total = 0;
  for (int m = 1; m < (1 << k); ++m) {
    total += edge_dilation(m);
  }
  return static_cast<double>(total) / static_cast<double>((1 << k) - 1);
}

int BinomialMeshEmbedding::max_dilation() const {
  int best = 0;
  for (int m = 1; m < (1 << k); ++m) {
    best = std::max(best, edge_dilation(m));
  }
  return best;
}

namespace {

// The embedding is the optimum over the recursive-bisection family:
// B_j occupies a near-square 2^ceil(j/2) x 2^floor(j/2) region; the
// region splits across its longer side (either side of a square); the
// root's B_{j-1} keeps the root's half and the other B_{j-1}'s root may
// be ANY cell of the opposite half. cost[j][r][c] = minimum total
// dilation of B_j laid out in the canonical (tall) region with its
// root at (r, c). Computed bottom-up; each level needs the min over
// child cells of (Manhattan distance + child cost), which is a
// Manhattan distance transform (two-pass chamfer) over the region.

constexpr long kInf = std::numeric_limits<long>::max() / 4;

struct CostTable {
  int h = 0;  ///< canonical tall shape: h >= w
  int w = 0;
  std::vector<long> value;  ///< h * w entries, row-major

  [[nodiscard]] long at(int r, int c) const {
    return value[static_cast<std::size_t>(r * w + c)];
  }
  long& at(int r, int c) {
    return value[static_cast<std::size_t>(r * w + c)];
  }
};

/// Two-pass chamfer transform in place: out(p) = min_q in(q) + |p - q|.
void distance_transform(std::vector<long>& grid, int h, int w) {
  auto at = [&](int r, int c) -> long& {
    return grid[static_cast<std::size_t>(r * w + c)];
  };
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      if (r > 0) {
        at(r, c) = std::min(at(r, c), at(r - 1, c) + 1);
      }
      if (c > 0) {
        at(r, c) = std::min(at(r, c), at(r, c - 1) + 1);
      }
    }
  }
  for (int r = h - 1; r >= 0; --r) {
    for (int c = w - 1; c >= 0; --c) {
      if (r + 1 < h) {
        at(r, c) = std::min(at(r, c), at(r + 1, c) + 1);
      }
      if (c + 1 < w) {
        at(r, c) = std::min(at(r, c), at(r, c + 1) + 1);
      }
    }
  }
}

/// Child cost of a half, mapped to the canonical orientation of level
/// j-1. `half_h x half_w` is the half's own shape; the canonical child
/// table is tall, so a wide half reads through a transpose.
long child_cost(const CostTable& child, int r, int c, int half_h,
                int half_w) {
  if (half_h >= half_w) {
    OREGAMI_ASSERT(child.h == half_h && child.w == half_w,
                   "child table shape mismatch");
    return child.at(r, c);
  }
  OREGAMI_ASSERT(child.h == half_w && child.w == half_h,
                 "child table shape mismatch (transposed)");
  return child.at(c, r);
}

/// cost table for a rows-split of the (h x w) region at h/2.
CostTable rows_split_table(const CostTable& child, int h, int w) {
  CostTable out;
  out.h = h;
  out.w = w;
  out.value.assign(static_cast<std::size_t>(h * w), kInf);
  const int hh = h / 2;

  // F_top(p) = min over q in top half of child_cost(q) + dist(p, q).
  std::vector<long> f_top(static_cast<std::size_t>(h * w), kInf);
  std::vector<long> f_bottom(static_cast<std::size_t>(h * w), kInf);
  for (int r = 0; r < hh; ++r) {
    for (int c = 0; c < w; ++c) {
      f_top[static_cast<std::size_t>(r * w + c)] =
          child_cost(child, r, c, hh, w);
    }
  }
  for (int r = hh; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      f_bottom[static_cast<std::size_t>(r * w + c)] =
          child_cost(child, r - hh, c, hh, w);
    }
  }
  distance_transform(f_top, h, w);
  distance_transform(f_bottom, h, w);

  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      const bool in_top = r < hh;
      const long own = in_top ? child_cost(child, r, c, hh, w)
                              : child_cost(child, r - hh, c, hh, w);
      const long other = in_top ? f_bottom[static_cast<std::size_t>(r * w + c)]
                                : f_top[static_cast<std::size_t>(r * w + c)];
      out.at(r, c) = own + other;
    }
  }
  return out;
}

std::vector<CostTable> build_cost_tables(int k) {
  std::vector<CostTable> tables(static_cast<std::size_t>(k) + 1);
  tables[0] = {1, 1, {0}};
  for (int j = 1; j <= k; ++j) {
    const int h = 1 << ((j + 1) / 2);
    const int w = 1 << (j / 2);
    CostTable t = rows_split_table(tables[static_cast<std::size_t>(j - 1)],
                                   h, w);
    if (h == w) {
      // Square: the columns-split equals the rows-split evaluated at the
      // transposed root position; take the elementwise minimum.
      CostTable merged = t;
      for (int r = 0; r < h; ++r) {
        for (int c = 0; c < w; ++c) {
          merged.at(r, c) = std::min(t.at(r, c), t.at(c, r));
        }
      }
      t = std::move(merged);
    }
    tables[static_cast<std::size_t>(j)] = std::move(t);
  }
  return tables;
}

/// Absolute-coordinates region with an orientation mapping onto the
/// canonical tall table: local tall coords (r, c) -> absolute cell.
struct Region {
  int r0 = 0;
  int c0 = 0;
  int h = 0;  ///< absolute extent in rows
  int w = 0;
  bool transposed = false;  ///< canonical (r,c) maps to (c0+r? ...) see map()

  /// Canonical tall shape extents.
  [[nodiscard]] int th() const { return transposed ? w : h; }
  [[nodiscard]] int tw() const { return transposed ? h : w; }

  /// Canonical (r, c) -> absolute (row, col).
  [[nodiscard]] std::pair<int, int> abs_of(int r, int c) const {
    return transposed ? std::pair{r0 + c, c0 + r} : std::pair{r0 + r, c0 + c};
  }
};

struct Builder {
  std::vector<CostTable> tables;
  int mesh_cols = 0;
  std::vector<int>* out = nullptr;

  /// Places B_j rooted (canonical-local) at (r, c) into `region`.
  void place(int j, int base, const Region& region, int r, int c) {
    if (j == 0) {
      const auto [ar, ac] = region.abs_of(r, c);
      (*out)[static_cast<std::size_t>(base)] = ar * mesh_cols + ac;
      return;
    }
    const CostTable& table = tables[static_cast<std::size_t>(j)];
    const CostTable& child = tables[static_cast<std::size_t>(j - 1)];
    const int h = region.th();
    const int w = region.tw();
    const int hh = h / 2;

    // Candidate orientations: rows-split of the canonical view; for a
    // square also the transposed view. Evaluate explicitly and pick a
    // split + child cell achieving the table value.
    struct Choice {
      bool transpose_view = false;
      int cr = 0;  ///< child root, canonical view of the chosen split
      int cc = 0;
      long total = kInf;
    };
    Choice best;
    for (const bool transpose_view : {false, true}) {
      if (transpose_view && h != w) {
        continue;
      }
      const int vr = transpose_view ? c : r;
      const int vc = transpose_view ? r : c;
      // Own half: top when vr < hh. Halves have shape hh x w.
      const bool in_top = vr < hh;
      const long own =
          child_cost(child, in_top ? vr : vr - hh, vc, hh, w);
      const int lo = in_top ? hh : 0;
      const int hi = in_top ? h : hh;
      for (int r2 = lo; r2 < hi; ++r2) {
        for (int c2 = 0; c2 < w; ++c2) {
          const long total =
              own + child_cost(child, r2 - lo, c2, hh, w) +
              std::abs(vr - r2) + std::abs(vc - c2);
          if (total < best.total) {
            best = {transpose_view, r2, c2, total};
          }
        }
      }
    }
    OREGAMI_ASSERT(best.total == table.at(r, c),
                   "reconstruction must achieve the DP optimum");

    // Realise the chosen split: compute sub-regions in absolute space.
    const bool tv = best.transpose_view;
    const int vr = tv ? c : r;
    const int vc = tv ? r : c;
    const bool in_top = vr < hh;

    // A half of the canonical view: canonical rows [a, a+hh) x all cols.
    auto half_region = [&](int a) {
      Region sub;
      // Canonical cell (a + rr, cc) of the view maps to absolute via
      // region.abs_of with view transpose folded in.
      const auto [ar0, ac0] =
          tv ? region.abs_of(0, a) : region.abs_of(a, 0);
      sub.r0 = ar0;
      sub.c0 = ac0;
      // The half's shape in view coords is hh x w; canonical child
      // orientation is tall.
      const bool half_tall = hh >= w;
      // Build the absolute extents of the half.
      int half_abs_h;
      int half_abs_w;
      if (tv == region.transposed) {
        // View rows run along absolute rows.
        half_abs_h = hh;
        half_abs_w = w;
      } else {
        half_abs_h = w;
        half_abs_w = hh;
      }
      sub.h = half_abs_h;
      sub.w = half_abs_w;
      // Canonical (tall) coords of the child: if the half is tall in
      // view coords, canonical == view; else canonical = transposed
      // view. Chain with how view coords map to absolute.
      const bool view_is_abs_rows = (tv == region.transposed);
      const bool canonical_is_view = half_tall;
      // canonical -> absolute rows iff canonical == view == abs-rows or
      // canonical == transposed-view == transposed-abs-rows.
      sub.transposed = !(canonical_is_view == view_is_abs_rows);
      return sub;
    };

    const Region own_region = half_region(in_top ? 0 : hh);
    const Region other_region = half_region(in_top ? hh : 0);

    auto to_child_coords = [&](int view_r, int view_c, bool half_tall) {
      // view-local (within half) -> canonical child coords.
      return half_tall ? std::pair{view_r, view_c}
                       : std::pair{view_c, view_r};
    };
    const bool half_tall = hh >= w;
    const auto [own_r, own_c] =
        to_child_coords(in_top ? vr : vr - hh, vc, half_tall);
    const auto [oth_r, oth_c] = to_child_coords(
        in_top ? best.cr - hh : best.cr, best.cc, half_tall);

    place(j - 1, base, own_region, own_r, own_c);
    place(j - 1, base | (1 << (j - 1)), other_region, oth_r, oth_c);
  }
};

}  // namespace

BinomialMeshEmbedding embed_binomial_in_mesh(int k) {
  OREGAMI_ASSERT(k >= 0 && k <= 24, "binomial order out of range");
  BinomialMeshEmbedding out;
  out.k = k;
  out.rows = 1 << ((k + 1) / 2);
  out.cols = 1 << (k / 2);
  out.proc_of_node.assign(static_cast<std::size_t>(1) << k, -1);

  Builder builder;
  builder.tables = build_cost_tables(k);
  builder.mesh_cols = out.cols;
  builder.out = &out.proc_of_node;

  // Top-level root: the cell minimising total dilation.
  const CostTable& top = builder.tables[static_cast<std::size_t>(k)];
  int best_r = 0;
  int best_c = 0;
  for (int r = 0; r < top.h; ++r) {
    for (int c = 0; c < top.w; ++c) {
      if (top.at(r, c) < top.at(best_r, best_c)) {
        best_r = r;
        best_c = c;
      }
    }
  }
  Region whole;
  whole.r0 = 0;
  whole.c0 = 0;
  whole.h = out.rows;
  whole.w = out.cols;
  whole.transposed = false;
  builder.place(k, 0, whole, best_r, best_c);
  return out;
}

}  // namespace oregami
