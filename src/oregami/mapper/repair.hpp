// Degraded-mode mapping repair (the "re-refinement after failure" half
// of the fault-tolerance subsystem; see arch/fault_model.hpp for the
// fault model itself).
//
// When processors or links die under a running mapping, recomputing the
// whole mapping from scratch throws away all the placement work that is
// still valid. repair_mapping() instead climbs a graceful-degradation
// ladder:
//
//   1. Migrate -- move ONLY the displaced tasks (those on dead or
//      disconnected processors) to nearby healthy processors, re-route
//      every communication edge around the dead links, then improve the
//      displaced tasks' placement with IncrementalCompletion::delta_move
//      probes under a bounded retry budget: each attempt doubles the
//      search radius (1, 2, 4, ... hops), capped by `max_attempts` and
//      the wall-clock deadline.
//   2. Refine -- polish the migrated placement with refine_placement on
//      the faulted topology (its candidate sets only ever contain
//      healthy processors, because dead processors have no surviving
//      links), weighted by the slow-link factors.
//   3. Remap -- last resort (or forced via the rung switches): run the
//      full MAPPER pipeline on the compacted healthy sub-topology and
//      translate the result back to base processor ids.
//
// Determinism: with `time_budget_ms` <= 0 the outcome is a pure
// function of (graph, mapping, FaultSpec, options) -- no wall clock, no
// thread count. A positive budget only ever *truncates* the improvement
// schedule, and the truncation point is the sole nondeterminism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oregami/arch/fault_model.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/completion_model.hpp"

namespace oregami {

/// Which ladder rung produced the repaired mapping.
enum class RepairRung {
  None,     ///< nothing to repair (empty FaultSpec)
  Migrate,  ///< in-place migration of displaced tasks only
  Refine,   ///< migration + placement refinement polish
  Remap,    ///< full remap on the healthy sub-topology
};

[[nodiscard]] std::string to_string(RepairRung rung);

struct RepairOptions {
  /// Improvement attempts for the migrate rung; attempt k probes
  /// healthy processors within 2^k hops of each displaced task.
  int max_attempts = 4;
  /// Hard wall-clock deadline in milliseconds. 0 = none (fully
  /// deterministic); < 0 = already expired (the migrate rung does the
  /// provisional placement + re-route but skips all improvement --
  /// useful for deterministic deadline tests).
  std::int64_t time_budget_ms = 0;
  /// Forwarded to the remap rung (portfolio seed). The migrate and
  /// refine rungs are seed-free.
  std::uint64_t seed = 0;
  /// Rung switches (benchmarks force a single rung through these).
  bool allow_migrate = true;
  bool allow_refine = true;
  bool allow_remap = true;
  CostModel model;
  /// Mapper options for the remap rung (portfolio settings included).
  MapperOptions remap_options;
};

/// One task relocation performed by the repair.
struct RepairMove {
  int task = 0;
  int from_proc = 0;  ///< base id (dead or disconnected)
  int to_proc = 0;    ///< base id (healthy)
};

struct RepairResult {
  /// The repaired mapping in BASE ids: every task on a healthy
  /// processor, every route avoiding dead links and processors.
  Mapping mapping;
  RepairRung rung = RepairRung::None;
  std::string details;
  /// Completion of the INPUT mapping on the healthy machine.
  std::int64_t healthy_completion = 0;
  /// Degraded completion of the repaired mapping (slow links charged).
  std::int64_t degraded_completion = 0;
  /// Tasks relocated off dead/disconnected processors (migrate rung),
  /// in ascending task order. Empty for the remap rung (everything may
  /// have moved; diff the mappings instead).
  std::vector<RepairMove> migrations;
  int attempts = 0;         ///< migrate improvement attempts executed
  bool deadline_hit = false;
};

/// Repairs `mapping` (valid on `faults.base()`) so it is valid on the
/// degraded machine. Throws MappingError when the healthy component is
/// empty or every admissible rung is disabled; never asserts or hangs
/// on any connectivity pattern.
[[nodiscard]] RepairResult repair_mapping(const TaskGraph& graph,
                                          const FaultedTopology& faults,
                                          const Mapping& mapping,
                                          const RepairOptions& options = {});

}  // namespace oregami
