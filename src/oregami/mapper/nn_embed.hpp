// Algorithm NN-Embed (paper §4.3): greedy embedding that places highly
// communicating clusters on adjacent (or near) processors.
//
// Seed: the heaviest cluster edge goes on a link whose endpoints have
// maximal degree. Growth: repeatedly take the unplaced cluster with the
// largest total communication to already-placed clusters and put it on
// the free processor minimising the weighted sum of hop distances to
// its placed neighbours. Deterministic tie-breaking throughout
// (lowest id).
//
// The greedy objective ties constantly on symmetric topologies, so the
// tie-break *is* a search dimension: nn_embed_seeded replaces the
// lowest-id rule with a uniform choice among the tied candidates, drawn
// from a caller-seeded SplitMix64. Same seed -> same embedding, which
// is what the portfolio mapper's determinism contract builds on.
#pragma once

#include <cstdint>

#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/graph/graph.hpp"

namespace oregami {

/// Embeds `cluster_graph` (one vertex per cluster, weights = inter-
/// cluster communication) into `topo`. Requires
/// cluster_graph.num_vertices() <= topo.num_procs(); throws
/// MappingError otherwise.
[[nodiscard]] Embedding nn_embed(const Graph& cluster_graph,
                                 const Topology& topo);

/// NN-Embed with seeded uniform tie-breaking instead of lowest-id: the
/// greedy decisions (seed edge/link, growth order, processor choice)
/// pick uniformly among tied candidates. Deterministic in `seed`.
[[nodiscard]] Embedding nn_embed_seeded(const Graph& cluster_graph,
                                        const Topology& topo,
                                        std::uint64_t seed);

/// The weighted-dilation objective NN-Embed greedily optimises:
/// sum over cluster edges of weight * hop-distance of their processors.
[[nodiscard]] std::int64_t weighted_dilation(const Graph& cluster_graph,
                                             const Embedding& embedding,
                                             const Topology& topo);

}  // namespace oregami
