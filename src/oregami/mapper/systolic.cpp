#include "oregami/mapper/systolic.hpp"

#include <algorithm>

#include "oregami/support/error.hpp"

namespace oregami {

long SystolicMapping::time_of(const std::vector<long>& point) const {
  OREGAMI_ASSERT(point.size() == schedule.size(),
                 "point dimensionality mismatch");
  long t = 0;
  for (std::size_t d = 0; d < point.size(); ++d) {
    // Offset so the schedule's minimum over the box is zero: positive
    // coefficients anchor at lo, negative ones at hi.
    const long anchor = schedule[d] >= 0 ? domain_lo[d] : domain_hi[d];
    t += schedule[d] * (point[d] - anchor);
  }
  return t;
}

std::optional<SystolicMapping> systolic_map(
    const larcs::Program& program,
    const larcs::CompiledProgram& compiled) {
  const auto analysis = larcs::analyze_affine(program, compiled.env);
  if (!analysis.systolic_applicable()) {
    return std::nullopt;
  }
  const auto deps = analysis.dependence_vectors();
  if (deps.empty()) {
    return std::nullopt;
  }
  const auto& layout = compiled.layouts.front();
  const auto dims = layout.lo.size();
  if (dims < 1 || dims > 3) {
    return std::nullopt;
  }
  std::vector<long> extent(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    extent[d] = layout.hi[d] - layout.lo[d] + 1;
  }

  // Enumerate integer schedules with coefficients in [-3, 3].
  constexpr long kMaxCoeff = 3;
  std::vector<long> best;
  long best_makespan = 0;
  std::vector<long> lambda(dims, -kMaxCoeff);
  for (;;) {
    const bool feasible = std::all_of(
        deps.begin(), deps.end(), [&](const std::vector<long>& d) {
          long dot = 0;
          for (std::size_t i = 0; i < dims; ++i) {
            dot += lambda[i] * d[i];
          }
          return dot >= 1;
        });
    if (feasible) {
      long makespan = 1;
      for (std::size_t i = 0; i < dims; ++i) {
        makespan += std::abs(lambda[i]) * (extent[i] - 1);
      }
      if (best.empty() || makespan < best_makespan ||
          (makespan == best_makespan && lambda < best)) {
        best = lambda;
        best_makespan = makespan;
      }
    }
    // Next lambda.
    std::size_t d = 0;
    while (d < dims) {
      if (lambda[d] < kMaxCoeff) {
        ++lambda[d];
        break;
      }
      lambda[d] = -kMaxCoeff;
      ++d;
    }
    if (d == dims) {
      break;
    }
  }
  if (best.empty()) {
    return std::nullopt;
  }

  // Projection axis: lambda_j != 0 (so co-located points differ in
  // time), minimising the PE count; ties to the lowest axis.
  int best_axis = -1;
  long best_pes = 0;
  for (std::size_t j = 0; j < dims; ++j) {
    if (best[j] == 0) {
      continue;
    }
    long pes = 1;
    for (std::size_t i = 0; i < dims; ++i) {
      if (i != j) {
        pes *= extent[i];
      }
    }
    if (best_axis == -1 || pes < best_pes) {
      best_axis = static_cast<int>(j);
      best_pes = pes;
    }
  }
  OREGAMI_ASSERT(best_axis != -1,
                 "a feasible schedule has a nonzero coefficient");

  SystolicMapping out;
  out.schedule = best;
  out.projection_axis = best_axis;
  out.makespan = best_makespan;
  out.domain_lo = layout.lo;
  out.domain_hi = layout.hi;
  for (std::size_t i = 0; i < dims; ++i) {
    if (static_cast<int>(i) != best_axis) {
      out.pe_extent.push_back(extent[i]);
    }
  }

  // Contraction: PE id = row-major index over remaining axes.
  const auto& graph = compiled.graph;
  out.contraction.num_clusters = static_cast<int>(best_pes);
  out.contraction.cluster_of_task.resize(
      static_cast<std::size_t>(graph.num_tasks()));
  for (int t = 0; t < graph.num_tasks(); ++t) {
    const auto& label = graph.task_label(t);
    long pe = 0;
    for (std::size_t i = 0; i < dims; ++i) {
      if (static_cast<int>(i) == best_axis) {
        continue;
      }
      pe = pe * extent[i] + (label[i] - layout.lo[i]);
    }
    out.contraction.cluster_of_task[static_cast<std::size_t>(t)] =
        static_cast<int>(pe);
  }
  out.contraction.validate(graph.num_tasks());

  std::string sched = "(";
  for (std::size_t i = 0; i < dims; ++i) {
    if (i != 0) {
      sched += ",";
    }
    sched += std::to_string(best[i]);
  }
  sched += ")";
  out.description = "systolic schedule lambda = " + sched +
                    ", projection along axis " +
                    std::to_string(best_axis) + ", makespan " +
                    std::to_string(best_makespan) + ", " +
                    std::to_string(best_pes) + " PEs";
  return out;
}

}  // namespace oregami
