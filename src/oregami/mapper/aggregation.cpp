#include "oregami/mapper/aggregation.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

#include "oregami/support/error.hpp"

namespace oregami {

Route AggregationTree::route_to_root(const Topology& topo, int p) const {
  std::vector<int> nodes{p};
  while (p != root) {
    OREGAMI_ASSERT(parent[static_cast<std::size_t>(p)] != -1,
                   "tree must reach the root");
    p = parent[static_cast<std::size_t>(p)];
    nodes.push_back(p);
  }
  Route route;
  route.nodes = std::move(nodes);
  for (std::size_t i = 0; i + 1 < route.nodes.size(); ++i) {
    const auto link =
        topo.link_between(route.nodes[i], route.nodes[i + 1]);
    OREGAMI_ASSERT(link.has_value(), "tree edges must be links");
    route.links.push_back(*link);
  }
  return route;
}

std::vector<std::int64_t> committed_link_load(
    const std::vector<PhaseRouting>& routing, int num_links) {
  std::vector<std::int64_t> load(static_cast<std::size_t>(num_links), 0);
  for (const auto& phase : routing) {
    for (const auto& route : phase.route_of_edge) {
      for (const int link : route.links) {
        ++load[static_cast<std::size_t>(link)];
      }
    }
  }
  return load;
}

namespace {

/// Builds one candidate tree whose path choices minimise the bottleneck
/// of `base` load (hop count breaking ties), then accounts its traffic
/// against `existing`.
AggregationTree build_candidate(const Topology& topo, int root,
                                const std::vector<std::int64_t>& base,
                                const std::vector<std::int64_t>& existing) {
  const int p = topo.num_procs();
  AggregationTree tree;
  tree.root = root;
  tree.parent.assign(static_cast<std::size_t>(p), -1);
  tree.uplink.assign(static_cast<std::size_t>(p), -1);
  tree.tree_load.assign(static_cast<std::size_t>(topo.num_links()), 0);

  // Minimax Dijkstra: key = (bottleneck existing load along the path,
  // hops). Deterministic tie-break by processor id.
  using Key = std::tuple<std::int64_t, int, int>;  // (bottleneck, hops, proc)
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> bottleneck(static_cast<std::size_t>(p), kInf);
  std::vector<int> hops(static_cast<std::size_t>(p), 1 << 30);
  std::priority_queue<Key, std::vector<Key>, std::greater<>> queue;
  bottleneck[static_cast<std::size_t>(root)] = 0;
  hops[static_cast<std::size_t>(root)] = 0;
  queue.emplace(0, 0, root);
  std::vector<bool> done(static_cast<std::size_t>(p), false);
  while (!queue.empty()) {
    const auto [b, hop, v] = queue.top();
    queue.pop();
    if (done[static_cast<std::size_t>(v)]) {
      continue;
    }
    done[static_cast<std::size_t>(v)] = true;
    for (const auto& a : topo.graph().neighbors(v)) {
      const int w = a.neighbor;
      if (done[static_cast<std::size_t>(w)]) {
        continue;
      }
      const std::int64_t cand =
          std::max(b, base[static_cast<std::size_t>(a.edge_id)]);
      const int cand_hops = hop + 1;
      if (cand < bottleneck[static_cast<std::size_t>(w)] ||
          (cand == bottleneck[static_cast<std::size_t>(w)] &&
           cand_hops < hops[static_cast<std::size_t>(w)])) {
        bottleneck[static_cast<std::size_t>(w)] = cand;
        hops[static_cast<std::size_t>(w)] = cand_hops;
        tree.parent[static_cast<std::size_t>(w)] = v;
        tree.uplink[static_cast<std::size_t>(w)] = a.edge_id;
        queue.emplace(cand, cand_hops, w);
      }
    }
  }

  // Tree traffic: every processor forwards one aggregate up; link load
  // equals the subtree size below it. Accumulate by walking each
  // processor's path (P * diameter; fine at OREGAMI scales).
  for (int v = 0; v < p; ++v) {
    if (v == root) {
      continue;
    }
    OREGAMI_ASSERT(tree.parent[static_cast<std::size_t>(v)] != -1,
                   "topology must be connected");
    int at = v;
    while (at != root) {
      ++tree.tree_load[static_cast<std::size_t>(
          tree.uplink[static_cast<std::size_t>(at)])];
      at = tree.parent[static_cast<std::size_t>(at)];
    }
  }
  for (int l = 0; l < topo.num_links(); ++l) {
    tree.bottleneck =
        std::max(tree.bottleneck,
                 existing[static_cast<std::size_t>(l)] +
                     tree.tree_load[static_cast<std::size_t>(l)]);
  }
  return tree;
}

}  // namespace

AggregationTree choose_aggregation_tree(
    const Topology& topo, int root,
    const std::vector<std::int64_t>& existing_link_load) {
  OREGAMI_ASSERT(root >= 0 && root < topo.num_procs(),
                 "root processor out of range");
  std::vector<std::int64_t> existing(
      static_cast<std::size_t>(topo.num_links()), 0);
  if (!existing_link_load.empty()) {
    OREGAMI_ASSERT(existing_link_load.size() == existing.size(),
                   "existing load must cover every link");
    existing = existing_link_load;
  }
  // Two candidates: load-aware path choices and plain BFS (zero base).
  // The aware tree dodges hot links but can funnel subtrees together;
  // keep whichever ends with the lower bottleneck (ties to the BFS
  // tree, whose paths are shortest).
  const std::vector<std::int64_t> zeros(
      static_cast<std::size_t>(topo.num_links()), 0);
  AggregationTree aware = build_candidate(topo, root, existing, existing);
  AggregationTree bfs = build_candidate(topo, root, zeros, existing);
  return aware.bottleneck < bfs.bottleneck ? aware : bfs;
}

}  // namespace oregami
