// Algorithm MWM-Contract (paper §4.3, [Lo88]): symmetric contraction of
// an arbitrary weighted task graph into at most P clusters under the
// load-balance bound of at most B tasks per cluster, minimising total
// inter-processor communication.
//
//   Phase 1 (only when #tasks > 2P): a greedy heuristic scans edges in
//   non-increasing weight order and merges endpoint clusters whenever
//   the merged size stays within B/2, stopping once at most 2P clusters
//   remain.
//   Phase 2: maximum-weight matching (blossom) pairs clusters so the
//   internalised weight is maximal; pairs merge (size <= B). When the
//   pair count still leaves more than P clusters, zero-weight forced
//   merges finish the job (any two unmatched clusters are non-adjacent
//   after a maximum-weight matching, so these merges cost nothing).
//
// With #tasks <= 2P the matching alone yields an optimal symmetric
// contraction; beyond that the greedy phase makes it a heuristic.
#pragma once

#include <cstdint>
#include <string>

#include "oregami/core/mapping.hpp"
#include "oregami/graph/graph.hpp"

namespace oregami {

struct MwmContractResult {
  Contraction contraction;
  std::int64_t internalized_weight = 0;  ///< comm weight inside clusters
  std::int64_t external_weight = 0;      ///< total IPC after contraction
  bool optimal = false;  ///< true when the 2P matching path applied
  int load_bound = 0;    ///< the B actually used
  std::string description;
};

/// Contracts `task_graph` (undirected aggregate weights) to at most
/// `num_procs` clusters. `load_bound_B` < 0 selects the default
/// B = 2 * ceil(n / 2P) (the Fig 5 setting: 12 tasks on 3 processors
/// gives B = 4). Throws MappingError when the bound makes the
/// contraction infeasible (B * P < n).
[[nodiscard]] MwmContractResult mwm_contract(const Graph& task_graph,
                                             int num_procs,
                                             int load_bound_B = -1);

/// Exhaustive optimal symmetric contraction for certification tests:
/// minimises external weight over every partition of n <= 12 tasks
/// into at most `num_procs` clusters of size <= B.
[[nodiscard]] std::int64_t brute_force_min_external_weight(
    const Graph& task_graph, int num_procs, int load_bound_B);

}  // namespace oregami
