// The MAPPER driver: strategy selection per the paper's Fig 3.
//
//   1. Nameable task graphs -> canned contraction/embedding lookup
//      (LaRCS `family` hint first, structural recognition otherwise).
//   2. Regular structure:
//      a. uniform affine recurrences -> systolic synthesis (only via
//         map_program, which has the LaRCS AST);
//      b. node-symmetric / Cayley task graphs -> group-theoretic
//         contraction.
//   3. Arbitrary graphs -> MWM-Contract.
// Embedding: canned when the *cluster* graph is itself nameable, else
// NN-Embed. Routing: always MM-Route.
#pragma once

#include <string>

#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/mapper/mm_route.hpp"

namespace oregami {

enum class MapStrategy {
  Canned,
  GroupTheoretic,
  Systolic,
  General,  ///< MWM-Contract + NN-Embed
};

[[nodiscard]] std::string to_string(MapStrategy strategy);

struct MapperOptions {
  RouteOptions routing;
  bool allow_canned = true;
  bool allow_group = true;
  bool allow_systolic = true;
  int load_bound_B = -1;  ///< MWM-Contract bound; < 0 = default
  /// Polish the general path's contraction with the KL/FM boundary
  /// refinement pass (see refine.hpp).
  bool refine = false;
};

struct MapperReport {
  MapStrategy strategy = MapStrategy::General;
  std::string details;  ///< human-readable algorithm description
  Mapping mapping;
};

/// Maps a task graph (no LaRCS context) to `topo`. Tries canned, then
/// group-theoretic, then the general path.
[[nodiscard]] MapperReport map_computation(
    const TaskGraph& graph, const Topology& topo,
    const MapperOptions& options = {});

/// Maps a compiled LaRCS program: additionally honours the `family`
/// hint and attempts systolic synthesis for uniform recurrences when
/// the target is a mesh/chain-like array.
[[nodiscard]] MapperReport map_program(
    const larcs::Program& program, const larcs::CompiledProgram& compiled,
    const Topology& topo, const MapperOptions& options = {});

/// Embeds an arbitrary contraction: canned lookup when the cluster
/// graph is nameable, NN-Embed otherwise. Exposed for reuse by tools.
[[nodiscard]] Embedding embed_clusters(const TaskGraph& graph,
                                       const Contraction& contraction,
                                       const Topology& topo,
                                       std::string* how = nullptr);

/// Builds the weighted cluster graph induced by a contraction
/// (inter-cluster aggregate communication).
[[nodiscard]] Graph cluster_graph_of(const TaskGraph& graph,
                                     const Contraction& contraction);

/// Full-mapping consistency check: contraction covers the tasks,
/// embedding is injective into `topo`, and every route is a valid walk
/// from the source task's processor to the destination task's
/// processor. Throws MappingError on the first violation.
void validate_mapping(const Mapping& mapping, const TaskGraph& graph,
                      const Topology& topo);

}  // namespace oregami
