// The MAPPER driver: strategy selection per the paper's Fig 3.
//
//   1. Nameable task graphs -> canned contraction/embedding lookup
//      (LaRCS `family` hint first, structural recognition otherwise).
//   2. Regular structure:
//      a. uniform affine recurrences -> systolic synthesis (only via
//         map_program, which has the LaRCS AST);
//      b. node-symmetric / Cayley task graphs -> group-theoretic
//         contraction.
//   3. Arbitrary graphs -> MWM-Contract.
// Embedding: canned when the *cluster* graph is itself nameable, else
// NN-Embed. Routing: always MM-Route.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "oregami/arch/fault_model.hpp"
#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/mapper/mm_route.hpp"

namespace oregami {

enum class MapStrategy {
  Canned,
  GroupTheoretic,
  Systolic,
  General,       ///< MWM-Contract + NN-Embed
  Anneal,        ///< simulated annealing over placements (portfolio only)
  ListSchedule,  ///< HEFT critical-path list scheduling (portfolio only)
  Multilevel,    ///< coarsen/map/refine V-cycle for large graphs
};

[[nodiscard]] std::string to_string(MapStrategy strategy);

struct MapperOptions {
  RouteOptions routing;
  bool allow_canned = true;
  bool allow_group = true;
  bool allow_systolic = true;
  int load_bound_B = -1;  ///< MWM-Contract bound; < 0 = default
  /// Polish the general path's contraction with the KL/FM boundary
  /// refinement pass (see refine.hpp).
  bool refine = false;
  /// Polish the final placement of *any* strategy by hill climbing on
  /// the completion model itself (refine_placement in refine.hpp,
  /// powered by the incremental evaluator). Off by default: it may
  /// change outputs, and the portfolio's bit-determinism contract pins
  /// the default pipeline.
  bool refine_placement = false;
  /// Portfolio mode (mapper/portfolio.hpp): when > 0,
  /// map_computation/map_program run every admissible Fig-3 strategy
  /// plus this many seeded general-path variants concurrently and
  /// return the best-scoring mapping. The result is bit-deterministic
  /// in `portfolio_seed` and independent of `jobs`.
  int portfolio = 0;
  /// Portfolio-only extensions (both off by default so every golden
  /// portfolio output stays byte-identical): `anneal` > 0 adds that
  /// many seeded simulated-annealing candidates (mapper/anneal.hpp);
  /// `heft` adds the HEFT critical-path list-scheduling candidate
  /// (mapper/list_schedule.hpp). Both are ignored when portfolio == 0.
  int anneal = 0;
  bool heft = false;
  /// Multilevel V-cycle mapper (mapper/multilevel.hpp) for large
  /// graphs: 0 = off (default, keeping every existing output
  /// byte-identical), < 0 = on with automatic coarsening depth, > 0 =
  /// on with that many coarsening levels at most. When on it replaces
  /// the whole Fig-3 decision tree (and the portfolio); the degraded-
  /// mode redirect still composes — faults are applied first, then the
  /// V-cycle runs on the healthy sub-topology.
  int multilevel = 0;
  /// Wall-clock budget for the multilevel refinement sweeps
  /// (support/deadline.hpp idiom; 0 = none). Ignored when
  /// `multilevel` == 0.
  std::int64_t multilevel_budget_ms = 0;
  int jobs = 1;  ///< portfolio/multilevel workers; 0 = hardware_concurrency
  std::uint64_t portfolio_seed = 0x09E6A311u;  ///< candidate RNG base seed
  /// Degraded-mode mapping (not owned; must outlive the call). When set
  /// with a non-empty FaultSpec, map_computation/map_program run the
  /// whole pipeline on the compacted healthy sub-topology and translate
  /// the result back to base processor/link ids, so the returned
  /// mapping avoids every dead processor and link. nullptr (or an empty
  /// spec) leaves the pipeline byte-identical to the healthy path.
  const FaultedTopology* faults = nullptr;
};

struct MapperReport {
  MapStrategy strategy = MapStrategy::General;
  std::string details;  ///< human-readable algorithm description
  Mapping mapping;
};

/// Maps a task graph (no LaRCS context) to `topo`. Tries canned, then
/// group-theoretic, then the general path.
[[nodiscard]] MapperReport map_computation(
    const TaskGraph& graph, const Topology& topo,
    const MapperOptions& options = {});

/// Maps a compiled LaRCS program: additionally honours the `family`
/// hint and attempts systolic synthesis for uniform recurrences when
/// the target is a mesh/chain-like array.
[[nodiscard]] MapperReport map_program(
    const larcs::Program& program, const larcs::CompiledProgram& compiled,
    const Topology& topo, const MapperOptions& options = {});

/// Attempts exactly one strategy from the Fig-3 decision tree, without
/// falling through to the next. Canned/GroupTheoretic return nullopt
/// when inadmissible; General always succeeds; Systolic always returns
/// nullopt here (it needs the LaRCS program -- use try_systolic).
/// `options.portfolio` is ignored. Used by the portfolio mapper to run
/// the strategies as independent candidates.
[[nodiscard]] std::optional<MapperReport> try_strategy(
    MapStrategy strategy, const TaskGraph& graph, const Topology& topo,
    const MapperOptions& options = {});

/// Attempts only systolic synthesis (uniform recurrence onto an
/// array-like target); nullopt when inadmissible.
[[nodiscard]] std::optional<MapperReport> try_systolic(
    const larcs::Program& program, const larcs::CompiledProgram& compiled,
    const Topology& topo, const MapperOptions& options = {});

/// The general path (MWM-Contract [+ refine] + NN-Embed + MM-Route)
/// with an explicit NN-Embed tie-break seed; `nn_seed` = 0 keeps the
/// deterministic lowest-id rule (and the canned cluster-graph
/// shortcut), a non-zero seed forces seeded NN-Embed so each portfolio
/// candidate explores a different corner of the tie space.
[[nodiscard]] MapperReport map_general_seeded(const TaskGraph& graph,
                                              const Topology& topo,
                                              const MapperOptions& options,
                                              std::uint64_t nn_seed);

/// Embeds an arbitrary contraction: canned lookup when the cluster
/// graph is nameable, NN-Embed otherwise. Exposed for reuse by tools.
/// A non-zero `nn_seed` skips the canned shortcut and uses seeded
/// NN-Embed tie-breaking (see nn_embed.hpp).
[[nodiscard]] Embedding embed_clusters(const TaskGraph& graph,
                                       const Contraction& contraction,
                                       const Topology& topo,
                                       std::string* how = nullptr,
                                       std::uint64_t nn_seed = 0);

/// Rebuilds the three-layer Mapping from a flat task placement:
/// clusters are the occupied processors in ascending order. Shared by
/// placement refinement, repair, and the annealing/list-scheduling
/// portfolio candidates.
[[nodiscard]] Mapping mapping_from_placement(
    const std::vector<int>& proc_of_task, std::vector<PhaseRouting> routing,
    int num_procs);

/// Builds the weighted cluster graph induced by a contraction
/// (inter-cluster aggregate communication).
[[nodiscard]] Graph cluster_graph_of(const TaskGraph& graph,
                                     const Contraction& contraction);

/// Full-mapping consistency check: contraction covers the tasks,
/// embedding is injective into `topo`, and every route is a valid walk
/// from the source task's processor to the destination task's
/// processor. Throws MappingError on the first violation.
void validate_mapping(const Mapping& mapping, const TaskGraph& graph,
                      const Topology& topo);

}  // namespace oregami
