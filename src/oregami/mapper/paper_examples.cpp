#include "oregami/mapper/paper_examples.hpp"

#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/programs.hpp"

namespace oregami::paper {

Graph fig5_task_graph() {
  Graph g(12);
  // Heavy pair edges, merged by the greedy phase in this order.
  g.add_edge(0, 1, 20);
  g.add_edge(2, 3, 18);
  g.add_edge(4, 5, 16);
  g.add_edge(6, 7, 14);
  g.add_edge(8, 9, 12);
  g.add_edge(10, 11, 10);
  // Cross edges closing the pair ring. The weight-15 edge is examined
  // after the 20/18/16 merges and must be skipped: clusters {0,1} and
  // {2,3} would form a 4-task cluster > B/2 = 2.
  g.add_edge(1, 2, 15);
  g.add_edge(3, 4, 2);
  g.add_edge(5, 6, 3);
  g.add_edge(7, 8, 2);
  g.add_edge(9, 10, 3);
  g.add_edge(11, 0, 2);
  return g;
}

TaskGraph fig6_nbody15() {
  return larcs::compile_source(larcs::programs::nbody(),
                               {{"n", 15}, {"s", 1}, {"m", 1}})
      .graph;
}

}  // namespace oregami::paper
