#include "oregami/mapper/mm_route.hpp"

#include <algorithm>

#include "oregami/arch/routes.hpp"
#include "oregami/graph/matching.hpp"
#include "oregami/support/error.hpp"

namespace oregami {

namespace {

/// Routes one phase; fills `routing.route_of_edge` and appends match
/// rounds to `trace_rounds` when tracing.
PhaseRouting route_phase(const CommPhase& phase,
                         const std::vector<int>& proc_of_task,
                         const Topology& topo,
                         const RouteOptions& options,
                         std::vector<MatchRound>* trace_rounds) {
  const int num_edges = static_cast<int>(phase.edges.size());
  PhaseRouting routing;
  routing.route_of_edge.resize(static_cast<std::size_t>(num_edges));

  // In-flight state: current node per message; -1 once delivered.
  std::vector<int> current(static_cast<std::size_t>(num_edges));
  std::vector<int> target(static_cast<std::size_t>(num_edges));
  for (int m = 0; m < num_edges; ++m) {
    const auto& e = phase.edges[static_cast<std::size_t>(m)];
    const int src = proc_of_task[static_cast<std::size_t>(e.src)];
    const int dst = proc_of_task[static_cast<std::size_t>(e.dst)];
    current[static_cast<std::size_t>(m)] = src;
    target[static_cast<std::size_t>(m)] = dst;
    routing.route_of_edge[static_cast<std::size_t>(m)].nodes = {src};
  }

  for (int hop = 0;; ++hop) {
    std::vector<int> pending;
    for (int m = 0; m < num_edges; ++m) {
      if (current[static_cast<std::size_t>(m)] !=
          target[static_cast<std::size_t>(m)]) {
        pending.push_back(m);
      }
    }
    if (pending.empty()) {
      break;
    }

    // All pending messages advance exactly one hop this iteration, via
    // repeated maximal matchings (each round uses a link at most once).
    std::vector<bool> advanced(pending.size(), false);
    std::size_t advanced_count = 0;
    while (advanced_count < pending.size()) {
      // X = not-yet-advanced pending messages, Y = links.
      std::vector<int> x_of;  // bipartite left index -> message
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (!advanced[i]) {
          x_of.push_back(pending[i]);
        }
      }
      BipartiteGraph bg(static_cast<int>(x_of.size()), topo.num_links());
      for (std::size_t x = 0; x < x_of.size(); ++x) {
        const int m = x_of[x];
        const int from = current[static_cast<std::size_t>(m)];
        for (const int next :
             next_hop_choices(topo, from, target[static_cast<std::size_t>(m)])) {
          const auto link = topo.link_between(from, next);
          OREGAMI_ASSERT(link.has_value(), "next hop must be adjacent");
          bg.add_edge(static_cast<int>(x), *link);
        }
      }
      const BipartiteMatching matching =
          options.matcher == RouteOptions::Matcher::GreedyMaximal
              ? greedy_maximal_matching(bg)
              : hopcroft_karp(bg);
      OREGAMI_ASSERT(matching.size() > 0,
                     "matching must advance at least one message");

      MatchRound round;
      round.hop = hop;
      for (std::size_t x = 0; x < x_of.size(); ++x) {
        const int link = matching.match_left[x];
        if (link == -1) {
          continue;
        }
        const int m = x_of[x];
        const int from = current[static_cast<std::size_t>(m)];
        const auto [lu, lv] = topo.link_endpoints(link);
        const int next = (lu == from) ? lv : lu;
        OREGAMI_ASSERT(lu == from || lv == from,
                       "matched link must touch the message's node");
        current[static_cast<std::size_t>(m)] = next;
        auto& route = routing.route_of_edge[static_cast<std::size_t>(m)];
        route.nodes.push_back(next);
        route.links.push_back(link);
        // Mark advanced.
        for (std::size_t i = 0; i < pending.size(); ++i) {
          if (pending[i] == m) {
            advanced[i] = true;
            ++advanced_count;
            break;
          }
        }
        round.assignments.emplace_back(m, link);
      }
      if (trace_rounds != nullptr) {
        trace_rounds->push_back(std::move(round));
      }
    }
  }

  return routing;
}

}  // namespace

std::vector<PhaseRouting> mm_route(const TaskGraph& graph,
                                   const std::vector<int>& proc_of_task,
                                   const Topology& topo,
                                   const RouteOptions& options,
                                   std::vector<PhaseRouteTrace>* trace) {
  OREGAMI_ASSERT(proc_of_task.size() ==
                     static_cast<std::size_t>(graph.num_tasks()),
                 "proc_of_task must cover every task");
  std::vector<PhaseRouting> result;
  result.reserve(graph.comm_phases().size());
  for (const auto& phase : graph.comm_phases()) {
    std::vector<MatchRound>* rounds = nullptr;
    if (trace != nullptr) {
      trace->push_back({phase.name, {}});
      rounds = &trace->back().rounds;
    }
    result.push_back(
        route_phase(phase, proc_of_task, topo, options, rounds));
  }
  return result;
}

}  // namespace oregami
