// HEFT-style critical-path list scheduling (Topcuoglu et al.'s
// Heterogeneous Earliest Finish Time, adapted to OREGAMI's homogeneous
// machines and phase-structured task graphs).
//
// Stage 1 -- upward ranks. Classic HEFT ranks a DAG task by
//   rank(t) = w(t) + max over successors s of (c(t, s) + rank(s))
// where w is the execution weight and c the communication weight.
// LaRCS task graphs are not DAGs (synchronous exchange phases create
// directed cycles), so ranks are computed on the strongly-connected-
// component condensation: an SCC is a macro-task whose weight is the
// sum of its members' execution weights plus its serialised internal
// communication, and every member task inherits the SCC's rank. On a
// DAG every SCC is a singleton and the definition collapses to classic
// HEFT exactly. Weights fold in the phase-expression multiplicities:
//   w(t)    = sum over exec phases  k of mult_k * cost_k[t]
//   c(u, v) = sum over comm phases k of mult_k * volume_k(u, v)
//             scaled by the cost model (per-unit cost + one nominal
//             hop of latency; ranking is machine-independent).
//
// Stage 2 -- earliest-finish placement. Tasks are visited in
// descending rank (ties: descending execution weight, then ascending
// task id -- fully deterministic) and greedily placed on the processor
// minimising the modelled finish time: processor-ready time vs the
// arrival of data from every already-placed communication partner,
// charged per hop via the O(1) distance oracle. Ties break to the
// lowest processor id.
//
// The result is a bare placement; route it with mm_route and rebuild
// the three-layer mapping with mapping_from_placement (the portfolio
// candidate does both).
#pragma once

#include <cstdint>
#include <vector>

#include "oregami/metrics/completion_model.hpp"

namespace oregami {

struct ListScheduleOptions {
  CostModel model;
  /// Wall-clock deadline in milliseconds: 0 = none, < 0 = already
  /// expired, > 0 = checked between task placements. Once expired,
  /// every remaining task is placed by the cheap fallback rule
  /// (least-ready processor, no communication scan), so a schedule is
  /// always produced. Negative budgets never read the clock: the
  /// whole placement deterministically uses the fallback rule.
  std::int64_t time_budget_ms = 0;
};

struct ListScheduleResult {
  std::vector<int> proc_of_task;
  std::vector<std::int64_t> rank;    ///< upward rank per task
  std::vector<int> order;            ///< task ids in placement order
  std::vector<std::int64_t> finish;  ///< modelled finish time per task
  std::int64_t makespan = 0;  ///< max finish (the EFT objective; the
                              ///< portfolio still scores the completion
                              ///< model)
  int deadline_degraded = 0;  ///< tasks placed by the fallback rule
};

/// Upward rank of every task (stage 1 alone, exposed so tests can pin
/// the rank order of the paper examples).
[[nodiscard]] std::vector<std::int64_t> heft_upward_ranks(
    const TaskGraph& graph, const CostModel& model = {});

/// Full HEFT-style placement of `graph` onto `topo`.
[[nodiscard]] ListScheduleResult list_schedule(
    const TaskGraph& graph, const Topology& topo,
    const ListScheduleOptions& options = {});

}  // namespace oregami
