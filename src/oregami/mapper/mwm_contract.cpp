#include "oregami/mapper/mwm_contract.hpp"

#include <algorithm>
#include <numeric>

#include "oregami/graph/blossom.hpp"
#include "oregami/support/error.hpp"

namespace oregami {

namespace {

/// Union-find over task ids.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void unite(int a, int b) {
    parent_[static_cast<std::size_t>(find(a))] = find(b);
  }

 private:
  std::vector<int> parent_;
};

/// Dense cluster ids from union-find roots, in first-task order.
Contraction contraction_from_roots(UnionFind& uf, int n) {
  Contraction c;
  std::vector<int> id_of_root(static_cast<std::size_t>(n), -1);
  c.cluster_of_task.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const int root = uf.find(t);
    if (id_of_root[static_cast<std::size_t>(root)] == -1) {
      id_of_root[static_cast<std::size_t>(root)] = c.num_clusters++;
    }
    c.cluster_of_task[static_cast<std::size_t>(t)] =
        id_of_root[static_cast<std::size_t>(root)];
  }
  return c;
}

std::int64_t external_weight_of(const Graph& g,
                                const std::vector<int>& cluster_of_task) {
  std::int64_t external = 0;
  for (const auto& e : g.edges()) {
    if (cluster_of_task[static_cast<std::size_t>(e.u)] !=
        cluster_of_task[static_cast<std::size_t>(e.v)]) {
      external += e.weight;
    }
  }
  return external;
}

}  // namespace

MwmContractResult mwm_contract(const Graph& task_graph, int num_procs,
                               int load_bound_B) {
  const int n = task_graph.num_vertices();
  if (num_procs <= 0) {
    throw MappingError("mwm_contract: need at least one processor");
  }
  if (n == 0) {
    throw MappingError("mwm_contract: empty task graph");
  }
  // Default B doubles the balanced pre-merge cluster size ceil(n/2P):
  // the greedy phase fills 2P clusters of <= B/2 and matched pairs stay
  // within B. (Fig 5's 12 tasks on 3 processors gives B = 4.)
  const int default_b = 2 * ((n + 2 * num_procs - 1) / (2 * num_procs));
  const int b = load_bound_B < 0 ? default_b : load_bound_B;
  if (static_cast<long>(b) * num_procs < n) {
    throw MappingError(
        "mwm_contract: load bound B = " + std::to_string(b) +
        " cannot host " + std::to_string(n) + " tasks on " +
        std::to_string(num_procs) + " processors");
  }
  const int half_b = std::max(1, b / 2);

  UnionFind uf(n);
  std::vector<int> size_of_root(static_cast<std::size_t>(n), 1);
  int cluster_count = n;

  // --- Phase 1: greedy pre-merge to <= 2P clusters of size <= B/2.
  bool greedy_used = false;
  if (cluster_count > 2 * num_procs) {
    greedy_used = true;
    std::vector<WeightedEdge> edges = task_graph.edges();
    std::stable_sort(edges.begin(), edges.end(),
                     [](const WeightedEdge& lhs, const WeightedEdge& rhs) {
                       return lhs.weight > rhs.weight;
                     });
    // The paper's heuristic makes several passes: after merges, an edge
    // joins whole clusters. Re-scanning the sorted edge list until no
    // merge happens (or the 2P target is reached) realises that.
    bool changed = true;
    while (changed && cluster_count > 2 * num_procs) {
      changed = false;
      for (const auto& e : edges) {
        if (cluster_count <= 2 * num_procs) {
          break;
        }
        const int ru = uf.find(e.u);
        const int rv = uf.find(e.v);
        if (ru == rv) {
          continue;
        }
        if (size_of_root[static_cast<std::size_t>(ru)] +
                size_of_root[static_cast<std::size_t>(rv)] >
            half_b) {
          continue;
        }
        uf.unite(ru, rv);
        const int root = uf.find(ru);
        size_of_root[static_cast<std::size_t>(root)] =
            size_of_root[static_cast<std::size_t>(ru)] +
            size_of_root[static_cast<std::size_t>(rv)];
        --cluster_count;
        changed = true;
      }
    }
    // Disconnected or saturated graphs may still exceed 2P; merge the
    // two smallest clusters regardless of adjacency (internalising zero
    // weight). Allowing up to B here (not B/2) cannot wedge: if the two
    // smallest clusters together exceeded B while more than 2P clusters
    // remain, the total task count would exceed P * B >= n.
    while (cluster_count > 2 * num_procs) {
      std::vector<int> roots;
      for (int t = 0; t < n; ++t) {
        if (uf.find(t) == t) {
          roots.push_back(t);
        }
      }
      std::sort(roots.begin(), roots.end(), [&](int a, int b2) {
        return size_of_root[static_cast<std::size_t>(a)] <
               size_of_root[static_cast<std::size_t>(b2)];
      });
      const int ra = roots[0];
      const int rb = roots[1];
      if (size_of_root[static_cast<std::size_t>(ra)] +
              size_of_root[static_cast<std::size_t>(rb)] >
          b) {
        throw MappingError(
            "mwm_contract: greedy phase cannot reach 2P clusters under "
            "B = " +
            std::to_string(b));
      }
      uf.unite(ra, rb);
      const int root = uf.find(ra);
      size_of_root[static_cast<std::size_t>(root)] =
          size_of_root[static_cast<std::size_t>(ra)] +
          size_of_root[static_cast<std::size_t>(rb)];
      --cluster_count;
    }
  }

  // --- Phase 2: optimal pairing by maximum-weight matching.
  Contraction pre = contraction_from_roots(uf, n);
  std::vector<int> pre_sizes = pre.cluster_sizes();

  Graph cluster_graph(pre.num_clusters);
  for (const auto& e : task_graph.edges()) {
    const int cu = pre.cluster_of_task[static_cast<std::size_t>(e.u)];
    const int cv = pre.cluster_of_task[static_cast<std::size_t>(e.v)];
    if (cu != cv && e.weight > 0) {
      cluster_graph.add_edge(cu, cv, e.weight);
    }
  }

  const GeneralMatching matching = max_weight_matching(cluster_graph);

  // Merge matched pairs (respecting B; sizes are <= B/2 each when the
  // greedy phase ran, and <= B/2's analogue trivially when it did not
  // because singleton tasks have size 1 <= B/2 for any feasible B).
  UnionFind pair_uf(pre.num_clusters);
  std::vector<int> merged_size = pre_sizes;
  int final_count = pre.num_clusters;
  for (int c = 0; c < pre.num_clusters; ++c) {
    const int mate = matching.mate[static_cast<std::size_t>(c)];
    if (mate > c) {
      if (pre_sizes[static_cast<std::size_t>(c)] +
              pre_sizes[static_cast<std::size_t>(mate)] <=
          b) {
        pair_uf.unite(c, mate);
        const int root = pair_uf.find(c);
        merged_size[static_cast<std::size_t>(root)] =
            pre_sizes[static_cast<std::size_t>(c)] +
            pre_sizes[static_cast<std::size_t>(mate)];
        --final_count;
      }
    }
  }

  // Forced merges when still above P. Maximum-weight matching is
  // size-oblivious, so this can wedge (e.g. pair sizes 3,3,2 under
  // B = 4); in that case fall back to first-fit-decreasing packing of
  // the pre-clusters into P bins of capacity B.
  bool wedged = false;
  while (final_count > num_procs && !wedged) {
    std::vector<int> roots;
    for (int c = 0; c < pre.num_clusters; ++c) {
      if (pair_uf.find(c) == c) {
        roots.push_back(c);
      }
    }
    std::sort(roots.begin(), roots.end(), [&](int a, int b2) {
      return merged_size[static_cast<std::size_t>(a)] <
             merged_size[static_cast<std::size_t>(b2)];
    });
    bool merged = false;
    for (std::size_t i = 0; i + 1 < roots.size() && !merged; ++i) {
      for (std::size_t j = i + 1; j < roots.size(); ++j) {
        if (merged_size[static_cast<std::size_t>(roots[i])] +
                merged_size[static_cast<std::size_t>(roots[j])] <=
            b) {
          pair_uf.unite(roots[i], roots[j]);
          const int root = pair_uf.find(roots[i]);
          merged_size[static_cast<std::size_t>(root)] =
              merged_size[static_cast<std::size_t>(roots[i])] +
              merged_size[static_cast<std::size_t>(roots[j])];
          --final_count;
          merged = true;
          break;
        }
      }
    }
    wedged = !merged;
  }

  // Compose: task -> pre-cluster -> final cluster.
  MwmContractResult result;
  std::vector<int> final_of_pre(static_cast<std::size_t>(pre.num_clusters),
                                -1);
  if (wedged) {
    // First-fit-decreasing repack of pre-clusters (weights ignored:
    // this path only triggers when the matching left an infeasible
    // size profile).
    std::vector<int> order(static_cast<std::size_t>(pre.num_clusters));
    for (int c = 0; c < pre.num_clusters; ++c) {
      order[static_cast<std::size_t>(c)] = c;
    }
    std::sort(order.begin(), order.end(), [&](int a, int b2) {
      if (pre_sizes[static_cast<std::size_t>(a)] !=
          pre_sizes[static_cast<std::size_t>(b2)]) {
        return pre_sizes[static_cast<std::size_t>(a)] >
               pre_sizes[static_cast<std::size_t>(b2)];
      }
      return a < b2;
    });
    std::vector<int> bin_load(static_cast<std::size_t>(num_procs), 0);
    int bins_used = 0;
    for (const int c : order) {
      int bin = -1;
      for (int candidate = 0; candidate < bins_used; ++candidate) {
        if (bin_load[static_cast<std::size_t>(candidate)] +
                pre_sizes[static_cast<std::size_t>(c)] <=
            b) {
          bin = candidate;
          break;
        }
      }
      bool ffd_failed = false;
      if (bin == -1) {
        if (bins_used == num_procs) {
          ffd_failed = true;
        } else {
          bin = bins_used++;
        }
      }
      if (ffd_failed) {
        // Ultimate repair: pack at task granularity (cluster
        // integrity sacrificed; always feasible because B * P >= n).
        std::fill(final_of_pre.begin(), final_of_pre.end(), -1);
        result.contraction.cluster_of_task.assign(
            static_cast<std::size_t>(n), -1);
        int fill_bin = 0;
        int fill_load = 0;
        for (const int cluster : order) {
          for (int t = 0; t < n; ++t) {
            if (pre.cluster_of_task[static_cast<std::size_t>(t)] !=
                cluster) {
              continue;
            }
            if (fill_load == b) {
              ++fill_bin;
              fill_load = 0;
            }
            OREGAMI_ASSERT(fill_bin < num_procs,
                           "task-level packing must fit (B * P >= n)");
            result.contraction
                .cluster_of_task[static_cast<std::size_t>(t)] = fill_bin;
            ++fill_load;
          }
        }
        result.contraction.num_clusters = fill_bin + 1;
        break;
      }
      bin_load[static_cast<std::size_t>(bin)] +=
          pre_sizes[static_cast<std::size_t>(c)];
      final_of_pre[static_cast<std::size_t>(c)] = bin;
    }
    if (result.contraction.cluster_of_task.empty()) {
      result.contraction.num_clusters = bins_used;
      result.contraction.cluster_of_task.resize(
          static_cast<std::size_t>(n));
      for (int t = 0; t < n; ++t) {
        result.contraction.cluster_of_task[static_cast<std::size_t>(t)] =
            final_of_pre[static_cast<std::size_t>(
                pre.cluster_of_task[static_cast<std::size_t>(t)])];
      }
    }
  } else {
    result.contraction.cluster_of_task.resize(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
      const int root =
          pair_uf.find(pre.cluster_of_task[static_cast<std::size_t>(t)]);
      if (final_of_pre[static_cast<std::size_t>(root)] == -1) {
        final_of_pre[static_cast<std::size_t>(root)] =
            result.contraction.num_clusters++;
      }
      result.contraction.cluster_of_task[static_cast<std::size_t>(t)] =
          final_of_pre[static_cast<std::size_t>(root)];
    }
  }
  result.contraction.validate(n);
  OREGAMI_ASSERT(result.contraction.num_clusters <= num_procs,
                 "contraction must fit the processor count");
  OREGAMI_ASSERT(result.contraction.max_cluster_size() <= b,
                 "contraction must respect the load bound");

  result.external_weight =
      external_weight_of(task_graph, result.contraction.cluster_of_task);
  result.internalized_weight =
      task_graph.total_weight() - result.external_weight;
  result.optimal = !greedy_used;
  result.load_bound = b;
  result.description =
      (greedy_used ? std::string("greedy pre-merge + ") : std::string()) +
      "maximum-weight matching pairing (blossom), IPC = " +
      std::to_string(result.external_weight);
  return result;
}

namespace {

void brute_force_rec(const Graph& g, int t, std::vector<int>& assign,
                     std::vector<int>& sizes, int num_procs, int b,
                     std::int64_t& best) {
  const int n = g.num_vertices();
  if (t == n) {
    best = std::min(best, external_weight_of(g, assign));
    return;
  }
  // Canonical cluster assignment: task t may join an existing cluster
  // or open the next one (avoids symmetric duplicates).
  int used = 0;
  for (const int s : sizes) {
    if (s > 0) {
      ++used;
    }
  }
  const int limit = std::min(used + 1, num_procs);
  for (int c = 0; c < limit; ++c) {
    if (sizes[static_cast<std::size_t>(c)] >= b) {
      continue;
    }
    assign[static_cast<std::size_t>(t)] = c;
    ++sizes[static_cast<std::size_t>(c)];
    brute_force_rec(g, t + 1, assign, sizes, num_procs, b, best);
    --sizes[static_cast<std::size_t>(c)];
  }
}

}  // namespace

std::int64_t brute_force_min_external_weight(const Graph& task_graph,
                                             int num_procs,
                                             int load_bound_B) {
  const int n = task_graph.num_vertices();
  OREGAMI_ASSERT(n <= 12, "brute force contraction is for tiny graphs");
  std::vector<int> assign(static_cast<std::size_t>(n), -1);
  std::vector<int> sizes(static_cast<std::size_t>(num_procs), 0);
  std::int64_t best = task_graph.total_weight() + 1;
  brute_force_rec(task_graph, 0, assign, sizes, num_procs, load_bound_B,
                  best);
  return best;
}

}  // namespace oregami
