#include "oregami/mapper/migration.hpp"

#include <algorithm>

#include "oregami/mapper/mm_route.hpp"
#include "oregami/support/error.hpp"

namespace oregami {

namespace {

void linearize(const PhaseTree& node, std::vector<int>& out,
               std::size_t max_steps) {
  if (out.size() > max_steps) {
    throw MappingError("phase expression expansion exceeds the step cap");
  }
  switch (node.kind) {
    case PhaseTree::Kind::Idle:
      return;
    case PhaseTree::Kind::Comm:
      out.push_back(node.phase_index);
      return;
    case PhaseTree::Kind::Exec:
      out.push_back(~node.phase_index);
      return;
    case PhaseTree::Kind::Seq:
    case PhaseTree::Kind::Par:
      for (const auto& child : node.children) {
        linearize(child, out, max_steps);
      }
      return;
    case PhaseTree::Kind::Repeat:
      for (long i = 0; i < node.count; ++i) {
        linearize(node.children.front(), out, max_steps);
        if (out.size() > max_steps) {
          throw MappingError(
              "phase expression expansion exceeds the step cap");
        }
      }
      return;
  }
}

}  // namespace

std::vector<int> linearize_phase_expr(const TaskGraph& graph,
                                      std::size_t max_steps) {
  std::vector<int> out;
  if (graph.phase_expr().kind == PhaseTree::Kind::Idle) {
    for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
      out.push_back(static_cast<int>(k));
    }
    for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
      out.push_back(~static_cast<int>(k));
    }
    return out;
  }
  linearize(graph.phase_expr(), out, max_steps);
  return out;
}

namespace {

/// A task graph containing only phase `k` of `graph` (exec phases kept
/// so the mapper balances load too).
TaskGraph single_phase_view(const TaskGraph& graph, std::size_t k) {
  TaskGraph view;
  for (int t = 0; t < graph.num_tasks(); ++t) {
    view.add_task(graph.task_name(t), graph.task_label(t));
  }
  const auto& phase = graph.comm_phases()[k];
  const int p = view.add_comm_phase(phase.name);
  for (const auto& e : phase.edges) {
    view.add_comm_edge(p, e.src, e.dst, e.volume);
  }
  for (const auto& exec : graph.exec_phases()) {
    view.add_exec_phase(exec.name, exec.cost);
  }
  view.set_node_symmetric(graph.declared_node_symmetric());
  return view;
}

long moved_tasks(const std::vector<int>& from, const std::vector<int>& to) {
  long count = 0;
  for (std::size_t t = 0; t < from.size(); ++t) {
    if (from[t] != to[t]) {
      ++count;
    }
  }
  return count;
}

}  // namespace

MigrationReport evaluate_phase_migration(const TaskGraph& graph,
                                         const Topology& topo,
                                         const MigrationConfig& config) {
  MigrationReport report;

  // Static reference: the ordinary driver mapping.
  const MapperReport static_report =
      map_computation(graph, topo, config.mapper);
  report.static_time =
      completion_time(graph, static_report.mapping.proc_of_task(),
                      static_report.mapping.routing, topo, config.model);

  // Tailored mapping and routing per comm phase.
  const std::size_t num_comm = graph.comm_phases().size();
  std::vector<std::vector<PhaseRouting>> routing_per(num_comm);
  for (std::size_t k = 0; k < num_comm; ++k) {
    const TaskGraph view = single_phase_view(graph, k);
    const MapperReport phase_report =
        map_computation(view, topo, config.mapper);
    report.placement_per_comm_phase.push_back(
        phase_report.mapping.proc_of_task());
    // Route the *original* phase under that placement.
    routing_per[k] = mm_route(
        graph, report.placement_per_comm_phase.back(), topo,
        config.mapper.routing);
  }

  // Walk the timeline: start at the first comm phase's placement.
  const auto timeline = linearize_phase_expr(graph, config.max_steps);
  std::vector<int> current =
      num_comm > 0 ? report.placement_per_comm_phase.front()
                   : static_report.mapping.proc_of_task();
  for (const int step : timeline) {
    if (step >= 0) {
      const auto k = static_cast<std::size_t>(step);
      const auto& target = report.placement_per_comm_phase[k];
      const long moves = moved_tasks(current, target);
      if (moves > 0) {
        report.task_moves += moves;
        ++report.migrations;
        report.migrating_time += moves * config.cost_per_task_move;
        current = target;
      }
      report.migrating_time += comm_phase_time(
          graph, step, routing_per[k][k], topo, config.model);
    } else {
      report.migrating_time += exec_phase_time(
          graph, ~step, current, topo.num_procs());
    }
  }
  return report;
}

}  // namespace oregami
