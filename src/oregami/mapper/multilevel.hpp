// Multilevel V-cycle mapper for production-scale task graphs
// (10k-1M tasks), after Glantz/Meyerhenke/Noe's recipe for grid/torus
// targets: coarsen -> map the small graph well -> project back up,
// refining at every level.
//
//   1. COARSEN: repeated seeded heavy-edge matching
//      (core/csr_graph.hpp) folds comm volumes and exec costs into
//      super-tasks until at most one super-task per processor remains,
//      recording each level's projection map.
//   2. INITIAL MAP: the coarsest graph (<= P super-tasks) is embedded
//      with the seed pipeline's NN-Embed; at that size the paper-scale
//      machinery is fast and good.
//   3. UNCOARSEN + REFINE: project the placement down one level at a
//      time; at each level run boundary-focused refinement sweeps --
//      only tasks with a neighbor on another processor are candidates.
//      Candidate gains are estimated in parallel over the `ThreadPool`
//      from a frozen placement (CSR scans + the O(1) distance oracle),
//      then committed serially in ascending task order, each re-probed
//      exactly with `IncrementalCompletion::delta_move` and applied
//      only when strictly improving.
//
// Determinism contract (same as the portfolio's): proposals are pure
// functions of the frozen placement and are collected in submission
// order, commits are serial and ordered, and all randomness flows from
// `seed` through per-level SplitMix64 streams -- so the result is
// bit-identical across `jobs` values.
#pragma once

#include <cstdint>

#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/completion_model.hpp"

namespace oregami {

struct MultilevelOptions {
  /// Maximum number of coarsening levels; <= 0 means "auto": coarsen
  /// until the graph has at most one super-task per processor (or
  /// matching stalls). A small positive cap yields a shallower cycle
  /// with more refinement work per level.
  int max_levels = 0;
  /// Boundary-refinement sweeps per level. Each sweep proposes in
  /// parallel and commits serially; a sweep that commits no move ends
  /// the level early.
  int refine_rounds = 2;
  /// Proposal workers; 0 = hardware_concurrency. Never affects the
  /// result, only wall time.
  int jobs = 1;
  /// Base seed for the coarsening shuffles and the coarsest NN-Embed
  /// tie-breaks (level k uses seed + k).
  std::uint64_t seed = 0x09E6A311u;
  /// Wall-clock budget (support/deadline.hpp idiom: 0 = none, < 0 =
  /// already expired). Checked between levels and sweeps; on expiry
  /// remaining refinement is skipped but the projected placement is
  /// still returned, so the mapping is always valid.
  std::int64_t time_budget_ms = 0;
  CostModel model;
};

/// Maps `graph` onto `topo` with the multilevel V-cycle. Works for any
/// graph size but pays off above a few thousand tasks; below that the
/// direct pipeline explores more. Throws MappingError for an empty
/// graph or a topology without links.
[[nodiscard]] MapperReport map_multilevel(const TaskGraph& graph,
                                          const Topology& topo,
                                          const MultilevelOptions& options = {});

}  // namespace oregami
