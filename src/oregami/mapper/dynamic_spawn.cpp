#include "oregami/mapper/dynamic_spawn.hpp"

#include <algorithm>

#include "oregami/graph/gray_code.hpp"
#include "oregami/mapper/binomial_mesh.hpp"
#include "oregami/mapper/canned.hpp"
#include "oregami/mapper/cbt_mesh.hpp"
#include "oregami/support/error.hpp"

namespace oregami {

std::vector<int> SpawnPlan::live_nodes(int stage) const {
  std::vector<int> nodes;
  for (std::size_t v = 0; v < spawn_stage_of_node.size(); ++v) {
    if (spawn_stage_of_node[v] <= stage) {
      nodes.push_back(static_cast<int>(v));
    }
  }
  return nodes;
}

int SpawnPlan::stage_imbalance(int stage, int num_procs) const {
  std::vector<int> load(static_cast<std::size_t>(num_procs), 0);
  for (const int v : live_nodes(stage)) {
    ++load[static_cast<std::size_t>(
        proc_of_node[static_cast<std::size_t>(v)])];
  }
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  return *hi - *lo;
}

SpawnPlan plan_binomial_spawn(int k, const Topology& topo) {
  OREGAMI_ASSERT(k >= 0 && k <= 24, "binomial order out of range");
  SpawnPlan plan;
  plan.family = GraphFamily::BinomialTree;
  plan.max_stage = k;
  const int n = 1 << k;
  plan.spawn_stage_of_node.resize(static_cast<std::size_t>(n));
  plan.spawn_stage_of_node[0] = 0;
  for (int m = 1; m < n; ++m) {
    plan.spawn_stage_of_node[static_cast<std::size_t>(m)] =
        floor_log2(static_cast<std::uint64_t>(m)) + 1;
  }

  // Reuse the canned binomial entries: they place node m by its address
  // alone, so placements are stable under growth (B_s is exactly the
  // low-address prefix of B_k).
  RecognizedFamily family;
  family.family = GraphFamily::BinomialTree;
  family.params = {k};
  family.canonical_label.resize(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    family.canonical_label[static_cast<std::size_t>(m)] = m;
  }
  const auto canned = canned_mapping(family, topo);
  if (!canned) {
    throw MappingError(
        "plan_binomial_spawn: no canned binomial mapping for topology " +
        topo.name());
  }
  plan.proc_of_node.resize(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    const int cluster =
        canned->contraction.cluster_of_task[static_cast<std::size_t>(m)];
    plan.proc_of_node[static_cast<std::size_t>(m)] =
        canned->embedding.proc_of_cluster[static_cast<std::size_t>(cluster)];
  }
  plan.description = "binomial spawn plan via " + canned->description;
  return plan;
}

SpawnPlan plan_cbt_spawn(int h, const Topology& topo) {
  OREGAMI_ASSERT(h >= 1 && h <= 20, "tree height out of range");
  SpawnPlan plan;
  plan.family = GraphFamily::CompleteBinaryTree;
  plan.max_stage = h - 1;
  const int n = (1 << h) - 1;
  plan.spawn_stage_of_node.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    plan.spawn_stage_of_node[static_cast<std::size_t>(v)] =
        floor_log2(static_cast<std::uint64_t>(v) + 1);
  }

  RecognizedFamily family;
  family.family = GraphFamily::CompleteBinaryTree;
  family.params = {h};
  family.canonical_label.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    family.canonical_label[static_cast<std::size_t>(v)] = v;
  }
  const auto canned = canned_mapping(family, topo);
  if (!canned) {
    throw MappingError(
        "plan_cbt_spawn: no canned CBT mapping for topology " +
        topo.name());
  }
  plan.proc_of_node.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const int cluster =
        canned->contraction.cluster_of_task[static_cast<std::size_t>(v)];
    plan.proc_of_node[static_cast<std::size_t>(v)] =
        canned->embedding.proc_of_cluster[static_cast<std::size_t>(cluster)];
  }
  plan.description = "CBT spawn plan via " + canned->description;
  return plan;
}

}  // namespace oregami
