#include "oregami/mapper/baselines.hpp"

#include <algorithm>
#include <numeric>

#include "oregami/arch/routes.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {

namespace {

template <typename RouteFn>
std::vector<PhaseRouting> route_all(const TaskGraph& graph,
                                    const std::vector<int>& proc_of_task,
                                    RouteFn&& make_route) {
  std::vector<PhaseRouting> result;
  result.reserve(graph.comm_phases().size());
  for (const auto& phase : graph.comm_phases()) {
    PhaseRouting routing;
    routing.route_of_edge.reserve(phase.edges.size());
    for (const auto& e : phase.edges) {
      const int src = proc_of_task[static_cast<std::size_t>(e.src)];
      const int dst = proc_of_task[static_cast<std::size_t>(e.dst)];
      routing.route_of_edge.push_back(make_route(src, dst));
    }
    result.push_back(std::move(routing));
  }
  return result;
}

}  // namespace

std::vector<PhaseRouting> route_dimension_order(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo) {
  return route_all(graph, proc_of_task, [&](int src, int dst) {
    return src == dst ? Route{{src}, {}}
                      : dimension_order_route(topo, src, dst);
  });
}

std::vector<PhaseRouting> route_random_shortest(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo, std::uint64_t seed) {
  SplitMix64 rng(seed);
  return route_all(graph, proc_of_task, [&](int src, int dst) {
    std::vector<int> nodes{src};
    int at = src;
    while (at != dst) {
      const auto choices = next_hop_choices(topo, at, dst);
      OREGAMI_ASSERT(!choices.empty(), "destination must be reachable");
      at = choices[rng.next_below(choices.size())];
      nodes.push_back(at);
    }
    return route_from_nodes(topo, std::move(nodes));
  });
}

std::vector<PhaseRouting> route_greedy_shortest(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo) {
  return route_all(graph, proc_of_task, [&](int src, int dst) {
    return greedy_shortest_route(topo, src, dst);
  });
}

Contraction round_robin_contraction(int num_tasks, int num_procs) {
  OREGAMI_ASSERT(num_tasks > 0 && num_procs > 0,
                 "need positive task and processor counts");
  Contraction c;
  c.num_clusters = std::min(num_tasks, num_procs);
  c.cluster_of_task.resize(static_cast<std::size_t>(num_tasks));
  for (int t = 0; t < num_tasks; ++t) {
    c.cluster_of_task[static_cast<std::size_t>(t)] = t % c.num_clusters;
  }
  return c;
}

Contraction block_contraction(int num_tasks, int num_procs) {
  OREGAMI_ASSERT(num_tasks > 0 && num_procs > 0,
                 "need positive task and processor counts");
  Contraction c;
  c.num_clusters = std::min(num_tasks, num_procs);
  c.cluster_of_task.resize(static_cast<std::size_t>(num_tasks));
  for (int t = 0; t < num_tasks; ++t) {
    c.cluster_of_task[static_cast<std::size_t>(t)] = static_cast<int>(
        static_cast<long>(t) * c.num_clusters / num_tasks);
  }
  return c;
}

Embedding random_embedding(int num_clusters, const Topology& topo,
                           std::uint64_t seed) {
  OREGAMI_ASSERT(num_clusters <= topo.num_procs(),
                 "more clusters than processors");
  std::vector<int> procs(static_cast<std::size_t>(topo.num_procs()));
  std::iota(procs.begin(), procs.end(), 0);
  SplitMix64 rng(seed);
  // Fisher-Yates.
  for (std::size_t i = procs.size(); i > 1; --i) {
    std::swap(procs[i - 1], procs[rng.next_below(i)]);
  }
  Embedding e;
  e.proc_of_cluster.assign(procs.begin(),
                           procs.begin() + num_clusters);
  return e;
}

Embedding identity_embedding(int num_clusters) {
  Embedding e;
  e.proc_of_cluster.resize(static_cast<std::size_t>(num_clusters));
  std::iota(e.proc_of_cluster.begin(), e.proc_of_cluster.end(), 0);
  return e;
}

}  // namespace oregami
