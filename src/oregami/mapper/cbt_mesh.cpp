#include "oregami/mapper/cbt_mesh.hpp"

#include <algorithm>
#include <cstdlib>

#include "oregami/support/error.hpp"

namespace oregami {

int CbtMeshEmbedding::edge_dilation(int node) const {
  OREGAMI_ASSERT(node > 0 &&
                     node < static_cast<int>(cell_of_node.size()),
                 "tree node out of range");
  const int parent = (node - 1) / 2;
  const int a = cell_of_node[static_cast<std::size_t>(node)];
  const int b = cell_of_node[static_cast<std::size_t>(parent)];
  return std::abs(a / cols - b / cols) + std::abs(a % cols - b % cols);
}

double CbtMeshEmbedding::average_dilation() const {
  const int n = static_cast<int>(cell_of_node.size());
  if (n <= 1) {
    return 0.0;
  }
  long total = 0;
  for (int v = 1; v < n; ++v) {
    total += edge_dilation(v);
  }
  return static_cast<double>(total) / static_cast<double>(n - 1);
}

int CbtMeshEmbedding::max_dilation() const {
  int best = 0;
  for (int v = 1; v < static_cast<int>(cell_of_node.size()); ++v) {
    best = std::max(best, edge_dilation(v));
  }
  return best;
}

namespace {

int width_of(int h) { return (1 << (h / 2 + 1)) - 1; }
int height_of(int h) { return (1 << ((h + 1) / 2)) - 1; }

/// Recursive H-tree placement: node (heap index) at (r, c); children
/// offset along the current axis by half the child footprint.
void place(int h, int node, int r, int c, bool horizontal, int cols,
           std::vector<int>& cell_of_node) {
  cell_of_node[static_cast<std::size_t>(node)] = r * cols + c;
  if (h == 1) {
    return;
  }
  const int offset = horizontal ? (width_of(h - 1) + 1) / 2
                                : (height_of(h - 1) + 1) / 2;
  const int dr = horizontal ? 0 : offset;
  const int dc = horizontal ? offset : 0;
  place(h - 1, 2 * node + 1, r - dr, c - dc, !horizontal, cols,
        cell_of_node);
  place(h - 1, 2 * node + 2, r + dr, c + dc, !horizontal, cols,
        cell_of_node);
}

}  // namespace

CbtMeshEmbedding embed_cbt_in_mesh(int h) {
  OREGAMI_ASSERT(h >= 1 && h <= 20, "tree height out of range");
  CbtMeshEmbedding out;
  out.h = h;
  out.cols = width_of(h);
  out.rows = height_of(h);
  out.cell_of_node.assign((static_cast<std::size_t>(1) << h) - 1, -1);
  // Levels alternate horizontal/vertical; the top level splits the
  // wider axis, which by the dimension formulas is horizontal for even
  // h and also for h == 1 (degenerate single cell).
  const bool top_horizontal = h % 2 == 0 || h == 1;
  place(h, 0, out.rows / 2, out.cols / 2, top_horizontal, out.cols,
        out.cell_of_node);
  for (const int cell : out.cell_of_node) {
    OREGAMI_ASSERT(cell >= 0, "every node must be placed");
  }
  return out;
}

}  // namespace oregami
