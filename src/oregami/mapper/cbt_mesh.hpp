// H-tree embedding of the complete binary tree into a mesh -- the
// classic VLSI layout, used as the canned entry for CBT task graphs on
// mesh architectures. A tree of 2^h - 1 nodes occupies a
// (2^ceil(h/2) - 1) x (2^(floor(h/2)+1) - 1) grid; the two subtrees of
// a node sit in disjoint half-grids on alternating axes, so edge
// dilation at tree level l is ~2^(l/2-1) and the *average* dilation
// over all edges stays bounded (most edges are near the leaves and have
// dilation 1).
#pragma once

#include <vector>

namespace oregami {

struct CbtMeshEmbedding {
  int h = 0;     ///< tree levels (2^h - 1 nodes)
  int rows = 0;  ///< grid rows = 2^ceil(h/2) - 1
  int cols = 0;  ///< grid cols = 2^(floor(h/2)+1) - 1
  /// Grid cell (row * cols + col) of each heap-indexed tree node.
  std::vector<int> cell_of_node;

  /// Mesh distance between node and its heap parent.
  [[nodiscard]] int edge_dilation(int node) const;
  [[nodiscard]] double average_dilation() const;
  [[nodiscard]] int max_dilation() const;
};

/// Builds the H-tree layout for 1 <= h <= 20.
[[nodiscard]] CbtMeshEmbedding embed_cbt_in_mesh(int h);

}  // namespace oregami
