#include "oregami/mapper/driver.hpp"

#include <algorithm>

#include "oregami/arch/routes.hpp"
#include "oregami/core/recognize.hpp"
#include "oregami/mapper/canned.hpp"
#include "oregami/mapper/group_contract.hpp"
#include "oregami/mapper/multilevel.hpp"
#include "oregami/mapper/mwm_contract.hpp"
#include "oregami/mapper/nn_embed.hpp"
#include "oregami/mapper/portfolio.hpp"
#include "oregami/mapper/refine.hpp"
#include "oregami/mapper/systolic.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/trace.hpp"

namespace oregami {

std::string to_string(MapStrategy strategy) {
  switch (strategy) {
    case MapStrategy::Canned:
      return "canned";
    case MapStrategy::GroupTheoretic:
      return "group-theoretic";
    case MapStrategy::Systolic:
      return "systolic";
    case MapStrategy::General:
      return "general (MWM-Contract + NN-Embed)";
    case MapStrategy::Anneal:
      return "simulated annealing";
    case MapStrategy::ListSchedule:
      return "HEFT list schedule";
    case MapStrategy::Multilevel:
      return "multilevel V-cycle";
  }
  return "?";
}

namespace {

MultilevelOptions multilevel_options_from(const MapperOptions& options) {
  MultilevelOptions ml;
  ml.max_levels = options.multilevel > 0 ? options.multilevel : 0;
  ml.jobs = options.jobs;
  ml.seed = options.portfolio_seed;
  ml.time_budget_ms = options.multilevel_budget_ms;
  return ml;
}

}  // namespace

Mapping mapping_from_placement(const std::vector<int>& proc_of_task,
                               std::vector<PhaseRouting> routing,
                               int num_procs) {
  std::vector<int> cluster_of_proc(static_cast<std::size_t>(num_procs), -1);
  Mapping mapping;
  for (const int p : proc_of_task) {
    cluster_of_proc[static_cast<std::size_t>(p)] = 0;
  }
  for (int p = 0; p < num_procs; ++p) {
    if (cluster_of_proc[static_cast<std::size_t>(p)] == 0) {
      cluster_of_proc[static_cast<std::size_t>(p)] =
          mapping.contraction.num_clusters++;
      mapping.embedding.proc_of_cluster.push_back(p);
    }
  }
  mapping.contraction.cluster_of_task.reserve(proc_of_task.size());
  for (const int p : proc_of_task) {
    mapping.contraction.cluster_of_task.push_back(
        cluster_of_proc[static_cast<std::size_t>(p)]);
  }
  mapping.routing = std::move(routing);
  return mapping;
}

Graph cluster_graph_of(const TaskGraph& graph,
                       const Contraction& contraction) {
  Graph g(contraction.num_clusters);
  for (const auto& phase : graph.comm_phases()) {
    for (const auto& e : phase.edges) {
      const int cu =
          contraction.cluster_of_task[static_cast<std::size_t>(e.src)];
      const int cv =
          contraction.cluster_of_task[static_cast<std::size_t>(e.dst)];
      if (cu != cv && e.volume > 0) {
        g.add_edge(cu, cv, e.volume);
      }
    }
  }
  return g;
}

Embedding embed_clusters(const TaskGraph& graph,
                         const Contraction& contraction,
                         const Topology& topo, std::string* how,
                         std::uint64_t nn_seed) {
  const Graph cg = cluster_graph_of(graph, contraction);
  if (nn_seed != 0) {
    // Seeded portfolio candidate: the whole point is tie-break
    // diversity, so bypass the canned shortcut (which is seed-blind).
    if (how != nullptr) {
      *how = "NN-Embed seeded placement (seed " + std::to_string(nn_seed) +
             ")";
    }
    return nn_embed_seeded(cg, topo, nn_seed);
  }
  const RecognizedFamily family = recognize_family(cg);
  if (family.family != GraphFamily::Unknown) {
    // A canned entry for the *cluster* graph: its contraction must be
    // the identity (clusters are already processor-grained).
    if (auto canned = canned_mapping(family, topo)) {
      if (canned->contraction.num_clusters == cg.num_vertices()) {
        if (how != nullptr) {
          *how = "canned embedding of " + to_string(family.family) +
                 " cluster graph: " + canned->description;
        }
        // canned->contraction is identity here (same cluster count);
        // compose embeddings accordingly.
        Embedding result;
        result.proc_of_cluster.resize(
            static_cast<std::size_t>(cg.num_vertices()));
        for (int c = 0; c < cg.num_vertices(); ++c) {
          const int cc =
              canned->contraction.cluster_of_task[static_cast<std::size_t>(c)];
          result.proc_of_cluster[static_cast<std::size_t>(c)] =
              canned->embedding.proc_of_cluster[static_cast<std::size_t>(cc)];
        }
        result.validate(topo.num_procs());
        return result;
      }
    }
  }
  if (how != nullptr) {
    *how = "NN-Embed greedy placement";
  }
  return nn_embed(cg, topo);
}

namespace {

MapperReport finish(MapStrategy strategy, std::string details,
                    Contraction contraction, Embedding embedding,
                    const TaskGraph& graph, const Topology& topo,
                    const MapperOptions& options) {
  MapperReport report;
  report.strategy = strategy;
  report.details = std::move(details);
  report.mapping.contraction = std::move(contraction);
  report.mapping.embedding = std::move(embedding);
  {
    const trace::Span span("route");
    report.mapping.routing = mm_route(
        graph, report.mapping.proc_of_task(), topo, options.routing);
  }
  if (options.refine_placement) {
    const trace::Span span("refine_placement");
    // Never loosen the load balance the strategy achieved: bound moves
    // by the explicit B when given, else the current largest cluster.
    const int bound = options.load_bound_B > 0
                          ? options.load_bound_B
                          : report.mapping.contraction.max_cluster_size();
    PlacementRefineResult refined = refine_placement(
        graph, topo, report.mapping.proc_of_task(),
        report.mapping.routing, /*model=*/{}, bound);
    trace::counter("moves", refined.moves);
    trace::counter("improvement", refined.improvement());
    if (refined.moves > 0) {
      report.details += "; placement refinement -" +
                        std::to_string(refined.improvement()) +
                        " completion (" + std::to_string(refined.moves) +
                        " moves)";
      report.mapping =
          mapping_from_placement(refined.proc_of_task,
                                 std::move(refined.routing),
                                 topo.num_procs());
    }
  }
  validate_mapping(report.mapping, graph, topo);
  return report;
}

std::optional<MapperReport> try_canned(const TaskGraph& graph,
                                       const Topology& topo,
                                       const MapperOptions& options,
                                       const RecognizedFamily& family) {
  if (family.family == GraphFamily::Unknown) {
    trace::instant("canned_rejected");
    return std::nullopt;
  }
  const trace::Span span("canned");
  auto canned = canned_mapping(family, topo);
  if (!canned) {
    trace::instant("no_canned_entry");
    return std::nullopt;
  }
  return finish(MapStrategy::Canned,
                to_string(family.family) + " recognized; " +
                    canned->description,
                std::move(canned->contraction), std::move(canned->embedding),
                graph, topo, options);
}

std::optional<MapperReport> try_group(const TaskGraph& graph,
                                      const Topology& topo,
                                      const MapperOptions& options) {
  const int n = graph.num_tasks();
  const int p = topo.num_procs();
  if (n < p || n % p != 0) {
    trace::instant("group_rejected");
    return std::nullopt;
  }
  const trace::Span span("group_contract");
  auto outcome = group_theoretic_contraction(graph, p);
  if (outcome.status != GroupContractStatus::Ok) {
    trace::instant("group_inadmissible");
    return std::nullopt;
  }
  std::string how;
  Embedding embedding =
      embed_clusters(graph, outcome.result->contraction, topo, &how);
  return finish(MapStrategy::GroupTheoretic,
                outcome.result->description + "; " + how,
                std::move(outcome.result->contraction), std::move(embedding),
                graph, topo, options);
}

MapperReport do_general(const TaskGraph& graph, const Topology& topo,
                        const MapperOptions& options,
                        std::uint64_t nn_seed = 0) {
  const Graph aggregate = graph.aggregate_graph();
  Contraction contraction;
  std::string description;
  {
    const trace::Span span("contract");
    MwmContractResult contract =
        mwm_contract(aggregate, topo.num_procs(), options.load_bound_B);
    description = std::move(contract.description);
    contraction = std::move(contract.contraction);
    trace::counter("clusters", contraction.num_clusters);
    if (options.refine) {
      const trace::Span refine_span("kl_refine");
      RefineResult refined =
          refine_contraction(aggregate, std::move(contraction),
                             contract.load_bound);
      description += "; KL refinement -" +
                     std::to_string(refined.improvement()) + " IPC";
      trace::counter("ipc_improvement", refined.improvement());
      contraction = std::move(refined.contraction);
    }
  }
  std::string how;
  Embedding embedding;
  {
    const trace::Span span("embed");
    embedding = embed_clusters(graph, contraction, topo, &how, nn_seed);
  }
  return finish(MapStrategy::General, description + "; " + how,
                std::move(contraction), std::move(embedding), graph, topo,
                options);
}

}  // namespace

std::optional<MapperReport> try_strategy(MapStrategy strategy,
                                         const TaskGraph& graph,
                                         const Topology& topo,
                                         const MapperOptions& options) {
  if (graph.num_tasks() == 0) {
    throw MappingError("cannot map an empty task graph");
  }
  switch (strategy) {
    case MapStrategy::Canned:
      return try_canned(graph, topo, options,
                        recognize_family(graph.aggregate_graph()));
    case MapStrategy::GroupTheoretic:
      return try_group(graph, topo, options);
    case MapStrategy::Systolic:
      return std::nullopt;  // needs the LaRCS program; see try_systolic
    case MapStrategy::General:
      return do_general(graph, topo, options);
  }
  return std::nullopt;
}

std::optional<MapperReport> try_systolic(
    const larcs::Program& program, const larcs::CompiledProgram& compiled,
    const Topology& topo, const MapperOptions& options) {
  const TaskGraph& graph = compiled.graph;
  if (topo.family() != TopoFamily::Mesh &&
      topo.family() != TopoFamily::Torus &&
      topo.family() != TopoFamily::Chain &&
      topo.family() != TopoFamily::Ring) {
    trace::instant("systolic_rejected");
    return std::nullopt;
  }
  const trace::Span span("systolic");
  auto systolic = systolic_map(program, compiled);
  if (!systolic || systolic->contraction.num_clusters > topo.num_procs()) {
    trace::instant("systolic_inadmissible");
    return std::nullopt;
  }
  std::string how;
  Embedding embedding =
      embed_clusters(graph, systolic->contraction, topo, &how);
  return finish(MapStrategy::Systolic, systolic->description + "; " + how,
                std::move(systolic->contraction), std::move(embedding),
                graph, topo, options);
}

MapperReport map_general_seeded(const TaskGraph& graph, const Topology& topo,
                                const MapperOptions& options,
                                std::uint64_t nn_seed) {
  if (graph.num_tasks() == 0) {
    throw MappingError("cannot map an empty task graph");
  }
  return do_general(graph, topo, options, nn_seed);
}

namespace {

/// Degraded-mode redirect: runs the requested pipeline on the compacted
/// healthy sub-topology and translates back to base ids. `options` is
/// taken by value so the recursion sees faults == nullptr.
MapperReport map_degraded(const TaskGraph& graph,
                          const FaultedTopology& faults,
                          const Topology& topo, MapperOptions options,
                          const larcs::Program* program,
                          const larcs::CompiledProgram* compiled) {
  if (faults.base().num_procs() != topo.num_procs()) {
    throw MappingError(
        "MapperOptions::faults is for a different topology (" +
        faults.base().name() + " vs " + topo.name() + ")");
  }
  if (faults.healthy_procs().empty()) {
    throw MappingError(
        "cannot map onto the faulted topology: no healthy processors "
        "remain (spec: " + faults.spec().to_string() + ")");
  }
  const trace::Span span("degraded_map");
  const FaultedTopology::HealthySub sub = faults.healthy_subtopology();
  options.faults = nullptr;
  MapperReport report =
      program != nullptr
          ? map_program(*program, *compiled, sub.topo, options)
          : map_computation(graph, sub.topo, options);
  report.mapping = map_to_base(sub, std::move(report.mapping));
  report.details = "degraded machine (" + faults.spec().to_string() +
                   "; " + std::to_string(sub.topo.num_procs()) + "/" +
                   std::to_string(faults.base().num_procs()) +
                   " processors healthy); " + report.details;
  validate_mapping(report.mapping, graph, faults.base());
  return report;
}

}  // namespace

MapperReport map_computation(const TaskGraph& graph, const Topology& topo,
                             const MapperOptions& options) {
  if (graph.num_tasks() == 0) {
    throw MappingError("cannot map an empty task graph");
  }
  if (options.faults != nullptr && !options.faults->spec().empty()) {
    return map_degraded(graph, *options.faults, topo, options, nullptr,
                        nullptr);
  }
  if (options.multilevel != 0) {
    return map_multilevel(graph, topo, multilevel_options_from(options));
  }
  if (options.portfolio > 0) {
    return portfolio_map_computation(graph, topo, options,
                                     portfolio_options_from(options))
        .best;
  }
  const trace::Span span("map");
  if (options.allow_canned) {
    const RecognizedFamily family =
        recognize_family(graph.aggregate_graph());
    if (auto report = try_canned(graph, topo, options, family)) {
      return *report;
    }
  }
  if (options.allow_group) {
    if (auto report = try_group(graph, topo, options)) {
      return *report;
    }
  }
  return do_general(graph, topo, options);
}

MapperReport map_program(const larcs::Program& program,
                         const larcs::CompiledProgram& compiled,
                         const Topology& topo,
                         const MapperOptions& options) {
  const TaskGraph& graph = compiled.graph;
  if (graph.num_tasks() == 0) {
    throw MappingError("cannot map an empty task graph");
  }
  if (options.faults != nullptr && !options.faults->spec().empty()) {
    return map_degraded(graph, *options.faults, topo, options, &program,
                        &compiled);
  }
  if (options.multilevel != 0) {
    // Large-graph path: the systolic/canned recognisers are built for
    // paper-scale structure; the V-cycle takes over the whole pipeline.
    return map_multilevel(graph, topo, multilevel_options_from(options));
  }
  if (options.portfolio > 0) {
    return portfolio_map_program(program, compiled, topo, options,
                                 portfolio_options_from(options))
        .best;
  }

  // Systolic path: uniform recurrence onto an array-like target.
  if (options.allow_systolic) {
    if (auto report = try_systolic(program, compiled, topo, options)) {
      return *report;
    }
  }

  // Family hint from the LaRCS source.
  if (options.allow_canned && compiled.family_hint) {
    const GraphFamily hinted = family_from_hint(*compiled.family_hint);
    if (hinted != GraphFamily::Unknown) {
      const auto family =
          detect_specific_family(graph.aggregate_graph(), hinted);
      if (family) {
        if (auto report = try_canned(graph, topo, options, *family)) {
          report->details = "family hint '" + *compiled.family_hint +
                            "'; " + report->details;
          return *report;
        }
      }
    }
  }

  return map_computation(graph, topo, options);
}

void validate_mapping(const Mapping& mapping, const TaskGraph& graph,
                      const Topology& topo) {
  mapping.contraction.validate(graph.num_tasks());
  mapping.embedding.validate(topo.num_procs());
  if (mapping.embedding.proc_of_cluster.size() !=
      static_cast<std::size_t>(mapping.contraction.num_clusters)) {
    throw MappingError("embedding does not cover every cluster");
  }
  const auto proc_of_task = mapping.proc_of_task();
  if (mapping.routing.size() != graph.comm_phases().size()) {
    throw MappingError("routing does not cover every comm phase");
  }
  for (std::size_t k = 0; k < mapping.routing.size(); ++k) {
    const auto& phase = graph.comm_phases()[k];
    const auto& routing = mapping.routing[k];
    if (routing.route_of_edge.size() != phase.edges.size()) {
      throw MappingError("phase '" + phase.name +
                         "' routing does not cover every edge");
    }
    for (std::size_t i = 0; i < phase.edges.size(); ++i) {
      const auto& e = phase.edges[i];
      const int src = proc_of_task[static_cast<std::size_t>(e.src)];
      const int dst = proc_of_task[static_cast<std::size_t>(e.dst)];
      if (!is_valid_route(topo, routing.route_of_edge[i], src, dst)) {
        throw MappingError("invalid route in phase '" + phase.name +
                           "' for edge " + std::to_string(e.src) + " -> " +
                           std::to_string(e.dst));
      }
    }
  }
}

}  // namespace oregami
