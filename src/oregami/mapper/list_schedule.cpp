#include "oregami/mapper/list_schedule.hpp"

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>

#include "oregami/support/deadline.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/trace.hpp"

namespace oregami {

namespace {

constexpr std::int64_t kInfeasible =
    std::numeric_limits<std::int64_t>::max() / 4;

/// Directed mult-weighted communication volumes, aggregated over all
/// phases: parallel edges within and across phases merge, volumes sum.
struct CommVolumes {
  std::vector<std::vector<std::pair<int, std::int64_t>>> out;
  std::vector<std::vector<std::pair<int, std::int64_t>>> in;
};

CommVolumes weighted_volumes(const TaskGraph& graph) {
  const int n = graph.num_tasks();
  const std::vector<long> mult = graph.comm_phase_multiplicity();
  std::vector<std::tuple<int, int, std::int64_t>> triples;
  const auto& phases = graph.comm_phases();
  for (std::size_t k = 0; k < phases.size(); ++k) {
    const std::int64_t m = k < mult.size() ? mult[k] : 1;
    if (m <= 0) {
      continue;
    }
    for (const CommEdge& e : phases[k].edges) {
      if (e.src == e.dst) {
        continue;  // a task talking to itself never crosses the network
      }
      triples.emplace_back(e.src, e.dst, e.volume * m);
    }
  }
  std::sort(triples.begin(), triples.end());

  CommVolumes vols;
  vols.out.resize(static_cast<std::size_t>(n));
  vols.in.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < triples.size();) {
    const int u = std::get<0>(triples[i]);
    const int v = std::get<1>(triples[i]);
    std::int64_t total = 0;
    for (; i < triples.size() && std::get<0>(triples[i]) == u &&
           std::get<1>(triples[i]) == v;
         ++i) {
      total += std::get<2>(triples[i]);
    }
    vols.out[static_cast<std::size_t>(u)].emplace_back(v, total);
    vols.in[static_cast<std::size_t>(v)].emplace_back(u, total);
  }
  return vols;
}

/// Mult-weighted execution weight per task: w(t) = sum_k mult_k *
/// cost_k[t].
std::vector<std::int64_t> exec_weights(const TaskGraph& graph) {
  const int n = graph.num_tasks();
  std::vector<std::int64_t> w(static_cast<std::size_t>(n), 0);
  const std::vector<long> mult = graph.exec_phase_multiplicity();
  const auto& phases = graph.exec_phases();
  for (std::size_t k = 0; k < phases.size(); ++k) {
    const std::int64_t m = k < mult.size() ? mult[k] : 1;
    if (m <= 0 || phases[k].cost.empty()) {
      continue;
    }
    for (int t = 0; t < n; ++t) {
      w[static_cast<std::size_t>(t)] +=
          m * phases[k].cost[static_cast<std::size_t>(t)];
    }
  }
  return w;
}

/// Iterative Kosaraju. Returns the SCC id of every task; ids are
/// assigned so that every cross-SCC edge u -> v has comp[u] < comp[v]
/// (the condensation is emitted in topological order), which is what
/// the rank recurrence below relies on.
std::vector<int> strongly_connected_components(const CommVolumes& vols,
                                               int n, int* num_comps) {
  std::vector<int> finish_order;
  finish_order.reserve(static_cast<std::size_t>(n));
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<std::pair<int, std::size_t>> stack;
  for (int root = 0; root < n; ++root) {
    if (seen[static_cast<std::size_t>(root)]) {
      continue;
    }
    seen[static_cast<std::size_t>(root)] = 1;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      const auto& edges = vols.out[static_cast<std::size_t>(u)];
      if (next < edges.size()) {
        const int v = edges[next].first;
        ++next;
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        finish_order.push_back(u);
        stack.pop_back();
      }
    }
  }

  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  int comps = 0;
  for (auto it = finish_order.rbegin(); it != finish_order.rend(); ++it) {
    if (comp[static_cast<std::size_t>(*it)] >= 0) {
      continue;
    }
    const int id = comps++;
    std::vector<int> dfs{*it};
    comp[static_cast<std::size_t>(*it)] = id;
    while (!dfs.empty()) {
      const int u = dfs.back();
      dfs.pop_back();
      for (const auto& [v, vol] : vols.in[static_cast<std::size_t>(u)]) {
        (void)vol;
        if (comp[static_cast<std::size_t>(v)] < 0) {
          comp[static_cast<std::size_t>(v)] = id;
          dfs.push_back(v);
        }
      }
    }
  }
  *num_comps = comps;
  return comp;
}

}  // namespace

std::vector<std::int64_t> heft_upward_ranks(const TaskGraph& graph,
                                            const CostModel& model) {
  const int n = graph.num_tasks();
  std::vector<std::int64_t> rank(static_cast<std::size_t>(n), 0);
  if (n == 0) {
    return rank;
  }
  const CommVolumes vols = weighted_volumes(graph);
  const std::vector<std::int64_t> w = exec_weights(graph);
  // Ranking charges one nominal hop per message (machine-independent).
  const auto comm_cost = [&model](std::int64_t vol) {
    return vol * model.per_unit_cost + model.hop_latency;
  };

  int num_comps = 0;
  const std::vector<int> comp =
      strongly_connected_components(vols, n, &num_comps);

  // Macro-task weight of each SCC: member exec weights plus serialised
  // internal communication.
  std::vector<std::int64_t> base(static_cast<std::size_t>(num_comps), 0);
  for (int t = 0; t < n; ++t) {
    base[static_cast<std::size_t>(comp[static_cast<std::size_t>(t)])] +=
        w[static_cast<std::size_t>(t)];
  }
  for (int u = 0; u < n; ++u) {
    for (const auto& [v, vol] : vols.out[static_cast<std::size_t>(u)]) {
      if (comp[static_cast<std::size_t>(u)] ==
          comp[static_cast<std::size_t>(v)]) {
        base[static_cast<std::size_t>(comp[static_cast<std::size_t>(u)])] +=
            comm_cost(vol);
      }
    }
  }

  // Cross edges of the condensation, bucketed by source component.
  std::vector<std::vector<std::pair<int, std::int64_t>>> cross(
      static_cast<std::size_t>(num_comps));
  for (int u = 0; u < n; ++u) {
    for (const auto& [v, vol] : vols.out[static_cast<std::size_t>(u)]) {
      const int cu = comp[static_cast<std::size_t>(u)];
      const int cv = comp[static_cast<std::size_t>(v)];
      if (cu != cv) {
        OREGAMI_ASSERT(cu < cv, "condensation must be topological");
        cross[static_cast<std::size_t>(cu)].emplace_back(cv,
                                                         comm_cost(vol));
      }
    }
  }

  // Kosaraju emits the condensation topologically (cross edges go from
  // lower to higher id), so a high-to-low sweep sees every successor's
  // final rank before folding it in.
  std::vector<std::int64_t> comp_rank(base);
  for (int c = num_comps - 1; c >= 0; --c) {
    std::int64_t best_succ = 0;
    for (const auto& [cv, cost] : cross[static_cast<std::size_t>(c)]) {
      best_succ = std::max(best_succ,
                           cost + comp_rank[static_cast<std::size_t>(cv)]);
    }
    comp_rank[static_cast<std::size_t>(c)] += best_succ;
  }

  for (int t = 0; t < n; ++t) {
    rank[static_cast<std::size_t>(t)] =
        comp_rank[static_cast<std::size_t>(comp[static_cast<std::size_t>(t)])];
  }
  return rank;
}

ListScheduleResult list_schedule(const TaskGraph& graph, const Topology& topo,
                                 const ListScheduleOptions& options) {
  const trace::Span span("list_schedule");
  const int n = graph.num_tasks();
  const int p = topo.num_procs();
  ListScheduleResult result;
  result.proc_of_task.assign(static_cast<std::size_t>(n), 0);
  result.finish.assign(static_cast<std::size_t>(n), 0);
  result.rank = heft_upward_ranks(graph, options.model);
  if (n == 0 || p == 0) {
    return result;
  }

  const std::vector<std::int64_t> w = exec_weights(graph);

  // Placement order: descending rank, ties descending exec weight,
  // then ascending id -- fully deterministic.
  result.order.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    result.order[static_cast<std::size_t>(t)] = t;
  }
  std::sort(result.order.begin(), result.order.end(), [&](int a, int b) {
    const auto ka = std::make_tuple(-result.rank[static_cast<std::size_t>(a)],
                                    -w[static_cast<std::size_t>(a)], a);
    const auto kb = std::make_tuple(-result.rank[static_cast<std::size_t>(b)],
                                    -w[static_cast<std::size_t>(b)], b);
    return ka < kb;
  });

  // Undirected partner volumes (a message in either direction must
  // arrive before the receiver's phase can fire).
  const CommVolumes vols = weighted_volumes(graph);
  std::vector<std::vector<std::pair<int, std::int64_t>>> partners(
      static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    for (const auto& [v, vol] : vols.out[static_cast<std::size_t>(u)]) {
      partners[static_cast<std::size_t>(u)].emplace_back(v, vol);
      partners[static_cast<std::size_t>(v)].emplace_back(u, vol);
    }
  }
  for (auto& list : partners) {
    std::sort(list.begin(), list.end());
    // Merge the two directions of an antiparallel pair.
    std::size_t out = 0;
    for (std::size_t i = 0; i < list.size();) {
      std::int64_t total = 0;
      const int v = list[i].first;
      for (; i < list.size() && list[i].first == v; ++i) {
        total += list[i].second;
      }
      list[out++] = {v, total};
    }
    list.resize(out);
  }

  const Deadline deadline(options.time_budget_ms);
  bool degraded = options.time_budget_ms < 0;
  std::vector<std::int64_t> proc_ready(static_cast<std::size_t>(p), 0);
  std::vector<char> placed(static_cast<std::size_t>(n), 0);

  for (const int t : result.order) {
    if (!degraded && deadline.timed() && deadline.passed()) {
      degraded = true;
      trace::instant("deadline_hit",
                     "falling back to least-ready placement");
    }

    int best_proc = 0;
    std::int64_t best_finish = kInfeasible;
    if (degraded) {
      // Fallback rule: least-ready processor, no communication scan.
      ++result.deadline_degraded;
      for (int q = 1; q < p; ++q) {
        if (proc_ready[static_cast<std::size_t>(q)] <
            proc_ready[static_cast<std::size_t>(best_proc)]) {
          best_proc = q;
        }
      }
      best_finish = proc_ready[static_cast<std::size_t>(best_proc)] +
                    w[static_cast<std::size_t>(t)];
    } else {
      for (int q = 0; q < p; ++q) {
        std::int64_t est = proc_ready[static_cast<std::size_t>(q)];
        for (const auto& [u, vol] : partners[static_cast<std::size_t>(t)]) {
          if (!placed[static_cast<std::size_t>(u)]) {
            continue;
          }
          const int src =
              result.proc_of_task[static_cast<std::size_t>(u)];
          std::int64_t comm = 0;
          if (src != q) {
            const int hops = topo.distance(src, q);
            if (hops < 0) {  // unreachable on a disconnected Custom
              est = kInfeasible;
              break;
            }
            comm = vol * options.model.per_unit_cost +
                   options.model.hop_latency * hops;
          }
          est = std::max(est,
                         result.finish[static_cast<std::size_t>(u)] + comm);
        }
        if (est >= kInfeasible) {
          continue;
        }
        const std::int64_t cand = est + w[static_cast<std::size_t>(t)];
        if (cand < best_finish) {
          best_finish = cand;
          best_proc = q;
        }
      }
      if (best_finish >= kInfeasible) {
        // Every processor is unreachable from some placed partner
        // (disconnected Custom topology): fall back to least-ready.
        for (int q = 1; q < p; ++q) {
          if (proc_ready[static_cast<std::size_t>(q)] <
              proc_ready[static_cast<std::size_t>(best_proc)]) {
            best_proc = q;
          }
        }
        best_finish = proc_ready[static_cast<std::size_t>(best_proc)] +
                      w[static_cast<std::size_t>(t)];
      }
    }

    result.proc_of_task[static_cast<std::size_t>(t)] = best_proc;
    result.finish[static_cast<std::size_t>(t)] = best_finish;
    proc_ready[static_cast<std::size_t>(best_proc)] = best_finish;
    placed[static_cast<std::size_t>(t)] = 1;
    result.makespan = std::max(result.makespan, best_finish);
  }

  trace::counter("makespan", result.makespan);
  trace::counter("deadline_degraded", result.deadline_degraded);
  return result;
}

}  // namespace oregami
