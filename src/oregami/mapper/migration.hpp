// Phase-shift migration analysis (paper §6, "Mapping algorithms"):
// OREGAMI's default is one mapping that accommodates every phase; the
// paper proposes investigating "algorithms that consider migrating
// processes at run time in order to accommodate phase shifts". This
// module implements that what-if analysis: compute a tailored mapping
// per communication phase, walk the phase-expression timeline charging
// task-migration costs at every phase shift, and compare the result
// against the best static mapping under the same cost model.
#pragma once

#include <cstdint>
#include <vector>

#include "oregami/arch/topology.hpp"
#include "oregami/core/task_graph.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/completion_model.hpp"

namespace oregami {

struct MigrationConfig {
  CostModel model;
  /// Cost of moving one task's state to another processor.
  std::int64_t cost_per_task_move = 10;
  /// Cap on the linearised phase-expression length (repeat expansion).
  std::size_t max_steps = 100'000;
  MapperOptions mapper;
};

struct MigrationReport {
  /// Modelled completion with per-phase remapping + migration charges.
  std::int64_t migrating_time = 0;
  /// Modelled completion of the single static mapping (driver output).
  std::int64_t static_time = 0;
  /// Total task moves across the whole timeline.
  long task_moves = 0;
  /// Number of phase shifts that triggered a migration.
  int migrations = 0;
  /// The tailored placement per comm phase.
  std::vector<std::vector<int>> placement_per_comm_phase;

  [[nodiscard]] bool migration_wins() const {
    return migrating_time < static_time;
  }
};

/// Linearises the phase expression into a sequence of phase
/// occurrences (comm index >= 0 encoded as index, exec encoded as
/// ~index). Parallel branches are concatenated (conservative for
/// migration accounting). Throws MappingError when the expansion
/// exceeds `max_steps`.
[[nodiscard]] std::vector<int> linearize_phase_expr(
    const TaskGraph& graph, std::size_t max_steps);

/// Runs the analysis. Each comm phase gets its own MAPPER run over a
/// single-phase view of the graph; the timeline then charges
/// cost_per_task_move * moved tasks at every placement change.
[[nodiscard]] MigrationReport evaluate_phase_migration(
    const TaskGraph& graph, const Topology& topo,
    const MigrationConfig& config = {});

}  // namespace oregami
