// Canned contraction + embedding library for nameable task graphs
// (paper §4.1): constant-time lookups keyed on (task family, network
// family). Routing is not part of a canned entry; the driver always
// finishes with MM-Route.
//
// Implemented pairs (task family -> network family):
//   ring/chain     -> ring, chain, mesh (snake), hypercube (Gray code)
//   mesh           -> mesh (tiling), hypercube (Gray code per axis)
//   hypercube      -> hypercube (subcube contraction)
//   binomial tree  -> hypercube (address map), mesh (the [LRG+89]
//                     recursive embedding, see binomial_mesh.hpp)
//   complete bin.  -> hypercube (inorder embedding, dilation <= 2)
//   star           -> any topology (hub + neighbours first)
//   any family     -> same family, same size (identity)
// When tasks outnumber processors, the entries contract canonically
// (contiguous blocks / tiles / subcubes / subtrees) before embedding.
#pragma once

#include <optional>
#include <string>

#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/core/recognize.hpp"

namespace oregami {

/// A contraction + embedding produced by table lookup.
struct CannedMapping {
  Contraction contraction;
  Embedding embedding;
  std::string description;
};

/// Looks up a canned mapping for a recognized task-graph family onto
/// `topo`. Returns nullopt when no table entry covers the pair (the
/// driver then falls back to the general algorithms). Requires
/// `family.canonical_label` to cover every task.
[[nodiscard]] std::optional<CannedMapping> canned_mapping(
    const RecognizedFamily& family, const Topology& topo);

/// Parses a LaRCS `family` hint ("ring", "mesh", "hypercube",
/// "binomial_tree", "complete_binary_tree", "chain", "star",
/// "complete") to the detector enum; Unknown for anything else.
[[nodiscard]] GraphFamily family_from_hint(const std::string& hint);

/// Runs only the detector matching `family` (used with LaRCS hints).
[[nodiscard]] std::optional<RecognizedFamily> detect_specific_family(
    const Graph& g, GraphFamily family);

}  // namespace oregami
