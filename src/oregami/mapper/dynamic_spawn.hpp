// Dynamically spawned tasks with predictable patterns (paper §6):
// "parallel divide and conquer algorithms dynamically spawn tasks ...
// however, it is known a priori that the spawning pattern will produce
// a full binary tree. We plan to ... design task assignment and routing
// algorithms to accommodate dynamically growing parallel computations."
//
// This module implements that plan for the two predictable patterns the
// paper names. A SpawnPlan fixes, up front, the processor of every task
// the computation can ever spawn, such that
//   * the placement of already-running tasks never changes as the
//     computation grows (no migration on spawn), and
//   * at every growth stage the live tasks are balanced across
//     processors (within one task) and parent-child edges keep the
//     canned embedding's dilation guarantees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oregami/arch/topology.hpp"
#include "oregami/core/recognize.hpp"

namespace oregami {

struct SpawnPlan {
  GraphFamily family = GraphFamily::Unknown;
  int max_stage = 0;  ///< tree order k (binomial) or height h (CBT)

  /// Processor of every node of the *full* tree (binomial: bitmask
  /// addressing; CBT: heap indices).
  std::vector<int> proc_of_node;

  /// Growth stage at which each node spawns (root = stage 0; a node is
  /// live at stage s iff spawn_stage_of_node[it] <= s).
  std::vector<int> spawn_stage_of_node;

  std::string description;

  /// Live nodes at stage s, ascending.
  [[nodiscard]] std::vector<int> live_nodes(int stage) const;

  /// Max minus min live-task count over processors at stage s (0 or 1
  /// once the tree is at least as large as the machine).
  [[nodiscard]] int stage_imbalance(int stage, int num_procs) const;
};

/// Plan for a divide-and-conquer computation growing the binomial tree
/// B_0 -> B_1 -> ... -> B_k. Node m spawns at stage
/// (index of m's highest set bit) + 1. Placement: the canned
/// binomial-tree entry (hypercube address map or mesh recursive
/// bisection), which is prefix-stable by construction. Throws
/// MappingError when the topology is neither hypercube nor a mesh large
/// enough.
[[nodiscard]] SpawnPlan plan_binomial_spawn(int k, const Topology& topo);

/// Plan for a computation growing a complete binary tree level by
/// level (node v spawns at its depth). Placement: inorder map on
/// hypercubes, H-tree on meshes.
[[nodiscard]] SpawnPlan plan_cbt_spawn(int h, const Topology& topo);

}  // namespace oregami
