// The binomial-tree -> mesh embedding of §4.1, OREGAMI's contribution
// to the canned-mapping library ([LRG+89]): B_k (2^k nodes) onto the
// 2^ceil(k/2) x 2^floor(k/2) mesh with average dilation bounded by
// ~1.2 for arbitrarily large k.
//
// Construction: the optimum over the recursive-bisection family. B_j
// occupies a near-square 2^ceil(j/2) x 2^floor(j/2) region; the region
// is halved across its longer side (either side of a square); the
// root's B_{j-1} keeps the root's half, and the other B_{j-1}'s root
// may be any cell of the opposite half (its tree edge pays the
// Manhattan distance). Dynamic programming over (level, root cell)
// with Manhattan distance transforms finds the exact optimum of this
// family in O(n) per level; the measured average dilation increases to
// ~1.199 as k grows, matching the paper's "bounded by 1.2 for
// arbitrarily large binomial tree and mesh".
#pragma once

#include <vector>

#include "oregami/arch/topology.hpp"

namespace oregami {

/// Placement of B_k on the 2^ceil(k/2) x 2^floor(k/2) mesh:
/// `proc_of_node[m]` is the mesh processor hosting binomial-tree node m
/// (nodes addressed by bitmask, root 0). The assignment is a bijection.
struct BinomialMeshEmbedding {
  int k = 0;
  int rows = 0;
  int cols = 0;
  std::vector<int> proc_of_node;

  /// Dilation of the tree edge into node m (m > 0): mesh distance
  /// between m and its parent (m with its lowest set bit cleared).
  [[nodiscard]] int edge_dilation(int m) const;

  /// Average dilation over the 2^k - 1 tree edges.
  [[nodiscard]] double average_dilation() const;

  /// Maximum edge dilation.
  [[nodiscard]] int max_dilation() const;
};

/// Builds the embedding for 0 <= k <= 24.
[[nodiscard]] BinomialMeshEmbedding embed_binomial_in_mesh(int k);

}  // namespace oregami
