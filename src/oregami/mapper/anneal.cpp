#include "oregami/mapper/anneal.hpp"

#include <cmath>

#include "oregami/metrics/incremental.hpp"
#include "oregami/support/deadline.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"
#include "oregami/support/trace.hpp"

namespace oregami {

AnnealResult anneal_placement(const TaskGraph& graph, const Topology& topo,
                              std::vector<int> proc_of_task,
                              std::vector<PhaseRouting> routing,
                              const CostModel& model,
                              const AnnealOptions& options,
                              std::vector<std::int64_t> link_factor) {
  const trace::Span span("anneal");
  const int n = graph.num_tasks();
  const int p = topo.num_procs();
  IncrementalCompletion inc(graph, topo, std::move(proc_of_task),
                            std::move(routing), model,
                            std::move(link_factor));

  AnnealResult result;
  result.completion_before = inc.completion();

  // A chain needs a task to move and somewhere else to move it.
  if (n >= 1 && p >= 2 && options.iterations > 0) {
    const Deadline deadline(options.time_budget_ms);
    SplitMix64 rng(options.seed);
    double temp = options.initial_temp >= 0.0
                      ? options.initial_temp
                      : std::max<double>(
                            1.0, static_cast<double>(inc.completion()) / 20.0);

    std::int64_t best_completion = inc.completion();
    std::size_t best_history = inc.history_size();

    for (int i = 0; i < options.iterations; ++i) {
      // The clock is only consulted for positive budgets, and only
      // every 64 proposals (a probe is microseconds; the syscall is
      // not).
      if (options.time_budget_ms != 0 && (i & 63) == 0 &&
          deadline.passed()) {
        result.deadline_hit = options.time_budget_ms > 0;
        trace::instant("deadline_hit",
                       "after " + std::to_string(i) + " proposals");
        break;
      }
      const int task = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      const int here = inc.proc_of_task()[static_cast<std::size_t>(task)];
      // Proposal mix: half the moves hop to a network neighbour of the
      // current processor (local polish), half jump uniformly (escape).
      int target;
      const auto& neighbors = topo.graph().neighbors(here);
      if (!neighbors.empty() && rng.next_below(2) == 0) {
        target = neighbors[static_cast<std::size_t>(rng.next_below(
                               static_cast<std::uint64_t>(neighbors.size())))]
                     .neighbor;
      } else {
        // Uniform over the other p-1 processors.
        const int draw = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(p - 1)));
        target = draw >= here ? draw + 1 : draw;
      }
      temp *= options.cooling;
      if (target == here) {
        continue;  // neighbour draw can land on `here` in multigraphs
      }
      ++result.proposed;
      const std::int64_t delta = inc.delta_move(task, target);
      bool accept = delta <= 0;
      if (!accept && temp > 0.0) {
        accept = rng.next_double() <
                 std::exp(-static_cast<double>(delta) / temp);
      }
      if (!accept) {
        continue;
      }
      inc.apply_move(task, target);
      ++result.accepted;
      if (delta > 0) {
        ++result.uphill;
      }
      if (inc.completion() < best_completion) {
        best_completion = inc.completion();
        best_history = inc.history_size();
      }
    }

    // Return the best state visited, not wherever the chain ended:
    // unwind the exact undo history past the last strict improvement.
    // When nothing ever improved, this rewinds the whole chain and the
    // result is bit-identical to the input.
    while (inc.history_size() > best_history) {
      const bool undone = inc.undo();
      OREGAMI_ASSERT(undone, "anneal history unwind underflow");
    }
    OREGAMI_ASSERT(inc.completion() == best_completion,
                   "anneal unwind must land on the best visited state");
  }

  result.completion_after = inc.completion();
  OREGAMI_ASSERT(result.completion_after <= result.completion_before,
                 "annealing must never worsen the initial placement");
  trace::counter("proposed", result.proposed);
  trace::counter("accepted", result.accepted);
  trace::counter("uphill", result.uphill);
  trace::counter("improvement", result.improvement());
  result.proc_of_task = inc.proc_of_task();
  result.routing = inc.routing();
  return result;
}

}  // namespace oregami
